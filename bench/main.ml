(* Benchmark harness: regenerates every figure of the paper's
   evaluation as printed series/tables, then (unless --no-micro) runs
   Bechamel micro-benchmarks of the hot kernels.

   Usage: main.exe [--quick | --paper] [--only fig4,fig9,...]
                   [--no-micro] [--jobs N]

   The default scale preserves every figure's shape while finishing in
   minutes; --paper matches the paper's parameters (1800 messages,
   k = 2000, 10 seeds) and takes correspondingly longer. The `parallel`
   section times the multi-seed runner sequentially vs fanned over
   domains and records the comparison to BENCH_parallel.json; the
   `serve` section measures the online server (ingest throughput,
   query latency, memory cap, adaptive routing under faults) and
   records BENCH_serve.json. *)

module E = Core.Experiments
module R = Core.Report
module Dataset = Core.Dataset

type options = {
  scale : E.scale;
  only : string list option;
  micro : bool;
  jobs : int;
  store_dir : string;
}

let quick_scale =
  { E.default_scale with E.n_messages = 30; seeds = 1; hop_paths_per_message = 100 }

let parse_args () =
  let scale = ref E.default_scale in
  let only = ref None in
  let micro = ref true in
  let jobs = ref (Core.Parallel.default_jobs ()) in
  let store_dir = ref "_psn_bench_store" in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      scale := quick_scale;
      go rest
    | "--paper" :: rest ->
      scale := E.paper_scale;
      go rest
    | "--no-micro" :: rest ->
      micro := false;
      go rest
    | "--only" :: spec :: rest ->
      only := Some (String.split_on_char ',' spec |> List.map String.trim);
      go rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> jobs := j
      | Some _ | None ->
        Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
        exit 2);
      go rest
    | "--store" :: dir :: rest ->
      store_dir := dir;
      go rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s\n\
         usage: main.exe [--quick|--paper] [--only ids] [--no-micro] [--jobs N] [--store DIR]\n"
        arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  { scale = !scale; only = !only; micro = !micro; jobs = !jobs; store_dir = !store_dir }

let wanted options id =
  match options.only with None -> true | Some ids -> List.mem id ids

let section options id render =
  if wanted options id then begin
    let t0 = Core.Clock.now_s () in
    let text = render () in
    Printf.printf "%s\n[%s took %.1fs]\n\n%!" text id (Core.Clock.now_s () -. t0)
  end

(* Studies are built lazily and cached so --only runs stay cheap. *)
let lazy_memo f =
  let cell = ref None in
  fun () ->
    match !cell with
    | Some v -> v
    | None ->
      let v = f () in
      cell := Some v;
      v

let micro_benchmarks () =
  Printf.printf "== Micro-benchmarks (Bechamel) ==\n%!";
  let open Bechamel in
  let trace =
    Core.Generator.generate
      ~rng:(Core.Rng.create ~seed:3L ())
      {
        Core.Generator.default with
        Core.Generator.n_mobile = 30;
        n_stationary = 8;
        horizon = 1800.;
        mean_contacts = 40.;
      }
  in
  let snap = Core.Snapshot.of_trace trace in
  let messages =
    Core.Workload.fixed_count
      ~rng:(Core.Rng.create ~seed:4L ())
      { Core.Workload.rate = 0.25; t_start = 0.; t_end = 1200.; n_nodes = 38 }
      ~count:50
  in
  let tests =
    [
      Test.make ~name:"snapshot.of_trace" (Staged.stage (fun () -> Core.Snapshot.of_trace trace));
      Test.make ~name:"enumerate.run(k=100)"
        (Staged.stage (fun () ->
             Core.Enumerate.run
               ~config:{ Core.Enumerate.k = 100; max_hops = None; stop_at_total = Some 500; exhaustive = false }
               snap ~src:0 ~dst:19 ~t_create:60.));
      Test.make ~name:"reachability.flood"
        (Staged.stage (fun () -> Core.Reachability.flood snap ~src:0 ~t_create:60.));
      Test.make ~name:"engine.run(epidemic,50msg)"
        (Staged.stage (fun () ->
             Core.Engine.run ~trace ~messages (Core.Epidemic.factory trace)));
      Test.make ~name:"meed.routing_costs"
        (Staged.stage (fun () -> Core.Meed.routing_costs trace));
    ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.) ~kde:None () in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let nanos = match Analyze.OLS.estimates est with Some [ v ] -> v | _ -> Float.nan in
          Printf.printf "  %-28s %12.0f ns/run\n%!" (Test.Elt.name elt) nanos)
        (Test.elements test))
    tests

let () =
  let options = parse_args () in
  let scale = options.scale in
  Printf.printf
    "PSN path-diversity reproduction bench\nscale: %d messages, k=%d, n*=%d, %d sim seeds\n\n%!"
    scale.E.n_messages scale.E.k scale.E.n_explosion scale.E.seeds;
  let jobs = options.jobs in
  let study_am = lazy_memo (fun () -> E.enumeration_study ~jobs ~scale Dataset.infocom06_am) in
  let study_pm = lazy_memo (fun () -> E.enumeration_study ~jobs ~scale Dataset.infocom06_pm) in
  let sim_am = lazy_memo (fun () -> E.sim_study ~jobs ~scale Dataset.infocom06_am) in
  let sim_pm = lazy_memo (fun () -> E.sim_study ~jobs ~scale Dataset.infocom06_pm) in
  let sim_cam = lazy_memo (fun () -> E.sim_study ~jobs ~scale Dataset.conext06_am) in
  let sim_cpm = lazy_memo (fun () -> E.sim_study ~jobs ~scale Dataset.conext06_pm) in

  section options "fig1" (fun () ->
      R.render_timeseries ~title:"Fig 1: total contacts over time (60 s bins)" (E.fig1 Dataset.all));
  section options "fig2" (fun () -> "== Fig 2: example space-time graph ==\n" ^ E.fig2 ());
  section options "fig4" (fun () ->
      let studies = [ study_am (); study_pm () ] in
      R.render_cdfs ~title:"Fig 4a: CDF of optimal path duration (s)" (E.fig4a studies)
      ^ "\n\n"
      ^ R.render_cdfs ~title:"Fig 4b: CDF of time to explosion (s)" (E.fig4b studies));
  section options "fig5" (fun () ->
      R.render_scatter ~title:"Fig 5: optimal path duration vs time to explosion (Infocom am)"
        (E.fig5 (study_am ())));
  section options "fig6" (fun () ->
      R.render_histogram ~title:"Fig 6: path arrivals after T1, messages with TE >= 150 s"
        (E.fig6 (study_am ())));
  section options "fig7" (fun () ->
      R.render_cdfs ~title:"Fig 7: CDF of per-node contact counts" (E.fig7 Dataset.all));
  section options "fig8" (fun () ->
      R.render_scatter_by_pair ~title:"Fig 8: T1 vs TE by source-destination pair type"
        (E.fig8 (study_am ())));
  section options "fig9" (fun () ->
      [
        ("Infocom 06 9-12", sim_am);
        ("Infocom 06 3-6", sim_pm);
        ("Conext 06 9-12", sim_cam);
        ("Conext 06 3-6", sim_cpm);
      ]
      |> List.map (fun (label, study) ->
             R.render_metrics ~title:(Printf.sprintf "Fig 9: delay vs success rate (%s)" label)
               (E.fig9 (study ())))
      |> String.concat "\n\n");
  section options "fig10" (fun () ->
      R.render_cdfs ~title:"Fig 10a: delay distributions (Infocom 06 9-12)" (E.fig10 (sim_am ()))
      ^ "\n\n"
      ^ R.render_cdfs ~title:"Fig 10b: delay distributions (Conext 06 9-12)" (E.fig10 (sim_cam ())));
  section options "fig11" (fun () ->
      R.render_cumulative ~title:"Fig 11: cumulative path deliveries over time (Infocom am)"
        (E.fig11 (study_am ())));
  section options "fig12" (fun () ->
      R.render_fig12 ~title:"Fig 12: paths taken by forwarding algorithms (example messages)"
        (E.fig12 (study_am ()) ~n_examples:2));
  section options "fig13" (fun () ->
      R.render_metrics_by_pair
        ~title:"Fig 13: algorithm performance by source-destination pair type (Infocom am)"
        (E.fig13 (sim_am ())));
  section options "fig14" (fun () ->
      R.render_hop_rates ~title:"Fig 14: mean contact rate of nodes at each hop (Infocom am)"
        (E.fig14 (study_am ())));
  section options "fig15" (fun () ->
      R.render_hop_ratios ~title:"Fig 15: consecutive-hop rate ratios (Infocom am)"
        (E.fig15 (study_am ())));
  section options "model-mean" (fun () ->
      R.render_model_rows
        ~title:"M01: homogeneous model, mean paths per node E[S(t)] (N=200, lambda=0.5)"
        (E.model_mean_table ~n:200 ~lambda:0.5 ~times:[ 0.; 2.; 4.; 6.; 8. ] ~runs:60 ()));
  section options "model-variance" (fun () ->
      R.render_model_rows
        ~title:"M02: homogeneous model, second moment E[S(t)^2] (N=200, lambda=0.5)"
        (E.model_second_moment_table ~n:200 ~lambda:0.5 ~times:[ 0.; 2.; 4.; 6.; 8. ] ~runs:60 ())
      ^ "\n\nM02b: generating-function blow-up times T_C(x)\n"
      ^ String.concat "\n"
          (List.map
             (fun (x, tc) ->
               match tc with
               | Some t -> Printf.sprintf "  x=%.2f  T_C=%.3f" x t
               | None -> Printf.sprintf "  x=%.2f  (no blow-up)" x)
             (E.model_blowup_table ~n:200 ~lambda:0.5 ~xs:[ 1.01; 1.1; 1.5; 2.0; 4.0 ])));
  section options "model-inhomog" (fun () ->
      R.render_quadrants
        ~title:"M03: two-class model quadrants (N=98, lambda_in=0.03/s, lambda_out=0.005/s, 3 h)"
        (E.model_quadrant_table ()));

  (* ---- Related-work check and design ablations ---- *)
  section options "r01-intercontact" (fun () ->
      (* Hui et al. / Chaintreau et al.: the aggregate inter-contact
         distribution has a heavy, approximately power-law body. *)
      let rows =
        List.map
          (fun d ->
            let trace = Core.Dataset.generate d in
            let gaps = Core.Intercontact.aggregate_gaps trace in
            let alpha =
              match Core.Intercontact.tail_exponent gaps with
              | Some a -> Printf.sprintf "%.2f" a
              | None -> "-"
            in
            let q p = Core.Quantile.quantile gaps p in
            [
              d.Core.Dataset.label;
              string_of_int (Array.length gaps);
              Printf.sprintf "%.0f" (q 0.5);
              Printf.sprintf "%.0f" (q 0.9);
              Printf.sprintf "%.0f" (q 0.99);
              alpha;
            ])
          Dataset.all
      in
      "== R01 (related work): aggregate inter-contact times ==\n"
      ^ Core.Table.render
          ~align:[ Core.Table.Left; Right; Right; Right; Right; Right ]
          ~header:[ "dataset"; "gaps"; "median (s)"; "p90"; "p99"; "Hill alpha" ]
          rows
      ^ "\n(heavy inter-contact tails, as in Hui et al. WDTN'05)");
  section options "r02-growth" (fun () ->
      (* §5.2's subset-explosion claim, measured: the arrival staircase
         at a high-rate destination grows faster than at a low-rate
         one. *)
      let study = study_am () in
      let fits =
        List.filter_map
          (fun (m : E.message_result) ->
            if Array.length m.E.arrival_times < 50 then None
            else begin
              let t1 = m.E.arrival_times.(0) in
              let points =
                Array.to_list m.E.arrival_times
                |> List.mapi (fun i t -> (t -. t1, float_of_int (i + 1)))
              in
              match Core.Regression.exponential_rate points with
              | fit when Float.is_finite fit.Core.Regression.slope && fit.Core.Regression.slope > 0.
                ->
                Some (m.E.pair, fit.Core.Regression.slope)
              | _ -> None
              | exception Invalid_argument _ -> None
            end)
          study.E.messages
      in
      let row label keep =
        let rates = List.filter_map (fun (p, r) -> if keep p then Some r else None) fits in
        match rates with
        | [] -> [ label; "0"; "-"; "-" ]
        | _ ->
          let arr = Array.of_list rates in
          [
            label;
            string_of_int (Array.length arr);
            Printf.sprintf "%.3f" (Core.Quantile.median arr);
            Printf.sprintf "%.3f" (Core.Quantile.quantile arr 0.75);
          ]
      in
      let is_in_dst = function Core.Classify.In_in | Core.Classify.Out_in -> true | _ -> false in
      "== R02 (section 5.2): explosion growth rate by destination class ==\n"
      ^ Core.Table.render
          ~align:[ Core.Table.Left; Right; Right; Right ]
          ~header:[ "destination"; "msgs"; "median rate (1/s)"; "q3" ]
          [ row "in (high-rate)" is_in_dst; row "out (low-rate)" (fun p -> not (is_in_dst p)) ]
      ^ Printf.sprintf
          "\n(population median contact rate: %.4f /s — subset explosion runs at\ncontact-rate speed, faster toward high-rate destinations)"
          (Core.Classify.median_rate study.E.classify));
  section options "abl-replication" (fun () ->
      (* The cost question the paper leaves open: the success/delay/copies
         frontier across replication budgets. *)
      let trace = Core.Dataset.(generate conext06_am) in
      let spec =
        {
          Core.Runner.workload = Core.Workload.paper_spec ~n_nodes:(Core.Trace.n_nodes trace);
          seeds = Core.Runner.default_seeds (Int.max 1 ((scale.E.seeds / 2) + 1));
        }
      in
      let contenders =
        [
          ("Epidemic", Core.Epidemic.factory);
          ("Random p=0.50", Core.Randomized.factory ~p:0.5 ());
          ("Random p=0.10", Core.Randomized.factory ~p:0.1 ());
          ("Spray&Wait L=32", Core.Spray_wait.factory ~l:32 ());
          ("Spray&Wait L=8", Core.Spray_wait.factory ~l:8 ());
          ("Spray&Wait L=2", Core.Spray_wait.factory ~l:2 ());
          ("Delegation(rate)", Core.Delegation.factory ());
          ( "Delegation(dest)",
            Core.Delegation.factory ~quality:Core.Delegation.Destination_frequency () );
          ("BubbleRap", Core.Bubble_rap.factory ());
          ("Two-Hop", Core.Two_hop.factory);
          ("Direct", Core.Direct.factory);
        ]
      in
      let rows =
        List.map
          (fun (label, factory) ->
            (label, Core.Runner.run_algorithm ~jobs:options.jobs ~trace ~spec ~factory ()))
          contenders
      in
      R.render_metrics ~title:"A01: replication budget vs delivery (Conext am)" rows);
  section options "abl-ttl" (fun () ->
      (* Sensitivity to message lifetime under epidemic forwarding. *)
      let trace = Core.Dataset.(generate infocom06_am) in
      let messages =
        Core.Workload.generate
          ~rng:(Core.Rng.create ~seed:1000L ())
          (Core.Workload.paper_spec ~n_nodes:(Core.Trace.n_nodes trace))
      in
      let row ttl =
        let outcome = Core.Engine.run ?ttl ~trace ~messages (Core.Epidemic.factory trace) in
        let m = Core.Metrics.of_outcome outcome in
        [
          (match ttl with None -> "unbounded" | Some t -> Printf.sprintf "%.0f s" t);
          Printf.sprintf "%.3f" m.Core.Metrics.success_rate;
          (if Float.is_nan m.Core.Metrics.mean_delay then "-"
           else Printf.sprintf "%.0f" m.Core.Metrics.mean_delay);
        ]
      in
      "== A02: epidemic success vs message lifetime (Infocom am) ==\n"
      ^ Core.Table.render
          ~align:[ Core.Table.Left; Right; Right ]
          ~header:[ "TTL"; "success"; "mean delay (s)" ]
          (List.map row [ Some 300.; Some 900.; Some 1800.; Some 3600.; None ])
      ^ "\n(the paper's infinite-buffer/unbounded-lifetime assumption is the last row)");
  section options "abl-mixing" (fun () ->
      (* Why the generator needs a location model: a uniformly mixing
         population destroys the long optimal durations of Fig. 4a. *)
      let stats n_locations =
        let cfg = { Core.Generator.default with Core.Generator.n_locations } in
        let trace = Core.Generator.generate ~rng:(Core.Rng.create ~seed:77L ()) cfg in
        let snap = Core.Snapshot.of_trace trace in
        let rng = Core.Rng.create ~seed:78L () in
        let n = Core.Trace.n_nodes trace in
        let durations = ref [] in
        for _ = 1 to 40 do
          let src = Core.Rng.int rng n in
          let dst = (src + 1 + Core.Rng.int rng (n - 1)) mod n in
          let t_create = Core.Rng.float rng 7200. in
          let flood = Core.Reachability.flood snap ~src ~t_create in
          match Core.Reachability.delivery_delay flood ~dst with
          | Some d -> durations := d :: !durations
          | None -> ()
        done;
        let arr = Array.of_list !durations in
        [
          string_of_int n_locations;
          string_of_int (Array.length arr);
          Printf.sprintf "%.0f" (Core.Quantile.median arr);
          Printf.sprintf "%.0f" (Core.Quantile.quantile arr 0.9);
        ]
      in
      "== A03: venue fragmentation vs optimal path duration ==\n"
      ^ Core.Table.render
          ~align:[ Core.Table.Right; Right; Right; Right ]
          ~header:[ "locations"; "delivered/40"; "median T1 (s)"; "p90 T1 (s)" ]
          (List.map stats [ 1; 4; 8; 16 ])
      ^ "\n\
         (one location = uniform mixing: deliveries complete within seconds,\n\
         nothing like the paper's Fig. 4a — fragmentation is essential)");
  section options "abl-k" (fun () ->
      (* Sensitivity of the explosion measurement to the truncation k. *)
      let trace = Core.Dataset.(generate infocom06_am) in
      let snap = Core.Snapshot.of_trace trace in
      let sample_messages =
        let rng = Core.Rng.create ~seed:79L () in
        let n = Core.Trace.n_nodes trace in
        List.init 25 (fun _ ->
            let src = Core.Rng.int rng n in
            let dst = (src + 1 + Core.Rng.int rng (n - 1)) mod n in
            (src, dst, Core.Rng.float rng 7200.))
      in
      let row k =
        let tes =
          List.filter_map
            (fun (src, dst, t_create) ->
              let result =
                Core.Enumerate.run
                  ~config:
                    { Core.Enumerate.k; max_hops = None; stop_at_total = Some k; exhaustive = false }
                  snap ~src ~dst ~t_create
              in
              (Core.Explosion.analyze ~n_explosion:k result).Core.Explosion.te)
            sample_messages
        in
        let arr = Array.of_list tes in
        [
          string_of_int k;
          string_of_int (Array.length arr);
          Printf.sprintf "%.0f" (Core.Quantile.median arr);
          Printf.sprintf "%.0f" (Core.Quantile.quantile arr 0.9);
        ]
      in
      "== A04: explosion threshold k vs measured TE (Infocom am, 25 msgs) ==\n"
      ^ Core.Table.render
          ~align:[ Core.Table.Right; Right; Right; Right ]
          ~header:[ "k"; "exploded"; "median TE (s)"; "p90 TE (s)" ]
          (List.map row [ 500; 1000; 2000 ])
      ^ "\n\
         (TE grows mildly with k: more paths must arrive; the paper's 2000 is\n\
         far past the knee, so the quadrant structure is insensitive to it)");
  section options "parallel" (fun () ->
      (* Sequential vs domain-parallel runner on the paper's six
         algorithms: same seeds, same workloads, so the metrics must be
         identical — only wall time may differ.

         The comparison is honest about the hardware: the headline pits
         jobs = 1 against jobs = cores as detected, never oversubscribed
         beyond it (running 4 domains on 1 core measures scheduling
         overhead, not parallelism — which is exactly the bug this bench
         used to have). A per-jobs ladder up to the core count records
         how the pool scales; on a single-core box the ladder collapses
         to jobs = 1 and the "speedup" is annotated as timing noise. *)
      let trace = Core.Dataset.(generate infocom06_am) in
      let n_seeds = Int.max 4 scale.E.seeds in
      let spec =
        {
          Core.Runner.workload = Core.Workload.paper_spec ~n_nodes:(Core.Trace.n_nodes trace);
          seeds = Core.Runner.default_seeds n_seeds;
        }
      in
      let entries = Core.Registry.paper_six in
      let factories = List.map (fun e -> e.Core.Registry.factory) entries in
      let run jobs = Core.Runner.run_many ~jobs ~trace ~spec ~factories () in
      let time jobs =
        let t0 = Core.Clock.now_s () in
        let metrics = run jobs in
        (Core.Clock.now_s () -. t0, metrics)
      in
      let cores = Core.Parallel.default_jobs () in
      (* Powers of two up to the core count, plus the core count: the
         requested --jobs is honoured only up to what the box has. *)
      let ladder =
        let rec doubling j = if j >= cores then [ cores ] else j :: doubling (2 * j) in
        doubling 1
      in
      let jobs_par = Int.min (Int.max 1 options.jobs) cores in
      ignore (run 1) (* warm-up: page in the code and size the heap *);
      let wall_seq, metrics_seq = time 1 in
      let scaling =
        List.map
          (fun jobs ->
            let wall, metrics = time jobs in
            (jobs, wall, wall_seq /. wall, List.for_all2 Core.Metrics.equal metrics_seq metrics))
          ladder
      in
      let wall_par, speedup =
        let _, w, s, _ = List.find (fun (j, _, _, _) -> j = cores) scaling in
        (w, s)
      in
      let identical = List.for_all (fun (_, _, _, id) -> id) scaling in
      let json =
        Printf.sprintf
          "{\n\
          \  \"benchmark\": \"parallel_runner\",\n\
          \  \"dataset\": \"infocom06_am\",\n\
          \  \"algorithms\": [%s],\n\
          \  \"seeds\": %d,\n\
          \  \"cores\": %d,\n\
          \  \"jobs\": %d,\n\
          \  \"jobs_requested\": %d,\n\
          \  \"wall_s_sequential\": %.3f,\n\
          \  \"wall_s_parallel\": %.3f,\n\
          \  \"speedup\": %.3f,\n\
          \  \"speedup_is_noise\": %b,\n\
          \  \"metrics_identical\": %b,\n\
          \  \"scaling\": [\n\
           %s\n\
          \  ]\n\
           }\n"
          (String.concat ", "
             (List.map (fun e -> Printf.sprintf "%S" e.Core.Registry.label) entries))
          n_seeds cores cores jobs_par wall_seq wall_par speedup (cores = 1) identical
          (String.concat ",\n"
             (List.map
                (fun (jobs, wall, speedup, id) ->
                  Printf.sprintf
                    "    { \"jobs\": %d, \"wall_s\": %.3f, \"speedup\": %.3f, \
                     \"metrics_identical\": %b }"
                    jobs wall speedup id)
                scaling))
      in
      let oc = open_out "BENCH_parallel.json" in
      output_string oc json;
      close_out oc;
      let table =
        String.concat "\n"
          (List.map
             (fun (jobs, wall, speedup, id) ->
               Printf.sprintf "  jobs=%-3d %8.3f s   %5.2fx   identical: %b" jobs wall speedup
                 id)
             scaling)
      in
      Printf.sprintf
        "== Parallel runner: %d algorithms x %d seeds (Infocom am) ==\n\
         sequential (jobs=1):     %.3f s\n\
         parallel   (jobs=cores=%d): %.3f s\n\
         %s    metrics identical (all jobs): %b\n\
         scaling:\n\
         %s\n\
         (written to BENCH_parallel.json)"
        (List.length entries) n_seeds wall_seq cores wall_par
        (if cores = 1 then
           Printf.sprintf
             "speedup: %.2fx — single-core box, jobs=cores=1: this is run-to-run noise, not \
              parallelism."
             speedup
         else Printf.sprintf "speedup: %.2fx" speedup)
        identical table);
  section options "serve" (fun () ->
      (* Online serving: ingest throughput into the sliding window,
         per-query latency against the live window, the hard memory
         cap, and whether the adaptive router earns its keep under
         injected faults. Everything runs through Serve.handle — the
         same line protocol the CLI speaks — so the numbers include
         parsing and reply formatting. *)
      let trace = Core.Dataset.(generate infocom06_am) in
      let n_nodes = Core.Trace.n_nodes trace in
      let contacts = Array.to_list (Core.Trace.contacts trace) in
      let n_events = List.length contacts in
      (* Hex floats: parse back exactly, so the protocol round-trip
         cannot reorder or degenerate short contacts. *)
      let contact_line (c : Core.Contact.t) =
        Printf.sprintf "%d,%d,%h,%h" c.Core.Contact.a c.Core.Contact.b c.Core.Contact.t_start
          c.Core.Contact.t_end
      in
      let strategies = [ "epidemic"; "direct"; "two-hop" ] in
      let server ?faults ?(span = 1800.) ?(budget = 100_000)
          ?(policy = Core.Serve_window.Slide) ?(strategies = strategies) () =
        match
          Core.Serve.create
            {
              Core.Serve.default_config with
              Core.Serve.window = { Core.Serve_window.span; budget; policy; nodes = 0 };
              strategies;
              faults;
            }
        with
        | Ok s -> s
        | Error msg -> invalid_arg msg
      in
      let feed s line =
        match Core.Serve.handle s line with `Reply _ | `Stop _ -> ()
      in
      (* -- ingest throughput -- *)
      let ingest_server = server () in
      let lines = List.map contact_line contacts in
      let t0 = Core.Clock.now_s () in
      List.iter (feed ingest_server) lines;
      let wall_ingest = Core.Clock.now_s () -. t0 in
      let events_per_s = float_of_int n_events /. Float.max wall_ingest 1e-9 in
      (* -- query latency on the live window -- *)
      feed ingest_server (Printf.sprintf "advance %h" (Core.Trace.horizon trace));
      (* Latencies go through the telemetry histogram (log-bucketed,
         ~12.5% bucket width) instead of an exact sort: same digest the
         serve metrics endpoint reports, and the bucket counts land in
         the JSON so regressions show as shape changes, not just two
         moving percentiles. *)
      let time_queries mk =
        let h = Core.Hist.create () in
        for i = 0 to 29 do
          let src = i * 5 mod n_nodes in
          let dst = (src + 13) mod n_nodes in
          let line = mk src dst in
          let q0 = Core.Clock.now_s () in
          feed ingest_server line;
          Core.Hist.add h ((Core.Clock.now_s () -. q0) *. 1000.)
        done;
        h
      in
      let hist_json h =
        let d = Core.Hist.digest h in
        let buckets =
          Core.Hist.buckets h
          |> List.map (fun (le, c) ->
                 Printf.sprintf "{ \"le\": \"%s\", \"count\": %d }"
                   (if Float.is_finite le then Printf.sprintf "%g" le else "+Inf")
                   c)
          |> String.concat ", "
        in
        Printf.sprintf
          "{ \"p50\": %.3f, \"p99\": %.3f, \"p999\": %.3f, \"max\": %.3f, \"count\": %d, \
           \"buckets\": [ %s ] }"
          d.Core.Hist.d_p50 d.Core.Hist.d_p99 d.Core.Hist.d_p999 d.Core.Hist.d_max
          d.Core.Hist.d_count buckets
      in
      let delivery_h = time_queries (fun src dst -> Printf.sprintf "delivery %d %d" src dst) in
      let paths_h = time_queries (fun src dst -> Printf.sprintf "paths %d %d" src dst) in
      let delivery_p50, delivery_p99 =
        let d = Core.Hist.digest delivery_h in
        (d.Core.Hist.d_p50, d.Core.Hist.d_p99)
      in
      let paths_p50, paths_p99 =
        let d = Core.Hist.digest paths_h in
        (d.Core.Hist.d_p50, d.Core.Hist.d_p99)
      in
      (* -- memory cap under backpressure -- *)
      let cap_budget = 500 in
      let cap_check policy =
        let s = server ~budget:cap_budget ~policy () in
        List.iter (feed s) lines;
        let summary = Core.Serve.summary s in
        (summary.Core.Serve.s_peak, summary.Core.Serve.s_peak <= cap_budget)
      in
      let drop_peak, drop_ok = cap_check Core.Serve_window.Drop in
      let slide_peak, slide_ok = cap_check Core.Serve_window.Slide in
      (* -- adaptive vs static delivery under faults -- *)
      let faults =
        { Core.Faults.loss = 0.35; crash_rate = 0.; down_time = 300.; jitter = 0.2; seed = 7L }
      in
      let session_lines =
        let k = ref 0 in
        List.concat_map
          (fun (c : Core.Contact.t) ->
            incr k;
            let line = contact_line c in
            if !k mod 40 <> 0 then [ line ]
            else begin
              let src = !k * 3 mod n_nodes in
              let dst = (src + 11) mod n_nodes in
              if src = dst then [ line ]
              else
                [
                  line;
                  Printf.sprintf "inject %d %d" src dst;
                  Printf.sprintf "advance %h" c.Core.Contact.t_start;
                ]
            end)
          contacts
        @ [ Printf.sprintf "advance %h" (Core.Trace.horizon trace +. 3600.) ]
      in
      let delivery_ratio strategies =
        (* The shorter span bounds both the per-evaluation trace and
           how long an undeliverable message stays live — this is the
           expensive quarter of the section. *)
        let s = server ~faults ~span:900. ~strategies () in
        List.iter (feed s) session_lines;
        let summary = Core.Serve.summary s in
        let resolved = summary.Core.Serve.s_delivered + summary.Core.Serve.s_expired in
        if resolved = 0 then 0.
        else float_of_int summary.Core.Serve.s_delivered /. float_of_int resolved
      in
      let adaptive = delivery_ratio strategies in
      let static = List.map (fun name -> (name, delivery_ratio [ name ])) strategies in
      let best_static = List.fold_left (fun acc (_, r) -> Float.max acc r) 0. static in
      let json =
        Printf.sprintf
          "{\n\
          \  \"benchmark\": \"serve\",\n\
          \  \"dataset\": \"infocom06_am\",\n\
          \  \"events\": %d,\n\
          \  \"window_span_s\": 1800,\n\
          \  \"ingest_events_per_s\": %.0f,\n\
          \  \"delivery_query_ms\": %s,\n\
          \  \"paths_query_ms\": %s,\n\
          \  \"budget\": %d,\n\
          \  \"peak_drop\": %d,\n\
          \  \"peak_slide\": %d,\n\
          \  \"memory_cap_enforced\": %b,\n\
          \  \"faults\": { \"loss\": 0.35, \"jitter\": 0.2 },\n\
          \  \"delivery_ratio_adaptive\": %.3f,\n\
          \  \"delivery_ratio_static\": { %s },\n\
          \  \"adaptive_vs_best_static\": %.3f\n\
           }\n"
          n_events events_per_s (hist_json delivery_h) (hist_json paths_h) cap_budget
          drop_peak slide_peak (drop_ok && slide_ok) adaptive
          (String.concat ", "
             (List.map (fun (name, r) -> Printf.sprintf "%S: %.3f" name r) static))
          (adaptive -. best_static)
      in
      let oc = open_out "BENCH_serve.json" in
      output_string oc json;
      close_out oc;
      Printf.sprintf
        "== Serve: online window over Infocom am (%d events) ==\n\
         ingest:  %.0f events/s (window 1800 s, budget unconstrained)\n\
         queries: delivery p50 %.2f ms, p99 %.2f ms; paths p50 %.2f ms, p99 %.2f ms\n\
         memory:  budget %d -> peak %d (drop) / %d (slide); cap enforced: %b\n\
         faults (loss 0.35, jitter 0.2): adaptive %.3f vs static %s (best-static delta %+.3f)\n\
         (written to BENCH_serve.json)"
        n_events events_per_s delivery_p50 delivery_p99 paths_p50 paths_p99 cap_budget
        drop_peak slide_peak (drop_ok && slide_ok) adaptive
        (String.concat ", " (List.map (fun (name, r) -> Printf.sprintf "%s %.3f" name r) static))
        (adaptive -. best_static));
  section options "store" (fun () ->
      (* The algorithm-comparison sweep, cold (store just emptied, every
         outcome simulated and written) vs warm (every outcome replayed
         from disk). Warm must be bit-identical — a store hit is the
         canonical encoding of exactly the run it replaces — and much
         faster, since it never constructs an algorithm or steps the
         engine. Results land in BENCH_store.json. *)
      let trace = Core.Dataset.(generate infocom06_am) in
      let n_seeds = Int.max 4 scale.E.seeds in
      let workload = Core.Workload.paper_spec ~n_nodes:(Core.Trace.n_nodes trace) in
      let spec = { Core.Runner.workload; seeds = Core.Runner.default_seeds n_seeds } in
      let entries = Core.Registry.paper_six in
      let factories = List.map (fun e -> e.Core.Registry.factory) entries in
      let st = Core.Store.open_ ~dir:options.store_dir () in
      ignore (Core.Store.gc st ~max_bytes:0);
      let caches =
        let trace_hash = Core.Store_key.trace_hash trace in
        List.map
          (fun (e : Core.Registry.entry) ->
            Core.Store_memo.runner_cache ~store:st ~trace_hash ~workload
              ~algo:e.Core.Registry.name ())
          entries
      in
      let time jobs =
        let t0 = Core.Clock.now_s () in
        let metrics = Core.Runner.run_many ~jobs ~stores:caches ~trace ~spec ~factories () in
        (Core.Clock.now_s () -. t0, metrics)
      in
      let wall_cold, metrics_cold = time options.jobs in
      let wall_warm, metrics_warm = time options.jobs in
      (* A warm replay must also be independent of --jobs. *)
      let _, metrics_warm_seq = time 1 in
      let identical =
        List.for_all2 Core.Metrics.equal metrics_cold metrics_warm
        && List.for_all2 Core.Metrics.equal metrics_cold metrics_warm_seq
      in
      let speedup = wall_cold /. wall_warm in
      let s = Core.Store.stats st in
      let json =
        Printf.sprintf
          "{\n\
          \  \"benchmark\": \"result_store\",\n\
          \  \"dataset\": \"infocom06_am\",\n\
          \  \"algorithms\": [%s],\n\
          \  \"seeds\": %d,\n\
          \  \"jobs\": %d,\n\
          \  \"wall_s_cold\": %.3f,\n\
          \  \"wall_s_warm\": %.3f,\n\
          \  \"speedup\": %.3f,\n\
          \  \"metrics_identical\": %b,\n\
          \  \"entries\": %d,\n\
          \  \"bytes\": %d,\n\
          \  \"hits\": %Ld,\n\
          \  \"misses\": %Ld\n\
           }\n"
          (String.concat ", "
             (List.map (fun e -> Printf.sprintf "%S" e.Core.Registry.label) entries))
          n_seeds options.jobs wall_cold wall_warm speedup identical s.Core.Store.entries
          s.Core.Store.bytes s.Core.Store.hits s.Core.Store.misses
      in
      let oc = open_out "BENCH_store.json" in
      output_string oc json;
      close_out oc;
      Printf.sprintf
        "== Result store: %d algorithms x %d seeds, cold vs warm (Infocom am) ==\n\
         cold (compute + store): %.3f s\n\
         warm (replay from %s): %.3f s\n\
         speedup: %.2fx    metrics bit-identical (incl. across --jobs): %b\n\
         store: %d entries, %d bytes\n\
         (written to BENCH_store.json)"
        (List.length entries) n_seeds wall_cold options.store_dir wall_warm speedup identical
        s.Core.Store.entries s.Core.Store.bytes);
  section options "resilience" (fun () ->
      (* The robustness claim, quantified: sweep fault intensity over
         the six algorithms and record delivery, attempts-vs-copies
         overhead and surviving path counts to BENCH_resilience.json.
         Also asserts that a faulted fixed-seed run is bit-identical
         under sequential and parallel execution. *)
      let dataset = Dataset.infocom06_am in
      let res_scale = { scale with E.seeds = Int.max 2 (scale.E.seeds / 2 + 1) } in
      let intensities = [ 0.; 0.5; 1.; 2. ] in
      let study =
        E.resilience_study ~jobs:options.jobs ~scale:res_scale ~intensities ~path_messages:30
          dataset
      in
      let deterministic =
        (* Re-run one faulted level sequentially and fanned out: the
           plan keys every decision by entity, so metrics must match. *)
        let trace = study.E.res_trace in
        let plan =
          Core.Faults.compile ~n_nodes:(Core.Trace.n_nodes trace)
            ~horizon:(Core.Trace.horizon trace) E.default_fault_spec
        in
        let spec =
          {
            Core.Runner.workload = Core.Workload.paper_spec ~n_nodes:(Core.Trace.n_nodes trace);
            seeds = Core.Runner.default_seeds 2;
          }
        in
        let factories = List.map (fun e -> e.Core.Registry.factory) Core.Registry.paper_six in
        let seq = Core.Runner.run_many ~jobs:1 ~faults:plan ~trace ~spec ~factories () in
        let par =
          Core.Runner.run_many
            ~jobs:(Int.max 4 options.jobs)
            ~faults:plan ~trace ~spec ~factories ()
        in
        List.for_all2 Core.Metrics.equal seq par
      in
      let level_json (l : E.resilience_level) =
        let algo_json (entry, (m : Core.Metrics.t)) =
          let overhead = Core.Metrics.overhead m in
          Printf.sprintf
            "      { \"algorithm\": %S, \"delivery_ratio\": %.4f, \"mean_delay_s\": %s, \
             \"copies\": %d, \"attempts\": %d, \"overhead\": %s }"
            entry.Core.Registry.label m.Core.Metrics.success_rate
            (if Float.is_nan m.Core.Metrics.mean_delay then "null"
             else Printf.sprintf "%.1f" m.Core.Metrics.mean_delay)
            m.Core.Metrics.copies m.Core.Metrics.attempts
            (if Float.is_nan overhead then "null" else Printf.sprintf "%.3f" overhead)
        in
        let survival = l.E.res_survival in
        let median f =
          match survival with
          | [] -> Float.nan
          | _ -> Core.Quantile.median (Array.of_list (List.map f survival))
        in
        let delivered =
          List.length (List.filter (fun s -> s.Core.Explosion.still_delivered) survival)
        in
        Printf.sprintf
          "    {\n\
          \      \"intensity\": %.2f,\n\
          \      \"loss\": %.4f,\n\
          \      \"crashes_per_hour\": %.3f,\n\
          \      \"down_time_s\": %.0f,\n\
          \      \"jitter\": %.3f,\n\
          \      \"algorithms\": [\n\
           %s\n\
          \      ],\n\
          \      \"paths\": { \"probes\": %d, \"still_delivered\": %d, \
           \"median_baseline_paths\": %.0f, \"median_surviving_paths\": %.0f, \
           \"median_survival_ratio\": %.3f }\n\
          \    }"
          l.E.res_intensity l.E.res_spec.Core.Faults.loss
          (l.E.res_spec.Core.Faults.crash_rate *. 3600.)
          l.E.res_spec.Core.Faults.down_time l.E.res_spec.Core.Faults.jitter
          (String.concat ",\n" (List.map algo_json l.E.res_rows))
          (List.length survival) delivered
          (median (fun s -> float_of_int s.Core.Explosion.baseline_paths))
          (median (fun s -> float_of_int s.Core.Explosion.surviving_paths))
          (median (fun s -> s.Core.Explosion.survival_ratio))
      in
      let json =
        Printf.sprintf
          "{\n\
          \  \"benchmark\": \"resilience\",\n\
          \  \"dataset\": \"infocom06_am\",\n\
          \  \"seeds\": %d,\n\
          \  \"fault_seed\": %Ld,\n\
          \  \"deterministic_across_jobs\": %b,\n\
          \  \"levels\": [\n\
           %s\n\
          \  ]\n\
           }\n"
          res_scale.E.seeds study.E.res_base.Core.Faults.seed deterministic
          (String.concat ",\n" (List.map level_json study.E.res_levels))
      in
      let oc = open_out "BENCH_resilience.json" in
      output_string oc json;
      close_out oc;
      R.render_resilience
        ~title:"Resilience: the six algorithms under injected faults (Infocom am)" study
      ^ Printf.sprintf
          "\nfaulted run bit-identical across --jobs: %b\n(written to BENCH_resilience.json)"
          deterministic);
  section options "robust" (fun () ->
      (* Robustness must be free when off: price the disabled failpoint
         trigger (no plan installed), a sweep under a plan naming only
         an unrelated site (the trigger now scans the plan per hit),
         and checkpoint rounds vs one big batch (extra manifest writes
         per round). All variants must stay bit-identical. Results land
         in BENCH_robust.json. *)
      let trace = Core.Dataset.(generate infocom06_am) in
      let n_seeds = Int.max 4 scale.E.seeds in
      let workload = Core.Workload.paper_spec ~n_nodes:(Core.Trace.n_nodes trace) in
      let spec = { Core.Runner.workload; seeds = Core.Runner.default_seeds n_seeds } in
      let entries = Core.Registry.paper_six in
      let factories = List.map (fun e -> e.Core.Registry.factory) entries in
      Core.Failpoint.uninstall ();
      let reps = 10_000_000 in
      let t0 = Core.Clock.now_s () in
      for _ = 1 to reps do
        Core.Failpoint.trigger "bench.disabled"
      done;
      let disabled_ns = (Core.Clock.now_s () -. t0) /. float_of_int reps *. 1e9 in
      let time_sweep () =
        let t0 = Core.Clock.now_s () in
        let m = Core.Runner.run_many ~jobs:options.jobs ~trace ~spec ~factories () in
        (Core.Clock.now_s () -. t0, m)
      in
      let wall_off, m_off = time_sweep () in
      let wall_plan, m_plan =
        match Core.Failpoint.parse "bench.unrelated=error" with
        | Error e -> invalid_arg e
        | Ok plan ->
          Core.Failpoint.install plan;
          Fun.protect ~finally:Core.Failpoint.uninstall time_sweep
      in
      let st = Core.Store.open_ ~dir:options.store_dir () in
      let caches =
        let trace_hash = Core.Store_key.trace_hash trace in
        List.map
          (fun (e : Core.Registry.entry) ->
            Core.Store_memo.runner_cache ~store:st ~trace_hash ~workload
              ~algo:e.Core.Registry.name ())
          entries
      in
      let time_ckpt checkpoint =
        ignore (Core.Store.gc st ~max_bytes:0);
        let t0 = Core.Clock.now_s () in
        let m =
          Core.Runner.run_many ~jobs:options.jobs ~stores:caches ~checkpoint ~trace ~spec
            ~factories ()
        in
        (Core.Clock.now_s () -. t0, m)
      in
      let wall_c0, m_c0 = time_ckpt 0 in
      let wall_c1, m_c1 = time_ckpt 1 in
      let wall_c8, m_c8 = time_ckpt 8 in
      let identical =
        List.for_all2 Core.Metrics.equal m_off m_plan
        && List.for_all2 Core.Metrics.equal m_off m_c0
        && List.for_all2 Core.Metrics.equal m_off m_c1
        && List.for_all2 Core.Metrics.equal m_off m_c8
      in
      let json =
        Printf.sprintf
          "{\n\
          \  \"benchmark\": \"robust\",\n\
          \  \"dataset\": \"infocom06_am\",\n\
          \  \"seeds\": %d,\n\
          \  \"jobs\": %d,\n\
          \  \"disabled_trigger_ns\": %.2f,\n\
          \  \"sweep_wall_s_no_plan\": %.3f,\n\
          \  \"sweep_wall_s_unrelated_plan\": %.3f,\n\
          \  \"checkpoint_wall_s\": { \"off\": %.3f, \"every_task\": %.3f, \"every_8\": %.3f },\n\
          \  \"metrics_identical\": %b\n\
           }\n"
          n_seeds options.jobs disabled_ns wall_off wall_plan wall_c0 wall_c1 wall_c8 identical
      in
      let oc = open_out "BENCH_robust.json" in
      output_string oc json;
      close_out oc;
      Printf.sprintf
        "== Robustness overhead: failpoints and checkpoint rounds (Infocom am) ==\n\
         disabled trigger (no plan installed): %.2f ns/site\n\
         sweep %d algorithms x %d seeds: no plan %.3f s, unrelated plan installed %.3f s\n\
         checkpointed sweep: off %.3f s, --checkpoint 1 %.3f s, --checkpoint 8 %.3f s\n\
         all variants bit-identical: %b\n\
         (written to BENCH_robust.json)"
        disabled_ns (List.length entries) n_seeds wall_off wall_plan wall_c0 wall_c1 wall_c8
        identical);
  if options.micro && wanted options "micro" then micro_benchmarks ()
