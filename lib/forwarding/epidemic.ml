let factory _trace = Psn_sim.Algorithm.stateless ~name:"Epidemic" (fun _ -> true)
