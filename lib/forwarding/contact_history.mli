(** Online contact history.

    Shared state for history-based algorithms: last encounter time and
    encounter count per node pair, plus per-node totals — everything
    FRESH, Greedy and Greedy Online need, learned purely from the
    contacts observed so far. *)

type t

val create : n:int -> t
(** Empty history over a population of [n] nodes. *)

val observe : t -> time:float -> a:Psn_trace.Node.id -> b:Psn_trace.Node.id -> unit
(** Record one contact (symmetric). Raises [Invalid_argument] on
    out-of-range nodes or [a = b]. *)

val last_encounter : t -> Psn_trace.Node.id -> Psn_trace.Node.id -> float option
(** Most recent contact time of the pair, if they ever met. *)

val pair_count : t -> Psn_trace.Node.id -> Psn_trace.Node.id -> int
(** Number of contacts of the pair so far. *)

val total_count : t -> Psn_trace.Node.id -> int
(** Number of contacts the node has had with anyone so far. *)
