(** Epidemic forwarding (Vahdat & Becker): copy to every node met.

    Under infinite buffers and instant transfers this finds the optimal
    path whenever one exists, so it upper-bounds both success rate and
    delay — the paper uses it as the performance ceiling. *)

val factory : Psn_sim.Algorithm.factory
