module Algorithm = Psn_sim.Algorithm

type params = { p_init : float; beta : float; gamma : float; tau : float }

let default_params = { p_init = 0.75; beta = 0.25; gamma = 0.98; tau = 60. }

let validate p =
  if not (p.p_init >= 0. && p.p_init <= 1.) then invalid_arg "Prophet: p_init must be in [0, 1]";
  if not (p.beta >= 0. && p.beta <= 1.) then invalid_arg "Prophet: beta must be in [0, 1]";
  if not (p.gamma > 0. && p.gamma <= 1.) then invalid_arg "Prophet: gamma must be in (0, 1]";
  if not (p.tau > 0.) then invalid_arg "Prophet: tau must be positive"

let factory ?(params = default_params) () =
  validate params;
  fun trace ->
    let n = Psn_trace.Trace.n_nodes trace in
    let pred = Array.make (n * n) 0. in
    let aged = Array.make (n * n) 0. in
    (* Aging is applied lazily per direction when the entry is next read
       or written. *)
    let age time i =
      let dt = time -. aged.(i) in
      if dt > 0. && pred.(i) > 0. then
        pred.(i) <- pred.(i) *. Float.pow params.gamma (dt /. params.tau);
      aged.(i) <- time
    in
    let idx a b = (a * n) + b in
    let get time a b =
      let i = idx a b in
      age time i;
      pred.(i)
    in
    let set time a b v =
      let i = idx a b in
      age time i;
      pred.(i) <- v
    in
    let observe_contact ~time ~a ~b =
      let bump x y =
        let p = get time x y in
        set time x y (p +. ((1. -. p) *. params.p_init))
      in
      bump a b;
      bump b a;
      (* Transitivity: meeting b teaches a about b's contacts, and
         symmetrically. *)
      for c = 0 to n - 1 do
        if c <> a && c <> b then begin
          let via_b = get time a b *. get time b c *. params.beta in
          if via_b > get time a c then set time a c via_b;
          let via_a = get time b a *. get time a c *. params.beta in
          if via_a > get time b c then set time b c via_a
        end
      done
    in
    {
      Algorithm.name = "PRoPHET";
      observe_contact;
      on_create = (fun _ -> ());
      should_forward =
        (fun ctx ->
          let dst = ctx.Algorithm.message.Psn_sim.Message.dst in
          get ctx.Algorithm.time ctx.Algorithm.peer dst
          > get ctx.Algorithm.time ctx.Algorithm.holder dst);
      on_forward = (fun _ -> ());
    }
