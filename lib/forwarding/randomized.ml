let factory ?(p = 0.5) ?(seed = 7L) () =
  if not (p >= 0. && p <= 1.) then invalid_arg "Randomized.factory: p must be in [0, 1]";
  fun _trace ->
    let rng = Psn_prng.Rng.create ~seed () in
    Psn_sim.Algorithm.stateless
      ~name:(Printf.sprintf "Random(p=%g)" p)
      (fun _ -> Psn_prng.Rng.bernoulli rng p)
