let factory _trace = Psn_sim.Algorithm.stateless ~name:"Direct" (fun _ -> false)
