(** Two-hop relay (Grossglauser & Tse, 2002).

    The classic capacity-motivated scheme: the source hands copies to
    relays it meets, but relays never re-forward — they hold their copy
    until they meet the destination themselves. Paths have at most two
    hops, so this isolates how much of the paper's performance comes
    from genuinely multi-hop paths. *)

val factory : Psn_sim.Algorithm.factory
