module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact

type t = { labels : int array; count : int }

(* Weighted adjacency from total pairwise contact durations. *)
let contact_weights trace =
  let n = Trace.n_nodes trace in
  let w = Hashtbl.create 256 in
  Trace.iter_contacts trace (fun (c : Contact.t) ->
      let key = (c.Contact.a * n) + c.Contact.b in
      let existing = Option.value ~default:0. (Hashtbl.find_opt w key) in
      Hashtbl.replace w key (existing +. Contact.duration c));
  w

let adjacency trace ~min_weight =
  let n = Trace.n_nodes trace in
  let weights = contact_weights trace in
  let adj = Array.make n [] in
  (* Key-ordered so each adjacency list's order — and with it the float
     accumulation order in [detect]'s tally — is trace-determined. *)
  Psn_det.Det_tbl.iter ~cmp:Int.compare
    (fun key weight ->
      if weight >= min_weight then begin
        let a = key / n and b = key mod n in
        adj.(a) <- (b, weight) :: adj.(a);
        adj.(b) <- (a, weight) :: adj.(b)
      end)
    weights;
  adj

(* Relabel to dense [0, count). *)
let compact labels =
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  let dense =
    Array.map
      (fun label ->
        match Hashtbl.find_opt mapping label with
        | Some d -> d
        | None ->
          let d = !next in
          Hashtbl.add mapping label d;
          incr next;
          d)
      labels
  in
  (dense, !next)

let detect ?(max_rounds = 50) ?(min_weight = 0.) trace =
  let n = Trace.n_nodes trace in
  let adj = adjacency trace ~min_weight in
  let labels = Array.init n Fun.id in
  (* Synchronous-order label propagation: each node adopts the label
     with the greatest incident weight, ties broken toward the smaller
     label so runs are deterministic. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    changed := false;
    incr rounds;
    for v = 0 to n - 1 do
      if not (List.is_empty adj.(v)) then begin
        let tally = Hashtbl.create 8 in
        List.iter
          (fun (u, weight) ->
            let label = labels.(u) in
            let existing = Option.value ~default:0. (Hashtbl.find_opt tally label) in
            Hashtbl.replace tally label (existing +. weight))
          adj.(v);
        let best = ref labels.(v) and best_weight = ref Float.neg_infinity in
        Psn_det.Det_tbl.iter ~cmp:Int.compare
          (fun label weight ->
            let c = Float.compare weight !best_weight in
            if c > 0 || (c = 0 && label < !best) then begin
              best := label;
              best_weight := weight
            end)
          tally;
        if !best <> labels.(v) then begin
          labels.(v) <- !best;
          changed := true
        end
      end
    done
  done;
  let dense, count = compact labels in
  { labels = dense; count }

let check t node =
  if node < 0 || node >= Array.length t.labels then invalid_arg "Community: node out of range"

let community_of t node =
  check t node;
  t.labels.(node)

let n_communities t = t.count

let members t label =
  if label < 0 || label >= t.count then invalid_arg "Community.members: unknown label";
  let out = ref [] in
  for v = Array.length t.labels - 1 downto 0 do
    if t.labels.(v) = label then out := v :: !out
  done;
  !out

let same_community t a b =
  check t a;
  check t b;
  t.labels.(a) = t.labels.(b)

let sizes t =
  let sizes = Array.make t.count 0 in
  Array.iter (fun label -> sizes.(label) <- sizes.(label) + 1) t.labels;
  sizes

let modularity t trace =
  let n = Trace.n_nodes trace in
  let weights = contact_weights trace in
  let degree = Array.make n 0. in
  let total = ref 0. in
  (* Both passes sum floats: key order fixes the rounding. *)
  Psn_det.Det_tbl.iter ~cmp:Int.compare
    (fun key weight ->
      let a = key / n and b = key mod n in
      degree.(a) <- degree.(a) +. weight;
      degree.(b) <- degree.(b) +. weight;
      total := !total +. weight)
    weights;
  if Float.equal !total 0. then 0.
  else begin
    let two_m = 2. *. !total in
    let q = ref 0. in
    (* Sum over intra-community pairs of (A_ij - k_i k_j / 2m); the
       A_ij term only over existing edges, the null term over all
       same-community ordered pairs. *)
    Psn_det.Det_tbl.iter ~cmp:Int.compare
      (fun key weight ->
        let a = key / n and b = key mod n in
        if t.labels.(a) = t.labels.(b) then q := !q +. (2. *. weight))
      weights;
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if t.labels.(a) = t.labels.(b) then
          q := !q -. (degree.(a) *. degree.(b) /. two_m)
      done
    done;
    !q /. two_m
  end
