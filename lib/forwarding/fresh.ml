module Algorithm = Psn_sim.Algorithm

let factory trace =
  let history = Contact_history.create ~n:(Psn_trace.Trace.n_nodes trace) in
  {
    Algorithm.name = "FRESH";
    observe_contact = (fun ~time ~a ~b -> Contact_history.observe history ~time ~a ~b);
    on_create = (fun _ -> ());
    should_forward =
      (fun ctx ->
        let dst = ctx.Algorithm.message.Psn_sim.Message.dst in
        let age node =
          match Contact_history.last_encounter history node dst with
          | Some t -> t
          | None -> Float.neg_infinity
        in
        age ctx.Algorithm.peer > age ctx.Algorithm.holder);
    on_forward = (fun _ -> ());
  }
