module Algorithm = Psn_sim.Algorithm

let factory trace =
  let history = Contact_history.create ~n:(Psn_trace.Trace.n_nodes trace) in
  {
    Algorithm.name = "Greedy";
    observe_contact = (fun ~time ~a ~b -> Contact_history.observe history ~time ~a ~b);
    on_create = (fun _ -> ());
    should_forward =
      (fun ctx ->
        let dst = ctx.Algorithm.message.Psn_sim.Message.dst in
        Contact_history.pair_count history ctx.Algorithm.peer dst
        > Contact_history.pair_count history ctx.Algorithm.holder dst);
    on_forward = (fun _ -> ());
  }
