(** Delegation forwarding (Erramilli, Crovella, Chaintreau & Diot,
    MobiHoc 2008 — the authors' follow-up to the reproduced paper).

    Each message copy remembers the highest node "quality" it has seen
    so far; a holder forwards to a peer only when the peer's quality
    beats that running maximum (and then raises it). With quality =
    contact rate, this is the principled version of the §6.2 heuristic —
    climb the rate gradient, but only over genuine improvements, which
    cuts the copy count dramatically. *)

type quality =
  | Rate  (** Observed total contact count (destination-unaware). *)
  | Destination_frequency  (** Observed meetings with the message's
                               destination (destination-aware). *)

val factory : ?quality:quality -> unit -> Psn_sim.Algorithm.factory
(** [quality] defaults to [Rate]. *)
