(** Greedy forwarding: complete-history, destination-aware.

    Forward a copy to a peer that has met the destination more times
    since the start of the run than the current holder has. *)

val factory : Psn_sim.Algorithm.factory
