(** Greedy Total: destination-unaware, full (past + future) knowledge.

    Forward a copy to a peer whose total contact count over the whole
    trace exceeds the holder's — an oracle version of Greedy Online.
    The paper finds it performs especially well when the source is a
    low-rate ('out') node, consistent with the path-explosion account
    of §6.2. *)

val factory : Psn_sim.Algorithm.factory
