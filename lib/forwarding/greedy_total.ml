module Algorithm = Psn_sim.Algorithm

let factory trace =
  let totals = Psn_trace.Trace.contact_counts trace in
  Algorithm.stateless ~name:"Greedy Total" (fun ctx ->
      totals.(ctx.Algorithm.peer) > totals.(ctx.Algorithm.holder))
