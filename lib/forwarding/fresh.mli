(** FRESH (Dubois-Ferrière, Grossglauser & Vetterli, MobiHoc'03).

    Destination-aware, recent-history, single-hop criterion: forward a
    copy to a peer that has met the destination more recently than the
    current holder has. A node that never met the destination counts as
    having met it infinitely long ago. *)

val factory : Psn_sim.Algorithm.factory
