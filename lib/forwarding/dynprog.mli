(** The paper's "Dynamic Programming" algorithm.

    Computes minimum expected end-to-end delays between all pairs from
    the whole trace (past and future knowledge — see {!Meed}) and
    forwards a copy whenever the peer is strictly closer to the
    destination in expected delay. Based on Minimum Expected Delay
    routing (Jain, Fall & Patra, SIGCOMM'04). *)

val factory : Psn_sim.Algorithm.factory
