module Algorithm = Psn_sim.Algorithm

let factory trace =
  let costs = Meed.routing_costs trace in
  Algorithm.stateless ~name:"Dynamic Programming" (fun ctx ->
      let dst = ctx.Algorithm.message.Psn_sim.Message.dst in
      costs.(ctx.Algorithm.peer).(dst) < costs.(ctx.Algorithm.holder).(dst))
