(** Binary Spray and Wait (Spyropoulos, Psounis & Raghavendra, WDTN'05).

    Each message starts with [l] logical copy tokens at its source.
    A holder with more than one token hands half of them (rounded down)
    to any peer without the message; a holder with a single token waits
    for the destination (the engine's minimal-progress delivery). Caps
    replication at [l] copies — the paper's open cost question made
    concrete. *)

val factory : ?l:int -> unit -> Psn_sim.Algorithm.factory
(** [l] defaults to 8; must be >= 1. *)
