module Algorithm = Psn_sim.Algorithm

let factory trace =
  let history = Contact_history.create ~n:(Psn_trace.Trace.n_nodes trace) in
  {
    Algorithm.name = "Greedy Online";
    observe_contact = (fun ~time ~a ~b -> Contact_history.observe history ~time ~a ~b);
    on_create = (fun _ -> ());
    should_forward =
      (fun ctx ->
        Contact_history.total_count history ctx.Algorithm.peer
        > Contact_history.total_count history ctx.Algorithm.holder);
    on_forward = (fun _ -> ());
  }
