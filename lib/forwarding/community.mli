(** Community detection over contact graphs.

    Social-structure forwarding (BubbleRap and friends) needs a
    partition of the population into communities. This module builds a
    weighted contact graph from a trace (edge weight = total contact
    duration of the pair) and partitions it by synchronous-free label
    propagation — simple, deterministic given the tie-breaking order,
    and effective on the strongly modular graphs that venue-based
    mobility produces. *)

type t
(** A community assignment over a trace's population. *)

val detect : ?max_rounds:int -> ?min_weight:float -> Psn_trace.Trace.t -> t
(** Run label propagation on the contact-duration graph. Edges lighter
    than [min_weight] seconds of total contact (default 0) are ignored.
    [max_rounds] bounds the sweeps (default 50; propagation almost
    always stabilises within a handful). *)

val community_of : t -> Psn_trace.Node.id -> int
(** Community label of a node (labels are arbitrary but dense in
    [\[0, n_communities)]). Isolated nodes get singleton communities. *)

val n_communities : t -> int

val members : t -> int -> Psn_trace.Node.id list
(** Ascending members of one community. Raises [Invalid_argument] for
    an unknown label. *)

val same_community : t -> Psn_trace.Node.id -> Psn_trace.Node.id -> bool

val sizes : t -> int array
(** Community sizes, indexed by label. *)

val modularity : t -> Psn_trace.Trace.t -> float
(** Newman modularity Q of the assignment over the same weighted graph
    — a quality check: venue-structured traces should score well above
    0, a uniform random graph near 0. *)
