(** PRoPHET (Lindgren, Doria & Schelén, 2003).

    Probabilistic routing using delivery predictabilities: on every
    encounter [P(a,b) += (1 - P(a,b)) * p_init]; predictabilities age as
    [P *= gamma^(Δt / tau)]; and meetings propagate transitively as
    [P(a,c) = max(P(a,c), P(a,b) * P(b,c) * beta)]. A copy crosses a
    contact when the peer's predictability for the destination strictly
    exceeds the holder's. *)

type params = {
  p_init : float;  (** Encounter bump (default 0.75). *)
  beta : float;  (** Transitivity damping (default 0.25). *)
  gamma : float;  (** Aging base per time unit (default 0.98). *)
  tau : float;  (** Aging time unit in seconds (default 60). *)
}

val default_params : params

val factory : ?params:params -> unit -> Psn_sim.Algorithm.factory
(** Raises [Invalid_argument] for parameters outside their ranges
    ([p_init], [beta] in [\[0, 1\]], [gamma] in (0, 1], [tau] > 0). *)
