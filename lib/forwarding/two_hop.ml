module Algorithm = Psn_sim.Algorithm
module Message = Psn_sim.Message

let factory _trace =
  Algorithm.stateless ~name:"Two-Hop" (fun ctx ->
      (* Only the source sprays; the engine's minimal progress handles
         relay-to-destination delivery. *)
      ctx.Algorithm.holder = ctx.Algorithm.message.Message.src)
