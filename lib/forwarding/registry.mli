(** Name-indexed catalogue of forwarding algorithms. *)

type entry = {
  name : string;  (** Stable lookup key, e.g. ["greedy-total"]. *)
  label : string;  (** The paper's display name, e.g. ["Greedy Total"]. *)
  in_paper : bool;  (** Whether §6 of the paper evaluates it. *)
  online : bool;
      (** [true] when the algorithm decides from information available
          at decision time (contact history, per-encounter state) —
          deployable against a live stream. [false] for the oracles
          (Greedy Total, Dynamic Programming, BubbleRap) whose
          construction consumes the whole trace, future included:
          meaningful for batch hindsight baselines, not for serving. *)
  factory : Psn_sim.Algorithm.factory;
}

val paper_six : entry list
(** The six algorithms of Fig. 9, in the paper's order: Epidemic,
    FRESH, Greedy, Greedy Total, Greedy Online, Dynamic Programming. *)

val extensions : entry list
(** Direct, Random(0.5), Spray and Wait (L = 8), PRoPHET, Two-Hop, and
    Delegation forwarding (rate- and destination-quality variants) —
    algorithms from the related-work canon and the authors' follow-up
    work, provided for cost/ablation studies. *)

val all : entry list
(** [paper_six @ extensions]. *)

val online : entry list
(** The entries with [online = true], in [all]'s order — the candidate
    set [psn serve]'s adaptive router rebalances across (an oracle in
    a live window would silently become a different, weaker algorithm:
    its "future" ends at the window edge). *)

val find : string -> (entry, string) result
(** Look up by [name]; the error lists the valid names. *)
