(** Greedy Online: destination-unaware, past knowledge only.

    Forward a copy to a peer that has had more total contacts (with
    anyone) since the start of the run than the current holder — i.e.
    climb toward empirically higher-rate nodes, which §6.2 identifies as
    the mechanism that triggers path explosion quickly. *)

val factory : Psn_sim.Algorithm.factory
