type t = {
  n : int;
  last : float array;  (* n*n, row-major; nan = never met *)
  counts : int array;  (* n*n *)
  totals : int array;
}

let create ~n =
  if n <= 0 then invalid_arg "Contact_history.create: n must be positive";
  { n; last = Array.make (n * n) Float.nan; counts = Array.make (n * n) 0; totals = Array.make n 0 }

let check t a b =
  if a < 0 || b < 0 || a >= t.n || b >= t.n then
    invalid_arg "Contact_history: node out of range";
  if a = b then invalid_arg "Contact_history: self-contact"

let idx t a b = (a * t.n) + b

let observe t ~time ~a ~b =
  check t a b;
  t.last.(idx t a b) <- time;
  t.last.(idx t b a) <- time;
  t.counts.(idx t a b) <- t.counts.(idx t a b) + 1;
  t.counts.(idx t b a) <- t.counts.(idx t b a) + 1;
  t.totals.(a) <- t.totals.(a) + 1;
  t.totals.(b) <- t.totals.(b) + 1

let last_encounter t a b =
  check t a b;
  let v = t.last.(idx t a b) in
  if Float.is_nan v then None else Some v

let pair_count t a b =
  check t a b;
  t.counts.(idx t a b)

let total_count t node =
  if node < 0 || node >= t.n then invalid_arg "Contact_history.total_count: out of range";
  t.totals.(node)
