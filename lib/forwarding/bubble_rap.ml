module Algorithm = Psn_sim.Algorithm
module Message = Psn_sim.Message
module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact

let factory ?(min_weight = 60.) () =
  fun trace ->
  let communities = Community.detect ~min_weight trace in
  let global_rank = Trace.contact_counts trace in
  (* Local popularity: contacts with members of one's own community. *)
  let n = Trace.n_nodes trace in
  let local_rank = Array.make n 0 in
  Trace.iter_contacts trace (fun (c : Contact.t) ->
      if Community.same_community communities c.Contact.a c.Contact.b then begin
        local_rank.(c.Contact.a) <- local_rank.(c.Contact.a) + 1;
        local_rank.(c.Contact.b) <- local_rank.(c.Contact.b) + 1
      end);
  let in_dst_community node (m : Message.t) =
    Community.same_community communities node m.Message.dst
  in
  Algorithm.stateless ~name:"BubbleRap" (fun ctx ->
      let m = ctx.Algorithm.message in
      let holder = ctx.Algorithm.holder and peer = ctx.Algorithm.peer in
      if in_dst_community holder m then
        (* Local phase: stay in the community, climb local popularity. *)
        in_dst_community peer m && local_rank.(peer) > local_rank.(holder)
      else if in_dst_community peer m then
        (* Entering the destination's community always helps. *)
        true
      else
        (* Global phase: bubble up the global ranking. *)
        global_rank.(peer) > global_rank.(holder))
