(** Randomised flooding: copy across each contact opportunity with a
    fixed probability [p]. Interpolates between Direct (p = 0) and
    Epidemic (p = 1); used in ablations of how much replication path
    explosion actually requires. *)

val factory : ?p:float -> ?seed:int64 -> unit -> Psn_sim.Algorithm.factory
(** [p] defaults to 0.5. Raises [Invalid_argument] if [p] is outside
    [\[0, 1\]]. Each constructed run draws from its own stream seeded
    by [seed] (default 7). *)
