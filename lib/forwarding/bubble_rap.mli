(** BUBBLE Rap (Hui, Crowcroft & Yoneki, MobiHoc 2008).

    Social-structure forwarding built from two observables: a node's
    global popularity (total contacts) and its popularity inside its own
    community. A copy first "bubbles up" the global popularity ranking;
    once it reaches a node in the destination's community it bubbles up
    the local ranking instead, and never leaves the community again.

    This implementation is the oracle variant matching the paper's
    evaluation style: communities and rankings are computed from the
    whole trace at construction time (like Greedy Total and Dynamic
    Programming, it has past-and-future knowledge). *)

val factory : ?min_weight:float -> unit -> Psn_sim.Algorithm.factory
(** [min_weight] is forwarded to {!Community.detect} (default 60 s of
    cumulative contact — casual brushes don't define communities). *)
