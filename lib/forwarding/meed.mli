(** Expected inter-meeting delays (the MEED estimate of Jones, Li &
    Ward, WDTN'05).

    For a pair of nodes with meeting instants [t_1 < … < t_m] in a
    window of length [W], the expected wait until their next meeting
    from a uniformly random start is [Σ g_i² / (2 W)], where the gaps
    [g_i] include the lead-in [t_1 - 0] and tail [W - t_m]. Pairs that
    never meet get infinite delay. The routing metric is the all-pairs
    shortest path over these edge delays (Floyd-Warshall), i.e. the
    minimum expected end-to-end delay through any relay chain. *)

val pair_delay : Psn_trace.Trace.t -> Psn_trace.Node.id -> Psn_trace.Node.id -> float
(** Expected wait for the pair's next meeting; [infinity] if they never
    meet. The diagonal is 0 by convention. *)

val delay_matrix : Psn_trace.Trace.t -> float array array
(** All pairwise {!pair_delay}s, O(n² + contacts). *)

val routing_costs : Psn_trace.Trace.t -> float array array
(** [costs.(i).(j)]: minimum expected delay from [i] to [j] over any
    relay sequence — the Dynamic Programming algorithm's routing
    table. *)
