module Algorithm = Psn_sim.Algorithm
module Message = Psn_sim.Message

let factory ?(l = 8) () =
  if l < 1 then invalid_arg "Spray_wait.factory: l must be >= 1";
  fun _trace ->
    (* tokens (message id, node) -> remaining copy budget at that node *)
    let tokens : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
    let budget msg node = Option.value ~default:0 (Hashtbl.find_opt tokens (msg, node)) in
    {
      Algorithm.name = Printf.sprintf "Spray&Wait(L=%d)" l;
      observe_contact = (fun ~time:_ ~a:_ ~b:_ -> ());
      on_create =
        (fun m -> Hashtbl.replace tokens (m.Message.id, m.Message.src) l);
      should_forward =
        (fun ctx ->
          budget ctx.Algorithm.message.Message.id ctx.Algorithm.holder > 1);
      on_forward =
        (fun ctx ->
          let id = ctx.Algorithm.message.Message.id in
          let have = budget id ctx.Algorithm.holder in
          let give = have / 2 in
          Hashtbl.replace tokens (id, ctx.Algorithm.holder) (have - give);
          Hashtbl.replace tokens (id, ctx.Algorithm.peer) give);
    }
