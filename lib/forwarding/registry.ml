type entry = {
  name : string;
  label : string;
  in_paper : bool;
  online : bool;
  factory : Psn_sim.Algorithm.factory;
}

let paper_six =
  [
    {
      name = "epidemic";
      label = "Epidemic";
      in_paper = true;
      online = true;
      factory = Epidemic.factory;
    };
    { name = "fresh"; label = "FRESH"; in_paper = true; online = true; factory = Fresh.factory };
    { name = "greedy"; label = "Greedy"; in_paper = true; online = true; factory = Greedy.factory };
    {
      name = "greedy-total";
      label = "Greedy Total";
      in_paper = true;
      online = false;
      factory = Greedy_total.factory;
    };
    {
      name = "greedy-online";
      label = "Greedy Online";
      in_paper = true;
      online = true;
      factory = Greedy_online.factory;
    };
    {
      name = "dynamic-programming";
      label = "Dynamic Programming";
      in_paper = true;
      online = false;
      factory = Dynprog.factory;
    };
  ]

let extensions =
  [
    {
      name = "direct";
      label = "Direct";
      in_paper = false;
      online = true;
      factory = Direct.factory;
    };
    {
      name = "random";
      label = "Random(p=0.5)";
      in_paper = false;
      online = true;
      factory = Randomized.factory ();
    };
    {
      name = "spray-wait";
      label = "Spray&Wait(L=8)";
      in_paper = false;
      online = true;
      factory = Spray_wait.factory ();
    };
    {
      name = "prophet";
      label = "PRoPHET";
      in_paper = false;
      online = true;
      factory = Prophet.factory ();
    };
    {
      name = "two-hop";
      label = "Two-Hop";
      in_paper = false;
      online = true;
      factory = Two_hop.factory;
    };
    {
      name = "delegation";
      label = "Delegation(rate)";
      in_paper = false;
      online = true;
      factory = Delegation.factory ();
    };
    {
      name = "delegation-dest";
      label = "Delegation(dest)";
      in_paper = false;
      online = true;
      factory = Delegation.factory ~quality:Delegation.Destination_frequency ();
    };
    {
      name = "bubble-rap";
      label = "BubbleRap";
      in_paper = false;
      online = false;
      factory = Bubble_rap.factory ();
    };
  ]

let all = paper_six @ extensions
let online = List.filter (fun e -> e.online) all

let find name =
  match List.find_opt (fun e -> String.equal e.name name) all with
  | Some e -> Ok e
  | None ->
    let names = List.map (fun e -> e.name) all |> String.concat ", " in
    Error (Printf.sprintf "unknown algorithm %S (expected one of: %s)" name names)
