module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact

(* Meeting instants per pair, from contact start times. *)
let meeting_times trace =
  let n = Trace.n_nodes trace in
  let times = Array.make (n * n) [] in
  Trace.iter_contacts trace (fun (c : Contact.t) ->
      let i = (c.Contact.a * n) + c.Contact.b in
      times.(i) <- c.Contact.t_start :: times.(i));
  times

let expected_from_gaps window times_rev =
  (* times_rev is newest-first; traverse once accumulating squared gaps
     including the lead-in and tail segments. *)
  match times_rev with
  | [] -> Float.infinity
  | newest :: _ ->
    let tail = window -. newest in
    let rec go acc = function
      | [ oldest ] -> acc +. (oldest *. oldest)
      | t :: (t' :: _ as rest) ->
        let g = t -. t' in
        go (acc +. (g *. g)) rest
      | [] -> acc
    in
    let sum_sq = go (tail *. tail) times_rev in
    sum_sq /. (2. *. window)

let pair_delay trace a b =
  let n = Trace.n_nodes trace in
  if a < 0 || b < 0 || a >= n || b >= n then invalid_arg "Meed.pair_delay: node out of range";
  if a = b then 0.
  else begin
    let lo, hi = if a < b then (a, b) else (b, a) in
    let starts =
      Trace.fold_contacts trace ~init:[] ~f:(fun acc (c : Contact.t) ->
          if c.Contact.a = lo && c.Contact.b = hi then c.Contact.t_start :: acc else acc)
    in
    expected_from_gaps (Trace.horizon trace) starts
  end

let delay_matrix trace =
  let n = Trace.n_nodes trace in
  let window = Trace.horizon trace in
  let times = meeting_times trace in
  Array.init n (fun a ->
      Array.init n (fun b ->
          if a = b then 0.
          else
            let lo, hi = if a < b then (a, b) else (b, a) in
            expected_from_gaps window times.((lo * n) + hi)))

let routing_costs trace =
  let costs = delay_matrix trace in
  let n = Array.length costs in
  (* Floyd-Warshall; infinities propagate naturally. *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if Float.is_finite costs.(i).(k) then
        for j = 0 to n - 1 do
          let via = costs.(i).(k) +. costs.(k).(j) in
          if via < costs.(i).(j) then costs.(i).(j) <- via
        done
    done
  done;
  costs
