(** Direct delivery: the source never relays; it waits to meet the
    destination itself. The natural lower bound complementing
    epidemic's upper bound. *)

val factory : Psn_sim.Algorithm.factory
