module Algorithm = Psn_sim.Algorithm
module Message = Psn_sim.Message

type quality = Rate | Destination_frequency

let name_of = function
  | Rate -> "Delegation(rate)"
  | Destination_frequency -> "Delegation(dest)"

let factory ?(quality = Rate) () =
  fun trace ->
  let history = Contact_history.create ~n:(Psn_trace.Trace.n_nodes trace) in
  (* Highest quality witnessed per (message, copy-holding node). A copy
     inherits the sender's threshold when transferred. *)
  let thresholds : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let measure node (m : Message.t) =
    match quality with
    | Rate -> Contact_history.total_count history node
    | Destination_frequency -> Contact_history.pair_count history node m.Message.dst
  in
  let threshold (m : Message.t) node =
    match Hashtbl.find_opt thresholds (m.Message.id, node) with
    | Some v -> v
    | None -> measure node m
  in
  {
    Algorithm.name = name_of quality;
    observe_contact = (fun ~time ~a ~b -> Contact_history.observe history ~time ~a ~b);
    on_create =
      (fun m -> Hashtbl.replace thresholds (m.Message.id, m.Message.src) (measure m.Message.src m));
    should_forward =
      (fun ctx ->
        let m = ctx.Algorithm.message in
        measure ctx.Algorithm.peer m > threshold m ctx.Algorithm.holder);
    on_forward =
      (fun ctx ->
        let m = ctx.Algorithm.message in
        let peer_quality = measure ctx.Algorithm.peer m in
        let raised = Int.max peer_quality (threshold m ctx.Algorithm.holder) in
        (* Both holder and receiver move their level up to the witness. *)
        Hashtbl.replace thresholds (m.Message.id, ctx.Algorithm.holder) raised;
        Hashtbl.replace thresholds (m.Message.id, ctx.Algorithm.peer) raised);
  }
