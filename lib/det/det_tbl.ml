(* The one blessed gateway from hash tables to ordered data. Everything
   here funnels through [bindings], which snapshots the table and sorts
   by key, so callers can never observe hash order. This is the single
   justified hash-order-iteration suppression in lib/ — see DESIGN.md,
   "Static enforcement of the determinism contract". *)
[@@@lint.allow "hash-order-iteration"]

(* [Hashtbl.fold] visits a bucket's bindings most-recent-first; the
   cons accumulator reverses that, so a [List.rev] restores it before
   the stable sort — duplicate keys then enumerate most-recent-first,
   agreeing with [Hashtbl.find_all]. *)
let bindings ~cmp tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.rev
  |> List.stable_sort (fun (a, _) (b, _) -> cmp a b)

let keys ~cmp tbl = List.map fst (bindings ~cmp tbl)

let iter ~cmp f tbl = List.iter (fun (k, v) -> f k v) (bindings ~cmp tbl)

let fold ~cmp f tbl init = List.fold_left (fun acc (k, v) -> f k v acc) init (bindings ~cmp tbl)
