(** Deterministic, key-ordered views over [Hashtbl].

    [Hashtbl.iter]/[Hashtbl.fold] enumerate bindings in hash order — an
    implementation detail that shifts with the compiler version, the
    insertion history and the key layout. The determinism linter bans
    them in library code; these wrappers are the blessed replacement:
    they snapshot the bindings and sort them with the caller's key
    comparator, so enumeration order is a function of the table's
    contents only.

    Cost: O(n) extra space and an O(n log n) sort per enumeration —
    fine for the result-aggregation tables these are meant for; keep
    hot paths on arrays as before. *)

val bindings : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings sorted by key ([cmp]); duplicate keys (from
    [Hashtbl.add]) keep their most-recent-first order stably. *)

val keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list

val iter : cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter ~cmp f tbl] applies [f] to every binding in ascending key
    order. *)

val fold : cmp:('k -> 'k -> int) -> ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
(** [fold ~cmp f tbl init] folds in ascending key order. *)
