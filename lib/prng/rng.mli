(** High-level random variate generation.

    Thin deterministic layer over {!Xoshiro} providing the variates the
    trace generator, workload generator and Monte-Carlo model need.
    Every function takes the generator explicitly; nothing uses global
    state, so experiments are reproducible from their seeds. *)

type t
(** A random source. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] makes a fresh source. Default seed is [42L]. *)

val of_xoshiro : Xoshiro.t -> t
(** Wrap an existing generator. *)

val split : t -> t
(** [split t] returns a new source whose stream does not overlap [t]'s
    (a 2^128 jump separates them). *)

val copy : t -> t
(** Independent duplicate of the current state. *)

val bits64 : t -> int64
(** 64 uniform pseudo-random bits. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)]. [bound] must be finite
    and positive. *)

val unit_float : t -> float
(** Uniform on [\[0, 1)], with 53 bits of precision. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)]. [bound] must be positive.
    Uses rejection sampling, so the result is exactly uniform. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform on the inclusive range [\[lo, hi\]]. Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. [p] outside
    [\[0, 1\]] is clamped. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] samples Exp(rate): mean [1 /. rate]. [rate]
    must be positive. *)

val poisson : t -> mean:float -> int
(** [poisson t ~mean] samples a Poisson variate. Uses Knuth's product
    method for small means and a normal approximation with continuity
    correction above 60 (adequate for simulation workloads). [mean] must
    be non-negative. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal variate by the Box-Muller transform (one value per call). *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto variate with tail exponent [alpha], minimum [x_min] — used to
    model heavy-tailed inter-contact times in trace-generator
    variants. *)

val uniform_in : t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. Requires [lo < hi]. *)

val choice : t -> 'a array -> 'a
(** Uniformly random element. The array must be non-empty. *)

val choice_weighted : t -> weights:float array -> int
(** [choice_weighted t ~weights] returns index [i] with probability
    proportional to [weights.(i)]. Weights must be non-negative with a
    positive sum. Linear scan; fine for the array sizes used here. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement t ~k ~n] draws [k] distinct indices from
    [\[0, n)], in random order. Requires [0 <= k <= n]. *)
