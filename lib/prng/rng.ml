type t = { gen : Xoshiro.t }

let of_xoshiro gen = { gen }
let create ?(seed = 42L) () = of_xoshiro (Xoshiro.of_seed seed)
let split t = { gen = Xoshiro.split t.gen }
let copy t = { gen = Xoshiro.copy t.gen }
let bits64 t = Xoshiro.next t.gen

(* Top 53 bits give a uniform float in [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t bound =
  if not (Float.is_finite bound && bound > 0.) then
    invalid_arg "Rng.float: bound must be finite and positive";
  unit_float t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the smallest covering power of two. *)
  let mask =
    let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p =
  let p = Float.max 0. (Float.min 1. p) in
  unit_float t < p

let exponential t ~rate =
  if not (rate > 0.) then invalid_arg "Rng.exponential: rate must be positive";
  (* 1 - u avoids log 0. *)
  -.Float.log (1. -. unit_float t) /. rate

let gaussian t ~mu ~sigma =
  let u1 = 1. -. unit_float t in
  let u2 = unit_float t in
  mu +. (sigma *. Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2))

let poisson t ~mean =
  if mean < 0. then invalid_arg "Rng.poisson: mean must be non-negative";
  if Float.equal mean 0. then 0
  else if mean < 60. then begin
    (* Knuth: count uniform draws until their product drops below
       exp(-mean). *)
    let limit = Float.exp (-.mean) in
    let rec count k p =
      let p = p *. unit_float t in
      if p <= limit then k else count (k + 1) p
    in
    count 0 1.
  end
  else
    let v = gaussian t ~mu:mean ~sigma:(Float.sqrt mean) in
    Int.max 0 (int_of_float (Float.round v))

let pareto t ~alpha ~x_min =
  if not (alpha > 0. && x_min > 0.) then
    invalid_arg "Rng.pareto: alpha and x_min must be positive";
  x_min /. Float.pow (1. -. unit_float t) (1. /. alpha)

let uniform_in t ~lo ~hi =
  if not (lo < hi) then invalid_arg "Rng.uniform_in: lo must be < hi";
  lo +. (unit_float t *. (hi -. lo))

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let choice_weighted t ~weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Rng.choice_weighted: weights must sum to > 0";
  let target = float t total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement: need 0 <= k <= n";
  (* Partial Fisher-Yates over an index array: O(n) setup, O(k) draws. *)
  let idx = Array.init n Fun.id in
  for i = 0 to k - 1 do
    let j = int_in_range t ~lo:i ~hi:(n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
