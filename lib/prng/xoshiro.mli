(** xoshiro256++ pseudo-random generator.

    The general-purpose generator used throughout the library. 256 bits
    of state, period 2^256 - 1, excellent statistical quality
    (Blackman & Vigna, 2018). All experiment code takes explicit
    generator values so that every run is reproducible from its seed. *)

type t
(** Mutable generator state. *)

val of_seed : int64 -> t
(** [of_seed seed] initialises the 256-bit state by running
    {!Splitmix64} on [seed], per the xoshiro authors' recommendation. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** [of_state (s0, s1, s2, s3)] uses the given state verbatim. The state
    must not be all zeroes. Raises [Invalid_argument] if it is. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. Advancing one does not affect the other. *)

val next : t -> int64
(** [next t] advances the state and returns 64 fresh pseudo-random
    bits. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps, equivalent to that many calls
    to {!next}. Use to split one seed into long non-overlapping
    subsequences for parallel or per-run streams. *)

val split : t -> t
(** [split t] returns a copy of [t], then jumps [t] forward by 2^128
    steps, so the returned generator and [t] produce non-overlapping
    streams. *)
