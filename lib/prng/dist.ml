type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { rate : float }
  | Pareto of { alpha : float; x_min : float }
  | Gaussian of { mu : float; sigma : float }
  | Truncated of { dist : t; lo : float; hi : float }

let rec sample rng = function
  | Constant v -> v
  | Uniform { lo; hi } -> Rng.uniform_in rng ~lo ~hi
  | Exponential { rate } -> Rng.exponential rng ~rate
  | Pareto { alpha; x_min } -> Rng.pareto rng ~alpha ~x_min
  | Gaussian { mu; sigma } -> Rng.gaussian rng ~mu ~sigma
  | Truncated { dist; lo; hi } ->
    let rec attempt n =
      let v = sample rng dist in
      if v >= lo && v <= hi then v
      else if n = 0 then Float.max lo (Float.min hi v)
      else attempt (n - 1)
    in
    attempt 64

let rec mean = function
  | Constant v -> v
  | Uniform { lo; hi } -> (lo +. hi) /. 2.
  | Exponential { rate } -> 1. /. rate
  | Pareto { alpha; x_min } ->
    if alpha <= 1. then Float.infinity else alpha *. x_min /. (alpha -. 1.)
  | Gaussian { mu; _ } -> mu
  | Truncated { dist; lo; hi } -> Float.max lo (Float.min hi (mean dist))

let rec pp ppf = function
  | Constant v -> Format.fprintf ppf "Const(%g)" v
  | Uniform { lo; hi } -> Format.fprintf ppf "Uniform[%g,%g)" lo hi
  | Exponential { rate } -> Format.fprintf ppf "Exp(rate=%g)" rate
  | Pareto { alpha; x_min } -> Format.fprintf ppf "Pareto(alpha=%g,xmin=%g)" alpha x_min
  | Gaussian { mu; sigma } -> Format.fprintf ppf "Normal(mu=%g,sigma=%g)" mu sigma
  | Truncated { dist; lo; hi } -> Format.fprintf ppf "Trunc(%a,[%g,%g])" pp dist lo hi
