(** SplitMix64 pseudo-random generator.

    A tiny, fast 64-bit generator with a single [int64] of state. Its
    main use here is expanding a user-supplied seed into the 256 bits of
    state required by {!Xoshiro}, as recommended by the xoshiro authors.
    It is also a perfectly serviceable generator on its own for
    non-cryptographic purposes. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from an arbitrary 64-bit seed.
    Distinct seeds yield independent-looking streams; the all-zero seed
    is fine (SplitMix64 has no bad seeds). *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_four : t -> int64 * int64 * int64 * int64
(** [next_four t] returns four successive outputs, in order. Convenience
    for seeding 256-bit generators. *)
