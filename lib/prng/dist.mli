(** First-class probability distributions.

    A small algebra of distributions that the trace generator exposes in
    its configuration, so callers can describe e.g. "contact durations
    are Exp(1/60) truncated to 600 s" as data rather than code. *)

type t =
  | Constant of float  (** Always the same value. *)
  | Uniform of { lo : float; hi : float }  (** Uniform on [\[lo, hi)]. *)
  | Exponential of { rate : float }  (** Exp(rate), mean [1/rate]. *)
  | Pareto of { alpha : float; x_min : float }  (** Heavy-tailed. *)
  | Gaussian of { mu : float; sigma : float }  (** Normal. *)
  | Truncated of { dist : t; lo : float; hi : float }
      (** Underlying distribution, resampled (up to a bounded number of
          attempts, then clamped) into [\[lo, hi\]]. *)

val sample : Rng.t -> t -> float
(** Draw one variate. *)

val mean : t -> float
(** Analytic mean where defined. For [Truncated] the underlying mean
    clamped into the interval is returned (an approximation, documented
    as such). For [Pareto] with [alpha <= 1] the mean is [infinity]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. ["Exp(rate=0.016667)"]. *)
