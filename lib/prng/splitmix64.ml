type t = { mutable state : int64 }

let create seed = { state = seed }

(* Constants from Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_four t =
  let a = next t in
  let b = next t in
  let c = next t in
  let d = next t in
  (a, b, c, d)
