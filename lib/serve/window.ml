module Contact = Psn_trace.Contact
module Trace = Psn_trace.Trace

type policy = Drop | Slide

type config = { span : float; budget : int; policy : policy; nodes : int }

type counters = {
  ingested : int;
  evicted : int;
  budget_evicted : int;
  dropped : int;
}

(* Live contacts sit in a binary min-heap on the eviction key
   (t_end, t_start, a, b) — t_end first because expiry is what pops,
   the rest because determinism demands a total order: with distinct
   keys the pop sequence is a pure function of the live set, never of
   the heap's internal layout (which is why [restore]'s rebuilt heap
   is observationally identical to the original). *)
type t = {
  cfg : config;
  mutable heap : Contact.t array;  (* slots [0, len) are live *)
  mutable len : int;
  mutable w_now : float;
  mutable last_start : float;  (* monotone-ingest guard *)
  mutable w_nodes : int;  (* population ratchet (== cfg.nodes when fixed) *)
  mutable w_peak : int;
  mutable ingested : int;
  mutable evicted : int;
  mutable budget_evicted : int;
  mutable dropped : int;
}

let evict_key_less (c1 : Contact.t) (c2 : Contact.t) =
  let c = Float.compare c1.Contact.t_end c2.Contact.t_end in
  if c <> 0 then c < 0 else Contact.compare_by_start c1 c2 < 0

(* ---- heap primitives ------------------------------------------------ *)

let swap w i j =
  let tmp = w.heap.(i) in
  w.heap.(i) <- w.heap.(j);
  w.heap.(j) <- tmp

let rec sift_up w i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if evict_key_less w.heap.(i) w.heap.(parent) then begin
      swap w i parent;
      sift_up w parent
    end
  end

let rec sift_down w i =
  let l = (2 * i) + 1 in
  if l < w.len then begin
    let smallest = if evict_key_less w.heap.(l) w.heap.(i) then l else i in
    let r = l + 1 in
    let smallest =
      if r < w.len && evict_key_less w.heap.(r) w.heap.(smallest) then r else smallest
    in
    if smallest <> i then begin
      swap w i smallest;
      sift_down w smallest
    end
  end

let push w c =
  if w.len = Array.length w.heap then begin
    let cap = Int.max 16 (2 * w.len) in
    let bigger = Array.make cap c in
    Array.blit w.heap 0 bigger 0 w.len;
    w.heap <- bigger
  end;
  w.heap.(w.len) <- c;
  w.len <- w.len + 1;
  sift_up w (w.len - 1)

let pop_min w =
  let top = w.heap.(0) in
  w.len <- w.len - 1;
  if w.len > 0 then begin
    w.heap.(0) <- w.heap.(w.len);
    sift_down w 0
  end;
  top

(* ---- construction --------------------------------------------------- *)

let create cfg =
  if not (cfg.span > 0. && Float.is_finite cfg.span) then
    Error (Printf.sprintf "window span must be positive and finite (got %g)" cfg.span)
  else if cfg.budget < 1 then
    Error (Printf.sprintf "window budget must be at least 1 (got %d)" cfg.budget)
  else if cfg.nodes < 0 then
    Error (Printf.sprintf "population must be non-negative (got %d)" cfg.nodes)
  else
    Ok
      {
        cfg;
        heap = [||];
        len = 0;
        w_now = 0.;
        last_start = 0.;
        w_nodes = cfg.nodes;
        w_peak = 0;
        ingested = 0;
        evicted = 0;
        budget_evicted = 0;
        dropped = 0;
      }

let config w = w.cfg
let now w = w.w_now
let start w = Float.max 0. (w.w_now -. w.cfg.span)
let last_start w = w.last_start
let n_nodes w = w.w_nodes
let size w = w.len
let peak w = w.w_peak

let counters w =
  {
    ingested = w.ingested;
    evicted = w.evicted;
    budget_evicted = w.budget_evicted;
    dropped = w.dropped;
  }

(* ---- sliding -------------------------------------------------------- *)

let evict_expired w =
  let t0 = start w in
  let n = ref 0 in
  while w.len > 0 && w.heap.(0).Contact.t_end <= t0 do
    ignore (pop_min w);
    incr n
  done;
  w.evicted <- w.evicted + !n;
  !n

type verdict = Accepted | Rejected_over_budget

let ingest w (c : Contact.t) =
  if c.Contact.t_start < w.last_start then
    Error
      (Printf.sprintf "out-of-order contact: start %g before previous start %g" c.Contact.t_start
         w.last_start)
  else if w.cfg.nodes > 0 && c.Contact.b >= w.cfg.nodes then
    Error
      (Printf.sprintf "contact endpoint n%d outside fixed population of %d" c.Contact.b
         w.cfg.nodes)
  else begin
    w.last_start <- c.Contact.t_start;
    if c.Contact.t_start > w.w_now then w.w_now <- c.Contact.t_start;
    if w.cfg.nodes = 0 && c.Contact.b + 1 > w.w_nodes then w.w_nodes <- c.Contact.b + 1;
    ignore (evict_expired w);
    if c.Contact.t_end <= start w then begin
      (* Already behind the window on arrival: never goes live, but the
         stream clock and population ratchet above still saw it. *)
      w.ingested <- w.ingested + 1;
      w.evicted <- w.evicted + 1;
      Ok Accepted
    end
    else if w.len >= w.cfg.budget then begin
      match w.cfg.policy with
      | Drop ->
        w.dropped <- w.dropped + 1;
        Ok Rejected_over_budget
      | Slide ->
        while w.len >= w.cfg.budget do
          ignore (pop_min w);
          w.budget_evicted <- w.budget_evicted + 1
        done;
        push w c;
        w.ingested <- w.ingested + 1;
        if w.len > w.w_peak then w.w_peak <- w.len;
        Ok Accepted
    end
    else begin
      push w c;
      w.ingested <- w.ingested + 1;
      if w.len > w.w_peak then w.w_peak <- w.len;
      Ok Accepted
    end
  end

let advance w t =
  if t < w.w_now then
    Error (Printf.sprintf "cannot advance backwards: %g is before now %g" t w.w_now)
  else if not (Float.is_finite t) then Error "cannot advance to a non-finite time"
  else begin
    w.w_now <- t;
    Ok (evict_expired w)
  end

(* ---- reading -------------------------------------------------------- *)

let contacts w =
  let live = Array.sub w.heap 0 w.len in
  Array.sort Contact.compare_by_start live;
  Array.to_list live

let trace w =
  let t0 = start w in
  let horizon = w.w_now -. t0 in
  if not (horizon > 0.) then Error "window is empty: no stream time has elapsed"
  else if w.w_nodes = 0 then Error "window is empty: no node has been seen"
  else begin
    (* Clip-and-rebase, mirroring [Trace.restrict full ~t0 ~t1:now]
       field for field: s = max t_start t0, e = min t_end now, keep
       when s < e, shift by -t0. Live contacts already satisfy
       t_end > t0 (eviction) and t_start <= now (monotone ingest), so
       the only clip that can exclude one is t_start = now. *)
    let clipped =
      List.filter_map
        (fun (c : Contact.t) ->
          let s = Float.max c.Contact.t_start t0 in
          let e = Float.min c.Contact.t_end w.w_now in
          if s < e then
            Some (Contact.make ~a:c.Contact.a ~b:c.Contact.b ~t_start:(s -. t0) ~t_end:(e -. t0))
          else None)
        (contacts w)
    in
    Ok (Trace.create ~n_nodes:w.w_nodes ~horizon clipped)
  end

(* ---- snapshot restore ----------------------------------------------- *)

let restore cfg ~now:t_now ~last_start ~n_nodes:pop ~peak ~counters:(cnt : counters) live =
  match create cfg with
  | Error _ as e -> e
  | Ok w ->
    if last_start > t_now then
      Error (Printf.sprintf "snapshot clock skew: last start %g after now %g" last_start t_now)
    else if cfg.nodes > 0 && pop <> cfg.nodes then
      Error (Printf.sprintf "snapshot population %d disagrees with fixed %d" pop cfg.nodes)
    else begin
      w.w_now <- t_now;
      w.last_start <- last_start;
      w.w_nodes <- pop;
      let t0 = start w in
      let bad =
        List.find_opt
          (fun (c : Contact.t) ->
            c.Contact.t_end <= t0 || c.Contact.t_start > t_now
            || (cfg.nodes > 0 && c.Contact.b >= cfg.nodes)
            || (cfg.nodes = 0 && c.Contact.b >= pop))
          live
      in
      match bad with
      | Some c ->
        Error
          (Format.asprintf "snapshot contact %a is inconsistent with the window clock" Contact.pp
             c)
      | None ->
        if List.length live > cfg.budget then
          Error
            (Printf.sprintf "snapshot holds %d live contacts over budget %d" (List.length live)
               cfg.budget)
        else begin
          List.iter (fun c -> push w c) live;
          w.w_peak <- Int.max peak w.len;
          w.ingested <- cnt.ingested;
          w.evicted <- cnt.evicted;
          w.budget_evicted <- cnt.budget_evicted;
          w.dropped <- cnt.dropped;
          Ok w
        end
    end
