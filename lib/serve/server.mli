(** The serving engine: one long-lived session over a contact stream.

    A server owns a sliding {!Window}, an adaptive {!Multipath}
    router, and the set of live (injected, not yet delivered or
    expired) messages; {!handle} processes one {!Protocol} line and
    returns the reply lines. All I/O stays with the caller — the
    library never prints, reads a clock, or touches a socket, which is
    what makes a served session replayable in [dune runtest].

    {2 Query semantics and determinism}

    Every query is answered as a {e pure function} of the window trace
    ({!Window.trace} — [Trace.restrict]-equivalent clip of the live
    contacts) and the session state, using the batch machinery:
    [paths] enumerates over the rasterised window, [delivery] and live
    message evaluation run the forwarding engine per strategy, fanned
    out through {!Psn_sim.Parallel} keyed by input index. Hence the
    inherited contract: the same line sequence yields byte-identical
    replies for any [jobs] × [chunk], with a shared scratch or fresh
    ones — pinned by the serve determinism tests.

    Injected messages are (re)evaluated at each [advance]: a message
    whose creation instant has slipped behind the window expires (a
    failure observation for its strategy); one the current window
    delivers is reported and completes (a success observation feeding
    the router's EWMAs, with the transfer-loss fraction from the
    faults layer); otherwise it stays live. The strategy is fixed at
    inject time — the router's pick then — so rebalancing shows up in
    {e routing} decisions, never in rewriting history.

    {2 Failure injection and snapshots}

    Named failpoint sites: [serve.ingest] (per contact event, keyed by
    the ingest count), [serve.evict] (per advance, keyed by the
    advance count), [serve.snapshot] (per snapshot write, keyed by the
    count of {e writes}, drains included). {!write_snapshot} persists
    the whole session —
    configuration, window clocks and live contacts, live messages,
    router EWMAs, counters — as canonical text (hex floats, so every
    value round-trips bit-exactly) in a {!Psn_store.Codec.Blob} frame
    under [Key.named ~family:"serve-snapshot" session]; {!restore}
    rebuilds a server that continues byte-identically. *)

type config = {
  window : Window.config;
  delta : float;  (** Rasterisation step for [paths] queries, [> 0]. *)
  k : int;  (** Paths retained per node in enumeration, [> 0]. *)
  strategies : string list;
      (** Registry names the router balances across; must all be
          {!Psn_forwarding.Registry.online} (an oracle's "future"
          would end at the window edge, silently changing the
          algorithm). Empty means every online entry. *)
  router : Multipath.config;
  faults : Psn_sim.Faults.spec option;
      (** When set, compiled against each query window: contact-set
          channels degrade what queries see, the loss channel fails
          transfers — and the observed loss feeds the router. *)
}

val default_config : config
(** 3600 s window, budget 200000, [Slide] policy, growing population;
    [delta] 10, [k] 64; every online strategy;
    {!Multipath.default_config}; no faults. *)

type t

val create :
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  ?store:Psn_store.Store.t ->
  ?session:string ->
  ?jobs:int ->
  ?chunk:int ->
  config ->
  (t, string) result
(** A fresh session. [store]/[session] (default ["default"]) enable
    snapshots; [jobs] (default 1) and [chunk] control query fan-out
    and cannot change any reply. [Error] on invalid configuration or
    an unknown/oracle strategy name. *)

val handle : t -> string -> [ `Reply of string list | `Stop of string list ]
(** Process one protocol line. Replies are in protocol order; errors
    (parse failures, out-of-window times, unknown nodes) come back as
    [err ...] reply lines, never exceptions — the only exceptions that
    escape are injected failpoint raises and [Sys_error] from store
    writes. [`Stop] is returned exactly for [quit]. *)

val write_snapshot : t -> (string * int, string) result
(** Persist the session under its store/session name; returns the
    entry's key hex and the snapshot payload size in bytes. [Error]
    when the server has no store. *)

val snapshot_text : t -> string
(** The canonical snapshot encoding (what {!write_snapshot} wraps in a
    blob frame) — exposed for tests and round-trip checks. *)

val restore :
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  ?store:Psn_store.Store.t ->
  ?session:string ->
  ?jobs:int ->
  ?chunk:int ->
  string ->
  (t, string) result
(** Rebuild a session from {!snapshot_text} output. The semantic
    configuration comes from the snapshot; [jobs]/[chunk]/[telemetry]
    are fresh runtime choices (they cannot change replies). The
    restored server's subsequent replies are byte-identical to the
    original server's — the kill-and-resume CI check. *)

type summary = {
  s_now : float;
  s_start : float;
  s_contacts : int;  (** Live contacts in the window. *)
  s_peak : int;  (** Window high-water mark (bench memory-cap check). *)
  s_nodes : int;
  s_live : int;  (** Live injected messages. *)
  s_ingested : int;
  s_evicted : int;
  s_budget_evicted : int;
  s_dropped : int;
  s_delivered : int;
  s_expired : int;
  s_snapshots : int;
      (** [snapshot] {e commands} served — automatic end-of-stream
          drain writes are deliberately not counted, so a resumed
          transcript's [stats] lines match an uninterrupted run's. *)
}

val summary : t -> summary
(** The counters behind the [stats] reply, for bench and tests. *)

val registry : t -> Psn_telemetry.Openmetrics.t
(** The session's metrics registry: protocol counters, window and
    router gauges (per-strategy EWMA success/delay/loss/score under an
    [algo] label), and the simulated-quantity histograms (delivery
    delay, ingest batch size). Every family is a value metric —
    byte-identical across [jobs]×[chunk] — so callers may freely add
    their own [time_based] families before rendering. *)

val metrics_text : t -> string
(** The values-only OpenMetrics exposition of {!registry} — the
    [metrics] reply body, also what [--metrics-out] snapshots. *)
