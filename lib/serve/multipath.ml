module Path = Psn_paths.Path

type config = { alpha : float; explore : int }

let default_config = { alpha = 0.3; explore = 1 }

type stat = {
  mutable obs : int;
  mutable success : float;  (* EWMA of delivered (1/0) *)
  mutable delay : float;  (* EWMA of delivery delay, seconds *)
  mutable has_delay : bool;  (* delay has absorbed at least one sample *)
  mutable loss : float;  (* EWMA of lost-transfer fraction *)
}

type t = { cfg : config; s_names : string array; stats : stat array }

let create cfg ~names:name_list =
  if not (cfg.alpha > 0. && cfg.alpha <= 1.) then
    Error (Printf.sprintf "router alpha must be in (0, 1] (got %g)" cfg.alpha)
  else if cfg.explore < 0 then
    Error (Printf.sprintf "router explore must be non-negative (got %d)" cfg.explore)
  else if List.length name_list = 0 then Error "router needs at least one strategy"
  else begin
    let sorted = List.sort_uniq String.compare name_list in
    if List.length sorted <> List.length name_list then
      Error "router strategies must be distinct"
    else
      Ok
        {
          cfg;
          s_names = Array.of_list name_list;
          stats =
            Array.init (List.length name_list) (fun _ ->
                { obs = 0; success = 0.; delay = 0.; has_delay = false; loss = 0. });
        }
  end

let names r = Array.to_list r.s_names

let index r name =
  let rec find i =
    if i >= Array.length r.s_names then
      invalid_arg (Printf.sprintf "Multipath: unknown strategy %S" name)
    else if String.equal r.s_names.(i) name then i
    else find (i + 1)
  in
  find 0

(* First sample seeds the average directly (no bias toward the zero
   initialisation); later samples fold in with gain alpha. *)
let ewma cfg ~seeded current sample =
  if seeded then ((1. -. cfg.alpha) *. current) +. (cfg.alpha *. sample) else sample

let observe r name ~delivered ~delay ~loss =
  let st = r.stats.(index r name) in
  let seeded = st.obs > 0 in
  st.success <- ewma r.cfg ~seeded st.success (if delivered then 1. else 0.);
  st.loss <- ewma r.cfg ~seeded st.loss loss;
  (match delay with
  | Some d ->
    st.delay <- ewma r.cfg ~seeded:st.has_delay st.delay d;
    st.has_delay <- true
  | None -> ());
  st.obs <- st.obs + 1

let observations r name = r.stats.(index r name).obs

let score_of r (st : stat) =
  if st.obs < r.cfg.explore then 1.
  else begin
    let delay_penalty = if st.has_delay then 1. +. st.delay else 1. in
    st.success *. (1. -. st.loss) /. delay_penalty
  end

let score r name = score_of r r.stats.(index r name)

let pick r =
  let best = ref 0 in
  for i = 1 to Array.length r.s_names - 1 do
    if score_of r r.stats.(i) > score_of r r.stats.(!best) then best := i
  done;
  r.s_names.(!best)

let weights r =
  let scores = Array.map (score_of r) r.stats in
  let total = Array.fold_left ( +. ) 0. scores in
  let n = Array.length scores in
  List.init n (fun i ->
      let w = if total > 0. then scores.(i) /. total else 1. /. float_of_int n in
      (r.s_names.(i), w))

let dump r =
  List.init (Array.length r.s_names) (fun i ->
      let st = r.stats.(i) in
      (r.s_names.(i), (st.obs, st.success, st.delay, st.has_delay, st.loss)))

let load cfg rows =
  match create cfg ~names:(List.map fst rows) with
  | Error _ as e -> e
  | Ok r ->
    let bad = ref None in
    List.iteri
      (fun i (_, (obs, success, delay, has_delay, loss)) ->
        if obs < 0 then bad := Some "negative observation count"
        else begin
          let st = r.stats.(i) in
          st.obs <- obs;
          st.success <- success;
          st.delay <- delay;
          st.has_delay <- has_delay;
          st.loss <- loss
        end)
      rows;
    (match !bad with Some reason -> Error ("router state: " ^ reason) | None -> Ok r)

(* ---- diversity ------------------------------------------------------ *)

let diversity_cap = 32

(* Sorted deduplicated int lists stand in for sets; Jaccard by linear
   merge. Nodes are the visited ids; edges are directed hops packed as
   a * 2^28 + b (populations are bounded by the engine's 2^28 id
   limit, so packing cannot collide). *)
let jaccard xs ys =
  let rec walk inter union xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> (inter, union + List.length rest)
    | x :: xt, y :: yt ->
      if x = y then walk (inter + 1) (union + 1) xt yt
      else if x < y then walk inter (union + 1) xt ys
      else walk inter (union + 1) xs yt
  in
  let inter, union = walk 0 0 xs ys in
  if union = 0 then 1. else float_of_int inter /. float_of_int union

let node_set p = List.sort_uniq Int.compare (Path.nodes p)

let edge_set p =
  let rec hops acc = function
    | a :: (b :: _ as rest) -> hops (((a lsl 28) lor b) :: acc) rest
    | _ -> acc
  in
  List.sort_uniq Int.compare (hops [] (Path.nodes p))

let mean_pairwise_overlap sets =
  let arr = Array.of_list sets in
  let n = Array.length arr in
  let total = ref 0. in
  let pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      total := !total +. jaccard arr.(i) arr.(j);
      incr pairs
    done
  done;
  !total /. float_of_int !pairs

let rec take n = function [] -> [] | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let diversity paths =
  let paths = take diversity_cap paths in
  if List.length paths < 2 then None
  else begin
    let node_div = 1. -. mean_pairwise_overlap (List.map node_set paths) in
    let edge_div = 1. -. mean_pairwise_overlap (List.map edge_set paths) in
    Some (node_div, edge_div)
  end
