module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact
module Engine = Psn_sim.Engine
module Message = Psn_sim.Message
module Faults = Psn_sim.Faults
module Parallel = Psn_sim.Parallel
module Enumerate = Psn_paths.Enumerate
module Snapshot_ = Psn_spacetime.Snapshot
module Registry = Psn_forwarding.Registry
module Store = Psn_store.Store
module Key = Psn_store.Key
module Failpoint = Psn_robust.Failpoint
module Flight = Psn_robust.Flight
module T = Psn_telemetry.Telemetry
module Hist = Psn_telemetry.Hist
module Openmetrics = Psn_telemetry.Openmetrics

type config = {
  window : Window.config;
  delta : float;
  k : int;
  strategies : string list;
  router : Multipath.config;
  faults : Psn_sim.Faults.spec option;
}

let default_config =
  {
    window = { Window.span = 3600.; budget = 200_000; policy = Window.Slide; nodes = 0 };
    delta = 10.;
    k = 64;
    strategies = [];
    router = Multipath.default_config;
    faults = None;
  }

type live = {
  l_id : int;
  l_src : int;
  l_dst : int;
  l_t : float;  (* absolute stream time of creation *)
  l_entry : Registry.entry;
}

type t = {
  cfg : config;
  entries : Registry.entry array;  (* resolved cfg.strategies, in order *)
  mutable window : Window.t;
  mutable router : Multipath.t;
  mutable live : live list;  (* ascending l_id *)
  mutable next_id : int;
  mutable delivered : int;
  mutable expired : int;
  mutable snapshots : int;  (* protocol-level snapshot commands served *)
  mutable snap_writes : int;  (* every write, incl. drains (failpoint key) *)
  mutable advances : int;
  (* Value histograms over simulated quantities: part of the session
     state (snapshotted, reported by [metrics]), never wall time. *)
  h_delay : Hist.t;  (* delivery delay, simulated seconds *)
  h_batch : Hist.t;  (* contacts ingested between advances *)
  mutable pending_ingest : int;  (* accepted since the last advance *)
  scratch : Engine.scratch;  (* reused across queries on the jobs=1 path *)
  jobs : int;
  chunk : int option;
  store : Store.t option;
  session : string;
  telemetry : T.sink;
}

(* Every float a client sees goes through one formatter so transcripts
   are stable; snapshots use hex floats instead (exact round-trip). *)
let g v = Printf.sprintf "%g" v
let h v = Printf.sprintf "%h" v

(* ---- construction --------------------------------------------------- *)

let resolve_strategies names =
  let names = match names with [] -> List.map (fun e -> e.Registry.name) Registry.online | l -> l in
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
      match Registry.find name with
      | Error _ as e -> e
      | Ok entry ->
        if not entry.Registry.online then
          Error
            (Printf.sprintf
               "strategy %S is an oracle (whole-trace knowledge); serving needs online \
                strategies"
               name)
        else resolve (entry :: acc) rest)
  in
  resolve [] names

let create ?(telemetry = T.Sink.null) ?store ?(session = "default") ?(jobs = 1) ?chunk cfg =
  if jobs < 1 then Error (Printf.sprintf "jobs must be at least 1 (got %d)" jobs)
  else if not (cfg.delta > 0. && Float.is_finite cfg.delta) then
    Error (Printf.sprintf "delta must be positive and finite (got %g)" cfg.delta)
  else if cfg.k < 1 then Error (Printf.sprintf "k must be at least 1 (got %d)" cfg.k)
  else begin
    match
      Option.fold ~none:(Ok ()) ~some:Faults.validate cfg.faults
    with
    | Error reason -> Error ("faults: " ^ reason)
    | Ok () -> (
      match resolve_strategies cfg.strategies with
      | Error _ as e -> e
      | Ok entries -> (
        match Multipath.create cfg.router ~names:(List.map (fun e -> e.Registry.name) entries) with
        | Error _ as e -> e
        | Ok router -> (
          match Window.create cfg.window with
          | Error _ as e -> e
          | Ok window ->
            Ok
              {
                cfg;
                entries = Array.of_list entries;
                window;
                router;
                live = [];
                next_id = 0;
                delivered = 0;
                expired = 0;
                snapshots = 0;
                snap_writes = 0;
                advances = 0;
                h_delay = Hist.create ();
                h_batch = Hist.create ();
                pending_ingest = 0;
                scratch = Engine.scratch ();
                jobs;
                chunk;
                store;
                session;
                telemetry;
              })))
  end

(* ---- shared query plumbing ------------------------------------------ *)

let err what reason = [ Printf.sprintf "err %s: %s" what reason ]

let compile_faults t wtrace =
  Option.map
    (fun spec ->
      Faults.compile ~n_nodes:(Trace.n_nodes wtrace) ~horizon:(Trace.horizon wtrace) spec)
    t.cfg.faults

(* Reasons returned here are wrapped as [err what: reason] by the
   handlers, so they name the offending value, not the command. *)
let check_endpoints t ~src ~dst =
  let n = Window.n_nodes t.window in
  if src = dst then Error "source and destination must differ"
  else if src >= n || dst >= n then
    Error (Printf.sprintf "node n%d outside the observed population of %d" (Int.max src dst) n)
  else Ok ()

(* Query times are absolute stream times inside [start, now). *)
let query_time t = function
  | None -> Ok (Window.start t.window)
  | Some tt ->
    if tt < Window.start t.window then
      Error
        (Printf.sprintf "time %s is behind the window start %s" (g tt) (g (Window.start t.window)))
    else if tt >= Window.now t.window then
      Error (Printf.sprintf "time %s is not before now %s" (g tt) (g (Window.now t.window)))
    else Ok tt

(* Run one (message, strategy) evaluation against the window trace.
   Construction happens inside the task so parallel fan-out shares
   nothing mutable; the outcome is a pure function of the arguments. *)
let evaluate ~plan ~wtrace scratch (entry : Registry.entry) ~src ~dst ~t_rel =
  let msg = Message.make ~id:0 ~src ~dst ~t_create:t_rel in
  Engine.run ?faults:plan ~scratch ~trace:wtrace ~messages:[ msg ] (entry.Registry.factory wtrace)

(* Index-keyed fan-out: jobs=1 reuses the server's scratch across
   queries (the windowed-reuse regression surface), jobs>1 gives each
   worker domain a private scratch via map_env. Outcomes are
   bit-identical either way — the serve determinism tests compare
   whole transcripts across both paths. *)
let fan_out t tasks eval =
  if t.jobs = 1 then Array.map (eval t.scratch) tasks
  else Parallel.map_env ~jobs:t.jobs ?chunk:t.chunk ~env:Engine.scratch (fun s _sink x -> eval s x) tasks

let outcome_delivery (o : Engine.outcome) =
  let r = o.Engine.records.(0) in
  (r.Engine.delivered, r.Engine.copies, r.Engine.attempts)

let loss_fraction ~copies ~attempts =
  if attempts = 0 then 0. else float_of_int (attempts - copies) /. float_of_int attempts

(* ---- ingest and advance --------------------------------------------- *)

let ingest t c =
  T.with_span t.telemetry "serve.ingest" @@ fun () ->
  Failpoint.trigger ~key:(Int64.of_int (Window.counters t.window).Window.ingested) "serve.ingest";
  match Window.ingest t.window c with
  | Error reason -> err "ingest" reason
  | Ok Window.Accepted ->
    T.count t.telemetry "serve.ingested" 1;
    t.pending_ingest <- t.pending_ingest + 1;
    []
  | Ok Window.Rejected_over_budget ->
    T.count t.telemetry "serve.dropped" 1;
    Flight.note "serve.drop"
      [
        ("budget", string_of_int (Window.config t.window).Window.budget);
        ("dropped", string_of_int (Window.counters t.window).Window.dropped);
      ];
    [
      Printf.sprintf "drop budget=%d dropped=%d" (Window.config t.window).Window.budget
        (Window.counters t.window).Window.dropped;
    ]

(* Re-evaluate the live messages against the freshly slid window.
   Observation order is fixed (expiries in id order, then deliveries
   in id order) whatever the fan-out schedule, so the router's EWMA
   state — and with it every later reply — is schedule-independent. *)
let evaluate_live t =
  let t0 = Window.start t.window in
  let now = Window.now t.window in
  let expired = List.filter (fun l -> l.l_t < t0) t.live in
  let expired_lines =
    List.map
      (fun l ->
        t.expired <- t.expired + 1;
        T.count t.telemetry "serve.expired" 1;
        Multipath.observe t.router l.l_entry.Registry.name ~delivered:false ~delay:None ~loss:0.;
        Printf.sprintf "expired msg=%d algo=%s" l.l_id l.l_entry.Registry.name)
      expired
  in
  let ready = List.filter (fun l -> l.l_t >= t0 && l.l_t < now) t.live in
  let evaluated =
    match (ready, Window.trace t.window) with
    | [], _ | _, Error _ -> []
    | ready, Ok wtrace ->
      let plan = compile_faults t wtrace in
      let tasks = Array.of_list ready in
      let outcomes =
        fan_out t tasks (fun scratch l ->
            evaluate ~plan ~wtrace scratch l.l_entry ~src:l.l_src ~dst:l.l_dst
              ~t_rel:(l.l_t -. t0))
      in
      List.mapi (fun i l -> (l, outcomes.(i))) ready
  in
  let delivered_ids = ref [] in
  let delivered_lines =
    List.filter_map
      (fun (l, outcome) ->
        match outcome_delivery outcome with
        | None, _, _ -> None
        | Some t_del, copies, attempts ->
          let delay = t_del -. (l.l_t -. t0) in
          t.delivered <- t.delivered + 1;
          T.count t.telemetry "serve.delivered" 1;
          Hist.add t.h_delay delay;
          T.hist t.telemetry "serve.delivery_delay_s" delay;
          delivered_ids := l.l_id :: !delivered_ids;
          Multipath.observe t.router l.l_entry.Registry.name ~delivered:true ~delay:(Some delay)
            ~loss:(loss_fraction ~copies ~attempts);
          Some
            (Printf.sprintf "delivered msg=%d algo=%s delay=%s copies=%d attempts=%d" l.l_id
               l.l_entry.Registry.name (g delay) copies attempts))
      evaluated
  in
  let gone = !delivered_ids in
  t.live <- List.filter (fun l -> l.l_t >= t0 && not (List.mem l.l_id gone)) t.live;
  expired_lines @ delivered_lines

let advance t target =
  T.with_span t.telemetry "serve.advance" @@ fun () ->
  t.advances <- t.advances + 1;
  Failpoint.trigger ~key:(Int64.of_int t.advances) "serve.evict";
  match Window.advance t.window target with
  | Error reason -> err "advance" reason
  | Ok evicted ->
    (* One advance closes one ingest batch, even an empty one: the
       batch-size distribution is a statement about stream shape, and
       idle advances are part of that shape. *)
    Hist.add t.h_batch (float_of_int t.pending_ingest);
    T.hist t.telemetry "serve.ingest_batch" (float_of_int t.pending_ingest);
    t.pending_ingest <- 0;
    if evicted > 0 then
      Flight.note "serve.evict"
        [ ("evicted", string_of_int evicted); ("now", g (Window.now t.window)) ];
    let lines = evaluate_live t in
    T.gauge t.telemetry "serve.window_size" (float_of_int (Window.size t.window));
    T.gauge t.telemetry "serve.live_messages" (float_of_int (List.length t.live));
    Printf.sprintf "advance now=%s t0=%s contacts=%d evicted=%d"
      (g (Window.now t.window))
      (g (Window.start t.window))
      (Window.size t.window) evicted
    :: lines

(* ---- queries -------------------------------------------------------- *)

let inject t ~src ~dst t_opt =
  T.with_span t.telemetry "serve.query" ~args:[ ("kind", T.Str "inject") ] @@ fun () ->
  match check_endpoints t ~src ~dst with
  | Error reason -> err "inject" reason
  | Ok () ->
    let t_abs = match t_opt with None -> Window.now t.window | Some tt -> tt in
    if t_abs < Window.start t.window then
      err "inject"
        (Printf.sprintf "time %s is behind the window start %s" (g t_abs)
           (g (Window.start t.window)))
    else begin
      let name = Multipath.pick t.router in
      let entry =
        (* pick returns a name the router was created with, which is a
           resolved entry by construction *)
        Array.to_list t.entries |> List.find (fun e -> String.equal e.Registry.name name)
      in
      let id = t.next_id in
      t.next_id <- id + 1;
      t.live <- t.live @ [ { l_id = id; l_src = src; l_dst = dst; l_t = t_abs; l_entry = entry } ];
      T.count t.telemetry "serve.injected" 1;
      [ Printf.sprintf "msg id=%d algo=%s t=%s" id name (g t_abs) ]
    end

let paths t ~src ~dst t_opt =
  T.with_span t.telemetry "serve.query" ~args:[ ("kind", T.Str "paths") ] @@ fun () ->
  match check_endpoints t ~src ~dst with
  | Error reason -> err "paths" reason
  | Ok () -> (
    match Window.trace t.window with
    | Error reason -> err "paths" reason
    | Ok wtrace -> (
      match query_time t t_opt with
      | Error reason -> err "paths" reason
      | Ok t_abs -> (
        let t_rel = t_abs -. Window.start t.window in
        let observed =
          match compile_faults t wtrace with
          | None -> wtrace
          | Some plan -> Faults.degrade plan wtrace
        in
        let config =
          { Enumerate.k = t.cfg.k; max_hops = None; stop_at_total = None; exhaustive = false }
        in
        match
          Enumerate.run ~config
            (Snapshot_.of_trace ~delta:t.cfg.delta observed)
            ~src ~dst ~t_create:t_rel
        with
        | exception Invalid_argument reason -> err "paths" reason
        | res ->
          let n = Array.length res.Enumerate.arrivals in
          let optimal =
            match Enumerate.first_arrival res with
            | None -> "-"
            | Some a -> g a.Enumerate.duration
          in
          let node_div, edge_div =
            match
              Multipath.diversity
                (Array.to_list res.Enumerate.arrivals
                |> List.map (fun (a : Enumerate.arrival) -> a.Enumerate.path))
            with
            | None -> ("-", "-")
            | Some (nd, ed) -> (g nd, g ed)
          in
          [
            Printf.sprintf "paths n=%d optimal=%s node_div=%s edge_div=%s steps=%d" n optimal
              node_div edge_div res.Enumerate.steps_processed;
          ])))

let delivery t ~src ~dst t_opt =
  T.with_span t.telemetry "serve.query" ~args:[ ("kind", T.Str "delivery") ] @@ fun () ->
  match check_endpoints t ~src ~dst with
  | Error reason -> err "delivery" reason
  | Ok () -> (
    match Window.trace t.window with
    | Error reason -> err "delivery" reason
    | Ok wtrace -> (
      match query_time t t_opt with
      | Error reason -> err "delivery" reason
      | Ok t_abs -> (
        let t_rel = t_abs -. Window.start t.window in
        let plan = compile_faults t wtrace in
        match
          fan_out t t.entries (fun scratch entry ->
              evaluate ~plan ~wtrace scratch entry ~src ~dst ~t_rel)
        with
        | exception Invalid_argument reason -> err "delivery" reason
        | outcomes ->
          (* Probes are observations too: asking "who would deliver?"
             teaches the router, in entry order, deterministically. *)
          let lines =
            Array.to_list
              (Array.mapi
                 (fun i outcome ->
                   let entry = t.entries.(i) in
                   let delivered, copies, attempts = outcome_delivery outcome in
                   let loss = loss_fraction ~copies ~attempts in
                   let delay = Option.map (fun td -> td -. t_rel) delivered in
                   Multipath.observe t.router entry.Registry.name
                     ~delivered:(Option.is_some delivered) ~delay ~loss;
                   Printf.sprintf "probe algo=%s delivered=%s delay=%s copies=%d attempts=%d loss=%s"
                     entry.Registry.name
                     (if Option.is_some delivered then "yes" else "no")
                     (match delay with None -> "-" | Some d -> g d)
                     copies attempts (g loss))
                 outcomes)
          in
          lines @ [ Printf.sprintf "pick algo=%s" (Multipath.pick t.router) ])))

let route t =
  T.with_span t.telemetry "serve.query" ~args:[ ("kind", T.Str "route") ] @@ fun () ->
  Printf.sprintf "pick algo=%s" (Multipath.pick t.router)
  :: List.map
       (fun (name, w) ->
         Printf.sprintf "weight algo=%s w=%s obs=%d" name (g w)
           (Multipath.observations t.router name))
       (Multipath.weights t.router)

type summary = {
  s_now : float;
  s_start : float;
  s_contacts : int;
  s_peak : int;
  s_nodes : int;
  s_live : int;
  s_ingested : int;
  s_evicted : int;
  s_budget_evicted : int;
  s_dropped : int;
  s_delivered : int;
  s_expired : int;
  s_snapshots : int;
}

let summary t =
  let c = Window.counters t.window in
  {
    s_now = Window.now t.window;
    s_start = Window.start t.window;
    s_contacts = Window.size t.window;
    s_peak = Window.peak t.window;
    s_nodes = Window.n_nodes t.window;
    s_live = List.length t.live;
    s_ingested = c.Window.ingested;
    s_evicted = c.Window.evicted;
    s_budget_evicted = c.Window.budget_evicted;
    s_dropped = c.Window.dropped;
    s_delivered = t.delivered;
    s_expired = t.expired;
    s_snapshots = t.snapshots;
  }

(* The router's raw EWMA table, one reply line per strategy in
   registration order — what makes an adaptive-vs-static delivery gap
   diagnosable from a live session. *)
let strategy_lines t =
  List.map
    (fun (name, (obs, success, delay, has_delay, loss)) ->
      Printf.sprintf "strat algo=%s obs=%d success=%s delay=%s loss=%s score=%s" name obs
        (g success)
        (if has_delay then g delay else "-")
        (g loss)
        (g (Multipath.score t.router name)))
    (Multipath.dump t.router)

let stats t =
  T.with_span t.telemetry "serve.query" ~args:[ ("kind", T.Str "stats") ] @@ fun () ->
  let s = summary t in
  Printf.sprintf
    "stats now=%s t0=%s contacts=%d peak=%d nodes=%d live=%d ingested=%d evicted=%d \
     budget_evicted=%d dropped=%d delivered=%d expired=%d snapshots=%d"
    (g s.s_now) (g s.s_start) s.s_contacts s.s_peak s.s_nodes s.s_live s.s_ingested s.s_evicted
    s.s_budget_evicted s.s_dropped s.s_delivered s.s_expired s.s_snapshots
  :: strategy_lines t

(* ---- metrics registry ------------------------------------------------ *)

(* Every family here is a value metric — protocol counters, window
   occupancy, router EWMAs, simulated-quantity histograms — so the
   whole registry is byte-identical across [--jobs]×[--chunk] and the
   [metrics] verb can appear in golden transcripts. Wall-time families
   (span-duration histograms) are added by the CLI from its telemetry
   summary, flagged [time_based] so values-only surfaces skip them. *)
let registry t =
  let m = Openmetrics.create () in
  let s = summary t in
  let c ?help name v = Openmetrics.counter m ?help name v in
  let gg ?help name v = Openmetrics.gauge m ?help name v in
  c ~help:"Contacts accepted into the window" "psn_serve_ingested" s.s_ingested;
  c ~help:"Contacts evicted by window slide" "psn_serve_evicted" s.s_evicted;
  c ~help:"Contacts evicted by the memory budget" "psn_serve_budget_evicted" s.s_budget_evicted;
  c ~help:"Contacts rejected under the drop policy" "psn_serve_dropped" s.s_dropped;
  c ~help:"Messages injected" "psn_serve_injected" t.next_id;
  c ~help:"Messages delivered" "psn_serve_delivered" s.s_delivered;
  c ~help:"Messages expired out of the window" "psn_serve_expired" s.s_expired;
  c ~help:"Snapshot commands served" "psn_serve_snapshots" s.s_snapshots;
  c ~help:"Advance commands processed" "psn_serve_advances" t.advances;
  gg ~help:"Stream time" "psn_serve_now_seconds" s.s_now;
  gg ~help:"Window start time" "psn_serve_window_start_seconds" s.s_start;
  gg ~help:"Contacts currently in the window" "psn_serve_window_contacts" (float_of_int s.s_contacts);
  gg ~help:"Window occupancy high-water mark" "psn_serve_window_peak" (float_of_int s.s_peak);
  gg ~help:"Observed node population" "psn_serve_nodes" (float_of_int s.s_nodes);
  gg ~help:"Live (undelivered, unexpired) messages" "psn_serve_live_messages"
    (float_of_int s.s_live);
  List.iter
    (fun (name, (obs, success, delay, has_delay, loss)) ->
      let labels = [ ("algo", name) ] in
      Openmetrics.counter m ~labels ~help:"Delivery observations absorbed per strategy"
        "psn_serve_router_observations" obs;
      Openmetrics.gauge m ~labels ~help:"EWMA delivery success per strategy"
        "psn_serve_router_success" success;
      if has_delay then
        Openmetrics.gauge m ~labels ~help:"EWMA delivery delay per strategy (simulated seconds)"
          "psn_serve_router_delay_seconds" delay;
      Openmetrics.gauge m ~labels ~help:"EWMA transfer-loss fraction per strategy"
        "psn_serve_router_loss" loss;
      Openmetrics.gauge m ~labels ~help:"Routing score: success*(1-loss)/(1+delay)"
        "psn_serve_router_score" (Multipath.score t.router name))
    (Multipath.dump t.router);
  Openmetrics.histogram m ~help:"Delivery delay of completed messages (simulated seconds)"
    "psn_serve_delivery_delay_seconds" t.h_delay;
  Openmetrics.histogram m ~help:"Contacts ingested per advance"
    "psn_serve_ingest_batch_contacts" t.h_batch;
  m

let metrics_text t = Openmetrics.render ~values_only:true (registry t)

let metrics t =
  T.with_span t.telemetry "serve.query" ~args:[ ("kind", T.Str "metrics") ] @@ fun () ->
  (* The exposition ends with "# EOF\n"; as reply lines, drop the
     final empty fragment the trailing newline would produce. *)
  String.split_on_char '\n' (metrics_text t)
  |> List.filter (fun l -> String.length l > 0)

(* ---- snapshot / restore --------------------------------------------- *)

let snapshot_text t =
  let b = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  addf "psn-serve-snapshot 2";
  let w = t.cfg.window in
  addf "window %s %d %s %d" (h w.Window.span) w.Window.budget
    (match w.Window.policy with Window.Drop -> "drop" | Window.Slide -> "slide")
    w.Window.nodes;
  addf "enum %s %d" (h t.cfg.delta) t.cfg.k;
  addf "router %s %d" (h t.cfg.router.Multipath.alpha) t.cfg.router.Multipath.explore;
  addf "strategies %d" (Array.length t.entries);
  Array.iter (fun e -> addf "%s" e.Registry.name) t.entries;
  (match t.cfg.faults with
  | None -> addf "faults 0"
  | Some f ->
    addf "faults 1 %s %s %s %s %Ld" (h f.Faults.loss) (h f.Faults.crash_rate)
      (h f.Faults.down_time) (h f.Faults.jitter) f.Faults.seed);
  addf "clock %s %s %d %d"
    (h (Window.now t.window))
    (h (Window.last_start t.window))
    (Window.n_nodes t.window) (Window.peak t.window);
  let c = Window.counters t.window in
  addf "counters %d %d %d %d %d %d %d %d %d %d" c.Window.ingested c.Window.evicted
    c.Window.budget_evicted c.Window.dropped t.next_id t.delivered t.expired t.snapshots
    t.snap_writes t.advances;
  let contacts = Window.contacts t.window in
  addf "contacts %d" (List.length contacts);
  List.iter
    (fun (ct : Contact.t) ->
      addf "%d %d %s %s" ct.Contact.a ct.Contact.b (h ct.Contact.t_start) (h ct.Contact.t_end))
    contacts;
  addf "live %d" (List.length t.live);
  List.iter
    (fun l -> addf "%d %d %d %s %s" l.l_id l.l_src l.l_dst (h l.l_t) l.l_entry.Registry.name)
    t.live;
  let rows = Multipath.dump t.router in
  addf "ewma %d" (List.length rows);
  List.iter
    (fun (name, (obs, success, delay, has_delay, loss)) ->
      addf "%s %d %s %s %d %s" name obs (h success) (h delay) (if has_delay then 1 else 0)
        (h loss))
    rows;
  (* v2: value histograms and the open ingest batch, so a resumed
     server's [metrics] replies continue byte-identically. *)
  addf "pending %d" t.pending_ingest;
  addf "hist delay %s" (Hist.encode t.h_delay);
  addf "hist batch %s" (Hist.encode t.h_batch);
  addf "end";
  Buffer.contents b

let write_snapshot t =
  match t.store with
  | None -> Error "no store configured (pass --store to enable snapshots)"
  | Some store ->
    Failpoint.trigger ~key:(Int64.of_int t.snap_writes) "serve.snapshot";
    let key = Key.named ~family:"serve-snapshot" t.session in
    t.snap_writes <- t.snap_writes + 1;
    (* The snapshot describes the state *including* this write's
       count, so a resumed server's next write lands one later —
       byte-identical counters either side of the crash. *)
    let text = snapshot_text t in
    Store.put_blob store key text;
    T.count t.telemetry "serve.snapshots" 1;
    Ok (Key.to_hex key, String.length text)

(* The protocol-visible snapshot count moves only on the [snapshot]
   command, never on automatic end-of-stream drains — a resumed
   transcript's [stats] lines must match an uninterrupted run's, and
   drains happen exactly at the points an uninterrupted run skips. *)
let snapshot_cmd t =
  T.with_span t.telemetry "serve.query" ~args:[ ("kind", T.Str "snapshot") ] @@ fun () ->
  match t.store with
  | None -> err "snapshot" "no store configured (pass --store to enable snapshots)"
  | Some _ -> (
    t.snapshots <- t.snapshots + 1;
    match write_snapshot t with
    | Error reason -> err "snapshot" reason
    | Ok (hex, bytes) -> [ Printf.sprintf "snapshot key=%s bytes=%d" hex bytes ])

exception Snapshot_malformed of string

let sfail fmt = Printf.ksprintf (fun s -> raise (Snapshot_malformed s)) fmt

let restore ?telemetry ?store ?session ?jobs ?chunk text =
  let lines = String.split_on_char '\n' text |> Array.of_list in
  let pos = ref 0 in
  let next () =
    if !pos >= Array.length lines then sfail "truncated snapshot (line %d)" (!pos + 1)
    else begin
      let l = lines.(!pos) in
      incr pos;
      l
    end
  in
  let words l = String.split_on_char ' ' l |> List.filter (fun s -> String.length s > 0) in
  let int_of what s =
    match int_of_string_opt s with Some v -> v | None -> sfail "bad %s: %S" what s
  in
  let float_of what s =
    match float_of_string_opt s with Some v -> v | None -> sfail "bad %s: %S" what s
  in
  let int64_of what s =
    match Int64.of_string_opt s with Some v -> v | None -> sfail "bad %s: %S" what s
  in
  let parse () =
    (match words (next ()) with
    | [ "psn-serve-snapshot"; "2" ] -> ()
    | [ "psn-serve-snapshot"; v ] -> sfail "unsupported snapshot version %S (want 2)" v
    | _ -> sfail "not a psn-serve snapshot (bad header)");
    let window =
      match words (next ()) with
      | [ "window"; span; budget; policy; nodes ] ->
        {
          Window.span = float_of "span" span;
          budget = int_of "budget" budget;
          policy =
            (match policy with
            | "drop" -> Window.Drop
            | "slide" -> Window.Slide
            | other -> sfail "bad policy: %S" other);
          nodes = int_of "nodes" nodes;
        }
      | _ -> sfail "bad window line"
    in
    let delta, k =
      match words (next ()) with
      | [ "enum"; delta; k ] -> (float_of "delta" delta, int_of "k" k)
      | _ -> sfail "bad enum line"
    in
    let router_cfg =
      match words (next ()) with
      | [ "router"; alpha; explore ] ->
        { Multipath.alpha = float_of "alpha" alpha; explore = int_of "explore" explore }
      | _ -> sfail "bad router line"
    in
    let n_strategies =
      match words (next ()) with
      | [ "strategies"; n ] -> int_of "strategy count" n
      | _ -> sfail "bad strategies line"
    in
    let strategies = List.init n_strategies (fun _ -> String.trim (next ())) in
    let faults =
      match words (next ()) with
      | [ "faults"; "0" ] -> None
      | [ "faults"; "1"; loss; crash; down; jitter; seed ] ->
        Some
          {
            Faults.loss = float_of "loss" loss;
            crash_rate = float_of "crash rate" crash;
            down_time = float_of "down time" down;
            jitter = float_of "jitter" jitter;
            seed = int64_of "fault seed" seed;
          }
      | _ -> sfail "bad faults line"
    in
    let now, last_start, pop, peak =
      match words (next ()) with
      | [ "clock"; now; last_start; pop; peak ] ->
        (float_of "now" now, float_of "last start" last_start, int_of "population" pop,
         int_of "peak" peak)
      | _ -> sfail "bad clock line"
    in
    let counters =
      match words (next ()) with
      | [ "counters"; a; b; c; d; e; f; gg; hh; ww; i ] ->
        ( {
            Window.ingested = int_of "ingested" a;
            evicted = int_of "evicted" b;
            budget_evicted = int_of "budget evictions" c;
            dropped = int_of "dropped" d;
          },
          int_of "next id" e,
          int_of "delivered" f,
          int_of "expired" gg,
          int_of "snapshots" hh,
          int_of "snapshot writes" ww,
          int_of "advances" i )
      | _ -> sfail "bad counters line"
    in
    let n_contacts =
      match words (next ()) with
      | [ "contacts"; n ] -> int_of "contact count" n
      | _ -> sfail "bad contacts line"
    in
    let contacts =
      List.init n_contacts (fun _ ->
          match words (next ()) with
          | [ a; b; s; e ] -> (
            match
              Contact.make ~a:(int_of "endpoint" a) ~b:(int_of "endpoint" b)
                ~t_start:(float_of "contact start" s) ~t_end:(float_of "contact end" e)
            with
            | c -> c
            | exception Invalid_argument reason -> sfail "bad contact: %s" reason)
          | _ -> sfail "bad contact line")
    in
    let n_live =
      match words (next ()) with
      | [ "live"; n ] -> int_of "live count" n
      | _ -> sfail "bad live line"
    in
    let live_rows =
      List.init n_live (fun _ ->
          match words (next ()) with
          | [ id; src; dst; tt; name ] ->
            ( int_of "message id" id,
              int_of "source" src,
              int_of "destination" dst,
              float_of "creation time" tt,
              name )
          | _ -> sfail "bad live message line")
    in
    let n_ewma =
      match words (next ()) with
      | [ "ewma"; n ] -> int_of "ewma count" n
      | _ -> sfail "bad ewma line"
    in
    let ewma_rows =
      List.init n_ewma (fun _ ->
          match words (next ()) with
          | [ name; obs; success; delay; has_delay; loss ] ->
            ( name,
              ( int_of "observations" obs,
                float_of "success" success,
                float_of "delay" delay,
                (match has_delay with
                | "0" -> false
                | "1" -> true
                | other -> sfail "bad has_delay flag: %S" other),
                float_of "loss" loss ) )
          | _ -> sfail "bad ewma row")
    in
    let pending =
      match words (next ()) with
      | [ "pending"; n ] -> int_of "pending ingest" n
      | _ -> sfail "bad pending line"
    in
    let hist_row what =
      let line = next () in
      let prefix = "hist " ^ what ^ " " in
      let plen = String.length prefix in
      if String.length line > plen && String.equal (String.sub line 0 plen) prefix then begin
        match Hist.decode (String.sub line plen (String.length line - plen)) with
        | Some hh -> hh
        | None -> sfail "bad %s histogram" what
      end
      else sfail "bad hist %s line" what
    in
    let h_delay = hist_row "delay" in
    let h_batch = hist_row "batch" in
    (match words (next ()) with [ "end" ] -> () | _ -> sfail "missing end marker");
    ( { window; delta; k; strategies; router = router_cfg; faults },
      (now, last_start, pop, peak),
      counters,
      contacts,
      live_rows,
      ewma_rows,
      (pending, h_delay, h_batch) )
  in
  match parse () with
  | exception Snapshot_malformed reason -> Error ("snapshot: " ^ reason)
  | ( cfg,
      (now, last_start, pop, peak),
      (wc, next_id, delivered, expired, snapshots, snap_writes, advances),
      contacts,
      live_rows,
      ewma_rows,
      (pending, h_delay, h_batch) ) -> (
    match create ?telemetry ?store ?session ?jobs ?chunk cfg with
    | Error _ as e -> e
    | Ok t -> (
      match
        Window.restore cfg.window ~now ~last_start ~n_nodes:pop ~peak ~counters:wc contacts
      with
      | Error _ as e -> e
      | Ok window -> (
        match Multipath.load cfg.router ewma_rows with
        | Error _ as e -> e
        | Ok router ->
          let find_entry name =
            match
              Array.to_list t.entries |> List.find_opt (fun e -> String.equal e.Registry.name name)
            with
            | Some e -> e
            | None -> raise (Snapshot_malformed (Printf.sprintf "unknown live strategy %S" name))
          in
          (match
             List.map
               (fun (l_id, l_src, l_dst, l_t, name) ->
                 { l_id; l_src; l_dst; l_t; l_entry = find_entry name })
               live_rows
           with
          | exception Snapshot_malformed reason -> Error ("snapshot: " ^ reason)
          | live ->
            t.window <- window;
            t.router <- router;
            t.live <- live;
            t.next_id <- next_id;
            t.delivered <- delivered;
            t.expired <- expired;
            t.snapshots <- snapshots;
            t.snap_writes <- snap_writes;
            t.advances <- advances;
            t.pending_ingest <- pending;
            Hist.merge_into ~into:t.h_delay h_delay;
            Hist.merge_into ~into:t.h_batch h_batch;
            Ok t))))

(* ---- dispatch ------------------------------------------------------- *)

let handle t raw =
  Flight.note "serve.line" [ ("raw", raw) ];
  match Protocol.parse raw with
  | Error reason -> `Reply (err "parse" reason)
  | Ok Protocol.Blank -> `Reply []
  | Ok (Protocol.Contact c) -> `Reply (ingest t c)
  | Ok (Protocol.Advance target) -> `Reply (advance t target)
  | Ok (Protocol.Query q) -> (
    match q with
    | Protocol.Quit -> `Stop [ "bye" ]
    | Protocol.Inject { src; dst; t = tt } -> `Reply (inject t ~src ~dst tt)
    | Protocol.Paths { src; dst; t = tt } -> `Reply (paths t ~src ~dst tt)
    | Protocol.Delivery { src; dst; t = tt } -> `Reply (delivery t ~src ~dst tt)
    | Protocol.Route -> `Reply (route t)
    | Protocol.Stats -> `Reply (stats t)
    | Protocol.Metrics -> `Reply (metrics t)
    | Protocol.Snapshot -> `Reply (snapshot_cmd t))
