(** The serve line protocol: parsing only, no I/O.

    One request per line. Contact events use the exact
    {!Psn_trace.Trace_io} contact syntax ([a,b,t_start,t_end] —
    commas), so a trace file body can be piped straight in; everything
    else is space-separated words:

    {v
    a,b,t_start,t_end           ingest one contact event
    advance T                   move stream time forward to T
    inject SRC DST [T]          route a live message (default T = now)
    paths SRC DST [T]           count/diversity of valid paths
    delivery SRC DST [T]        per-strategy delivery probe
    route                       current router pick and weights
    stats                       window, session and per-strategy counters
    metrics                     OpenMetrics exposition (value metrics)
    snapshot                    persist session state to the store
    quit                        stop serving
    v}

    Blank lines and [#]-comments parse to {!Blank} (scripts can be
    annotated). Times for [paths]/[delivery] default to the window
    start. Parse errors name the offence; they never raise. *)

type query =
  | Inject of { src : Psn_trace.Node.id; dst : Psn_trace.Node.id; t : float option }
  | Paths of { src : Psn_trace.Node.id; dst : Psn_trace.Node.id; t : float option }
  | Delivery of { src : Psn_trace.Node.id; dst : Psn_trace.Node.id; t : float option }
  | Route
  | Stats
  | Metrics
  | Snapshot
  | Quit

type line =
  | Blank
  | Contact of Psn_trace.Contact.t
  | Advance of float
  | Query of query

val parse : string -> (line, string) result
