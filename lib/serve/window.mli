(** The sliding contact window: the live, bounded substrate every
    serve query runs against.

    A window holds the contacts of the last [span] seconds of stream
    time in a deterministic min-heap keyed by eviction order, under a
    hard [budget] on the number of live contacts. Its one load-bearing
    guarantee is {e batch equivalence}: at any instant, {!trace} is
    byte-identical (under {!Psn_store.Codec.encode_trace}) to
    [Trace.restrict full ~t0:(start w) ~t1:(now w)] of the full stream
    — the qcheck property the serve test suite pins. Everything a
    query answers is a pure function of that trace, which is how the
    incremental server inherits the batch layer's determinism contract
    wholesale.

    Time only moves forward: contacts must arrive in nondecreasing
    [t_start] order (the order {!Psn_trace.Trace_io} files are in),
    and {!advance} rejects moving [now] backwards. Eviction removes
    contacts whose [t_end] fell behind [now - span]; the eviction key
    [(t_end, t_start, a, b)] is a total order on distinct contacts, so
    the evicted set never depends on heap internals. *)

type policy =
  | Drop
      (** Over budget: reject the {e incoming} contact, counting it in
          [dropped] — the window keeps its older contents. *)
  | Slide
      (** Over budget: evict earliest-ending live contacts until the
          newcomer fits, counting them in [budget_evicted] — the
          window favours recency. *)

type config = {
  span : float;  (** Window length, seconds of stream time, [> 0]. *)
  budget : int;  (** Hard cap on live contacts, [> 0]. *)
  policy : policy;  (** What over-budget ingest does. *)
  nodes : int;
      (** Fixed population size, or [0] to grow with the stream (the
          population then ratchets up to the largest endpoint seen and
          never shrinks — ids must stay meaningful across slides). *)
}

type counters = {
  ingested : int;  (** Contacts accepted (including already-expired ones). *)
  evicted : int;  (** Contacts evicted because [t_end <= now - span]. *)
  budget_evicted : int;  (** Contacts evicted by the [Slide] policy. *)
  dropped : int;  (** Contacts rejected by the [Drop] policy. *)
}

type t

val create : config -> (t, string) result
(** An empty window at stream time 0. [Error] on a non-positive span
    or budget, or a negative [nodes]. *)

val config : t -> config
val now : t -> float
(** Current stream time: the largest contact start or {!advance}
    target seen. *)

val start : t -> float
(** The window's left edge, [max 0 (now - span)]. *)

val last_start : t -> float
(** The largest contact start ingested so far — the monotone-ingest
    guard, persisted by snapshots so a restored window rejects exactly
    the same arrivals the original would. *)

val n_nodes : t -> int
(** Current population: [config.nodes] when fixed, else the ratchet. *)

val size : t -> int
(** Live contacts right now. *)

val peak : t -> int
(** High-water mark of {!size} — what the bench's memory-bound check
    compares against [budget]. *)

val counters : t -> counters

type verdict = Accepted | Rejected_over_budget

val ingest : t -> Psn_trace.Contact.t -> (verdict, string) result
(** Feed one stream contact. Advances [now] to the contact's start,
    evicts what that expires, then applies the budget policy. [Error]
    on out-of-order arrival (start before a previously ingested start)
    or, with a fixed population, an out-of-range endpoint. A contact
    already expired on arrival ([t_end <= start]) is counted ingested
    and evicted without ever going live. *)

val advance : t -> float -> (int, string) result
(** Move stream time forward to the given instant and evict what
    expired; returns the eviction count. [Error] on moving backwards
    (equal is allowed and evicts nothing new). *)

val contacts : t -> Psn_trace.Contact.t list
(** The live contacts, sorted by {!Psn_trace.Contact.compare_by_start}
    — unclipped, as ingested (what snapshots persist). *)

val trace : t -> (Psn_trace.Trace.t, string) result
(** The window as a batch trace: live contacts clipped to
    [[start, now)] and re-based to 0, horizon [now - start] — exactly
    {!Psn_trace.Trace.restrict}'s semantics, so window queries and
    batch queries agree. [Error] while no time has elapsed or no node
    has been seen. *)

val restore :
  config ->
  now:float ->
  last_start:float ->
  n_nodes:int ->
  peak:int ->
  counters:counters ->
  Psn_trace.Contact.t list ->
  (t, string) result
(** Rebuild a window from snapshotted state: configuration, clocks,
    counters and the live contact list. The result behaves identically
    to the window that was snapshotted (the heap is rebuilt, but the
    eviction key is a total order, so observable behaviour cannot tell
    the difference). [Error] on inconsistent state (a live contact
    already expired, [last_start > now], bad population). *)
