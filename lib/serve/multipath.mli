(** Adaptive multipath routing state, in the spirit of the
    MultipathManager pattern: per-strategy EWMA quality tracking plus
    path-overlap diversity scoring.

    Conan et al.'s heterogeneity results say which forwarding strategy
    wins depends on the observed inter-contact behaviour — so the
    serving layer cannot pick one offline. Instead the router keeps,
    per registered strategy, exponentially weighted moving averages of
    delivery success, delivery delay and transfer-loss fraction (the
    loss signal comes from the {!Psn_sim.Faults} layer: the gap
    between attempted and completed transfers in an engine outcome),
    and rebalances online: {!pick} routes new messages to the current
    best score, {!weights} exposes the full normalised mix.

    Everything here is deterministic: scores are pure folds of the
    observation sequence, ties break on registration order, and there
    is no clock and no randomness — the same observations always
    produce the same routing. *)

type config = {
  alpha : float;  (** EWMA gain, in (0, 1]; higher forgets faster. *)
  explore : int;
      (** Observations a strategy gets the optimistic score 1 for
          before its EWMAs speak — forces every arm to be tried. *)
}

val default_config : config
(** [alpha = 0.3], [explore = 1]. *)

type t

val create : config -> names:string list -> (t, string) result
(** Router over the given strategy names (registration order is the
    tie-break order). [Error] on an invalid config, an empty list or a
    duplicate name. *)

val names : t -> string list

val observe : t -> string -> delivered:bool -> delay:float option -> loss:float -> unit
(** Fold one delivery observation into the named strategy's EWMAs:
    [delivered] updates the success average, [delay] (when delivered)
    the delay average, [loss] — the fraction of attempted transfers
    the faults layer killed — the loss average. Unknown names raise
    [Invalid_argument] (the server only observes names it created the
    router with). *)

val observations : t -> string -> int
(** How many observations the named strategy has absorbed. *)

val score : t -> string -> float
(** The strategy's current quality: [1] while it has fewer than
    [explore] observations, else
    [success * (1 - loss) / (1 + mean_delay)] — deliveries dominate,
    ties go to lower observed delay and loss. *)

val pick : t -> string
(** The highest-scoring strategy; ties break on registration order. *)

val weights : t -> (string * float) list
(** Scores normalised to sum 1 (uniform when all scores are 0), in
    registration order — the router's current traffic mix. *)

val dump : t -> (string * (int * float * float * bool * float)) list
(** Raw per-strategy state [(obs, success, delay, has_delay, loss)] in
    registration order — what snapshots persist. *)

val load :
  config -> (string * (int * float * float * bool * float)) list -> (t, string) result
(** Rebuild from {!dump} output; inverse of [dump] (bit-exact when the
    floats round-tripped exactly, which the snapshot codec's hex-float
    rendering guarantees). *)

val diversity : Psn_paths.Path.t list -> (float * float) option
(** [(node, edge)] diversity of a path set: 1 minus the mean pairwise
    Jaccard overlap of node sets and of directed-hop edge sets — 1
    means fully disjoint paths, 0 means identical. [None] with fewer
    than two paths. To bound the O(pairs) cost against the paper's
    path explosion, at most the first {!diversity_cap} paths (the
    earliest arrivals — the ones forwarding actually exercises) enter
    the computation; callers see the cap, not a silent truncation. *)

val diversity_cap : int
(** 32. *)
