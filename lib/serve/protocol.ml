module Contact = Psn_trace.Contact

type query =
  | Inject of { src : Psn_trace.Node.id; dst : Psn_trace.Node.id; t : float option }
  | Paths of { src : Psn_trace.Node.id; dst : Psn_trace.Node.id; t : float option }
  | Delivery of { src : Psn_trace.Node.id; dst : Psn_trace.Node.id; t : float option }
  | Route
  | Stats
  | Metrics
  | Snapshot
  | Quit

type line =
  | Blank
  | Contact of Psn_trace.Contact.t
  | Advance of float
  | Query of query

let int_field what s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> Ok v
  | Some v -> Error (Printf.sprintf "%s must be non-negative (got %d)" what v)
  | None -> Error (Printf.sprintf "%s is not an integer: %S" what s)

let float_field what s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> Ok v
  | Some _ -> Error (Printf.sprintf "%s must be finite" what)
  | None -> Error (Printf.sprintf "%s is not a number: %S" what s)

(* The Trace_io contact line: a,b,t_start,t_end. Contact.make's own
   validation (self-contact, inverted interval) is folded into the
   parse error rather than escaping as an exception. *)
let parse_contact line =
  match String.split_on_char ',' line with
  | [ a; b; s; e ] -> (
    match (int_field "endpoint" a, int_field "endpoint" b) with
    | Error reason, _ | _, Error reason -> Error reason
    | Ok a, Ok b -> (
      match (float_field "contact start" s, float_field "contact end" e) with
      | Error reason, _ | _, Error reason -> Error reason
      | Ok t_start, Ok t_end -> (
        match Contact.make ~a ~b ~t_start ~t_end with
        | c -> Ok (Contact c)
        | exception Invalid_argument reason -> Error reason)))
  | _ -> Error (Printf.sprintf "malformed contact line (want a,b,t_start,t_end): %S" line)

let endpoints_query what make src dst t_opt =
  match (int_field (what ^ " source") src, int_field (what ^ " destination") dst) with
  | Error reason, _ | _, Error reason -> Error reason
  | Ok src, Ok dst -> (
    match t_opt with
    | None -> Ok (Query (make ~src ~dst None))
    | Some s -> (
      match float_field (what ^ " time") s with
      | Error _ as e -> e
      | Ok t -> Ok (Query (make ~src ~dst (Some t)))))

let inject ~src ~dst t = Inject { src; dst; t }
let paths ~src ~dst t = Paths { src; dst; t }
let delivery ~src ~dst t = Delivery { src; dst; t }

let parse raw =
  let line = String.trim raw in
  if String.length line = 0 || Char.equal line.[0] '#' then Ok Blank
  else if String.contains line ',' then parse_contact line
  else begin
    let words = String.split_on_char ' ' line |> List.filter (fun s -> String.length s > 0) in
    match words with
    | [ "advance"; t ] -> (
      match float_field "advance time" t with Error _ as e -> e | Ok t -> Ok (Advance t))
    | [ "inject"; src; dst ] -> endpoints_query "inject" inject src dst None
    | [ "inject"; src; dst; t ] -> endpoints_query "inject" inject src dst (Some t)
    | [ "paths"; src; dst ] -> endpoints_query "paths" paths src dst None
    | [ "paths"; src; dst; t ] -> endpoints_query "paths" paths src dst (Some t)
    | [ "delivery"; src; dst ] -> endpoints_query "delivery" delivery src dst None
    | [ "delivery"; src; dst; t ] -> endpoints_query "delivery" delivery src dst (Some t)
    | [ "route" ] -> Ok (Query Route)
    | [ "stats" ] -> Ok (Query Stats)
    | [ "metrics" ] -> Ok (Query Metrics)
    | [ "snapshot" ] -> Ok (Query Snapshot)
    | [ "quit" ] -> Ok (Query Quit)
    (* Known verb, wrong shape: answer with the expected usage rather
       than a misleading "unknown request". *)
    | "advance" :: _ -> Error "advance expects one time: advance T"
    | "inject" :: _ -> Error "inject expects: inject SRC DST [T]"
    | "paths" :: _ -> Error "paths expects: paths SRC DST [T]"
    | "delivery" :: _ -> Error "delivery expects: delivery SRC DST [T]"
    | (("route" | "stats" | "metrics" | "snapshot" | "quit") as verb) :: _ ->
      Error (Printf.sprintf "%s takes no arguments" verb)
    | verb :: _ -> Error (Printf.sprintf "unknown request %S" verb)
    | [] -> Ok Blank
  end
