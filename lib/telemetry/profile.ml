(* Human profile report: the span forest aggregated by name path
   (every "runner.task" under the same parent is one row — calls,
   total wall, self wall), the merged counter table, and a gauge
   digest. Aggregation spans all tracks, so a domain-parallel
   section's total can exceed the run's wall time; coverage is judged
   against the main track only, where roots nest the whole run. *)

(* One aggregation node: spans sharing a name under the same parent. *)
type node = {
  mutable calls : int;
  mutable total : float;
  mutable child_time : float;
  children : (string, node) Hashtbl.t;
}

let make_node () = { calls = 0; total = 0.; child_time = 0.; children = Hashtbl.create 4 }

let rec add_span node (s : Telemetry.span) =
  let child =
    match Hashtbl.find_opt node.children s.Telemetry.s_name with
    | Some c -> c
    | None ->
      let c = make_node () in
      Hashtbl.add node.children s.Telemetry.s_name c;
      c
  in
  child.calls <- child.calls + 1;
  child.total <- child.total +. s.Telemetry.s_duration;
  List.iter
    (fun (sub : Telemetry.span) ->
      child.child_time <- child.child_time +. sub.Telemetry.s_duration;
      add_span child sub)
    s.Telemetry.s_children

(* Rows ordered heaviest-first; ties (and the zero-duration case)
   break on the name so the report is a function of the summary. *)
let ordered_children node =
  Psn_det.Det_tbl.bindings ~cmp:String.compare node.children
  |> List.sort (fun (n1, c1) (n2, c2) ->
         match Float.compare c2.total c1.total with
         | 0 -> String.compare n1 n2
         | c -> c)

let rec render_node b ~depth name node =
  let self = Float.max 0. (node.total -. node.child_time) in
  Buffer.add_string b
    (Printf.sprintf "  %-*s %6d %9.3f %9.3f\n"
       (Int.max 1 (40 - (2 * depth)))
       (String.make (2 * depth) ' ' ^ name)
       node.calls node.total self);
  List.iter (fun (n, c) -> render_node b ~depth:(depth + 1) n c) (ordered_children node)

let coverage (summary : Telemetry.summary) =
  let main_total =
    List.fold_left
      (fun acc (s : Telemetry.span) ->
        if s.Telemetry.s_track = 0 then acc +. s.Telemetry.s_duration else acc)
      0. summary.Telemetry.roots
  in
  if summary.Telemetry.elapsed > 0. then main_total /. summary.Telemetry.elapsed *. 100.
  else 0.

let gauge_rows (summary : Telemetry.summary) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (g : Telemetry.sample) ->
      let n, lo, hi, sum =
        match Hashtbl.find_opt tbl g.Telemetry.g_name with
        | Some row -> row
        | None -> (0, Float.max_float, -.Float.max_float, 0.)
      in
      Hashtbl.replace tbl g.Telemetry.g_name
        ( n + 1,
          Float.min lo g.Telemetry.g_value,
          Float.max hi g.Telemetry.g_value,
          sum +. g.Telemetry.g_value ))
    summary.Telemetry.samples;
  Psn_det.Det_tbl.bindings ~cmp:String.compare tbl

(* Histogram digests, one row per name. %g keeps tiny durations
   readable where the fixed-point gauge columns would round to 0.0. *)
let hist_rows b ~header rows =
  match rows with
  | [] -> ()
  | rows ->
    Buffer.add_string b
      (Printf.sprintf "  %-40s %6s %9s %9s %9s %9s %9s\n" header "n" "p50" "p90" "p99" "p999"
         "max");
    List.iter
      (fun (name, hh) ->
        let d = Hist.digest hh in
        Buffer.add_string b
          (Printf.sprintf "  %-40s %6d %9.3g %9.3g %9.3g %9.3g %9.3g\n" name d.Hist.d_count
             d.Hist.d_p50 d.Hist.d_p90 d.Hist.d_p99 d.Hist.d_p999 d.Hist.d_max))
      rows

let render ?(title = "profile") (summary : Telemetry.summary) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "== %s ==\n" title);
  Buffer.add_string b
    (Printf.sprintf "wall time %.3f s; spans cover %.1f%% of the main track\n"
       summary.Telemetry.elapsed (coverage summary));
  if summary.Telemetry.dropped_ends > 0 then
    Buffer.add_string b
      (Printf.sprintf "(%d unbalanced span end(s) dropped)\n" summary.Telemetry.dropped_ends);
  (* Aggregate every track's roots under one synthetic parent. *)
  let root = make_node () in
  List.iter
    (fun (s : Telemetry.span) -> add_span root s)
    summary.Telemetry.roots;
  Buffer.add_string b
    (Printf.sprintf "  %-40s %6s %9s %9s\n" "span (all tracks)" "calls" "total s" "self s");
  List.iter (fun (n, c) -> render_node b ~depth:0 n c) (ordered_children root);
  (match summary.Telemetry.counters with
  | [] -> ()
  | counters ->
    Buffer.add_string b "counters\n";
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-40s %12d\n" name v))
      counters);
  (match gauge_rows summary with
  | [] -> ()
  | rows ->
    Buffer.add_string b
      (Printf.sprintf "  %-40s %6s %9s %9s %9s\n" "gauge" "n" "min" "mean" "max");
    List.iter
      (fun (name, (n, lo, hi, sum)) ->
        Buffer.add_string b
          (Printf.sprintf "  %-40s %6d %9.1f %9.1f %9.1f\n" name n lo
             (sum /. float_of_int n)
             hi))
      rows);
  hist_rows b ~header:"histogram (values)" summary.Telemetry.hists;
  hist_rows b ~header:"histogram (span durations, s)" summary.Telemetry.span_hists;
  Buffer.contents b
