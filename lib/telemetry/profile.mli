(** Human-readable profile report.

    Renders a {!Telemetry.summary} as: a coverage line (what fraction
    of the run's wall time the main track's root spans account for), a
    span tree aggregated by name path — calls, total wall seconds and
    self seconds (total minus children) per row, heaviest first — the
    merged counter table, and per-gauge min/mean/max digests.

    Spans from all tracks aggregate into one tree, so a section fanned
    over [N] domains reports the {e sum} of the domains' busy time
    (its total can legitimately exceed wall time); the coverage line
    uses the main track only, where the CLI's root span nests the whole
    command. Deterministic: equal summaries render to equal bytes. *)

val render : ?title:string -> Telemetry.summary -> string

val coverage : Telemetry.summary -> float
(** Percentage of [summary.elapsed] covered by track-0 root spans. *)
