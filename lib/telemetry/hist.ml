(* Log-bucketed histogram with fixed, implementation-independent bucket
   boundaries. A sample v = m * 2^e (frexp, m in [0.5,1)) lands in one
   of 8 linear sub-buckets per octave: relative bucket width 1/16 of
   the octave base, i.e. quantile estimates carry at most ~12.5%
   relative error — the HDR-histogram trade, with the boundaries fixed
   forever by the floating-point format rather than by configuration.

   Everything stored is integral (bucket counts, an Int64
   millionths-quantized sum) or an order statistic (min/max), so
   [merge] is associative and commutative and a fold over forked
   per-domain histograms yields bit-identical state regardless of fork
   or join order — the property test in test_hist.ml pins this. *)

(* Octave range: e_min covers sub-nanosecond latencies (2^-30 ~ 1e-9),
   e_max covers ~8.6e9 (2^33) — beyond that samples land in the
   overflow bucket and quantiles fall back to the tracked max. *)
let e_min = -30
let e_max = 33
let subs = 8
let n_buckets = (e_max - e_min + 1) * subs

type t = {
  counts : int array;  (* positive finite samples, by log bucket *)
  mutable zero : int;  (* samples <= 0 *)
  mutable overflow : int;  (* samples >= 2^(e_max+1) *)
  mutable skipped : int;  (* non-finite samples (NaN, infinities) *)
  mutable total : int;  (* zero + bucketed + overflow *)
  mutable sum_q : int64;  (* sum quantized to millionths *)
  mutable minv : float;  (* +inf when empty *)
  mutable maxv : float;  (* -inf when empty *)
}

let create () =
  {
    counts = Array.make n_buckets 0;
    zero = 0;
    overflow = 0;
    skipped = 0;
    total = 0;
    sum_q = 0L;
    minv = Float.infinity;
    maxv = Float.neg_infinity;
  }

let copy h =
  {
    counts = Array.copy h.counts;
    zero = h.zero;
    overflow = h.overflow;
    skipped = h.skipped;
    total = h.total;
    sum_q = h.sum_q;
    minv = h.minv;
    maxv = h.maxv;
  }

let count h = h.total
let skipped h = h.skipped
let is_empty h = h.total = 0

(* Quantize to millionths before summing: Int64 addition is associative
   where float addition is not, so the merged sum cannot depend on the
   schedule that filled the forked buffers. *)
let quantize v = Int64.of_float (Float.round (v *. 1e6))
let sum h = Int64.to_float h.sum_q /. 1e6
let min_value h = if h.total = 0 then 0. else h.minv
let max_value h = if h.total = 0 then 0. else h.maxv

let bucket_index v =
  let m, e = Float.frexp v in
  if e < e_min then 0
  else if e > e_max then -1 (* overflow *)
  else ((e - e_min) * subs) + int_of_float ((m -. 0.5) *. 16.)

(* Upper boundary of bucket [i]: exact in binary floating point, so the
   reported quantile edges are stable across platforms. *)
let bucket_upper i =
  let e = e_min + (i / subs) and sub = i mod subs in
  Float.ldexp (0.5 +. (float_of_int (sub + 1) /. 16.)) e

let add h v =
  if not (Float.is_finite v) then h.skipped <- h.skipped + 1
  else begin
    h.total <- h.total + 1;
    h.sum_q <- Int64.add h.sum_q (quantize v);
    if v < h.minv then h.minv <- v;
    if v > h.maxv then h.maxv <- v;
    if v <= 0. then h.zero <- h.zero + 1
    else
      match bucket_index v with
      | -1 -> h.overflow <- h.overflow + 1
      | i -> h.counts.(i) <- h.counts.(i) + 1
  end

let merge_into ~into src =
  for i = 0 to n_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.zero <- into.zero + src.zero;
  into.overflow <- into.overflow + src.overflow;
  into.skipped <- into.skipped + src.skipped;
  into.total <- into.total + src.total;
  into.sum_q <- Int64.add into.sum_q src.sum_q;
  if src.minv < into.minv then into.minv <- src.minv;
  if src.maxv > into.maxv then into.maxv <- src.maxv

let merge a b =
  let h = copy a in
  merge_into ~into:h b;
  h

let equal a b =
  Array.length a.counts = Array.length b.counts
  && (let same = ref true in
      for i = 0 to n_buckets - 1 do
        if a.counts.(i) <> b.counts.(i) then same := false
      done;
      !same)
  && a.zero = b.zero && a.overflow = b.overflow && a.skipped = b.skipped
  && a.total = b.total
  && Int64.equal a.sum_q b.sum_q
  && Int64.equal (Int64.bits_of_float a.minv) (Int64.bits_of_float b.minv)
  && Int64.equal (Int64.bits_of_float a.maxv) (Int64.bits_of_float b.maxv)

(* Quantile by cumulative bucket walk; the answer is a bucket upper
   boundary (or the exact tracked extremes), never an interpolation, so
   it is a pure function of the integer bucket state. *)
let quantile h q =
  if h.total = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.total)) in
      Int.max 1 (Int.min h.total r)
    in
    if rank <= h.zero then 0.
    else begin
      let cum = ref h.zero in
      let result = ref h.maxv in
      (try
         for i = 0 to n_buckets - 1 do
           cum := !cum + h.counts.(i);
           if !cum >= rank then begin
             result := Float.min (bucket_upper i) h.maxv;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
  end

type digest = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_p50 : float;
  d_p90 : float;
  d_p99 : float;
  d_p999 : float;
}

let digest h =
  {
    d_count = h.total;
    d_sum = sum h;
    d_min = min_value h;
    d_max = max_value h;
    d_p50 = quantile h 0.5;
    d_p90 = quantile h 0.9;
    d_p99 = quantile h 0.99;
    d_p999 = quantile h 0.999;
  }

(* Sparse non-empty buckets in ascending boundary order. The zero
   bucket reports boundary 0., the overflow bucket +inf. *)
let buckets h =
  let acc = ref [] in
  if h.overflow > 0 then acc := (Float.infinity, h.overflow) :: !acc;
  for i = n_buckets - 1 downto 0 do
    if h.counts.(i) > 0 then acc := (bucket_upper i, h.counts.(i)) :: !acc
  done;
  if h.zero > 0 then acc := (0., h.zero) :: !acc;
  !acc

(* Cumulative (le, count) pairs over the non-empty buckets, ending with
   the (+inf, total) bucket OpenMetrics requires. *)
let cumulative h =
  let cum = ref 0 in
  let steps =
    List.filter_map
      (fun (upper, n) ->
        cum := !cum + n;
        if Float.is_finite upper then Some (upper, !cum) else None)
      (buckets h)
  in
  steps @ [ (Float.infinity, h.total) ]

(* ---- codec ------------------------------------------------------------ *)

(* One-line text codec for snapshot/resume: hex floats and decimal
   integers only, so encode/decode round-trips bit-exactly. *)
let encode h =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "h1 %d %d %d %d %Ld %h %h" h.total h.zero h.overflow
       h.skipped h.sum_q h.minv h.maxv);
  for i = 0 to n_buckets - 1 do
    if h.counts.(i) > 0 then Buffer.add_string b (Printf.sprintf " %d:%d" i h.counts.(i))
  done;
  Buffer.contents b

let decode line =
  let ( let* ) o f = Option.bind o f in
  match String.split_on_char ' ' (String.trim line) with
  | "h1" :: total :: zero :: overflow :: skipped :: sum_q :: minv :: maxv :: pairs ->
    let* total = int_of_string_opt total in
    let* zero = int_of_string_opt zero in
    let* overflow = int_of_string_opt overflow in
    let* skipped = int_of_string_opt skipped in
    let* sum_q = Int64.of_string_opt sum_q in
    let* minv = float_of_string_opt minv in
    let* maxv = float_of_string_opt maxv in
    let h = create () in
    h.total <- total;
    h.zero <- zero;
    h.overflow <- overflow;
    h.skipped <- skipped;
    h.sum_q <- sum_q;
    h.minv <- minv;
    h.maxv <- maxv;
    let ok =
      List.for_all
        (fun pair ->
          match String.index_opt pair ':' with
          | None -> false
          | Some colon -> (
            let idx = String.sub pair 0 colon in
            let n = String.sub pair (colon + 1) (String.length pair - colon - 1) in
            match (int_of_string_opt idx, int_of_string_opt n) with
            | Some i, Some n when i >= 0 && i < n_buckets && n > 0 ->
              h.counts.(i) <- n;
              true
            | _ -> false))
        pairs
    in
    if ok then Some h else None
  | _ -> None
