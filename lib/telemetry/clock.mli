(** The wall clock, quarantined.

    This is the only module in [lib/] (or anywhere outside it) that may
    read the system clock: the [wall-clock] lint rule allowlists exactly
    this file, so every timing in the tree — telemetry span timestamps,
    bench section durations — is auditable as a call to {!now_s}.

    Clock readings may only ever {e describe} a computation (spans,
    profiles, bench output); feeding one into a simulation result would
    break the determinism contract, which is why the allowlist is this
    narrow. *)

val now_s : unit -> float
(** Seconds since the Unix epoch, as [Unix.gettimeofday]. Telemetry
    stores timestamps relative to a collector's epoch, so only
    differences of readings are ever reported. *)
