module Det_tbl = Psn_det.Det_tbl

type value = Int of int | Float of float | Str of string

type event =
  | Begin of { name : string; args : (string * value) list; ts : float }
  | End of { ts : float }
  | Sample of { name : string; ts : float; value : float }

(* One track's recording. Events are consed newest-first and reversed
   once at [close]; a buffer is only ever touched by the one domain
   that owns its sink, so no synchronisation is needed — the caller's
   [Domain.join] (before {!join}) publishes the writes. *)
type buffer = {
  track : int;
  mutable events : event list;
  counters : (string, int) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

type collector = {
  clock : unit -> float;
  epoch : float;
  main : buffer;
  mutable next_track : int;
  mutable joined : buffer list;  (* child tracks, reverse join order *)
}

type sink = Null | Active of { c : collector; buf : buffer }

module Sink = struct
  type t = sink

  let null = Null
  let is_null = function Null -> true | Active _ -> false
end

let make_buffer track =
  { track; events = []; counters = Hashtbl.create 16; hists = Hashtbl.create 8 }

let create ?(clock = Clock.now_s) () =
  { clock; epoch = clock (); main = make_buffer 0; next_track = 1; joined = [] }

let sink c = Active { c; buf = c.main }

let now c = c.clock () -. c.epoch

(* ---- recording -------------------------------------------------------- *)

let begin_span t ?(args = []) name =
  match t with
  | Null -> ()
  | Active { c; buf } -> buf.events <- Begin { name; args; ts = now c } :: buf.events

let end_span t =
  match t with
  | Null -> ()
  | Active { c; buf } -> buf.events <- End { ts = now c } :: buf.events

let with_span t ?args name f =
  match t with
  | Null -> f ()
  | Active _ ->
    begin_span t ?args name;
    Fun.protect ~finally:(fun () -> end_span t) f

let count t name n =
  match t with
  | Null -> ()
  | Active { buf; _ } ->
    let prev = Option.value ~default:0 (Hashtbl.find_opt buf.counters name) in
    Hashtbl.replace buf.counters name (prev + n)

let gauge t name value =
  match t with
  | Null -> ()
  | Active { c; buf } -> buf.events <- Sample { name; ts = now c; value } :: buf.events

let hist t name value =
  match t with
  | Null -> ()
  | Active { buf; _ } ->
    let h =
      match Hashtbl.find_opt buf.hists name with
      | Some h -> h
      | None ->
        let h = Hist.create () in
        Hashtbl.replace buf.hists name h;
        h
    in
    Hist.add h value

(* ---- parallel fan-out ------------------------------------------------- *)

let fork t n =
  if n < 0 then invalid_arg "Telemetry.fork: negative child count";
  match t with
  | Null -> Array.make n Null
  | Active { c; _ } ->
    let base = c.next_track in
    c.next_track <- base + n;
    Array.init n (fun i -> Active { c; buf = make_buffer (base + i) })

let join t children =
  match t with
  | Null -> ()
  | Active { c; _ } ->
    Array.iter
      (function
        | Null -> ()
        | Active { buf; _ } -> c.joined <- buf :: c.joined)
      children

(* ---- summarising ------------------------------------------------------ *)

type span = {
  s_name : string;
  s_args : (string * value) list;
  s_track : int;
  s_start : float;
  s_duration : float;
  s_children : span list;
}

type sample = { g_name : string; g_track : int; g_ts : float; g_value : float }

type summary = {
  roots : span list;
  counters : (string * int) list;
  samples : sample list;
  hists : (string * Hist.t) list;
  span_hists : (string * Hist.t) list;
  elapsed : float;
  dropped_ends : int;
}

(* Rebuild one track's span forest from its chronological event list.
   An [End] with no open span is dropped (and counted); a [Begin] still
   open at [elapsed] is closed there, so a crashed or abandoned span
   still shows the time it covered. *)
let forest_of ~elapsed buf =
  let dropped = ref 0 in
  let samples = ref [] in
  (* Stack frames: (name, args, start, reversed children). *)
  let stack = ref [] in
  let roots = ref [] in
  let close_frame (name, args, ts, children) ~until =
    {
      s_name = name;
      s_args = args;
      s_track = buf.track;
      s_start = ts;
      s_duration = until -. ts;
      s_children = List.rev children;
    }
  in
  let push span =
    match !stack with
    | [] -> roots := span :: !roots
    | (n, a, t, children) :: rest -> stack := (n, a, t, span :: children) :: rest
  in
  List.iter
    (fun ev ->
      match ev with
      | Begin { name; args; ts } -> stack := (name, args, ts, []) :: !stack
      | End { ts } -> (
        match !stack with
        | [] -> incr dropped
        | frame :: rest ->
          stack := rest;
          push (close_frame frame ~until:ts))
      | Sample { name; ts; value } ->
        samples := { g_name = name; g_track = buf.track; g_ts = ts; g_value = value } :: !samples)
    (List.rev buf.events);
  let rec drain () =
    match !stack with
    | [] -> ()
    | frame :: rest ->
      stack := rest;
      push (close_frame frame ~until:elapsed);
      drain ()
  in
  drain ();
  (List.rev !roots, List.rev !samples, !dropped)

let close c =
  let elapsed = now c in
  let buffers = c.main :: List.rev c.joined in
  let buffers =
    List.sort (fun b1 b2 -> Int.compare b1.track b2.track) buffers
  in
  let counters = Hashtbl.create 16 in
  List.iter
    (fun (buf : buffer) ->
      Det_tbl.iter ~cmp:String.compare
        (fun name n ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt counters name) in
          Hashtbl.replace counters name (prev + n))
        buf.counters)
    buffers;
  let hists = Hashtbl.create 8 in
  let hist_into name v =
    match Hashtbl.find_opt hists name with
    | Some h -> Hist.merge_into ~into:h v
    | None -> Hashtbl.replace hists name (Hist.copy v)
  in
  List.iter
    (fun (buf : buffer) ->
      Det_tbl.iter ~cmp:String.compare (fun name h -> hist_into name h) buf.hists)
    buffers;
  let per_track = List.map (forest_of ~elapsed) buffers in
  let roots = List.concat_map (fun (roots, _, _) -> roots) per_track in
  (* Wall-time distributions derived from span durations: one histogram
     per span name, merged across tracks. Bucket-sum merging makes the
     result independent of track order; the durations themselves are
     clock readings, so these stay in the time-quarantined half of the
     summary ([span_hists], never compared across schedules). *)
  let span_hists = Hashtbl.create 8 in
  let rec record_span (s : span) =
    let h =
      match Hashtbl.find_opt span_hists s.s_name with
      | Some h -> h
      | None ->
        let h = Hist.create () in
        Hashtbl.replace span_hists s.s_name h;
        h
    in
    Hist.add h s.s_duration;
    List.iter record_span s.s_children
  in
  List.iter record_span roots;
  {
    roots;
    counters = Det_tbl.bindings ~cmp:String.compare counters;
    samples = List.concat_map (fun (_, samples, _) -> samples) per_track;
    hists = Det_tbl.bindings ~cmp:String.compare hists;
    span_hists = Det_tbl.bindings ~cmp:String.compare span_hists;
    elapsed;
    dropped_ends = List.fold_left (fun acc (_, _, d) -> acc + d) 0 per_track;
  }

(* ---- rendering helpers ------------------------------------------------ *)

let string_of_value = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Str s -> s
