(** Deterministic-by-construction telemetry: spans, counters, gauges.

    Instrumented code receives a {!sink} and records into it; a sink is
    either {!Sink.null} — every recording call is a single pattern
    match, so a disabled build path costs near nothing — or a live
    handle into a {!collector}. Telemetry {e describes} a run and never
    feeds back into it: no recording function returns data to the
    instrumented code, so with any sink the computed results are
    bit-identical to an uninstrumented run (the determinism contract;
    only the wall-clock {e timestamps} inside the telemetry output vary
    between runs).

    Concurrency model: every sink wraps one per-domain buffer that only
    its owning domain may touch. A parallel section {!fork}s one child
    sink per worker before spawning, hands child [i] to worker [i], and
    {!join}s them (from the owning domain, after [Domain.join]) — so
    recording is lock-free, and merged output depends only on the fork
    order, never on scheduling. Counters merge by summation
    (monotonically); spans and gauge samples keep their track.

    Timestamps come from {!Clock.now_s} relative to the collector's
    epoch; tests inject a fake [?clock] to make output byte-stable. *)

type value = Int of int | Float of float | Str of string
(** Span argument values (rendered into Chrome trace [args]). *)

type collector
(** Owns the clock epoch and all buffers recorded under it. *)

type sink
(** A recording handle: {!Sink.null} or one track of a collector. *)

module Sink : sig
  type t = sink

  val null : t
  (** The disabled sink: all recording calls are no-ops. *)

  val is_null : t -> bool
end

val create : ?clock:(unit -> float) -> unit -> collector
(** Fresh collector; the epoch is one [clock] reading (default
    {!Clock.now_s}), so all recorded timestamps are relative offsets. *)

val sink : collector -> sink
(** The collector's main-track (track 0) sink, owned by the creating
    domain. *)

(** {1 Recording} *)

val with_span : sink -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f ()] inside a span: begin before, end
    after — also on exception, so the tree stays balanced. On the null
    sink this is exactly [f ()]. *)

val begin_span : sink -> ?args:(string * value) list -> string -> unit
(** Open a span by hand (prefer {!with_span}). A span still open when
    the collector {!close}s is ended there, so its time is not lost. *)

val end_span : sink -> unit
(** Close the innermost open span. An unbalanced [end_span] (nothing
    open on this track) is dropped and counted in
    [summary.dropped_ends], never an error. *)

val count : sink -> string -> int -> unit
(** [count t name n] adds [n] to the named counter on this track;
    {!close} merges tracks by summation. *)

val gauge : sink -> string -> float -> unit
(** Record one timestamped sample of a named quantity (queue depth,
    cache size, ...) on this track. *)

val hist : sink -> string -> float -> unit
(** [hist t name v] records [v] into the named {!Hist.t} on this track.
    {!close} merges tracks by bucket-wise summation, so the merged
    histogram — and every digest derived from it — is independent of
    fork and join order. Record {e simulated} quantities here (delays,
    batch sizes, path counts); wall-time distributions come for free
    from span durations via [summary.span_hists]. *)

(** {1 Parallel fan-out} *)

val fork : sink -> int -> sink array
(** [fork t n] allocates [n] child sinks on fresh tracks (in index
    order, so track ids are deterministic). Call from the domain owning
    [t], before spawning workers; forking the null sink yields null
    children. Raises [Invalid_argument] on a negative count. *)

val join : sink -> sink array -> unit
(** Merge forked children back into the collector. Must run on the
    domain owning [t] {e after} the workers have been joined —
    [Domain.join] is what publishes their buffer writes. Children are
    merged in array order; joining into the null sink is a no-op. *)

(** {1 Results} *)

type span = {
  s_name : string;
  s_args : (string * value) list;
  s_track : int;
  s_start : float;  (** Seconds since the collector epoch. *)
  s_duration : float;
  s_children : span list;  (** In start order. *)
}

type sample = { g_name : string; g_track : int; g_ts : float; g_value : float }

type summary = {
  roots : span list;  (** Top-level spans, grouped by ascending track. *)
  counters : (string * int) list;  (** Merged across tracks, name-sorted. *)
  samples : sample list;  (** Gauge samples, per track in time order. *)
  hists : (string * Hist.t) list;
      (** Value histograms from {!hist}, merged across tracks,
          name-sorted. Schedule-independent: safe to golden and to diff
          across [--jobs]×[--chunk]. *)
  span_hists : (string * Hist.t) list;
      (** Wall-time histograms of span durations, one per span name,
          name-sorted. Time-quarantined: never byte-stable across
          runs. *)
  elapsed : float;  (** Clock at close minus epoch. *)
  dropped_ends : int;  (** Unbalanced {!end_span} calls discarded. *)
}

val close : collector -> summary
(** Read the clock once more, close any still-open spans at that time,
    and merge every joined track. Call after all forked children are
    joined; buffers are not consumed (closing twice re-summarises). *)

val string_of_value : value -> string
