(** Chrome trace-event JSON exporter.

    Serialises a {!Telemetry.summary} into the trace-event "JSON Array
    Format" understood by [chrome://tracing] and Perfetto
    ([ui.perfetto.dev]): spans become complete ("X") events, gauge
    samples become counter ("C") events, and each telemetry track gets
    a thread-name metadata row so domain-parallel sections render as
    one horizontal track per worker domain.

    The encoding is canonical — fixed field order, integer microsecond
    timestamps, deterministic event order — so two summaries with equal
    contents serialise to equal bytes (the golden test relies on it). *)

val to_json : Telemetry.summary -> string
(** The complete JSON document, ending in a newline. *)

val save : Telemetry.summary -> path:string -> unit
(** {!to_json} written atomically (temp file + rename). Raises
    [Sys_error] if the path is unwritable. *)
