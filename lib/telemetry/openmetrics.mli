(** Labeled metrics registry with OpenMetrics/Prometheus text
    exposition.

    A registry collects counter, gauge and histogram families; each
    registration appends one labeled sample (or, for histograms, the
    cumulative bucket/sum/count expansion of a {!Hist.t}). {!render}
    emits families in name order (via Det_tbl) with samples in
    registration order, so the exposition is a deterministic function
    of registry contents.

    Families registered with [~time_based:true] hold wall-time-derived
    values (span-duration histograms, elapsed seconds). They are
    skipped by [render ~values_only:true] — the surface used by the
    serve [metrics] protocol verb and the CI jobs-diff, which must be
    byte-identical across [--jobs]×[--chunk] schedules. *)

type t

val create : unit -> t

val counter :
  t -> ?help:string -> ?time_based:bool -> ?labels:(string * string) list -> string -> int -> unit
(** Append one sample to a counter family (rendered as [name_total]).
    Metric and label names are sanitized to the OpenMetrics charset
    (dots become underscores). *)

val gauge :
  t -> ?help:string -> ?time_based:bool -> ?labels:(string * string) list -> string -> float -> unit

val histogram :
  t -> ?help:string -> ?time_based:bool -> ?labels:(string * string) list -> string -> Hist.t -> unit
(** Expand a histogram into cumulative [_bucket{le="..."}] samples plus
    [_sum] and [_count]. *)

val render : ?values_only:bool -> t -> string
(** The OpenMetrics text exposition, terminated by [# EOF].
    [~values_only:true] omits every [time_based] family. *)

val equal_values : t -> t -> bool
(** Byte equality of the two registries' values-only expositions — the
    bit-identity predicate pinned by the jobs×chunk grid test. *)

val of_summary : Telemetry.summary -> t
(** Registry view of a closed collector: counters and value histograms
    as value families ([psn_] prefix), span-duration histograms
    ([psn_span_*_seconds]) and elapsed wall time as [time_based]
    families. Backs [--metrics FILE] on batch sweeps. *)

val validate : string -> (unit, string) result
(** Tiny format checker for the dialect {!render} emits: sample lines
    must parse, reference a family declared by an earlier [# TYPE]
    (with a suffix legal for its kind), and the text must end with
    exactly one [# EOF]. Used by [psn metrics check] in CI. *)
