(** Deterministic log-bucketed histograms (HDR-style).

    Bucket boundaries are fixed by the binary floating-point format: a
    positive sample [v = m * 2^e] (with [m] in [[0.5,1)]) lands in one
    of 8 linear sub-buckets of its octave, giving at most ~12.5%
    relative quantile error over the range [2^-30 .. 2^34). Samples
    [<= 0] go to a dedicated zero bucket, larger samples to an overflow
    bucket, and non-finite samples are skipped (and counted).

    All merged state is integral — bucket counts and a sum quantized to
    Int64 millionths — so {!merge} is associative and commutative:
    folding forked per-domain histograms in {e any} order yields
    bit-identical state, the property that keeps digests
    schedule-independent under [--jobs]×[--chunk]. *)

type t

val create : unit -> t
val copy : t -> t

val add : t -> float -> unit
(** Record one sample. Non-finite samples are not bucketed or summed,
    only counted in {!skipped}. *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into] by bucket-wise addition; associative and
    commutative together with {!merge}. *)

val merge : t -> t -> t
(** Pure merge of two histograms. *)

val count : t -> int
(** Recorded (finite) samples. *)

val skipped : t -> int
(** Non-finite samples dropped by {!add}. *)

val is_empty : t -> bool

val sum : t -> float
(** Sum of samples, via the Int64 millionths accumulator — so equal
    merged bucket state implies an equal sum, bit for bit. *)

val min_value : t -> float
(** Exact smallest sample; [0.] when empty. *)

val max_value : t -> float
(** Exact largest sample; [0.] when empty. *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [[0,1]]: the upper boundary of the bucket
    holding the rank-⌈q·count⌉ sample (clamped to {!max_value}), [0.]
    when empty. A pure function of the integer bucket state. *)

type digest = {
  d_count : int;
  d_sum : float;
  d_min : float;
  d_max : float;
  d_p50 : float;
  d_p90 : float;
  d_p99 : float;
  d_p999 : float;
}

val digest : t -> digest

val equal : t -> t -> bool
(** Bit-exact state equality (bucket counts, quantized sum, extremes). *)

val buckets : t -> (float * int) list
(** Sparse non-empty buckets as [(upper_boundary, count)] in ascending
    order; the zero bucket reports boundary [0.], overflow [+inf]. *)

val cumulative : t -> (float * int) list
(** OpenMetrics-shaped cumulative [(le, count)] pairs over non-empty
    buckets, always ending with [(+inf, count h)]. *)

val encode : t -> string
(** One-line text codec (decimal integers + hex floats); round-trips
    bit-exactly through {!decode} for snapshot/resume. *)

val decode : string -> t option
