module Det_tbl = Psn_det.Det_tbl

(* A metric family: one name, one type, many labeled samples. Samples
   keep registration order inside a family; families render in name
   order (Det_tbl), so the exposition is a function of registry
   contents only. [time_based] quarantines wall-time-derived families:
   the [?values_only] rendering used by the serve [metrics] verb and
   the CI jobs-diff skips them, keeping that surface bit-identical
   across schedules. *)

type kind = Counter | Gauge | Histogram

type sample = { suffix : string; labels : (string * string) list; value : string }

type family = {
  kind : kind;
  help : string;
  time_based : bool;
  mutable samples : sample list;  (* newest first *)
}

type t = { families : (string, family) Hashtbl.t }

let create () = { families = Hashtbl.create 16 }

(* OpenMetrics names are [a-zA-Z_:][a-zA-Z0-9_:]*; our internal metric
   names use dots ("serve.delivery_delay_s"), so map every unsupported
   character to '_' at registration. *)
let sanitize name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

let family t ~kind ~help ~time_based name =
  let name = sanitize name in
  match Hashtbl.find_opt t.families name with
  | Some f -> (name, f)
  | None ->
    let f = { kind; help; time_based; samples = [] } in
    Hashtbl.replace t.families name f;
    (name, f)

(* Decimal float rendering: shortest round-trip representation keeps
   the exposition readable while still distinguishing any two distinct
   values — bit-identical inputs render identically, and nothing else
   matters for the jobs-diff. *)
let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let le_label v =
  if Float.is_finite v then render_float v else if v > 0. then "+Inf" else "-Inf"

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let push f sample = f.samples <- sample :: f.samples

let counter t ?(help = "") ?(time_based = false) ?(labels = []) name v =
  let _, f = family t ~kind:Counter ~help ~time_based name in
  push f { suffix = "_total"; labels; value = string_of_int v }

let gauge t ?(help = "") ?(time_based = false) ?(labels = []) name v =
  let _, f = family t ~kind:Gauge ~help ~time_based name in
  push f { suffix = ""; labels; value = render_float v }

let histogram t ?(help = "") ?(time_based = false) ?(labels = []) name h =
  let _, f = family t ~kind:Histogram ~help ~time_based name in
  List.iter
    (fun (le, cum) ->
      push f
        { suffix = "_bucket"; labels = labels @ [ ("le", le_label le) ]; value = string_of_int cum })
    (Hist.cumulative h);
  push f { suffix = "_sum"; labels; value = render_float (Hist.sum h) };
  push f { suffix = "_count"; labels; value = string_of_int (Hist.count h) }

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

let render ?(values_only = false) t =
  let b = Buffer.create 1024 in
  Det_tbl.iter ~cmp:String.compare
    (fun name f ->
      if not (values_only && f.time_based) then begin
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name (kind_name f.kind));
        if String.length f.help > 0 then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name f.help);
        List.iter
          (fun s ->
            Buffer.add_string b name;
            Buffer.add_string b s.suffix;
            (match s.labels with
            | [] -> ()
            | labels ->
              Buffer.add_char b '{';
              List.iteri
                (fun i (k, v) ->
                  if i > 0 then Buffer.add_char b ',';
                  Buffer.add_string b (Printf.sprintf "%s=%S" (sanitize k) (escape_label v)))
                labels;
              Buffer.add_char b '}');
            Buffer.add_char b ' ';
            Buffer.add_string b s.value;
            Buffer.add_char b '\n')
          (List.rev f.samples)
      end)
    t.families;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let equal_values a b = String.equal (render ~values_only:true a) (render ~values_only:true b)

(* Registry view of a closed telemetry summary: merged counters and
   value histograms as value families; span-duration histograms and
   elapsed wall time flagged [time_based], since their contents are
   clock readings. *)
let of_summary (s : Telemetry.summary) =
  let m = create () in
  List.iter
    (fun (name, v) -> counter m ~help:"Merged telemetry counter" ("psn_" ^ name) v)
    s.Telemetry.counters;
  List.iter
    (fun (name, h) ->
      histogram m ~help:"Value histogram (simulated quantity)" ("psn_" ^ name) h)
    s.Telemetry.hists;
  List.iter
    (fun (name, h) ->
      histogram m ~time_based:true ~help:"Span duration histogram (wall seconds)"
        ("psn_span_" ^ name ^ "_seconds") h)
    s.Telemetry.span_hists;
  gauge m ~time_based:true ~help:"Collector elapsed wall time" "psn_elapsed_seconds"
    s.Telemetry.elapsed;
  m

(* ---- format checker --------------------------------------------------- *)

(* Minimal validator for the exposition dialect we emit, used by
   [psn metrics check] in CI: every sample line must parse, reference a
   family declared by an earlier # TYPE (with a suffix legal for its
   kind), and the text must end with exactly one # EOF. *)

let is_name_char i c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | '0' .. '9' -> i > 0
  | _ -> false

let valid_name s =
  String.length s > 0
  && (let ok = ref true in
      String.iteri (fun i c -> if not (is_name_char i c) then ok := false) s;
      !ok)

let split_sample line =
  (* name[{labels}] value — labels may contain spaces inside quotes,
     so scan for the closing brace rather than splitting on spaces. *)
  match String.index_opt line '{' with
  | None -> (
    match String.index_opt line ' ' with
    | None -> None
    | Some sp ->
      Some
        ( String.sub line 0 sp,
          "",
          String.trim (String.sub line (sp + 1) (String.length line - sp - 1)) ))
  | Some lb -> (
    match String.rindex_opt line '}' with
    | None -> None
    | Some rb when rb < lb -> None
    | Some rb ->
      Some
        ( String.sub line 0 lb,
          String.sub line (lb + 1) (rb - lb - 1),
          String.trim (String.sub line (rb + 1) (String.length line - rb - 1)) ))

let strip_suffix ~kind name =
  let drop suffix =
    if String.length name > String.length suffix
       && String.equal suffix
            (String.sub name (String.length name - String.length suffix) (String.length suffix))
    then Some (String.sub name 0 (String.length name - String.length suffix))
    else None
  in
  match kind with
  | "counter" -> drop "_total"
  | "histogram" -> (
    match drop "_bucket" with
    | Some base -> Some base
    | None -> ( match drop "_sum" with Some base -> Some base | None -> drop "_count"))
  | _ -> Some name

let validate text =
  let lines = String.split_on_char '\n' text in
  let families = Hashtbl.create 16 in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec go i saw_eof = function
    | [] -> if saw_eof then Ok () else Error "missing terminating # EOF"
    | "" :: rest -> go (i + 1) saw_eof rest
    | line :: rest ->
      if saw_eof then err "line %d: content after # EOF" i
      else if Char.equal line.[0] '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "EOF" ] -> go (i + 1) true rest
        | "#" :: "TYPE" :: name :: [ kind ] ->
          if not (valid_name name) then err "line %d: bad family name %S" i name
          else if
            not (List.exists (String.equal kind) [ "counter"; "gauge"; "histogram" ])
          then err "line %d: unknown type %S" i kind
          else if Hashtbl.mem families name then err "line %d: duplicate # TYPE %s" i name
          else begin
            Hashtbl.replace families name kind;
            go (i + 1) saw_eof rest
          end
        | "#" :: "HELP" :: name :: _ ->
          if Hashtbl.mem families name then go (i + 1) saw_eof rest
          else err "line %d: # HELP before # TYPE for %s" i name
        | _ -> err "line %d: malformed comment %S" i line
      end
      else begin
        match split_sample line with
        | None -> err "line %d: malformed sample %S" i line
        | Some (name, _, value) ->
          if not (valid_name name) then err "line %d: bad metric name %S" i name
          else if Option.is_none (float_of_string_opt value)
                  && not (String.equal value "+Inf")
          then err "line %d: unparseable value %S" i value
          else begin
            let known =
              Det_tbl.fold ~cmp:String.compare
                (fun fam kind acc ->
                  acc
                  ||
                  (* counter/histogram samples must carry a suffix legal
                     for their kind; a bare name only matches a gauge *)
                  match strip_suffix ~kind name with
                  | Some base -> String.equal base fam
                  | None -> false)
                families false
            in
            if known then go (i + 1) saw_eof rest
            else err "line %d: sample %S has no preceding # TYPE" i name
          end
      end
  in
  go 1 false lines
