(* The one module allowed to read the wall clock (see lint.toml): every
   other wall-clock read in the tree — telemetry timestamps, bench
   section timing — must flow through [now_s], so the determinism
   contract's "results never depend on when the process ran" stays
   auditable as a one-line allowlist. *)

let now_s () = Unix.gettimeofday ()
