(* Chrome trace-event JSON (the "JSON Array Format" that
   chrome://tracing and Perfetto load): one complete ("X") event per
   span, one counter ("C") event per gauge sample, one metadata ("M")
   thread-name row per track so domains show as separate tracks.

   Output is canonical: fixed field order, integer microseconds,
   events in (track, recording) order — so with a deterministic clock
   the bytes are stable, which is what the golden test pins. *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_value b = function
  | Telemetry.Int i -> Buffer.add_string b (string_of_int i)
  | Telemetry.Float f -> Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Telemetry.Str s -> buf_add_json_string b s

let micros s = int_of_float ((s *. 1e6) +. 0.5)

let add_event b ~first fields =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b "  {";
  List.iteri
    (fun i field ->
      if i > 0 then Buffer.add_char b ',';
      field b)
    fields;
  Buffer.add_char b '}'

let str_field key v b =
  buf_add_json_string b key;
  Buffer.add_char b ':';
  buf_add_json_string b v

let int_field key v b =
  buf_add_json_string b key;
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int v)

let args_field args b =
  buf_add_json_string b "args";
  Buffer.add_char b ':';
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_value b v)
    args;
  Buffer.add_char b '}'

let track_name = function 0 -> "main" | t -> Printf.sprintf "worker %d" t

let rec add_span b ~first (s : Telemetry.span) =
  add_event b ~first
    [
      str_field "name" s.Telemetry.s_name;
      str_field "cat" "psn";
      str_field "ph" "X";
      int_field "ts" (micros s.Telemetry.s_start);
      int_field "dur" (micros s.Telemetry.s_duration);
      int_field "pid" 1;
      int_field "tid" s.Telemetry.s_track;
      args_field s.Telemetry.s_args;
    ];
  List.iter (add_span b ~first) s.Telemetry.s_children

let tracks_of (summary : Telemetry.summary) =
  let tracks = Hashtbl.create 8 in
  List.iter (fun (s : Telemetry.span) -> Hashtbl.replace tracks s.Telemetry.s_track ()) summary.Telemetry.roots;
  List.iter
    (fun (g : Telemetry.sample) -> Hashtbl.replace tracks g.Telemetry.g_track ())
    summary.Telemetry.samples;
  Psn_det.Det_tbl.keys ~cmp:Int.compare tracks

let to_json (summary : Telemetry.summary) =
  let b = Buffer.create 4096 in
  let first = ref true in
  Buffer.add_string b "{\"traceEvents\":[\n";
  add_event b ~first
    [
      str_field "name" "process_name";
      str_field "ph" "M";
      int_field "pid" 1;
      int_field "tid" 0;
      args_field [ ("name", Telemetry.Str "psn") ];
    ];
  List.iter
    (fun track ->
      add_event b ~first
        [
          str_field "name" "thread_name";
          str_field "ph" "M";
          int_field "pid" 1;
          int_field "tid" track;
          args_field [ ("name", Telemetry.Str (track_name track)) ];
        ])
    (tracks_of summary);
  List.iter (add_span b ~first) summary.Telemetry.roots;
  List.iter
    (fun (g : Telemetry.sample) ->
      add_event b ~first
        [
          str_field "name" g.Telemetry.g_name;
          str_field "ph" "C";
          int_field "ts" (micros g.Telemetry.g_ts);
          int_field "pid" 1;
          int_field "tid" g.Telemetry.g_track;
          args_field [ ("value", Telemetry.Float g.Telemetry.g_value) ];
        ])
    summary.Telemetry.samples;
  (* Histogram digests as counter tracks: one "C" event per histogram
     at the close instant, its quantiles as parallel series. Value and
     span-duration histograms keep distinct name prefixes so the two
     determinism regimes stay visually separate in the viewer. *)
  let hist_counter prefix (name, h) =
    let d = Hist.digest h in
    add_event b ~first
      [
        str_field "name" (prefix ^ name);
        str_field "ph" "C";
        int_field "ts" (micros summary.Telemetry.elapsed);
        int_field "pid" 1;
        int_field "tid" 0;
        args_field
          [
            ("p50", Telemetry.Float d.Hist.d_p50);
            ("p90", Telemetry.Float d.Hist.d_p90);
            ("p99", Telemetry.Float d.Hist.d_p99);
            ("p999", Telemetry.Float d.Hist.d_p999);
          ];
      ]
  in
  List.iter (hist_counter "hist:") summary.Telemetry.hists;
  List.iter (hist_counter "span:") summary.Telemetry.span_hists;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let save summary ~path =
  let tmp = path ^ ".tmp" in
  let oc = Out_channel.open_bin tmp in
  Out_channel.output_string oc (to_json summary);
  Out_channel.close oc;
  Sys.rename tmp path
