let interpolate sorted q =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Int.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let check_q q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Quantile: q must be in [0, 1]"

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Quantile.quantile: empty sample";
  check_q q;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  interpolate sorted q

let quantiles_sorted sorted qs =
  if Array.length sorted = 0 then invalid_arg "Quantile.quantiles_sorted: empty sample";
  List.map
    (fun q ->
      check_q q;
      interpolate sorted q)
    qs

let median xs = quantile xs 0.5
let percentile xs p = quantile xs (float_of_int p /. 100.)
