type t = {
  lo : float;
  hi : float;
  counts : int array;
  underflow : int;
  overflow : int;
}

let create ~lo ~hi ~bins data =
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  if bins < 1 then invalid_arg "Histogram.create: bins must be >= 1";
  let counts = Array.make bins 0 in
  let underflow = ref 0 and overflow = ref 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Seq.iter
    (fun x ->
      if x < lo then incr underflow
      else if x >= hi then incr overflow
      else begin
        let i = Int.min (bins - 1) (int_of_float ((x -. lo) /. width)) in
        counts.(i) <- counts.(i) + 1
      end)
    data;
  { lo; hi; counts; underflow = !underflow; overflow = !overflow }

let counts t = Array.copy t.counts
let bins t = Array.length t.counts
let width t = (t.hi -. t.lo) /. float_of_int (bins t)

let bin_edges t =
  Array.init (bins t + 1) (fun i -> t.lo +. (float_of_int i *. width t))

let bin_center t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_center: bin out of range";
  t.lo +. ((float_of_int i +. 0.5) *. width t)

let underflow t = t.underflow
let overflow t = t.overflow

let total t = t.underflow + t.overflow + Array.fold_left ( + ) 0 t.counts

let densities t =
  let in_range = Array.fold_left ( + ) 0 t.counts in
  if in_range = 0 then Array.make (bins t) 0.
  else
    let norm = float_of_int in_range *. width t in
    Array.map (fun c -> float_of_int c /. norm) t.counts

let cumulative t =
  let acc = ref 0 in
  Array.map
    (fun c ->
      acc := !acc + c;
      !acc)
    t.counts
