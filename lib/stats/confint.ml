type level = C90 | C95 | C99

let z_of_level = function C90 -> 1.645 | C95 -> 1.960 | C99 -> 2.576

let halfwidth summary level =
  if Summary.count summary = 0 then invalid_arg "Confint: empty summary";
  if Summary.count summary < 2 then 0.
  else z_of_level level *. Summary.stddev summary /. Float.sqrt (float_of_int (Summary.count summary))

let of_summary summary level =
  let h = halfwidth summary level in
  let m = Summary.mean summary in
  (m -. h, m +. h)

let of_samples xs level = of_summary (Summary.of_array xs) level
