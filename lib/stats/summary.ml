type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations from the running mean *)
  mutable minv : float;
  mutable maxv : float;
  mutable sum : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; minv = Float.nan; maxv = Float.nan; sum = 0. }

let add t x =
  if not (Float.is_finite x) then invalid_arg "Summary.add: non-finite observation";
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  t.sum <- t.sum +. x;
  if t.n = 1 then begin
    t.minv <- x;
    t.maxv <- x
  end
  else begin
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x
  end

let add_seq t seq = Seq.iter (add t) seq
let count t = t.n
let mean t = if t.n = 0 then Float.nan else t.mean
let variance t = if t.n < 2 then Float.nan else t.m2 /. float_of_int (t.n - 1)
let stddev t = Float.sqrt (variance t)
let min t = t.minv
let max t = t.maxv
let total t = t.sum

let of_array arr =
  let t = create () in
  Array.iter (add t) arr;
  t

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
    {
      n;
      mean;
      m2;
      minv = Float.min a.minv b.minv;
      maxv = Float.max a.maxv b.maxv;
      sum = a.sum +. b.sum;
    }
  end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t) (stddev t) t.minv
    t.maxv
