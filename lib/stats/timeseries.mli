(** Binning timestamped events into a time series.

    Fig. 1 (total contacts per minute) and Fig. 11 (cumulative delivery
    times) are event streams binned on a regular grid. *)

type t
(** An immutable binned series. *)

val bin_events : t0:float -> t1:float -> bin:float -> float Seq.t -> t
(** [bin_events ~t0 ~t1 ~bin events] counts event timestamps into bins
    of width [bin] seconds covering [\[t0, t1)]. Events outside the
    window are dropped. Requires [t0 < t1] and [bin > 0]. *)

val counts : t -> int array
(** Per-bin event counts. *)

val times : t -> float array
(** Left edge of each bin (same length as {!counts}). *)

val cumulative : t -> (float * int) array
(** [(bin_right_edge, events so far)] — the Fig. 11 staircase. *)

val mean_rate : t -> float
(** Events per second over the whole window. *)

val stability : t -> float
(** Coefficient of variation (sd/mean) of the per-bin counts — the
    quantitative version of the paper's "visual inspection indicated
    that contact rates were relatively stable". Lower is more stable;
    [nan] for an empty series. *)
