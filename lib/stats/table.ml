type align = Left | Right

let pad align width cell =
  let gap = width - String.length cell in
  if gap <= 0 then cell
  else
    match align with
    | Left -> cell ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ cell

let render ?align ~header rows =
  let ncols = List.fold_left (fun acc row -> Int.max acc (List.length row)) (List.length header) rows in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let header = normalize header in
  let rows = List.map normalize rows in
  let aligns =
    match align with
    | None -> List.init ncols (fun _ -> Left)
    | Some a ->
      let len = List.length a in
      if len >= ncols then a else a @ List.init (ncols - len) (fun _ -> Left)
  in
  let widths = Array.make ncols 0 in
  let note row = List.iteri (fun i cell -> widths.(i) <- Int.max widths.(i) (String.length cell)) row in
  note header;
  List.iter note rows;
  let line row =
    List.mapi (fun i cell -> pad (List.nth aligns i) widths.(i) cell) row
    |> String.concat "  "
    (* Trailing spaces from padding the last column are just noise. *)
    |> fun s ->
    let len = ref (String.length s) in
    while !len > 0 && s.[!len - 1] = ' ' do
      decr len
    done;
    String.sub s 0 !len
  in
  let rule = Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  " in
  String.concat "\n" (line header :: rule :: List.map line rows)

let render_floats ?(precision = 4) ~header rows =
  let cells = List.map (List.map (Printf.sprintf "%.*g" precision)) rows in
  let aligns = List.init (List.length header) (fun _ -> Right) in
  render ~align:aligns ~header cells
