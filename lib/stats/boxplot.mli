(** Box-and-whisker summaries (Fig. 15).

    Tukey-style: box at the quartiles, whiskers at the most extreme
    observations within 1.5 IQR of the box, everything beyond flagged as
    outliers. *)

type t = {
  q1 : float;  (** 25th percentile. *)
  median : float;
  q3 : float;  (** 75th percentile. *)
  whisker_lo : float;  (** Lowest observation >= q1 - 1.5 IQR. *)
  whisker_hi : float;  (** Highest observation <= q3 + 1.5 IQR. *)
  outliers : float array;  (** Sorted observations beyond the whiskers. *)
  count : int;
}

val of_samples : float array -> t
(** Raises [Invalid_argument] on an empty sample. *)

val iqr : t -> float
(** Interquartile range [q3 - q1]. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering used by the bench harness, e.g.
    ["[0.82 |1.20 1.71 2.40| 4.52] (n=312, 7 outliers)"]. *)
