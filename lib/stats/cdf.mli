(** Empirical cumulative distribution functions.

    The paper reports most results as CDFs (Figs. 4, 7, 10). This module
    builds an ECDF from a sample and evaluates or tabulates it. *)

type t
(** An immutable ECDF. *)

val of_samples : float array -> t
(** Build from raw observations (any order, duplicates allowed). Raises
    [Invalid_argument] on an empty array. *)

val eval : t -> float -> float
(** [eval t x] is P[X <= x], a step function in [\[0, 1\]]. Binary
    search, O(log n). *)

val inverse : t -> float -> float
(** [inverse t q] is the [q]-quantile of the sample, [q] in [\[0, 1\]]. *)

val size : t -> int
(** Number of underlying observations. *)

val support : t -> float * float
(** Smallest and largest observation. *)

val points : t -> (float * float) list
(** The full staircase as [(x, P[X <= x])] pairs at each distinct
    observation, ascending — directly plottable. *)

val tabulate : t -> ?n:int -> unit -> (float * float) list
(** [tabulate t ~n ()] samples the CDF at [n] evenly spaced abscissae
    across the support (default 50) — the series printed by the bench
    harness. *)

val ks_distance : t -> t -> float
(** Two-sample Kolmogorov-Smirnov statistic: the maximum absolute gap
    between the two step functions. Used in tests to compare generated
    distributions against references. *)
