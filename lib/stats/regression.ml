type fit = { slope : float; intercept : float; r2 : float; n : int }

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = List.fold_left (fun a (x, _) -> a +. ((x -. mx) *. (x -. mx))) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0. points in
  let syy = List.fold_left (fun a (_, y) -> a +. ((y -. my) *. (y -. my))) 0. points in
  if Float.equal sxx 0. then invalid_arg "Regression.linear: zero variance in x";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if Float.equal syy 0. then Float.nan else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r2; n }

let exponential_rate points =
  let logged = List.filter_map (fun (x, y) -> if y > 0. then Some (x, Float.log y) else None) points in
  linear logged
