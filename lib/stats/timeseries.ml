type t = { t0 : float; bin : float; counts : int array }

let bin_events ~t0 ~t1 ~bin events =
  if not (t0 < t1) then invalid_arg "Timeseries.bin_events: t0 must be < t1";
  if not (bin > 0.) then invalid_arg "Timeseries.bin_events: bin must be positive";
  let nbins = int_of_float (Float.ceil ((t1 -. t0) /. bin)) in
  let counts = Array.make nbins 0 in
  Seq.iter
    (fun time ->
      if time >= t0 && time < t1 then begin
        let i = Int.min (nbins - 1) (int_of_float ((time -. t0) /. bin)) in
        counts.(i) <- counts.(i) + 1
      end)
    events;
  { t0; bin; counts }

let counts t = Array.copy t.counts
let times t = Array.init (Array.length t.counts) (fun i -> t.t0 +. (float_of_int i *. t.bin))

let cumulative t =
  let acc = ref 0 in
  Array.mapi
    (fun i c ->
      acc := !acc + c;
      (t.t0 +. (float_of_int (i + 1) *. t.bin), !acc))
    t.counts

let mean_rate t =
  let events = Array.fold_left ( + ) 0 t.counts in
  float_of_int events /. (float_of_int (Array.length t.counts) *. t.bin)

let stability t =
  if Array.length t.counts = 0 then Float.nan
  else begin
    let s = Summary.of_array (Array.map float_of_int t.counts) in
    let m = Summary.mean s in
    if Float.equal m 0. then Float.nan else Summary.stddev s /. m
  end
