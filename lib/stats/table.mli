(** Aligned plain-text tables.

    The bench harness prints every reproduced figure as rows; this keeps
    them readable without pulling in any rendering dependency. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays the table out with column widths fitted
    to content, a separator rule under the header, and two spaces
    between columns. Ragged rows are padded with empty cells. [align]
    defaults to [Left] for every column. *)

val render_floats :
  ?precision:int ->
  header:string list ->
  float list list ->
  string
(** Numeric convenience: formats every cell with [%.*g] (default
    precision 4) and right-aligns all columns. Callers print the
    rendered string themselves: library code never writes to stdout
    (see the determinism linter's [stdout-print] rule). *)
