(** Ordinary least squares on one predictor.

    Used to fit the exponential path-explosion growth: the paper's
    Fig. 6 shows path counts growing "approximately exponentially", so
    we regress log(cumulative paths) on time and report the rate. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** Coefficient of determination, [nan] for degenerate fits. *)
  n : int;
}

val linear : (float * float) list -> fit
(** Least-squares line through [(x, y)] points. Raises
    [Invalid_argument] with fewer than two points or zero x-variance. *)

val exponential_rate : (float * float) list -> fit
(** [exponential_rate points] fits [y = A e^{rate x}] by regressing
    [ln y] on [x]; the returned [slope] is the growth rate and
    [exp intercept] the prefactor. Points with [y <= 0] are skipped. *)
