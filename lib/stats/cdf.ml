type t = { sorted : float array }

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Cdf.of_samples: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  { sorted }

let size t = Array.length t.sorted
let support t = (t.sorted.(0), t.sorted.(size t - 1))

(* Index of the first element strictly greater than [x]. *)
let upper_bound sorted x =
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if sorted.(mid) <= x then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length sorted)

let eval t x = float_of_int (upper_bound t.sorted x) /. float_of_int (size t)

let inverse t q = Quantile.quantiles_sorted t.sorted [ q ] |> List.hd

let points t =
  let n = size t in
  let rec collect i acc =
    if i < 0 then acc
    else
      let x = t.sorted.(i) in
      (* Keep only the last (highest-probability) point per distinct x. *)
      let acc =
        match acc with
        | (x', _) :: _ when Float.equal x' x -> acc
        | _ -> (x, float_of_int (i + 1) /. float_of_int n) :: acc
      in
      collect (i - 1) acc
  in
  collect (n - 1) []

let tabulate t ?(n = 50) () =
  if n < 2 then invalid_arg "Cdf.tabulate: need at least 2 points";
  let lo, hi = support t in
  if Float.equal lo hi then [ (lo, 1.) ]
  else
    List.init n (fun i ->
        let x = lo +. (float_of_int i /. float_of_int (n - 1) *. (hi -. lo)) in
        (x, eval t x))

let ks_distance a b =
  (* The supremum of |Fa - Fb| is attained at an observation of either
     sample; scan the merged support. *)
  let worst = ref 0. in
  let check x =
    let d = Float.abs (eval a x -. eval b x) in
    if d > !worst then worst := d
  in
  Array.iter check a.sorted;
  Array.iter check b.sorted;
  !worst
