(** Streaming summary statistics.

    Welford's online algorithm: numerically stable single-pass mean and
    variance, plus min/max and count. Used everywhere an experiment
    aggregates per-message or per-node values. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** Fresh, empty accumulator. *)

val add : t -> float -> unit
(** Feed one observation. Non-finite values raise [Invalid_argument]
    (silently absorbing a NaN would corrupt every downstream figure). *)

val add_seq : t -> float Seq.t -> unit
(** Feed many observations. *)

val count : t -> int
(** Number of observations so far. *)

val mean : t -> float
(** Arithmetic mean. [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance (n-1 denominator). [nan] when fewer than
    two observations. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min : t -> float
(** Smallest observation. [nan] when empty. *)

val max : t -> float
(** Largest observation. [nan] when empty. *)

val total : t -> float
(** Sum of observations. *)

val of_array : float array -> t
(** Summarise an array in one pass. *)

val merge : t -> t -> t
(** [merge a b] summarises the union of both observation streams
    (Chan's parallel-variance combination). Inputs are unchanged. *)

val pp : Format.formatter -> t -> unit
(** ["n=… mean=… sd=… min=… max=…"]. *)
