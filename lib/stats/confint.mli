(** Confidence intervals on a mean.

    Normal-approximation intervals — what the paper's 99% error bars in
    Fig. 14 use. Adequate for the sample sizes involved (tens to
    thousands); the z quantiles are hard-coded for the confidence levels
    actually used. *)

type level = C90 | C95 | C99

val z_of_level : level -> float
(** Two-sided standard-normal quantile: 1.645, 1.960, 2.576. *)

val of_summary : Summary.t -> level -> float * float
(** [(lo, hi)] interval for the mean. Degenerates to [(mean, mean)] for
    samples of size < 2. Raises [Invalid_argument] on an empty summary. *)

val of_samples : float array -> level -> float * float
(** Convenience over {!of_summary}. *)

val halfwidth : Summary.t -> level -> float
(** Half the interval width: [z * sd / sqrt n]. *)
