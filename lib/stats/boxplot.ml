type t = {
  q1 : float;
  median : float;
  q3 : float;
  whisker_lo : float;
  whisker_hi : float;
  outliers : float array;
  count : int;
}

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Boxplot.of_samples: empty sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let q1, median, q3 =
    match Quantile.quantiles_sorted sorted [ 0.25; 0.5; 0.75 ] with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let iqr = q3 -. q1 in
  let fence_lo = q1 -. (1.5 *. iqr) and fence_hi = q3 +. (1.5 *. iqr) in
  let inside = Array.to_list sorted |> List.filter (fun x -> x >= fence_lo && x <= fence_hi) in
  let whisker_lo, whisker_hi =
    match inside with
    | [] -> (median, median)  (* pathological: all points are outliers of each other *)
    | first :: _ ->
      let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> assert false in
      (first, last inside)
  in
  let outliers =
    Array.of_list (Array.to_list sorted |> List.filter (fun x -> x < fence_lo || x > fence_hi))
  in
  { q1; median; q3; whisker_lo; whisker_hi; outliers; count = Array.length xs }

let iqr t = t.q3 -. t.q1

let pp ppf t =
  Format.fprintf ppf "[%.3g |%.3g %.3g %.3g| %.3g] (n=%d, %d outliers)" t.whisker_lo t.q1
    t.median t.q3 t.whisker_hi t.count (Array.length t.outliers)
