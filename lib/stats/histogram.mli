(** Fixed-width binned histograms.

    Used for Fig. 6 (path arrivals over time) and any density view. *)

type t
(** Immutable histogram. *)

val create : lo:float -> hi:float -> bins:int -> float Seq.t -> t
(** [create ~lo ~hi ~bins data] counts observations into [bins] equal
    bins covering [\[lo, hi)]. Observations outside the range are
    tallied separately as underflow/overflow. Requires [lo < hi] and
    [bins >= 1]. *)

val counts : t -> int array
(** Per-bin counts, length [bins]. *)

val bin_edges : t -> float array
(** [bins + 1] edges; bin [i] covers [\[edges.(i), edges.(i+1))]. *)

val bin_center : t -> int -> float
(** Midpoint of bin [i]. *)

val underflow : t -> int
(** Observations below [lo]. *)

val overflow : t -> int
(** Observations at or above [hi]. *)

val total : t -> int
(** All observations, including under/overflow. *)

val densities : t -> float array
(** Counts normalised so the in-range mass integrates to 1 (count /
    (total_in_range * bin_width)). All-zero when no in-range data. *)

val cumulative : t -> int array
(** Running sum of counts: [cumulative t].(i) is the number of in-range
    observations in bins [0..i]. *)
