(** Quantiles of finite samples.

    Linear-interpolation quantiles (type 7, the R default) over a sorted
    copy of the data. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0, 1\]]. Sorts a copy of [xs]. Raises
    [Invalid_argument] on an empty array or [q] outside [\[0, 1\]]. *)

val quantiles_sorted : float array -> float list -> float list
(** [quantiles_sorted sorted qs] evaluates many quantiles over data that
    is already sorted ascending — avoids re-sorting per quantile. *)

val median : float array -> float
(** [median xs = quantile xs 0.5]. *)

val percentile : float array -> int -> float
(** [percentile xs p] with [p] in [\[0, 100\]]. *)
