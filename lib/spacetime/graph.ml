type vertex = { node : Psn_trace.Node.id; step : int }

type edge = Contact of vertex * vertex | Wait of vertex * vertex

type t = { snap : Snapshot.t }

let of_snapshot snap = { snap }
let of_trace ?delta trace = { snap = Snapshot.of_trace ?delta trace }

let n_vertices t = Snapshot.n_nodes t.snap * Snapshot.n_steps t.snap

let weight = function Contact _ -> 0 | Wait _ -> 1

let successors t v =
  let contact_edges =
    Snapshot.neighbours t.snap ~step:v.step v.node
    |> List.map (fun peer -> Contact (v, { node = peer; step = v.step }))
  in
  if v.step < Snapshot.n_steps t.snap then
    contact_edges @ [ Wait (v, { node = v.node; step = v.step + 1 }) ]
  else contact_edges

let edge_count t =
  let nodes = Snapshot.n_nodes t.snap and steps = Snapshot.n_steps t.snap in
  let contact_dirs =
    List.fold_left
      (fun acc step -> acc + (2 * List.length (Snapshot.edges t.snap ~step)))
      0 (Snapshot.active_steps t.snap)
  in
  contact_dirs + (nodes * (steps - 1))

let pp_step ppf t step =
  let edges = Snapshot.edges t.snap ~step in
  Format.fprintf ppf "t=%d:" step;
  if List.is_empty edges then Format.fprintf ppf " (no contacts)"
  else List.iter (fun (a, b) -> Format.fprintf ppf " %d-%d" a b) edges

let pp ppf t =
  let actives = Snapshot.active_steps t.snap in
  Format.fprintf ppf "space-time graph: %d nodes x %d steps (delta=%g s)@."
    (Snapshot.n_nodes t.snap) (Snapshot.n_steps t.snap)
    (Timegrid.delta (Snapshot.grid t.snap));
  List.iter (fun step -> Format.fprintf ppf "%a@." (fun ppf -> pp_step ppf t) step) actives
