(** Epidemic (earliest-arrival) reachability on the space-time graph.

    Floods a message from a source through the per-step contact
    closures. The arrival time this computes is the optimal path
    duration [T(σ, δ, t1)] of §4 — what epidemic forwarding achieves —
    and it serves as the oracle that the path enumerator's first output
    is verified against. *)

type arrivals
(** Earliest arrival times of one flood. *)

val flood : Snapshot.t -> src:Psn_trace.Node.id -> t_create:float -> arrivals
(** Run the flood. The message is created at [t_create]; following the
    paper's enumeration semantics, propagation starts in the step after
    the one containing [t_create]. Raises [Invalid_argument] if
    [t_create] lies outside the trace window or [src] is out of
    range. *)

val arrival_step : arrivals -> Psn_trace.Node.id -> int option
(** Step at which the node first holds the message ([None] = never; the
    source maps to the creation step). *)

val arrival_time : arrivals -> Psn_trace.Node.id -> float option
(** Absolute time [cΔ] of first arrival. *)

val delivery_delay : arrivals -> dst:Psn_trace.Node.id -> float option
(** [arrival_time dst - t_create], i.e. the optimal path duration. *)

val reached : arrivals -> int
(** Number of nodes reached, including the source. *)

val all_arrival_times : arrivals -> float option array
(** Per-node copy of arrival times. *)

val reachability_ratio : Snapshot.t -> t_create:float -> float
(** Fraction of ordered node pairs [(src, dst)] for which a message
    created at [t_create] can reach [dst] from [src] before the trace
    ends — the temporal-network reachability of the contact process
    (one flood per source, O(N × flood)). *)
