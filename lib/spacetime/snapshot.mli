(** Per-step contact snapshots.

    The zero-weight layer of the space-time graph: for every step of the
    {!Timegrid}, the undirected graph of node pairs that were in contact
    at some point during that step's interval. This is the structure the
    path enumerator, the flooding oracle and Fig. 2 all consume. *)

type t

val of_trace : ?delta:float -> Psn_trace.Trace.t -> t
(** Rasterise a trace onto the grid ([delta] defaults to the paper's
    10 s). Duplicate edges within a step are merged. *)

val grid : t -> Timegrid.t
val n_nodes : t -> int
val n_steps : t -> int

val neighbours : t -> step:int -> Psn_trace.Node.id -> Psn_trace.Node.id list
(** Direct contacts of a node during the step (no transitive closure).
    Raises [Invalid_argument] on a bad step or node. *)

val in_contact : t -> step:int -> Psn_trace.Node.id -> Psn_trace.Node.id -> bool

val edges : t -> step:int -> (Psn_trace.Node.id * Psn_trace.Node.id) list
(** Deduplicated [(a, b)] pairs with [a < b]. *)

val active_steps : t -> int list
(** Steps that have at least one edge, ascending — lets sparse traces be
    walked quickly. *)

val component_of : t -> step:int -> Psn_trace.Node.id -> Psn_trace.Node.id list
(** All nodes reachable from the given node through contact edges within
    the step (the zero-weight closure), including the node itself. *)

val components : t -> step:int -> Psn_trace.Node.id list list
(** Partition of the non-isolated nodes of the step into connected
    components. Isolated nodes are omitted. *)
