(** Discretisation of continuous time into the paper's Δ grid.

    Following §4.1, time is cut into steps [c = 1, 2, …, ceil(tmax/Δ)];
    step [c] stands for the interval [\[cΔ - Δ, cΔ)] and is labelled by
    its right edge [T = cΔ]. The paper uses Δ = 10 s throughout. *)

type t

val create : ?delta:float -> horizon:float -> unit -> t
(** [delta] defaults to 10 s. Raises [Invalid_argument] unless
    [0 < delta] and [0 < horizon]. *)

val delta : t -> float

val n_steps : t -> int
(** [ceil (horizon / delta)]. Steps are numbered 1 .. n_steps. *)

val step_of_time : t -> float -> int
(** The step whose interval contains the instant. Raises
    [Invalid_argument] outside [\[0, horizon)]. *)

val time_of_step : t -> int -> float
(** Right edge [cΔ] of the step — the timestamp the paper assigns to
    events in the step. Raises [Invalid_argument] outside
    [\[1, n_steps\]]. *)

val interval_of_step : t -> int -> float * float
(** [\[cΔ - Δ, cΔ)] as a pair. *)

val steps_overlapping : t -> t_start:float -> t_end:float -> int * int
(** Inclusive range of steps whose intervals intersect
    [\[t_start, t_end)], clamped to the grid. Requires
    [t_start < t_end]. *)
