type arrivals = {
  grid : Timegrid.t;
  t_create : float;
  arrival : int array;  (* step of first arrival per node; -1 = unreached *)
}

let flood snap ~src ~t_create =
  let grid = Snapshot.grid snap in
  let n = Snapshot.n_nodes snap in
  if src < 0 || src >= n then invalid_arg "Reachability.flood: src out of range";
  let create_step = Timegrid.step_of_time grid t_create in
  let arrival = Array.make n (-1) in
  arrival.(src) <- create_step;
  let n_reached = ref 1 in
  let steps = Timegrid.n_steps grid in
  let step = ref (create_step + 1) in
  while !step <= steps && !n_reached < n do
    (* Any component containing a holder becomes all-holders this step. *)
    List.iter
      (fun comp ->
        if List.exists (fun x -> arrival.(x) >= 0) comp then
          List.iter
            (fun x ->
              if arrival.(x) < 0 then begin
                arrival.(x) <- !step;
                incr n_reached
              end)
            comp)
      (Snapshot.components snap ~step:!step);
    incr step
  done;
  { grid; t_create; arrival }

let arrival_step t node =
  if node < 0 || node >= Array.length t.arrival then
    invalid_arg "Reachability.arrival_step: node out of range";
  if t.arrival.(node) < 0 then None else Some t.arrival.(node)

let arrival_time t node =
  Option.map (fun step -> Timegrid.time_of_step t.grid step) (arrival_step t node)

let delivery_delay t ~dst = Option.map (fun time -> time -. t.t_create) (arrival_time t dst)

let reached t = Array.fold_left (fun acc a -> if a >= 0 then acc + 1 else acc) 0 t.arrival

let all_arrival_times t =
  Array.map (fun step -> if step < 0 then None else Some (Timegrid.time_of_step t.grid step)) t.arrival

let reachability_ratio snap ~t_create =
  let n = Snapshot.n_nodes snap in
  let reached_pairs = ref 0 in
  for src = 0 to n - 1 do
    let fl = flood snap ~src ~t_create in
    (* exclude the source itself *)
    reached_pairs := !reached_pairs + reached fl - 1
  done;
  float_of_int !reached_pairs /. float_of_int (n * (n - 1))
