module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact

type t = {
  grid : Timegrid.t;
  n_nodes : int;
  adj : int list array array;  (* adj.(step - 1).(node) = sorted distinct neighbours *)
}

let of_trace ?delta trace =
  let grid = Timegrid.create ?delta ~horizon:(Trace.horizon trace) () in
  let n = Trace.n_nodes trace in
  let steps = Timegrid.n_steps grid in
  let adj = Array.init steps (fun _ -> Array.make n []) in
  Trace.iter_contacts trace (fun (c : Contact.t) ->
      let first, last = Timegrid.steps_overlapping grid ~t_start:c.Contact.t_start ~t_end:c.Contact.t_end in
      for step = first to last do
        let row = adj.(step - 1) in
        row.(c.Contact.a) <- c.Contact.b :: row.(c.Contact.a);
        row.(c.Contact.b) <- c.Contact.a :: row.(c.Contact.b)
      done);
  (* Merge duplicates (same pair touching one step via several contact
     records) and fix a deterministic order. *)
  Array.iter
    (fun row ->
      Array.iteri (fun i ns -> row.(i) <- List.sort_uniq Int.compare ns) row)
    adj;
  { grid; n_nodes = n; adj }

let grid t = t.grid
let n_nodes t = t.n_nodes
let n_steps t = Timegrid.n_steps t.grid

let check t ~step node =
  if step < 1 || step > n_steps t then invalid_arg "Snapshot: step out of range";
  if node < 0 || node >= t.n_nodes then invalid_arg "Snapshot: node out of range"

let neighbours t ~step node =
  check t ~step node;
  t.adj.(step - 1).(node)

let in_contact t ~step a b =
  check t ~step a;
  check t ~step b;
  List.mem b t.adj.(step - 1).(a)

let edges t ~step =
  check t ~step 0;
  let row = t.adj.(step - 1) in
  let acc = ref [] in
  for a = t.n_nodes - 1 downto 0 do
    List.iter (fun b -> if a < b then acc := (a, b) :: !acc) row.(a)
  done;
  !acc

let active_steps t =
  let acc = ref [] in
  for step = n_steps t downto 1 do
    if Array.exists (fun ns -> not (List.is_empty ns)) t.adj.(step - 1) then acc := step :: !acc
  done;
  !acc

let component_of t ~step node =
  check t ~step node;
  let row = t.adj.(step - 1) in
  let seen = Array.make t.n_nodes false in
  seen.(node) <- true;
  let rec bfs frontier acc =
    match frontier with
    | [] -> acc
    | x :: rest ->
      let fresh = List.filter (fun y -> not seen.(y)) row.(x) in
      List.iter (fun y -> seen.(y) <- true) fresh;
      bfs (fresh @ rest) (fresh @ acc)
  in
  List.sort Int.compare (bfs [ node ] [ node ])

let components t ~step =
  check t ~step 0;
  let row = t.adj.(step - 1) in
  let seen = Array.make t.n_nodes false in
  let out = ref [] in
  for node = 0 to t.n_nodes - 1 do
    if (not seen.(node)) && not (List.is_empty row.(node)) then begin
      let comp = component_of t ~step node in
      List.iter (fun x -> seen.(x) <- true) comp;
      out := comp :: !out
    end
  done;
  List.rev !out
