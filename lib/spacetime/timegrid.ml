type t = { delta : float; horizon : float; n_steps : int }

let create ?(delta = 10.) ~horizon () =
  if not (delta > 0.) then invalid_arg "Timegrid.create: delta must be positive";
  if not (horizon > 0.) then invalid_arg "Timegrid.create: horizon must be positive";
  { delta; horizon; n_steps = int_of_float (Float.ceil (horizon /. delta)) }

let delta t = t.delta
let n_steps t = t.n_steps

let step_of_time t time =
  if time < 0. || time >= t.horizon then invalid_arg "Timegrid.step_of_time: outside horizon";
  (* time in [cΔ - Δ, cΔ)  <=>  c = floor(time/Δ) + 1 *)
  Int.min t.n_steps (int_of_float (Float.floor (time /. t.delta)) + 1)

let check_step t c =
  if c < 1 || c > t.n_steps then invalid_arg "Timegrid: step out of range"

let time_of_step t c =
  check_step t c;
  float_of_int c *. t.delta

let interval_of_step t c =
  check_step t c;
  (float_of_int (c - 1) *. t.delta, float_of_int c *. t.delta)

let steps_overlapping t ~t_start ~t_end =
  if not (t_start < t_end) then invalid_arg "Timegrid.steps_overlapping: empty interval";
  (* Step c intersects [t_start, t_end) iff cΔ > t_start and cΔ - Δ < t_end. *)
  let first = int_of_float (Float.floor (t_start /. t.delta)) + 1 in
  let last = int_of_float (Float.ceil (t_end /. t.delta)) in
  (Int.max 1 first, Int.min t.n_steps last)
