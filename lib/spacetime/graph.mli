(** The space-time graph, as defined in §4.1.

    A directed weighted graph whose vertices are (node, step) pairs.
    Contact edges connect co-located vertices within a step at weight
    zero; wait edges connect a node to itself one step later at weight
    one. This module is the formal view over {!Snapshot} — the
    enumerator works on snapshots directly for speed, while this
    interface serves inspection, tests, and the Fig. 2 rendering. *)

type vertex = { node : Psn_trace.Node.id; step : int }

type edge =
  | Contact of vertex * vertex  (** Weight 0, same step. *)
  | Wait of vertex * vertex  (** Weight 1, same node, next step. *)

type t

val of_snapshot : Snapshot.t -> t
val of_trace : ?delta:float -> Psn_trace.Trace.t -> t

val n_vertices : t -> int
(** [n_nodes * n_steps]. *)

val weight : edge -> int
(** 0 for contact edges, 1 for wait edges. *)

val successors : t -> vertex -> edge list
(** Outgoing edges: contact edges to every step-neighbour plus the wait
    edge (absent at the final step). Raises [Invalid_argument] on an
    out-of-range vertex. *)

val edge_count : t -> int
(** Total directed edges; contact edges count once per direction. *)

val pp_step : Format.formatter -> t -> int -> unit
(** Render one step's contact edges, e.g. ["t=3: 1-2 2-3"]. *)

val pp : Format.formatter -> t -> unit
(** Render every active step — the textual analogue of the paper's
    Fig. 2 example. *)
