(** Monte-Carlo simulation of the §5.1 stochastic model.

    Direct event-driven simulation of the Markov jump process whose
    Kurtz limit is the ODE of {!Homogeneous}: N nodes, per-node Poisson
    contact opportunities of intensity λ, uniformly chosen peer, and the
    transition [S_peer += S_node]. Used to validate the closed forms at
    finite N and to measure the model's T1/TE analogues. *)

type sample = {
  time : float;
  mean : float;  (** Mean paths per node at [time]. *)
  second_moment : float;
      (** Population mean of S² — the quantity whose expectation the
          closed form of {!Homogeneous.second_moment} gives. (The
          within-realisation variance is much smaller than the model
          variance, because most of E\[S²\] comes from realisation-to-
          realisation growth differences.) *)
  variance : float;  (** Within-realisation population variance. *)
  frac_reached : float;  (** Fraction of nodes with at least one path. *)
}

val run :
  Homogeneous.params ->
  rng:Psn_prng.Rng.t ->
  sample_times:float list ->
  sample list
(** Simulate one realisation from the single-source initial condition
    and record the population statistics at each requested time
    (ascending order enforced internally). Path counts are tracked in
    floating point: they grow like e^{λt}, which overflows 64-bit
    integers within a few multiples of the first-path time H. *)

val average_runs :
  Homogeneous.params ->
  rng:Psn_prng.Rng.t ->
  runs:int ->
  sample_times:float list ->
  sample list
(** Average {!run} over several independent realisations (sample
    fields averaged pointwise). *)

type delivery = {
  t1 : float option;  (** First time the destination holds a path. *)
  tn : float option;  (** First time [n_explosion] paths have reached it. *)
}

val deliveries :
  Homogeneous.params ->
  rng:Psn_prng.Rng.t ->
  n_explosion:int ->
  t_end:float ->
  delivery
(** Track one message from node 0 to node [N - 1]: the model analogue of
    the empirical T1 and Tn (cumulative path arrivals at the
    destination, counted as the sum of [S] increments it receives). *)
