type params = { n : int; lambda : float }

let check p =
  if p.n < 2 then invalid_arg "Homogeneous: n must be >= 2";
  if not (p.lambda > 0.) then invalid_arg "Homogeneous: lambda must be positive"

let initial_density p ~k_max =
  check p;
  if k_max < 1 then invalid_arg "Homogeneous.initial_density: k_max must be >= 1";
  let u = Array.make (k_max + 1) 0. in
  let one_over_n = 1. /. float_of_int p.n in
  u.(0) <- 1. -. one_over_n;
  u.(1) <- one_over_n;
  u

(* du_k/dt = lambda * (sum_{i=0..k} u_i u_{k-i} - u_k). The convolution
   is O(K^2) per evaluation; K stays small (hundreds) in practice. *)
let derivative lambda ~t:_ ~y =
  let k_max = Array.length y - 1 in
  Array.init (k_max + 1) (fun k ->
      let conv = ref 0. in
      for i = 0 to k do
        conv := !conv +. (y.(i) *. y.(k - i))
      done;
      lambda *. (!conv -. y.(k)))

let density_at p ~k_max ~t ?(steps = 1000) () =
  check p;
  let y0 = initial_density p ~k_max in
  if Float.equal t 0. then y0 else Ode.rk4 ~f:(derivative p.lambda) ~y0 ~t0:0. ~t1:t ~steps

let mass u = Array.fold_left ( +. ) 0. u

let mean_of_density u =
  let acc = ref 0. in
  Array.iteri (fun k uk -> acc := !acc +. (float_of_int k *. uk)) u;
  !acc

let phi0 p x =
  (* phi_x(0) = u_0(0) + x * u_1(0) with the single-source initial
     condition. *)
  let one_over_n = 1. /. float_of_int p.n in
  1. -. one_over_n +. (x *. one_over_n)

let blowup_time p ~x =
  check p;
  let f0 = phi0 p x in
  if f0 <= 1. then None else Some (1. /. p.lambda *. Float.log (f0 /. (f0 -. 1.)))

let generating_function p ~x ~t =
  check p;
  if t < 0. then invalid_arg "Homogeneous.generating_function: negative time";
  let f0 = phi0 p x in
  let e = Float.exp (p.lambda *. t) in
  if f0 < 1. then (* eq. (2) *) f0 /. (f0 +. ((1. -. f0) *. e))
  else if Float.equal f0 1. then 1.
  else begin
    (* eq. (3), diverging at the blow-up time. *)
    match blowup_time p ~x with
    | Some tc when t >= tc -> Float.infinity
    | _ -> f0 /. (f0 -. ((f0 -. 1.) *. e))
  end

let mean_s0 p = 1. /. float_of_int p.n

(* E[S(0)^2] = 1/N (S(0) is an indicator), so V[S(0)] = 1/N - 1/N^2. *)
let second_moment_s0 p = 1. /. float_of_int p.n

let mean_paths p ~t =
  check p;
  mean_s0 p *. Float.exp (p.lambda *. t)

let second_moment p ~t =
  check p;
  let e = Float.exp (p.lambda *. t) in
  (second_moment_s0 p +. (2. *. (e -. 1.) *. mean_s0 p *. mean_s0 p)) *. e

(* The paper prints V[S(t)] = V[S(0)] e^{lt} + E[S(0)](e^{2lt} - e^{lt}),
   but expanding its own (correct) second-moment expression gives
   E[S(0)]^2 as the coefficient of the last term; the printed form is a
   typo (it disagrees with E[S^2] - E[S]^2 for any E[S(0)] != 1). We
   implement the self-consistent form. *)
let variance p ~t =
  check p;
  let e = Float.exp (p.lambda *. t) in
  let m0 = mean_s0 p in
  let v0 = second_moment_s0 p -. (m0 *. m0) in
  (v0 *. e) +. (m0 *. m0 *. ((e *. e) -. e))

let frac_reached p ~t = 1. -. generating_function p ~x:0. ~t

let first_path_time p =
  check p;
  Float.log (float_of_int p.n) /. p.lambda
