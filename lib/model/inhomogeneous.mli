(** The two-class inhomogeneous model of §5.2.

    The paper explains the empirical T1/TE quadrants by splitting nodes
    into high contact rate ('in') and low contact rate ('out') classes:
    explosion among nodes of rate ≥ λ proceeds at rate λ, so

    - in → in: T1 small, TE small;
    - in → out: T1 small, TE large;
    - out → in: T1 large (≈ 1/λ_src to escape the source), TE small;
    - out → out: both large.

    This module provides those qualitative predictions, the first-path
    time scale H = ln N / λ, and a Monte-Carlo of the heterogeneous-rate
    jump process that measures T1 and TE per quadrant so the prediction
    table can be checked quantitatively. *)

type classes = {
  n : int;  (** Total population. *)
  frac_high : float;  (** Fraction of 'in' (high-rate) nodes, in (0, 1). *)
  rate_high : float;  (** λ of 'in' nodes. *)
  rate_low : float;  (** λ of 'out' nodes; [0 < rate_low <= rate_high]. *)
}

val check : classes -> unit
(** Raises [Invalid_argument] on inconsistent parameters. *)

type quadrant = In_in | In_out | Out_in | Out_out

val pp_quadrant : Format.formatter -> quadrant -> unit
(** ["in-in"], ["in-out"], … *)

val all_quadrants : quadrant list
(** In the paper's order: in-in, in-out, out-in, out-out. *)

type prediction = { t1_small : bool; te_small : bool }

val predict : quadrant -> prediction
(** The §5.2 hypothesis table. *)

val first_path_scale : classes -> quadrant -> float
(** Order-of-magnitude prediction for T1: [ln N / λ_high] when the
    source is high-rate, plus an extra [1 / λ_low] escape term when it
    is low-rate. *)

val subset_explosion_rate : classes -> src_rate:float -> float
(** The rate of the subset path explosion started by a node of rate
    [src_rate]: explosion proceeds at least at [src_rate] among nodes of
    rate ≥ [src_rate] (the paper's lower-bound argument). *)

type quadrant_stats = {
  quadrant : quadrant;
  mean_t1 : float;  (** Mean first-arrival time over delivered messages. *)
  sd_t1 : float;  (** Standard deviation of T1. *)
  mean_te : float;  (** Mean explosion time over exploded messages. *)
  sd_te : float;
      (** Standard deviation of TE — the paper's Fig. 8 signature for a
          low-rate destination is large TE {e variability}. *)
  deliveries : int;
  explosions : int;
  messages : int;
}

val simulate :
  classes ->
  rng:Psn_prng.Rng.t ->
  messages_per_quadrant:int ->
  n_explosion:int ->
  t_end:float ->
  quadrant_stats list
(** Monte-Carlo of the heterogeneous jump process with symmetric
    mass-action contacts: pair [(i, j)] meets at rate [λ_i λ_j / Σλ]
    (so each node's total contact rate is ≈ its own λ, as in real
    traces — a low-rate destination genuinely meets fewer carriers,
    which is the paper's TE mechanism) and both directions exchange
    path counts. For each quadrant, messages are tracked from a random
    source of the right class to a random destination of the right
    class; reported are mean T1, mean TE (time from first arrival to
    the [n_explosion]-th cumulative path), and the delivery and
    explosion counts. *)
