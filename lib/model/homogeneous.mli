(** The homogeneous path-explosion model of §5.1.

    N nodes; each node's contact opportunities form a Poisson process of
    intensity λ, the contacted peer chosen uniformly. [S_n(t)] counts
    the paths from a fixed source that have reached node [n] by time
    [t]; on a contact from [n] to [m], [S_m += S_n]. The paper analyses
    the population densities [u_k(t)] (fraction of nodes with exactly
    [k] paths), whose large-N Kurtz limit obeys

    {v du_k/dt = λ ( Σ_{i=0..k} u_i u_{k-i}  -  u_k ) v}

    with generating function [φ_x(t) = Σ_k x^k u_k(t)] solving
    [dφ/dt = λ (φ² - φ)] in closed form (eqs. 2-3), giving the paper's
    headline results: the mean number of paths per node grows as
    [E\[S(0)\] e^{λt}] (eq. 4) and the variance as
    [V\[S(0)\] e^{λt} + E\[S(0)\](e^{2λt} - e^{λt})].

    This module provides both the closed forms and a truncated numeric
    solution of the ODE so each can validate the other. *)

type params = { n : int;  (** Population size N >= 2. *) lambda : float  (** Per-node contact intensity λ > 0. *) }

val check : params -> unit
(** Raises [Invalid_argument] on bad parameters. *)

val initial_density : params -> k_max:int -> float array
(** The paper's initial condition as a density vector of length
    [k_max + 1]: a single source holding one path, i.e.
    [u_1(0) = 1/N], [u_0(0) = 1 - 1/N]. *)

val density_at : params -> k_max:int -> t:float -> ?steps:int -> unit -> float array
(** Numeric solution [u(t)] of the ODE truncated at [k_max] (mass
    flowing beyond [k_max] leaks out, so [Σ u] drops below 1 once the
    truncation binds — callers can monitor this with {!mass}).
    [steps] defaults to 1000 RK4 steps. *)

val mass : float array -> float
(** [Σ_k u_k] of a density vector. *)

val mean_of_density : float array -> float
(** [Σ_k k u_k] — mean paths per node under a density vector. *)

val generating_function : params -> x:float -> t:float -> float
(** Closed-form [φ_x(t)] from eqs. (2)-(3). For [x > 1] the value blows
    up at {!blowup_time}; past it the formula's sign flips, and this
    function returns [infinity] from the blow-up point on. *)

val mean_paths : params -> t:float -> float
(** Eq. (4): [E\[S(t)\] = (1/N) e^{λt}]. *)

val second_moment : params -> t:float -> float
(** [E\[S(t)²\]] from the second derivative of [φ]:
    [(E\[S(0)²\] + 2 (e^{λt} - 1) E\[S(0)\]²) e^{λt}]. *)

val variance : params -> t:float -> float
(** [V\[S(t)\] = V\[S(0)\] e^{λt} + E\[S(0)\]² (e^{2λt} - e^{λt})].
    Note: the paper prints [E\[S(0)\]] (unsquared) in the last term,
    which is inconsistent with its own second-moment formula — expanding
    [E\[S²\] - E\[S\]²] from eqs. (2)-(4) yields the squared
    coefficient implemented here (the two agree only when
    [E\[S(0)\] = 1]). *)

val blowup_time : params -> x:float -> float option
(** [T_C(x) = (1/λ) ln (φ_x(0) / (φ_x(0) - 1))] — the finite time at
    which the series [φ_x] diverges, witnessing the loss of the
    light-tail property. [None] for [x <= 1] (no blow-up). *)

val frac_reached : params -> t:float -> float
(** Fraction of nodes holding at least one path at time [t]:
    [1 - u_0(t) = 1 - φ_0(t)], in closed form from eq. (2). Grows
    logistically: negligible until around {!first_path_time}, then
    saturating — the epidemic S-curve. *)

val first_path_time : params -> float
(** [H = ln N / λ]: the time scale at which the mean path count per
    node reaches one — the paper's expected time for the first path. *)
