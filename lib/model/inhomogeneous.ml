open Psn_prng

type classes = { n : int; frac_high : float; rate_high : float; rate_low : float }

let check c =
  if c.n < 4 then invalid_arg "Inhomogeneous: n must be >= 4";
  if not (c.frac_high > 0. && c.frac_high < 1.) then
    invalid_arg "Inhomogeneous: frac_high must be in (0, 1)";
  if not (c.rate_low > 0. && c.rate_low <= c.rate_high) then
    invalid_arg "Inhomogeneous: need 0 < rate_low <= rate_high"

type quadrant = In_in | In_out | Out_in | Out_out

let pp_quadrant ppf q =
  Format.pp_print_string ppf
    (match q with In_in -> "in-in" | In_out -> "in-out" | Out_in -> "out-in" | Out_out -> "out-out")

let all_quadrants = [ In_in; In_out; Out_in; Out_out ]

type prediction = { t1_small : bool; te_small : bool }

let predict = function
  | In_in -> { t1_small = true; te_small = true }
  | In_out -> { t1_small = true; te_small = false }
  | Out_in -> { t1_small = false; te_small = true }
  | Out_out -> { t1_small = false; te_small = false }

let first_path_scale c q =
  check c;
  let base = Float.log (float_of_int c.n) /. c.rate_high in
  match q with
  | In_in | In_out -> base
  | Out_in | Out_out -> base +. (1. /. c.rate_low)

let subset_explosion_rate c ~src_rate =
  check c;
  if not (src_rate > 0.) then invalid_arg "Inhomogeneous.subset_explosion_rate: src_rate <= 0";
  src_rate

type quadrant_stats = {
  quadrant : quadrant;
  mean_t1 : float;
  sd_t1 : float;
  mean_te : float;
  sd_te : float;
  deliveries : int;
  explosions : int;
  messages : int;
}

(* Node layout: indices [0, n_high) are 'in' nodes, the rest 'out'. *)
let n_high c = Int.max 1 (int_of_float (Float.round (c.frac_high *. float_of_int c.n)))

let rate_of c i = if i < n_high c then c.rate_high else c.rate_low

(* One tracked message in the heterogeneous jump process.

   Contacts are symmetric and mass-action: pair (i, j) meets at rate
   λ_i λ_j / Σλ, so a node's total contact rate is ≈ its own λ — the
   same physics as the trace generator and the reason a low-rate
   destination starves (the paper's TE mechanism). On contact both
   directions exchange: S_i += old S_j and S_j += old S_i. *)
let track c ~rng ~src ~dst ~n_explosion ~t_end =
  let n = c.n in
  let states = Array.make n 0. in
  states.(src) <- 1.;
  let rates = Array.init n (fun i -> rate_of c i) in
  let rate_sum = Array.fold_left ( +. ) 0. rates in
  let rate_sq = Array.fold_left (fun acc r -> acc +. (r *. r)) 0. rates in
  (* Σ_{i<j} λ_i λ_j / Σλ *)
  let total_rate = ((rate_sum *. rate_sum) -. rate_sq) /. (2. *. rate_sum) in
  let t1 = ref None and tn = ref None in
  let received = ref 0. in
  let time = ref 0. in
  while Option.is_none !tn && !time < t_end do
    let t' = !time +. Rng.exponential rng ~rate:total_rate in
    time := t';
    if t' < t_end then begin
      (* Sample an unordered pair with probability ∝ λ_i λ_j. *)
      let i = Rng.choice_weighted rng ~weights:rates in
      let rec pick_peer () =
        let j = Rng.choice_weighted rng ~weights:rates in
        if j = i then pick_peer () else j
      in
      let j = pick_peer () in
      (* Mirror the measurement's k-truncation: the enumerator retains
         at most n_explosion paths per node, so a single contact can
         deliver at most that many. Without the cap every late contact
         dumps e^{λt} paths and TE degenerates to zero everywhere. *)
      let cap = float_of_int n_explosion in
      let si = Float.min cap states.(i) and sj = Float.min cap states.(j) in
      states.(i) <- Float.min cap (si +. sj);
      states.(j) <- Float.min cap (sj +. si);
      let delivered = if i = dst then sj else if j = dst then si else 0. in
      if delivered > 0. then begin
        received := !received +. delivered;
        if Option.is_none !t1 then t1 := Some t';
        if !received >= float_of_int n_explosion then tn := Some t';
        (* First preference: paths through a carrier that has met the
           destination may not be delivered again — consume them. *)
        let carrier = if i = dst then j else i in
        states.(carrier) <- 0.
      end
    end
  done;
  (!t1, !tn)

let pick_node c rng ~high ~avoid =
  let nh = n_high c in
  let lo, hi = if high then (0, nh - 1) else (nh, c.n - 1) in
  let rec draw () =
    let v = Rng.int_in_range rng ~lo ~hi in
    match avoid with Some a when a = v -> draw () | _ -> v
  in
  draw ()

let simulate c ~rng ~messages_per_quadrant ~n_explosion ~t_end =
  check c;
  if messages_per_quadrant <= 0 then invalid_arg "Inhomogeneous.simulate: need messages > 0";
  if n_high c >= c.n then invalid_arg "Inhomogeneous.simulate: no low-rate nodes";
  if n_high c < 2 || c.n - n_high c < 2 then
    invalid_arg "Inhomogeneous.simulate: each class needs at least two nodes";
  let stats_for quadrant =
    let src_high, dst_high =
      match quadrant with
      | In_in -> (true, true)
      | In_out -> (true, false)
      | Out_in -> (false, true)
      | Out_out -> (false, false)
    in
    let t1s = Psn_stats.Summary.create () and tes = Psn_stats.Summary.create () in
    for _ = 1 to messages_per_quadrant do
      let src = pick_node c rng ~high:src_high ~avoid:None in
      let dst = pick_node c rng ~high:dst_high ~avoid:(Some src) in
      match track c ~rng ~src ~dst ~n_explosion ~t_end with
      | None, _ -> ()
      | Some t1, tn ->
        Psn_stats.Summary.add t1s t1;
        (match tn with Some t -> Psn_stats.Summary.add tes (t -. t1) | None -> ())
    done;
    let sd s = if Psn_stats.Summary.count s < 2 then 0. else Psn_stats.Summary.stddev s in
    {
      quadrant;
      mean_t1 = Psn_stats.Summary.mean t1s;
      sd_t1 = sd t1s;
      mean_te = Psn_stats.Summary.mean tes;
      sd_te = sd tes;
      deliveries = Psn_stats.Summary.count t1s;
      explosions = Psn_stats.Summary.count tes;
      messages = messages_per_quadrant;
    }
  in
  List.map stats_for all_quadrants
