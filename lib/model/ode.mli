(** Fixed-step Runge-Kutta integration.

    A small classical RK4 integrator over [float array] states — enough
    to solve the truncated population ODE of §5.1 and cross-check its
    closed forms. No adaptivity; callers choose the step count. *)

type derivative = t:float -> y:float array -> float array
(** Right-hand side [dy/dt = f t y]; must return an array of the same
    length as [y] (checked on the first call). *)

val rk4 : f:derivative -> y0:float array -> t0:float -> t1:float -> steps:int -> float array
(** Integrate from [t0] to [t1] in [steps] equal RK4 steps and return
    the final state. [y0] is not mutated. Raises [Invalid_argument] if
    [steps <= 0] or [t1 < t0]. *)

val trajectory :
  f:derivative ->
  y0:float array ->
  t0:float ->
  t1:float ->
  steps:int ->
  (float * float array) list
(** As {!rk4} but returns every intermediate state, [(t0, y0)] first and
    [(t1, y(t1))] last — [steps + 1] points. *)
