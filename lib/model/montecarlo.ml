open Psn_prng

type sample = {
  time : float;
  mean : float;
  second_moment : float;
  variance : float;
  frac_reached : float;
}

let population_sample states time =
  let summary = Psn_stats.Summary.of_array states in
  let n = float_of_int (Array.length states) in
  let reached = Array.fold_left (fun acc s -> if s > 0. then acc + 1 else acc) 0 states in
  let sq = Array.fold_left (fun acc s -> acc +. (s *. s)) 0. states in
  {
    time;
    mean = Psn_stats.Summary.mean summary;
    second_moment = sq /. n;
    variance = Psn_stats.Summary.variance summary;
    frac_reached = float_of_int reached /. n;
  }

(* One contact opportunity: uniform source fires, uniform distinct peer
   receives all of the source's paths. The aggregate event rate is Nλ. *)
let step p rng states time =
  let n = Array.length states in
  let time = time +. Rng.exponential rng ~rate:(float_of_int n *. p.Homogeneous.lambda) in
  let source = Rng.int rng n in
  let peer =
    let r = Rng.int rng (n - 1) in
    if r >= source then r + 1 else r
  in
  states.(peer) <- states.(peer) +. states.(source);
  (time, source, peer)

let run p ~rng ~sample_times =
  Homogeneous.check p;
  let sample_times = List.sort Float.compare sample_times in
  let n = p.Homogeneous.n in
  let states = Array.make n 0. in
  states.(0) <- 1.;
  let rec go time pending acc =
    match pending with
    | [] -> List.rev acc
    | _ ->
      let t' = time +. Rng.exponential rng ~rate:(float_of_int n *. p.Homogeneous.lambda) in
      (* Sample instants in (time, t'] see the pre-event state: the next
         event only happens at t'. *)
      let rec flush pending acc =
        match pending with
        | next :: rest when next <= t' -> flush rest (population_sample states next :: acc)
        | _ -> (pending, acc)
      in
      let pending, acc = flush pending acc in
      let source = Rng.int rng n in
      let peer =
        let r = Rng.int rng (n - 1) in
        if r >= source then r + 1 else r
      in
      states.(peer) <- states.(peer) +. states.(source);
      go t' pending acc
  in
  go 0. sample_times []

let average_runs p ~rng ~runs ~sample_times =
  if runs <= 0 then invalid_arg "Montecarlo.average_runs: runs must be positive";
  let accumulate totals samples =
    List.map2
      (fun (t, m, q, v, f) s ->
        (t, m +. s.mean, q +. s.second_moment, v +. s.variance, f +. s.frac_reached))
      totals samples
  in
  let zero = List.map (fun t -> (t, 0., 0., 0., 0.)) (List.sort Float.compare sample_times) in
  let totals = ref zero in
  for _ = 1 to runs do
    totals := accumulate !totals (run p ~rng ~sample_times)
  done;
  let k = float_of_int runs in
  List.map
    (fun (time, m, q, v, f) ->
      { time; mean = m /. k; second_moment = q /. k; variance = v /. k; frac_reached = f /. k })
    !totals

type delivery = { t1 : float option; tn : float option }

let deliveries p ~rng ~n_explosion ~t_end =
  Homogeneous.check p;
  if n_explosion <= 0 then invalid_arg "Montecarlo.deliveries: n_explosion must be positive";
  let n = p.Homogeneous.n in
  let states = Array.make n 0. in
  states.(0) <- 1.;
  let dst = n - 1 in
  let t1 = ref None in
  let tn = ref None in
  let received = ref 0. in
  let time = ref 0. in
  while Option.is_none !tn && !time < t_end do
    let t', source, peer = step p rng states !time in
    time := t';
    if t' < t_end && peer = dst && states.(source) > 0. then begin
      received := !received +. states.(source);
      if Option.is_none !t1 then t1 := Some t';
      if !received >= float_of_int n_explosion && Option.is_none !tn then tn := Some t'
    end
  done;
  { t1 = !t1; tn = !tn }
