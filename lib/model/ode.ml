type derivative = t:float -> y:float array -> float array

let check_dim expected actual =
  if Array.length actual <> expected then
    invalid_arg "Ode: derivative returned a state of the wrong dimension"

let step ~f ~t ~h y =
  let dim = Array.length y in
  let scale_add v k factor =
    Array.init dim (fun i -> v.(i) +. (factor *. k.(i)))
  in
  let k1 = f ~t ~y in
  check_dim dim k1;
  let k2 = f ~t:(t +. (h /. 2.)) ~y:(scale_add y k1 (h /. 2.)) in
  let k3 = f ~t:(t +. (h /. 2.)) ~y:(scale_add y k2 (h /. 2.)) in
  let k4 = f ~t:(t +. h) ~y:(scale_add y k3 h) in
  Array.init dim (fun i ->
      y.(i) +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

let validate ~t0 ~t1 ~steps =
  if steps <= 0 then invalid_arg "Ode: steps must be positive";
  if t1 < t0 then invalid_arg "Ode: t1 must be >= t0"

let rk4 ~f ~y0 ~t0 ~t1 ~steps =
  validate ~t0 ~t1 ~steps;
  let h = (t1 -. t0) /. float_of_int steps in
  let y = ref (Array.copy y0) in
  for i = 0 to steps - 1 do
    let t = t0 +. (float_of_int i *. h) in
    y := step ~f ~t ~h !y
  done;
  !y

let trajectory ~f ~y0 ~t0 ~t1 ~steps =
  validate ~t0 ~t1 ~steps;
  let h = (t1 -. t0) /. float_of_int steps in
  let y = ref (Array.copy y0) in
  let points = ref [ (t0, Array.copy y0) ] in
  for i = 0 to steps - 1 do
    let t = t0 +. (float_of_int i *. h) in
    y := step ~f ~t ~h !y;
    points := (t +. h, Array.copy !y) :: !points
  done;
  List.rev !points
