type t = {
  find : seed:int64 -> Engine.outcome option;
  store : seed:int64 -> Engine.outcome -> unit;
}
