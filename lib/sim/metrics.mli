(** Forwarding performance metrics (§4).

    Success rate [S_A] (fraction of messages for which a path was found)
    and average delay [D_A] (mean duration of delivered messages) — the
    two axes of the paper's Fig. 9 — plus the full delay distribution of
    Fig. 10 and grouped breakdowns for Fig. 13. *)

type t = {
  algorithm : string;
  messages : int;
  delivered : int;
  success_rate : float;  (** [delivered / messages]; 0 for an empty workload. *)
  mean_delay : float;  (** Over delivered messages only; [nan] if none. *)
  median_delay : float;  (** [nan] if none delivered. *)
  copies : int;
      (** Transmissions (relay transfers plus delivery transmissions) —
          the cost axis the paper leaves open. *)
  attempts : int;
      (** Attempted transfers, including those lost to fault injection;
          equals [copies] in a fault-free run. *)
}

val of_outcome : Engine.outcome -> t

val equal : t -> t -> bool
(** Bit-identity: floats are compared on their IEEE-754 payload, so
    [nan] delays (nothing delivered) compare equal to themselves. This
    is the equality the [--jobs] determinism contract is stated in. *)

val overhead : t -> float
(** [attempts / copies] — the retransmission overhead under injected
    loss (1.0 when fault-free, [nan] when nothing was transmitted). *)

val delays : Engine.outcome -> float array
(** Delivery delays of delivered messages, ascending — feed to
    {!Psn_stats.Cdf.of_samples} for Fig. 10. *)

val pool : Engine.outcome list -> t
(** Combine runs of the same algorithm (multi-seed aggregation) by
    concatenating their per-message records and recomputing every
    statistic over the pooled sample: counts and copies sum, and
    [mean_delay]/[median_delay] are the mean and median of the pooled
    delay list — {e not} a delivery-weighted mean of per-run summary
    values, which is wrong for the median. Raises [Invalid_argument] on
    an empty list or mixed algorithms. *)

val grouped :
  Engine.outcome ->
  cmp:('key -> 'key -> int) ->
  classify:(Message.t -> 'key) ->
  ('key * t) list
(** Per-group metrics, e.g. [classify] by source-destination pair type
    for Fig. 13. [cmp] decides group membership ([cmp a b = 0]) and
    must be a total order on the classifier's range — pass e.g.
    [Float.compare] for float-bearing keys, so a NaN key still lands
    in one group instead of spawning a duplicate per record (which is
    what a generic-equality keying would do). Groups appear in
    first-seen order; each group's [copies] is the sum of its records'
    per-message transmission counts, so group copies sum to the
    outcome's total. *)
