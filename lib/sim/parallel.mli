(** Multicore fan-out for embarrassingly parallel sweeps.

    The experiment layer is dominated by two shapes of work: one
    simulation run per (algorithm, seed) and one path enumeration per
    (src, dst) pair. Both are independent tasks over an index set, so
    this module provides exactly that: a [Domain]-based work pool
    (OCaml 5 stdlib only, no external dependency) that applies a
    function to every element of an array and returns the results
    {e keyed by input index}.

    Scheduling is {e chunked} work-stealing: workers repeatedly claim
    the next unclaimed index {e range} of [chunk] tasks from a shared
    atomic counter ([Atomic.fetch_and_add] once per chunk, not once
    per task), so dispatch overhead is amortised across the chunk
    while the tail of the range still balances across workers.

    Determinism contract: because every task owns its inputs (per-task
    RNG seeds, fresh algorithm state) and results land in the slot of
    their input index, a parallel run is bit-identical to a sequential
    run of the same tasks — scheduling (including the [jobs] and
    [chunk] values) only changes {e when} a task runs, never what it
    computes or where its result goes. Tasks must not share mutable
    state; all library tasks fed to this module (engine runs,
    enumerations) mutate only state they create or receive through
    {!map_env}'s per-worker environment.

    Exceptions raised by tasks are caught per task — the worker keeps
    draining its chunk and claiming more — and either isolated into
    that task's [result] cell ({!map_result}) or re-raised in the
    caller after all workers have joined, lowest task index first
    (every other entry point), so failure behaviour is deterministic
    for every [jobs] × [chunk] combination.

    Transient failures ({!Psn_robust.Failpoint.is_transient}) are
    retried in place, up to [retries] extra attempts per task with a
    deterministic [Domain.cpu_relax] backoff: the attempts of one task
    run consecutively on one domain under
    {!Psn_robust.Failpoint.with_attempt}, so an injected failure
    schedule — and therefore the final cell array — is bit-identical
    across [jobs] × [chunk].

    Telemetry ({!map_traced}, {!map_env}): each worker domain records
    into its own forked {!Psn_telemetry.Telemetry.sink} (one
    Chrome-trace track per worker), merged deterministically after the
    joins — recording is lock-free and can never affect results, only
    describe them. Children are forked for the requested [jobs] even
    on the sequential path ([jobs = 1], or fewer tasks than workers),
    so the track structure of a trace depends only on [jobs], never on
    the task count. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when
    [?jobs] is omitted. *)

val map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~chunk f tasks] is [Array.map f tasks] computed by up
    to [jobs] domains (the calling domain works too, and no more
    domains are spawned than there are chunks to claim). [jobs]
    defaults to {!default_jobs}; [jobs = 1] runs entirely on the
    calling domain with no spawning. [chunk] is the number of task
    indices a worker claims per grab; it defaults to a heuristic
    aiming at ~4 chunks per worker (clamped to [1, 64]) and must be
    [>= 1]. Raises [Invalid_argument] when [jobs < 1] or
    [chunk < 1]. *)

val map_list : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val map_traced :
  ?jobs:int ->
  ?chunk:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  (Psn_telemetry.Telemetry.sink -> 'a -> 'b) ->
  'a array ->
  'b array
(** {!map} where each task also receives the sink of the domain
    executing it, so instrumented tasks (runner simulations, path
    enumerations) attribute their spans to the right track. [jobs]
    child sinks are {!Psn_telemetry.Telemetry.fork}ed up front —
    uniformly, whatever the task count — and worker [k] records into
    child [k] (including a ["parallel.queue"] backlog gauge sampled at
    each chunk grab); the children are joined after the domains are.
    The default sink is null, under which this is exactly {!map}. *)

val map_env :
  ?jobs:int ->
  ?chunk:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  env:(unit -> 'env) ->
  ('env -> Psn_telemetry.Telemetry.sink -> 'a -> 'b) ->
  'a array ->
  'b array
(** {!map_traced} with a per-worker environment: [env ()] runs once on
    each worker domain before it claims any work, and every task that
    worker executes receives the worker's value. This is how callers
    reuse expensive mutable state (e.g. {!Engine.scratch} buffers)
    across the consecutive tasks of one domain without sharing it
    between domains — the environment is created, used and dropped
    entirely within its worker. [env] must not capture mutable state
    shared with other workers; results must not depend on which tasks
    ended up sharing an environment (the library's environments are
    pure caches, checked by the determinism tests). *)

val map_result :
  ?jobs:int ->
  ?chunk:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  ?retries:int ->
  env:(unit -> 'env) ->
  ('env -> Psn_telemetry.Telemetry.sink -> 'a -> 'b) ->
  'a array ->
  ('b, exn) result array
(** {!map_env} with graceful degradation: each task's outcome lands in
    its own [result] cell instead of aborting the sweep, so one failed
    (algorithm, seed) run costs exactly one cell of a study, never the
    study. A task that raises is retried in place — same worker, same
    environment — up to [retries] (default 0, must be [>= 0]) extra
    attempts {e if} the exception is transient per
    {!Psn_robust.Failpoint.is_transient}; permanent errors and
    exhausted retries become [Error] cells carrying the last
    exception. Attempts run under {!Psn_robust.Failpoint.with_attempt}
    with a deterministic, scheduling-independent backoff (a bounded
    [Domain.cpu_relax] spin, doubling per attempt), so the cell array
    is bit-identical for every [jobs] × [chunk] combination. The sink
    counts ["parallel.retries"] (re-attempts), ["parallel.recovered"]
    (tasks that succeeded after retrying) and ["parallel.failures"]
    (cells that ended [Error]). *)

val join_results : ('a, exn) result array -> 'a array
(** Unwrap a {!map_result} cell array, re-raising the {e lowest-index}
    [Error] if any — the deterministic all-or-nothing view the
    raising entry points are built on. *)
