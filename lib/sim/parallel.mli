(** Multicore fan-out for embarrassingly parallel sweeps.

    The experiment layer is dominated by two shapes of work: one
    simulation run per (algorithm, seed) and one path enumeration per
    (src, dst) pair. Both are independent tasks over an index set, so
    this module provides exactly that: a [Domain]-based work pool
    (OCaml 5 stdlib only, no external dependency) that applies a
    function to every element of an array and returns the results
    {e keyed by input index}.

    Determinism contract: because every task owns its inputs (per-task
    RNG seeds, fresh algorithm state) and results land in the slot of
    their input index, a parallel run is bit-identical to a sequential
    run of the same tasks — scheduling only changes {e when} a task
    runs, never what it computes or where its result goes. Tasks must
    not share mutable state; all library tasks fed to this module
    (engine runs, enumerations) mutate only state they create.

    Exceptions raised by tasks are caught per task and re-raised in the
    caller after all workers have drained, lowest task index first, so
    failure behaviour is deterministic too.

    Telemetry ({!map_traced}): each worker domain records into its own
    forked {!Psn_telemetry.Telemetry.sink} (one Chrome-trace track per
    domain), merged deterministically after the joins — recording is
    lock-free and can never affect results, only describe them. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when
    [?jobs] is omitted. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] is [Array.map f tasks] computed by up to [jobs]
    domains (the calling domain works too, so [jobs = 4] spawns three).
    [jobs] defaults to {!default_jobs}; [jobs = 1] (or a single task)
    runs sequentially in the calling domain with no spawning. Raises
    [Invalid_argument] when [jobs < 1]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val map_traced :
  ?jobs:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  (Psn_telemetry.Telemetry.sink -> 'a -> 'b) ->
  'a array ->
  'b array
(** {!map} where each task also receives the sink of the domain
    executing it, so instrumented tasks (runner simulations, path
    enumerations) attribute their spans to the right track. With
    [jobs <= 1] (or a single task) tasks run on the calling domain and
    record straight into [telemetry]; otherwise [jobs] child sinks are
    {!Psn_telemetry.Telemetry.fork}ed, worker [k] records into child
    [k] (including a ["parallel.queue"] backlog gauge sampled at each
    claim), and the children are joined after the domains are. The
    default sink is null, under which this is exactly {!map}. *)
