(** Multi-seed experiment runner.

    The paper averages every forwarding result over 10 simulation runs;
    this module regenerates the workload (and optionally the trace) per
    seed and aggregates over the pooled records.

    Every entry point takes [?jobs] and [?chunk]: the seeds (and, for
    the [_many] variants, the whole algorithm × seed grid) are fanned
    across that many domains through {!Parallel}, claimed in index
    ranges of [chunk] tasks. Each run owns its RNG and algorithm state
    and results are keyed by input index, so any [jobs] × [chunk]
    combination produces bit-identical output — scheduling only
    changes wall time. Defaults to {!Parallel.default_jobs} and
    {!Parallel}'s chunk heuristic. Each worker domain also owns one
    {!Engine.scratch}, reused across the consecutive runs it executes,
    which cuts the per-seed O(n²) allocation without coupling the runs
    (see {!Engine.type-scratch} for why reuse cannot leak state).

    Every entry point also takes [?faults]: a compiled {!Faults.plan}
    applied identically to every run of the batch. Fault verdicts are
    pure functions of the plan and the faulted entity, so faulted
    sweeps keep the bit-identical [jobs] contract.

    Every entry point also takes an optional outcome cache ([?store] /
    [?stores], see {!Cache}): per-seed outcomes found in the cache are
    not recomputed, and freshly computed ones are offered back. The
    cache is consulted strictly before and updated strictly after the
    parallel section, from the calling domain, so caching composes
    with any [jobs] value and — because a hit is byte-for-byte the
    outcome that the same inputs would recompute — cannot change
    results, only wall time.

    Every entry point also takes [?telemetry] (default null): each run
    records a ["runner.task"] span tagged with its seed (on the track
    of the domain that executed it), nesting a ["runner.factory"] span
    for algorithm construction and the ["engine.run"] span (which
    carries the algorithm name), cached batches record hit/miss counters
    and lookup/store spans, and the pooled aggregation records a
    ["runner.metrics"] span. Instrumentation never affects outcomes —
    results are bit-identical whether the sink is null or active. *)

type run_spec = {
  workload : Workload.spec;
  seeds : int64 list;  (** One run per seed (paper: 10). *)
}

val default_seeds : int -> int64 list
(** [default_seeds k] is a fixed, documented seed sequence of length
    [k] (1000, 1001, …) so published numbers are reproducible. *)

val run_algorithm :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?store:Cache.t ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factory:Algorithm.factory ->
  unit ->
  Metrics.t
(** Run one algorithm over every seed (fresh workload and fresh
    algorithm state per seed; the trace is shared) and pool the
    per-seed records ({!Metrics.pool}). *)

val run_many :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?stores:Cache.t list ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factories:Algorithm.factory list ->
  unit ->
  Metrics.t list
(** {!run_algorithm} for each factory, same seeds — so algorithms face
    identical workloads, as in a paired comparison. [stores], when
    given, must supply one cache per factory (in factory order);
    raises [Invalid_argument] otherwise. *)

val outcomes :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?store:Cache.t ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factory:Algorithm.factory ->
  unit ->
  Engine.outcome list
(** The raw per-seed outcomes, in seed order, for analyses needing full
    records (Fig. 10 delay distributions, Fig. 13 groupings). *)

val outcomes_many :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?stores:Cache.t list ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factories:Algorithm.factory list ->
  unit ->
  Engine.outcome list list
(** {!outcomes} for each factory over the same seeds; the whole
    factory × seed grid is one parallel batch, so stragglers in one
    algorithm overlap with the others' work. Results are grouped per
    factory, seeds in order. *)
