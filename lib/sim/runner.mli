(** Multi-seed experiment runner.

    The paper averages every forwarding result over 10 simulation runs;
    this module regenerates the workload (and optionally the trace) per
    seed and aggregates. *)

type run_spec = {
  workload : Workload.spec;
  seeds : int64 list;  (** One run per seed (paper: 10). *)
}

val default_seeds : int -> int64 list
(** [default_seeds k] is a fixed, documented seed sequence of length
    [k] (1000, 1001, …) so published numbers are reproducible. *)

val run_algorithm :
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factory:Algorithm.factory ->
  Metrics.t
(** Run one algorithm over every seed (fresh workload and fresh
    algorithm state per seed; the trace is shared) and average. *)

val run_many :
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factories:Algorithm.factory list ->
  Metrics.t list
(** {!run_algorithm} for each factory, same seeds — so algorithms face
    identical workloads, as in a paired comparison. *)

val outcomes :
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factory:Algorithm.factory ->
  Engine.outcome list
(** The raw per-seed outcomes, for analyses needing full records
    (Fig. 10 delay distributions, Fig. 13 groupings). *)
