(** Multi-seed experiment runner.

    The paper averages every forwarding result over 10 simulation runs;
    this module regenerates the workload (and optionally the trace) per
    seed and aggregates over the pooled records.

    Every entry point takes [?jobs] and [?chunk]: the seeds (and, for
    the [_many] variants, the whole algorithm × seed grid) are fanned
    across that many domains through {!Parallel}, claimed in index
    ranges of [chunk] tasks. Each run owns its RNG and algorithm state
    and results are keyed by input index, so any [jobs] × [chunk]
    combination produces bit-identical output — scheduling only
    changes wall time. Defaults to {!Parallel.default_jobs} and
    {!Parallel}'s chunk heuristic. Each worker domain also owns one
    {!Engine.scratch}, reused across the consecutive runs it executes,
    which cuts the per-seed O(n²) allocation without coupling the runs
    (see {!Engine.type-scratch} for why reuse cannot leak state).

    Every entry point also takes [?faults]: a compiled {!Faults.plan}
    applied identically to every run of the batch. Fault verdicts are
    pure functions of the plan and the faulted entity, so faulted
    sweeps keep the bit-identical [jobs] contract.

    Every entry point also takes an optional outcome cache ([?store] /
    [?stores], see {!Cache}): per-seed outcomes found in the cache are
    not recomputed, and freshly computed ones are offered back. The
    cache is consulted strictly before and updated strictly after the
    parallel sections, from the calling domain, so caching composes
    with any [jobs] value and — because a hit is byte-for-byte the
    outcome that the same inputs would recompute — cannot change
    results, only wall time.

    Every entry point also takes [?retries] and [?checkpoint] (both
    default 0). [retries] bounds deterministic in-place re-attempts of
    transient task failures ({!Parallel.map_result}). [checkpoint]
    (with a cache) splits the misses into rounds of that many tasks:
    each round's successes reach the cache before the next round runs,
    so a sweep killed mid-way resumes from its last completed round —
    re-running the same command with the same store replays the stored
    outcomes as hits, and because every task is a pure function of its
    inputs the resumed output is bit-identical to an uninterrupted
    run. Between rounds the runner also polls
    {!Psn_robust.Interrupt.check}, making round boundaries the
    cooperative SIGINT/SIGTERM points of a sweep. Without a cache,
    [checkpoint] is ignored (there is nowhere durable to put a
    round).

    Every entry point also takes [?telemetry] (default null): each run
    records a ["runner.task"] span tagged with its seed (on the track
    of the domain that executed it), nesting a ["runner.factory"] span
    for algorithm construction and the ["engine.run"] span (which
    carries the algorithm name), cached batches record hit/miss counters
    and lookup/store spans, and the pooled aggregation records a
    ["runner.metrics"] span. Instrumentation never affects outcomes —
    results are bit-identical whether the sink is null or active. *)

type run_spec = {
  workload : Workload.spec;
  seeds : int64 list;  (** One run per seed (paper: 10). *)
}

val default_seeds : int -> int64 list
(** [default_seeds k] is a fixed, documented seed sequence of length
    [k] (1000, 1001, …) so published numbers are reproducible. *)

val run_algorithm :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?store:Cache.t ->
  ?retries:int ->
  ?checkpoint:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factory:Algorithm.factory ->
  unit ->
  Metrics.t
(** Run one algorithm over every seed (fresh workload and fresh
    algorithm state per seed; the trace is shared) and pool the
    per-seed records ({!Metrics.pool}). *)

val run_many :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?stores:Cache.t list ->
  ?retries:int ->
  ?checkpoint:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factories:Algorithm.factory list ->
  unit ->
  Metrics.t list
(** {!run_algorithm} for each factory, same seeds — so algorithms face
    identical workloads, as in a paired comparison. [stores], when
    given, must supply one cache per factory (in factory order);
    raises [Invalid_argument] otherwise. *)

val outcomes :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?store:Cache.t ->
  ?retries:int ->
  ?checkpoint:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factory:Algorithm.factory ->
  unit ->
  Engine.outcome list
(** The raw per-seed outcomes, in seed order, for analyses needing full
    records (Fig. 10 delay distributions, Fig. 13 groupings). *)

val outcomes_many :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?stores:Cache.t list ->
  ?retries:int ->
  ?checkpoint:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factories:Algorithm.factory list ->
  unit ->
  Engine.outcome list list
(** {!outcomes} for each factory over the same seeds; the whole
    factory × seed grid is one parallel batch, so stragglers in one
    algorithm overlap with the others' work. Results are grouped per
    factory, seeds in order. *)

(** {1 Graceful degradation}

    The [_result] variants isolate per-task failures into [result]
    cells instead of aborting the sweep: one failed (algorithm, seed)
    run costs one cell, and study layers can report the failed cell
    while still aggregating the rest. The raising entry points above
    are these followed by {!Parallel.join_results} (lowest failing
    index re-raised) — either way every successful round still reaches
    the cache first, so even an aborting sweep checkpoints what it
    completed. *)

val outcomes_result :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?store:Cache.t ->
  ?retries:int ->
  ?checkpoint:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factory:Algorithm.factory ->
  unit ->
  (Engine.outcome, exn) result list

val outcomes_many_result :
  ?jobs:int ->
  ?chunk:int ->
  ?faults:Faults.plan ->
  ?stores:Cache.t list ->
  ?retries:int ->
  ?checkpoint:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  spec:run_spec ->
  factories:Algorithm.factory list ->
  unit ->
  (Engine.outcome, exn) result list list

(** {1 Generic memoized fan-out}

    The machinery under the entry points above, exported so other
    sweep layers (the experiment module's enumeration fan-out) share
    one checkpoint/resume and failure-isolation implementation. *)

val cached_map_result :
  ?jobs:int ->
  ?chunk:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  ?retries:int ->
  ?checkpoint:int ->
  ?prefix:string ->
  env:(unit -> 'env) ->
  find:('a -> 'b option) ->
  store:('a -> 'b -> unit) ->
  compute:('env -> Psn_telemetry.Telemetry.sink -> 'a -> 'b) ->
  'a array ->
  ('b, exn) result array
(** Memoized {!Parallel.map_result} over an arbitrary task grid:
    [find] every task up front (from the calling domain), compute the
    misses in parallel in rounds of [checkpoint] tasks (default 0 =
    one round), [store] each round's successes before the next round
    and poll {!Psn_robust.Interrupt.check} between rounds. Results are
    stitched back by task index, so the output is bit-identical for
    every [jobs] × [chunk] × [checkpoint] combination and any hit
    pattern. [prefix] (default ["runner"]) names the telemetry
    instrumentation: [<prefix>.cache_lookup] / [<prefix>.cache_store]
    spans, [<prefix>.cache_hits] / [<prefix>.cache_misses] /
    [<prefix>.checkpoints] counters. Raises [Invalid_argument] when
    [checkpoint < 0]. *)

val cached_map :
  ?jobs:int ->
  ?chunk:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  ?retries:int ->
  ?checkpoint:int ->
  ?prefix:string ->
  env:(unit -> 'env) ->
  find:('a -> 'b option) ->
  store:('a -> 'b -> unit) ->
  compute:('env -> Psn_telemetry.Telemetry.sink -> 'a -> 'b) ->
  'a array ->
  'b array
(** {!cached_map_result} followed by {!Parallel.join_results}: all
    rounds run and checkpoint their successes, then the lowest-index
    failure (if any) is re-raised. *)
