(** Neutral outcome-cache interface for the runner.

    [Runner] can consult a per-algorithm cache for the outcome of a
    seed before simulating, and offer the computed outcome back after
    a miss. This record is the whole contract — the runner neither
    knows nor cares where entries live, which keeps [psn_sim] free of
    a dependency on the store library (the store depends on [psn_sim],
    not the other way round). [Psn_store.Memo] builds values of this
    type backed by the on-disk store.

    Both closures are called only from the domain that called the
    runner, outside its parallel section, so implementations need no
    synchronisation — and cache availability can never perturb the
    deterministic results contract. *)

type t = {
  find : seed:int64 -> Engine.outcome option;
      (** [None] = miss; the runner will simulate this seed. *)
  store : seed:int64 -> Engine.outcome -> unit;
      (** Offer a freshly computed outcome for this seed. *)
}
