type context = {
  time : float;
  holder : Psn_trace.Node.id;
  peer : Psn_trace.Node.id;
  message : Message.t;
}

type t = {
  name : string;
  observe_contact : time:float -> a:Psn_trace.Node.id -> b:Psn_trace.Node.id -> unit;
  on_create : Message.t -> unit;
  should_forward : context -> bool;
  on_forward : context -> unit;
}

let stateless ~name should_forward =
  {
    name;
    observe_contact = (fun ~time:_ ~a:_ ~b:_ -> ());
    on_create = (fun _ -> ());
    should_forward;
    on_forward = (fun _ -> ());
  }

type factory = Psn_trace.Trace.t -> t
