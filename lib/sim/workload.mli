(** Message workload generation (§6.1).

    The paper generates messages "according to a Poisson process with
    rate one message per 4 seconds", with source and destination chosen
    uniformly at random, during the first two hours of each three-hour
    window (the last hour is margin so every message gets at least an
    hour to be delivered). *)

type spec = {
  rate : float;  (** Messages per second (paper: 0.25). *)
  t_start : float;  (** Generation window start. *)
  t_end : float;  (** Generation window end (paper: 7200 of 10800). *)
  n_nodes : int;  (** Population to draw endpoints from. *)
}

val paper_spec : n_nodes:int -> spec
(** Rate 1/4 s over [\[0, 7200)]. *)

val validate : spec -> (unit, string) result

val generate : ?rng:Psn_prng.Rng.t -> spec -> Message.t list
(** Chronological messages. Raises [Invalid_argument] if the spec fails
    {!validate}. Default rng seed 42. *)

val fixed_count : ?rng:Psn_prng.Rng.t -> spec -> count:int -> Message.t list
(** Exactly [count] messages with uniform creation times over the
    window — used when experiments need a deterministic message budget
    rather than a Poisson draw. *)
