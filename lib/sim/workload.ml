open Psn_prng

type spec = { rate : float; t_start : float; t_end : float; n_nodes : int }

let paper_spec ~n_nodes = { rate = 0.25; t_start = 0.; t_end = 7200.; n_nodes }

let validate spec =
  if not (spec.rate > 0.) then Error "rate must be positive"
  else if not (spec.t_start >= 0. && spec.t_start < spec.t_end) then
    Error "need 0 <= t_start < t_end"
  else if spec.n_nodes < 2 then Error "need at least two nodes"
  else Ok ()

let check spec =
  match validate spec with Ok () -> () | Error msg -> invalid_arg ("Workload: " ^ msg)

let random_pair rng n =
  let src = Rng.int rng n in
  let dst =
    let r = Rng.int rng (n - 1) in
    if r >= src then r + 1 else r
  in
  (src, dst)

let generate ?rng spec =
  check spec;
  let rng = match rng with Some r -> r | None -> Rng.create () in
  let rec go time id acc =
    let time = time +. Rng.exponential rng ~rate:spec.rate in
    if time >= spec.t_end then List.rev acc
    else begin
      let src, dst = random_pair rng spec.n_nodes in
      go time (id + 1) (Message.make ~id ~src ~dst ~t_create:time :: acc)
    end
  in
  go spec.t_start 0 []

let fixed_count ?rng spec ~count =
  check spec;
  if count < 0 then invalid_arg "Workload.fixed_count: negative count";
  let rng = match rng with Some r -> r | None -> Rng.create () in
  let times =
    List.init count (fun _ -> Rng.uniform_in rng ~lo:spec.t_start ~hi:spec.t_end)
    |> List.sort Float.compare
  in
  List.mapi
    (fun id t_create ->
      let src, dst = random_pair rng spec.n_nodes in
      Message.make ~id ~src ~dst ~t_create)
    times
