(** The trace-driven forwarding simulator (§6.1).

    Replays a contact trace chronologically and spreads a message
    workload through it under a forwarding algorithm's copy decisions.

    Semantics, matching the paper's assumptions:
    - transfers are instantaneous, so a node that acquires a copy
      mid-contact immediately re-offers it across all of its currently
      active contacts (cascading closure);
    - buffers are infinite and copies are never dropped: forwarding
      copies the message, the sender keeps its copy;
    - minimal progress: any holder in contact with the destination
      delivers, whatever the algorithm says;
    - a message stops spreading once first delivered (only the first
      delivery is measured). *)

type record = {
  message : Message.t;
  delivered : float option;  (** Absolute first-delivery time. *)
  copies : int;
      (** Transmissions performed for this message: every accepted
          relay transfer plus, when the message is delivered through a
          contact, the final transmission to the destination. A message
          delivered at creation (source already co-located, via an
          active contact) therefore counts at least 1; an undelivered,
          never-forwarded message counts 0. *)
  attempts : int;
      (** Transfers tried for this message, including those lost to
          fault injection. Always [>= copies]; equal to [copies] in a
          fault-free run. The gap is the retransmission overhead a real
          deployment would pay under loss. *)
}

type outcome = {
  algorithm : string;
  records : record array;  (** One per workload message, in message order. *)
  copies : int;  (** Total transmissions: sum of per-record [copies]. *)
  attempts : int;  (** Total attempted transfers: sum of per-record [attempts]. *)
}

type scratch
(** Reusable per-run working memory: the event schedule (structure of
    arrays — unboxed times plus packed event codes), the O(n²)
    adjacency buffers, the holder bitsets and the per-message
    bookkeeping. Allocating this anew dominated short runs, so callers
    that simulate many seeds in a row (notably {!Runner} through
    [Parallel.map_env]) create one scratch per domain and pass it to
    every {!run}.

    Reuse is invisible: {!run} re-establishes every invariant it needs
    on entry (message-indexed state is reset; adjacency state is
    self-cleaning after a completed run and rebuilt explicitly after an
    aborted one; schedule entries beyond the current run are never
    read), so the outcome is bit-identical with a fresh, a reused, or
    an omitted scratch — checked by the determinism tests. A scratch
    holds no result state between calls and may be dropped at any time.

    A scratch is single-domain mutable state: never share one between
    concurrent runs. *)

val scratch : unit -> scratch
(** A fresh, empty scratch. Buffers grow on first use and are retained
    at high-water-mark size across runs. *)

val reset : scratch -> unit
(** Drop every buffer back to empty, releasing the high-water-mark
    memory. Capacity only ever ratchets up across runs — fine for a
    batch sweep, but a long-running [psn serve] session whose window
    population or event volume shrinks permanently would otherwise pin
    peak-sized buffers forever; the serve layer resets between windows
    when it wants the memory back. Observationally identical to
    replacing the scratch with a fresh [scratch ()]: outcomes are
    bit-identical either way (reuse-vs-fresh is pinned by the
    determinism tests). *)

val run :
  ?ttl:float ->
  ?faults:Faults.plan ->
  ?scratch:scratch ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  trace:Psn_trace.Trace.t ->
  messages:Message.t list ->
  Algorithm.t ->
  outcome
(** Simulate one run. Message endpoints must lie inside the trace
    population and creation times inside the trace window (in
    particular, a negative [t_create] is rejected); raises
    [Invalid_argument] otherwise, naming the offending node id and the
    population size.

    [ttl], when given, bounds each message's useful lifetime: copies are
    neither transferred nor delivered past [t_create + ttl] (the paper
    assumes infinite lifetimes; the bound supports expiry ablations).
    Must be positive.

    [faults], when given, injects deterministic failures: the run
    replays the {!Faults.degrade}d contact set (node downtime, contact
    truncation), and each attempted transfer may be lost
    ({!Faults.transfer_fails}) — a lost transfer counts in [attempts]
    but leaves no copy, fires no [on_forward], and delivers nothing.
    Fault verdicts are keyed by (message, endpoints, time), never by
    scheduling order, so faulted runs stay bit-identical for any
    [Parallel] fan-out. Endpoint/window validation happens against the
    pristine trace; the degraded trace keeps its population and
    horizon.

    [scratch], when given, supplies the working buffers (see
    {!type-scratch}); when omitted a private scratch is allocated for
    this run. Results are identical either way.

    [telemetry] (default null, in which case instrumentation compiles
    to no-ops) records an ["engine.run"] span tagged with the algorithm
    name, nested ["engine.setup"] / ["engine.drain"] / ["engine.finish"]
    phase spans, and counters for runs, events drained, transmissions,
    attempts and transfers lost to fault injection. Telemetry describes
    the run and never affects it: the outcome is bit-identical whether
    the sink is null or active. *)

val delay : record -> float option
(** Delivery delay [delivered - t_create]. *)
