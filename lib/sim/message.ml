type t = { id : int; src : Psn_trace.Node.id; dst : Psn_trace.Node.id; t_create : float }

let make ~id ~src ~dst ~t_create =
  if src = dst then invalid_arg "Message.make: src = dst";
  if id < 0 || src < 0 || dst < 0 then invalid_arg "Message.make: negative id";
  if not (Float.is_finite t_create && t_create >= 0.) then
    invalid_arg "Message.make: bad creation time";
  { id; src; dst; t_create }

let pp ppf m =
  Format.fprintf ppf "msg %d: %a -> %a @@ %.1fs" m.id Psn_trace.Node.pp m.src Psn_trace.Node.pp
    m.dst m.t_create
