module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact
module T = Psn_telemetry.Telemetry

type record = { message : Message.t; delivered : float option; copies : int; attempts : int }

type outcome = { algorithm : string; records : record array; copies : int; attempts : int }

type event =
  | Contact_end of int * int
  | Contact_start of int * int
  | Create of Message.t

(* Order events at equal times: ends, then starts, then creations — a
   message created the instant a contact opens may use it. Ties within a
   kind break on endpoint ids / message id so the in-place (unstable)
   array sort below is fully deterministic. *)
let event_rank = function Contact_end _ -> 0 | Contact_start _ -> 1 | Create _ -> 2

let compare_events (t1, e1) (t2, e2) =
  let c = Float.compare t1 t2 in
  if c <> 0 then c
  else
    let c = Int.compare (event_rank e1) (event_rank e2) in
    if c <> 0 then c
    else
      match (e1, e2) with
      | Contact_end (a1, b1), Contact_end (a2, b2)
      | Contact_start (a1, b1), Contact_start (a2, b2) ->
        let c = Int.compare a1 a2 in
        if c <> 0 then c else Int.compare b1 b2
      | Create m1, Create m2 -> Int.compare m1.Message.id m2.Message.id
      | (Contact_end _ | Contact_start _ | Create _), _ -> 0 (* distinct ranks: unreachable *)

(* The schedule is built into a flat array and sorted in place: no cons
   cells, no merge-sort allocation — this is rebuilt once per run and
   was a measurable share of short runs. *)
let build_events trace messages n_msgs =
  let n_events = (2 * Trace.n_contacts trace) + n_msgs in
  let events = Array.make (Int.max n_events 1) (0., Contact_end (0, 0)) in
  let idx = ref 0 in
  let push t e =
    events.(!idx) <- (t, e);
    incr idx
  in
  Trace.iter_contacts trace (fun (c : Contact.t) ->
      push c.Contact.t_start (Contact_start (c.Contact.a, c.Contact.b));
      push c.Contact.t_end (Contact_end (c.Contact.a, c.Contact.b)));
  List.iter (fun (m : Message.t) -> push m.Message.t_create (Create m)) messages;
  let events = if n_events = Array.length events then events else Array.sub events 0 n_events in
  Array.sort compare_events events;
  events

let run ?ttl ?faults ?(telemetry = T.Sink.null) ~trace ~messages algorithm =
  T.with_span telemetry "engine.run"
    ~args:[ ("algorithm", T.Str algorithm.Algorithm.name) ]
  @@ fun () ->
  T.begin_span telemetry "engine.setup";
  (match ttl with
  | Some t when not (t > 0.) ->
    invalid_arg (Printf.sprintf "Engine.run: ttl must be positive (got %g)" t)
  | Some _ | None -> ());
  let expired (m : Message.t) time =
    match ttl with None -> false | Some t -> time > m.Message.t_create +. t
  in
  let n = Trace.n_nodes trace in
  let horizon = Trace.horizon trace in
  List.iter
    (fun (m : Message.t) ->
      let check_endpoint what id =
        if id >= n then
          invalid_arg
            (Printf.sprintf
               "Engine.run: message %d %s n%d outside population of %d node%s" m.Message.id what
               id n
               (if n = 1 then "" else "s"))
      in
      check_endpoint "source" m.Message.src;
      check_endpoint "destination" m.Message.dst;
      if m.Message.t_create < 0. || m.Message.t_create >= horizon then
        invalid_arg "Engine.run: message created outside trace window")
    messages;
  (* The degraded contact set is what the run replays: downtime and
     jitter faults never touch the event loop itself, so the schedule
     stays a pure function of (trace, faults) — order-independent. *)
  let trace = match faults with None -> trace | Some plan -> Faults.degrade plan trace in
  let n_msgs = List.length messages in
  let message_of = Array.make n_msgs None in
  List.iter
    (fun (m : Message.t) ->
      if m.Message.id < 0 || m.Message.id >= n_msgs then
        invalid_arg "Engine.run: message ids must be dense in [0, count)";
      if Option.is_some message_of.(m.Message.id) then invalid_arg "Engine.run: duplicate message id";
      message_of.(m.Message.id) <- Some m)
    messages;
  (* Active contacts as adjacency counts (duplicate contact records are
     tolerated) plus a dense peer set per node with positional
     swap-removal, so contact start/end and the cascade iteration are
     all O(1)/O(deg) instead of O(deg) list scans per event. *)
  let adj = Array.init n (fun _ -> Array.make n 0) in
  let peers = Array.init n (fun _ -> Array.make 0 0) in
  let n_peers = Array.make n 0 in
  let peer_pos = Array.init n (fun _ -> Array.make n (-1)) in
  let add_peer a b =
    if adj.(a).(b) = 0 then begin
      if n_peers.(a) = Array.length peers.(a) then begin
        let bigger = Array.make (Int.max 4 (2 * n_peers.(a))) 0 in
        Array.blit peers.(a) 0 bigger 0 n_peers.(a);
        peers.(a) <- bigger
      end;
      peers.(a).(n_peers.(a)) <- b;
      peer_pos.(a).(b) <- n_peers.(a);
      n_peers.(a) <- n_peers.(a) + 1
    end;
    adj.(a).(b) <- adj.(a).(b) + 1
  in
  let remove_peer a b =
    if adj.(a).(b) > 0 then begin
      adj.(a).(b) <- adj.(a).(b) - 1;
      if adj.(a).(b) = 0 then begin
        let p = peer_pos.(a).(b) in
        let last = n_peers.(a) - 1 in
        let moved = peers.(a).(last) in
        peers.(a).(p) <- moved;
        peer_pos.(a).(moved) <- p;
        peer_pos.(a).(b) <- -1;
        n_peers.(a) <- last
      end
    end
  in
  (* holders.(msg) = bitset of nodes with a copy. *)
  let holders = Array.init n_msgs (fun _ -> Bytes.make ((n + 7) / 8) '\000') in
  let has_copy msg node =
    Char.code (Bytes.get holders.(msg) (node lsr 3)) land (1 lsl (node land 7)) <> 0
  in
  let set_copy msg node =
    let byte = node lsr 3 in
    Bytes.set holders.(msg) byte
      (Char.chr (Char.code (Bytes.get holders.(msg) byte) lor (1 lsl (node land 7))))
  in
  (* Held messages per node: append-only dense index (copies are never
     dropped — infinite buffers). *)
  let held = Array.make n [||] in
  let held_len = Array.make n 0 in
  let push_held node id =
    if held_len.(node) = Array.length held.(node) then begin
      let bigger = Array.make (Int.max 4 (2 * held_len.(node))) 0 in
      Array.blit held.(node) 0 bigger 0 held_len.(node);
      held.(node) <- bigger
    end;
    held.(node).(held_len.(node)) <- id;
    held_len.(node) <- held_len.(node) + 1
  in
  let delivered = Array.make n_msgs None in
  (* Transmissions per message (relay forwards and the final delivery
     transmission alike), plus the running total. [attempts] counts
     every transfer the run tried — under fault injection some attempts
     are lost and never become copies, and the gap is the overhead the
     resilience experiments measure. *)
  let copies_of = Array.make n_msgs 0 in
  let copies = ref 0 in
  let attempts_of = Array.make n_msgs 0 in
  let attempts = ref 0 in
  let transmit id =
    copies_of.(id) <- copies_of.(id) + 1;
    incr copies
  in
  let attempt id =
    attempts_of.(id) <- attempts_of.(id) + 1;
    incr attempts
  in
  let lost (m : Message.t) ~holder ~peer time =
    match faults with
    | None -> false
    | Some plan -> Faults.transfer_fails plan ~msg:m.Message.id ~holder ~peer ~time
  in
  (* Cascading receive: instant transfers mean a fresh copy immediately
     competes for every active contact of its new holder. *)
  let rec receive (m : Message.t) node time =
    let id = m.Message.id in
    if Option.is_none delivered.(id) && not (has_copy id node) then begin
      set_copy id node;
      if node = m.Message.dst then delivered.(id) <- Some time
      else begin
        push_held node id;
        let ps = peers.(node) in
        let len = n_peers.(node) in
        let i = ref 0 in
        while !i < len && Option.is_none delivered.(id) do
          offer m ~holder:node ~peer:ps.(!i) time;
          incr i
        done
      end
    end
  (* One copy, one contact: deliver on meeting the destination (minimal
     progress), otherwise ask the algorithm. Every accepted transfer —
     including the final hop to the destination — is one transmission. *)
  and offer (m : Message.t) ~holder ~peer time =
    let id = m.Message.id in
    if Option.is_none delivered.(id) && not (expired m time) then
      if peer = m.Message.dst then begin
        attempt id;
        if not (lost m ~holder ~peer time) then begin
          transmit id;
          receive m peer time
        end
      end
      else if
        (not (has_copy id peer))
        && algorithm.Algorithm.should_forward { Algorithm.time; holder; peer; message = m }
      then begin
        attempt id;
        (* A lost transfer leaves no copy at the peer, so [on_forward]
           does not fire: replication state (e.g. spray tokens) refers
           to copies that exist, not copies that were tried. *)
        if not (lost m ~holder ~peer time) then begin
          algorithm.Algorithm.on_forward { Algorithm.time; holder; peer; message = m };
          transmit id;
          receive m peer time
        end
      end
  in
  let exchange a b time =
    (* Offer everything [a] holds across the new contact with [b]. The
       length is snapshotted: copies received during the exchange are
       appended past it and offer themselves through their own cascade. *)
    let snapshot = held.(a) in
    let len = held_len.(a) in
    for i = 0 to len - 1 do
      match message_of.(snapshot.(i)) with
      | None -> ()
      | Some m -> offer m ~holder:a ~peer:b time
    done
  in
  let events = build_events trace messages n_msgs in
  T.end_span telemetry;
  T.count telemetry "engine.runs" 1;
  T.count telemetry "engine.events" (Array.length events);
  T.with_span telemetry "engine.drain" (fun () ->
      Array.iter
        (fun (time, event) ->
          match event with
          | Contact_end (a, b) ->
            remove_peer a b;
            remove_peer b a
          | Contact_start (a, b) ->
            algorithm.Algorithm.observe_contact ~time ~a ~b;
            add_peer a b;
            add_peer b a;
            exchange a b time;
            exchange b a time
          | Create m ->
            algorithm.Algorithm.on_create m;
            receive m m.Message.src time)
        events);
  T.count telemetry "engine.transmissions" !copies;
  T.count telemetry "engine.attempts" !attempts;
  T.count telemetry "engine.transfers_lost" (!attempts - !copies);
  T.with_span telemetry "engine.finish" (fun () ->
      let records =
        List.map
          (fun (m : Message.t) ->
            {
              message = m;
              delivered = delivered.(m.Message.id);
              copies = copies_of.(m.Message.id);
              attempts = attempts_of.(m.Message.id);
            })
          messages
        |> Array.of_list
      in
      { algorithm = algorithm.Algorithm.name; records; copies = !copies; attempts = !attempts })

let delay record =
  Option.map (fun t -> t -. record.message.Message.t_create) record.delivered
