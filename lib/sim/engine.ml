module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact
module T = Psn_telemetry.Telemetry

type record = { message : Message.t; delivered : float option; copies : int; attempts : int }

type outcome = { algorithm : string; records : record array; copies : int; attempts : int }

(* The event schedule is stored as a structure of arrays — a flat
   unboxed float array of times and a flat int array of packed event
   codes — so building and draining it allocates nothing per event (no
   tuple, no boxed float, no variant).

   A code packs (rank, a, b) into one 63-bit int:

     rank (2 bits) | a (28 bits) | b (28 bits)

   with rank 0 = contact end, 1 = contact start, 2 = message creation
   (a unused, b = message id). Events at equal times order ends, then
   starts, then creations — a message created the instant a contact
   opens may use it — and ties within a kind break on endpoint ids /
   message id, exactly the lexicographic order of the packed code, so
   comparing (time, code) pairs reproduces the documented drain order
   and the sort below is fully deterministic. *)
let id_bits = 28

let id_mask = (1 lsl id_bits) - 1

let code_end a b = (a lsl id_bits) lor b

let code_start a b = (1 lsl (2 * id_bits)) lor (a lsl id_bits) lor b

let code_create id = (2 lsl (2 * id_bits)) lor id

(* Reusable per-run buffers. A run needs O(n²) adjacency state and
   O(n + messages) bookkeeping; allocating it anew for every seed
   dominated short runs, so a [scratch] owns all of it and consecutive
   runs (the per-domain task streams of [Runner]) reuse it. Reuse is
   invisible by construction:

   - the message-indexed arrays, the holder bitset and the held-list
     lengths are reset on every acquisition;
   - the node-indexed adjacency state ([s_adj], [s_peer_pos],
     [s_n_peers]) is self-cleaning — every contact start the drain
     replays is matched by its end, which restores the all-empty
     state — and [s_clean] records whether the previous drain ran to
     completion; an exception mid-drain leaves [s_clean = false] and
     the next acquisition rebuilds the invariant explicitly;
   - event times/codes beyond the current run's count are never read
     (the sort and the drain touch exactly [0, n_events)).

   A scratch must only ever be used by one domain at a time; [Runner]
   creates one per worker through [Parallel.map_env]. *)
type scratch = {
  mutable s_nodes : int;  (* rows allocated in the node-indexed buffers *)
  mutable s_adj : int array array;
  mutable s_peers : int array array;
  mutable s_n_peers : int array;
  mutable s_peer_pos : int array array;
  mutable s_held : int array array;
  mutable s_held_len : int array;
  mutable s_msgs : int;  (* capacity of the message-indexed buffers *)
  mutable s_message_of : Message.t option array;
  mutable s_stride : int;  (* holder-bitset bytes per message *)
  mutable s_holders : Bytes.t;
  mutable s_delivered : float array;  (* nan = not delivered *)
  mutable s_copies_of : int array;
  mutable s_attempts_of : int array;
  mutable s_ev_cap : int;
  mutable s_ev_time : float array;
  mutable s_ev_code : int array;
  mutable s_clean : bool;  (* adjacency state is all-empty *)
}

let scratch () =
  {
    s_nodes = 0;
    s_adj = [||];
    s_peers = [||];
    s_n_peers = [||];
    s_peer_pos = [||];
    s_held = [||];
    s_held_len = [||];
    s_msgs = 0;
    s_message_of = [||];
    s_stride = 0;
    s_holders = Bytes.empty;
    s_delivered = [||];
    s_copies_of = [||];
    s_attempts_of = [||];
    s_ev_cap = 0;
    s_ev_time = [||];
    s_ev_code = [||];
    s_clean = true;
  }

(* Drop every buffer back to empty. Capacity only ever ratchets up
   (high-water-mark retention), which is right for batch sweeps but
   wrong for an indefinitely-lived server whose window population or
   event volume can shrink permanently; [psn serve] calls this when it
   wants the high-water memory back. Equivalent to replacing the
   scratch with [scratch ()] — the next [run] rebuilds from scratch. *)
let reset s =
  s.s_nodes <- 0;
  s.s_adj <- [||];
  s.s_peers <- [||];
  s.s_n_peers <- [||];
  s.s_peer_pos <- [||];
  s.s_held <- [||];
  s.s_held_len <- [||];
  s.s_msgs <- 0;
  s.s_message_of <- [||];
  s.s_stride <- 0;
  s.s_holders <- Bytes.empty;
  s.s_delivered <- [||];
  s.s_copies_of <- [||];
  s.s_attempts_of <- [||];
  s.s_ev_cap <- 0;
  s.s_ev_time <- [||];
  s.s_ev_code <- [||];
  s.s_clean <- true

(* Windowed-reuse audit (the serve layer reuses one scratch across
   runs whose populations, message counts and event volumes all vary
   as the window slides; each re-entry invariant below is what makes
   that bit-identical to fresh scratches, and each is pinned by the
   scratch-reuse regression tests):

   - population GROWS: the node-indexed buffers are reallocated at the
     new size (fresh all-empty adjacency, [s_clean] true);
   - population SHRINKS: buffers keep high-water size, but every loop
     indexes through ids < n only, the dirty rebuild and the held-list
     reset sweep the full allocated range [0, s_nodes), and the
     self-cleaning invariant covers whatever rows a bigger previous
     run touched — stale rows beyond n are all-empty, not read;
   - a node id EVICTED from the serve window and later REINSERTED is
     just an id with no contacts in some run and contacts in a later
     one: node state is positional and rebuilt per run (held lengths
     reset on acquisition, adjacency self-cleaning), so no residue
     crosses runs;
   - message-count changes: [ensure_msgs] resets exactly [0, n_msgs)
     of every message-indexed array and zeroes exactly the first
     [n_msgs * stride] holder-bitset bytes — and [stride] is
     recomputed from the current population, so a population change
     re-strides the bitset consistently;
   - event-volume changes: the sort and the drain touch exactly
     [0, n_events); heapsort's swap sequence is a pure function of the
     key sequence, so garbage beyond the current run's count can never
     influence the order. *)
let ensure_nodes s n =
  if n > s.s_nodes then begin
    s.s_adj <- Array.init n (fun _ -> Array.make n 0);
    s.s_peer_pos <- Array.init n (fun _ -> Array.make n (-1));
    s.s_peers <- Array.make n [||];
    s.s_n_peers <- Array.make n 0;
    s.s_held <- Array.make n [||];
    s.s_held_len <- Array.make n 0;
    s.s_nodes <- n;
    s.s_clean <- true
  end
  else if not s.s_clean then begin
    (* The previous run raised mid-drain: rebuild the all-empty
       adjacency invariant a completed drain restores by itself. *)
    for a = 0 to s.s_nodes - 1 do
      Array.fill s.s_adj.(a) 0 (Array.length s.s_adj.(a)) 0;
      Array.fill s.s_peer_pos.(a) 0 (Array.length s.s_peer_pos.(a)) (-1)
    done;
    Array.fill s.s_n_peers 0 s.s_nodes 0;
    s.s_clean <- true
  end;
  (* Held lists never self-clean (copies persist to the end of a run),
     so their lengths are reset on every acquisition. *)
  Array.fill s.s_held_len 0 s.s_nodes 0

let ensure_msgs s n_msgs ~stride =
  if n_msgs > s.s_msgs then begin
    s.s_message_of <- Array.make n_msgs None;
    s.s_delivered <- Array.make n_msgs Float.nan;
    s.s_copies_of <- Array.make n_msgs 0;
    s.s_attempts_of <- Array.make n_msgs 0;
    s.s_msgs <- n_msgs
  end
  else begin
    Array.fill s.s_message_of 0 n_msgs None;
    Array.fill s.s_delivered 0 n_msgs Float.nan;
    Array.fill s.s_copies_of 0 n_msgs 0;
    Array.fill s.s_attempts_of 0 n_msgs 0
  end;
  s.s_stride <- stride;
  let bytes = n_msgs * stride in
  if bytes > Bytes.length s.s_holders then s.s_holders <- Bytes.make bytes '\000'
  else Bytes.fill s.s_holders 0 bytes '\000'

let ensure_events s cap =
  if cap > s.s_ev_cap then begin
    let cap = Int.max cap (2 * s.s_ev_cap) in
    s.s_ev_time <- Array.make cap 0.;
    s.s_ev_code <- Array.make cap 0;
    s.s_ev_cap <- cap
  end

(* In-place heapsort of the first [len] events, co-sorting the time
   and code arrays on the (time, code) key. Heapsort allocates nothing
   and its swap sequence is a pure function of the key sequence (equal
   keys are indistinguishable), so the sorted order is deterministic
   whatever buffer contents a previous run left past [len]. *)
let[@psn.hot] sort_events time code len =
  let less i j =
    let c = Float.compare time.(i) time.(j) in
    if c <> 0 then c < 0 else code.(i) < code.(j)
  in
  let swap i j =
    let t = time.(i) in
    time.(i) <- time.(j);
    time.(j) <- t;
    let k = code.(i) in
    code.(i) <- code.(j);
    code.(j) <- k
  in
  let rec sift_down root size =
    let l = (2 * root) + 1 in
    if l < size then begin
      let largest = if less root l then l else root in
      let r = l + 1 in
      let largest = if r < size && less largest r then r else largest in
      if largest <> root then begin
        swap root largest;
        sift_down largest size
      end
    end
  in
  for root = (len / 2) - 1 downto 0 do
    sift_down root len
  done;
  for last = len - 1 downto 1 do
    swap 0 last;
    sift_down 0 last
  done

(* The schedule is written into the scratch buffers and sorted in
   place: no cons cells, no per-event allocation — this is rebuilt
   once per run and was a measurable share of short runs. *)
let[@psn.hot] build_events s trace messages n_msgs =
  let n_events = (2 * Trace.n_contacts trace) + n_msgs in
  (* The hot contract here is no allocation per *event*; the four
     suppressed sites below are once per run: the scratch grow path,
     one cursor cell, and the two walker closures. *)
  (ensure_events s n_events) [@lint.allow "hot-path-alloc"];
  let time = s.s_ev_time and code = s.s_ev_code in
  let idx = (ref 0) [@lint.allow "hot-path-alloc"] in
  let push t c =
    time.(!idx) <- t;
    code.(!idx) <- c;
    incr idx
  in
  Trace.iter_contacts trace
    ((fun (c : Contact.t) ->
       push c.Contact.t_start (code_start c.Contact.a c.Contact.b);
       push c.Contact.t_end (code_end c.Contact.a c.Contact.b)) [@lint.allow "hot-path-alloc"]);
  List.iter
    ((fun (m : Message.t) -> push m.Message.t_create (code_create m.Message.id))
    [@lint.allow "hot-path-alloc"])
    messages;
  sort_events time code n_events;
  n_events

let run ?ttl ?faults ?scratch:reuse ?(telemetry = T.Sink.null) ~trace ~messages algorithm =
  T.with_span telemetry "engine.run"
    ~args:[ ("algorithm", T.Str algorithm.Algorithm.name) ]
  @@ fun () ->
  T.begin_span telemetry "engine.setup";
  (match ttl with
  | Some t when not (t > 0.) ->
    invalid_arg (Printf.sprintf "Engine.run: ttl must be positive (got %g)" t)
  | Some _ | None -> ());
  let expired (m : Message.t) time =
    match ttl with None -> false | Some t -> time > m.Message.t_create +. t
  in
  let n = Trace.n_nodes trace in
  let horizon = Trace.horizon trace in
  List.iter
    (fun (m : Message.t) ->
      let check_endpoint what id =
        if id >= n then
          invalid_arg
            (Printf.sprintf
               "Engine.run: message %d %s n%d outside population of %d node%s" m.Message.id what
               id n
               (if n = 1 then "" else "s"))
      in
      check_endpoint "source" m.Message.src;
      check_endpoint "destination" m.Message.dst;
      if m.Message.t_create < 0. || m.Message.t_create >= horizon then
        invalid_arg "Engine.run: message created outside trace window")
    messages;
  (* The degraded contact set is what the run replays: downtime and
     jitter faults never touch the event loop itself, so the schedule
     stays a pure function of (trace, faults) — order-independent. *)
  let trace = match faults with None -> trace | Some plan -> Faults.degrade plan trace in
  let n_msgs = List.length messages in
  if n > id_mask || n_msgs > id_mask then
    invalid_arg "Engine.run: population or workload exceeds the 2^28 packed-event limit";
  let s = match reuse with Some s -> s | None -> scratch () in
  ensure_nodes s n;
  ensure_msgs s n_msgs ~stride:((n + 7) / 8);
  let message_of = s.s_message_of in
  List.iter
    (fun (m : Message.t) ->
      if m.Message.id < 0 || m.Message.id >= n_msgs then
        invalid_arg "Engine.run: message ids must be dense in [0, count)";
      if Option.is_some message_of.(m.Message.id) then invalid_arg "Engine.run: duplicate message id";
      message_of.(m.Message.id) <- Some m)
    messages;
  (* Active contacts as adjacency counts (duplicate contact records are
     tolerated) plus a dense peer set per node with positional
     swap-removal, so contact start/end and the cascade iteration are
     all O(1)/O(deg) instead of O(deg) list scans per event. *)
  let adj = s.s_adj in
  let peers = s.s_peers in
  let n_peers = s.s_n_peers in
  let peer_pos = s.s_peer_pos in
  let add_peer a b =
    if adj.(a).(b) = 0 then begin
      if n_peers.(a) = Array.length peers.(a) then begin
        let bigger = Array.make (Int.max 4 (2 * n_peers.(a))) 0 in
        Array.blit peers.(a) 0 bigger 0 n_peers.(a);
        peers.(a) <- bigger
      end;
      peers.(a).(n_peers.(a)) <- b;
      peer_pos.(a).(b) <- n_peers.(a);
      n_peers.(a) <- n_peers.(a) + 1
    end;
    adj.(a).(b) <- adj.(a).(b) + 1
  in
  let remove_peer a b =
    if adj.(a).(b) > 0 then begin
      adj.(a).(b) <- adj.(a).(b) - 1;
      if adj.(a).(b) = 0 then begin
        let p = peer_pos.(a).(b) in
        let last = n_peers.(a) - 1 in
        let moved = peers.(a).(last) in
        peers.(a).(p) <- moved;
        peer_pos.(a).(moved) <- p;
        peer_pos.(a).(b) <- -1;
        n_peers.(a) <- last
      end
    end
  in
  (* One flat bitset row of [stride] bytes per message: bit [node] of
     row [msg] is set when the node holds a copy. *)
  let holders = s.s_holders in
  let stride = s.s_stride in
  let has_copy msg node =
    Char.code (Bytes.get holders ((msg * stride) + (node lsr 3))) land (1 lsl (node land 7)) <> 0
  in
  let set_copy msg node =
    let byte = (msg * stride) + (node lsr 3) in
    Bytes.set holders byte (Char.chr (Char.code (Bytes.get holders byte) lor (1 lsl (node land 7))))
  in
  (* Held messages per node: append-only dense index (copies are never
     dropped — infinite buffers). *)
  let held = s.s_held in
  let held_len = s.s_held_len in
  let push_held node id =
    if held_len.(node) = Array.length held.(node) then begin
      let bigger = Array.make (Int.max 4 (2 * held_len.(node))) 0 in
      Array.blit held.(node) 0 bigger 0 held_len.(node);
      held.(node) <- bigger
    end;
    held.(node).(held_len.(node)) <- id;
    held_len.(node) <- held_len.(node) + 1
  in
  (* First-delivery time per message, nan while undelivered — a flat
     float array, no option boxing on the hot path. *)
  let delivered = s.s_delivered in
  let is_delivered id = not (Float.is_nan delivered.(id)) in
  (* Transmissions per message (relay forwards and the final delivery
     transmission alike), plus the running total. [attempts] counts
     every transfer the run tried — under fault injection some attempts
     are lost and never become copies, and the gap is the overhead the
     resilience experiments measure. *)
  let copies_of = s.s_copies_of in
  let copies = ref 0 in
  let attempts_of = s.s_attempts_of in
  let attempts = ref 0 in
  let transmit id =
    copies_of.(id) <- copies_of.(id) + 1;
    incr copies
  in
  let attempt id =
    attempts_of.(id) <- attempts_of.(id) + 1;
    incr attempts
  in
  let lost (m : Message.t) ~holder ~peer time =
    match faults with
    | None -> false
    | Some plan -> Faults.transfer_fails plan ~msg:m.Message.id ~holder ~peer ~time
  in
  (* Cascading receive: instant transfers mean a fresh copy immediately
     competes for every active contact of its new holder. *)
  let rec receive (m : Message.t) node time =
    let id = m.Message.id in
    if (not (is_delivered id)) && not (has_copy id node) then begin
      set_copy id node;
      if node = m.Message.dst then delivered.(id) <- time
      else begin
        push_held node id;
        let ps = peers.(node) in
        let len = n_peers.(node) in
        let i = ref 0 in
        while !i < len && not (is_delivered id) do
          offer m ~holder:node ~peer:ps.(!i) time;
          incr i
        done
      end
    end
  (* One copy, one contact: deliver on meeting the destination (minimal
     progress), otherwise ask the algorithm. Every accepted transfer —
     including the final hop to the destination — is one transmission. *)
  and offer (m : Message.t) ~holder ~peer time =
    let id = m.Message.id in
    if (not (is_delivered id)) && not (expired m time) then
      if peer = m.Message.dst then begin
        attempt id;
        if not (lost m ~holder ~peer time) then begin
          transmit id;
          receive m peer time
        end
      end
      else if
        (not (has_copy id peer))
        && algorithm.Algorithm.should_forward { Algorithm.time; holder; peer; message = m }
      then begin
        attempt id;
        (* A lost transfer leaves no copy at the peer, so [on_forward]
           does not fire: replication state (e.g. spray tokens) refers
           to copies that exist, not copies that were tried. *)
        if not (lost m ~holder ~peer time) then begin
          algorithm.Algorithm.on_forward { Algorithm.time; holder; peer; message = m };
          transmit id;
          receive m peer time
        end
      end
  in
  let exchange a b time =
    (* Offer everything [a] holds across the new contact with [b]. The
       length is snapshotted: copies received during the exchange are
       appended past it and offer themselves through their own cascade. *)
    let snapshot = held.(a) in
    let len = held_len.(a) in
    for i = 0 to len - 1 do
      match message_of.(snapshot.(i)) with
      | None -> ()
      | Some m -> offer m ~holder:a ~peer:b time
    done
  in
  let n_events = build_events s trace messages n_msgs in
  T.end_span telemetry;
  T.count telemetry "engine.runs" 1;
  T.count telemetry "engine.events" n_events;
  (* An algorithm callback may raise out of the drain, leaving the
     adjacency state mid-flight; the flag makes the next acquisition
     rebuild it instead of trusting the self-cleaning invariant. *)
  s.s_clean <- false;
  T.with_span telemetry "engine.drain" (fun () ->
      let ev_time = s.s_ev_time and ev_code = s.s_ev_code in
      for i = 0 to n_events - 1 do
        let time = ev_time.(i) in
        let c = ev_code.(i) in
        let rank = c lsr (2 * id_bits) in
        if rank = 0 then begin
          let a = (c lsr id_bits) land id_mask and b = c land id_mask in
          remove_peer a b;
          remove_peer b a
        end
        else if rank = 1 then begin
          let a = (c lsr id_bits) land id_mask and b = c land id_mask in
          (* Chaos hook: lets a plan kill or fail a run mid-drain, which
             is exactly the state the scratch's dirty-rebuild path
             ([s_clean]) exists to recover from. Keyless on purpose —
             no per-event allocation on the disabled path; use hit
             rules ([@N]) to pick a specific contact. *)
          Psn_robust.Failpoint.trigger "engine.contact";
          algorithm.Algorithm.observe_contact ~time ~a ~b;
          add_peer a b;
          add_peer b a;
          exchange a b time;
          exchange b a time
        end
        else begin
          match message_of.(c land id_mask) with
          | Some m ->
            algorithm.Algorithm.on_create m;
            receive m m.Message.src time
          | None -> assert false (* ids validated dense above *)
        end
      done);
  s.s_clean <- true;
  T.count telemetry "engine.transmissions" !copies;
  T.count telemetry "engine.attempts" !attempts;
  T.count telemetry "engine.transfers_lost" (!attempts - !copies);
  T.with_span telemetry "engine.finish" (fun () ->
      let records =
        List.map
          (fun (m : Message.t) ->
            let id = m.Message.id in
            {
              message = m;
              delivered = (if Float.is_nan delivered.(id) then None else Some delivered.(id));
              copies = copies_of.(id);
              attempts = attempts_of.(id);
            })
          messages
        |> Array.of_list
      in
      { algorithm = algorithm.Algorithm.name; records; copies = !copies; attempts = !attempts })

let delay record =
  Option.map (fun t -> t -. record.message.Message.t_create) record.delivered
