module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact

type record = { message : Message.t; delivered : float option }

type outcome = { algorithm : string; records : record array; copies : int }

type event =
  | Contact_end of int * int
  | Contact_start of int * int
  | Create of Message.t

(* Order events at equal times: ends, then starts, then creations — a
   message created the instant a contact opens may use it. *)
let event_rank = function Contact_end _ -> 0 | Contact_start _ -> 1 | Create _ -> 2

let build_events trace messages =
  let events = ref [] in
  Trace.iter_contacts trace (fun (c : Contact.t) ->
      events := (c.Contact.t_start, Contact_start (c.Contact.a, c.Contact.b)) :: !events;
      events := (c.Contact.t_end, Contact_end (c.Contact.a, c.Contact.b)) :: !events);
  List.iter (fun (m : Message.t) -> events := (m.Message.t_create, Create m) :: !events) messages;
  let compare_events (t1, e1) (t2, e2) =
    let c = Float.compare t1 t2 in
    if c <> 0 then c else Int.compare (event_rank e1) (event_rank e2)
  in
  List.sort compare_events !events

let run ?ttl ~trace ~messages algorithm =
  (match ttl with
  | Some t when not (t > 0.) -> invalid_arg "Engine.run: ttl must be positive"
  | Some _ | None -> ());
  let expired (m : Message.t) time =
    match ttl with None -> false | Some t -> time > m.Message.t_create +. t
  in
  let n = Trace.n_nodes trace in
  let horizon = Trace.horizon trace in
  List.iter
    (fun (m : Message.t) ->
      if m.Message.src >= n || m.Message.dst >= n then
        invalid_arg "Engine.run: message endpoint outside population";
      if m.Message.t_create >= horizon then
        invalid_arg "Engine.run: message created outside trace window")
    messages;
  let n_msgs = List.length messages in
  let message_of = Array.make n_msgs None in
  List.iter
    (fun (m : Message.t) ->
      if m.Message.id < 0 || m.Message.id >= n_msgs then
        invalid_arg "Engine.run: message ids must be dense in [0, count)";
      if message_of.(m.Message.id) <> None then invalid_arg "Engine.run: duplicate message id";
      message_of.(m.Message.id) <- Some m)
    messages;
  (* Per-node active peers (multiset: duplicate records are tolerated). *)
  let active = Array.make n [] in
  (* holders.(msg) = bitset of nodes with a copy. *)
  let holders = Array.init n_msgs (fun _ -> Bytes.make ((n + 7) / 8) '\000') in
  let has_copy msg node =
    Char.code (Bytes.get holders.(msg) (node lsr 3)) land (1 lsl (node land 7)) <> 0
  in
  let set_copy msg node =
    let byte = node lsr 3 in
    Bytes.set holders.(msg) byte
      (Char.chr (Char.code (Bytes.get holders.(msg) byte) lor (1 lsl (node land 7))))
  in
  let held = Array.make n [] in
  let delivered = Array.make n_msgs None in
  let copies = ref 0 in
  (* Cascading receive: instant transfers mean a fresh copy immediately
     competes for every active contact of its new holder. *)
  let rec receive (m : Message.t) node time =
    let id = m.Message.id in
    if delivered.(id) = None && not (has_copy id node) then begin
      set_copy id node;
      if node = m.Message.dst then delivered.(id) <- Some time
      else begin
        held.(node) <- id :: held.(node);
        List.iter (fun peer -> offer m ~holder:node ~peer time) active.(node)
      end
    end
  (* One copy, one contact: deliver on meeting the destination (minimal
     progress), otherwise ask the algorithm. *)
  and offer (m : Message.t) ~holder ~peer time =
    let id = m.Message.id in
    if delivered.(id) = None && not (expired m time) then
      if peer = m.Message.dst then receive m peer time
      else if
        (not (has_copy id peer))
        && algorithm.Algorithm.should_forward { Algorithm.time; holder; peer; message = m }
      then begin
        algorithm.Algorithm.on_forward { Algorithm.time; holder; peer; message = m };
        incr copies;
        receive m peer time
      end
  in
  let exchange a b time =
    (* Offer everything [a] holds across the new contact with [b]. *)
    let snapshot = held.(a) in
    List.iter
      (fun id ->
        match message_of.(id) with
        | None -> ()
        | Some m -> offer m ~holder:a ~peer:b time)
      snapshot
  in
  let remove_one x xs =
    let rec go acc = function
      | [] -> List.rev acc
      | y :: rest -> if y = x then List.rev_append acc rest else go (y :: acc) rest
    in
    go [] xs
  in
  List.iter
    (fun (time, event) ->
      match event with
      | Contact_end (a, b) ->
        active.(a) <- remove_one b active.(a);
        active.(b) <- remove_one a active.(b)
      | Contact_start (a, b) ->
        algorithm.Algorithm.observe_contact ~time ~a ~b;
        active.(a) <- b :: active.(a);
        active.(b) <- a :: active.(b);
        exchange a b time;
        exchange b a time
      | Create m ->
        algorithm.Algorithm.on_create m;
        receive m m.Message.src time)
    (build_events trace messages);
  let records =
    List.map (fun (m : Message.t) -> { message = m; delivered = delivered.(m.Message.id) }) messages
    |> Array.of_list
  in
  { algorithm = algorithm.Algorithm.name; records; copies = !copies }

let delay record =
  Option.map (fun t -> t -. record.message.Message.t_create) record.delivered
