(** Deterministic fault injection for the forwarding simulator.

    The paper's robustness thesis — path explosion makes opportunistic
    forwarding insensitive to individual failures — is only testable if
    failures exist. This module supplies them as a {e compiled plan}:
    every fault decision is a pure function of the plan's seed and the
    identity of the thing failing, never of scheduling order, so faulted
    runs keep the {!Parallel} bit-identical determinism contract
    ([--jobs N] cannot change any result).

    Three composable fault channels:

    - {b transfer loss}: each transfer the engine would perform (an
      algorithm-approved relay copy or a delivery transmission) fails
      with probability [loss]. The decision is keyed by
      [(message, holder, peer, time)], so a retry across a later contact
      draws a fresh, independent verdict while replays of the same
      instant are stable.
    - {b node downtime}: each node crashes as a Poisson process of rate
      [crash_rate] and stays down for an exponential duration of mean
      [down_time]; contacts touching a down node are suppressed, or
      truncated to the sub-intervals where both endpoints are up. A
      node's buffer survives its crashes (reboot, not wipe): copies held
      before going down are held again on recovery.
    - {b contact truncation jitter}: each surviving contact is shortened
      at its end by a uniform fraction of its duration drawn from
      [\[0, jitter\]], keyed by the contact's identity — modelling
      scan-granularity and link-quality losses at contact edges.

    Downtime and jitter act on the {e contact set} ({!degrade}), which
    is how they also reach the path layer: enumerating over the degraded
    trace measures how many of the paper's exploded paths survive the
    faults. Transfer loss acts at {!transfer_fails} inside the engine. *)

type spec = {
  loss : float;  (** Per-transfer failure probability, in [\[0, 1)]. *)
  crash_rate : float;
      (** Per-node crash intensity in crashes per second, [>= 0]. *)
  down_time : float;
      (** Mean downtime per crash, seconds, [>= 0]. Zero disables
          downtime even when [crash_rate] is positive. *)
  jitter : float;
      (** Maximum fraction of a contact's duration truncated from its
          end, in [\[0, 1\]]. *)
  seed : int64;  (** Root of every fault decision in the plan. *)
}

val none : spec
(** All channels off ([loss = 0], [crash_rate = 0], [down_time = 0],
    [jitter = 0], seed 0). *)

val scale : float -> spec -> spec
(** [scale x spec] multiplies [loss], [crash_rate] and [jitter] by [x]
    (clamping [loss] and [jitter] into their domains) and keeps
    [down_time] and [seed] — one knob for intensity sweeps. Requires
    [x >= 0]. *)

val validate : spec -> (unit, string) result

val is_null : spec -> bool
(** [true] when the spec can produce no fault at all. *)

val pp_spec : Format.formatter -> spec -> unit

type plan
(** A compiled plan: the spec plus per-node downtime intervals, fixed at
    compile time. Immutable — safe to share across domains. *)

val compile : n_nodes:int -> horizon:float -> spec -> plan
(** Compile [spec] for a population of [n_nodes] nodes observed over
    [\[0, horizon)]. Raises [Invalid_argument] if the spec does not
    {!validate} or the dimensions are non-positive. *)

val spec_of : plan -> spec

val downtime : plan -> Psn_trace.Node.id -> (float * float) list
(** The node's down intervals, disjoint and ascending, clipped to the
    horizon. Raises [Invalid_argument] on an out-of-range node. *)

val node_down : plan -> Psn_trace.Node.id -> float -> bool
(** Is the node inside one of its down intervals at this time? *)

val degrade : plan -> Psn_trace.Trace.t -> Psn_trace.Trace.t
(** Apply the contact-set channels: truncate each contact by its jitter
    draw, then clip it against both endpoints' downtime (a contact
    spanning a down interval splits into its surviving sub-intervals).
    Population, horizon and node kinds are preserved. Returns the trace
    unchanged (physically) when both channels are off. Raises
    [Invalid_argument] if the trace population differs from the plan's. *)

val transfer_fails : plan -> msg:int -> holder:int -> peer:int -> time:float -> bool
(** The loss channel's verdict for one attempted transfer. Pure:
    identical arguments always return the same verdict. *)
