type run_spec = { workload : Workload.spec; seeds : int64 list }

let default_seeds k = List.init k (fun i -> Int64.of_int (1000 + i))

(* Each task owns its RNG (created from the task's seed) and its
   algorithm instance, so runs are independent and safe to fan out
   across domains; results come back in seed order either way. The
   fault plan, when given, is shared read-only: its verdicts are pure
   functions of (plan, key), so sharing cannot couple the runs. *)
let run_seed ?faults ~trace ~spec ~factory seed =
  let rng = Psn_prng.Rng.create ~seed () in
  let messages = Workload.generate ~rng spec.workload in
  Engine.run ?faults ~trace ~messages (factory trace)

(* Memoized fan-out over an arbitrary task grid. The cache is only
   touched from the calling domain — all lookups happen before the
   parallel section and all stores after it — so cache backends need
   no synchronisation and results are stitched back by index, keeping
   the bit-identical [jobs] contract regardless of the hit pattern. *)
let cached_map ?jobs ~find ~store ~compute tasks =
  let n = Array.length tasks in
  let cached = Array.map find tasks in
  let miss_idx =
    Array.of_list
      (List.filter
         (fun i -> Option.is_none cached.(i))
         (List.init n (fun i -> i)))
  in
  let computed =
    Parallel.map ?jobs (fun i -> compute tasks.(i)) miss_idx
  in
  Array.iteri (fun j i -> store tasks.(i) computed.(j)) miss_idx;
  let rank = Array.make n (-1) in
  Array.iteri (fun j i -> rank.(i) <- j) miss_idx;
  Array.init n (fun i ->
      match cached.(i) with
      | Some v -> v
      | None -> computed.(rank.(i)))

let outcomes ?jobs ?faults ?store ~trace ~spec ~factory () =
  if List.is_empty spec.seeds then invalid_arg "Runner: need at least one seed";
  let seeds = Array.of_list spec.seeds in
  match store with
  | None ->
    Parallel.map_list ?jobs (run_seed ?faults ~trace ~spec ~factory) spec.seeds
  | Some cache ->
    cached_map ?jobs
      ~find:(fun seed -> cache.Cache.find ~seed)
      ~store:(fun seed outcome -> cache.Cache.store ~seed outcome)
      ~compute:(run_seed ?faults ~trace ~spec ~factory)
      seeds
    |> Array.to_list

let run_algorithm ?jobs ?faults ?store ~trace ~spec ~factory () =
  Metrics.pool (outcomes ?jobs ?faults ?store ~trace ~spec ~factory ())

let outcomes_many ?jobs ?faults ?stores ~trace ~spec ~factories () =
  if List.is_empty spec.seeds then invalid_arg "Runner: need at least one seed";
  let seeds = Array.of_list spec.seeds in
  let facs = Array.of_list factories in
  let n_seeds = Array.length seeds in
  let caches =
    match stores with
    | None -> None
    | Some cs ->
      if List.length cs <> Array.length facs then
        invalid_arg "Runner: need one cache per factory";
      Some (Array.of_list cs)
  in
  (* Flatten the (factory, seed) grid into one task array so a few slow
     algorithms cannot leave workers idle, then regroup by factory. *)
  let tasks =
    Array.init
      (Array.length facs * n_seeds)
      (fun i -> (i / n_seeds, seeds.(i mod n_seeds)))
  in
  let compute (fi, seed) = run_seed ?faults ~trace ~spec ~factory:facs.(fi) seed in
  let outs =
    match caches with
    | None -> Parallel.map ?jobs compute tasks
    | Some caches ->
      cached_map ?jobs
        ~find:(fun (fi, seed) -> caches.(fi).Cache.find ~seed)
        ~store:(fun (fi, seed) outcome -> caches.(fi).Cache.store ~seed outcome)
        ~compute tasks
  in
  List.init (Array.length facs) (fun fi ->
      List.init n_seeds (fun si -> outs.((fi * n_seeds) + si)))

let run_many ?jobs ?faults ?stores ~trace ~spec ~factories () =
  List.map Metrics.pool
    (outcomes_many ?jobs ?faults ?stores ~trace ~spec ~factories ())
