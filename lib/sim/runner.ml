module T = Psn_telemetry.Telemetry

type run_spec = { workload : Workload.spec; seeds : int64 list }

let default_seeds k = List.init k (fun i -> Int64.of_int (1000 + i))

(* Each task owns its RNG (created from the task's seed) and its
   algorithm instance, so runs are independent and safe to fan out
   across domains; results come back in seed order either way. The
   fault plan, when given, is shared read-only: its verdicts are pure
   functions of (plan, key), so sharing cannot couple the runs. The
   scratch is the worker's: reused across the consecutive tasks of one
   domain, never shared between domains.

   The factory span nests inside the task span so algorithm
   construction is attributed to the task that paid for it in profile
   totals; the algorithm name (known only after the factory returns)
   is carried by the nested engine.run span. *)
let run_seed ?faults ~scratch ?(telemetry = T.Sink.null) ~trace ~spec ~factory seed =
  T.with_span telemetry "runner.task" ~args:[ ("seed", T.Str (Int64.to_string seed)) ]
  @@ fun () ->
  T.count telemetry "runner.tasks" 1;
  let algorithm = T.with_span telemetry "runner.factory" (fun () -> factory trace) in
  let rng = Psn_prng.Rng.create ~seed () in
  let messages = Workload.generate ~rng spec.workload in
  Engine.run ?faults ~scratch ~telemetry ~trace ~messages algorithm

(* Memoized fan-out over an arbitrary task grid. The cache is only
   touched from the calling domain — all lookups happen before the
   parallel section and all stores after it — so cache backends need
   no synchronisation and results are stitched back by index, keeping
   the bit-identical [jobs] contract regardless of the hit pattern.
   [compute] receives the scratch and the sink of the domain that runs
   it, so buffers are reused across the domain's misses and task spans
   land on the right trace track. *)
let cached_map ?jobs ?chunk ?(telemetry = T.Sink.null) ~find ~store ~compute tasks =
  let n = Array.length tasks in
  let cached = T.with_span telemetry "runner.cache_lookup" (fun () -> Array.map find tasks) in
  let miss_idx =
    Array.of_list
      (List.filter
         (fun i -> Option.is_none cached.(i))
         (List.init n (fun i -> i)))
  in
  T.count telemetry "runner.cache_hits" (n - Array.length miss_idx);
  T.count telemetry "runner.cache_misses" (Array.length miss_idx);
  let computed =
    Parallel.map_env ?jobs ?chunk ~telemetry ~env:Engine.scratch
      (fun scratch sink i -> compute scratch sink tasks.(i))
      miss_idx
  in
  T.with_span telemetry "runner.cache_store" (fun () ->
      Array.iteri (fun j i -> store tasks.(i) computed.(j)) miss_idx);
  let rank = Array.make n (-1) in
  Array.iteri (fun j i -> rank.(i) <- j) miss_idx;
  Array.init n (fun i ->
      match cached.(i) with
      | Some v -> v
      | None -> computed.(rank.(i)))

let outcomes ?jobs ?chunk ?faults ?store ?(telemetry = T.Sink.null) ~trace ~spec ~factory () =
  if List.is_empty spec.seeds then invalid_arg "Runner: need at least one seed";
  let seeds = Array.of_list spec.seeds in
  let compute scratch sink seed =
    run_seed ?faults ~scratch ~telemetry:sink ~trace ~spec ~factory seed
  in
  match store with
  | None ->
    Array.to_list (Parallel.map_env ?jobs ?chunk ~telemetry ~env:Engine.scratch compute seeds)
  | Some cache ->
    cached_map ?jobs ?chunk ~telemetry
      ~find:(fun seed -> cache.Cache.find ~seed)
      ~store:(fun seed outcome -> cache.Cache.store ~seed outcome)
      ~compute seeds
    |> Array.to_list

let run_algorithm ?jobs ?chunk ?faults ?store ?(telemetry = T.Sink.null) ~trace ~spec ~factory () =
  let outs = outcomes ?jobs ?chunk ?faults ?store ~telemetry ~trace ~spec ~factory () in
  T.with_span telemetry "runner.metrics" (fun () -> Metrics.pool outs)

let outcomes_many ?jobs ?chunk ?faults ?stores ?(telemetry = T.Sink.null) ~trace ~spec ~factories
    () =
  if List.is_empty spec.seeds then invalid_arg "Runner: need at least one seed";
  let seeds = Array.of_list spec.seeds in
  let facs = Array.of_list factories in
  let n_seeds = Array.length seeds in
  let caches =
    match stores with
    | None -> None
    | Some cs ->
      if List.length cs <> Array.length facs then
        invalid_arg "Runner: need one cache per factory";
      Some (Array.of_list cs)
  in
  (* Flatten the (factory, seed) grid into one task array so a few slow
     algorithms cannot leave workers idle, then regroup by factory. *)
  let tasks =
    Array.init
      (Array.length facs * n_seeds)
      (fun i -> (i / n_seeds, seeds.(i mod n_seeds)))
  in
  let compute scratch sink (fi, seed) =
    run_seed ?faults ~scratch ~telemetry:sink ~trace ~spec ~factory:facs.(fi) seed
  in
  let outs =
    match caches with
    | None -> Parallel.map_env ?jobs ?chunk ~telemetry ~env:Engine.scratch compute tasks
    | Some caches ->
      cached_map ?jobs ?chunk ~telemetry
        ~find:(fun (fi, seed) -> caches.(fi).Cache.find ~seed)
        ~store:(fun (fi, seed) outcome -> caches.(fi).Cache.store ~seed outcome)
        ~compute tasks
  in
  List.init (Array.length facs) (fun fi ->
      List.init n_seeds (fun si -> outs.((fi * n_seeds) + si)))

let run_many ?jobs ?chunk ?faults ?stores ?(telemetry = T.Sink.null) ~trace ~spec ~factories () =
  let outs = outcomes_many ?jobs ?chunk ?faults ?stores ~telemetry ~trace ~spec ~factories () in
  T.with_span telemetry "runner.metrics" (fun () -> List.map Metrics.pool outs)
