module T = Psn_telemetry.Telemetry
module Failpoint = Psn_robust.Failpoint
module Interrupt = Psn_robust.Interrupt

type run_spec = { workload : Workload.spec; seeds : int64 list }

let default_seeds k = List.init k (fun i -> Int64.of_int (1000 + i))

(* Each task owns its RNG (created from the task's seed) and its
   algorithm instance, so runs are independent and safe to fan out
   across domains; results come back in seed order either way. The
   fault plan, when given, is shared read-only: its verdicts are pure
   functions of (plan, key), so sharing cannot couple the runs. The
   scratch is the worker's: reused across the consecutive tasks of one
   domain, never shared between domains.

   The factory span nests inside the task span so algorithm
   construction is attributed to the task that paid for it in profile
   totals; the algorithm name (known only after the factory returns)
   is carried by the nested engine.run span. The failpoint site is
   keyed by the seed, so an injected failure schedule picks the same
   tasks whatever the claim order. *)
let run_seed ?faults ~scratch ?(telemetry = T.Sink.null) ~trace ~spec ~factory seed =
  T.with_span telemetry "runner.task" ~args:[ ("seed", T.Str (Int64.to_string seed)) ]
  @@ fun () ->
  Failpoint.trigger ~key:seed "runner.task";
  T.count telemetry "runner.tasks" 1;
  let algorithm = T.with_span telemetry "runner.factory" (fun () -> factory trace) in
  let rng = Psn_prng.Rng.create ~seed () in
  let messages = Workload.generate ~rng spec.workload in
  let outcome = Engine.run ?faults ~scratch ~telemetry ~trace ~messages algorithm in
  (* Per-run delivery-delay distribution: simulated time, recorded on
     this worker's track and bucket-merged at close — the histogram the
     paper's delay CDFs come from, schedule-independent by merge. *)
  Array.iter
    (fun r ->
      match Engine.delay r with
      | Some d -> T.hist telemetry "runner.delivery_delay_s" d
      | None -> ())
    outcome.Engine.records;
  outcome

(* Memoized fan-out over an arbitrary task grid. The cache is only
   touched from the calling domain — all lookups happen before the
   parallel sections and all stores between and after them — so cache
   backends need no synchronisation and results are stitched back by
   index, keeping the bit-identical [jobs] contract regardless of the
   hit pattern.

   [checkpoint] splits the misses into rounds of that many tasks, in
   index order; each round's successes go to the cache before the next
   round starts, so a killed sweep resumes from its last completed
   round (the store replays the stored outcomes as hits). Because
   every task is a pure function of its inputs, the round size changes
   durability and wall time only, never a result. Between rounds is
   also the sweep's cooperative interruption point
   ({!Psn_robust.Interrupt.check}): a SIGINT arrives, the current
   round still lands in the cache, and [Interrupted] propagates with
   everything completed so far already durable.

   [compute] receives the worker environment and the sink of the
   domain that runs it, so buffers are reused across the domain's
   misses within a round and task spans land on the right trace
   track. *)
let cached_map_result ?jobs ?chunk ?(telemetry = T.Sink.null) ?(retries = 0)
    ?(checkpoint = 0) ?(prefix = "runner") ~env ~find ~store ~compute tasks =
  if checkpoint < 0 then invalid_arg "Runner.cached_map: checkpoint must be >= 0";
  let n = Array.length tasks in
  let cached =
    T.with_span telemetry (prefix ^ ".cache_lookup") (fun () -> Array.map find tasks)
  in
  let miss_idx =
    Array.of_list
      (List.filter
         (fun i -> Option.is_none cached.(i))
         (List.init n (fun i -> i)))
  in
  let m = Array.length miss_idx in
  T.count telemetry (prefix ^ ".cache_hits") (n - m);
  T.count telemetry (prefix ^ ".cache_misses") m;
  let results = Array.map (Option.map Result.ok) cached in
  let round_size = if checkpoint = 0 then Int.max 1 m else checkpoint in
  let pos = ref 0 in
  while !pos < m do
    Interrupt.check ();
    let stop = Int.min m (!pos + round_size) in
    let batch = Array.sub miss_idx !pos (stop - !pos) in
    let computed =
      Parallel.map_result ?jobs ?chunk ~telemetry ~retries ~env
        (fun e sink i -> compute e sink tasks.(i))
        batch
    in
    T.with_span telemetry (prefix ^ ".cache_store") (fun () ->
        Array.iteri
          (fun j i ->
            match computed.(j) with Ok v -> store tasks.(i) v | Error (_ : exn) -> ())
          batch);
    Array.iteri (fun j i -> results.(i) <- Some computed.(j)) batch;
    if checkpoint > 0 then T.count telemetry (prefix ^ ".checkpoints") 1;
    pos := stop
  done;
  Array.map (function Some r -> r | None -> assert false) results

let cached_map ?jobs ?chunk ?telemetry ?retries ?checkpoint ?prefix ~env ~find ~store
    ~compute tasks =
  Parallel.join_results
    (cached_map_result ?jobs ?chunk ?telemetry ?retries ?checkpoint ?prefix ~env ~find
       ~store ~compute tasks)

let outcome_cells ?jobs ?chunk ?faults ?store ?retries ?checkpoint
    ?(telemetry = T.Sink.null) ~trace ~spec ~factory () =
  if List.is_empty spec.seeds then invalid_arg "Runner: need at least one seed";
  let seeds = Array.of_list spec.seeds in
  let compute scratch sink seed =
    run_seed ?faults ~scratch ~telemetry:sink ~trace ~spec ~factory seed
  in
  match store with
  | None -> Parallel.map_result ?jobs ?chunk ~telemetry ?retries ~env:Engine.scratch compute seeds
  | Some cache ->
    cached_map_result ?jobs ?chunk ~telemetry ?retries ?checkpoint ~env:Engine.scratch
      ~find:(fun seed -> cache.Cache.find ~seed)
      ~store:(fun seed outcome -> cache.Cache.store ~seed outcome)
      ~compute seeds

let outcomes_result ?jobs ?chunk ?faults ?store ?retries ?checkpoint ?telemetry ~trace
    ~spec ~factory () =
  Array.to_list
    (outcome_cells ?jobs ?chunk ?faults ?store ?retries ?checkpoint ?telemetry ~trace
       ~spec ~factory ())

let outcomes ?jobs ?chunk ?faults ?store ?retries ?checkpoint ?telemetry ~trace ~spec
    ~factory () =
  Array.to_list
    (Parallel.join_results
       (outcome_cells ?jobs ?chunk ?faults ?store ?retries ?checkpoint ?telemetry ~trace
          ~spec ~factory ()))

let run_algorithm ?jobs ?chunk ?faults ?store ?retries ?checkpoint
    ?(telemetry = T.Sink.null) ~trace ~spec ~factory () =
  let outs =
    outcomes ?jobs ?chunk ?faults ?store ?retries ?checkpoint ~telemetry ~trace ~spec
      ~factory ()
  in
  T.with_span telemetry "runner.metrics" (fun () -> Metrics.pool outs)

let outcome_cells_many ?jobs ?chunk ?faults ?stores ?retries ?checkpoint
    ?(telemetry = T.Sink.null) ~trace ~spec ~factories () =
  if List.is_empty spec.seeds then invalid_arg "Runner: need at least one seed";
  let seeds = Array.of_list spec.seeds in
  let facs = Array.of_list factories in
  let n_seeds = Array.length seeds in
  let caches =
    match stores with
    | None -> None
    | Some cs ->
      if List.length cs <> Array.length facs then
        invalid_arg "Runner: need one cache per factory";
      Some (Array.of_list cs)
  in
  (* Flatten the (factory, seed) grid into one task array so a few slow
     algorithms cannot leave workers idle, then regroup by factory. *)
  let tasks =
    Array.init
      (Array.length facs * n_seeds)
      (fun i -> (i / n_seeds, seeds.(i mod n_seeds)))
  in
  let compute scratch sink (fi, seed) =
    run_seed ?faults ~scratch ~telemetry:sink ~trace ~spec ~factory:facs.(fi) seed
  in
  let cells =
    match caches with
    | None ->
      Parallel.map_result ?jobs ?chunk ~telemetry ?retries ~env:Engine.scratch compute
        tasks
    | Some caches ->
      cached_map_result ?jobs ?chunk ~telemetry ?retries ?checkpoint ~env:Engine.scratch
        ~find:(fun (fi, seed) -> caches.(fi).Cache.find ~seed)
        ~store:(fun (fi, seed) outcome -> caches.(fi).Cache.store ~seed outcome)
        ~compute tasks
  in
  (cells, Array.length facs, n_seeds)

let regroup arr ~n_facs ~n_seeds =
  List.init n_facs (fun fi -> List.init n_seeds (fun si -> arr.((fi * n_seeds) + si)))

let outcomes_many_result ?jobs ?chunk ?faults ?stores ?retries ?checkpoint ?telemetry
    ~trace ~spec ~factories () =
  let cells, n_facs, n_seeds =
    outcome_cells_many ?jobs ?chunk ?faults ?stores ?retries ?checkpoint ?telemetry
      ~trace ~spec ~factories ()
  in
  regroup cells ~n_facs ~n_seeds

let outcomes_many ?jobs ?chunk ?faults ?stores ?retries ?checkpoint ?telemetry ~trace
    ~spec ~factories () =
  let cells, n_facs, n_seeds =
    outcome_cells_many ?jobs ?chunk ?faults ?stores ?retries ?checkpoint ?telemetry
      ~trace ~spec ~factories ()
  in
  regroup (Parallel.join_results cells) ~n_facs ~n_seeds

let run_many ?jobs ?chunk ?faults ?stores ?retries ?checkpoint ?(telemetry = T.Sink.null)
    ~trace ~spec ~factories () =
  let outs =
    outcomes_many ?jobs ?chunk ?faults ?stores ?retries ?checkpoint ~telemetry ~trace
      ~spec ~factories ()
  in
  T.with_span telemetry "runner.metrics" (fun () -> List.map Metrics.pool outs)
