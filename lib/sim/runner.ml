type run_spec = { workload : Workload.spec; seeds : int64 list }

let default_seeds k = List.init k (fun i -> Int64.of_int (1000 + i))

(* Each task owns its RNG (created from the task's seed) and its
   algorithm instance, so runs are independent and safe to fan out
   across domains; results come back in seed order either way. The
   fault plan, when given, is shared read-only: its verdicts are pure
   functions of (plan, key), so sharing cannot couple the runs. *)
let run_seed ?faults ~trace ~spec ~factory seed =
  let rng = Psn_prng.Rng.create ~seed () in
  let messages = Workload.generate ~rng spec.workload in
  Engine.run ?faults ~trace ~messages (factory trace)

let outcomes ?jobs ?faults ~trace ~spec ~factory () =
  if List.is_empty spec.seeds then invalid_arg "Runner: need at least one seed";
  Parallel.map_list ?jobs (run_seed ?faults ~trace ~spec ~factory) spec.seeds

let run_algorithm ?jobs ?faults ~trace ~spec ~factory () =
  Metrics.pool (outcomes ?jobs ?faults ~trace ~spec ~factory ())

let outcomes_many ?jobs ?faults ~trace ~spec ~factories () =
  if List.is_empty spec.seeds then invalid_arg "Runner: need at least one seed";
  let seeds = Array.of_list spec.seeds in
  let facs = Array.of_list factories in
  let n_seeds = Array.length seeds in
  (* Flatten the (factory, seed) grid into one task array so a few slow
     algorithms cannot leave workers idle, then regroup by factory. *)
  let tasks =
    Array.init
      (Array.length facs * n_seeds)
      (fun i -> (facs.(i / n_seeds), seeds.(i mod n_seeds)))
  in
  let outs =
    Parallel.map ?jobs (fun (factory, seed) -> run_seed ?faults ~trace ~spec ~factory seed) tasks
  in
  List.init (Array.length facs) (fun fi ->
      List.init n_seeds (fun si -> outs.((fi * n_seeds) + si)))

let run_many ?jobs ?faults ~trace ~spec ~factories () =
  List.map Metrics.pool (outcomes_many ?jobs ?faults ~trace ~spec ~factories ())
