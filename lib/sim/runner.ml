type run_spec = { workload : Workload.spec; seeds : int64 list }

let default_seeds k = List.init k (fun i -> Int64.of_int (1000 + i))

let outcomes ~trace ~spec ~factory =
  if spec.seeds = [] then invalid_arg "Runner: need at least one seed";
  List.map
    (fun seed ->
      let rng = Psn_prng.Rng.create ~seed () in
      let messages = Workload.generate ~rng spec.workload in
      Engine.run ~trace ~messages (factory trace))
    spec.seeds

let run_algorithm ~trace ~spec ~factory =
  outcomes ~trace ~spec ~factory |> List.map Metrics.of_outcome |> Metrics.average

let run_many ~trace ~spec ~factories =
  List.map (fun factory -> run_algorithm ~trace ~spec ~factory) factories
