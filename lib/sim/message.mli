(** Messages: the unit of traffic in forwarding experiments. *)

type t = {
  id : int;  (** Dense index, unique within a workload. *)
  src : Psn_trace.Node.id;
  dst : Psn_trace.Node.id;
  t_create : float;  (** Creation instant, within the trace window. *)
}

val make : id:int -> src:Psn_trace.Node.id -> dst:Psn_trace.Node.id -> t_create:float -> t
(** Raises [Invalid_argument] if [src = dst], an id is negative, or the
    creation time is negative or not finite. *)

val pp : Format.formatter -> t -> unit
(** ["msg 12: n3 -> n47 @ 512.0s"]. *)
