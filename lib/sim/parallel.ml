module T = Psn_telemetry.Telemetry

let default_jobs () = Domain.recommended_domain_count ()

(* Work-stealing by atomic counter: workers claim the next unclaimed
   index until the range is exhausted. Each slot of [results] and
   [failures] is written by exactly one domain, and [Domain.join]
   publishes those writes to the caller, so no further synchronisation
   is needed.

   Telemetry: worker [k] records into child sink [k] — forked before
   the spawn, joined after [Domain.join] — so recording is lock-free
   and the merged trace shows one track per worker domain. The queue
   gauge samples how much of the range is still unclaimed at each
   grab, which is the pool's backlog over time. *)
let map_traced ?jobs ?(telemetry = T.Sink.null) f tasks =
  let n = Array.length tasks in
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Parallel.map: jobs must be >= 1"
    | Some j -> j
    | None -> default_jobs ()
  in
  let jobs = Int.min jobs n in
  if jobs <= 1 then Array.map (f telemetry) tasks
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let next = Atomic.make 0 in
    let sinks = T.fork telemetry jobs in
    let worker k () =
      let sink = sinks.(k) in
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          T.gauge sink "parallel.queue" (float_of_int (Int.max 0 (n - i - 1)));
          (match f sink tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e -> failures.(i) <- Some e);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join domains;
    T.join telemetry sinks;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f tasks = map_traced ?jobs (fun (_ : T.sink) task -> f task) tasks

let map_list ?jobs f tasks = Array.to_list (map ?jobs f (Array.of_list tasks))
