module T = Psn_telemetry.Telemetry
module Failpoint = Psn_robust.Failpoint

let default_jobs () = Domain.recommended_domain_count ()

(* Workers claim whole index *ranges* rather than single tasks: the
   shared atomic advances by [chunk] per grab, so contention and the
   per-task dispatch cost both drop by a factor of [chunk] while load
   stays balanced as long as each worker gets several chunks. The
   default aims for ~4 chunks per worker, capped so a grab never walks
   away with more than 64 tasks of a long tail. *)
let default_chunk ~jobs n = Int.max 1 (Int.min 64 (n / (jobs * 4)))

(* Deterministic backoff between retry attempts: a bounded spin of
   [Domain.cpu_relax], doubling per attempt. No wall clock (the lint
   contract forbids it in lib/) and no scheduling dependence — the
   delay is a pure function of the attempt index. *)
let backoff attempt =
  for _ = 1 to 64 * (1 lsl Int.min attempt 6) do
    Domain.cpu_relax ()
  done

(* Chunked work-stealing by atomic counter. Each slot of [cells] is
   written by exactly one domain, and [Domain.join] publishes those
   writes to the caller, so no further synchronisation is needed.

   Telemetry: worker [k] records into child sink [k]. Children are
   forked for the *requested* [jobs] — also on the [jobs = 1] and
   [n < jobs] paths — so the Chrome-trace track layout is a function
   of [jobs] alone, never of how many tasks there happened to be. The
   queue gauge samples how much of the range is still unclaimed after
   each chunk grab, which is the pool's backlog over time.

   [env] runs once per worker, on that worker's domain, before it
   claims work: whatever it allocates (scratch buffers, arenas) is
   owned by exactly one domain for the whole section, so tasks may
   mutate it freely without coupling the runs.

   Every task runs inside [Failpoint.with_attempt]; an exception that
   [Failpoint.is_transient] judges retryable is retried up to
   [retries] times (with deterministic backoff) before its cell
   becomes [Error]. Because one task's attempts run consecutively on
   one domain and verdicts are pure functions of (site, key, attempt),
   the final cell array is bit-identical for every [jobs] × [chunk]
   combination. *)
let map_result ?jobs ?chunk ?(telemetry = T.Sink.null) ?(retries = 0) ~env f tasks =
  let n = Array.length tasks in
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Parallel.map: jobs must be >= 1"
    | Some j -> j
    | None -> default_jobs ()
  in
  let chunk =
    match chunk with
    | Some c when c < 1 -> invalid_arg "Parallel.map: chunk must be >= 1"
    | Some c -> c
    | None -> default_chunk ~jobs n
  in
  if retries < 0 then invalid_arg "Parallel.map_result: retries must be >= 0";
  let sinks = T.fork telemetry jobs in
  let cells : ('b, exn) result option array = Array.make n None in
  let next = Atomic.make 0 in
  let worker k () =
    let sink = sinks.(k) in
    let e = env () in
    let run_task i =
      let rec attempt_loop a =
        match Failpoint.with_attempt a (fun () -> f e sink tasks.(i)) with
        | v ->
          if a > 0 then T.count sink "parallel.recovered" 1;
          Ok v
        | exception ex ->
          if a < retries && Failpoint.is_transient ex then begin
            T.count sink "parallel.retries" 1;
            Psn_robust.Flight.note "parallel.retry"
              [ ("task", string_of_int i); ("attempt", string_of_int (a + 1)) ];
            backoff a;
            attempt_loop (a + 1)
          end
          else begin
            T.count sink "parallel.failures" 1;
            Error ex
          end
      in
      cells.(i) <- Some (attempt_loop 0)
    in
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = Int.min n (start + chunk) in
        T.gauge sink "parallel.queue" (float_of_int (Int.max 0 (n - stop)));
        for i = start to stop - 1 do
          run_task i
        done;
        loop ()
      end
    in
    loop ()
  in
  (* Never spawn more domains than there are chunks to claim: the
     calling domain is worker 0 and extra domains would find the range
     exhausted. [jobs = 1] (or a single chunk) therefore runs entirely
     on the calling domain, through the same claim loop and the same
     child-sink recording as the parallel path. *)
  let n_chunks = (n + chunk - 1) / chunk in
  let workers = Int.max 1 (Int.min jobs n_chunks) in
  let domains = List.init (workers - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  T.join telemetry sinks;
  Array.map (function Some r -> r | None -> assert false) cells

(* Failure order is deterministic whatever the claim schedule was: the
   lowest failing task index wins. *)
let join_results cells =
  Array.iter (function Error e -> raise e | Ok _ -> ()) cells;
  Array.map (function Ok v -> v | Error _ -> assert false) cells

let map_env ?jobs ?chunk ?telemetry ~env f tasks =
  join_results (map_result ?jobs ?chunk ?telemetry ~env f tasks)

let map_traced ?jobs ?chunk ?telemetry f tasks =
  map_env ?jobs ?chunk ?telemetry ~env:(fun () -> ()) (fun () sink task -> f sink task) tasks

let map ?jobs ?chunk f tasks =
  map_env ?jobs ?chunk ~env:(fun () -> ()) (fun () (_ : T.sink) task -> f task) tasks

let map_list ?jobs ?chunk f tasks = Array.to_list (map ?jobs ?chunk f (Array.of_list tasks))
