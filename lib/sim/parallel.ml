let default_jobs () = Domain.recommended_domain_count ()

(* Work-stealing by atomic counter: workers claim the next unclaimed
   index until the range is exhausted. Each slot of [results] and
   [failures] is written by exactly one domain, and [Domain.join]
   publishes those writes to the caller, so no further synchronisation
   is needed. *)
let map ?jobs f tasks =
  let n = Array.length tasks in
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Parallel.map: jobs must be >= 1"
    | Some j -> j
    | None -> default_jobs ()
  in
  let jobs = Int.min jobs n in
  if jobs <= 1 then Array.map f tasks
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f tasks.(i) with
          | v -> results.(i) <- Some v
          | exception e -> failures.(i) <- Some e);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?jobs f tasks = Array.to_list (map ?jobs f (Array.of_list tasks))
