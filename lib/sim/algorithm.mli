(** The forwarding-algorithm interface.

    An algorithm is a bundle of callbacks the simulation engine drives.
    The engine owns delivery (minimal progress: a holder meeting the
    destination always hands over) and copy semantics (forwarding copies
    the message; the sender keeps holding — the paper's infinite-buffer
    assumption); the algorithm only answers "should this copy cross this
    contact?" and maintains whatever state it needs via the observation
    callbacks. Oracle algorithms (Greedy Total, Dynamic Programming)
    bake knowledge of the whole trace into their closures at
    construction time. *)

type context = {
  time : float;  (** Decision instant. *)
  holder : Psn_trace.Node.id;  (** Node currently holding the copy. *)
  peer : Psn_trace.Node.id;  (** Candidate next hop (never the destination —
                                 the engine delivers those directly). *)
  message : Message.t;
}

type t = {
  name : string;
  observe_contact : time:float -> a:Psn_trace.Node.id -> b:Psn_trace.Node.id -> unit;
      (** Called once per contact start, before any exchange decision at
          that contact, letting history-based algorithms learn online. *)
  on_create : Message.t -> unit;
      (** Called when a message enters the network at its source. *)
  should_forward : context -> bool;
      (** Copy decision. Must be side-effect free enough to be safe to
          call once per (copy, contact) opportunity. *)
  on_forward : context -> unit;
      (** Called after a copy was actually transferred — lets
          token-based schemes (spray and wait) split their budget. *)
}

val stateless : name:string -> (context -> bool) -> t
(** Build an algorithm with no observation state, e.g. epidemic. *)

type factory = Psn_trace.Trace.t -> t
(** Fresh algorithm state for one simulation run over the given trace.
    The trace parameter is what future-knowledge oracles read; online
    algorithms must ignore it. *)
