module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact

type spec = {
  loss : float;
  crash_rate : float;
  down_time : float;
  jitter : float;
  seed : int64;
}

let none = { loss = 0.; crash_rate = 0.; down_time = 0.; jitter = 0.; seed = 0L }

let validate spec =
  if not (Float.is_finite spec.loss && spec.loss >= 0. && spec.loss < 1.) then
    Error "loss must lie in [0, 1)"
  else if not (Float.is_finite spec.crash_rate && spec.crash_rate >= 0.) then
    Error "crash_rate must be finite and non-negative"
  else if not (Float.is_finite spec.down_time && spec.down_time >= 0.) then
    Error "down_time must be finite and non-negative"
  else if not (Float.is_finite spec.jitter && spec.jitter >= 0. && spec.jitter <= 1.) then
    Error "jitter must lie in [0, 1]"
  else Ok ()

let scale x spec =
  if not (Float.is_finite x && x >= 0.) then invalid_arg "Faults.scale: factor must be >= 0";
  {
    spec with
    loss = Float.min (spec.loss *. x) 0.999999;
    crash_rate = spec.crash_rate *. x;
    jitter = Float.min (spec.jitter *. x) 1.;
  }

let is_null spec =
  Float.equal spec.loss 0.
  && (Float.equal spec.crash_rate 0. || Float.equal spec.down_time 0.)
  && Float.equal spec.jitter 0.

let pp_spec ppf spec =
  Format.fprintf ppf "loss %.3f, %.2f crashes/h x %.0f s down, jitter %.2f (seed %Ld)" spec.loss
    (spec.crash_rate *. 3600.) spec.down_time spec.jitter spec.seed

type plan = {
  spec : spec;
  horizon : float;
  down : (float * float) array array;  (* per node, disjoint, ascending *)
}

(* Decision hashing: one SplitMix64 step per mixed-in word, chained.
   The final state is a well-distributed 64-bit digest of the sequence,
   and [create]/[next] are pure over their inputs, so every verdict is a
   function of (seed, key) alone. *)
let mix h w = Psn_prng.Splitmix64.next (Psn_prng.Splitmix64.create (Int64.logxor h w))
let mix_int h i = mix h (Int64.of_int i)
let mix_float h f = mix h (Int64.bits_of_float f)

(* 53 uniform bits in [0, 1). *)
let unit_of_digest h = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

(* Per-node downtime: Poisson crashes, exponential repairs, drawn from a
   node-keyed RNG at compile time. The next crash clock starts at the
   recovery instant, so intervals are disjoint and ascending by
   construction. *)
let node_downtime spec ~horizon node =
  if Float.equal spec.crash_rate 0. || Float.equal spec.down_time 0. then [||]
  else begin
    let rng = Psn_prng.Rng.create ~seed:(mix_int (mix spec.seed 0x646f776eL) node) () in
    let rec go t acc =
      let crash = t +. Psn_prng.Rng.exponential rng ~rate:spec.crash_rate in
      if crash >= horizon then acc
      else
        let recover =
          Float.min horizon (crash +. Psn_prng.Rng.exponential rng ~rate:(1. /. spec.down_time))
        in
        go recover ((crash, recover) :: acc)
    in
    Array.of_list (List.rev (go 0. []))
  end

let compile ~n_nodes ~horizon spec =
  (match validate spec with
  | Error msg -> invalid_arg ("Faults.compile: " ^ msg)
  | Ok () -> ());
  if n_nodes <= 0 then invalid_arg "Faults.compile: need at least one node";
  if not (Float.is_finite horizon && horizon > 0.) then
    invalid_arg "Faults.compile: horizon must be finite and positive";
  { spec; horizon; down = Array.init n_nodes (node_downtime spec ~horizon) }

let spec_of plan = plan.spec

let downtime plan node =
  if node < 0 || node >= Array.length plan.down then
    invalid_arg "Faults.downtime: node out of range";
  Array.to_list plan.down.(node)

let node_down plan node time =
  if node < 0 || node >= Array.length plan.down then
    invalid_arg "Faults.node_down: node out of range";
  Array.exists (fun (d, r) -> time >= d && time < r) plan.down.(node)

(* Subtract a node's down intervals from [intervals] (both ascending). *)
let clip_against intervals downs =
  List.concat_map
    (fun (s, e) ->
      let rec cut s acc = function
        | [] -> if s < e then (s, e) :: acc else acc
        | (d, r) :: rest ->
          if r <= s then cut s acc rest
          else if d >= e then if s < e then (s, e) :: acc else acc
          else begin
            (* the down interval overlaps [s, e) *)
            let acc = if d > s then (s, d) :: acc else acc in
            if r < e then cut r acc rest else acc
          end
      in
      List.rev (cut s [] (Array.to_list downs)))
    intervals

(* Jitter truncation: keyed by the contact's identity so duplicate
   contact records draw identical fractions. *)
let truncate_contact spec (c : Contact.t) =
  if Float.equal spec.jitter 0. then Some (c.Contact.t_start, c.Contact.t_end)
  else begin
    let h =
      mix_float
        (mix_float (mix_int (mix_int (mix spec.seed 0x6a697474L) c.Contact.a) c.Contact.b)
           c.Contact.t_start)
        c.Contact.t_end
    in
    let frac = unit_of_digest h *. spec.jitter in
    let t_end = c.Contact.t_end -. (frac *. Contact.duration c) in
    if t_end > c.Contact.t_start then Some (c.Contact.t_start, t_end) else None
  end

let degrade plan trace =
  if Trace.n_nodes trace <> Array.length plan.down then
    invalid_arg "Faults.degrade: trace population differs from the plan's";
  if Float.equal plan.spec.jitter 0. && Array.for_all (fun d -> Array.length d = 0) plan.down then trace
  else begin
    let surviving = ref [] in
    Trace.iter_contacts trace (fun (c : Contact.t) ->
        match truncate_contact plan.spec c with
        | None -> ()
        | Some (s, e) ->
          clip_against [ (s, e) ] plan.down.(c.Contact.a)
          |> (fun ivs -> clip_against ivs plan.down.(c.Contact.b))
          |> List.iter (fun (t_start, t_end) ->
                 if t_start < t_end then
                   surviving :=
                     Contact.make ~a:c.Contact.a ~b:c.Contact.b ~t_start ~t_end :: !surviving));
    Trace.create ~n_nodes:(Trace.n_nodes trace) ~horizon:(Trace.horizon trace)
      ~kinds:(Trace.kinds trace) (List.rev !surviving)
  end

let transfer_fails plan ~msg ~holder ~peer ~time =
  plan.spec.loss > 0.
  &&
  let h =
    mix_float
      (mix_int (mix_int (mix_int (mix plan.spec.seed 0x6c6f7373L) msg) holder) peer)
      time
  in
  unit_of_digest h < plan.spec.loss
