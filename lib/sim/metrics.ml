type t = {
  algorithm : string;
  messages : int;
  delivered : int;
  success_rate : float;
  mean_delay : float;
  median_delay : float;
  copies : int;
  attempts : int;
}

let delays (outcome : Engine.outcome) =
  let out =
    Array.to_list outcome.Engine.records
    |> List.filter_map Engine.delay
    |> Array.of_list
  in
  Array.sort Float.compare out;
  out

let of_records algorithm records =
  let messages = Array.length records in
  let delay_list = Array.to_list records |> List.filter_map Engine.delay in
  let delivered = List.length delay_list in
  let copies =
    Array.fold_left (fun acc (r : Engine.record) -> acc + r.Engine.copies) 0 records
  in
  let attempts =
    Array.fold_left (fun acc (r : Engine.record) -> acc + r.Engine.attempts) 0 records
  in
  let mean_delay =
    if delivered = 0 then Float.nan
    else List.fold_left ( +. ) 0. delay_list /. float_of_int delivered
  in
  let median_delay =
    if delivered = 0 then Float.nan
    else Psn_stats.Quantile.median (Array.of_list delay_list)
  in
  {
    algorithm;
    messages;
    delivered;
    success_rate = (if messages = 0 then 0. else float_of_int delivered /. float_of_int messages);
    mean_delay;
    median_delay;
    copies;
    attempts;
  }

(* Attempted transfers per successful transmission — 1.0 in a fault-free
   run, rising with injected loss. [nan] when nothing was transmitted. *)
let overhead t =
  if t.copies = 0 then Float.nan else float_of_int t.attempts /. float_of_int t.copies

let of_outcome (outcome : Engine.outcome) =
  of_records outcome.Engine.algorithm outcome.Engine.records

(* Multi-run aggregation concatenates the runs' records and recomputes
   every statistic over the pooled sample — so [median_delay] is the
   true pooled median, not a delivery-weighted mean of per-run medians
   (which systematically misstates skewed delay distributions). *)
let pool = function
  | [] -> invalid_arg "Metrics.pool: empty list"
  | [ outcome ] -> of_outcome outcome
  | first :: _ as outcomes ->
    List.iter
      (fun (o : Engine.outcome) ->
        if not (String.equal o.Engine.algorithm first.Engine.algorithm) then
          invalid_arg "Metrics.pool: mixed algorithms")
      outcomes;
    let records =
      List.concat_map (fun (o : Engine.outcome) -> Array.to_list o.Engine.records) outcomes
      |> Array.of_list
    in
    of_records first.Engine.algorithm records

(* The determinism contract is "same bits", not numeric equality:
   comparing the IEEE payloads keeps NaN delays (no deliveries) equal
   to themselves and distinguishes -0. from 0. *)
let float_identical a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal a b =
  String.equal a.algorithm b.algorithm
  && a.messages = b.messages && a.delivered = b.delivered
  && float_identical a.success_rate b.success_rate
  && float_identical a.mean_delay b.mean_delay
  && float_identical a.median_delay b.median_delay
  && a.copies = b.copies && a.attempts = b.attempts

(* Grouping is keyed through an explicit comparator, not a polymorphic
   [Hashtbl]: hashing caller-supplied keys would mis-handle any key
   that is not reflexively equal under generic equality — a NaN-bearing
   key never equals itself, so every record carrying one silently
   spawned its own duplicate group. [cmp] decides membership
   ([cmp a b = 0]) and must be total on the classifier's range (e.g.
   [Float.compare], which grounds NaN). Group counts are small (Fig. 13
   has four), so a linear scan in first-seen order is plenty. *)
let grouped (outcome : Engine.outcome) ~cmp ~classify =
  let groups = ref [] in
  Array.iter
    (fun (r : Engine.record) ->
      let key = classify r.Engine.message in
      match List.find_opt (fun (k, _) -> cmp k key = 0) !groups with
      | Some (_, rs) -> rs := r :: !rs
      | None -> groups := (key, ref [ r ]) :: !groups)
    outcome.Engine.records;
  List.rev_map
    (fun (key, rs) ->
      let records = Array.of_list (List.rev !rs) in
      (key, of_records outcome.Engine.algorithm records))
    !groups
