type t = {
  algorithm : string;
  messages : int;
  delivered : int;
  success_rate : float;
  mean_delay : float;
  median_delay : float;
  copies : int;
}

let delays (outcome : Engine.outcome) =
  let out =
    Array.to_list outcome.Engine.records
    |> List.filter_map Engine.delay
    |> Array.of_list
  in
  Array.sort Float.compare out;
  out

let of_records algorithm records copies =
  let messages = Array.length records in
  let delay_list = Array.to_list records |> List.filter_map Engine.delay in
  let delivered = List.length delay_list in
  let mean_delay =
    if delivered = 0 then Float.nan
    else List.fold_left ( +. ) 0. delay_list /. float_of_int delivered
  in
  let median_delay =
    if delivered = 0 then Float.nan
    else Psn_stats.Quantile.median (Array.of_list delay_list)
  in
  {
    algorithm;
    messages;
    delivered;
    success_rate = (if messages = 0 then 0. else float_of_int delivered /. float_of_int messages);
    mean_delay;
    median_delay;
    copies;
  }

let of_outcome (outcome : Engine.outcome) =
  of_records outcome.Engine.algorithm outcome.Engine.records outcome.Engine.copies

let average = function
  | [] -> invalid_arg "Metrics.average: empty list"
  | first :: _ as metrics ->
    List.iter
      (fun m ->
        if not (String.equal m.algorithm first.algorithm) then
          invalid_arg "Metrics.average: mixed algorithms")
      metrics;
    let messages = List.fold_left (fun acc m -> acc + m.messages) 0 metrics in
    let delivered = List.fold_left (fun acc m -> acc + m.delivered) 0 metrics in
    let copies = List.fold_left (fun acc m -> acc + m.copies) 0 metrics in
    let weighted field =
      if delivered = 0 then Float.nan
      else
        List.fold_left
          (fun acc m -> if m.delivered = 0 then acc else acc +. (float_of_int m.delivered *. field m))
          0. metrics
        /. float_of_int delivered
    in
    {
      algorithm = first.algorithm;
      messages;
      delivered;
      success_rate = (if messages = 0 then 0. else float_of_int delivered /. float_of_int messages);
      mean_delay = weighted (fun m -> m.mean_delay);
      median_delay = weighted (fun m -> m.median_delay);
      copies;
    }

let grouped (outcome : Engine.outcome) ~classify =
  let order = ref [] in
  let groups = Hashtbl.create 8 in
  Array.iter
    (fun (r : Engine.record) ->
      let key = classify r.Engine.message in
      if not (Hashtbl.mem groups key) then begin
        Hashtbl.add groups key [];
        order := key :: !order
      end;
      Hashtbl.replace groups key (r :: Hashtbl.find groups key))
    outcome.Engine.records;
  List.rev !order
  |> List.map (fun key ->
         let records = Array.of_list (List.rev (Hashtbl.find groups key)) in
         (key, of_records outcome.Engine.algorithm records 0))
