(** FNV-1a/64: the store's content hash.

    A tiny, dependency-free, exactly-specified hash. Unlike
    [Hashtbl.hash] it reads bytes, not value representations, so its
    output is a pure function of the input string — stable across
    compiler versions, word sizes and GC layouts, which is the whole
    point of content addressing. Not cryptographic: cache keys name
    results, they do not authenticate them (the CRC framing in
    {!Codec} catches corruption; adversarial collisions are out of
    scope for a local result cache). *)

val of_string : ?init:int64 -> string -> int64
(** FNV-1a over every byte of the string. [init] defaults to the
    standard 64-bit offset basis; passing a previous digest chains
    hashes over concatenated inputs. *)

val to_hex : int64 -> string
(** Fixed-width lowercase hex (16 characters). *)
