(** Cache-key composition.

    A key names the complete input closure of a memoized computation.
    PRs 1-3 made every run a bit-identical pure function of its
    inputs, so equality of inputs implies bit-equality of outputs —
    which is exactly the license memoization needs. A runner-outcome
    key folds together, via {!Fnv} over a canonical byte encoding:

    - the {!Codec} format version (a codec change re-keys everything);
    - the trace content hash ({!trace_hash});
    - every field of the workload spec;
    - the algorithm's stable registry id (e.g. ["greedy-total"] —
      {e not} the display label, and never anything computed by
      constructing the algorithm, so cache hits skip construction);
    - the run seed;
    - the fault-plan hash ({!fault_hash}), or an explicit absent tag.

    Enumeration keys fold the version, trace hash, full enumeration
    config and the message spec instead.

    Keys are 64-bit; with the store's realistic populations (at most
    tens of thousands of entries) accidental collision odds are below
    one in ten billion. The store additionally checks the frame kind
    and payload invariants on every read, so an undecodable or
    mismatched entry is treated as absent, never returned as data. *)

type t
(** A composed 64-bit cache key. *)

val to_hex : t -> string
(** 16 lowercase hex characters — the entry's file name in the store. *)

val trace_hash : Psn_trace.Trace.t -> int64
(** {!Fnv} digest of the trace's canonical {!Codec} encoding: two
    traces share a hash iff they have the same population, horizon,
    node kinds and contact set. *)

val fault_hash : Psn_sim.Faults.spec -> int64
(** Digest of a fault spec (loss, crash rate, downtime, jitter, seed).
    Plans compile deterministically from (spec, population, horizon),
    and the trace hash already pins population and horizon, so the
    spec digest identifies the compiled plan. *)

val outcome :
  trace_hash:int64 ->
  workload:Psn_sim.Workload.spec ->
  algo:string ->
  seed:int64 ->
  ?faults:Psn_sim.Faults.spec ->
  unit ->
  t
(** Key of one [Runner.run_seed] outcome: (trace, workload, algorithm,
    seed, faults, format version). *)

val enumeration :
  trace_hash:int64 ->
  config:Psn_paths.Enumerate.config ->
  src:Psn_trace.Node.id ->
  dst:Psn_trace.Node.id ->
  t_create:float ->
  t
(** Key of one {!Psn_paths.Enumerate.run} result over the snapshot of
    the hashed trace. *)

val named : family:string -> string -> t
(** Name-addressed key for mutable-by-design entries — unlike
    {!outcome}/{!enumeration} keys it names a {e slot}, not an input
    closure, so successive writes under the same name overwrite each
    other. Used by [psn serve] for session snapshots
    ([family:"serve-snapshot" "<session>"]). Neither string may
    contain NUL ([Invalid_argument] otherwise); the format version is
    folded in like every other key family. *)
