(** Canonical binary codec for stored results.

    Every artifact the store holds is one {e frame}:

    {v
    offset 0   magic   "PSNS"                 (4 bytes)
    offset 4   version u16, little-endian     (currently 1)
    offset 6   kind    u8                     (manifest/trace/outcome/...)
    offset 7   length  u32, little-endian     (payload bytes)
    offset 11  payload
    offset 11+length  crc32  u32, little-endian
    v}

    The CRC (IEEE 802.3 polynomial) covers everything after the magic
    — version, kind, length and payload — so flipping any single byte
    of a frame is detected. Decoding never raises: every failure comes
    back as an {!error} carrying the byte offset where the check
    failed, which is what [store verify] reports.

    The encoding is {e canonical}: a value has exactly one byte
    representation (fixed field order, little-endian integers, IEEE-754
    bit patterns for floats — NaN payloads included), so content hashes
    of the encoding are stable and [encode (decode s) = s] for every
    valid frame. Explicitly {e not} [Marshal]: marshalled bytes depend
    on the compiler version and value sharing, which would silently
    re-key the whole store (the [marshal] lint rule bans it in [lib/]).

    Bumping {!version} invalidates every existing entry at decode time
    (and {!Key} folds the version into cache keys, so stale entries are
    simply never looked up again and can be [gc]'d). *)

type kind =
  | Manifest  (** The store's index frame. *)
  | Trace  (** A contact trace — hashed for keys, storable as data. *)
  | Outcome  (** One {!Psn_sim.Engine.outcome} (a per-seed run). *)
  | Metrics  (** One {!Psn_sim.Metrics.t} summary row. *)
  | Enumeration  (** One {!Psn_paths.Enumerate.result}. *)
  | Blob  (** Opaque caller bytes (serve-session snapshots). *)

val version : int
(** Format version written into (and required of) every frame. *)

val equal_kind : kind -> kind -> bool

val kind_name : kind -> string
(** ["manifest"], ["trace"], ... for diagnostics. *)

type error = {
  offset : int;  (** Byte offset in the frame where the check failed. *)
  reason : string;
}

val pp_error : Format.formatter -> error -> unit
(** ["offset 11: CRC mismatch (stored deadbeef, computed 0000cafe)"]. *)

(** {1 Artifact frames}

    Each [encode_x] returns a complete frame; each [decode_x] accepts
    exactly one frame of the matching kind ([Error] on any other kind,
    truncation, bad CRC or malformed payload — never an exception). *)

val encode_trace : Psn_trace.Trace.t -> string
val decode_trace : string -> (Psn_trace.Trace.t, error) result
val encode_outcome : Psn_sim.Engine.outcome -> string
val decode_outcome : string -> (Psn_sim.Engine.outcome, error) result
val encode_metrics : Psn_sim.Metrics.t -> string
val decode_metrics : string -> (Psn_sim.Metrics.t, error) result
val encode_enumeration : Psn_paths.Enumerate.result -> string
val decode_enumeration : string -> (Psn_paths.Enumerate.result, error) result

val encode_blob : string -> string
(** Wraps the caller's bytes verbatim in a {!Blob} frame. The payload
    has no codec-level structure — only the frame's length and CRC
    checks apply. Canonicity therefore rests on the caller producing
    canonical bytes (the serve layer's snapshot text does). *)

val decode_blob : string -> (string, error) result

(** {1 The manifest frame}

    The store's index: logical access clock, lifetime hit/miss
    counters and one row per entry. Access stamps are ticks of the
    clock, never wall time — eviction order must be a function of the
    store's history, not of when it ran. *)

type manifest_entry = {
  e_key : string;  (** 16-char hex cache key (the entry's file name). *)
  e_kind : kind;
  e_size : int;  (** Frame size on disk, bytes. *)
  e_last_access : int64;  (** Clock value at last hit or write. *)
}

type manifest = {
  m_clock : int64;
  m_hits : int64;
  m_misses : int64;
  m_entries : manifest_entry list;
}

val encode_manifest : manifest -> string
val decode_manifest : string -> (manifest, error) result

(** {1 Verification} *)

val verify_frame : string -> (kind, error) result
(** Full fsck of one frame: header, CRC, and a complete payload decode
    for whatever kind the frame declares. *)
