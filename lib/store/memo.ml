let runner_cache ~store ~trace_hash ~workload ?faults ~algo () =
  let key seed = Key.outcome ~trace_hash ~workload ~algo ~seed ?faults () in
  {
    Psn_sim.Cache.find = (fun ~seed -> Store.find_outcome store (key seed));
    store = (fun ~seed outcome -> Store.put_outcome store (key seed) outcome);
  }
