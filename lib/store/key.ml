module Workload = Psn_sim.Workload
module Faults = Psn_sim.Faults

type t = int64

let to_hex = Fnv.to_hex

let trace_hash trace = Fnv.of_string (Codec.encode_trace trace)

(* Key material is written with the same fixed-width little-endian
   discipline as the codec payloads: every field has exactly one byte
   representation, so the digest is canonical. *)

let w_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let fault_material b (f : Faults.spec) =
  w_f64 b f.Faults.loss;
  w_f64 b f.Faults.crash_rate;
  w_f64 b f.Faults.down_time;
  w_f64 b f.Faults.jitter;
  Buffer.add_int64_le b f.Faults.seed

let fault_hash f =
  let b = Buffer.create 40 in
  fault_material b f;
  Fnv.of_string (Buffer.contents b)

(* Leading tag byte separates the key families; the format version is
   folded in so a codec bump orphans (never resurrects) old entries. *)
let digest tag fill =
  let b = Buffer.create 96 in
  Buffer.add_uint8 b tag;
  Buffer.add_uint16_le b Codec.version;
  fill b;
  Fnv.of_string (Buffer.contents b)

let outcome ~trace_hash ~workload ~algo ~seed ?faults () =
  digest 1 (fun b ->
      Buffer.add_int64_le b trace_hash;
      w_f64 b workload.Workload.rate;
      w_f64 b workload.Workload.t_start;
      w_f64 b workload.Workload.t_end;
      Buffer.add_int64_le b (Int64.of_int workload.Workload.n_nodes);
      Buffer.add_int64_le b seed;
      (match faults with
      | None -> Buffer.add_uint8 b 0
      | Some f ->
        Buffer.add_uint8 b 1;
        Buffer.add_int64_le b (fault_hash f));
      Buffer.add_string b algo)

let named ~family name =
  (* NUL separates the two variable-length fields so ("ab","c") and
     ("a","bc") cannot collide; neither side may contain NUL. *)
  if String.contains family '\000' || String.contains name '\000' then
    invalid_arg "Key.named: family and name must not contain NUL";
  digest 3 (fun b ->
      Buffer.add_string b family;
      Buffer.add_uint8 b 0;
      Buffer.add_string b name)

let enumeration ~trace_hash ~config ~src ~dst ~t_create =
  digest 2 (fun b ->
      Buffer.add_int64_le b trace_hash;
      Buffer.add_int64_le b (Int64.of_int config.Psn_paths.Enumerate.k);
      (match config.Psn_paths.Enumerate.max_hops with
      | None -> Buffer.add_uint8 b 0
      | Some h ->
        Buffer.add_uint8 b 1;
        Buffer.add_int64_le b (Int64.of_int h));
      (match config.Psn_paths.Enumerate.stop_at_total with
      | None -> Buffer.add_uint8 b 0
      | Some n ->
        Buffer.add_uint8 b 1;
        Buffer.add_int64_le b (Int64.of_int n));
      Buffer.add_uint8 b (if config.Psn_paths.Enumerate.exhaustive then 1 else 0);
      Buffer.add_int64_le b (Int64.of_int src);
      Buffer.add_int64_le b (Int64.of_int dst);
      w_f64 b t_create)
