(** On-disk content-addressed result store.

    Layout under the store directory:

    {v
    manifest.psn          index frame (clock, hit/miss counters, rows)
    ab/cd/abcd0123....psn entry frames, sharded on the key's first
                          two hex-pairs
    v}

    Every write is atomic: the frame goes to a [.tmp] file in the
    entry's shard directory and is renamed into place, so readers (and
    crashes) never observe a torn entry. The manifest is rewritten the
    same way after every mutating operation.

    Crash safety goes further than atomic writes: before an insert's
    rename or a gc unlink, the store appends the intent (["I <hex>"] /
    ["D <hex>"]) to a flushed text journal ([journal.psn]), deleted
    once the subsequent manifest rewrite has made index and shard tree
    agree. {!open_} replays any journal left by a crash — adopting
    committed frames the manifest missed (a committed entry is never
    lost), dropping rows whose frame never landed, completing
    interrupted deletions — and sweeps every orphaned [.tmp] file.
    Replay trusts disk, so it is idempotent under repeated crashes.
    The dangerous windows are named {!Psn_robust.Failpoint} sites
    ([store.insert.pre_journal], [store.insert.pre_rename],
    [store.insert.post_rename], [store.gc.pre_remove],
    [store.gc.post_remove], [store.manifest.pre_rename]); the crash
    matrix test kills the process at each and asserts {!verify} is
    clean on reopen.

    A corrupt entry is never fatal anywhere: {!find_outcome} and
    {!find_enumeration} treat it as a miss (the caller recomputes and
    the subsequent put overwrites — self-repair), and {!verify}
    reports it with its path and the failing byte offset.

    Access stamps and eviction order come from a logical clock that
    ticks once per store operation — never wall time — so [gc] is a
    deterministic function of the store's history.

    The store is single-process, single-writer: callers in one process
    must funnel operations through one [t] from one domain (the runner
    integration queries before and stores after its parallel section,
    from the calling domain). *)

type t

val open_ : ?telemetry:Psn_telemetry.Telemetry.sink -> dir:string -> unit -> t
(** Open (creating the directory if needed) the store at [dir]. First
    sweeps orphaned [.tmp] files and replays any crash journal (see
    above), then loads the manifest; if it is missing or corrupt,
    rebuilds the index by scanning the shard directories and verifying
    each frame, dropping undecodable entries. Raises [Sys_error] only
    if [dir] cannot be created or read at all.

    [telemetry] (default null) records ["store.lookup"] /
    ["store.insert"] / ["store.gc"] spans and counters for hits,
    misses, inserts, corrupt-frame self-repairs, bytes read/written,
    gc evictions, plus ["store.tmp_swept"] and
    ["store.journal_replays"] when recovery found work at open.
    Recording happens on the calling domain's track
    — consistent with the single-domain contract below — and never
    changes what the store returns. *)

val dir : t -> string

(** {1 Memoization} *)

val find_outcome : t -> Key.t -> Psn_sim.Engine.outcome option
(** [None] on a missing, undecodable or wrong-kind entry; every call
    counts as a hit or a miss in {!stats}. *)

val put_outcome : t -> Key.t -> Psn_sim.Engine.outcome -> unit
(** Atomically (over)write the entry for this key. *)

val find_enumeration : t -> Key.t -> Psn_paths.Enumerate.result option
val put_enumeration : t -> Key.t -> Psn_paths.Enumerate.result -> unit

val find_blob : t -> Key.t -> string option
(** Opaque-bytes entries, typically under {!Key.named} slots. Same
    miss semantics as the typed finders: a corrupt or wrong-kind frame
    reads as absent. *)

val put_blob : t -> Key.t -> string -> unit
(** Atomically (over)write opaque bytes — [psn serve] session
    snapshots live here. *)

(** {1 Maintenance} *)

type stats = {
  entries : int;
  bytes : int;  (** Sum of entry frame sizes (manifest excluded). *)
  hits : int64;  (** Lifetime, persisted in the manifest. *)
  misses : int64;
  hit_rate : float option;
      (** [hits / (hits + misses)], [None] before the first lookup.
          Computed here once; the CLI's [store stats] output and the
          profile report both reuse this field. *)
  tmp_swept : int;
      (** Orphaned [.tmp] files removed when this handle was opened. *)
  journal_replays : int;
      (** Journal intents replayed when this handle was opened — zero
          unless the previous process died mid-operation. *)
}

val stats : t -> stats

type gc_report = {
  evicted : int;
  freed_bytes : int;
  kept : int;
  kept_bytes : int;
}

val gc : t -> max_bytes:int -> gc_report
(** Evict least-recently-used entries (by logical access stamp, ties
    broken by key hex) until at most [max_bytes] of entry data
    remain. [gc ~max_bytes:0] empties the store. *)

type fsck_error = {
  fsck_path : string;  (** Path relative to the store directory. *)
  fsck_offset : int;  (** Byte offset of the failed check. *)
  fsck_reason : string;
}

type fsck_report = {
  checked : int;
  ok : int;
  fsck_errors : fsck_error list;  (** Sorted by path. *)
}

val verify : t -> fsck_report
(** Fully decode every entry on disk ({!Codec.verify_frame}) plus the
    manifest, reporting — never raising on — every corrupt frame.
    Also flags entries present on disk but missing from the index and
    vice versa. *)
