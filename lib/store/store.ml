module Det_tbl = Psn_det.Det_tbl
module T = Psn_telemetry.Telemetry
module Failpoint = Psn_robust.Failpoint
module Flight = Psn_robust.Flight

type entry = {
  kind : Codec.kind;
  size : int;
  mutable last_access : int64;
}

type t = {
  dir : string;
  tbl : (string, entry) Hashtbl.t;  (* hex key -> entry *)
  mutable clock : int64;  (* logical access clock; never wall time *)
  mutable hits : int64;
  mutable misses : int64;
  tmp_swept : int;  (* orphaned .tmp files removed at open *)
  journal_replays : int;  (* journal intents replayed at open *)
  telemetry : T.sink;
      (* Recording sink; describes operations, never steers them. The
         store is single-domain (see .mli), so the caller's sink is
         safe to keep. *)
}

let dir t = t.dir

let tick st =
  st.clock <- Int64.add st.clock 1L;
  st.clock

(* ---- paths ---------------------------------------------------------- *)

let manifest_name = "manifest.psn"
let manifest_path dir = Filename.concat dir manifest_name

let journal_name = "journal.psn"
let journal_path dir = Filename.concat dir journal_name

let entry_rel hex =
  Filename.concat (String.sub hex 0 2)
    (Filename.concat (String.sub hex 2 2) (hex ^ ".psn"))

let entry_path st hex = Filename.concat st.dir (entry_rel hex)

let rec ensure_dir path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if String.length parent < String.length path then ensure_dir parent;
    match Sys.mkdir path 0o755 with
    | () -> ()
    | exception Sys_error _ ->
      (* lost a race or the parent reappeared: only fatal if the path
         still isn't a directory *)
      if not (Sys.is_directory path) then
        raise (Sys_error (path ^ ": cannot create directory"))
  end

(* ---- raw file I/O --------------------------------------------------- *)

let read_file path =
  match In_channel.open_bin path with
  | ic ->
    let data = In_channel.input_all ic in
    In_channel.close ic;
    Some data
  | exception Sys_error _ -> None

(* [fp] names the failpoint site between the temp write and the
   commit rename — the window a crash matrix must be able to hit. *)
let write_atomic ?fp path data =
  let tmp = path ^ ".tmp" in
  let oc = Out_channel.open_bin tmp in
  Out_channel.output_string oc data;
  Out_channel.close oc;
  (match fp with None -> () | Some site -> Failpoint.trigger site);
  Sys.rename tmp path

let remove_quiet path =
  match Sys.remove path with () -> true | exception Sys_error _ -> false

(* ---- intent journal -------------------------------------------------- *)

(* The journal records what the store is *about to* do to the shard
   tree, one text line per intent, appended and flushed before the
   action itself:

     I <hex>   an insert is heading for its rename
     D <hex>   gc is about to unlink this entry

   The commit point of every operation is a rename or unlink; the
   manifest rewrite that follows merely caches the result. So after a
   crash the journal names exactly the keys whose disk state may
   disagree with the manifest, and replaying it (see [open_]) means
   re-deriving those rows from disk: adopt a verified frame the
   manifest missed, complete a deletion the manifest still lists.
   Replay trusts disk, so it is idempotent — a crash during replay or
   before the journal truncation just replays again. The journal is
   deleted once the manifest is saved and reality agrees with it. *)

let journal_append st line =
  let oc =
    Out_channel.open_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644 (journal_path st.dir)
  in
  Out_channel.output_string oc line;
  Out_channel.output_char oc '\n';
  Out_channel.close oc

let journal_clear dir = ignore (remove_quiet (journal_path dir))

let is_hex_char c =
  let n = Char.code c in
  (n >= Char.code '0' && n <= Char.code '9')
  || (n >= Char.code 'a' && n <= Char.code 'f')

(* A crash can tear the final line mid-append; anything that does not
   parse as a full intent is ignored (its action never ran). *)
let parse_journal_line line =
  if
    String.length line = 18
    && (Char.equal line.[0] 'I' || Char.equal line.[0] 'D')
    && Char.equal line.[1] ' '
    && String.for_all is_hex_char (String.sub line 2 16)
  then
    Some ((if Char.equal line.[0] 'I' then `Insert else `Delete), String.sub line 2 16)
  else None

let read_journal dir =
  match read_file (journal_path dir) with
  | None -> []
  | Some data -> String.split_on_char '\n' data |> List.filter_map parse_journal_line

(* ---- disk walk ------------------------------------------------------ *)

let sorted_names dir =
  match Sys.readdir dir with
  | arr ->
    Array.sort String.compare arr;
    Array.to_list arr
  | exception Sys_error _ -> []

let is_shard dir name =
  String.length name = 2 && Sys.is_directory (Filename.concat dir name)

(* Visit every entry frame under the shard directories in path order.
   [f ~rel ~data] gets the path relative to the store root and the raw
   bytes ([None] if the file vanished or is unreadable). *)
let walk_entries dir f =
  List.iter
    (fun s1 ->
      if is_shard dir s1 then
        let d1 = Filename.concat dir s1 in
        List.iter
          (fun s2 ->
            if is_shard d1 s2 then
              let d2 = Filename.concat d1 s2 in
              List.iter
                (fun file ->
                  if Filename.check_suffix file ".psn" then
                    let rel =
                      Filename.concat s1 (Filename.concat s2 file)
                    in
                    f ~rel ~data:(read_file (Filename.concat dir rel)))
                (sorted_names d2))
          (sorted_names d1))
    (sorted_names dir)

(* A crash between a temp write and its rename strands a [.tmp] file;
   such a file is garbage by construction (its frame was never
   committed), so opening the store removes every one — store root
   (the manifest's temp) and both shard levels. *)
let sweep_tmp dir =
  let count = ref 0 in
  let sweep_dir d =
    List.iter
      (fun name ->
        if Filename.check_suffix name ".tmp" && remove_quiet (Filename.concat d name)
        then incr count)
      (sorted_names d)
  in
  sweep_dir dir;
  List.iter
    (fun s1 ->
      if is_shard dir s1 then begin
        let d1 = Filename.concat dir s1 in
        sweep_dir d1;
        List.iter
          (fun s2 -> if is_shard d1 s2 then sweep_dir (Filename.concat d1 s2))
          (sorted_names d1)
      end)
    (sorted_names dir);
  !count

(* ---- manifest ------------------------------------------------------- *)

let save_manifest st =
  let m_entries =
    Det_tbl.bindings ~cmp:String.compare st.tbl
    |> List.map (fun (hex, e) ->
           {
             Codec.e_key = hex;
             e_kind = e.kind;
             e_size = e.size;
             e_last_access = e.last_access;
           })
  in
  let m =
    {
      Codec.m_clock = st.clock;
      m_hits = st.hits;
      m_misses = st.misses;
      m_entries;
    }
  in
  write_atomic ~fp:"store.manifest.pre_rename" (manifest_path st.dir)
    (Codec.encode_manifest m)

(* Rebuild the index from disk: every frame that fully verifies gets a
   row with its access stamp reset to zero. Deterministic — depends
   only on directory contents, not on scan time. *)
let rescan dir tbl =
  walk_entries dir (fun ~rel ~data ->
      match data with
      | None -> ()
      | Some data -> (
        match Codec.verify_frame data with
        | Error (_ : Codec.error) -> ()
        | Ok kind ->
          let hex = Filename.remove_extension (Filename.basename rel) in
          Hashtbl.replace tbl hex
            { kind; size = String.length data; last_access = 0L }))

(* Bring the index back in line with the shard tree after an
   interrupted operation: for each journaled intent, disk is the
   truth. An [I] whose frame landed (rename happened, manifest write
   did not) is adopted so no committed entry is ever lost; an [I]
   whose frame is absent or torn never committed, so any stale row
   goes. A [D] is completed — the unlink is re-issued (idempotent) and
   the row dropped. *)
let replay_journal dir tbl intents =
  List.iter
    (fun (op, hex) ->
      let path = Filename.concat dir (entry_rel hex) in
      match op with
      | `Insert -> (
        match read_file path with
        | None -> Hashtbl.remove tbl hex
        | Some data -> (
          match Codec.verify_frame data with
          | Ok kind ->
            if not (Hashtbl.mem tbl hex) then
              Hashtbl.replace tbl hex
                { kind; size = String.length data; last_access = 0L }
          | Error (_ : Codec.error) ->
            ignore (remove_quiet path);
            Hashtbl.remove tbl hex))
      | `Delete ->
        ignore (remove_quiet path);
        Hashtbl.remove tbl hex)
    intents

let open_ ?(telemetry = T.Sink.null) ~dir () =
  ensure_dir dir;
  let tmp_swept = sweep_tmp dir in
  let intents = read_journal dir in
  let tbl = Hashtbl.create 64 in
  let clock, hits, misses =
    match read_file (manifest_path dir) with
    | None ->
      rescan dir tbl;
      (0L, 0L, 0L)
    | Some data -> (
      match Codec.decode_manifest data with
      | Error (_ : Codec.error) ->
        rescan dir tbl;
        (0L, 0L, 0L)
      | Ok m ->
        List.iter
          (fun (e : Codec.manifest_entry) ->
            Hashtbl.replace tbl e.Codec.e_key
              {
                kind = e.Codec.e_kind;
                size = e.Codec.e_size;
                last_access = e.Codec.e_last_access;
              })
          m.Codec.m_entries;
        (m.Codec.m_clock, m.Codec.m_hits, m.Codec.m_misses))
  in
  replay_journal dir tbl intents;
  let journal_replays = List.length intents in
  let st =
    { dir; tbl; clock; hits; misses; tmp_swept; journal_replays; telemetry }
  in
  save_manifest st;
  (* Only now does the journal go: the manifest just written agrees
     with the shard tree, so there is nothing left to replay. A crash
     anywhere above re-runs the same replay against the same disk. *)
  journal_clear dir;
  if tmp_swept > 0 then T.count telemetry "store.tmp_swept" tmp_swept;
  if journal_replays > 0 then T.count telemetry "store.journal_replays" journal_replays;
  st

(* ---- memoization ---------------------------------------------------- *)

let find_with decode ~kind st key =
  T.with_span st.telemetry "store.lookup"
  @@ fun () ->
  let hex = Key.to_hex key in
  let stamp = tick st in
  let found =
    match read_file (entry_path st hex) with
    | None -> None
    | Some data -> (
      match decode data with
      | Ok v -> Some (v, String.length data)
      | Error (_ : Codec.error) ->
        (* undecodable frame: the self-repair path below will drop the
           index row and the caller's put will overwrite it *)
        T.count st.telemetry "store.corrupt_repairs" 1;
        None)
  in
  match found with
  | Some (v, size) ->
    st.hits <- Int64.add st.hits 1L;
    T.count st.telemetry "store.hits" 1;
    T.count st.telemetry "store.bytes_read" size;
    Hashtbl.replace st.tbl hex { kind; size; last_access = stamp };
    save_manifest st;
    Some v
  | None ->
    (* missing or undecodable entry: a miss. Drop any stale index row
       so the store self-repairs; the caller's recompute-and-put
       overwrites the bad frame. *)
    st.misses <- Int64.add st.misses 1L;
    T.count st.telemetry "store.misses" 1;
    Hashtbl.remove st.tbl hex;
    save_manifest st;
    None

let put_with encode ~kind st key v =
  T.with_span st.telemetry "store.insert"
  @@ fun () ->
  let hex = Key.to_hex key in
  let stamp = tick st in
  let data = encode v in
  let path = entry_path st hex in
  ensure_dir (Filename.dirname path);
  Failpoint.trigger "store.insert.pre_journal";
  journal_append st ("I " ^ hex);
  write_atomic ~fp:"store.insert.pre_rename" path data;
  Failpoint.trigger "store.insert.post_rename";
  T.count st.telemetry "store.inserts" 1;
  T.count st.telemetry "store.bytes_written" (String.length data);
  Flight.note "store.insert" [ ("key", hex); ("bytes", string_of_int (String.length data)) ];
  Hashtbl.replace st.tbl hex
    { kind; size = String.length data; last_access = stamp };
  save_manifest st;
  journal_clear st.dir

let find_outcome st key = find_with Codec.decode_outcome ~kind:Codec.Outcome st key
let put_outcome st key v = put_with Codec.encode_outcome ~kind:Codec.Outcome st key v

let find_enumeration st key =
  find_with Codec.decode_enumeration ~kind:Codec.Enumeration st key

let put_enumeration st key v =
  put_with Codec.encode_enumeration ~kind:Codec.Enumeration st key v

let find_blob st key = find_with Codec.decode_blob ~kind:Codec.Blob st key
let put_blob st key v = put_with Codec.encode_blob ~kind:Codec.Blob st key v

(* ---- maintenance ---------------------------------------------------- *)

type stats = {
  entries : int;
  bytes : int;
  hits : int64;
  misses : int64;
  hit_rate : float option;
  tmp_swept : int;
  journal_replays : int;
}

(* The one place the hit rate is computed; the CLI's [store stats]
   output and the profile report both read it from here. *)
let hit_rate ~hits ~misses =
  let lookups = Int64.add hits misses in
  if Int64.equal lookups 0L then None
  else Some (Int64.to_float hits /. Int64.to_float lookups)

let stats st =
  let bindings = Det_tbl.bindings ~cmp:String.compare st.tbl in
  let bytes = List.fold_left (fun acc (_, e) -> acc + e.size) 0 bindings in
  {
    entries = List.length bindings;
    bytes;
    hits = st.hits;
    misses = st.misses;
    hit_rate = hit_rate ~hits:st.hits ~misses:st.misses;
    tmp_swept = st.tmp_swept;
    journal_replays = st.journal_replays;
  }

type gc_report = {
  evicted : int;
  freed_bytes : int;
  kept : int;
  kept_bytes : int;
}

let gc st ~max_bytes =
  T.with_span st.telemetry "store.gc"
  @@ fun () ->
  let bindings = Det_tbl.bindings ~cmp:String.compare st.tbl in
  let total = List.fold_left (fun acc (_, e) -> acc + e.size) 0 bindings in
  (* Least-recently-used first; access stamps are logical clock ticks,
     ties broken by key so the order is a pure function of history. *)
  let order =
    List.sort
      (fun (h1, e1) (h2, e2) ->
        match Int64.compare e1.last_access e2.last_access with
        | 0 -> String.compare h1 h2
        | c -> c)
      bindings
  in
  let rec evict_loop evicted freed remaining = function
    | [] -> (evicted, freed)
    | (hex, e) :: rest ->
      if remaining <= max_bytes then (evicted, freed)
      else begin
        journal_append st ("D " ^ hex);
        Failpoint.trigger "store.gc.pre_remove";
        ignore (remove_quiet (entry_path st hex));
        Failpoint.trigger "store.gc.post_remove";
        Hashtbl.remove st.tbl hex;
        evict_loop (evicted + 1) (freed + e.size) (remaining - e.size) rest
      end
  in
  let evicted, freed_bytes = evict_loop 0 0 total order in
  T.count st.telemetry "store.evictions" evicted;
  T.count st.telemetry "store.evicted_bytes" freed_bytes;
  if evicted > 0 then
    Flight.note "store.gc"
      [ ("evicted", string_of_int evicted); ("freed_bytes", string_of_int freed_bytes) ];
  save_manifest st;
  journal_clear st.dir;
  {
    evicted;
    freed_bytes;
    kept = Hashtbl.length st.tbl;
    kept_bytes = total - freed_bytes;
  }

type fsck_error = {
  fsck_path : string;
  fsck_offset : int;
  fsck_reason : string;
}

type fsck_report = {
  checked : int;
  ok : int;
  fsck_errors : fsck_error list;
}

let verify st =
  let checked = ref 0 in
  let ok = ref 0 in
  let errors = ref [] in
  let seen = Hashtbl.create 64 in
  let err fsck_path fsck_offset fsck_reason =
    errors := { fsck_path; fsck_offset; fsck_reason } :: !errors
  in
  walk_entries st.dir (fun ~rel ~data ->
      incr checked;
      Hashtbl.replace seen (Filename.remove_extension (Filename.basename rel)) ();
      match data with
      | None -> err rel 0 "unreadable"
      | Some data -> (
        match Codec.verify_frame data with
        | Ok (_ : Codec.kind) ->
          incr ok;
          if
            not
              (Hashtbl.mem st.tbl
                 (Filename.remove_extension (Filename.basename rel)))
          then err rel 0 "not in manifest index"
        | Error (e : Codec.error) -> err rel e.Codec.offset e.Codec.reason));
  (* the manifest frame itself *)
  (match read_file (manifest_path st.dir) with
  | None -> err manifest_name 0 "missing"
  | Some data ->
    incr checked;
    (match Codec.decode_manifest data with
    | Ok (_ : Codec.manifest) -> incr ok
    | Error (e : Codec.error) -> err manifest_name e.Codec.offset e.Codec.reason));
  (* index rows whose frame is gone from disk *)
  List.iter
    (fun (hex, (_ : entry)) ->
      if not (Hashtbl.mem seen hex) then
        err (entry_rel hex) 0 "indexed but missing on disk")
    (Det_tbl.bindings ~cmp:String.compare st.tbl);
  let fsck_errors =
    List.sort
      (fun a b ->
        match String.compare a.fsck_path b.fsck_path with
        | 0 -> Int.compare a.fsck_offset b.fsck_offset
        | c -> c)
      !errors
  in
  { checked = !checked; ok = !ok; fsck_errors }
