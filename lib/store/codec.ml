module Trace_ = Psn_trace.Trace
module Contact = Psn_trace.Contact
module Node = Psn_trace.Node
module Engine = Psn_sim.Engine
module Message = Psn_sim.Message
module Metrics_ = Psn_sim.Metrics
module Enumerate = Psn_paths.Enumerate
module Path = Psn_paths.Path

type kind = Manifest | Trace | Outcome | Metrics | Enumeration | Blob

let version = 1
let magic = "PSNS"
let header_len = 11 (* magic 4 + version 2 + kind 1 + length 4 *)
let trailer_len = 4 (* crc32 *)

let kind_tag = function
  | Manifest -> 0
  | Trace -> 1
  | Outcome -> 2
  | Metrics -> 3
  | Enumeration -> 4
  | Blob -> 5

let kind_of_tag = function
  | 0 -> Some Manifest
  | 1 -> Some Trace
  | 2 -> Some Outcome
  | 3 -> Some Metrics
  | 4 -> Some Enumeration
  | 5 -> Some Blob
  | _ -> None

let equal_kind a b = Int.equal (kind_tag a) (kind_tag b)

let kind_name = function
  | Manifest -> "manifest"
  | Trace -> "trace"
  | Outcome -> "outcome"
  | Metrics -> "metrics"
  | Enumeration -> "enumeration"
  | Blob -> "blob"

type error = { offset : int; reason : string }

let pp_error ppf e = Format.fprintf ppf "offset %d: %s" e.offset e.reason

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)              *)

let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 s ~pos ~len =
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := crc_table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Primitive writers (little-endian, fixed width)                      *)

let w_u8 = Buffer.add_uint8
let w_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let w_i64 = Buffer.add_int64_le
let w_f64 b v = w_i64 b (Int64.bits_of_float v)
let w_bool b v = w_u8 b (if v then 1 else 0)
let w_opt_f64 b = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    w_f64 b v

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

(* ------------------------------------------------------------------ *)
(* Primitive readers: bounds-checked, never past the payload          *)

(* Payload decoding reports failures through this local exception; the
   frame driver below converts it to an [error] — no exception ever
   escapes a [decode_*]. *)
exception Bad of int * string

type reader = { data : string; mutable pos : int }

let need r n =
  if n < 0 || r.pos + n > String.length r.data then
    raise (Bad (r.pos, Printf.sprintf "truncated payload (need %d more bytes)" n))

let r_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> raise (Bad (r.pos - 1, Printf.sprintf "bad boolean byte %d" v))

let r_opt_f64 r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (r_f64 r)
  | v -> raise (Bad (r.pos - 1, Printf.sprintf "bad option tag %d" v))

let r_str r =
  let len = r_u32 r in
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

(* ------------------------------------------------------------------ *)
(* Frame layer                                                        *)

let frame ~kind payload =
  let b = Buffer.create (header_len + String.length payload + trailer_len) in
  Buffer.add_string b magic;
  Buffer.add_uint16_le b version;
  w_u8 b (kind_tag kind);
  w_u32 b (String.length payload);
  Buffer.add_string b payload;
  let body = Buffer.contents b in
  let crc = crc32 body ~pos:4 ~len:(String.length body - 4) in
  w_u32 b crc;
  Buffer.contents b

(* Header, length and CRC checks; returns the declared kind and the
   payload. Every rejection names the offset of the failing field. *)
let open_frame s =
  let total = String.length s in
  if total < header_len + trailer_len then
    Error
      {
        offset = 0;
        reason =
          Printf.sprintf "truncated frame: %d bytes, need at least %d" total
            (header_len + trailer_len);
      }
  else if not (String.equal (String.sub s 0 4) magic) then
    Error { offset = 0; reason = "bad magic (not a psn-store frame)" }
  else begin
    let ver = Char.code s.[4] lor (Char.code s.[5] lsl 8) in
    if not (Int.equal ver version) then
      Error
        {
          offset = 4;
          reason = Printf.sprintf "unsupported format version %d (this build writes %d)" ver version;
        }
    else begin
      let paylen = Int32.to_int (String.get_int32_le s 7) land 0xFFFFFFFF in
      if not (Int.equal (header_len + paylen + trailer_len) total) then
        Error
          {
            offset = 7;
            reason =
              Printf.sprintf "declared payload length %d disagrees with frame size %d" paylen
                total;
          }
      else begin
        let stored =
          Int32.to_int (String.get_int32_le s (header_len + paylen)) land 0xFFFFFFFF
        in
        let computed = crc32 s ~pos:4 ~len:(header_len + paylen - 4) in
        if not (Int.equal stored computed) then
          Error
            {
              offset = header_len;
              reason = Printf.sprintf "CRC mismatch (stored %08x, computed %08x)" stored computed;
            }
        else
          match kind_of_tag (Char.code s.[6]) with
          | None ->
            Error { offset = 6; reason = Printf.sprintf "unknown frame kind %d" (Char.code s.[6]) }
          | Some kind -> Ok (kind, String.sub s header_len paylen)
      end
    end
  end

(* Runs a payload reader to completion, converting its failures (and
   the constructors' [Invalid_argument] on semantically impossible
   values, reachable only through a CRC collision) into errors at
   frame-absolute offsets. *)
let run_reader payload read =
  let r = { data = payload; pos = 0 } in
  match read r with
  | v ->
    if Int.equal r.pos (String.length payload) then Ok v
    else Error { offset = header_len + r.pos; reason = "trailing bytes after payload" }
  | exception Bad (off, reason) -> Error { offset = header_len + off; reason }
  | exception Invalid_argument msg ->
    Error { offset = header_len; reason = "payload violates invariants: " ^ msg }

let decode_as expect read s =
  match open_frame s with
  | Error _ as e -> e
  | Ok (kind, payload) ->
    if not (equal_kind kind expect) then
      Error
        {
          offset = 6;
          reason =
            Printf.sprintf "expected a %s frame, found %s" (kind_name expect) (kind_name kind);
        }
    else run_reader payload read

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)

let trace_payload b t =
  let n = Trace_.n_nodes t in
  w_u32 b n;
  w_f64 b (Trace_.horizon t);
  Array.iter
    (fun k -> w_u8 b (match k with Node.Mobile -> 0 | Node.Stationary -> 1))
    (Trace_.kinds t);
  w_u32 b (Trace_.n_contacts t);
  Trace_.iter_contacts t (fun (c : Contact.t) ->
      w_u32 b c.Contact.a;
      w_u32 b c.Contact.b;
      w_f64 b c.Contact.t_start;
      w_f64 b c.Contact.t_end)

let read_trace r =
  let n_nodes = r_u32 r in
  let horizon = r_f64 r in
  need r n_nodes;
  let kinds =
    Array.init n_nodes (fun _ ->
        match r_u8 r with
        | 0 -> Node.Mobile
        | 1 -> Node.Stationary
        | v -> raise (Bad (r.pos - 1, Printf.sprintf "bad node kind %d" v)))
  in
  let n_contacts = r_u32 r in
  need r (n_contacts * 24);
  let contacts =
    List.init n_contacts (fun _ ->
        let a = r_u32 r in
        let b = r_u32 r in
        let t_start = r_f64 r in
        let t_end = r_f64 r in
        Contact.make ~a ~b ~t_start ~t_end)
  in
  Trace_.create ~n_nodes ~horizon ~kinds contacts

let encode_trace t =
  let b = Buffer.create (64 + (Trace_.n_contacts t * 24)) in
  trace_payload b t;
  frame ~kind:Trace (Buffer.contents b)

let decode_trace s = decode_as Trace read_trace s

(* ------------------------------------------------------------------ *)
(* Engine outcome                                                     *)

let outcome_payload b (o : Engine.outcome) =
  w_str b o.Engine.algorithm;
  w_u32 b (Array.length o.Engine.records);
  Array.iter
    (fun (rec_ : Engine.record) ->
      let m = rec_.Engine.message in
      w_u32 b m.Message.id;
      w_u32 b m.Message.src;
      w_u32 b m.Message.dst;
      w_f64 b m.Message.t_create;
      w_opt_f64 b rec_.Engine.delivered;
      w_u32 b rec_.Engine.copies;
      w_u32 b rec_.Engine.attempts)
    o.Engine.records;
  w_u32 b o.Engine.copies;
  w_u32 b o.Engine.attempts

let read_outcome r =
  let algorithm = r_str r in
  let n = r_u32 r in
  need r (n * 29) (* 20 message bytes + >=1 option byte + 8 counter bytes *);
  let records =
    Array.init n (fun _ ->
        let id = r_u32 r in
        let src = r_u32 r in
        let dst = r_u32 r in
        let t_create = r_f64 r in
        let delivered = r_opt_f64 r in
        let copies = r_u32 r in
        let attempts = r_u32 r in
        { Engine.message = Message.make ~id ~src ~dst ~t_create; delivered; copies; attempts })
  in
  let copies = r_u32 r in
  let attempts = r_u32 r in
  { Engine.algorithm; records; copies; attempts }

let encode_outcome o =
  let b = Buffer.create (64 + (Array.length o.Engine.records * 33)) in
  outcome_payload b o;
  frame ~kind:Outcome (Buffer.contents b)

let decode_outcome s = decode_as Outcome read_outcome s

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)

let metrics_payload b (m : Metrics_.t) =
  w_str b m.Metrics_.algorithm;
  w_u32 b m.Metrics_.messages;
  w_u32 b m.Metrics_.delivered;
  w_f64 b m.Metrics_.success_rate;
  w_f64 b m.Metrics_.mean_delay;
  w_f64 b m.Metrics_.median_delay;
  w_u32 b m.Metrics_.copies;
  w_u32 b m.Metrics_.attempts

let read_metrics r =
  let algorithm = r_str r in
  let messages = r_u32 r in
  let delivered = r_u32 r in
  let success_rate = r_f64 r in
  let mean_delay = r_f64 r in
  let median_delay = r_f64 r in
  let copies = r_u32 r in
  let attempts = r_u32 r in
  {
    Metrics_.algorithm;
    messages;
    delivered;
    success_rate;
    mean_delay;
    median_delay;
    copies;
    attempts;
  }

let encode_metrics m =
  let b = Buffer.create 96 in
  metrics_payload b m;
  frame ~kind:Metrics (Buffer.contents b)

let decode_metrics s = decode_as Metrics read_metrics s

(* ------------------------------------------------------------------ *)
(* Enumeration result                                                 *)

let enumeration_payload b (res : Enumerate.result) =
  w_u32 b res.Enumerate.src;
  w_u32 b res.Enumerate.dst;
  w_f64 b res.Enumerate.t_create;
  w_bool b res.Enumerate.stopped_early;
  w_u32 b res.Enumerate.steps_processed;
  w_u32 b (Array.length res.Enumerate.arrivals);
  Array.iter
    (fun (a : Enumerate.arrival) ->
      let hops = Path.hops a.Enumerate.path in
      w_u32 b (List.length hops);
      List.iter
        (fun (h : Path.hop) ->
          w_u32 b h.Path.node;
          w_u32 b h.Path.step)
        hops;
      w_u32 b a.Enumerate.step;
      w_f64 b a.Enumerate.time;
      w_f64 b a.Enumerate.duration)
    res.Enumerate.arrivals

let read_enumeration r =
  let src = r_u32 r in
  let dst = r_u32 r in
  let t_create = r_f64 r in
  let stopped_early = r_bool r in
  let steps_processed = r_u32 r in
  let n = r_u32 r in
  need r (n * 24) (* hop count (4) + step (4) + time and duration (16), per arrival *);
  let arrivals =
    Array.init n (fun _ ->
        let n_hops = r_u32 r in
        need r (n_hops * 8);
        let hops =
          List.init n_hops (fun _ ->
              let node = r_u32 r in
              let step = r_u32 r in
              { Path.node; step })
        in
        let step = r_u32 r in
        let time = r_f64 r in
        let duration = r_f64 r in
        { Enumerate.path = Path.of_hops hops; step; time; duration })
  in
  { Enumerate.arrivals; stopped_early; steps_processed; src; dst; t_create }

let encode_enumeration res =
  let b = Buffer.create (64 + (Array.length res.Enumerate.arrivals * 64)) in
  enumeration_payload b res;
  frame ~kind:Enumeration (Buffer.contents b)

let decode_enumeration s = decode_as Enumeration read_enumeration s

(* ------------------------------------------------------------------ *)
(* Blob                                                               *)

(* The payload is the caller's bytes verbatim — no internal structure
   beyond the frame's own length and CRC checks. Opaque by design: the
   serve layer stores its (versioned, self-describing) snapshot text
   here without the codec needing to know its schema. *)

let read_blob r =
  let n = String.length r.data - r.pos in
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let encode_blob s = frame ~kind:Blob s
let decode_blob s = decode_as Blob read_blob s

(* ------------------------------------------------------------------ *)
(* Manifest                                                           *)

type manifest_entry = { e_key : string; e_kind : kind; e_size : int; e_last_access : int64 }

type manifest = {
  m_clock : int64;
  m_hits : int64;
  m_misses : int64;
  m_entries : manifest_entry list;
}

let manifest_payload b m =
  w_i64 b m.m_clock;
  w_i64 b m.m_hits;
  w_i64 b m.m_misses;
  w_u32 b (List.length m.m_entries);
  List.iter
    (fun e ->
      w_str b e.e_key;
      w_u8 b (kind_tag e.e_kind);
      w_u32 b e.e_size;
      w_i64 b e.e_last_access)
    m.m_entries

let read_manifest r =
  let m_clock = r_i64 r in
  let m_hits = r_i64 r in
  let m_misses = r_i64 r in
  let n = r_u32 r in
  need r (n * 17) (* >=4 key-length bytes + kind + size + access stamp *);
  let m_entries =
    List.init n (fun _ ->
        let e_key = r_str r in
        let tag = r_u8 r in
        let e_kind =
          match kind_of_tag tag with
          | Some k -> k
          | None -> raise (Bad (r.pos - 1, Printf.sprintf "unknown entry kind %d" tag))
        in
        let e_size = r_u32 r in
        let e_last_access = r_i64 r in
        { e_key; e_kind; e_size; e_last_access })
  in
  { m_clock; m_hits; m_misses; m_entries }

let encode_manifest m =
  let b = Buffer.create (32 + (List.length m.m_entries * 40)) in
  manifest_payload b m;
  frame ~kind:Manifest (Buffer.contents b)

let decode_manifest s = decode_as Manifest read_manifest s

(* ------------------------------------------------------------------ *)
(* Verification                                                       *)

let verify_frame s =
  match open_frame s with
  | Error _ as e -> e
  | Ok (kind, payload) ->
    let read =
      match kind with
      | Manifest -> fun r -> ignore (read_manifest r)
      | Trace -> fun r -> ignore (read_trace r)
      | Outcome -> fun r -> ignore (read_outcome r)
      | Metrics -> fun r -> ignore (read_metrics r)
      | Enumeration -> fun r -> ignore (read_enumeration r)
      | Blob -> fun r -> ignore (read_blob r)
    in
    Result.map (fun () -> kind) (run_reader payload read)
