(* FNV-1a, 64-bit: h <- (h xor byte) * prime, with wrapping Int64
   multiplication. Parameters are the standard Fowler-Noll-Vo
   constants. *)

let offset_basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let of_string ?(init = offset_basis) s =
  let h = ref init in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let to_hex h = Printf.sprintf "%016Lx" h
