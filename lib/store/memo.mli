(** Glue from the on-disk store to the runner's cache interface. *)

val runner_cache :
  store:Store.t ->
  trace_hash:int64 ->
  workload:Psn_sim.Workload.spec ->
  ?faults:Psn_sim.Faults.spec ->
  algo:string ->
  unit ->
  Psn_sim.Cache.t
(** A per-algorithm outcome cache backed by [store]. [algo] must be
    the algorithm's stable registry id (see {!Key}); [trace_hash] is
    {!Key.trace_hash} of the trace being simulated — computed once by
    the caller and shared across all algorithms of a sweep. *)
