module Path = Psn_paths.Path
module Summary = Psn_stats.Summary

let mean_rates_by_hop classify paths =
  let by_hop : (int, Summary.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun path ->
      List.iteri
        (fun hop { Path.node; _ } ->
          let summary =
            match Hashtbl.find_opt by_hop hop with
            | Some s -> s
            | None ->
              let s = Summary.create () in
              Hashtbl.add by_hop hop s;
              s
          in
          Summary.add summary (Classify.rate classify node))
        (Path.hops path))
    paths;
  Psn_det.Det_tbl.bindings ~cmp:Int.compare by_hop
  |> List.map (fun (hop, summary) ->
         (hop, summary, Psn_stats.Confint.of_summary summary Psn_stats.Confint.C99))

let rate_ratios_by_hop classify paths =
  let by_pos : (int, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let final = ref [] in
  let note pos ratio =
    match Hashtbl.find_opt by_pos pos with
    | Some cell -> cell := ratio :: !cell
    | None -> Hashtbl.add by_pos pos (ref [ ratio ])
  in
  List.iter
    (fun path ->
      let nodes = Path.nodes path in
      let rec walk pos = function
        | a :: (b :: rest' as rest) ->
          let ra = Classify.rate classify a and rb = Classify.rate classify b in
          if ra > 0. then begin
            let ratio = rb /. ra in
            (* The last transition is destination-over-last-relay, kept
               apart as in the paper's final box. *)
            if List.is_empty rest' then final := ratio :: !final else note pos ratio
          end;
          walk (pos + 1) rest
        | [ _ ] | [] -> ()
      in
      walk 0 nodes)
    paths;
  let positions =
    Psn_det.Det_tbl.bindings ~cmp:Int.compare by_pos
    |> List.map (fun (pos, cell) -> (pos, !cell))
    |> List.map (fun (pos, ratios) ->
           (Printf.sprintf "%d/%d" (pos + 1) pos, Psn_stats.Boxplot.of_samples (Array.of_list ratios)))
  in
  if List.is_empty !final then positions
  else positions @ [ ("Dst/Lst", Psn_stats.Boxplot.of_samples (Array.of_list !final)) ]
