type node_class = In | Out

type pair_type = In_in | In_out | Out_in | Out_out

type t = { rates : float array; median : float }

let of_trace trace =
  let rates = Psn_trace.Trace.contact_rates trace in
  { rates; median = Psn_stats.Quantile.median rates }

let check t node =
  if node < 0 || node >= Array.length t.rates then invalid_arg "Classify: node out of range"

let rate t node =
  check t node;
  t.rates.(node)

let median_rate t = t.median

let node_class t node =
  check t node;
  if t.rates.(node) > t.median then In else Out

let pair_type t ~src ~dst =
  match (node_class t src, node_class t dst) with
  | In, In -> In_in
  | In, Out -> In_out
  | Out, In -> Out_in
  | Out, Out -> Out_out

let n_in t = Array.fold_left (fun acc r -> if r > t.median then acc + 1 else acc) 0 t.rates

let equal_pair_type a b =
  match (a, b) with
  | In_in, In_in | In_out, In_out | Out_in, Out_in | Out_out, Out_out -> true
  | (In_in | In_out | Out_in | Out_out), _ -> false

let pair_type_index = function In_in -> 0 | In_out -> 1 | Out_in -> 2 | Out_out -> 3
let compare_pair_type a b = Int.compare (pair_type_index a) (pair_type_index b)
let all_pair_types = [ In_in; In_out; Out_in; Out_out ]

let pair_type_name = function
  | In_in -> "in-in"
  | In_out -> "in-out"
  | Out_in -> "out-in"
  | Out_out -> "out-out"

let pp_node_class ppf c = Format.pp_print_string ppf (match c with In -> "in" | Out -> "out")
let pp_pair_type ppf p = Format.pp_print_string ppf (pair_type_name p)
