(** In/out node classification (§5.2).

    The paper splits each dataset's nodes into two equal-sized groups at
    the median contact rate: 'in' nodes (above the median) and 'out'
    nodes (below). Every message then falls into one of four
    source-destination pair types, which §5.2 shows govern both the
    optimal path duration and the time to explosion. *)

type node_class = In  (** Contact rate above the median. *) | Out  (** At or below. *)

type pair_type = In_in | In_out | Out_in | Out_out

type t
(** A classification of one trace's population. *)

val of_trace : Psn_trace.Trace.t -> t
(** Compute rates and the median split. *)

val rate : t -> Psn_trace.Node.id -> float
(** The node's contact rate λ_i (contacts per second over the trace). *)

val median_rate : t -> float

val node_class : t -> Psn_trace.Node.id -> node_class

val pair_type : t -> src:Psn_trace.Node.id -> dst:Psn_trace.Node.id -> pair_type

val n_in : t -> int
(** Number of 'in' nodes (≈ half the population). *)

val equal_pair_type : pair_type -> pair_type -> bool

val compare_pair_type : pair_type -> pair_type -> int
(** Total order in the paper's presentation order (in-in < in-out <
    out-in < out-out) — the comparator for {!Psn_sim.Metrics.grouped}
    and other explicit-comparator containers. *)

val all_pair_types : pair_type list
(** In the paper's order: in-in, in-out, out-in, out-out. *)

val pp_node_class : Format.formatter -> node_class -> unit
val pp_pair_type : Format.formatter -> pair_type -> unit

val pair_type_name : pair_type -> string
(** ["in-in"], ["in-out"], ["out-in"], ["out-out"]. *)
