(** Hop-wise contact-rate structure of near-optimal paths (§6.2).

    The paper's closing argument: successful forwarding climbs the
    contact-rate gradient. Fig. 14 plots the mean rate of the nodes at
    each hop position of near-optimal paths (with 99% confidence
    intervals); Fig. 15 shows box plots of the rate ratio between
    consecutive hops, which sits above 1 for the first hops. *)

val mean_rates_by_hop :
  Classify.t -> Psn_paths.Path.t list -> (int * Psn_stats.Summary.t * (float * float)) list
(** For each hop index (0 = source), the summary of node contact rates
    observed at that position across all given paths, with its 99%
    confidence interval. Hop indices with no observations are omitted. *)

val rate_ratios_by_hop :
  Classify.t -> Psn_paths.Path.t list -> (string * Psn_stats.Boxplot.t) list
(** Distributions of [λ_next / λ_prev] for consecutive node pairs,
    grouped by position and labelled the paper's way: ["1/0"], ["2/1"],
    …, plus ["Dst/Lst"] for the destination over the last relay.
    Pairs whose denominator rate is zero are skipped. Positions with no
    data are omitted. *)
