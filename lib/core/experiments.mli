(** Drivers reproducing every figure of the paper's evaluation.

    Each function returns plain data (CDFs, histograms, metric rows)
    that {!Report} renders and the bench harness prints. Heavy inputs
    are shared through two study values: an {e enumeration study} (one
    path enumeration per sampled message — Figs. 4, 5, 6, 8, 11, 12,
    14, 15) and a {e simulation study} (multi-seed forwarding runs —
    Figs. 9, 10, 12, 13).

    The [scale] record trades fidelity for runtime: [default_scale]
    keeps every figure's shape while finishing in minutes;
    [paper_scale] matches the paper's parameters (1800 messages per
    run, k = 2000, 10 seeds). *)

type scale = {
  n_messages : int;  (** Messages sampled per enumeration study. *)
  k : int;  (** Enumeration k (per-node retention and one-step stop). *)
  n_explosion : int;  (** Paths defining "explosion" (paper: 2000). *)
  seeds : int;  (** Simulation runs to average (paper: 10). *)
  hop_paths_per_message : int;
      (** Near-optimal paths kept per message for Figs. 14-15. *)
  rng_seed : int64;  (** Base seed for message sampling. *)
}

val default_scale : scale
(** 120 messages, k = 2000, 3 seeds, 200 hop paths. *)

val paper_scale : scale
(** 1800 messages, k = 2000, 10 seeds, 500 hop paths. *)

(** {1 Enumeration studies} *)

type message_result = {
  src : Psn_trace.Node.id;
  dst : Psn_trace.Node.id;
  t_create : float;
  pair : Classify.pair_type;
  summary : Psn_paths.Explosion.summary;
  arrival_times : float array;  (** Absolute delivery times, ascending. *)
  sample_paths : Psn_paths.Path.t list;  (** First few delivered paths. *)
}

type study = {
  dataset : Psn_trace.Dataset.t;
  trace : Psn_trace.Trace.t;
  classify : Classify.t;
  scale : scale;
  messages : message_result list;
}

val enumeration_study :
  ?jobs:int ->
  ?chunk:int ->
  ?store:Psn_store.Store.t ->
  ?retries:int ->
  ?checkpoint:int ->
  ?scale:scale ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  Psn_trace.Dataset.t ->
  study
(** Enumerate paths for [scale.n_messages] random messages over the
    dataset's trace. The expensive call — share the result across
    figure functions. The per-message enumerations are independent and
    run on [jobs] domains (default {!Psn_sim.Parallel.default_jobs}),
    claimed in ranges of [chunk] tasks; messages are drawn sequentially
    first, so results do not depend on [jobs] or [chunk]. [store], when given, memoizes each per-message enumeration
    (keyed on trace content, config and message spec) without changing
    any result. [retries] and [checkpoint] behave as in {!Psn_sim.Runner}:
    bounded deterministic retry of transient failures, and (with a
    store) checkpoint rounds so a killed study resumes from its last
    completed round bit-identically. [telemetry] (default null)
    records phase spans ([setup] / per-pair ["paths.enumerate"] /
    [collect]) and enumeration cache counters; instrumentation never
    changes the study. *)

(** {1 Figures 1-8, 11, 14, 15 (measurement side)} *)

val fig1 : ?bin:float -> Psn_trace.Dataset.t list -> (string * Psn_stats.Timeseries.t) list
(** Total contacts per time bin (default 60 s) for each dataset. *)

val fig2 : unit -> string
(** The paper's three-node example space-time graph, rendered. *)

val fig4a : study list -> (string * Psn_stats.Cdf.t) list
(** CDF of optimal path duration per study. Studies with no delivered
    message are omitted. *)

val fig4b : study list -> (string * Psn_stats.Cdf.t) list
(** CDF of time to explosion per study (messages that exploded). *)

val fig5 : study -> (float * float) list
(** (optimal duration, time to explosion) scatter points. *)

val fig6 : ?te_min:float -> ?bin:float -> ?window:float -> study -> Psn_stats.Histogram.t
(** Pooled histogram of path arrivals relative to T1, over messages
    with TE at least [te_min] (default 150 s, the paper's slow cases);
    [bin] defaults to 10 s, [window] to 300 s. *)

val fig7 : Psn_trace.Dataset.t list -> (string * Psn_stats.Cdf.t) list
(** CDF of per-node contact counts for each dataset. *)

val fig8 : study -> (Classify.pair_type * (float * float) list) list
(** Fig. 5's scatter split by source-destination pair type. *)

val fig11 : study -> (float * int) array
(** Cumulative count of all (near-)optimal path deliveries over
    absolute time — the burstiness check. *)

val fig14 : study -> (int * Psn_stats.Summary.t * (float * float)) list
(** Mean node contact rate per hop position with 99% CIs. *)

val fig15 : study -> (string * Psn_stats.Boxplot.t) list
(** Box plots of consecutive-hop rate ratios. *)

(** {1 Figures 9, 10, 12, 13 (forwarding side)} *)

type sim_study = {
  sim_dataset : Psn_trace.Dataset.t;
  sim_trace : Psn_trace.Trace.t;
  sim_classify : Classify.t;
  runs : (Psn_forwarding.Registry.entry * Psn_sim.Engine.outcome list) list;
      (** Per algorithm, the outcomes of its {e successful} seeds (all
          of them unless cells failed). *)
  sim_failed : (string * int64 * string) list;
      (** Failed cells — (algorithm label, seed, reason) — isolated by
          {!Psn_sim.Runner.outcomes_many_result} instead of aborting
          the study. Empty on a healthy run. *)
}

val sim_study :
  ?jobs:int ->
  ?chunk:int ->
  ?store:Psn_store.Store.t ->
  ?retries:int ->
  ?checkpoint:int ->
  ?scale:scale ->
  ?entries:Psn_forwarding.Registry.entry list ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  Psn_trace.Dataset.t ->
  sim_study
(** Run each algorithm ([entries] defaults to the paper's six) over
    [scale.seeds] Poisson workloads (rate 1/4 s over the first two
    hours, as in §6.1). The algorithm × seed grid is one parallel batch
    over [jobs] domains, claimed in ranges of [chunk] tasks; output is
    independent of [jobs] and [chunk]. [store], when
    given, memoizes each (algorithm, seed) outcome — a warm store
    replays the study bit-identically without running the engine.
    [retries] retries transient cell failures deterministically;
    [checkpoint] (with a store) makes the sweep resumable in rounds of
    that many cells. A cell that still fails lands in [sim_failed]
    rather than aborting the study. [telemetry] (default null) wraps
    the study in phase spans and threads through to the runner and
    engine. *)

val fig9 : sim_study -> (string * Psn_sim.Metrics.t) list
(** Average delay and success rate per algorithm — one Fig. 9 panel.
    Algorithms whose every seed failed are omitted (see
    [sim_failed]). *)

val fig10 : sim_study -> (string * Psn_stats.Cdf.t) list
(** Full delay distribution per algorithm. Algorithms that delivered
    nothing are omitted. *)

val fig13 :
  sim_study -> (Classify.pair_type * (string * Psn_sim.Metrics.t) list) list
(** Per pair type, per algorithm metrics (Fig. 13's two panels). *)

type fig12_example = {
  ex_src : Psn_trace.Node.id;
  ex_dst : Psn_trace.Node.id;
  ex_t_create : float;
  ex_t1 : float;  (** Absolute first-arrival time. *)
  arrival_offsets : float list;  (** Path arrivals as seconds after T1. *)
  algorithm_offsets : (string * float option) list;
      (** Each algorithm's delivery for this exact message, as seconds
          after T1 ([None] = not delivered). *)
}

val fig12 :
  ?entries:Psn_forwarding.Registry.entry list ->
  study ->
  n_examples:int ->
  fig12_example list
(** Pick delivered messages with a non-trivial explosion from the study
    and replay each alone under every algorithm, locating the paths the
    algorithms take within the arrival bursts. *)

(** {1 Resilience under fault injection} *)

type resilience_level = {
  res_intensity : float;  (** The {!Psn_sim.Faults.scale} multiplier. *)
  res_spec : Psn_sim.Faults.spec;  (** The scaled spec actually injected. *)
  res_rows : (Psn_forwarding.Registry.entry * Psn_sim.Metrics.t) list;
      (** Pooled multi-seed metrics per algorithm at this intensity
          ([attempts] > [copies] measures the loss overhead). Pools
          the successful seeds; all-failed algorithms are omitted. *)
  res_survival : Psn_paths.Explosion.survival list;
      (** Per probe message, paths surviving on the degraded contact
          set vs the pristine baseline. *)
  res_failed : (string * int64 * string) list;
      (** Failed simulation cells at this level — (algorithm label,
          seed, reason); empty on a healthy run. *)
}

type resilience_study = {
  res_dataset : Psn_trace.Dataset.t;
  res_trace : Psn_trace.Trace.t;
  res_scale : scale;
  res_base : Psn_sim.Faults.spec;
  res_levels : resilience_level list;
}

val default_fault_spec : Psn_sim.Faults.spec
(** Intensity-1 reference: 20% transfer loss, 2 crashes/h per node with
    5 min mean repair, up to 30% contact truncation. *)

val resilience_study :
  ?jobs:int ->
  ?chunk:int ->
  ?store:Psn_store.Store.t ->
  ?retries:int ->
  ?checkpoint:int ->
  ?scale:scale ->
  ?entries:Psn_forwarding.Registry.entry list ->
  ?base:Psn_sim.Faults.spec ->
  ?intensities:float list ->
  ?path_messages:int ->
  ?telemetry:Psn_telemetry.Telemetry.sink ->
  Psn_trace.Dataset.t ->
  resilience_study
(** The robustness experiment the paper's thesis implies but never runs:
    sweep fault intensity (default [0, 0.5, 1, 2] × [base], base
    {!default_fault_spec}) and, per level, (a) run every algorithm
    ([entries] defaults to the paper's six) over [scale.seeds] workloads
    with faults injected, and (b) re-enumerate [path_messages] probe
    messages (default 40) on the fault-degraded contact set, measuring
    how many of the exploded paths survive. Delivery should degrade
    sublinearly in intensity exactly where surviving path counts stay
    large, and the six algorithms should stay near-identical — path
    diversity, not algorithm choice, buys the graceful degradation.
    Deterministic for any [jobs]. [store] memoizes both the per-level
    simulation outcomes (keyed on the fault spec among other inputs)
    and the probe enumerations (keyed on the degraded trace's content
    hash). [retries] / [checkpoint] thread through to the runner and
    enumeration fan-outs as in {!sim_study}; failed simulation cells
    land in each level's [res_failed]. Level boundaries poll
    {!Psn_robust.Interrupt.check}, so an interrupted sweep keeps every
    completed level's stored results. [telemetry] (default null)
    records one ["experiments.level"] span per intensity (tagged with
    the multiplier) around the fanned runs and enumerations. *)

(** {1 Analytic-model tables (§5)} *)

type model_row = {
  m_time : float;
  m_closed : float;  (** Closed-form value. *)
  m_ode : float;  (** Truncated-ODE value. *)
  m_mc : float;  (** Monte-Carlo estimate. *)
}

val model_mean_table :
  n:int -> lambda:float -> times:float list -> runs:int -> ?k_max:int -> ?seed:int64 -> unit ->
  model_row list
(** E\[S(t)\]: eq. (4) vs the truncated ODE vs Monte-Carlo. *)

val model_second_moment_table :
  n:int -> lambda:float -> times:float list -> runs:int -> ?k_max:int -> ?seed:int64 -> unit ->
  model_row list
(** E\[S(t)²\]: closed form vs ODE (Σ k² u_k) vs Monte-Carlo. *)

val model_blowup_table : n:int -> lambda:float -> xs:float list -> (float * float option) list
(** [(x, T_C(x))] — finite-time divergence of the generating function. *)

val model_quadrant_table :
  ?classes:Psn_model.Inhomogeneous.classes ->
  ?messages:int ->
  ?n_explosion:int ->
  ?t_end:float ->
  ?seed:int64 ->
  unit ->
  Psn_model.Inhomogeneous.quadrant_stats list
(** The §5.2 quadrant hypotheses measured on the two-class model.
    Defaults mirror the trace scale: N = 98, half high-rate at
    0.03 contacts/s, half at 0.005 contacts/s, 3-hour window. *)
