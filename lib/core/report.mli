(** Plain-text rendering of experiment outputs.

    One [render_*] per figure; all return a complete multi-line string
    (title, configuration note, data table) that the bench harness and
    the CLI print verbatim. *)

val render_timeseries : title:string -> (string * Psn_stats.Timeseries.t) list -> string
(** Fig. 1-style series: per dataset, summary of the binned counts plus
    a coarse sparkline of the evolution. *)

val render_cdfs : title:string -> ?points:int -> (string * Psn_stats.Cdf.t) list -> string
(** Tabulated CDFs side by side at shared quantile rows. *)

val render_scatter : title:string -> ?max_rows:int -> (float * float) list -> string
(** Two-column scatter summary: joint quantiles plus the first rows. *)

val render_scatter_by_pair :
  title:string -> (Classify.pair_type * (float * float) list) list -> string
(** Fig. 8: per pair type, T1 and TE distribution summaries. *)

val render_histogram : title:string -> Psn_stats.Histogram.t -> string
(** Fig. 6: counts per bin with an ASCII bar. *)

val render_metrics : title:string -> (string * Psn_sim.Metrics.t) list -> string
(** Fig. 9: success rate, delays and copies per algorithm. *)

val render_metrics_by_pair :
  title:string -> (Classify.pair_type * (string * Psn_sim.Metrics.t) list) list -> string
(** Fig. 13: the same, per pair type. *)

val render_resilience : title:string -> Experiments.resilience_study -> string
(** Per fault intensity: the metrics table of every algorithm (success,
    delays, copies, attempts/copies overhead) plus the surviving-path
    summary of the probe messages, and — when cells failed — one
    [FAILED algo seed: reason] line per failed cell. *)

val render_failed_cells :
  title:string -> (string * int64 * string) list -> string
(** A block of [FAILED algo seed: reason] lines for a study's failed
    cells ({!Experiments.sim_study}'s [sim_failed]); the empty string
    when none did, so healthy reports are unchanged. *)

val render_cumulative : title:string -> (float * int) array -> string
(** Fig. 11: the delivery staircase at regular checkpoints. *)

val render_fig12 : title:string -> Experiments.fig12_example list -> string
(** Fig. 12: per example message, the arrival bursts and where each
    algorithm's path landed. *)

val render_hop_rates :
  title:string -> (int * Psn_stats.Summary.t * (float * float)) list -> string
(** Fig. 14: mean rate per hop with confidence intervals. *)

val render_hop_ratios : title:string -> (string * Psn_stats.Boxplot.t) list -> string
(** Fig. 15: rate-ratio box plots per hop transition. *)

val render_model_rows : title:string -> Experiments.model_row list -> string
(** M01/M02: closed form vs ODE vs Monte-Carlo. *)

val render_quadrants : title:string -> Psn_model.Inhomogeneous.quadrant_stats list -> string
(** M03: the §5.2 quadrant table with the paper's qualitative
    predictions alongside. *)
