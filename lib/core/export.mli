(** Plot-ready data export.

    The bench harness prints figures as text tables; this module writes
    the same series as whitespace-separated [.dat] files plus a gnuplot
    script, so the paper's figures can be rendered graphically:

    {v
    dune exec bin/psn_cli.exe -- ...   (or call these from code)
    gnuplot out/plot_all.gp            -> out/*.png
    v} *)

val write_cdfs :
  dir:string -> name:string -> (string * Psn_stats.Cdf.t) list -> string list
(** One file per labelled CDF ([<name>_<i>.dat], columns [x P[X<=x]]),
    staircase points. Returns the written paths. Creates [dir] if
    needed; raises [Sys_error] on I/O failure. *)

val write_scatter : dir:string -> name:string -> (float * float) list -> string
(** Two-column scatter file; returns the path. *)

val write_histogram : dir:string -> name:string -> Psn_stats.Histogram.t -> string
(** Columns [bin_center count]. *)

val write_series : dir:string -> name:string -> (float * float) list -> string
(** Generic two-column series. *)

val write_gnuplot_script :
  dir:string -> (string * [ `Lines | `Points | `Boxes ] * string list) list -> string
(** [write_gnuplot_script ~dir plots] writes [plot_all.gp]; each entry
    is (output png name, style, data files to overlay). Returns the
    script path. *)
