let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then raise (Sys_error (dir ^ ": not a directory"))

(* File names are derived from user-supplied labels; keep them tame. *)
let slug s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
    s

let write_lines ~dir ~file lines =
  ensure_dir dir;
  let path = Filename.concat dir file in
  (* Write-to-temp then rename so a crash mid-write never leaves a
     truncated data file where a previous complete one stood. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun line -> output_string oc (line ^ "\n")) lines);
  Sys.rename tmp path;
  path

let write_cdfs ~dir ~name cdfs =
  List.map
    (fun (label, cdf) ->
      let lines =
        ("# " ^ label)
        :: List.map (fun (x, p) -> Printf.sprintf "%g %g" x p) (Psn_stats.Cdf.points cdf)
      in
      write_lines ~dir ~file:(Printf.sprintf "%s_%s.dat" (slug name) (slug label)) lines)
    cdfs

let write_scatter ~dir ~name points =
  write_lines ~dir
    ~file:(slug name ^ ".dat")
    (List.map (fun (x, y) -> Printf.sprintf "%g %g" x y) points)

let write_histogram ~dir ~name hist =
  let counts = Psn_stats.Histogram.counts hist in
  let lines =
    Array.to_list
      (Array.mapi
         (fun i c -> Printf.sprintf "%g %d" (Psn_stats.Histogram.bin_center hist i) c)
         counts)
  in
  write_lines ~dir ~file:(slug name ^ ".dat") lines

let write_series ~dir ~name points =
  write_lines ~dir
    ~file:(slug name ^ ".dat")
    (List.map (fun (x, y) -> Printf.sprintf "%g %g" x y) points)

let style_of = function `Lines -> "lines" | `Points -> "points" | `Boxes -> "boxes"

let write_gnuplot_script ~dir plots =
  let body =
    List.concat_map
      (fun (png, style, files) ->
        let overlays =
          List.map
            (fun file ->
              Printf.sprintf "'%s' using 1:2 with %s title '%s'" (Filename.basename file)
                (style_of style)
                (Filename.remove_extension (Filename.basename file)))
            files
          |> String.concat ", "
        in
        [
          Printf.sprintf "set output '%s.png'" (slug png);
          Printf.sprintf "set title '%s'" png;
          Printf.sprintf "plot %s" overlays;
          "";
        ])
      plots
  in
  write_lines ~dir ~file:"plot_all.gp"
    ([ "set terminal pngcairo size 900,600"; "set key right bottom"; "set grid"; "" ] @ body)
