module Trace = Psn_trace.Trace
module Contact = Psn_trace.Contact
module Dataset = Psn_trace.Dataset
module Snapshot = Psn_spacetime.Snapshot
module Enumerate = Psn_paths.Enumerate
module Explosion = Psn_paths.Explosion
module Path = Psn_paths.Path
module Rng = Psn_prng.Rng
module Cdf = Psn_stats.Cdf
module Registry = Psn_forwarding.Registry
module Engine = Psn_sim.Engine
module Metrics = Psn_sim.Metrics
module Message = Psn_sim.Message
module Workload = Psn_sim.Workload
module Parallel = Psn_sim.Parallel
module Runner = Psn_sim.Runner
module Faults = Psn_sim.Faults
module Failpoint = Psn_robust.Failpoint
module Interrupt = Psn_robust.Interrupt
module Store = Psn_store.Store
module Store_key = Psn_store.Key
module Store_memo = Psn_store.Memo
module T = Psn_telemetry.Telemetry

type scale = {
  n_messages : int;
  k : int;
  n_explosion : int;
  seeds : int;
  hop_paths_per_message : int;
  rng_seed : int64;
}

let default_scale =
  { n_messages = 120; k = 2000; n_explosion = 2000; seeds = 3; hop_paths_per_message = 200; rng_seed = 17L }

let paper_scale =
  { n_messages = 1800; k = 2000; n_explosion = 2000; seeds = 10; hop_paths_per_message = 500; rng_seed = 17L }

type message_result = {
  src : Psn_trace.Node.id;
  dst : Psn_trace.Node.id;
  t_create : float;
  pair : Classify.pair_type;
  summary : Explosion.summary;
  arrival_times : float array;
  sample_paths : Path.t list;
}

type study = {
  dataset : Dataset.t;
  trace : Trace.t;
  classify : Classify.t;
  scale : scale;
  messages : message_result list;
}

(* Messages are generated over the first two thirds of the window (the
   paper's "first 2 hours of 3") so each has time to be delivered. *)
let generation_window trace = Trace.horizon trace *. 2. /. 3.

let random_message rng trace =
  let n = Trace.n_nodes trace in
  let src = Rng.int rng n in
  let dst =
    let r = Rng.int rng (n - 1) in
    if r >= src then r + 1 else r
  in
  (src, dst, Rng.float rng (generation_window trace))

(* Memoized enumeration fan-out, sharing the runner's generic
   checkpoint/resume machinery ({!Runner.cached_map}): the store is
   touched only from the calling domain — finds before, puts between
   and after the parallel rounds — so a warm store changes wall time,
   never results, and a killed sweep resumes from its last completed
   round. *)
let enumerate_specs ?jobs ?chunk ?store ?retries ?checkpoint ?(telemetry = T.Sink.null)
    ~trace ~config snap specs =
  let compute sink (src, dst, t_create) =
    T.with_span sink "paths.enumerate"
      ~args:[ ("src", T.Int src); ("dst", T.Int dst) ]
      (fun () -> Enumerate.run ~config snap ~src ~dst ~t_create)
  in
  T.count telemetry "paths.enumerations" (Array.length specs);
  match store with
  | None ->
    Parallel.join_results
      (Parallel.map_result ?jobs ?chunk ~telemetry ?retries
         ~env:(fun () -> ())
         (fun () sink s -> compute sink s)
         specs)
  | Some st ->
    let trace_hash = Store_key.trace_hash trace in
    let key (src, dst, t_create) =
      Store_key.enumeration ~trace_hash ~config ~src ~dst ~t_create
    in
    Runner.cached_map ?jobs ?chunk ~telemetry ?retries ?checkpoint ~prefix:"paths"
      ~env:(fun () -> ())
      ~find:(fun s -> Store.find_enumeration st (key s))
      ~store:(fun s v -> Store.put_enumeration st (key s) v)
      ~compute:(fun () sink s -> compute sink s)
      specs

let enumeration_study ?jobs ?chunk ?store ?retries ?checkpoint ?(scale = default_scale)
    ?(telemetry = T.Sink.null) dataset
    =
  T.with_span telemetry "experiments.enumeration_study"
    ~args:[ ("dataset", T.Str dataset.Dataset.label) ]
  @@ fun () ->
  T.begin_span telemetry "experiments.setup";
  let trace = Dataset.generate dataset in
  let classify = Classify.of_trace trace in
  let snap = Snapshot.of_trace trace in
  let rng = Rng.create ~seed:(Int64.logxor scale.rng_seed dataset.Dataset.seed) () in
  let config =
    { Enumerate.k = scale.k; max_hops = None; stop_at_total = Some scale.n_explosion; exhaustive = false }
  in
  (* All RNG draws happen here, sequentially and in message order; the
     per-pair enumerations below are then pure functions of their spec,
     so fanning them across domains cannot change any result. *)
  let specs = Array.make scale.n_messages (0, 0, 0.) in
  for i = 0 to scale.n_messages - 1 do
    specs.(i) <- random_message rng trace
  done;
  T.end_span telemetry;
  let results =
    enumerate_specs ?jobs ?chunk ?store ?retries ?checkpoint ~telemetry ~trace ~config
      snap specs
  in
  T.with_span telemetry "experiments.collect"
  @@ fun () ->
  (* Post-processing is cheap and pure, so only the enumeration itself
     goes through the parallel (and memoized) fan-out above. *)
  let messages =
    List.init scale.n_messages (fun i ->
        let src, dst, t_create = specs.(i) in
        let result = results.(i) in
        let sample_paths =
          Array.to_list result.Enumerate.arrivals
          |> List.filteri (fun i _ -> i < scale.hop_paths_per_message)
          |> List.map (fun (a : Enumerate.arrival) -> a.Enumerate.path)
        in
        {
          src;
          dst;
          t_create;
          pair = Classify.pair_type classify ~src ~dst;
          summary = Explosion.analyze ~n_explosion:scale.n_explosion result;
          arrival_times = Enumerate.arrival_times result;
          sample_paths;
        })
  in
  { dataset; trace; classify; scale; messages }

(* ---- Figures 1-8, 11, 14, 15 ---- *)

let fig1 ?(bin = 60.) datasets =
  List.map
    (fun d -> (d.Dataset.label, Trace.contact_time_series (Dataset.generate d) ~bin))
    datasets

let fig2 () =
  (* The paper's worked example: nodes 1-2 in contact during the first
     step; all three pairwise in contact during the second. *)
  let contacts =
    [
      Contact.make ~a:0 ~b:1 ~t_start:0. ~t_end:9.;
      Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:19.;
      Contact.make ~a:1 ~b:2 ~t_start:10. ~t_end:19.;
      Contact.make ~a:0 ~b:2 ~t_start:10. ~t_end:19.;
    ]
  in
  let trace = Trace.create ~n_nodes:3 ~horizon:20. contacts in
  let graph = Psn_spacetime.Graph.of_trace ~delta:10. trace in
  Format.asprintf "%a" Psn_spacetime.Graph.pp graph

let durations study =
  List.filter_map (fun m -> m.summary.Explosion.optimal_duration) study.messages

let explosion_times study = List.filter_map (fun m -> m.summary.Explosion.te) study.messages

let label_of study = study.dataset.Dataset.label

let cdf_of_list values =
  match values with [] -> None | vs -> Some (Cdf.of_samples (Array.of_list vs))

let fig4a studies =
  List.filter_map
    (fun s -> Option.map (fun c -> (label_of s, c)) (cdf_of_list (durations s)))
    studies

let fig4b studies =
  List.filter_map
    (fun s -> Option.map (fun c -> (label_of s, c)) (cdf_of_list (explosion_times s)))
    studies

let fig5 study =
  List.filter_map
    (fun m ->
      match (m.summary.Explosion.optimal_duration, m.summary.Explosion.te) with
      | Some d, Some te -> Some (d, te)
      | _, _ -> None)
    study.messages

let fig6 ?(te_min = 150.) ?(bin = 10.) ?(window = 300.) study =
  let offsets =
    study.messages
    |> List.filter (fun m ->
           match m.summary.Explosion.te with Some te -> te >= te_min | None -> false)
    |> List.concat_map (fun m ->
           match Array.length m.arrival_times with
           | 0 -> []
           | _ ->
             let t1 = m.arrival_times.(0) in
             Array.to_list m.arrival_times |> List.map (fun t -> t -. t1))
  in
  Psn_stats.Histogram.create ~lo:0. ~hi:window ~bins:(int_of_float (window /. bin))
    (List.to_seq offsets)

let fig7 datasets =
  List.map
    (fun d ->
      let trace = Dataset.generate d in
      let counts = Trace.contact_counts trace |> Array.map float_of_int in
      (d.Dataset.label, Cdf.of_samples counts))
    datasets

let fig8 study =
  let points = Hashtbl.create 4 in
  List.iter
    (fun m ->
      match (m.summary.Explosion.optimal_duration, m.summary.Explosion.te) with
      | Some d, Some te ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt points m.pair) in
        Hashtbl.replace points m.pair ((d, te) :: existing)
      | _, _ -> ())
    study.messages;
  List.map
    (fun pair -> (pair, List.rev (Option.value ~default:[] (Hashtbl.find_opt points pair))))
    Classify.all_pair_types

let fig11 study =
  let all_times =
    List.concat_map (fun m -> Array.to_list m.arrival_times) study.messages
    |> List.sort Float.compare
  in
  let series =
    Psn_stats.Timeseries.bin_events ~t0:0. ~t1:(Trace.horizon study.trace) ~bin:60.
      (List.to_seq all_times)
  in
  Psn_stats.Timeseries.cumulative series

let pooled_paths study = List.concat_map (fun m -> m.sample_paths) study.messages

let fig14 study = Hops.mean_rates_by_hop study.classify (pooled_paths study)

let fig15 study = Hops.rate_ratios_by_hop study.classify (pooled_paths study)

(* ---- Simulation studies (Figs. 9, 10, 12, 13) ---- *)

type sim_study = {
  sim_dataset : Dataset.t;
  sim_trace : Trace.t;
  sim_classify : Classify.t;
  runs : (Registry.entry * Engine.outcome list) list;
  sim_failed : (string * int64 * string) list;
}

(* Failed cells, flattened for reports: (algorithm label, seed, what
   went wrong), in (algorithm, seed) order. *)
let failed_cells entries seeds cells =
  List.concat
    (List.map2
       (fun (e : Registry.entry) cell_list ->
         List.concat
           (List.map2
              (fun seed cell ->
                match cell with
                | Ok (_ : Engine.outcome) -> []
                | Error ex -> [ (e.Registry.label, seed, Failpoint.describe ex) ])
              seeds cell_list))
       entries cells)

let ok_cells cell_list = List.filter_map Result.to_option cell_list

(* One store-backed outcome cache per algorithm. Keys use the entry's
   stable registry [name] (never the display label, never anything the
   factory computes), so a warm store answers without constructing the
   algorithm at all. *)
let entry_caches store ~trace ?faults ~workload entries =
  let trace_hash = Store_key.trace_hash trace in
  List.map
    (fun (e : Registry.entry) ->
      Store_memo.runner_cache ~store ~trace_hash ~workload ?faults
        ~algo:e.Registry.name ())
    entries

let sim_study ?jobs ?chunk ?store ?retries ?checkpoint ?(scale = default_scale)
    ?(entries = Registry.paper_six) ?(telemetry = T.Sink.null) dataset =
  T.with_span telemetry "experiments.sim_study"
    ~args:[ ("dataset", T.Str dataset.Dataset.label) ]
  @@ fun () ->
  T.begin_span telemetry "experiments.setup";
  let trace = Dataset.generate dataset in
  let workload = Workload.paper_spec ~n_nodes:(Trace.n_nodes trace) in
  let spec =
    { Psn_sim.Runner.workload; seeds = Psn_sim.Runner.default_seeds scale.seeds }
  in
  let stores = Option.map (fun st -> entry_caches st ~trace ~workload entries) store in
  T.end_span telemetry;
  (* One parallel batch over the whole algorithm × seed grid; a failed
     (algorithm, seed) cell costs one cell of the study, never the
     study. *)
  let cells =
    Psn_sim.Runner.outcomes_many_result ?jobs ?chunk ?stores ?retries ?checkpoint
      ~telemetry ~trace ~spec
      ~factories:(List.map (fun (e : Registry.entry) -> e.Registry.factory) entries)
      ()
  in
  let runs = List.map2 (fun e cell_list -> (e, ok_cells cell_list)) entries cells in
  {
    sim_dataset = dataset;
    sim_trace = trace;
    sim_classify = Classify.of_trace trace;
    runs;
    sim_failed = failed_cells entries spec.Psn_sim.Runner.seeds cells;
  }

let fig9 study =
  (* An algorithm whose every seed failed has nothing to pool; its
     absence (with the reason in [sim_failed]) is the honest row. *)
  List.filter_map
    (fun ((e : Registry.entry), outcomes) ->
      match outcomes with
      | [] -> None
      | outcomes -> Some (e.Registry.label, Metrics.pool outcomes))
    study.runs

let fig10 study =
  List.filter_map
    (fun ((e : Registry.entry), outcomes) ->
      let delays = List.concat_map (fun o -> Array.to_list (Metrics.delays o)) outcomes in
      Option.map (fun c -> (e.Registry.label, c)) (cdf_of_list delays))
    study.runs

(* Pool records from all seeds into one outcome so grouped metrics see
   the full sample; total copies is the sum, consistent with records. *)
let pooled_outcome (e : Registry.entry) outcomes =
  let records = List.concat_map (fun o -> Array.to_list o.Engine.records) outcomes in
  let copies = List.fold_left (fun acc (o : Engine.outcome) -> acc + o.Engine.copies) 0 outcomes in
  let attempts =
    List.fold_left (fun acc (o : Engine.outcome) -> acc + o.Engine.attempts) 0 outcomes
  in
  { Engine.algorithm = e.Registry.label; records = Array.of_list records; copies; attempts }

let fig13 study =
  let grouped_by_algorithm =
    (* As in [fig9], all-failed algorithms drop out rather than
       rendering as a fake all-zero column. *)
    study.runs
    |> List.filter (fun ((_ : Registry.entry), outcomes) -> not (List.is_empty outcomes))
    |> List.map (fun (e, outcomes) ->
           let outcome = pooled_outcome e outcomes in
           let groups =
             Metrics.grouped outcome ~cmp:Classify.compare_pair_type
               ~classify:(fun (m : Message.t) ->
                 Classify.pair_type study.sim_classify ~src:m.Message.src
                   ~dst:m.Message.dst)
           in
           (e, groups))
  in
  List.map
    (fun pair ->
      let row =
        List.map
          (fun ((e : Registry.entry), groups) ->
            let metrics =
              match List.find_opt (fun (p, _) -> Classify.equal_pair_type p pair) groups with
              | Some (_, m) -> m
              | None ->
                {
                  Metrics.algorithm = e.Registry.label;
                  messages = 0;
                  delivered = 0;
                  success_rate = 0.;
                  mean_delay = Float.nan;
                  median_delay = Float.nan;
                  copies = 0;
                  attempts = 0;
                }
            in
            (e.Registry.label, metrics))
          grouped_by_algorithm
      in
      (pair, row))
    Classify.all_pair_types

type fig12_example = {
  ex_src : Psn_trace.Node.id;
  ex_dst : Psn_trace.Node.id;
  ex_t_create : float;
  ex_t1 : float;
  arrival_offsets : float list;
  algorithm_offsets : (string * float option) list;
}

let fig12 ?(entries = Registry.paper_six) study ~n_examples =
  (* Interesting examples: delivered, with a spread-out explosion. *)
  let candidates =
    study.messages
    |> List.filter (fun m ->
           m.summary.Explosion.delivered
           && Array.length m.arrival_times >= 100
           &&
           match m.summary.Explosion.te with Some te -> te >= 20. | None -> false)
  in
  let chosen = List.filteri (fun i _ -> i < n_examples) candidates in
  List.map
    (fun m ->
      let t1 = m.arrival_times.(0) in
      let message = Message.make ~id:0 ~src:m.src ~dst:m.dst ~t_create:m.t_create in
      let algorithm_offsets =
        List.map
          (fun (e : Registry.entry) ->
            let outcome =
              Engine.run ~trace:study.trace ~messages:[ message ]
                (e.Registry.factory study.trace)
            in
            let delivered = outcome.Engine.records.(0).Engine.delivered in
            (e.Registry.label, Option.map (fun t -> t -. t1) delivered))
          entries
      in
      {
        ex_src = m.src;
        ex_dst = m.dst;
        ex_t_create = m.t_create;
        ex_t1 = t1;
        arrival_offsets = Array.to_list m.arrival_times |> List.map (fun t -> t -. t1);
        algorithm_offsets;
      })
    chosen

(* ---- Resilience study (fault injection) ---- *)

type resilience_level = {
  res_intensity : float;
  res_spec : Faults.spec;
  res_rows : (Registry.entry * Metrics.t) list;
  res_survival : Psn_paths.Explosion.survival list;
  res_failed : (string * int64 * string) list;
}

type resilience_study = {
  res_dataset : Dataset.t;
  res_trace : Trace.t;
  res_scale : scale;
  res_base : Faults.spec;
  res_levels : resilience_level list;
}

(* At intensity 1: 20% of transfers lost, ~1.7 crashes per node over a
   3 h window (5 min mean repair), up to 30% of each contact truncated
   — a hostile venue, yet far from partitioning the contact graph. *)
let default_fault_spec =
  { Faults.loss = 0.2; crash_rate = 2. /. 3600.; down_time = 300.; jitter = 0.3; seed = 99L }

let default_intensities = [ 0.; 0.5; 1.; 2. ]

let resilience_study ?jobs ?chunk ?store ?retries ?checkpoint ?(scale = default_scale)
    ?(entries = Registry.paper_six)
    ?(base = default_fault_spec) ?(intensities = default_intensities) ?(path_messages = 40)
    ?(telemetry = T.Sink.null) dataset =
  T.with_span telemetry "experiments.resilience_study"
    ~args:[ ("dataset", T.Str dataset.Dataset.label) ]
  @@ fun () ->
  (match Faults.validate base with
  | Error msg -> invalid_arg ("Experiments.resilience_study: " ^ msg)
  | Ok () -> ());
  let trace = Dataset.generate dataset in
  let n_nodes = Trace.n_nodes trace in
  let workload = Workload.paper_spec ~n_nodes in
  let spec =
    { Psn_sim.Runner.workload; seeds = Psn_sim.Runner.default_seeds scale.seeds }
  in
  (* Path-survival probes: the same message specs are enumerated on the
     pristine trace once and on every degraded trace, so each level's
     survival is a paired comparison. All RNG draws happen up front. *)
  let probes =
    let rng = Rng.create ~seed:(Int64.logxor 0x5245534cL (Int64.logxor scale.rng_seed dataset.Dataset.seed)) () in
    Array.init path_messages (fun _ -> random_message rng trace)
  in
  let config =
    { Enumerate.k = scale.k; max_hops = None; stop_at_total = Some scale.n_explosion; exhaustive = false }
  in
  (* Both the pristine baseline and every degraded level go through the
     memoized fan-out; degraded levels key on the degraded trace's own
     content hash, so levels never alias each other or the baseline. *)
  let enumerate_all tr =
    enumerate_specs ?jobs ?chunk ?store ?retries ?checkpoint ~telemetry ~trace:tr ~config
      (Snapshot.of_trace tr) probes
  in
  let baseline =
    T.with_span telemetry "experiments.baseline" (fun () -> enumerate_all trace)
  in
  let factories = List.map (fun (e : Registry.entry) -> e.Registry.factory) entries in
  let levels =
    List.map
      (fun intensity ->
        (* Levels are the sweep's coarse safe points: everything a
           completed level stored is durable, so an interrupt here
           loses at most the level in flight. *)
        Interrupt.check ();
        T.with_span telemetry "experiments.level"
          ~args:[ ("intensity", T.Float intensity) ]
        @@ fun () ->
        let level_spec = Faults.scale intensity base in
        let plan = Faults.compile ~n_nodes ~horizon:(Trace.horizon trace) level_spec in
        let stores =
          Option.map
            (fun st -> entry_caches st ~trace ~faults:level_spec ~workload entries)
            store
        in
        let cells =
          Psn_sim.Runner.outcomes_many_result ?jobs ?chunk ?stores ?retries ?checkpoint
            ~telemetry ~faults:plan ~trace ~spec ~factories ()
        in
        let rows =
          List.concat
            (List.map2
               (fun e cell_list ->
                 match ok_cells cell_list with
                 | [] -> []
                 | outs ->
                   [ (e, T.with_span telemetry "runner.metrics" (fun () -> Metrics.pool outs)) ])
               entries cells)
        in
        let degraded = enumerate_all (Faults.degrade plan trace) in
        let survival =
          List.init path_messages (fun i ->
              Psn_paths.Explosion.survival ~baseline:baseline.(i) ~degraded:degraded.(i))
        in
        {
          res_intensity = intensity;
          res_spec = level_spec;
          res_rows = rows;
          res_survival = survival;
          res_failed = failed_cells entries spec.Psn_sim.Runner.seeds cells;
        })
      intensities
  in
  { res_dataset = dataset; res_trace = trace; res_scale = scale; res_base = base; res_levels = levels }

(* ---- Analytic-model tables ---- *)

type model_row = { m_time : float; m_closed : float; m_ode : float; m_mc : float }

let model_table ~n ~lambda ~times ~runs ~k_max ~seed ~closed ~of_density ~of_sample =
  let p = { Psn_model.Homogeneous.n; lambda } in
  let rng = Rng.create ~seed () in
  let samples =
    Psn_model.Montecarlo.average_runs p ~rng ~runs ~sample_times:times
  in
  List.map2
    (fun t sample ->
      let density = Psn_model.Homogeneous.density_at p ~k_max ~t () in
      { m_time = t; m_closed = closed p t; m_ode = of_density density; m_mc = of_sample sample })
    (List.sort Float.compare times)
    samples

let model_mean_table ~n ~lambda ~times ~runs ?(k_max = 400) ?(seed = 5L) () =
  model_table ~n ~lambda ~times ~runs ~k_max ~seed
    ~closed:(fun p t -> Psn_model.Homogeneous.mean_paths p ~t)
    ~of_density:Psn_model.Homogeneous.mean_of_density
    ~of_sample:(fun s -> s.Psn_model.Montecarlo.mean)

let second_moment_of_density u =
  let acc = ref 0. in
  Array.iteri (fun k uk -> acc := !acc +. (float_of_int (k * k) *. uk)) u;
  !acc

let model_second_moment_table ~n ~lambda ~times ~runs ?(k_max = 400) ?(seed = 5L) () =
  model_table ~n ~lambda ~times ~runs ~k_max ~seed
    ~closed:(fun p t -> Psn_model.Homogeneous.second_moment p ~t)
    ~of_density:second_moment_of_density
    ~of_sample:(fun s -> s.Psn_model.Montecarlo.second_moment)

let model_blowup_table ~n ~lambda ~xs =
  let p = { Psn_model.Homogeneous.n; lambda } in
  List.map (fun x -> (x, Psn_model.Homogeneous.blowup_time p ~x)) xs

let default_classes =
  { Psn_model.Inhomogeneous.n = 98; frac_high = 0.5; rate_high = 0.03; rate_low = 0.005 }

let model_quadrant_table ?(classes = default_classes) ?(messages = 60) ?(n_explosion = 2000)
    ?(t_end = 10800.) ?(seed = 11L) () =
  let rng = Rng.create ~seed () in
  Psn_model.Inhomogeneous.simulate classes ~rng ~messages_per_quadrant:messages ~n_explosion
    ~t_end
