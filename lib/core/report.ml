module Table = Psn_stats.Table
module Cdf = Psn_stats.Cdf
module Metrics = Psn_sim.Metrics

let heading title body = Printf.sprintf "== %s ==\n%s" title body

let sparkline counts =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
  let max_count = Array.fold_left Int.max 1 counts in
  (* Compress to at most 60 cells by averaging neighbouring bins. *)
  let cells = Int.min 60 (Array.length counts) in
  let per_cell = float_of_int (Array.length counts) /. float_of_int cells in
  String.init cells (fun cell ->
      let lo = int_of_float (float_of_int cell *. per_cell) in
      let hi =
        Int.min (Array.length counts) (int_of_float (float_of_int (cell + 1) *. per_cell))
      in
      let hi = Int.max (lo + 1) hi in
      let sum = ref 0 in
      for i = lo to hi - 1 do
        sum := !sum + counts.(i)
      done;
      let avg = float_of_int !sum /. float_of_int (hi - lo) in
      let level = int_of_float (avg /. float_of_int max_count *. 7.) in
      glyphs.(Int.max 0 (Int.min 7 level)))

let render_timeseries ~title series =
  let rows =
    List.map
      (fun (label, ts) ->
        let counts = Psn_stats.Timeseries.counts ts in
        [
          label;
          Printf.sprintf "%.1f" (Psn_stats.Timeseries.mean_rate ts *. 60.);
          Printf.sprintf "%.3f" (Psn_stats.Timeseries.stability ts);
          sparkline counts;
        ])
      series
  in
  heading title
    (Table.render ~header:[ "dataset"; "contacts/min"; "cv"; "evolution (start -> end)" ] rows)

let render_cdfs ~title ?(points = 11) cdfs =
  match cdfs with
  | [] -> heading title "(no data)"
  | _ ->
    let quantiles = List.init points (fun i -> float_of_int i /. float_of_int (points - 1)) in
    let header = "P[X<=x]" :: List.map (fun (label, _) -> label) cdfs in
    let rows =
      List.map
        (fun q ->
          Printf.sprintf "%.2f" q
          :: List.map (fun (_, cdf) -> Printf.sprintf "%.1f" (Cdf.inverse cdf q)) cdfs)
        quantiles
    in
    heading title
      (Table.render ~align:(List.init (List.length header) (fun _ -> Table.Right)) ~header rows
      ^ "\n(values are the x at which each dataset's CDF reaches the row's probability)")

let quantile_row values =
  let arr = Array.of_list values in
  List.map
    (fun q -> Printf.sprintf "%.0f" (Psn_stats.Quantile.quantile arr q))
    [ 0.; 0.25; 0.5; 0.75; 0.95; 1. ]

let render_scatter ~title ?(max_rows = 12) points =
  match points with
  | [] -> heading title "(no data)"
  | _ ->
    let xs = List.map fst points and ys = List.map snd points in
    let summary =
      Table.render
        ~align:[ Table.Left; Right; Right; Right; Right; Right; Right ]
        ~header:[ ""; "min"; "q1"; "median"; "q3"; "p95"; "max" ]
        [ "T1 duration (s)" :: quantile_row xs; "TE (s)" :: quantile_row ys ]
    in
    let sample =
      List.filteri (fun i _ -> i < max_rows) points
      |> List.map (fun (x, y) -> Printf.sprintf "(%.0f, %.0f)" x y)
      |> String.concat " "
    in
    heading title
      (Printf.sprintf "%s\nfirst points (T1 dur, TE): %s  [%d total]" summary sample
         (List.length points))

let render_scatter_by_pair ~title groups =
  let rows =
    List.map
      (fun (pair, points) ->
        match points with
        | [] -> [ Classify.pair_type_name pair; "0"; "-"; "-"; "-"; "-" ]
        | _ ->
          let xs = Array.of_list (List.map fst points) in
          let ys = Array.of_list (List.map snd points) in
          let q a p = Psn_stats.Quantile.quantile a p in
          [
            Classify.pair_type_name pair;
            string_of_int (List.length points);
            Printf.sprintf "%.0f" (q xs 0.5);
            Printf.sprintf "%.0f" (q xs 0.95);
            Printf.sprintf "%.0f" (q ys 0.5);
            Printf.sprintf "%.0f" (q ys 0.95);
          ])
      groups
  in
  heading title
    (Table.render
       ~align:[ Table.Left; Right; Right; Right; Right; Right ]
       ~header:[ "pair"; "msgs"; "T1 med"; "T1 p95"; "TE med"; "TE p95" ]
       rows)

let render_histogram ~title hist =
  let counts = Psn_stats.Histogram.counts hist in
  if Array.for_all (fun c -> c = 0) counts && Psn_stats.Histogram.total hist = 0 then
    heading title "(no qualifying messages at this scale)"
  else
  let max_count = Array.fold_left Int.max 1 counts in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i c ->
           let bar_len = c * 40 / max_count in
           [
             Printf.sprintf "%.0f" (Psn_stats.Histogram.bin_center hist i);
             string_of_int c;
             String.make bar_len '#';
           ])
         counts)
  in
  heading title
    (Table.render ~align:[ Table.Right; Right; Left ] ~header:[ "t-T1 (s)"; "paths"; "" ] rows
    ^ Printf.sprintf "\n(+%d beyond window)" (Psn_stats.Histogram.overflow hist))

let metrics_row (label, (m : Metrics.t)) =
  [
    label;
    Printf.sprintf "%.3f" m.Metrics.success_rate;
    (if Float.is_nan m.Metrics.mean_delay then "-" else Printf.sprintf "%.0f" m.Metrics.mean_delay);
    (if Float.is_nan m.Metrics.median_delay then "-"
     else Printf.sprintf "%.0f" m.Metrics.median_delay);
    string_of_int m.Metrics.delivered;
    string_of_int m.Metrics.messages;
    string_of_int m.Metrics.copies;
    (let o = Metrics.overhead m in
     if Float.is_nan o then "-" else Printf.sprintf "%.2f" o);
  ]

let metrics_header =
  [ "algorithm"; "success"; "mean delay"; "median"; "delivered"; "msgs"; "copies"; "overhead" ]

let metrics_align = [ Table.Left; Table.Right; Right; Right; Right; Right; Right; Right ]

let render_metrics ~title rows =
  heading title (Table.render ~align:metrics_align ~header:metrics_header (List.map metrics_row rows))

let render_metrics_by_pair ~title groups =
  let body =
    List.map
      (fun (pair, rows) ->
        Printf.sprintf "-- %s --\n%s" (Classify.pair_type_name pair)
          (Table.render ~align:metrics_align ~header:metrics_header (List.map metrics_row rows)))
      groups
    |> String.concat "\n"
  in
  heading title body

(* Failed sweep cells, one line each; "" when the run was healthy so
   reports stay byte-identical to the pre-failpoint ones. *)
let failed_lines failed =
  match failed with
  | [] -> ""
  | cells ->
    "\n"
    ^ (cells
      |> List.map (fun (algo, seed, reason) ->
             Printf.sprintf "FAILED %s seed %Ld: %s" algo seed reason)
      |> String.concat "\n")

(* Leads with a newline: callers append this to a rendered table,
   whose last row has no trailing newline. *)
let render_failed_cells ~title failed =
  match failed with
  | [] -> ""
  | cells -> "\n" ^ heading title (String.trim (failed_lines cells))

let render_resilience ~title (study : Experiments.resilience_study) =
  let module Explosion = Psn_paths.Explosion in
  let module Faults = Psn_sim.Faults in
  let med of_survival survivals =
    match List.filter_map of_survival survivals with
    | [] -> Float.nan
    | vs -> Psn_stats.Quantile.median (Array.of_list vs)
  in
  let level_block (l : Experiments.resilience_level) =
    let rows =
      List.map
        (fun ((e : Psn_forwarding.Registry.entry), m) -> metrics_row (e.Psn_forwarding.Registry.label, m))
        l.Experiments.res_rows
    in
    let n_probes = List.length l.Experiments.res_survival in
    let delivered =
      List.length (List.filter (fun s -> s.Explosion.still_delivered) l.Experiments.res_survival)
    in
    let baseline_med =
      med (fun s -> Some (float_of_int s.Explosion.baseline_paths)) l.Experiments.res_survival
    in
    let surviving_med =
      med (fun s -> Some (float_of_int s.Explosion.surviving_paths)) l.Experiments.res_survival
    in
    let ratio_med = med (fun s -> Some s.Explosion.survival_ratio) l.Experiments.res_survival in
    let penalty_med = med (fun s -> s.Explosion.delay_penalty) l.Experiments.res_survival in
    Printf.sprintf "-- intensity %.2f: %s --\n%s\npaths: median %.0f -> %.0f surviving (ratio %.2f), %d/%d probes still delivered%s"
      l.Experiments.res_intensity
      (Format.asprintf "%a" Faults.pp_spec l.Experiments.res_spec)
      (Table.render ~align:metrics_align ~header:metrics_header rows)
      baseline_med surviving_med ratio_med delivered n_probes
      (if Float.is_nan penalty_med then "" else Printf.sprintf ", median delay penalty %+.0f s" penalty_med)
    ^ failed_lines l.Experiments.res_failed
  in
  heading title
    (String.concat "\n\n" (List.map level_block study.Experiments.res_levels)
    ^ "\n\n(graceful degradation = success falls sublinearly in intensity while surviving\n\
       path counts stay large; overhead = attempted transfers per successful copy)")

let render_cumulative ~title staircase =
  match Array.length staircase with
  | 0 -> heading title "(no deliveries)"
  | len ->
    let checkpoints = Int.min 12 len in
    let rows =
      List.init checkpoints (fun i ->
          let idx = (i + 1) * len / checkpoints - 1 in
          let time, count = staircase.(idx) in
          [ Printf.sprintf "%.0f" time; string_of_int count ])
    in
    heading title
      (Table.render ~align:[ Table.Right; Right ] ~header:[ "time (s)"; "paths delivered" ] rows)

let render_fig12 ~title examples =
  let body =
    List.map
      (fun (e : Experiments.fig12_example) ->
        let bursts =
          (* Collapse arrivals into (offset, count) bursts for display. *)
          List.fold_left
            (fun acc offset ->
              match acc with
              | (o, c) :: rest when Float.abs (o -. offset) < 0.5 -> (o, c + 1) :: rest
              | _ -> (offset, 1) :: acc)
            [] e.Experiments.arrival_offsets
          |> List.rev
          |> List.map (fun (o, c) -> Printf.sprintf "%+.0fs:%d" o c)
          |> String.concat " "
        in
        let algorithms =
          List.map
            (fun (name, offset) ->
              match offset with
              | Some o -> Printf.sprintf "%s=%+.0fs" name o
              | None -> Printf.sprintf "%s=undelivered" name)
            e.Experiments.algorithm_offsets
          |> String.concat "  "
        in
        Printf.sprintf "msg n%d->n%d @%.0fs (T1=%.0fs)\n  arrival bursts: %s\n  algorithms:     %s"
          e.Experiments.ex_src e.Experiments.ex_dst e.Experiments.ex_t_create e.Experiments.ex_t1
          bursts algorithms)
      examples
    |> String.concat "\n"
  in
  heading title (if String.equal body "" then "(no suitable example messages)" else body)

let render_hop_rates ~title rows =
  let table_rows =
    List.map
      (fun (hop, summary, (lo, hi)) ->
        [
          string_of_int hop;
          string_of_int (Psn_stats.Summary.count summary);
          Printf.sprintf "%.5f" (Psn_stats.Summary.mean summary);
          Printf.sprintf "[%.5f, %.5f]" lo hi;
        ])
      rows
  in
  heading title
    (Table.render
       ~align:[ Table.Right; Right; Right; Left ]
       ~header:[ "hop"; "n"; "mean rate (1/s)"; "99% CI" ]
       table_rows)

let render_hop_ratios ~title rows =
  let table_rows =
    List.map
      (fun (label, box) ->
        [
          label;
          string_of_int box.Psn_stats.Boxplot.count;
          Printf.sprintf "%.2f" box.Psn_stats.Boxplot.q1;
          Printf.sprintf "%.2f" box.Psn_stats.Boxplot.median;
          Printf.sprintf "%.2f" box.Psn_stats.Boxplot.q3;
          Printf.sprintf "%.2f" box.Psn_stats.Boxplot.whisker_hi;
        ])
      rows
  in
  heading title
    (Table.render
       ~align:[ Table.Left; Right; Right; Right; Right; Right ]
       ~header:[ "hops"; "n"; "q1"; "median"; "q3"; "whisker hi" ]
       table_rows
    ^ "\n(ratios > 1 mean the message climbs toward higher-rate nodes)")

let render_model_rows ~title rows =
  let table_rows =
    List.map
      (fun (r : Experiments.model_row) ->
        [
          Printf.sprintf "%.2f" r.Experiments.m_time;
          Printf.sprintf "%.6g" r.Experiments.m_closed;
          Printf.sprintf "%.6g" r.Experiments.m_ode;
          Printf.sprintf "%.6g" r.Experiments.m_mc;
        ])
      rows
  in
  heading title
    (Table.render
       ~align:[ Table.Right; Right; Right; Right ]
       ~header:[ "t"; "closed form"; "truncated ODE"; "Monte-Carlo" ]
       table_rows)

let render_quadrants ~title stats =
  let rows =
    List.map
      (fun (s : Psn_model.Inhomogeneous.quadrant_stats) ->
        let p = Psn_model.Inhomogeneous.predict s.Psn_model.Inhomogeneous.quadrant in
        [
          Format.asprintf "%a" Psn_model.Inhomogeneous.pp_quadrant
            s.Psn_model.Inhomogeneous.quadrant;
          Printf.sprintf "%.0f +- %.0f" s.Psn_model.Inhomogeneous.mean_t1
            s.Psn_model.Inhomogeneous.sd_t1;
          Printf.sprintf "%.0f +- %.0f" s.Psn_model.Inhomogeneous.mean_te
            s.Psn_model.Inhomogeneous.sd_te;
          Printf.sprintf "%d/%d" s.Psn_model.Inhomogeneous.deliveries
            s.Psn_model.Inhomogeneous.messages;
          (if p.Psn_model.Inhomogeneous.t1_small then "small" else "large");
          (if p.Psn_model.Inhomogeneous.te_small then "small" else "large/variable");
        ])
      stats
  in
  heading title
    (Table.render
       ~align:[ Table.Left; Right; Right; Right; Left; Left ]
       ~header:[ "pair"; "T1 (s)"; "TE (s)"; "delivered"; "predicted T1"; "predicted TE" ]
       rows)
