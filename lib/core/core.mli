(** Public umbrella for the PSN path-diversity library.

    Reproduction of Erramilli, Chaintreau, Crovella & Diot, "Diversity
    of Forwarding Paths in Pocket Switched Networks" (2007). This
    interface is the library's public surface: it flattens the
    substrate libraries into one namespace and re-exports nothing
    else, so every module below carries its own contract (and the
    determinism linter's [missing-mli] rule keeps it that way).

    Quickstart:
    {[
      let trace = Core.Dataset.(generate infocom06_am) in
      let snap = Core.Snapshot.of_trace trace in
      let result = Core.Enumerate.run snap ~src:0 ~dst:9 ~t_create:600. in
      let summary = Core.Explosion.analyze result in
      match summary.Core.Explosion.te with
      | Some te -> Format.fprintf ppf "time to explosion: %.0f s@." te
      | None -> Format.fprintf ppf "no explosion within the trace@."
    ]} *)

(* Deterministic collections *)
module Det_tbl = Psn_det.Det_tbl

(* Randomness *)
module Rng = Psn_prng.Rng
module Dist = Psn_prng.Dist
module Xoshiro = Psn_prng.Xoshiro
module Splitmix64 = Psn_prng.Splitmix64

(* Statistics *)
module Summary = Psn_stats.Summary
module Quantile = Psn_stats.Quantile
module Cdf = Psn_stats.Cdf
module Histogram = Psn_stats.Histogram
module Boxplot = Psn_stats.Boxplot
module Confint = Psn_stats.Confint
module Timeseries = Psn_stats.Timeseries
module Regression = Psn_stats.Regression
module Table = Psn_stats.Table

(* Traces *)
module Node = Psn_trace.Node
module Contact = Psn_trace.Contact
module Trace = Psn_trace.Trace
module Trace_io = Psn_trace.Trace_io
module Generator = Psn_trace.Generator
module Dataset = Psn_trace.Dataset
module Intercontact = Psn_trace.Intercontact

(* Space-time graph *)
module Timegrid = Psn_spacetime.Timegrid
module Snapshot = Psn_spacetime.Snapshot

module Stgraph = Psn_spacetime.Graph
(** The formal space-time graph view (named [Stgraph] here to keep
    [Graph] free for callers). *)

module Reachability = Psn_spacetime.Reachability

(* Paths and explosion *)
module Path = Psn_paths.Path
module Enumerate = Psn_paths.Enumerate
module Explosion = Psn_paths.Explosion

(* Analytic models *)
module Ode = Psn_model.Ode
module Homogeneous = Psn_model.Homogeneous
module Montecarlo = Psn_model.Montecarlo
module Inhomogeneous = Psn_model.Inhomogeneous

(* Forwarding simulation *)
module Message = Psn_sim.Message
module Workload = Psn_sim.Workload
module Algorithm = Psn_sim.Algorithm
module Engine = Psn_sim.Engine
module Faults = Psn_sim.Faults
module Metrics = Psn_sim.Metrics
module Runner = Psn_sim.Runner
module Parallel = Psn_sim.Parallel
module Cache = Psn_sim.Cache

(* Telemetry (spans, counters, Chrome-trace and profile exporters) *)
module Telemetry = Psn_telemetry.Telemetry
module Chrome = Psn_telemetry.Chrome
module Profile = Psn_telemetry.Profile
module Clock = Psn_telemetry.Clock
module Hist = Psn_telemetry.Hist
module Openmetrics = Psn_telemetry.Openmetrics

(* Robustness (deterministic fault injection, cooperative interrupts) *)
module Failpoint = Psn_robust.Failpoint
module Interrupt = Psn_robust.Interrupt
module Flight = Psn_robust.Flight

(* Online serving (sliding window, adaptive multipath router) *)
module Serve = Psn_serve.Server
module Serve_window = Psn_serve.Window
module Serve_protocol = Psn_serve.Protocol
module Multipath = Psn_serve.Multipath

(* Result store (content-addressed memoization) *)
module Store = Psn_store.Store
module Store_codec = Psn_store.Codec
module Store_key = Psn_store.Key
module Store_memo = Psn_store.Memo
module Fnv = Psn_store.Fnv

(* Algorithms *)
module Contact_history = Psn_forwarding.Contact_history
module Epidemic = Psn_forwarding.Epidemic
module Fresh = Psn_forwarding.Fresh
module Greedy = Psn_forwarding.Greedy
module Greedy_total = Psn_forwarding.Greedy_total
module Greedy_online = Psn_forwarding.Greedy_online
module Meed = Psn_forwarding.Meed
module Dynprog = Psn_forwarding.Dynprog
module Direct = Psn_forwarding.Direct
module Randomized = Psn_forwarding.Randomized
module Spray_wait = Psn_forwarding.Spray_wait
module Prophet = Psn_forwarding.Prophet
module Two_hop = Psn_forwarding.Two_hop
module Delegation = Psn_forwarding.Delegation
module Community = Psn_forwarding.Community
module Bubble_rap = Psn_forwarding.Bubble_rap
module Registry = Psn_forwarding.Registry

(* Analyses and drivers (defined in this library) *)
module Classify = Classify
module Hops = Hops
module Experiments = Experiments
module Report = Report
module Export = Export
