exception Interrupted of int

(* The pending flag holds the OS signal number (2/15), not OCaml's
   internal Sys.sigint/-term codes, so exit statuses follow the
   128+signal convention exactly. *)
let flag : int option Atomic.t = Atomic.make None

let os_number s = if s = Sys.sigint then 2 else if s = Sys.sigterm then 15 else 0

let handled = [ Sys.sigint; Sys.sigterm ]

let handler s =
  Atomic.set flag (Some (os_number s));
  (* Second signal = die now: the flag-based path is for the first,
     cooperative shutdown only. *)
  Sys.set_signal s Sys.Signal_default

let install () =
  List.iter (fun s -> Sys.set_signal s (Sys.Signal_handle handler)) handled

let uninstall () =
  List.iter (fun s -> Sys.set_signal s Sys.Signal_default) handled;
  Atomic.set flag None

let pending () = Atomic.get flag

let check () =
  match Atomic.get flag with None -> () | Some n -> raise (Interrupted n)

let exit_code n = 128 + n
