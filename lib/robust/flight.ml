(* Crash flight recorder: a bounded ring of recent structured events,
   dumped as a post-mortem JSON when the process dies abnormally — an
   injected [crash] failpoint, a signal, or an uncaught error.

   Recording follows the telemetry null-sink discipline: with no
   recorder armed, [note] is one atomic load and a branch. Armed
   recording takes a mutex — events arrive from whichever domain hits
   a store insert or a task retry, and the ring index must not race —
   but the recorder never feeds anything back to its callers, so
   arming it cannot change computed results.

   The dump deliberately happens on the abnormal-exit path itself
   (including inside Failpoint's [crash] action, just before the
   cleanup-free [Unix._exit]): a flight recorder that relied on
   orderly shutdown would miss exactly the deaths it exists for. *)

type entry = { seq : int; label : string; fields : (string * string) list }

type recorder = {
  path : string;
  cap : int;
  ring : entry option array;
  mutable next_seq : int;
  lock : Mutex.t;
}

let default_cap = 256

let current : recorder option Atomic.t = Atomic.make None

let arm ?(cap = default_cap) path =
  let cap = Int.max 1 cap in
  Atomic.set current
    (Some { path; cap; ring = Array.make cap None; next_seq = 0; lock = Mutex.create () })

let disarm () = Atomic.set current None

let armed () = Option.is_some (Atomic.get current)

let note label fields =
  match Atomic.get current with
  | None -> ()
  | Some r ->
    Mutex.lock r.lock;
    let seq = r.next_seq in
    r.next_seq <- seq + 1;
    r.ring.(seq mod r.cap) <- Some { seq; label; fields };
    Mutex.unlock r.lock

(* ---- JSON dump -------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render ~reason r =
  let b = Buffer.create 1024 in
  let recorded = Int.min r.next_seq r.cap in
  Buffer.add_string b
    (Printf.sprintf "{\"version\":1,\"reason\":\"%s\",\"recorded\":%d,\"dropped\":%d,\"events\":["
       (escape reason) recorded
       (Int.max 0 (r.next_seq - r.cap)));
  (* Oldest surviving event first: the ring holds seqs
     [next_seq - recorded, next_seq). *)
  let first = ref true in
  for seq = r.next_seq - recorded to r.next_seq - 1 do
    match r.ring.(seq mod r.cap) with
    | None -> ()
    | Some e ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b (Printf.sprintf "{\"seq\":%d,\"label\":\"%s\"" e.seq (escape e.label));
      List.iter
        (fun (k, v) ->
          Buffer.add_string b (Printf.sprintf ",\"%s\":\"%s\"" (escape k) (escape v)))
        e.fields;
      Buffer.add_char b '}'
  done;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Best-effort single write: the dump path runs where raising would
   mask the original death, so write errors are swallowed. No
   tmp+rename dance — a crash dump half-written because the disk died
   is still more evidence than no dump, and the validator catches
   truncation. *)
let dump ~reason () =
  match Atomic.get current with
  | None -> ()
  | Some r -> (
    Mutex.lock r.lock;
    let text = render ~reason r in
    Mutex.unlock r.lock;
    match open_out_bin r.path with
    | oc ->
      (try output_string oc text with Sys_error _ -> ());
      (try close_out oc with Sys_error _ -> ())
    | exception Sys_error _ -> ())

(* ---- post-mortem validation ------------------------------------------- *)

(* A tiny JSON syntax checker (objects/arrays/strings/numbers/atoms)
   plus the shape the dump promises: top-level object with "version",
   "reason" and "events". Returns the event count so tests can assert
   the crash actually left evidence behind. *)

exception Bad of string

let validate text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when Char.equal got c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let events = ref 0 in
  let rec parse_value ~depth =
    if depth > 32 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      let keys = ref [] in
      (match peek () with
      | Some '}' -> advance ()
      | _ ->
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          keys := k :: !keys;
          skip_ws ();
          expect ':';
          parse_value ~depth:(depth + 1) |> ignore;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ());
      if List.exists (String.equal "seq") !keys then incr events;
      !keys
    | Some '[' ->
      advance ();
      skip_ws ();
      (match peek () with
      | Some ']' -> advance ()
      | _ ->
        let rec elements () =
          parse_value ~depth:(depth + 1) |> ignore;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ());
      []
    | Some '"' ->
      parse_string () |> ignore;
      []
    | Some ('-' | '0' .. '9') ->
      let rec num () =
        match peek () with
        | Some ('-' | '+' | '.' | 'e' | 'E' | '0' .. '9') ->
          advance ();
          num ()
        | _ -> ()
      in
      num ();
      []
    | Some 't' | Some 'f' | Some 'n' ->
      let rec word () =
        match peek () with
        | Some ('a' .. 'z') ->
          advance ();
          word ()
        | _ -> ()
      in
      word ();
      []
    | _ -> fail "expected a JSON value"
  in
  match
    let keys = parse_value ~depth:0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after document";
    keys
  with
  | keys ->
    let has k = List.exists (String.equal k) keys in
    if not (has "version" && has "reason" && has "events") then
      Error "not a flight-recorder dump (missing version/reason/events)"
    else Ok !events
  | exception Bad msg -> Error msg
