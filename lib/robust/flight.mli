(** Crash flight recorder: bounded ring of recent structured events,
    dumped as post-mortem JSON on abnormal death.

    Long-running serving processes die in ways batch runs do not —
    injected crashes, signals, uncaught errors — and the last few
    hundred protocol lines, evictions, failpoint trips and store
    operations before the death are exactly the evidence a post-mortem
    needs. {!note} records into a fixed-capacity ring (oldest events
    overwritten, their count reported as [dropped]); {!dump} writes the
    ring as one JSON object.

    Null-sink discipline: with no recorder {!arm}ed, {!note} costs one
    atomic load. Recording never returns data to the caller, so arming
    the recorder cannot change computed results. Armed recording is
    mutex-serialized — events may arrive from any domain.

    Dump triggers are wired by the CLI and by {!Failpoint}: a [crash]
    action dumps just before its cleanup-free [Unix._exit 170], the
    serve loop dumps on [Interrupt.Interrupted] and uncaught errors.

    Dump format (version 1):
    {v
    {"version":1,"reason":"...","recorded":N,"dropped":D,
     "events":[{"seq":0,"label":"serve.line","raw":"..."}, ...]}
    v} *)

val arm : ?cap:int -> string -> unit
(** [arm path] installs a recorder of capacity [cap] (default 256,
    minimum 1) whose {!dump} writes to [path]. Replaces any previous
    recorder. *)

val disarm : unit -> unit

val armed : unit -> bool

val note : string -> (string * string) list -> unit
(** [note label fields] appends one event. No-op unless {!arm}ed. *)

val dump : reason:string -> unit -> unit
(** Write the post-mortem JSON to the armed path (no-op when
    disarmed). Best-effort: write failures are swallowed — the dump
    path runs where raising would mask the original death. *)

val validate : string -> (int, string) result
(** Check that a dump parses as JSON and has the promised top-level
    shape; returns the number of ring events found. Used by the
    crash-matrix test and [psn metrics check --flight]. *)
