(** Cooperative SIGINT/SIGTERM handling for long sweeps.

    A killed sweep should checkpoint what it finished and flush its
    telemetry, not vanish mid-write. {!install} replaces the default
    die-now behaviour with a flag; checkpoint loops poll {!check} at
    their safe points (between checkpoint rounds, between experiment
    levels) and raise {!Interrupted}, which the CLI catches to flush
    [--trace]/[--profile] output and exit with [128 + signal]
    (130 for SIGINT, 143 for SIGTERM — distinct from the 0/1/2/3
    result codes).

    The first signal only sets the flag and restores the default
    handler, so a second Ctrl-C kills the process immediately — the
    escape hatch when a sweep is stuck before its next safe point.

    Nothing here runs unless {!install} was called: library code may
    call {!check} unconditionally, and embedders that never install
    the handlers keep their own signal disposition. *)

exception Interrupted of int
(** Carries the OS signal number (2 = SIGINT, 15 = SIGTERM). *)

val install : unit -> unit
(** Install the flag-setting handlers for SIGINT and SIGTERM.
    Idempotent. *)

val uninstall : unit -> unit
(** Restore default signal behaviour and clear any pending flag. *)

val pending : unit -> int option
(** The OS signal number received since {!install}, if any. *)

val check : unit -> unit
(** Raise [Interrupted n] if a signal is pending; otherwise a no-op
    (one atomic load). Safe to call without {!install}. *)

val exit_code : int -> int
(** [exit_code n] is [128 + n] — the conventional exit status for
    "terminated by signal [n]". *)
