type action = Off | Error_now | Flaky | Crash

type rule = Always | On_hit of int | First_attempts of int | Prob of float

type site = {
  name : string;
  name_hash : int64;  (* precomputed digest of [name] for Prob verdicts *)
  action : action;
  rule : rule;
  hits : int Atomic.t;  (* consumed by On_hit, one per trigger *)
}

type plan = { seed : int64; plan_sites : site list }

exception Injected of { site : string; transient : bool }

let crash_exit_code = 170

(* Same decision-hashing kernel as Faults: one SplitMix64 step per
   mixed-in word, chained, so a verdict is a pure function of the
   mixed sequence. *)
let mix h w = Psn_prng.Splitmix64.next (Psn_prng.Splitmix64.create (Int64.logxor h w))
let mix_int h i = mix h (Int64.of_int i)

let unit_of_digest h = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53

let hash_name name =
  let h = ref 0x73697465L (* "site" *) in
  String.iter (fun c -> h := mix_int !h (Char.code c)) name;
  !h

(* ---- plan compilation ------------------------------------------------ *)

let action_of_string = function
  | "off" -> Ok Off
  | "error" -> Ok Error_now
  | "flaky" -> Ok Flaky
  | "crash" -> Ok Crash
  | other -> Error (Printf.sprintf "unknown action %S (want off|error|flaky|crash)" other)

let rule_of_suffix modifier arg =
  match modifier with
  | '@' -> (
    match int_of_string_opt arg with
    | Some n when n >= 1 -> Ok (On_hit n)
    | Some _ | None -> Error (Printf.sprintf "@%s: hit index must be an integer >= 1" arg))
  | '*' -> (
    match int_of_string_opt arg with
    | Some n when n >= 1 -> Ok (First_attempts n)
    | Some _ | None -> Error (Printf.sprintf "*%s: attempt count must be an integer >= 1" arg))
  | '%' -> (
    match float_of_string_opt arg with
    | Some p when Float.is_finite p && p >= 0. && p <= 1. -> Ok (Prob p)
    | Some _ | None -> Error (Printf.sprintf "%%%s: probability must lie in [0, 1]" arg))
  | _ -> Error "unreachable modifier"

let parse_clause clause =
  let err msg = Error (Printf.sprintf "failpoint clause %S: %s" clause msg) in
  match String.index_opt clause '=' with
  | None -> err "expected site=action"
  | Some i ->
    let name = String.trim (String.sub clause 0 i) in
    let rhs = String.trim (String.sub clause (i + 1) (String.length clause - i - 1)) in
    if String.length name = 0 then err "empty site name"
    else begin
      let rec find_modifier j =
        if j >= String.length rhs then None
        else
          match rhs.[j] with '@' | '*' | '%' -> Some j | _ -> find_modifier (j + 1)
      in
      let action_str, rule =
        match find_modifier 0 with
        | None -> (rhs, Ok Always)
        | Some j ->
          ( String.sub rhs 0 j,
            rule_of_suffix rhs.[j] (String.sub rhs (j + 1) (String.length rhs - j - 1)) )
      in
      match (action_of_string action_str, rule) with
      | Error msg, _ | _, Error msg -> err msg
      | Ok action, Ok rule ->
        Ok { name; name_hash = hash_name name; action; rule; hits = Atomic.make 0 }
    end

let parse ?(seed = 0L) spec =
  let clauses =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun c -> not (String.equal c ""))
  in
  if List.is_empty clauses then Error "empty failpoint spec"
  else begin
    let rec build acc = function
      | [] -> Ok { seed; plan_sites = List.rev acc }
      | clause :: rest -> (
        match parse_clause clause with
        | Error _ as e -> e
        | Ok site ->
          if List.exists (fun s -> String.equal s.name site.name) acc then
            Error (Printf.sprintf "failpoint clause %S: duplicate site" clause)
          else build (site :: acc) rest)
    in
    build [] clauses
  end

let sites plan = List.map (fun s -> s.name) plan.plan_sites

(* ---- the installed plan ---------------------------------------------- *)

let current : plan option Atomic.t = Atomic.make None

let install plan = Atomic.set current (Some plan)

let uninstall () = Atomic.set current None

let installed () = Atomic.get current

(* ---- verdicts -------------------------------------------------------- *)

(* The retry attempt is domain-local: a retry loop wraps each attempt
   in [with_attempt], and since one task's attempts run consecutively
   on one domain, the counter is exactly that task's attempt index —
   never another task's. *)
let attempt_key = Domain.DLS.new_key (fun () -> 0)

let with_attempt n f =
  let previous = Domain.DLS.get attempt_key in
  Domain.DLS.set attempt_key n;
  Fun.protect ~finally:(fun () -> Domain.DLS.set attempt_key previous) f

let fires plan site ~key =
  match site.action with
  | Off -> false
  | Error_now | Flaky | Crash -> (
    match site.rule with
    | Always -> true
    | On_hit n -> Atomic.fetch_and_add site.hits 1 = n - 1
    | First_attempts n -> Domain.DLS.get attempt_key < n
    | Prob p ->
      let h =
        mix_int (mix (mix plan.seed site.name_hash) key) (Domain.DLS.get attempt_key)
      in
      unit_of_digest h < p)

let act site =
  match site.action with
  | Off -> ()
  | Error_now ->
    Flight.note "failpoint.trip" [ ("site", site.name); ("action", "error") ];
    raise (Injected { site = site.name; transient = false })
  | Flaky ->
    Flight.note "failpoint.trip" [ ("site", site.name); ("action", "flaky") ];
    raise (Injected { site = site.name; transient = true })
  | Crash ->
    (* A faithful crash: no at_exit, no channel flushing — the process
       disappears exactly as a SIGKILL would leave it. The one
       exception is the flight recorder, dumped here by hand: its whole
       purpose is to survive exactly this death. *)
    Flight.note "failpoint.trip" [ ("site", site.name); ("action", "crash") ];
    Flight.dump ~reason:(Printf.sprintf "failpoint crash at %s" site.name) ();
    Unix._exit crash_exit_code

let trigger ?(key = 0L) name =
  match Atomic.get current with
  | None -> ()
  | Some plan -> (
    match List.find_opt (fun s -> String.equal s.name name) plan.plan_sites with
    | None -> ()
    | Some site -> if fires plan site ~key then act site)

let is_transient = function
  | Injected { transient; _ } -> transient
  | _ -> false

let describe = function
  | Injected { site; transient } ->
    Printf.sprintf "injected %s failure at %s"
      (if transient then "transient" else "permanent")
      site
  | e -> Printexc.to_string e
