(** Deterministic failure-injection sites (fail-rs style).

    Robustness code is exactly as good as the failures it has been run
    against. This module lets the library name its dangerous moments
    ({e sites} such as ["store.insert.pre_rename"]) and lets a test or
    a chaos run compile a {e plan} that makes chosen sites raise, act
    flaky, or kill the process outright — while a production run pays
    one atomic load and a branch per site ({!trigger} with no plan
    installed is a guaranteed no-op, the same null-sink discipline as
    telemetry).

    Determinism contract: every verdict is a pure function of the
    plan's seed, the site name, the caller-supplied key and the current
    {!with_attempt} retry attempt — seeded exactly like
    [Psn_sim.Faults], never from scheduling order — so an injected
    failure schedule is reproducible for any [--jobs] × [--chunk]
    combination as long as triggers pass a stable key (task seed,
    message id, ...). The one exception is the [@N] hit-count rule,
    which consumes a per-site atomic counter: it is deterministic only
    for sites hit from a single domain in program order (the store's
    single-writer sites) or when any victim is acceptable (crash
    matrices).

    Plan syntax ({!parse}): comma-separated [site=action] clauses.

    {v
    action  ::= off            never fires (documents a site)
              | error          raise Injected (permanent) every hit
              | flaky          raise Injected (transient) every hit
              | crash          kill the process (exit 170, no cleanup)
    rule    ::= action
              | action @ N     fire on the Nth hit of the site (1-based)
              | action * N     fire while the retry attempt is < N
              | action % P     fire with probability P, hashed from
                               (seed, site, key, attempt)
    v}

    Examples: ["store.insert.pre_rename=crash@1"] kills the process
    the first time an insert reaches its rename;
    ["runner.task=flaky*2"] makes every task fail its first two
    attempts and succeed on the third;
    ["runner.task=error%0.2"] fails a deterministic 20% of tasks. *)

exception Injected of { site : string; transient : bool }
(** Raised by a triggered [error]/[flaky] site. [transient] failures
    are the ones retry layers ({!Psn_sim.Parallel.map_result}) may
    retry; permanent ones always propagate. *)

val crash_exit_code : int
(** Exit code of a [crash] action: 170. Chosen to collide with neither
    the CLI's documented codes (0-3) nor the 128+signal convention, so
    a harness can assert that a death was an injected crash. *)

type plan
(** A compiled plan. Sharing one plan across domains is safe: verdict
    state is either immutable or atomic. *)

val parse : ?seed:int64 -> string -> (plan, string) result
(** Compile a plan from the syntax above. [seed] (default 0) roots
    every probabilistic verdict. Errors name the offending clause. *)

val sites : plan -> string list
(** The site names the plan covers, in clause order. *)

val install : plan -> unit
(** Make the plan current for the whole process (replacing any
    previous one). Call before the work under test; triggers hit from
    any domain see it. *)

val uninstall : unit -> unit
(** Remove the current plan; every site is a no-op again. *)

val installed : unit -> plan option

val trigger : ?key:int64 -> string -> unit
(** [trigger ~key site] asks the current plan for a verdict. With no
    plan installed this is one atomic load and a branch — safe on hot
    paths. [key] (default 0) names the unit of work so probabilistic
    verdicts are schedule-independent; pass the task's seed, message
    id, or another stable identity. *)

val is_transient : exn -> bool
(** [true] exactly for [Injected {transient = true; _}] — the
    predicate retry layers use to decide whether another attempt may
    succeed. *)

val describe : exn -> string
(** Human-readable one-liner for a failed task cell: names the site
    and permanence for {!Injected}, falls back to
    [Printexc.to_string] for everything else. *)

val with_attempt : int -> (unit -> 'a) -> 'a
(** [with_attempt n f] runs [f] with the domain-local retry attempt
    counter set to [n] (0 = first try), restoring the previous value
    afterwards even on exception. [flaky*N] and [%P] verdicts read it,
    which is how a retried task can deterministically stop failing. *)
