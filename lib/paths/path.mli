(** Space-time forwarding paths and their validity conditions (§4.1).

    A path is a time-ordered sequence of (node, time) hops; a message
    moves to the next node only while the two are in contact. The paper
    restricts attention to {e valid} paths:

    - {b loop avoidance}: no node appears twice;
    - {b minimal progress}: the destination appears only as the final
      hop — any node holding the message hands it over on meeting the
      destination;
    - {b first preference}: no intermediate node sat on the message
      through a direct contact with the destination and delivered only
      later (such a path is dominated by the earlier hand-off).

    Times are step-right-edges of the {!Psn_spacetime.Timegrid}, as
    produced by the enumerator. *)

type hop = { node : Psn_trace.Node.id; step : int }

type t
(** An immutable path with at least one hop. *)

val of_hops : hop list -> t
(** Build from hops in travel order. Raises [Invalid_argument] on an
    empty list or non-monotone steps. *)

val hops : t -> hop list
(** Hops in travel order. *)

val source : t -> Psn_trace.Node.id
val last_node : t -> Psn_trace.Node.id

val length : t -> int
(** Number of hops (tuples), the paper's path length. *)

val transfers : t -> int
(** [length - 1]: number of node-to-node hand-offs. *)

val first_step : t -> int
val last_step : t -> int

val nodes : t -> Psn_trace.Node.id list
(** Visited nodes in travel order. *)

val duration : Psn_spacetime.Timegrid.t -> t -> t_create:float -> float
(** Delivery time minus creation time, using the grid to convert the
    final step to seconds. *)

val is_loop_free : t -> bool

val respects_minimal_progress : t -> dst:Psn_trace.Node.id -> bool
(** The destination, if present, is the final hop only. *)

val respects_first_preference :
  Psn_spacetime.Snapshot.t -> t -> dst:Psn_trace.Node.id -> bool
(** No hop node was in direct contact with [dst] at a step in
    [\[receipt, delivery)] (delivering exactly at the contact step is
    allowed — the paper's inequality is strict). Vacuously true for
    paths not ending at [dst]. *)

val is_valid : Psn_spacetime.Snapshot.t -> t -> dst:Psn_trace.Node.id -> bool
(** Conjunction of the three conditions. *)

val is_feasible : Psn_spacetime.Snapshot.t -> t -> bool
(** Every hand-off happens over an actual contact edge of its step, and
    waiting only moves forward in time — i.e. the path exists in the
    space-time graph at all. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** ["n0@3 -> n4@3 -> n9@7"]. *)
