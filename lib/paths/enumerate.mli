(** k-shortest valid-path enumeration (the paper's Fig. 3 algorithm).

    Dynamic programming over the space-time graph: at each timestep an
    N x k table holds, per node, the (up to) [k] fewest-hop valid paths
    from the source reaching that node so far. Each step, retained paths
    extend along zero-weight contact chains within the step (recording
    intermediate nodes, enforcing loop-freedom); arrivals at the
    destination are emitted; paths held by a node in direct contact with
    the destination are delivered and not extended to later steps (first
    preference); per node the [k] fewest-hop paths survive.

    Enumeration stops when [k] or more paths reach the destination
    within a single step, when an optional cumulative arrival budget is
    hit, when no live path remains, or at the end of the trace. *)

type config = {
  k : int;  (** Paths retained per node, and the one-step stop threshold
                (paper: 2000). *)
  max_hops : int option;  (** Optional cap on path length in hops. *)
  stop_at_total : int option;
      (** Stop once this many arrivals have been recorded in total —
          lets explosion analyses (which need the first n* arrivals) cut
          enumeration short. *)
  exhaustive : bool;
      (** When [false] (the default), paths only extend when they are
          newly created, the edge is newly present, or the holding node
          is inside the destination's contact component. This leaves
          first arrivals and all deliveries identical to the exhaustive
          algorithm (see the implementation note) while skipping the
          steady-state re-extensions that dominate runtime; the only
          deviation is that a node whose table was drained by a
          first-preference kill is not refilled from static neighbours,
          a second-order undercount of retained (not delivered) paths.
          Set [true] for the paper's exact per-step behaviour. *)
}

val default_config : config
(** [k = 2000], no hop cap, no total cap, non-exhaustive. *)

type arrival = {
  path : Path.t;  (** The full delivered path, ending at the destination. *)
  step : int;  (** Delivery step. *)
  time : float;  (** Delivery time [step * delta]. *)
  duration : float;  (** [time - t_create]. *)
}

type result = {
  arrivals : arrival array;  (** Chronological (fewest-hop first within a step). *)
  stopped_early : bool;  (** [true] iff a stop threshold fired before trace end. *)
  steps_processed : int;
  src : Psn_trace.Node.id;
  dst : Psn_trace.Node.id;
  t_create : float;
}

val run :
  ?config:config ->
  Psn_spacetime.Snapshot.t ->
  src:Psn_trace.Node.id ->
  dst:Psn_trace.Node.id ->
  t_create:float ->
  result
(** Enumerate all valid paths for the message [(src, dst, t_create)].
    Raises [Invalid_argument] on out-of-range nodes, [src = dst],
    [t_create] outside the trace window, or a non-positive [k]. *)

val first_arrival : result -> arrival option
(** The optimal path, when one was found. *)

val arrival_times : result -> float array
(** Delivery times of all recorded arrivals, ascending. *)
