module Snapshot = Psn_spacetime.Snapshot
module Timegrid = Psn_spacetime.Timegrid

type config = {
  k : int;
  max_hops : int option;
  stop_at_total : int option;
  exhaustive : bool;
}

let default_config = { k = 2000; max_hops = None; stop_at_total = None; exhaustive = false }

type arrival = { path : Path.t; step : int; time : float; duration : float }

type result = {
  arrivals : arrival array;
  stopped_early : bool;
  steps_processed : int;
  src : Psn_trace.Node.id;
  dst : Psn_trace.Node.id;
  t_create : float;
}

(* Compact per-copy state. [hops_rev] shares its tail across extensions,
   so an extension costs one cons; [visited] is a private bitset copied
   on extension (n/8 bytes). *)
type ipath = {
  last : int;
  hops_rev : (int * int) list;
  nhops : int;
  visited : Bytes.t;
  born : int;  (* step at which this copy was created *)
}

let bitset_create n = Bytes.make ((n + 7) / 8) '\000'

let[@psn.hot] bitset_mem bs i = Char.code (Bytes.get bs (i lsr 3)) land (1 lsl (i land 7)) <> 0

let[@psn.hot] bitset_add bs i =
  let byte = i lsr 3 in
  Bytes.set bs byte (Char.chr (Char.code (Bytes.get bs byte) lor (1 lsl (i land 7))))

let[@psn.hot] bitset_remove bs i =
  let byte = i lsr 3 in
  Bytes.set bs byte (Char.chr (Char.code (Bytes.get bs byte) land lnot (1 lsl (i land 7)) land 0xff))

let bitset_with bs i =
  let copy = Bytes.copy bs in
  bitset_add copy i;
  copy

let[@psn.hot] bitset_intersects a b =
  let len = Bytes.length a in
  let rec scan i =
    if i >= len then false
    else if Char.code (Bytes.get a i) land Char.code (Bytes.get b i) <> 0 then true
    else scan (i + 1)
  in
  scan 0

(* Merge two nhops-ascending path lists, keeping the first [k]. *)
let merge_k k xs ys =
  let rec go n xs ys acc =
    if n = 0 then List.rev acc
    else
      match (xs, ys) with
      | [], [] -> List.rev acc
      | x :: xs', [] -> go (n - 1) xs' [] (x :: acc)
      | [], y :: ys' -> go (n - 1) [] ys' (y :: acc)
      | x :: xs', y :: ys' ->
        if x.nhops <= y.nhops then go (n - 1) xs' ys (x :: acc) else go (n - 1) xs ys' (y :: acc)
  in
  go k xs ys []

let to_path ip ~dst ~step =
  let hops = List.rev_map (fun (node, step) -> { Path.node; step }) ((dst, step) :: ip.hops_rev) in
  Path.of_hops hops

let run ?(config = default_config) snap ~src ~dst ~t_create =
  let n = Snapshot.n_nodes snap in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Enumerate.run: node out of range";
  if src = dst then invalid_arg "Enumerate.run: src = dst";
  if config.k <= 0 then invalid_arg "Enumerate.run: k must be positive";
  let grid = Snapshot.grid snap in
  let c0 = Timegrid.step_of_time grid t_create in
  let k = config.k in
  let hop_cap = match config.max_hops with None -> n | Some h -> Int.min h n in
  (* DP table: per node, the retained paths, nhops-ascending. *)
  let table = Array.make n [] in
  let table_size = Array.make n 0 in
  table.(src) <-
    [
      {
        last = src;
        hops_rev = [ (src, c0) ];
        nhops = 1;
        visited = bitset_with (bitset_create n) src;
        born = c0;
      };
    ];
  table_size.(src) <- 1;
  let live_paths = ref 1 in
  let arrivals = ref [] in
  let n_arrivals = ref 0 in
  let stopped_early = ref false in
  let steps_processed = ref 0 in
  (* Dijkstra-style bucket queue over nhops keeps intra-step expansion in
     ascending hop order, making the per-node k-shortest pruning exact. *)
  let buckets = Array.make (n + 2) [] in
  (* Scratch bitset for the fresh-edge computation, reused (and cleared
     back to zero) every node of every step. *)
  let prev_mask = bitset_create n in
  let new_at = Array.make n [] in
  let new_count = Array.make n 0 in
  let touched = ref [] in
  let total_budget () =
    match config.stop_at_total with None -> max_int | Some t -> t
  in
  let step = ref (c0 + 1) in
  let n_steps = Timegrid.n_steps grid in
  (try
     while !step <= n_steps do
       let step_now = !step in
       incr steps_processed;
       let neighbours = Snapshot.neighbours snap ~step:step_now in
       let dst_contacts = neighbours dst in
       (* An extension of path p over edge (u, v) can enter v's table (or
          deliver) only if p is newly created or the edge is newly
          present: a static configuration already produced the same-hop,
          earlier-time copies in the previous step, and ties keep the
          earlier copy. Restricting extensions accordingly removes the
          dominant steady-state cost without changing any output. *)
       let prev_neighbours u =
         if step_now = 1 then [] else Snapshot.neighbours snap ~step:(step_now - 1) u
       in
       let fresh_edges = Array.make n [] in
       let has_fresh = Array.make n false in
       for u = 0 to n - 1 do
         let fresh =
           if config.exhaustive then neighbours u
           else begin
             (* Membership in last step's neighbour set via a reusable
                bitset: O(deg) per node where the old List.mem scan was
                O(deg²) — the dominant per-step cost on dense steps. *)
             match prev_neighbours u with
             | [] -> neighbours u
             | prev ->
               List.iter (fun v -> bitset_add prev_mask v) prev;
               let fresh =
                 List.filter (fun v -> not (bitset_mem prev_mask v)) (neighbours u)
               in
               List.iter (fun v -> bitset_remove prev_mask v) prev;
               fresh
           end
         in
         fresh_edges.(u) <- fresh;
         has_fresh.(u) <- not (List.is_empty fresh)
       done;
       (* Deliveries are different: every chain reaching the destination
          this step is a distinct counted path even along static edges
          (each step's traversal has its own timestamps), so inside the
          destination's contact component everything must extend. *)
       let in_dst_component = Array.make n false in
       if not (List.is_empty dst_contacts) then
         List.iter
           (fun u -> in_dst_component.(u) <- true)
           (Snapshot.component_of snap ~step:step_now dst);
       (* Seed the buckets with retained paths that can still produce
          novel extensions or deliveries this step. *)
       let any_active = ref false in
       for u = 0 to n - 1 do
         if u <> dst && (not (List.is_empty table.(u))) && not (List.is_empty (neighbours u)) then
           List.iter
             (fun p ->
               if p.born >= step_now - 1 || has_fresh.(u) || in_dst_component.(u) then begin
                 any_active := true;
                 buckets.(p.nhops) <- p :: buckets.(p.nhops)
               end)
             table.(u)
       done;
       if !any_active then begin
         let step_time = Timegrid.time_of_step grid step_now in
         let arrivals_this_step = ref 0 in
         (* Threshold beyond which a candidate at node v cannot rank in
            v's top k once merged with the old paths. *)
         let kth_old = Array.make n max_int in
         for v = 0 to n - 1 do
           if table_size.(v) >= k then begin
             let rec nth i = function
               | x :: _ when i = k - 1 -> x.nhops
               | _ :: rest -> nth (i + 1) rest
               | [] -> max_int
             in
             kth_old.(v) <- nth 0 table.(v)
           end
         done;
         (try
            for h = 1 to n do
              let rec drain () =
                match buckets.(h) with
                | [] -> ()
                | p :: rest ->
                  buckets.(h) <- rest;
                  let u = p.last in
                  let targets =
                    if p.born >= step_now - 1 || in_dst_component.(u) then neighbours u
                    else fresh_edges.(u)
                  in
                  List.iter
                    (fun v ->
                      if v = dst then begin
                        if !arrivals_this_step < k && !n_arrivals < total_budget () then begin
                          arrivals :=
                            {
                              path = to_path p ~dst ~step:step_now;
                              step = step_now;
                              time = step_time;
                              duration = step_time -. t_create;
                            }
                            :: !arrivals;
                          incr arrivals_this_step;
                          incr n_arrivals
                        end;
                        if !arrivals_this_step >= k || !n_arrivals >= total_budget () then
                          raise Exit
                      end
                      else if
                        (not (bitset_mem p.visited v))
                        && p.nhops < hop_cap
                        && new_count.(v) < k
                        && p.nhops + 1 <= kth_old.(v)
                      then begin
                        let q =
                          {
                            last = v;
                            hops_rev = (v, step_now) :: p.hops_rev;
                            nhops = p.nhops + 1;
                            visited = bitset_with p.visited v;
                            born = step_now;
                          }
                        in
                        if new_count.(v) = 0 then touched := v :: !touched;
                        new_at.(v) <- q :: new_at.(v);
                        new_count.(v) <- new_count.(v) + 1;
                        buckets.(q.nhops) <- q :: buckets.(q.nhops)
                      end)
                    targets;
                  drain ()
              in
              drain ()
            done
          with Exit ->
            (* A stop threshold fired mid-step; clear leftover buckets. *)
            Array.fill buckets 0 (Array.length buckets) []);
         (* First preference is retrospective: once a node meets the
            destination, every path that ever passed through it (and was
            thus deliverable at this step at the latest) may not produce
            later deliveries. Build a mask of this step's destination
            contacts and drop every path whose visited set intersects
            it — both retained paths and this step's fresh ones. Their
            same-step deliveries were already emitted above. *)
         let d_mask =
           if List.is_empty dst_contacts then None
           else begin
             let mask = bitset_create n in
             List.iter (fun u -> bitset_add mask u) dst_contacts;
             Some mask
           end
         in
         let surviving paths =
           match d_mask with
           | None -> paths
           | Some mask -> List.filter (fun p -> not (bitset_intersects p.visited mask)) paths
         in
         (match d_mask with
         | None -> ()
         | Some _ ->
           for w = 0 to n - 1 do
             if not (List.is_empty table.(w)) then begin
               let kept = surviving table.(w) in
               let sz = List.length kept in
               live_paths := !live_paths - table_size.(w) + sz;
               table.(w) <- kept;
               table_size.(w) <- sz
             end
           done);
         (* Merge this step's surviving new paths into the table. *)
         List.iter
           (fun v ->
             let fresh = surviving (List.rev new_at.(v)) in
             let before = table_size.(v) in
             let merged = merge_k k table.(v) fresh in
             table.(v) <- merged;
             table_size.(v) <- List.length merged;
             live_paths := !live_paths - before + table_size.(v);
             new_at.(v) <- [];
             new_count.(v) <- 0)
           !touched;
         touched := [];
         if !arrivals_this_step >= k || !n_arrivals >= total_budget () then begin
           stopped_early := true;
           raise Exit
         end
       end;
       if !live_paths = 0 then raise Exit;
       incr step
     done
   with Exit -> ());
  {
    arrivals = Array.of_list (List.rev !arrivals);
    stopped_early = !stopped_early;
    steps_processed = !steps_processed;
    src;
    dst;
    t_create;
  }

let first_arrival result = if Array.length result.arrivals = 0 then None else Some result.arrivals.(0)

let arrival_times result = Array.map (fun a -> a.time) result.arrivals
