type summary = {
  n_arrivals : int;
  delivered : bool;
  t1 : float option;
  optimal_duration : float option;
  tn : float option;
  te : float option;
}

let analyze ?(n_explosion = 2000) (result : Enumerate.result) =
  if n_explosion <= 0 then invalid_arg "Explosion.analyze: n_explosion must be positive";
  let arrivals = result.Enumerate.arrivals in
  let n = Array.length arrivals in
  if n = 0 then
    { n_arrivals = 0; delivered = false; t1 = None; optimal_duration = None; tn = None; te = None }
  else begin
    let first = arrivals.(0) in
    let t1 = first.Enumerate.time in
    let tn =
      if n >= n_explosion then Some arrivals.(n_explosion - 1).Enumerate.time else None
    in
    {
      n_arrivals = n;
      delivered = true;
      t1 = Some t1;
      optimal_duration = Some first.Enumerate.duration;
      tn;
      te = Option.map (fun t -> t -. t1) tn;
    }
  end

let cumulative (result : Enumerate.result) =
  let points = ref [] in
  Array.iteri
    (fun i (a : Enumerate.arrival) ->
      match !points with
      | (t, _) :: rest when Float.equal t a.Enumerate.time ->
        points := (t, i + 1) :: rest
      | _ -> points := (a.Enumerate.time, i + 1) :: !points)
    result.Enumerate.arrivals;
  List.rev !points

let arrivals_relative_to_t1 (result : Enumerate.result) =
  match Array.length result.Enumerate.arrivals with
  | 0 -> []
  | _ ->
    let t1 = result.Enumerate.arrivals.(0).Enumerate.time in
    Array.to_list result.Enumerate.arrivals
    |> List.map (fun (a : Enumerate.arrival) -> a.Enumerate.time -. t1)

type survival = {
  baseline_paths : int;
  surviving_paths : int;
  survival_ratio : float;
  still_delivered : bool;
  delay_penalty : float option;
}

let survival ~baseline ~degraded =
  let b = Array.length baseline.Enumerate.arrivals in
  let s = Array.length degraded.Enumerate.arrivals in
  let first (r : Enumerate.result) =
    if Array.length r.Enumerate.arrivals = 0 then None
    else Some r.Enumerate.arrivals.(0).Enumerate.time
  in
  {
    baseline_paths = b;
    surviving_paths = s;
    survival_ratio = (if b = 0 then 1. else float_of_int s /. float_of_int b);
    still_delivered = s > 0;
    delay_penalty =
      (match (first baseline, first degraded) with
      | Some t_b, Some t_d -> Some (t_d -. t_b)
      | _, _ -> None);
  }

let growth_rate result =
  match cumulative result with
  | [] | [ _ ] -> None
  | ((t1, _) :: _ : (float * int) list) as staircase ->
    let points = List.map (fun (t, c) -> (t -. t1, float_of_int c)) staircase in
    (match Psn_stats.Regression.exponential_rate points with
    | fit -> Some fit
    | exception Invalid_argument _ -> None)
