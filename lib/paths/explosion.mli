(** Path-explosion metrics (§4.2).

    Given one message's enumeration output, computes the quantities the
    paper defines: [T1] (arrival time of the optimal path), [Tn] (time
    of the n-th path, default n = 2000), and the time to explosion
    [TE = Tn - T1]. Also provides the cumulative-arrival staircase of
    Fig. 6 and an exponential growth-rate fit of the explosion. *)

type summary = {
  n_arrivals : int;  (** Paths recorded before enumeration stopped. *)
  delivered : bool;  (** At least one path reached the destination. *)
  t1 : float option;  (** Absolute arrival time of the first path. *)
  optimal_duration : float option;  (** [T1 - t_create] — Fig. 4a's variable. *)
  tn : float option;  (** Absolute time of the n-th arrival, when it exists. *)
  te : float option;  (** [Tn - T1] — Fig. 4b's variable. *)
}

val analyze : ?n_explosion:int -> Enumerate.result -> summary
(** [n_explosion] defaults to the paper's 2000. Raises
    [Invalid_argument] if it is not positive. *)

val cumulative : Enumerate.result -> (float * int) list
(** [(arrival time, total paths so far)] staircase, one point per
    distinct arrival time. *)

val arrivals_relative_to_t1 : Enumerate.result -> float list
(** Each arrival's delay after the first arrival — the raw data behind
    Fig. 6's histogram. Empty when nothing was delivered. *)

val growth_rate : Enumerate.result -> Psn_stats.Regression.fit option
(** Fit [count(t) = A e^{r (t - T1)}] over the cumulative staircase;
    [None] when fewer than two distinct arrival times exist. The
    paper's claim is that this growth is approximately exponential with
    rate set by the contact rates involved. *)
