(** Path-explosion metrics (§4.2).

    Given one message's enumeration output, computes the quantities the
    paper defines: [T1] (arrival time of the optimal path), [Tn] (time
    of the n-th path, default n = 2000), and the time to explosion
    [TE = Tn - T1]. Also provides the cumulative-arrival staircase of
    Fig. 6 and an exponential growth-rate fit of the explosion. *)

type summary = {
  n_arrivals : int;  (** Paths recorded before enumeration stopped. *)
  delivered : bool;  (** At least one path reached the destination. *)
  t1 : float option;  (** Absolute arrival time of the first path. *)
  optimal_duration : float option;  (** [T1 - t_create] — Fig. 4a's variable. *)
  tn : float option;  (** Absolute time of the n-th arrival, when it exists. *)
  te : float option;  (** [Tn - T1] — Fig. 4b's variable. *)
}

val analyze : ?n_explosion:int -> Enumerate.result -> summary
(** [n_explosion] defaults to the paper's 2000. Raises
    [Invalid_argument] if it is not positive. *)

val cumulative : Enumerate.result -> (float * int) list
(** [(arrival time, total paths so far)] staircase, one point per
    distinct arrival time. *)

val arrivals_relative_to_t1 : Enumerate.result -> float list
(** Each arrival's delay after the first arrival — the raw data behind
    Fig. 6's histogram. Empty when nothing was delivered. *)

type survival = {
  baseline_paths : int;  (** Arrivals enumerated on the pristine trace. *)
  surviving_paths : int;  (** Arrivals enumerated on the fault-degraded trace. *)
  survival_ratio : float;
      (** [surviving / baseline]; defined as 1 when the baseline itself
          found no path (nothing existed to lose). *)
  still_delivered : bool;  (** The degraded trace still delivers. *)
  delay_penalty : float option;
      (** Degraded optimal arrival minus pristine optimal arrival, when
          both deliver — how much the faults cost the best path. *)
}

val survival : baseline:Enumerate.result -> degraded:Enumerate.result -> survival
(** Compare one message's enumeration on a pristine vs a fault-degraded
    contact set (same message, same config). This is the robustness
    reading of Figs. 4-6: when [baseline_paths] is large, losing nodes
    and contact time should leave [still_delivered] true with a small
    [delay_penalty], because only a vanishing fraction of the exploded
    path set is needed. Both results are assumed to come from the same
    enumeration config; the ratio can exceed 1 when truncation (e.g.
    [stop_at_total]) binds in the baseline. *)

val growth_rate : Enumerate.result -> Psn_stats.Regression.fit option
(** Fit [count(t) = A e^{r (t - T1)}] over the cumulative staircase;
    [None] when fewer than two distinct arrival times exist. The
    paper's claim is that this growth is approximately exponential with
    rate set by the contact rates involved. *)
