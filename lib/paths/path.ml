module Snapshot = Psn_spacetime.Snapshot
module Timegrid = Psn_spacetime.Timegrid

type hop = { node : Psn_trace.Node.id; step : int }

type t = hop list  (* non-empty, steps non-decreasing *)

let of_hops hops =
  (match hops with [] -> invalid_arg "Path.of_hops: empty path" | _ -> ());
  let rec check = function
    | a :: (b :: _ as rest) ->
      if b.step < a.step then invalid_arg "Path.of_hops: steps must be non-decreasing";
      check rest
    | [ _ ] | [] -> ()
  in
  check hops;
  hops

let hops t = t

let source = function { node; _ } :: _ -> node | [] -> assert false

let rec last_hop = function
  | [ h ] -> h
  | _ :: rest -> last_hop rest
  | [] -> assert false

let last_node t = (last_hop t).node
let length = List.length
let transfers t = length t - 1
let first_step = function { step; _ } :: _ -> step | [] -> assert false
let last_step t = (last_hop t).step
let nodes t = List.map (fun h -> h.node) t

let duration grid t ~t_create = Timegrid.time_of_step grid (last_step t) -. t_create

let is_loop_free t =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun h ->
      if Hashtbl.mem seen h.node then false
      else begin
        Hashtbl.add seen h.node ();
        true
      end)
    t

let respects_minimal_progress t ~dst =
  let rec check = function
    | [ _ ] -> true
    | h :: rest -> h.node <> dst && check rest
    | [] -> true
  in
  check t

let respects_first_preference snap t ~dst =
  if last_node t <> dst then true
  else begin
    let delivery = last_step t in
    (* Each intermediate node holds the message from its receipt step
       until the end (infinite buffers), so scan every step before the
       delivery for a premature direct contact with the destination.
       The source only starts forwarding the step after creation, so
       its scan starts one step later. *)
    let rec check ~is_source = function
      | [ _ ] | [] -> true
      | h :: rest ->
        let from = if is_source then h.step + 1 else h.step in
        let rec scan step =
          if step >= delivery then true
          else if Snapshot.in_contact snap ~step h.node dst then false
          else scan (step + 1)
        in
        scan from && check ~is_source:false rest
    in
    check ~is_source:true t
  end

let is_valid snap t ~dst =
  is_loop_free t && respects_minimal_progress t ~dst && respects_first_preference snap t ~dst

let is_feasible snap t =
  let rec check = function
    | a :: (b :: _ as rest) ->
      let ok =
        if b.step = a.step then Snapshot.in_contact snap ~step:a.step a.node b.node
        else if b.step > a.step then
          (* waiting then transferring: the transfer happens at b.step *)
          a.node = b.node || Snapshot.in_contact snap ~step:b.step a.node b.node
        else false
      in
      ok && check rest
    | [ _ ] | [] -> true
  in
  check t

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> x.node = y.node && x.step = y.step) a b

let compare a b =
  let hop_compare x y =
    let c = Int.compare x.step y.step in
    if c <> 0 then c else Int.compare x.node y.node
  in
  List.compare hop_compare a b

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
    (fun ppf h -> Format.fprintf ppf "n%d@@%d" h.node h.step)
    ppf t
