(** Hot-path allocation pass (rule [hot-path-alloc]).

    Checks every [\[@psn.hot\]]-annotated definition — transitively,
    through the call graph — for closure/list/tuple/record/boxed
    allocation, lazy blocks, string building, known-allocating stdlib
    calls and polymorphic compare. Direct allocations are reported at
    the allocation site; allocating callees are reported at the hot
    function's call site with the witness chain in the message.

    Suppression: [\[@lint.allow "hot-path-alloc"\]] at an allocation
    site sanctions it for every hot caller (stops propagation); at a
    call site it sanctions that one edge. Output is deterministic. *)

val run : config:Config.t -> Callgraph.t -> Diagnostic.t list
