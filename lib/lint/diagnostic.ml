type t = { file : string; line : int; col : int; rule : string; message : string }

let make ~file ~line ~col ~rule ~message = { file; line; col; rule; message }

let of_location (loc : Location.t) ~rule ~message =
  let pos = loc.Location.loc_start in
  {
    file = pos.Lexing.pos_fname;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    rule;
    message;
  }

(* Findings are reported in (file, line, col, rule) order so the output
   is stable however the tree was walked. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_json ppf t =
  Format.fprintf ppf {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape t.file) t.line t.col (json_escape t.rule) (json_escape t.message)
