(* The determinism-contract pass: a read-only Ast_iterator walk over
   each source file. No typing information is available (and none is
   needed for the contract as stated): every rule is syntactic, which
   keeps the pass fast, dependency-free and — because it never guesses
   — conservative. The known blind spot, comparison operators applied
   to two variables of a boxed type, is documented in DESIGN.md. *)

type state = {
  mutable diags : Diagnostic.t list;
  mutable file_allows : string list;  (* from [@@@lint.allow] anywhere in the file *)
  mutable scope_allows : string list list;  (* stack, innermost first *)
  config : Config.t;
  path : string;
}

let suppressed st rule =
  List.exists (String.equal rule) st.file_allows
  || List.exists (List.exists (String.equal rule)) st.scope_allows
  || Config.allowed st.config ~path:st.path ~rule

let emit st loc ~rule ~message =
  if not (suppressed st rule) then
    st.diags <- Diagnostic.of_location loc ~rule ~message :: st.diags

(* ------------------------------------------------------------------ *)
(* Suppression attributes                                             *)

let split_rule_names s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map (fun name ->
         let name = String.trim name in
         if String.equal name "" then None else Some name)

(* [@lint.allow "rule"] / [@@@lint.allow "rule"]; several rules may be
   given in one string, separated by commas or spaces. Malformed
   payloads and unknown rule names are themselves findings — a typo in
   a suppression must never silently widen it. *)
let allows_of_attrs st (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if not (String.equal a.Parsetree.attr_name.Location.txt "lint.allow") then []
      else
        match a.Parsetree.attr_payload with
        | Parsetree.PStr
            [
              {
                Parsetree.pstr_desc =
                  Parsetree.Pstr_eval
                    ( {
                        Parsetree.pexp_desc =
                          Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
          let names = split_rule_names s in
          List.iter
            (fun name ->
              if not (Rules.is_known name) then
                emit st a.Parsetree.attr_loc ~rule:"bad-suppression"
                  ~message:(Printf.sprintf "lint.allow names unknown rule %S" name))
            names;
          List.filter Rules.is_known names
        | _ ->
          emit st a.Parsetree.attr_loc ~rule:"bad-suppression"
            ~message:"lint.allow expects a string payload, e.g. [@lint.allow \"failwith\"]";
          [])
    attrs

let with_scope st allows f =
  match allows with
  | [] -> f ()
  | _ ->
    st.scope_allows <- allows :: st.scope_allows;
    Fun.protect ~finally:(fun () ->
        st.scope_allows <- (match st.scope_allows with [] -> [] | _ :: tl -> tl))
      f

(* ------------------------------------------------------------------ *)
(* Identifier rules                                                   *)

let strip_stdlib = function "Stdlib" :: (_ :: _ as rest) -> rest | parts -> parts

(* Dotted identifier -> (rule, message). *)
let ident_rule parts =
  match strip_stdlib parts with
  | [ "Random"; "self_init" ] | [ "Random"; "State"; "make_self_init" ] ->
    Some
      ( "random-self-init",
        "seeding from the environment makes runs unreproducible; thread a Psn_prng.Rng seed" )
  | "Random" :: _ ->
    Some
      ( "ambient-random",
        "the ambient Random generator is shared global state; use a Psn_prng.Rng stream" )
  | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime" | "mktime") ]
  | [ "Sys"; "time" ] ->
    Some ("wall-clock", "results must not depend on when the process ran")
  | [ "Hashtbl"; (("iter" | "fold") as fn) ] ->
    Some
      ( "hash-order-iteration",
        Printf.sprintf
          "Hashtbl.%s enumerates bindings in hash order; sort via Psn_det.Det_tbl instead" fn )
  | [ "Hashtbl"; (("hash" | "seeded_hash" | "hash_param") as fn) ] ->
    Some
      ( "hashtbl-hash",
        Printf.sprintf
          "Hashtbl.%s walks value representations; only Faults' keyed hashing may use it" fn )
  | "Marshal" :: _ ->
    Some
      ( "marshal",
        "marshalled bytes are not stable across compiler versions; use Psn_store's codec" )
  | [ ("output_value" | "input_value") as fn ] ->
    Some
      ( "marshal",
        Printf.sprintf
          "%s is Marshal in disguise; use Psn_store's versioned codec for persistence" fn )
  | [ "Obj"; "magic" ] -> Some ("obj-magic", "Obj.magic defeats the type system")
  | [ "failwith" ] ->
    Some ("failwith", "raise Invalid_argument or return a typed error instead of Failure")
  | [ ( "print_string" | "print_char" | "print_bytes" | "print_int" | "print_float"
      | "print_endline" | "print_newline" ) ]
  | [ "Printf"; "printf" ]
  | [ "Format";
      ( "printf" | "print_string" | "print_char" | "print_int" | "print_float"
      | "print_newline" | "print_space" | "std_formatter" ) ] ->
    Some ("stdout-print", "library code must return values or write to a caller's formatter")
  | [ (("compare" | "min" | "max") as fn) ] ->
    Some
      ( "polymorphic-compare",
        Printf.sprintf
          "polymorphic %s: use Float.%s/Int.%s or an explicit comparator" fn fn fn )
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Comparison operators                                               *)

(* Syntactic evidence that an operand of =, <>, <, ... is a boxed
   structure on which polymorphic comparison is fragile. *)
let rec structured_evidence (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_construct ({ Location.txt = Longident.Lident "[]"; _ }, _)
  | Parsetree.Pexp_construct ({ Location.txt = Longident.Lident "::"; _ }, _) ->
    Some "a list (use List.is_empty or List.compare)"
  | Parsetree.Pexp_construct ({ Location.txt = Longident.Lident "None"; _ }, _)
  | Parsetree.Pexp_construct ({ Location.txt = Longident.Lident "Some"; _ }, _) ->
    Some "an option (use Option.is_none/Option.is_some/Option.equal)"
  | Parsetree.Pexp_tuple _ -> Some "a tuple (compare components explicitly)"
  | Parsetree.Pexp_record _ -> Some "a record (derive or write a comparator)"
  | Parsetree.Pexp_array _ -> Some "an array (compare elements explicitly)"
  | Parsetree.Pexp_constraint (inner, _) -> structured_evidence inner
  | _ -> None

let eq_evidence (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_float _) ->
    Some "a float (use Float.equal, which also pins NaN semantics)"
  | Parsetree.Pexp_constant (Parsetree.Pconst_string _) -> Some "a string (use String.equal)"
  | _ -> structured_evidence e

let check_operator st loc op (args : (Asttypes.arg_label * Parsetree.expression) list) =
  let operands = List.filter_map (function Asttypes.Nolabel, e -> Some e | _ -> None) args in
  let first_evidence evidence_of =
    List.fold_left
      (fun acc e -> match acc with Some _ -> acc | None -> evidence_of e)
      None operands
  in
  match op with
  | "==" | "!=" ->
    emit st loc ~rule:"physical-equality"
      ~message:
        (Printf.sprintf "(%s) compares physical identity; use typed structural equality" op)
  | "=" | "<>" -> (
    match first_evidence eq_evidence with
    | Some what ->
      emit st loc ~rule:"polymorphic-compare"
        ~message:(Printf.sprintf "polymorphic (%s) on %s" op what)
    | None -> ())
  | "<" | ">" | "<=" | ">=" -> (
    match first_evidence structured_evidence with
    | Some what ->
      emit st loc ~rule:"polymorphic-compare"
        ~message:(Printf.sprintf "polymorphic (%s) on %s" op what)
    | None -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* The iterator                                                       *)

(* In [try ... with] a bare [_] is a catch-all; in [match ... with]
   only the [exception _] form is (a plain [_] there is an ordinary
   value wildcard). *)
let is_catch_all ~in_try (c : Parsetree.case) =
  Option.is_none c.Parsetree.pc_guard
  &&
  match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
  | Parsetree.Ppat_any -> in_try
  | Parsetree.Ppat_exception { Parsetree.ppat_desc = Parsetree.Ppat_any; _ } -> true
  | _ -> false

let make_iterator st =
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    let allows = allows_of_attrs st e.Parsetree.pexp_attributes in
    with_scope st allows (fun () ->
        (match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_ident { Location.txt = lid; loc } -> (
          match ident_rule (Longident.flatten lid) with
          | Some (rule, message) -> emit st loc ~rule ~message
          | None -> ())
        | Parsetree.Pexp_apply
            ( { Parsetree.pexp_desc = Parsetree.Pexp_ident { Location.txt = Longident.Lident op; loc }; _ },
              args ) ->
          check_operator st loc op args
        | Parsetree.Pexp_try (_, cases) | Parsetree.Pexp_match (_, cases) ->
          let in_try =
            match e.Parsetree.pexp_desc with Parsetree.Pexp_try _ -> true | _ -> false
          in
          List.iter
            (fun c ->
              if is_catch_all ~in_try c then
                emit st c.Parsetree.pc_lhs.Parsetree.ppat_loc ~rule:"catch-all-exception"
                  ~message:
                    "catch-all handler swallows every exception; match the ones this \
                     expression can raise")
            cases
        | _ -> ());
        default_iterator.expr it e)
  in
  let value_binding it (vb : Parsetree.value_binding) =
    let allows = allows_of_attrs st vb.Parsetree.pvb_attributes in
    with_scope st allows (fun () -> default_iterator.value_binding it vb)
  in
  let structure_item it (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_attribute _ ->
      (* Floating attributes were already folded into [file_allows] by
         the pre-scan; nothing to traverse below them. *)
      ()
    | Parsetree.Pstr_eval (_, attrs) ->
      let allows = allows_of_attrs st attrs in
      with_scope st allows (fun () -> default_iterator.structure_item it si)
    | _ -> default_iterator.structure_item it si
  in
  let signature_item it (si : Parsetree.signature_item) =
    match si.Parsetree.psig_desc with
    | Parsetree.Psig_attribute _ -> ()
    | _ -> default_iterator.signature_item it si
  in
  { default_iterator with expr; value_binding; structure_item; signature_item }

(* File-wide suppressions apply to the whole file, wherever the
   [@@@lint.allow] line sits, so they are collected before the walk. *)
let prescan_floating st attrs_list =
  List.iter (fun attrs -> st.file_allows <- allows_of_attrs st attrs @ st.file_allows) attrs_list

let floating_attrs_of_structure (str : Parsetree.structure) =
  List.filter_map
    (fun (si : Parsetree.structure_item) ->
      match si.Parsetree.pstr_desc with
      | Parsetree.Pstr_attribute a -> Some [ a ]
      | _ -> None)
    str

let floating_attrs_of_signature (sg : Parsetree.signature) =
  List.filter_map
    (fun (si : Parsetree.signature_item) ->
      match si.Parsetree.psig_desc with
      | Parsetree.Psig_attribute a -> Some [ a ]
      | _ -> None)
    sg

(* ------------------------------------------------------------------ *)
(* Per-file driver                                                    *)

let syntax_diagnostic path exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) ->
    let main = report.Location.main in
    let message = Format.asprintf "%t" main.Location.txt in
    Diagnostic.of_location main.Location.loc ~rule:"syntax-error" ~message
  | Some `Already_displayed | None ->
    Diagnostic.make ~file:path ~line:1 ~col:0 ~rule:"syntax-error"
      ~message:"source file could not be parsed"

let has_mli path = Sys.file_exists (Filename.remove_extension path ^ ".mli")

(* Parsing and analysis are split: compiler-libs keeps global state in
   its lexer, so parse trees are produced sequentially, while the
   per-file walks (pure over their own state) can be fanned out over
   domains. *)
type parsed =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature
  | Broken of Diagnostic.t
  | Skipped

let parse_file path =
  match Filename.extension path with
  | ".ml" -> (
    match Pparse.parse_implementation ~tool_name:"psn_lint" path with
    | str -> Impl str
    | exception ((Syntaxerr.Error _ | Lexer.Error _) as exn) -> Broken (syntax_diagnostic path exn))
  | ".mli" -> (
    match Pparse.parse_interface ~tool_name:"psn_lint" path with
    | sg -> Intf sg
    | exception ((Syntaxerr.Error _ | Lexer.Error _) as exn) -> Broken (syntax_diagnostic path exn))
  | _ -> Skipped

(* The per-file stage: syntactic rules plus call-graph fact
   collection. Pure per file — safe to run concurrently for
   different files. *)
let analyze_parsed ~config path parsed : Diagnostic.t list * Callgraph.file_facts option =
  let st = { diags = []; file_allows = []; scope_allows = []; config; path } in
  let it = make_iterator st in
  match parsed with
  | Impl str ->
    prescan_floating st (floating_attrs_of_structure str);
    it.Ast_iterator.structure it str;
    if not (has_mli path || suppressed st "missing-mli") then
      st.diags <-
        Diagnostic.make ~file:path ~line:1 ~col:0 ~rule:"missing-mli"
          ~message:"module has no interface; add a .mli stating its contract"
        :: st.diags;
    (st.diags, Some (Callgraph.collect_file ~path str))
  | Intf sg ->
    prescan_floating st (floating_attrs_of_signature sg);
    it.Ast_iterator.signature it sg;
    (st.diags, None)
  | Broken d -> ([ d ], None)
  | Skipped -> ([], None)

let check_file ~config path = fst (analyze_parsed ~config path (parse_file path))

(* ------------------------------------------------------------------ *)
(* Tree walking                                                       *)

let is_source path =
  match Filename.extension path with ".ml" | ".mli" -> true | _ -> false

let hidden name = String.length name = 0 || name.[0] = '.' || name.[0] = '_'

(* Directory entries are sorted so the walk order (and hence the
   report order before the final sort, and any tie-breaking) never
   depends on readdir order — the linter honours its own contract. *)
let rec gather path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if hidden entry then acc else gather (Filename.concat path entry) acc)
         acc
  else if is_source path then path :: acc
  else acc

(* Fan the per-file analyses over [jobs] domains. Scheduling is a
   bare atomic counter; results land in a slot per file, so the
   output order — and with it every downstream artifact — is
   identical for any [jobs]. *)
let parallel_map ~jobs f items =
  let n = Array.length items in
  let jobs = Int.max 1 (Int.min jobs n) in
  if jobs = 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f items.(i));
        drain ()
      end
    in
    let workers = List.init (jobs - 1) (fun _ -> Domain.spawn drain) in
    drain ();
    List.iter Domain.join workers;
    Array.map Option.get results
  end

let analyze ~config ?(jobs = 1) paths =
  let files = List.fold_left (fun acc p -> gather p acc) [] paths in
  let files = List.sort_uniq String.compare files in
  (* Sequential parse (compiler-libs lexer state), parallel walks. *)
  let parsed = Array.of_list (List.map (fun p -> (p, parse_file p)) files) in
  let results = parallel_map ~jobs (fun (path, pr) -> analyze_parsed ~config path pr) parsed in
  let per_file = Array.to_list results |> List.concat_map fst in
  let facts = Array.to_list results |> List.filter_map snd in
  let graph = Callgraph.build facts in
  let inter =
    Effects.run ~config graph @ Domain_safety.run ~config graph @ Hotpath.run ~config graph
  in
  (List.sort Diagnostic.compare (per_file @ inter), graph)

let run ~config paths = fst (analyze ~config ~jobs:1 paths)
