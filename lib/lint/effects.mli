(** Interprocedural effect-taint propagation (rule [effect-taint]).

    A definition is tainted with a kind from {!Rules.taint_kinds}
    when its body reads the corresponding ambient source, or calls —
    through any number of graph edges — a definition that does.
    Files declared as a [\[boundary\]] for a kind in lint.toml absorb
    that kind: their definitions neither report it nor pass it on.
    In-file [\[@lint.allow\]] suppressions silence the report at one
    site but never stop propagation.

    Findings land on every call edge into a tainted definition, with
    the witness chain down to the raw source in the message. Output
    is deterministic: sorted edge order, first witness wins. *)

val run : config:Config.t -> Callgraph.t -> Diagnostic.t list
