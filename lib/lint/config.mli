(** The per-path allowlist from lint.toml.

    The file is a small TOML subset: full-line [#] comments, a single
    [\[allow\]] table, and one ["path-prefix" = \["rule", ...\]] entry
    per line. Rule names are validated against {!Rules.all} at load
    time so a typo cannot silently allow everything. *)

type t

val empty : t
(** No allowances: every rule applies everywhere. *)

val of_string : string -> (t, string) result

val load : string -> (t, string) result
(** Read and parse a lint.toml; errors carry the file name and line. *)

val allowed : t -> path:string -> rule:string -> bool
(** Whether [rule] is allowlisted for [path] (prefix match on the path
    as passed to the linter, with any leading "./" removed). *)
