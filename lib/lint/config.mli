(** The per-path configuration from lint.toml.

    The file is a small TOML subset: full-line [#] comments and three
    tables, each holding one ["path-prefix" = \["entry", ...\]] line
    per key:

    - [\[allow\]] — rule names suppressed under a path (validated
      against {!Rules.all} at load time so a typo cannot silently
      allow everything);
    - [\[boundary\]] — taint kinds (validated against
      {!Rules.taint_kinds}) absorbed by a path: functions defined
      there may carry the effect without tainting their callers
      (e.g. lib/telemetry/clock.ml for ["wall-clock"]);
    - [\[ownership\]] — names of top-level mutable bindings (or ["*"])
      declared domain-safe under a path, exempting them from the
      {!Domain_safety} pass.

    Prefixes are directory-boundary-aware: ["bin"] (or ["bin/"])
    covers ["bin/foo.ml"] but never ["bin_utils/foo.ml"], and a full
    file path covers exactly that file. *)

type t

val empty : t
(** No allowances, boundaries or ownership: every rule applies
    everywhere. *)

val of_string : string -> (t, string) result

val load : string -> (t, string) result
(** Read and parse a lint.toml; errors carry the file name and line. *)

val prefix_matches : prefix:string -> string -> bool
(** [prefix_matches ~prefix path] — the directory-boundary-aware match
    all three tables use (exposed for the property tests). Both sides
    are normalised (leading "./" removed); an empty prefix matches
    nothing. *)

val allowed : t -> path:string -> rule:string -> bool
(** Whether [rule] is allowlisted for [path]. *)

val boundary : t -> path:string -> kind:string -> bool
(** Whether [path] absorbs taint of [kind] (see {!Effects}). *)

val owned : t -> path:string -> name:string -> bool
(** Whether the top-level binding [name] in [path] is declared
    domain-safe (see {!Domain_safety}); ["*"] in the entry list covers
    every binding under the prefix. *)
