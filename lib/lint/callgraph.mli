(** Whole-program call graph over the repository's own sources.

    Built in two stages: {!collect_file} walks one parse tree into
    per-file facts (definitions, references, effect sources,
    allocations, [Parallel.map*] sites, module aliases, opens);
    {!build} resolves the references of every file against the whole
    set into a graph with stable, deterministic node numbering (files
    in the order given, definitions in source order).

    Resolution is syntactic and untyped; the approximations are
    spelled out in DESIGN.md "Interprocedural enforcement". All
    outputs are fully sorted, so the same tree produces the same
    bytes regardless of how the per-file walks were scheduled. *)

type source = { s_kind : string; s_what : string; s_loc : Location.t }
(** An ambient-effect read: [s_kind] is one of {!Rules.taint_kinds},
    [s_what] the path as written (e.g. ["Unix.gettimeofday"]). *)

type alloc = { a_what : string; a_loc : Location.t; a_allows : string list }
(** An allocation site (closure, cons, tuple, known-allocating stdlib
    call, polymorphic compare), with the [lint.allow] rules in scope. *)

type file_facts
(** The facts of one parsed file, before resolution. *)

val collect_file : path:string -> Parsetree.structure -> file_facts
(** Walk one parse tree. Pure per-file: safe to run concurrently for
    different files. *)

type node = {
  n_id : int;
  n_file : string;
  n_name : string;  (** module-qualified: ["Engine.run"] *)
  n_local : string;  (** path within the file: ["run"], ["Sink.null"] *)
  n_line : int;
  n_col : int;
  n_hot : bool;  (** carries a [\[@psn.hot\]] annotation *)
  n_mutable : string option;
      (** [Some kind] when the binding creates shared mutable state
          (ref, Hashtbl.t, Buffer.t, array, ...) at top level *)
  n_sources : source list;
  n_allocs : alloc list;
}

type edge = {
  e_from : int;
  e_to : int;
  e_loc : Location.t;  (** the reference site in the caller *)
  e_allows : string list;  (** [lint.allow] rules in scope at the site *)
}

type rsite = {
  r_node : int;  (** definition enclosing the [Parallel.map*] call *)
  r_fn : string;  (** [map], [map_list], [map_traced], [map_env], [map_result] *)
  r_loc : Location.t;
  r_allows : string list;
  r_roots : int list;  (** resolved task/env references, sorted *)
  r_fallback : bool;
      (** a task/env reference was a local name the resolver cannot
          see into; the enclosing definition stands in as a root *)
}

type t = {
  nodes : node array;
  edges : edge list;  (** sorted by (caller file, line, col, callee) *)
  sites : rsite list;  (** sorted by (file, line, col) *)
  n_files : int;
}

val build : file_facts list -> t
(** Resolve and number. The input order fixes node ids: pass files
    sorted by path. *)

val loc_line : Location.t -> int

val loc_col : Location.t -> int

val pp_json : Format.formatter -> t -> unit
(** Stable machine-readable export ([psn_lint --graph json]). *)

val pp_dot : Format.formatter -> t -> unit
(** Graphviz export ([psn_lint --graph dot]): hot nodes shaded,
    mutable bindings red, parallel fan-outs dashed. *)
