(* Domain-safety pass (rule [domain-race]).

   A top-level binding whose right-hand side creates mutable state —
   a ref, a Hashtbl.t, a Buffer.t, a Queue/Stack, bytes or an array —
   is shared by every domain that can reach it. The engine's contract
   is that tasks fanned out by [Parallel.map*] touch only per-domain
   state: the [~env] scratch handed to [map_env]/[map_result],
   atomics, or bindings whose per-domain ownership discipline is
   declared in lint.toml's [ownership] table ([Atomic.make] bindings
   never register as mutable in the first place).

   The pass marks every definition that can reach an unsanctioned
   top-level mutable, then inspects each [Parallel.map*] site: the
   roots are the resolved references inside the task and [~env]
   arguments (when an argument mentions a local value the resolver
   cannot see into, the enclosing definition conservatively stands in
   as a root). A root that reaches a mutable is a finding at the
   fan-out site — the one place the race actually starts — with the
   witness chain in the message.

   Determinism mirrors {!Effects}: sorted edges, first witness wins. *)

(* Every Hashtbl.fold below feeds a sort before anything observes the
   order, which is the same discipline Psn_det.Det_tbl is sanctioned
   for; this file is a declared [boundary] for hash-order-iteration
   in lint.toml so the taint stops here too. *)
[@@@lint.allow "hash-order-iteration"]

type witness = Self | Via of int * Location.t

(* For each node: the reachable unsanctioned mutables, as
   [mutable node id -> witness]. A node carries at most one witness
   per mutable, the first found in sorted edge order. *)
type reach = (int, witness) Hashtbl.t array

let mutable_nodes ~config (g : Callgraph.t) =
  Array.to_list g.Callgraph.nodes
  |> List.filter_map (fun (n : Callgraph.node) ->
         match n.Callgraph.n_mutable with
         | Some kind
           when not
                  (Config.owned config ~path:n.Callgraph.n_file ~name:n.Callgraph.n_local) ->
           Some (n.Callgraph.n_id, kind)
         | _ -> None)

(* Iterate sorted snapshots, never live tables: Hashtbl order must
   not influence which witness is recorded first. *)
let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare

let propagate ~config (g : Callgraph.t) : reach =
  let reach = Array.map (fun _ -> Hashtbl.create 2) g.Callgraph.nodes in
  List.iter (fun (id, _) -> Hashtbl.replace reach.(id) id Self) (mutable_nodes ~config g);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Callgraph.edge) ->
        List.iter
          (fun target ->
            if not (Hashtbl.mem reach.(e.Callgraph.e_from) target) then begin
              Hashtbl.replace reach.(e.Callgraph.e_from) target
                (Via (e.Callgraph.e_to, e.Callgraph.e_loc));
              changed := true
            end)
          (sorted_keys reach.(e.Callgraph.e_to)))
      g.Callgraph.edges
  done;
  reach

let chain (g : Callgraph.t) (reach : reach) start target =
  let rec go id depth =
    if depth > 16 then [ "..." ]
    else
      let name = g.Callgraph.nodes.(id).Callgraph.n_name in
      match Hashtbl.find_opt reach.(id) target with
      | None -> [ name ]
      | Some Self -> [ name ]
      | Some (Via (next, _)) -> name :: go next (depth + 1)
  in
  String.concat " -> " (go start 0)

let run ~config (g : Callgraph.t) : Diagnostic.t list =
  let reach = propagate ~config g in
  List.concat_map
    (fun (s : Callgraph.rsite) ->
      let site_node = g.Callgraph.nodes.(s.Callgraph.r_node) in
      if
        List.exists (String.equal "domain-race") s.Callgraph.r_allows
        || Config.allowed config ~path:site_node.Callgraph.n_file ~rule:"domain-race"
      then []
      else
        let roots =
          if s.Callgraph.r_fallback then
            List.sort_uniq Int.compare (s.Callgraph.r_node :: s.Callgraph.r_roots)
          else s.Callgraph.r_roots
        in
        (* One finding per distinct mutable reached, not per root: a
           site where both the task and the env reach the same table
           is one race, not two. *)
        let reached = Hashtbl.create 4 in
        List.iter
          (fun root ->
            Hashtbl.fold (fun target _ acc -> target :: acc) reach.(root) []
            |> List.sort Int.compare
            |> List.iter (fun target ->
                   if not (Hashtbl.mem reached target) then Hashtbl.replace reached target root))
          roots;
        Hashtbl.fold (fun target root acc -> (target, root) :: acc) reached []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.map (fun (target, root) ->
               let m = g.Callgraph.nodes.(target) in
               let kind = Option.value ~default:"mutable" m.Callgraph.n_mutable in
               let message =
                 Printf.sprintf
                   "task passed to Parallel.%s reaches shared top-level %s `%s` (%s:%d) through \
                    %s; hand each domain its own state via ~env, use Atomic, or declare \
                    per-domain ownership in lint.toml's [ownership] table"
                   s.Callgraph.r_fn kind m.Callgraph.n_name m.Callgraph.n_file
                   m.Callgraph.n_line
                   (chain g reach root target)
               in
               Diagnostic.of_location s.Callgraph.r_loc ~rule:"domain-race" ~message))
    g.Callgraph.sites
