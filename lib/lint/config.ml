(* lint.toml is read with a deliberately small TOML subset — comments,
   [allow] / [boundary] / [ownership] tables, and one
   `"path-prefix" = ["entry", ...]` line per key — so the linter needs
   nothing beyond the compiler toolchain. *)

type t = {
  allow : (string * string list) list;
  boundary : (string * string list) list;
  ownership : (string * string list) list;
}

let empty = { allow = []; boundary = []; ownership = [] }

let fail lineno fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt

(* A quoted string starting at [i] (which must point at '"'); returns
   the contents and the index one past the closing quote. *)
let parse_quoted lineno line i =
  if i >= String.length line || line.[i] <> '"' then fail lineno "expected a quoted string"
  else
    match String.index_from_opt line (i + 1) '"' with
    | None -> fail lineno "unterminated string"
    | Some j -> Ok (String.sub line (i + 1) (j - i - 1), j + 1)

let skip_spaces line i =
  let n = String.length line in
  let rec go i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then go (i + 1) else i in
  go i

(* What the elements of a section's arrays must name. [allow] lists
   rule names, [boundary] lists taint kinds, [ownership] lists binding
   names (free-form, so a typo only narrows the sanction). *)
let validate_elem section lineno elem =
  match section with
  | `Allow when not (Rules.is_known elem) -> fail lineno "unknown rule %S" elem
  | `Boundary when not (Rules.is_taint_kind elem) ->
    fail lineno "unknown taint kind %S (see Rules.taint_kinds)" elem
  | _ -> Ok ()

let parse_entry_array section lineno line i =
  let n = String.length line in
  let i = skip_spaces line i in
  if i >= n || line.[i] <> '[' then fail lineno "expected '[' starting a list"
  else
    let rec elems acc i =
      let i = skip_spaces line i in
      if i < n && line.[i] = ']' then Ok (List.rev acc, i + 1)
      else
        match parse_quoted lineno line i with
        | Error _ as e -> e
        | Ok (elem, i) -> (
          match validate_elem section lineno elem with
          | Error _ as e -> e
          | Ok () ->
            let i = skip_spaces line i in
            if i < n && line.[i] = ',' then elems (elem :: acc) (i + 1)
            else if i < n && line.[i] = ']' then Ok (List.rev (elem :: acc), i + 1)
            else fail lineno "expected ',' or ']' in list")
    in
    elems [] (i + 1)

let strip_comment line =
  (* Only full-line comments: '#' inside quoted strings would otherwise
     need real lexing. Trailing comments after the closing ']' are cut. *)
  if String.length line > 0 && line.[0] = '#' then ""
  else
    match String.rindex_opt line ']' with
    | Some j -> (
      match String.index_from_opt line j '#' with
      | Some k -> String.sub line 0 k
      | None -> line)
    | None -> line

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno section allow boundary ownership = function
    | [] ->
      Ok { allow = List.rev allow; boundary = List.rev boundary; ownership = List.rev ownership }
    | raw :: rest -> (
      let line = String.trim (strip_comment (String.trim raw)) in
      if String.equal line "" then go (lineno + 1) section allow boundary ownership rest
      else if line.[0] = '[' then
        match line with
        | "[allow]" -> go (lineno + 1) `Allow allow boundary ownership rest
        | "[boundary]" -> go (lineno + 1) `Boundary allow boundary ownership rest
        | "[ownership]" -> go (lineno + 1) `Ownership allow boundary ownership rest
        | _ ->
          fail lineno "unknown section %s (expected [allow], [boundary] or [ownership])" line
      else
        match section with
        | `None -> fail lineno "entry outside any section"
        | (`Allow | `Boundary | `Ownership) as section -> (
          match parse_quoted lineno line 0 with
          | Error _ as e -> e
          | Ok (prefix, i) -> (
            let i = skip_spaces line i in
            if i >= String.length line || line.[i] <> '=' then
              fail lineno "expected '=' after path prefix"
            else
              match parse_entry_array section lineno line (i + 1) with
              | Error _ as e -> e
              | Ok (entries, i) ->
                let rest_of_line = String.trim (String.sub line i (String.length line - i)) in
                if not (String.equal rest_of_line "") then
                  fail lineno "trailing junk %S" rest_of_line
                else
                  let kv = (prefix, entries) in
                  let allow = if section = `Allow then kv :: allow else allow in
                  let boundary = if section = `Boundary then kv :: boundary else boundary in
                  let ownership = if section = `Ownership then kv :: ownership else ownership in
                  go (lineno + 1) section allow boundary ownership rest)))
  in
  go 1 `None [] [] [] lines

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let read () = really_input_string ic (in_channel_length ic) in
    let text = Fun.protect ~finally:(fun () -> close_in ic) read in
    (match of_string text with
    | Ok _ as ok -> ok
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* Paths are matched as written on the command line; normalise the
   "./lib/foo.ml" spelling so prefixes in lint.toml stay simple. *)
let normalize path =
  if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
    String.sub path 2 (String.length path - 2)
  else path

(* Directory-boundary-aware prefix matching: a prefix names either an
   exact path or a directory subtree, never a character prefix —
   "bin" (or the equivalent "bin/") covers "bin/foo.ml" but not
   "bin_utils/foo.ml", and "lib/telemetry/clock.ml" covers exactly
   that file. An empty prefix covers nothing: sanctioning the whole
   tree must be spelled out path by path. *)
let prefix_matches ~prefix path =
  let prefix = normalize prefix in
  let path = normalize path in
  let dir =
    if String.ends_with ~suffix:"/" prefix then String.sub prefix 0 (String.length prefix - 1)
    else prefix
  in
  (not (String.equal dir ""))
  && (String.equal path dir || String.starts_with ~prefix:(dir ^ "/") path)

let lookup entries ~path ~entry =
  List.exists
    (fun (prefix, entries) ->
      prefix_matches ~prefix path && List.exists (String.equal entry) entries)
    entries

let allowed t ~path ~rule = lookup t.allow ~path ~entry:rule

let boundary t ~path ~kind = lookup t.boundary ~path ~entry:kind

let owned t ~path ~name =
  List.exists
    (fun (prefix, names) ->
      prefix_matches ~prefix path
      && List.exists (fun n -> String.equal n "*" || String.equal n name) names)
    t.ownership
