(* lint.toml is read with a deliberately small TOML subset — comments,
   an [allow] table, and one `"path-prefix" = ["rule", ...]` entry per
   line — so the linter needs nothing beyond the compiler toolchain. *)

type t = { allow : (string * string list) list }

let empty = { allow = [] }

let fail lineno fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt

(* A quoted string starting at [i] (which must point at '"'); returns
   the contents and the index one past the closing quote. *)
let parse_quoted lineno line i =
  if i >= String.length line || line.[i] <> '"' then fail lineno "expected a quoted string"
  else
    match String.index_from_opt line (i + 1) '"' with
    | None -> fail lineno "unterminated string"
    | Some j -> Ok (String.sub line (i + 1) (j - i - 1), j + 1)

let skip_spaces line i =
  let n = String.length line in
  let rec go i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then go (i + 1) else i in
  go i

let parse_rule_array lineno line i =
  let n = String.length line in
  let i = skip_spaces line i in
  if i >= n || line.[i] <> '[' then fail lineno "expected '[' starting a rule list"
  else
    let rec elems acc i =
      let i = skip_spaces line i in
      if i < n && line.[i] = ']' then Ok (List.rev acc, i + 1)
      else
        match parse_quoted lineno line i with
        | Error _ as e -> e
        | Ok (rule, i) ->
          if not (Rules.is_known rule) then fail lineno "unknown rule %S" rule
          else
            let i = skip_spaces line i in
            if i < n && line.[i] = ',' then elems (rule :: acc) (i + 1)
            else if i < n && line.[i] = ']' then Ok (List.rev (rule :: acc), i + 1)
            else fail lineno "expected ',' or ']' in rule list"
    in
    elems [] (i + 1)

let strip_comment line =
  (* Only full-line comments: '#' inside quoted strings would otherwise
     need real lexing. Trailing comments after the closing ']' are cut. *)
  if String.length line > 0 && line.[0] = '#' then ""
  else
    match String.rindex_opt line ']' with
    | Some j -> (
      match String.index_from_opt line j '#' with
      | Some k -> String.sub line 0 k
      | None -> line)
    | None -> line

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno section acc = function
    | [] -> Ok { allow = List.rev acc }
    | raw :: rest -> (
      let line = String.trim (strip_comment (String.trim raw)) in
      if String.equal line "" then go (lineno + 1) section acc rest
      else if line.[0] = '[' then
        if String.equal line "[allow]" then go (lineno + 1) `Allow acc rest
        else fail lineno "unknown section %s (only [allow] is supported)" line
      else
        match section with
        | `None -> fail lineno "entry outside any section"
        | `Allow -> (
          match parse_quoted lineno line 0 with
          | Error _ as e -> e
          | Ok (prefix, i) -> (
            let i = skip_spaces line i in
            if i >= String.length line || line.[i] <> '=' then
              fail lineno "expected '=' after path prefix"
            else
              match parse_rule_array lineno line (i + 1) with
              | Error _ as e -> e
              | Ok (rules, i) ->
                let rest_of_line = String.trim (String.sub line i (String.length line - i)) in
                if not (String.equal rest_of_line "") then
                  fail lineno "trailing junk %S" rest_of_line
                else go (lineno + 1) section ((prefix, rules) :: acc) rest)))
  in
  go 1 `None [] lines

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let read () = really_input_string ic (in_channel_length ic) in
    let text = Fun.protect ~finally:(fun () -> close_in ic) read in
    (match of_string text with
    | Ok _ as ok -> ok
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* Paths are matched as written on the command line; normalise the
   "./lib/foo.ml" spelling so prefixes in lint.toml stay simple. *)
let normalize path =
  if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
    String.sub path 2 (String.length path - 2)
  else path

let allowed t ~path ~rule =
  let path = normalize path in
  List.exists
    (fun (prefix, rules) ->
      String.starts_with ~prefix path && List.exists (String.equal rule) rules)
    t.allow
