(** A single linter finding, anchored to a source position. *)

type t = { file : string; line : int; col : int; rule : string; message : string }

val make : file:string -> line:int -> col:int -> rule:string -> message:string -> t

val of_location : Location.t -> rule:string -> message:string -> t
(** Anchor a finding at the start of a compiler-libs location. *)

val compare : t -> t -> int
(** Total order: (file, line, col, rule), all monomorphic. *)

val pp : Format.formatter -> t -> unit
(** Human format: [file:line:col: [rule] message]. *)

val pp_json : Format.formatter -> t -> unit
(** One finding as a JSON object on a single line. *)
