(** The rule registry: every contract the linter enforces, with the
    rationale the CLI prints for [--rules]. *)

type t = { name : string; summary : string; rationale : string }

val all : t list
(** Every rule, in documentation order. *)

val find : string -> t option

val is_known : string -> bool
(** Whether [name] names a registered rule (used to reject typos in
    suppression attributes and lint.toml). *)

val taint_kinds : string list
(** The effect kinds {!Effects} propagates interprocedurally, in
    documentation order; [\[boundary\]] entries in lint.toml must name
    kinds from this list. *)

val is_taint_kind : string -> bool

val pp_list : Format.formatter -> unit -> unit
(** Render the registry, one rule per entry, for [--rules]. *)
