(** Domain-safety pass (rule [domain-race]).

    Flags [Parallel.map*] call sites whose task (or [~env]) argument
    can reach — through any number of call-graph edges — a top-level
    mutable binding (ref, Hashtbl.t, Buffer.t, Queue/Stack, bytes,
    array) that is not sanctioned: [Atomic.make] bindings are never
    registered as mutable, and lint.toml's [\[ownership\]] table
    declares per-domain ownership for specific binding names (or
    ["*"]) under a path.

    When a task argument references a local value the resolver cannot
    see into, the enclosing definition conservatively stands in as a
    root. Findings land on the fan-out site with the witness chain to
    the mutable in the message; output is deterministic. *)

val run : config:Config.t -> Callgraph.t -> Diagnostic.t list
