(* Hot-path allocation pass (rule [hot-path-alloc]).

   Functions annotated [@psn.hot] — engine drain kernels, the
   enumeration bitset primitives — promise to run allocation-free.
   The promise is transitive: a helper that conses three modules away
   still costs the hot caller, so the pass computes, over the call
   graph, which definitions can reach an allocation, and reports:

   - every direct allocation inside a hot function, at the
     allocation site;
   - every outgoing call edge of a hot function whose callee can
     reach an allocation, at the call site, with the witness chain
     down to the allocation in the message.

   Allocations tracked: anonymous closures (a named [let f x = ...]
   — local or top-level — is assumed hoisted and free to reference),
   list conses and appends, tuples, records, arrays, boxed
   constructors, lazy blocks, string building, a small table of
   known-allocating stdlib entry points, and polymorphic
   compare/min/max (not an allocation, but never wanted on a hot
   path either).

   Suppression semantics, per the rule's rationale: [@lint.allow
   "hot-path-alloc"] at the allocation site sanctions that site for
   every hot caller (it stops propagation); the same attribute at a
   call site sanctions that one edge. *)

type witness = Direct of Callgraph.alloc | Via of int * Location.t

let suppressed_alloc ~config ~file (a : Callgraph.alloc) =
  List.exists (String.equal "hot-path-alloc") a.Callgraph.a_allows
  || Config.allowed config ~path:file ~rule:"hot-path-alloc"

let suppressed_edge (e : Callgraph.edge) =
  List.exists (String.equal "hot-path-alloc") e.Callgraph.e_allows

(* For each node, the first (deterministic) witness that it can reach
   an unsanctioned allocation, or None. *)
let propagate ~config (g : Callgraph.t) : witness option array =
  let reach = Array.make (Array.length g.Callgraph.nodes) None in
  Array.iter
    (fun (n : Callgraph.node) ->
      if Option.is_none reach.(n.Callgraph.n_id) then
        match
          List.find_opt
            (fun a -> not (suppressed_alloc ~config ~file:n.Callgraph.n_file a))
            n.Callgraph.n_allocs
        with
        | Some a -> reach.(n.Callgraph.n_id) <- Some (Direct a)
        | None -> ())
    g.Callgraph.nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Callgraph.edge) ->
        if
          (not (suppressed_edge e))
          && Option.is_some reach.(e.Callgraph.e_to)
          && Option.is_none reach.(e.Callgraph.e_from)
        then begin
          reach.(e.Callgraph.e_from) <- Some (Via (e.Callgraph.e_to, e.Callgraph.e_loc));
          changed := true
        end)
      g.Callgraph.edges
  done;
  reach

(* "Helper.step -> tuple (test/.../helper.ml:4)" *)
let chain (g : Callgraph.t) (reach : witness option array) start =
  let rec go id depth =
    if depth > 16 then [ "..." ]
    else
      let n = g.Callgraph.nodes.(id) in
      match reach.(id) with
      | None -> [ n.Callgraph.n_name ]
      | Some (Direct a) ->
        [
          Printf.sprintf "%s -> %s (%s:%d)" n.Callgraph.n_name a.Callgraph.a_what
            n.Callgraph.n_file
            (Callgraph.loc_line a.Callgraph.a_loc);
        ]
      | Some (Via (next, _)) -> n.Callgraph.n_name :: go next (depth + 1)
  in
  String.concat " -> " (go start 0)

let run ~config (g : Callgraph.t) : Diagnostic.t list =
  let reach = propagate ~config g in
  let direct =
    Array.to_list g.Callgraph.nodes
    |> List.concat_map (fun (n : Callgraph.node) ->
           if not n.Callgraph.n_hot then []
           else
             List.filter_map
               (fun (a : Callgraph.alloc) ->
                 if suppressed_alloc ~config ~file:n.Callgraph.n_file a then None
                 else
                   let message =
                     Printf.sprintf
                       "%s inside [@psn.hot] %s; hoist it out of the kernel or suppress this \
                        site with a justification"
                       a.Callgraph.a_what n.Callgraph.n_name
                   in
                   Some (Diagnostic.of_location a.Callgraph.a_loc ~rule:"hot-path-alloc" ~message))
               n.Callgraph.n_allocs)
  in
  let transitive =
    List.filter_map
      (fun (e : Callgraph.edge) ->
        let caller = g.Callgraph.nodes.(e.Callgraph.e_from) in
        if
          (not caller.Callgraph.n_hot)
          || suppressed_edge e
          || Config.allowed config ~path:caller.Callgraph.n_file ~rule:"hot-path-alloc"
          || Option.is_none reach.(e.Callgraph.e_to)
        then None
        else
          let message =
            Printf.sprintf
              "[@psn.hot] %s calls into an allocating path: %s; make the callee \
               allocation-free or sanction this edge with a justification"
              caller.Callgraph.n_name
              (chain g reach e.Callgraph.e_to)
          in
          Some (Diagnostic.of_location e.Callgraph.e_loc ~rule:"hot-path-alloc" ~message))
      g.Callgraph.edges
  in
  direct @ transitive
