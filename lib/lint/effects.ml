(* Interprocedural effect-taint propagation over the call graph.

   Seeding: a definition whose body reads an ambient source
   (Random.*, the wall clock, Hashtbl iteration order, the
   polymorphic hash, process environment) is tainted with that
   source's kind — unless its file is declared a [boundary] for the
   kind in lint.toml, in which case the effect is absorbed there and
   never propagates (that is what makes lib/telemetry/clock.ml the
   one sanctioned clock).

   Propagation: taint flows caller-ward along edges until fixpoint.
   An in-file [@lint.allow "wall-clock"] on the source suppresses the
   per-file syntactic finding but does NOT stop taint — that
   asymmetry is the whole point of this pass: a suppression is a
   local waiver, a boundary is an architectural decision.

   Reporting: every call edge into a tainted definition is a finding
   in the caller, unless the caller's file is itself a boundary for
   the kind, the site carries [@lint.allow "effect-taint"], or the
   caller's path is allowlisted. Each witness chain is rendered into
   the message so the reader sees the path down to the raw source.

   Determinism: edges are iterated in their sorted order and the
   first witness for a (node, kind) pair wins, so messages are stable
   across runs and across --jobs. *)

type witness = Direct of Callgraph.source | Via of int * Location.t

type taint = (string, witness) Hashtbl.t array  (* kind -> witness, per node *)

let propagate ~config (g : Callgraph.t) : taint =
  let taint = Array.map (fun _ -> Hashtbl.create 4) g.Callgraph.nodes in
  Array.iter
    (fun (node : Callgraph.node) ->
      List.iter
        (fun (s : Callgraph.source) ->
          if
            (not (Config.boundary config ~path:node.Callgraph.n_file ~kind:s.Callgraph.s_kind))
            && not (Hashtbl.mem taint.(node.Callgraph.n_id) s.Callgraph.s_kind)
          then Hashtbl.replace taint.(node.Callgraph.n_id) s.Callgraph.s_kind (Direct s))
        node.Callgraph.n_sources)
    g.Callgraph.nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Callgraph.edge) ->
        let caller = g.Callgraph.nodes.(e.Callgraph.e_from) in
        List.iter
          (fun kind ->
            if
              Hashtbl.mem taint.(e.Callgraph.e_to) kind
              && (not (Hashtbl.mem taint.(e.Callgraph.e_from) kind))
              && not (Config.boundary config ~path:caller.Callgraph.n_file ~kind)
            then begin
              Hashtbl.replace taint.(e.Callgraph.e_from) kind
                (Via (e.Callgraph.e_to, e.Callgraph.e_loc));
              changed := true
            end)
          Rules.taint_kinds)
      g.Callgraph.edges
  done;
  taint

(* "Mid.stamp -> Clock_src.now -> Unix.gettimeofday" *)
let chain (g : Callgraph.t) (taint : taint) start kind =
  let rec go id depth =
    if depth > 16 then [ "..." ]
    else
      let name = g.Callgraph.nodes.(id).Callgraph.n_name in
      match Hashtbl.find_opt taint.(id) kind with
      | None -> [ name ]
      | Some (Direct s) -> [ name; s.Callgraph.s_what ]
      | Some (Via (next, _)) -> name :: go next (depth + 1)
  in
  String.concat " -> " (go start 0)

let run ~config (g : Callgraph.t) : Diagnostic.t list =
  let taint = propagate ~config g in
  List.concat_map
    (fun (e : Callgraph.edge) ->
      let caller = g.Callgraph.nodes.(e.Callgraph.e_from) in
      if
        List.exists (String.equal "effect-taint") e.Callgraph.e_allows
        || Config.allowed config ~path:caller.Callgraph.n_file ~rule:"effect-taint"
      then []
      else
        List.filter_map
          (fun kind ->
            if Config.boundary config ~path:caller.Callgraph.n_file ~kind then None
            else if not (Hashtbl.mem taint.(e.Callgraph.e_to) kind) then None
            else
              let message =
                Printf.sprintf
                  "call reaches %s through %s; absorb the effect behind a [boundary] in \
                   lint.toml or thread it explicitly"
                  kind
                  (chain g taint e.Callgraph.e_to kind)
              in
              Some (Diagnostic.of_location e.Callgraph.e_loc ~rule:"effect-taint" ~message))
          Rules.taint_kinds)
    g.Callgraph.edges
