type t = { name : string; summary : string; rationale : string }

(* The determinism contract, as machine-checkable rules. Keep this list
   in sync with the "Static enforcement of the determinism contract"
   section of DESIGN.md: the doc explains each rule at length, this
   table is what the CLI prints for [--rules]. *)
let all =
  [
    {
      name = "random-self-init";
      summary = "Random.self_init seeds the ambient PRNG from the environment";
      rationale = "A run seeded from the OS entropy pool can never be replayed; all randomness must flow from explicit Psn_prng seeds.";
    };
    {
      name = "ambient-random";
      summary = "use of the ambient Stdlib.Random generator";
      rationale = "Stdlib.Random hides one global mutable state behind every call site, so results depend on call order across the whole program; use Psn_prng.Rng streams instead.";
    };
    {
      name = "wall-clock";
      summary = "reading the wall clock (Unix.gettimeofday, Unix.time, Sys.time, ...)";
      rationale = "Simulation results must be a function of the trace and the seeds, never of when the process ran; the one sanctioned clock read is lib/telemetry/clock.ml (allowlisted in lint.toml), which everything else must go through.";
    };
    {
      name = "hash-order-iteration";
      summary = "Hashtbl.iter / Hashtbl.fold enumerate bindings in hash order";
      rationale = "Hash order is an implementation detail that changes across compiler versions and key layouts; iterate through Psn_det.Det_tbl, which sorts bindings by key first.";
    };
    {
      name = "hashtbl-hash";
      summary = "Hashtbl.hash / seeded_hash outside the Faults keyed-hash kernel";
      rationale = "The polymorphic hash walks representations, so a layout change silently re-keys everything; only Faults' documented keyed hashing may rely on it.";
    };
    {
      name = "polymorphic-compare";
      summary = "polymorphic compare/min/max, or =/<>/ordering on structured operands";
      rationale = "Polymorphic comparison walks representations: it is slow, breaks on functional values, and its order on floats (NaN) and structures is too easy to change by refactoring; use Float.compare, Int.compare, String.equal, Option.is_none, List.is_empty or a derived comparator.";
    };
    {
      name = "physical-equality";
      summary = "== or != on values that may not be physically shared";
      rationale = "Physical equality on boxed values depends on sharing, which optimisation levels and copying change freely; use structural, typed equality.";
    };
    {
      name = "catch-all-exception";
      summary = "try ... with _ -> swallows every exception";
      rationale = "A catch-all hides Out_of_memory, Stack_overflow and genuine bugs as ordinary control flow; match the exceptions the expression can actually raise.";
    };
    {
      name = "failwith";
      summary = "failwith raises the stringly-typed Failure";
      rationale = "Library validation errors must be Invalid_argument or a typed Error so CLI error paths stay one-line-to-stderr; Failure is indistinguishable from an internal bug.";
    };
    {
      name = "marshal";
      summary = "Marshal (or output_value/input_value) serialization";
      rationale = "Marshalled bytes depend on the compiler version and on value sharing, so they are neither canonical nor stable across builds; persist results through Psn_store's versioned, CRC-checked codec instead.";
    };
    {
      name = "obj-magic";
      summary = "Obj.magic defeats the type system";
      rationale = "Any unsoundness can surface as silent memory corruption, which is the worst possible nondeterminism.";
    };
    {
      name = "stdout-print";
      summary = "printing to stdout from library code";
      rationale = "Library results must come back as values or go through a caller-supplied formatter; stdout belongs to the executables.";
    };
    {
      name = "missing-mli";
      summary = ".ml without a corresponding .mli";
      rationale = "An unconstrained module leaks every helper as public API; interfaces are where the determinism contract of a module is stated.";
    };
    {
      name = "syntax-error";
      summary = "source file does not parse";
      rationale = "A file the linter cannot read is a file the contract cannot cover.";
    };
    {
      name = "bad-suppression";
      summary = "malformed lint.allow attribute or unknown rule name";
      rationale = "A typo in a suppression must surface as a finding, never as a silently widened allowance.";
    };
    {
      name = "effect-taint";
      summary = "call site transitively reaches ambient nondeterminism (interprocedural)";
      rationale = "A function that calls — through any number of layers — ambient randomness, the wall clock, hash-order iteration, the polymorphic hash or process environment state is itself nondeterministic, even when the offending file suppressed the direct syntactic finding; callers are flagged unless the effect is absorbed by a sanctioned [boundary] in lint.toml (e.g. lib/telemetry/clock.ml for wall-clock).";
    };
    {
      name = "domain-race";
      summary = "task passed to Parallel.map* reaches shared top-level mutable state";
      rationale = "Top-level refs, Hashtbl.t, Buffer.t or arrays reached by a function fanned out over domains are written by every worker at once — the exact failure mode the engine's per-domain scratch ownership exists to prevent. Give each domain its own state through ~env, use Atomic, or declare per-domain ownership in lint.toml's [ownership] table.";
    };
    {
      name = "hot-path-alloc";
      summary = "allocation or polymorphic call reachable from a [@psn.hot] function";
      rationale = "Functions annotated [@psn.hot] (engine drain kernels, enumeration inner loops) are checked transitively for closure/list/tuple/record allocation and polymorphic comparison: a helper that conses in a loop three modules away still costs the hot path. Suppressing at the allocation site sanctions it for every hot caller; suppressing at the call site sanctions one edge.";
    };
  ]

(* Effect kinds the interprocedural taint pass propagates. Boundary
   declarations in lint.toml ([boundary] section) are validated against
   this list, exactly as [allow] entries are validated against the rule
   names above. *)
let taint_kinds =
  [ "ambient-random"; "wall-clock"; "hash-order-iteration"; "hashtbl-hash"; "ambient-env" ]

let is_taint_kind name = List.exists (String.equal name) taint_kinds

let find name = List.find_opt (fun r -> String.equal r.name name) all

let is_known name = Option.is_some (find name)

let pp_list ppf () =
  List.iter
    (fun r -> Format.fprintf ppf "%-22s %s@.%22s   %s@." r.name r.summary "" r.rationale)
    all
