(* Whole-program call graph over the repository's own sources.

   The graph is built syntactically from the same parse trees the
   per-file pass walks: every structure-level value binding becomes a
   node, every resolvable value path mentioned in its body becomes an
   edge. Resolution is module-qualified but untyped — a path [A.B.f]
   is matched against the tree's own files (module name = capitalised
   basename), through file-local module aliases ([module T = ...]),
   [open]s in scope, and library umbrella modules (a path segment that
   resolves to nothing in a matching file falls through to the next
   segment, which is how [Core.Engine.run] reaches
   [lib/sim/engine.ml]). Unresolvable paths — the stdlib, opam
   libraries, local variables — produce no edge.

   Known approximations (all conservative for the passes built on
   top, and documented in DESIGN.md "Interprocedural enforcement"):

   - local [let]s inside a function body are not nodes; their facts
     (effect sources, allocations, references) belong to the
     enclosing structure-level binding;
   - an unqualified identifier that shadows a same-file top-level
     binding resolves to that binding (scope is not tracked across
     arbitrary patterns);
   - referencing a function taints like calling it: a function value
     passed around is assumed to be eventually applied;
   - named local functions are assumed allocation-free to build
     (hoisted); anonymous [fun]s count as closure allocations. *)

(* ------------------------------------------------------------------ *)
(* Facts collected per file                                           *)

type call = {
  c_path : string list;  (* the dotted path as written *)
  c_mpath : string list;  (* submodule path of the call site within its file *)
  c_opens : string list list;  (* opens in scope, innermost first *)
  c_loc : Location.t;
  c_allows : string list;  (* lint.allow rules in scope at the site *)
}

type source = { s_kind : string; s_what : string; s_loc : Location.t }

type alloc = { a_what : string; a_loc : Location.t; a_allows : string list }

type psite = {
  p_fn : string;  (* map | map_list | map_traced | map_env | map_result *)
  p_loc : Location.t;
  p_allows : string list;
  p_refs : (string list * string list list) list;  (* (path, opens) from task + env args *)
  mutable p_fallback : bool;  (* a task/env reference was a local name we cannot see into *)
}

type def = {
  d_names : string list;  (* names bound by the binding ("f", or "a"/"b" for let a, b = ...) *)
  d_mpath : string list;  (* submodule path within the file, outermost first *)
  d_loc : Location.t;
  d_hot : bool;
  d_mutable : string option;  (* Some kind when the RHS creates shared mutable state *)
  mutable d_calls : call list;
  mutable d_sources : source list;
  mutable d_allocs : alloc list;
  mutable d_psites : psite list;
}

type file_facts = {
  ff_path : string;
  ff_module : string;
  mutable ff_defs : def list;  (* reversed during collection, source order after *)
  mutable ff_aliases : (string * string list) list;  (* module alias -> target path *)
}

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                     *)

let strip_stdlib = function "Stdlib" :: (_ :: _ as rest) -> rest | parts -> parts

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let split_rule_names s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map (fun name ->
         let name = String.trim name in
         if String.equal name "" then None else Some name)

(* lint.allow names on an attribute list. Malformed payloads are the
   per-file pass's business ([bad-suppression]); here they just yield
   no names. *)
let attr_allows (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if not (String.equal a.Parsetree.attr_name.Location.txt "lint.allow") then []
      else
        match a.Parsetree.attr_payload with
        | Parsetree.PStr
            [
              {
                Parsetree.pstr_desc =
                  Parsetree.Pstr_eval
                    ( {
                        Parsetree.pexp_desc =
                          Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
          split_rule_names s
        | _ -> [])
    attrs

let has_hot_attr (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.Parsetree.attr_name.Location.txt "psn.hot")
    attrs

(* Effect sources: the ambient-nondeterminism reads the taint pass
   seeds from. Kind names are {!Rules.taint_kinds}. *)
let source_of parts =
  match strip_stdlib parts with
  | "Random" :: _ -> Some "ambient-random"
  | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime" | "mktime" | "times") ]
  | [ "Sys"; "time" ] ->
    Some "wall-clock"
  | [ "Hashtbl"; ("iter" | "fold") ] -> Some "hash-order-iteration"
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] -> Some "hashtbl-hash"
  | [ "Sys"; ("getenv" | "getenv_opt" | "getcwd" | "hostname") ]
  | [ "Unix";
      ("getenv" | "environment" | "unsafe_environment" | "getpid" | "getppid" | "getcwd"
      | "gethostname") ] ->
    Some "ambient-env"
  | _ -> None

(* Stdlib entry points known to allocate, for the hot-path pass. The
   table is deliberately small and obvious — it exists to catch the
   list/"pretty" helpers that sneak onto kernels, not to model the
   runtime. *)
let allocator_of parts =
  let joined = String.concat "." parts in
  match strip_stdlib parts with
  | [ "ref" ] -> Some "ref cell"
  | [ ("compare" | "min" | "max") ] -> Some ("polymorphic " ^ joined)
  | [ "@" ] -> Some "list append (@)"
  | [ "^" ] -> Some "string concatenation (^)"
  | [ "Array";
      ("make" | "init" | "create_float" | "copy" | "append" | "sub" | "of_list" | "to_list"
      | "concat" | "map" | "mapi" | "make_matrix") ]
  | [ "Bytes"; ("create" | "make" | "copy" | "sub" | "of_string" | "to_string" | "extend" | "cat") ]
  | [ "List";
      ("map" | "mapi" | "rev" | "rev_map" | "rev_append" | "append" | "concat" | "concat_map"
      | "init" | "filter" | "filter_map" | "partition" | "sort" | "stable_sort" | "sort_uniq"
      | "split" | "combine" | "of_seq" | "cons") ]
  | [ "String"; ("make" | "init" | "sub" | "concat" | "map" | "split_on_char" | "of_seq") ]
  | [ "Buffer"; ("create" | "contents" | "to_bytes" | "sub") ]
  | [ "Hashtbl"; ("create" | "copy") ]
  | [ ("Queue" | "Stack"); "create" ]
  | [ "Printf"; "sprintf" ]
  | [ "Format"; ("asprintf" | "sprintf") ] ->
    Some (joined ^ " (allocates)")
  | _ -> None

(* Shared-mutable creations: what makes a top-level binding dangerous
   to reach from a parallel task. [Atomic.make] is deliberately
   absent — atomics are the sanctioned cross-domain cell. *)
let mutable_kind_of rhs =
  let rec peel (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_constraint (inner, _) -> peel inner
    | _ -> e
  in
  let e = peel rhs in
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_array (_ :: _) -> Some "array literal"
  | Parsetree.Pexp_apply
      ({ Parsetree.pexp_desc = Parsetree.Pexp_ident { Location.txt = lid; _ }; _ }, _) -> (
    match strip_stdlib (Longident.flatten lid) with
    | [ "ref" ] -> Some "ref"
    | [ "Hashtbl"; "create" ] -> Some "Hashtbl.t"
    | [ "Buffer"; "create" ] -> Some "Buffer.t"
    | [ "Queue"; "create" ] -> Some "Queue.t"
    | [ "Stack"; "create" ] -> Some "Stack.t"
    | [ "Bytes"; ("create" | "make" | "of_string") ] -> Some "Bytes.t"
    | [ "Array"; ("make" | "init" | "create_float" | "of_list" | "make_matrix") ] -> Some "array"
    | _ -> None)
  | _ -> None

let parallel_fns = [ "map"; "map_list"; "map_traced"; "map_env"; "map_result" ]

let parallel_fn_of parts =
  match List.rev parts with
  | fn :: "Parallel" :: _ when List.exists (String.equal fn) parallel_fns -> Some fn
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Reference collection inside Parallel task arguments               *)

module Sset = Set.Make (String)

let pattern_vars pat =
  let acc = ref Sset.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { Location.txt; _ } -> acc := Sset.add txt !acc
          | Parsetree.Ppat_alias (_, { Location.txt; _ }) -> acc := Sset.add txt !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.Ast_iterator.pat it pat;
  !acc

(* All value paths referenced by a task/env argument, with local
   binders (fun parameters, lets, match cases) tracked so a parameter
   [x] is not mistaken for an opaque local function. Returns the
   paths plus whether an unresolvable local name was referenced. *)
let collect_arg_refs ~opens expr =
  let refs = ref [] in
  let local = ref false in
  let rec go bound (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { Location.txt = lid; _ } -> (
      match Longident.flatten lid with
      | [ single ] when Sset.mem single bound -> ()
      | parts -> refs := (parts, opens) :: !refs)
    | Parsetree.Pexp_fun (_, default, pat, body) ->
      Option.iter (go bound) default;
      go (Sset.union bound (pattern_vars pat)) body
    | Parsetree.Pexp_function cases ->
      List.iter
        (fun (c : Parsetree.case) ->
          let bound = Sset.union bound (pattern_vars c.Parsetree.pc_lhs) in
          Option.iter (go bound) c.Parsetree.pc_guard;
          go bound c.Parsetree.pc_rhs)
        cases
    | Parsetree.Pexp_let (_, vbs, body) ->
      List.iter (fun (vb : Parsetree.value_binding) -> go bound vb.Parsetree.pvb_expr) vbs;
      let bound =
        List.fold_left
          (fun acc (vb : Parsetree.value_binding) ->
            Sset.union acc (pattern_vars vb.Parsetree.pvb_pat))
          bound vbs
      in
      go bound body
    | Parsetree.Pexp_match (scrut, cases) | Parsetree.Pexp_try (scrut, cases) ->
      go bound scrut;
      List.iter
        (fun (c : Parsetree.case) ->
          let bound = Sset.union bound (pattern_vars c.Parsetree.pc_lhs) in
          Option.iter (go bound) c.Parsetree.pc_guard;
          go bound c.Parsetree.pc_rhs)
        cases
    | _ ->
      (* Generic children walk with the same bound set. *)
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ child -> go bound child);
        }
      in
      Ast_iterator.default_iterator.expr it e
  in
  go Sset.empty expr;
  (!refs, !local)

(* ------------------------------------------------------------------ *)
(* Per-file collection                                                *)

type collect_ctx = {
  mutable mpath : string list;  (* submodule path, outermost first *)
  mutable opens : string list list;  (* innermost first *)
  mutable allows : string list list;  (* innermost scope first; bottom = file allows *)
  mutable named : bool;  (* current expression is a binding-RHS fun spine *)
  mutable cur : def option;
  facts : file_facts;
}

let current_allows ctx = List.concat ctx.allows

let with_def ctx def f =
  let saved = ctx.cur in
  ctx.cur <- Some def;
  Fun.protect ~finally:(fun () -> ctx.cur <- saved) f

let record_call ctx parts loc =
  match ctx.cur with
  | None -> ()
  | Some d ->
    d.d_calls <-
      {
        c_path = parts;
        c_mpath = ctx.mpath;
        c_opens = ctx.opens;
        c_loc = loc;
        c_allows = current_allows ctx;
      }
      :: d.d_calls

let record_source ctx kind what loc =
  match ctx.cur with
  | None -> ()
  | Some d -> d.d_sources <- { s_kind = kind; s_what = what; s_loc = loc } :: d.d_sources

let record_alloc ctx what loc =
  match ctx.cur with
  | None -> ()
  | Some d ->
    d.d_allocs <- { a_what = what; a_loc = loc; a_allows = current_allows ctx } :: d.d_allocs

let module_path_of_mod_expr (me : Parsetree.module_expr) =
  match me.Parsetree.pmod_desc with
  | Parsetree.Pmod_ident { Location.txt = lid; _ } -> Some (Longident.flatten lid)
  | _ -> None

let make_iterator ctx =
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    let allows = attr_allows e.Parsetree.pexp_attributes in
    let saved_allows = ctx.allows in
    if not (List.is_empty allows) then ctx.allows <- allows :: ctx.allows;
    let saved_named = ctx.named in
    let saved_opens = ctx.opens in
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { Location.txt = lid; loc } ->
      let parts = Longident.flatten lid in
      record_call ctx parts loc;
      (match source_of parts with
      | Some kind -> record_source ctx kind (String.concat "." parts) loc
      | None -> ());
      (match allocator_of parts with
      | Some what -> record_alloc ctx what loc
      | None -> ())
    | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
      if not ctx.named then record_alloc ctx "closure" e.Parsetree.pexp_loc
    | Parsetree.Pexp_tuple _ -> record_alloc ctx "tuple" e.Parsetree.pexp_loc
    | Parsetree.Pexp_record _ -> record_alloc ctx "record" e.Parsetree.pexp_loc
    | Parsetree.Pexp_array (_ :: _) -> record_alloc ctx "array literal" e.Parsetree.pexp_loc
    | Parsetree.Pexp_lazy _ -> record_alloc ctx "lazy block" e.Parsetree.pexp_loc
    | Parsetree.Pexp_construct ({ Location.txt = lid; _ }, Some _) -> (
      match Longident.flatten lid with
      | [ "::" ] -> record_alloc ctx "list cons" e.Parsetree.pexp_loc
      | parts -> record_alloc ctx ("constructor " ^ String.concat "." parts) e.Parsetree.pexp_loc)
    | Parsetree.Pexp_variant (_, Some _) ->
      record_alloc ctx "polymorphic variant" e.Parsetree.pexp_loc
    | Parsetree.Pexp_apply
        ({ Parsetree.pexp_desc = Parsetree.Pexp_ident { Location.txt = lid; loc }; _ }, args)
      -> (
      match parallel_fn_of (Longident.flatten lid) with
      | None -> ()
      | Some fn -> (
        match ctx.cur with
        | None -> ()
        | Some d ->
          let task_arg =
            List.find_opt (function Asttypes.Nolabel, _ -> true | _ -> false) args
          in
          let env_arg =
            List.find_opt (function Asttypes.Labelled "env", _ -> true | _ -> false) args
          in
          let refs, local =
            List.fold_left
              (fun (refs, local) (_, arg) ->
                let r, l = collect_arg_refs ~opens:ctx.opens arg in
                (r @ refs, local || l))
              ([], false)
              (List.filter_map Fun.id [ task_arg; env_arg ])
          in
          let site =
            {
              p_fn = fn;
              p_loc = loc;
              p_allows = current_allows ctx;
              p_refs = refs;
              p_fallback = local;
            }
          in
          d.d_psites <- site :: d.d_psites))
    | Parsetree.Pexp_open (od, _) -> (
      match module_path_of_mod_expr od.Parsetree.popen_expr with
      | Some path -> ctx.opens <- path :: ctx.opens
      | None -> ())
    | Parsetree.Pexp_letmodule ({ Location.txt = Some name; _ }, me, _) -> (
      match module_path_of_mod_expr me with
      | Some path -> ctx.facts.ff_aliases <- (name, path) :: ctx.facts.ff_aliases
      | None -> ())
    | _ -> ());
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ | Parsetree.Pexp_newtype _ ->
      ctx.named <- true
    | _ -> ctx.named <- false);
    default_iterator.expr it e;
    ctx.named <- saved_named;
    ctx.opens <- saved_opens;
    ctx.allows <- saved_allows
  in
  (* A nested [let f x = ...] is a named local function: its fun spine
     is not an anonymous closure (assumed hoisted), and its attributes
     scope over its body. *)
  let value_binding it (vb : Parsetree.value_binding) =
    let allows = attr_allows vb.Parsetree.pvb_attributes in
    let saved_allows = ctx.allows in
    if not (List.is_empty allows) then ctx.allows <- allows :: ctx.allows;
    it.pat it vb.Parsetree.pvb_pat;
    let saved_named = ctx.named in
    ctx.named <- true;
    it.expr it vb.Parsetree.pvb_expr;
    ctx.named <- saved_named;
    ctx.allows <- saved_allows
  in
  { default_iterator with expr; value_binding }

let names_of_pattern pat =
  let vars = pattern_vars pat in
  Sset.elements vars

let collect_binding ctx it (vb : Parsetree.value_binding) =
  let loc = vb.Parsetree.pvb_loc in
  let names =
    match names_of_pattern vb.Parsetree.pvb_pat with
    | [] -> [ Printf.sprintf "(entry:%d)" loc.Location.loc_start.Lexing.pos_lnum ]
    | names -> names
  in
  let hot =
    has_hot_attr vb.Parsetree.pvb_attributes
    || has_hot_attr vb.Parsetree.pvb_expr.Parsetree.pexp_attributes
  in
  let def =
    {
      d_names = names;
      d_mpath = ctx.mpath;
      d_loc = loc;
      d_hot = hot;
      d_mutable = mutable_kind_of vb.Parsetree.pvb_expr;
      d_calls = [];
      d_sources = [];
      d_allocs = [];
      d_psites = [];
    }
  in
  ctx.facts.ff_defs <- def :: ctx.facts.ff_defs;
  let allows = attr_allows vb.Parsetree.pvb_attributes in
  let saved_allows = ctx.allows in
  if not (List.is_empty allows) then ctx.allows <- allows :: ctx.allows;
  with_def ctx def (fun () ->
      ctx.named <- true;
      it.Ast_iterator.expr it vb.Parsetree.pvb_expr;
      ctx.named <- false);
  ctx.allows <- saved_allows

let rec collect_structure ctx it (str : Parsetree.structure) =
  List.iter (collect_structure_item ctx it) str

and collect_structure_item ctx it (si : Parsetree.structure_item) =
  match si.Parsetree.pstr_desc with
  | Parsetree.Pstr_value (_, vbs) -> List.iter (collect_binding ctx it) vbs
  | Parsetree.Pstr_eval (e, attrs) ->
    let loc = si.Parsetree.pstr_loc in
    let def =
      {
        d_names = [ Printf.sprintf "(entry:%d)" loc.Location.loc_start.Lexing.pos_lnum ];
        d_mpath = ctx.mpath;
        d_loc = loc;
        d_hot = has_hot_attr attrs;
        d_mutable = None;
        d_calls = [];
        d_sources = [];
        d_allocs = [];
        d_psites = [];
      }
    in
    ctx.facts.ff_defs <- def :: ctx.facts.ff_defs;
    with_def ctx def (fun () -> it.Ast_iterator.expr it e)
  | Parsetree.Pstr_module mb -> collect_module_binding ctx it mb
  | Parsetree.Pstr_recmodule mbs -> List.iter (collect_module_binding ctx it) mbs
  | Parsetree.Pstr_open od -> (
    match module_path_of_mod_expr od.Parsetree.popen_expr with
    | Some path -> ctx.opens <- path :: ctx.opens
    | None -> ())
  | Parsetree.Pstr_include { Parsetree.pincl_mod = me; _ } -> (
    (* [include M] re-exports M's bindings: treat as an open so
       unqualified references resolve through it. *)
    match module_path_of_mod_expr me with
    | Some path -> ctx.opens <- path :: ctx.opens
    | None -> ())
  | _ -> ()

and collect_module_binding ctx it (mb : Parsetree.module_binding) =
  match mb.Parsetree.pmb_name.Location.txt with
  | None -> ()
  | Some name -> (
    let rec peel (me : Parsetree.module_expr) =
      match me.Parsetree.pmod_desc with
      | Parsetree.Pmod_constraint (inner, _) -> peel inner
      | _ -> me
    in
    let me = peel mb.Parsetree.pmb_expr in
    match me.Parsetree.pmod_desc with
    | Parsetree.Pmod_ident { Location.txt = lid; _ } ->
      ctx.facts.ff_aliases <- (name, Longident.flatten lid) :: ctx.facts.ff_aliases
    | Parsetree.Pmod_structure str ->
      let saved = ctx.mpath in
      ctx.mpath <- ctx.mpath @ [ name ];
      collect_structure ctx it str;
      ctx.mpath <- saved
    | _ -> ())

(* The floating [@@@lint.allow] attributes apply file-wide. *)
let file_allows (str : Parsetree.structure) =
  List.concat_map
    (fun (si : Parsetree.structure_item) ->
      match si.Parsetree.pstr_desc with
      | Parsetree.Pstr_attribute a -> attr_allows [ a ]
      | _ -> [])
    str

let collect_file ~path (str : Parsetree.structure) =
  let facts = { ff_path = path; ff_module = module_name_of_path path; ff_defs = []; ff_aliases = [] } in
  let ctx =
    {
      mpath = [];
      opens = [];
      allows = [ file_allows str ];
      named = false;
      cur = None;
      facts;
    }
  in
  let it = make_iterator ctx in
  collect_structure ctx it str;
  facts.ff_defs <- List.rev facts.ff_defs;
  facts

(* ------------------------------------------------------------------ *)
(* Resolution: facts -> graph                                         *)

type node = {
  n_id : int;
  n_file : string;
  n_name : string;  (* "Engine.run", "Telemetry.Sink.null" *)
  n_local : string;  (* dotted path within the file: "run", "Sink.null" *)
  n_line : int;
  n_col : int;
  n_hot : bool;
  n_mutable : string option;
  n_sources : source list;
  n_allocs : alloc list;
}

type edge = { e_from : int; e_to : int; e_loc : Location.t; e_allows : string list }

type rsite = {
  r_node : int;  (* enclosing definition *)
  r_fn : string;
  r_loc : Location.t;
  r_allows : string list;
  r_roots : int list;  (* resolved task/env references *)
  r_fallback : bool;  (* true: also treat the enclosing definition as a root *)
}

type t = {
  nodes : node array;
  edges : edge list;  (* sorted by (file, line, col, callee) *)
  sites : rsite list;
  n_files : int;
}

type resolver = {
  by_module : (string, file_facts list) Hashtbl.t;
  index : (string * string, int) Hashtbl.t;  (* (file path, local dotted name) -> node id *)
  alias_of : (string, (string * string list) list) Hashtbl.t;  (* file path -> aliases *)
  file_dir : (string, string) Hashtbl.t;
}

let dotted mpath name = String.concat "." (mpath @ [ name ])

let lowercase_head = function
  | part :: _ -> String.length part > 0 && part.[0] >= 'a' && part.[0] <= 'z'
  | [] -> false

(* Resolve [parts] as a local path within file [ff_path], expanding
   that file's module aliases ([module T = Psn_telemetry.Telemetry])
   into global paths. Depth-bounded: alias chains cannot loop. *)
let rec resolve_in_file r ~depth ~from_dir ff_path parts =
  match parts with
  | [] -> None
  | head :: tl -> (
    match Hashtbl.find_opt r.index (ff_path, String.concat "." parts) with
    | Some id -> Some id
    | None ->
      if depth > 6 then None
      else
        let aliases = Option.value ~default:[] (Hashtbl.find_opt r.alias_of ff_path) in
        (match List.assoc_opt head aliases with
        | Some target -> resolve_global r ~depth:(depth + 1) ~from_dir (target @ tl)
        | None -> None))

(* Resolve a fully-qualified path against the tree: find the leftmost
   segment that names a known file module and whose remaining suffix
   resolves inside that file. Umbrella modules (Core, Psn_sim) fall
   through naturally: their segment either is not a file module or
   carries a module alias that expands to the real location. *)
and resolve_global r ~depth ~from_dir parts =
  if depth > 6 then None
  else
    let n = List.length parts in
    let rec try_at i rest =
      if i > n - 1 then None
      else
        match rest with
        | [] -> None
        | seg :: tl -> (
          let candidates =
            match Hashtbl.find_opt r.by_module seg with
            | None -> []
            | Some ffs ->
              List.stable_sort
                (fun a b ->
                  let da = String.equal (Filename.dirname a.ff_path) from_dir in
                  let db = String.equal (Filename.dirname b.ff_path) from_dir in
                  if da = db then String.compare a.ff_path b.ff_path
                  else if da then -1
                  else 1)
                ffs
          in
          let resolved =
            List.find_map
              (fun ff -> resolve_in_file r ~depth:(depth + 1) ~from_dir ff.ff_path tl)
              candidates
          in
          match resolved with Some id -> Some id | None -> try_at (i + 1) tl)
    in
    try_at 0 parts

(* A reference at a call site: same file first (submodule context,
   then top level, then the file's aliases), then the opens in scope,
   then the bare path against the whole tree. *)
let resolve_ref r ~ff ~mpath ~opens parts =
  let from_dir = Filename.dirname ff.ff_path in
  let local_candidates = if List.is_empty mpath then [ parts ] else [ mpath @ parts; parts ] in
  let in_file =
    List.find_map (fun cand -> resolve_in_file r ~depth:0 ~from_dir ff.ff_path cand) local_candidates
  in
  match in_file with
  | Some id -> Some id
  | None ->
    let candidates = parts :: List.map (fun o -> o @ parts) opens in
    List.find_map (fun cand -> resolve_global r ~depth:0 ~from_dir cand) candidates

let compare_loc (a : Location.t) (b : Location.t) =
  let la = a.Location.loc_start.Lexing.pos_lnum and lb = b.Location.loc_start.Lexing.pos_lnum in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    Int.compare
      (a.Location.loc_start.Lexing.pos_cnum - a.Location.loc_start.Lexing.pos_bol)
      (b.Location.loc_start.Lexing.pos_cnum - b.Location.loc_start.Lexing.pos_bol)

let build (files : file_facts list) =
  (* Stable node numbering: files in the (already sorted) order given,
     definitions in source order. *)
  let r =
    {
      by_module = Hashtbl.create 64;
      index = Hashtbl.create 512;
      alias_of = Hashtbl.create 64;
      file_dir = Hashtbl.create 64;
    }
  in
  let nodes = ref [] in
  let next = ref 0 in
  List.iter
    (fun ff ->
      Hashtbl.replace r.by_module ff.ff_module
        (match Hashtbl.find_opt r.by_module ff.ff_module with
        | Some l -> l @ [ ff ]
        | None -> [ ff ]);
      Hashtbl.replace r.alias_of ff.ff_path ff.ff_aliases;
      Hashtbl.replace r.file_dir ff.ff_path (Filename.dirname ff.ff_path);
      List.iter
        (fun d ->
          let id = !next in
          incr next;
          let primary = List.hd d.d_names in
          let local = dotted d.d_mpath primary in
          let node =
            {
              n_id = id;
              n_file = ff.ff_path;
              n_name = ff.ff_module ^ "." ^ local;
              n_local = local;
              n_line = d.d_loc.Location.loc_start.Lexing.pos_lnum;
              n_col =
                d.d_loc.Location.loc_start.Lexing.pos_cnum
                - d.d_loc.Location.loc_start.Lexing.pos_bol;
              n_hot = d.d_hot;
              n_mutable = d.d_mutable;
              n_sources = List.rev d.d_sources;
              n_allocs = List.rev d.d_allocs;
            }
          in
          nodes := node :: !nodes;
          List.iter
            (fun name -> Hashtbl.replace r.index (ff.ff_path, dotted d.d_mpath name) id)
            d.d_names)
        ff.ff_defs)
    files;
  let nodes = Array.of_list (List.rev !nodes) in
  let edges = ref [] in
  let sites = ref [] in
  let id = ref 0 in
  List.iter
    (fun ff ->
      List.iter
        (fun d ->
          let self = !id in
          incr id;
          List.iter
            (fun c ->
              match resolve_ref r ~ff ~mpath:c.c_mpath ~opens:c.c_opens c.c_path with
              | Some callee when callee <> self ->
                edges := { e_from = self; e_to = callee; e_loc = c.c_loc; e_allows = c.c_allows } :: !edges
              | _ -> ())
            (List.rev d.d_calls);
          List.iter
            (fun p ->
              let roots = ref [] in
              let fallback = ref p.p_fallback in
              List.iter
                (fun (parts, opens) ->
                  match resolve_ref r ~ff ~mpath:d.d_mpath ~opens parts with
                  | Some root -> roots := root :: !roots
                  | None ->
                    (* A single lowercase name we cannot resolve is a
                       local value (a closure, a parameter): we cannot
                       see inside it, so the enclosing definition
                       stands in as a conservative root. *)
                    if List.length parts = 1 && lowercase_head parts then fallback := true)
                p.p_refs;
              sites :=
                {
                  r_node = self;
                  r_fn = p.p_fn;
                  r_loc = p.p_loc;
                  r_allows = p.p_allows;
                  r_roots = List.sort_uniq Int.compare !roots;
                  r_fallback = !fallback;
                }
                :: !sites)
            (List.rev d.d_psites))
        ff.ff_defs)
    files;
  let edge_compare a b =
    let c = String.compare nodes.(a.e_from).n_file nodes.(b.e_from).n_file in
    if c <> 0 then c
    else
      let c = compare_loc a.e_loc b.e_loc in
      if c <> 0 then c else Int.compare a.e_to b.e_to
  in
  let edges =
    List.sort_uniq
      (fun a b ->
        let c = edge_compare a b in
        if c <> 0 then c else Int.compare a.e_from b.e_from)
      !edges
  in
  let sites =
    List.sort
      (fun a b ->
        let c = String.compare nodes.(a.r_node).n_file nodes.(b.r_node).n_file in
        if c <> 0 then c else compare_loc a.r_loc b.r_loc)
      !sites
  in
  { nodes; edges; sites; n_files = List.length files }

(* ------------------------------------------------------------------ *)
(* Export                                                             *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let loc_line (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let loc_col (loc : Location.t) =
  loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol

let pp_json ppf t =
  Format.fprintf ppf "{\"schema\":\"psn-lint-callgraph/1\",\"nodes\":[";
  Array.iteri
    (fun i n ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@.  {\"id\":%d,\"name\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d"
        n.n_id (json_escape n.n_name) (json_escape n.n_file) n.n_line n.n_col;
      if n.n_hot then Format.fprintf ppf ",\"hot\":true";
      (match n.n_mutable with
      | Some kind -> Format.fprintf ppf ",\"mutable\":\"%s\"" (json_escape kind)
      | None -> ());
      Format.fprintf ppf "}")
    t.nodes;
  Format.fprintf ppf "@.],\"edges\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@.  {\"from\":%d,\"to\":%d,\"line\":%d,\"col\":%d}" e.e_from e.e_to
        (loc_line e.e_loc) (loc_col e.e_loc))
    t.edges;
  Format.fprintf ppf "@.],\"parallel_sites\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@.  {\"node\":%d,\"fn\":\"%s\",\"line\":%d,\"col\":%d}" s.r_node
        (json_escape s.r_fn) (loc_line s.r_loc) (loc_col s.r_loc))
    t.sites;
  Format.fprintf ppf "@.]}@."

let pp_dot ppf t =
  Format.fprintf ppf "digraph psn_callgraph {@.";
  Format.fprintf ppf "  rankdir=LR;@.  node [shape=box,fontsize=10];@.";
  Array.iter
    (fun n ->
      let style =
        if n.n_hot then ",style=filled,fillcolor=\"#ffd9b3\""
        else
          match n.n_mutable with
          | Some _ -> ",style=filled,fillcolor=\"#ffcccc\""
          | None -> ""
      in
      Format.fprintf ppf "  n%d [label=\"%s\\n%s:%d\"%s];@." n.n_id (json_escape n.n_name)
        (json_escape n.n_file) n.n_line style)
    t.nodes;
  List.iter (fun e -> Format.fprintf ppf "  n%d -> n%d;@." e.e_from e.e_to) t.edges;
  List.iter
    (fun s ->
      List.iter
        (fun root ->
          Format.fprintf ppf "  n%d -> n%d [style=dashed,label=\"Parallel.%s\"];@." s.r_node root
            (json_escape s.r_fn))
        s.r_roots)
    t.sites;
  Format.fprintf ppf "}@."
