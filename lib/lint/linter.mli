(** The determinism-contract pass: read-only [Ast_iterator] traversal
    of parsed sources, reporting {!Rules} violations as
    {!Diagnostic.t} values.

    Suppression: a finding is dropped when its rule appears in a
    [\[@@@lint.allow "rule"\]] floating attribute anywhere in the same
    file, in a [\[@lint.allow "rule"\]] attribute on an enclosing
    expression or binding, or in the {!Config.t} allowlist for the
    file's path. Several rules may share one attribute, separated by
    commas or spaces. *)

val check_file : config:Config.t -> string -> Diagnostic.t list
(** Lint one [.ml] or [.mli] file (other extensions yield no
    findings). Unparseable files produce a single [syntax-error]
    finding rather than an exception. *)

val run : config:Config.t -> string list -> Diagnostic.t list
(** Lint every [.ml]/[.mli] under the given files and directories
    (recursively; entries starting with ['.'] or ['_'] are skipped)
    and return all findings sorted by (file, line, col, rule). *)
