(** The determinism-contract pass: read-only [Ast_iterator] traversal
    of parsed sources, reporting {!Rules} violations as
    {!Diagnostic.t} values.

    Suppression: a finding is dropped when its rule appears in a
    [\[@@@lint.allow "rule"\]] floating attribute anywhere in the same
    file, in a [\[@lint.allow "rule"\]] attribute on an enclosing
    expression or binding, or in the {!Config.t} allowlist for the
    file's path. Several rules may share one attribute, separated by
    commas or spaces. *)

val check_file : config:Config.t -> string -> Diagnostic.t list
(** Lint one [.ml] or [.mli] file with the per-file syntactic rules
    only (other extensions yield no findings). Unparseable files
    produce a single [syntax-error] finding rather than an
    exception. *)

val analyze :
  config:Config.t -> ?jobs:int -> string list -> Diagnostic.t list * Callgraph.t
(** Lint every [.ml]/[.mli] under the given files and directories
    (recursively; entries starting with ['.'] or ['_'] are skipped):
    the per-file syntactic rules, then the whole-program passes over
    the call graph — {!Effects}, {!Domain_safety}, {!Hotpath}.

    [jobs] fans the per-file walks over that many domains; parsing
    stays sequential (compiler-libs keeps lexer state in globals).
    Findings, and the returned graph, are byte-identical for every
    [jobs] value: files are pre-sorted, results are slotted by file
    index, and everything downstream is sorted. *)

val run : config:Config.t -> string list -> Diagnostic.t list
(** [analyze] with the graph dropped: all findings sorted by
    (file, line, col, rule). *)
