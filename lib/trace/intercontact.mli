(** Inter-contact time analysis.

    The time between successive meetings of a node pair is the central
    statistic of the PSN measurement literature: Hui et al. (WDTN'05)
    and Chaintreau et al. (INFOCOM'06) showed its aggregate distribution
    has an approximately power-law body, and Conan et al. showed the
    heterogeneity across pairs matters for routing — the observation the
    paper builds §5.2 on. This module extracts inter-contact samples
    from a trace and fits their tail. *)

val pair_gaps : Trace.t -> Node.id -> Node.id -> float list
(** Gaps between the end of one contact of the pair and the start of
    the next, chronological. Empty when the pair met fewer than twice.
    Raises [Invalid_argument] on out-of-range or equal nodes. *)

val node_gaps : Trace.t -> Node.id -> float list
(** Gaps between successive contacts of one node (with anyone). *)

val aggregate_gaps : Trace.t -> float array
(** All pairs' inter-contact gaps pooled — the distribution the
    literature plots as a CCDF. *)

val ccdf : float array -> (float * float) list
(** [(x, P[X > x])] points at each distinct sample value, ascending —
    plottable on log-log axes. Raises [Invalid_argument] when empty. *)

val mean_intercontact : Trace.t -> Node.id -> Node.id -> float
(** Mean gap of the pair; [infinity] when they met fewer than twice. *)

val tail_exponent : ?x_min:float -> float array -> float option
(** Hill estimator of the power-law tail exponent alpha (for
    [P[X > x] ~ x^{-alpha}]) over samples ≥ [x_min] (default: the
    sample median). [None] with fewer than 10 tail samples. *)
