open Psn_prng

type profile = Flat | Dropoff of { from_frac : float; factor : float }

type config = {
  n_mobile : int;
  n_stationary : int;
  horizon : float;
  mean_contacts : float;
  sociability_floor : float;
  n_locations : int;
  dwell : Dist.t;
  away_prob : float;
  duration : Dist.t;
  profile : profile;
  scan_interval : float option;
}

let default =
  {
    n_mobile = 78;
    n_stationary = 20;
    horizon = 10800.;
    mean_contacts = 180.;
    sociability_floor = 0.01;
    n_locations = 8;
    dwell = Dist.Truncated { dist = Dist.Exponential { rate = 1. /. 1500. }; lo = 120.; hi = 5400. };
    away_prob = 0.12;
    duration = Dist.Truncated { dist = Dist.Exponential { rate = 1. /. 120. }; lo = 10.; hi = 1800. };
    profile = Flat;
    scan_interval = None;
  }

let validate_config cfg =
  if cfg.n_mobile < 0 || cfg.n_stationary < 0 || cfg.n_mobile + cfg.n_stationary < 2 then
    Error "need at least two nodes"
  else if not (cfg.horizon > 0.) then Error "horizon must be positive"
  else if not (cfg.mean_contacts > 0.) then Error "mean_contacts must be positive"
  else if not (cfg.sociability_floor >= 0. && cfg.sociability_floor < 1.) then
    Error "sociability_floor must be in [0, 1)"
  else if cfg.n_locations < 1 then Error "need at least one location"
  else if not (cfg.away_prob >= 0. && cfg.away_prob < 1.) then
    Error "away_prob must be in [0, 1)"
  else
    match cfg.profile with
    | Flat -> Ok ()
    | Dropoff { from_frac; factor } ->
      if not (from_frac > 0. && from_frac < 1.) then Error "dropoff from_frac must be in (0, 1)"
      else if not (factor >= 0. && factor <= 1.) then Error "dropoff factor must be in [0, 1]"
      else Ok ()

let n_nodes cfg = cfg.n_mobile + cfg.n_stationary

let sociabilities cfg rng =
  Array.init (n_nodes cfg) (fun i ->
      if i < cfg.n_mobile then Rng.uniform_in rng ~lo:cfg.sociability_floor ~hi:1.
      else
        (* Stationary venue nodes see a steady stream of passers-by, so
           they sit in the upper sociability range. *)
        Rng.uniform_in rng ~lo:0.6 ~hi:1.)

(* A node's whereabouts as chronological (location, from, until)
   segments covering [0, horizon). *)
type segment = { loc : int; s : float; e : float }

let timeline cfg rng node =
  if node >= cfg.n_mobile then
    (* Stationary nodes are pinned; spread them round-robin. *)
    [ { loc = (node - cfg.n_mobile) mod cfg.n_locations; s = 0.; e = cfg.horizon } ]
  else if cfg.n_locations = 1 then [ { loc = 0; s = 0.; e = cfg.horizon } ]
  else begin
    (* loc = -1 denotes being away from the venue entirely (powered
       off, stepped out) — no contacts are possible there. *)
    let rec walk time loc acc =
      if time >= cfg.horizon then List.rev acc
      else begin
        let stay = Float.max 1. (Dist.sample rng cfg.dwell) in
        let until = Float.min cfg.horizon (time +. stay) in
        let next =
          if loc >= 0 && Rng.bernoulli rng cfg.away_prob then -1
          else if loc < 0 then Rng.int rng cfg.n_locations
          else if cfg.n_locations = 1 then 0
          else begin
            let r = Rng.int rng (cfg.n_locations - 1) in
            if r >= loc then r + 1 else r
          end
        in
        walk until next ({ loc; s = time; e = until } :: acc)
      end
    in
    walk 0. (Rng.int rng cfg.n_locations) []
  end

(* Chronological intervals during which two nodes share a location. *)
let colocation a b =
  let rec merge xs ys acc =
    match (xs, ys) with
    | [], _ | _, [] -> List.rev acc
    | x :: xs', y :: ys' ->
      let s = Float.max x.s y.s and e = Float.min x.e y.e in
      let acc = if x.loc = y.loc && x.loc >= 0 && s < e then (s, e) :: acc else acc in
      if x.e <= y.e then merge xs' ys acc else merge xs ys' acc
  in
  merge a b []

let profile_intensity cfg time =
  match cfg.profile with
  | Flat -> 1.
  | Dropoff { from_frac; factor } -> if time < from_frac *. cfg.horizon then 1. else factor

(* Mean of the intensity modulation over an interval. *)
let profile_mass cfg (s, e) =
  match cfg.profile with
  | Flat -> e -. s
  | Dropoff { from_frac; factor } ->
    let cut = from_frac *. cfg.horizon in
    let full = Float.max 0. (Float.min e cut -. s) in
    let reduced = Float.max 0. (e -. Float.max s cut) in
    full +. (factor *. reduced)

let quantize_up q time = Float.ceil (time /. q) *. q

type generated = { trace : Trace.t; weights : float array; timelines : segment list array }

let generate_full ?rng cfg =
  (match validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.generate: " ^ msg));
  let rng = match rng with Some r -> r | None -> Rng.create () in
  let n = n_nodes cfg in
  let weights = sociabilities cfg rng in
  let timelines = Array.init n (fun node -> timeline cfg rng node) in
  (* Two-pass calibration: expected contacts for pair (i, j) are
     c * w_i * w_j * effective co-location time, so choose c to make the
     population-mean per-node count hit the target exactly in
     expectation. *)
  let n_pairs = n * (n - 1) / 2 in
  let coloc = Array.make n_pairs [] in
  let pair_weight = Array.make n_pairs 0. in
  let pair_exposure = Array.make n_pairs 0. in
  let pair_index = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let intervals = colocation timelines.(i) timelines.(j) in
      coloc.(!pair_index) <- intervals;
      pair_weight.(!pair_index) <- weights.(i) *. weights.(j);
      pair_exposure.(!pair_index) <-
        List.fold_left (fun acc iv -> acc +. profile_mass cfg iv) 0. intervals;
      incr pair_index
    done
  done;
  (* An arrival landing inside an ongoing contact is dropped, so the
     effective contact count of a pair with arrival rate mu over
     exposure T is about mu T / (1 + mu d) for mean duration d (renewal
     occupancy). Solve for the rate constant c (mu = c w_i w_j) that
     makes the expected population mean hit the target; the total is
     monotone in c, so bisection converges fast. *)
  let mean_duration = Float.max 1. (Dist.mean cfg.duration) in
  let expected_total c =
    let acc = ref 0. in
    for p = 0 to n_pairs - 1 do
      let mu = c *. pair_weight.(p) in
      if mu > 0. && pair_exposure.(p) > 0. then
        acc := !acc +. (mu *. pair_exposure.(p) /. (1. +. (mu *. mean_duration)))
    done;
    !acc
  in
  let target_total = cfg.mean_contacts *. float_of_int n /. 2. in
  let c =
    if expected_total 1e-12 >= target_total then 0.
    else begin
      let hi = ref 1e-9 in
      while expected_total !hi < target_total && !hi < 1e6 do
        hi := !hi *. 2.
      done;
      let lo = ref 0. in
      for _ = 1 to 60 do
        let mid = (!lo +. !hi) /. 2. in
        if expected_total mid < target_total then lo := mid else hi := mid
      done;
      (!lo +. !hi) /. 2.
    end
  in
  let contacts = ref [] in
  let pair_index = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let rate = c *. weights.(i) *. weights.(j) in
      let intervals = coloc.(!pair_index) in
      incr pair_index;
      if rate > 0. then
        List.iter
          (fun (iv_s, iv_e) ->
            (* Poisson arrivals in the co-location window, thinned by the
               intensity profile; contacts are cut short when the pair
               separates. Arrivals inside the previous contact are
               dropped. *)
            let rec arrivals time last_end =
              let time = time +. Rng.exponential rng ~rate in
              if time >= iv_e then ()
              else if not (Rng.bernoulli rng (profile_intensity cfg time)) then
                arrivals time last_end
              else begin
                let t_start =
                  match cfg.scan_interval with None -> time | Some q -> quantize_up q time
                in
                let dur = Float.max 1. (Dist.sample rng cfg.duration) in
                let t_end =
                  let e = Float.min (time +. dur) iv_e in
                  match cfg.scan_interval with None -> e | Some q -> quantize_up q e
                in
                let t_end = Float.min t_end cfg.horizon in
                if t_start < last_end || t_start >= Float.min iv_e cfg.horizon || t_end <= t_start
                then arrivals time last_end
                else begin
                  contacts := Contact.make ~a:i ~b:j ~t_start ~t_end :: !contacts;
                  arrivals time t_end
                end
              end
            in
            arrivals iv_s 0.)
          intervals
    done
  done;
  let kinds =
    Array.init n (fun i -> if i < cfg.n_mobile then Node.Mobile else Node.Stationary)
  in
  let trace = Trace.create ~n_nodes:n ~horizon:cfg.horizon ~kinds !contacts in
  { trace; weights; timelines }

let generate ?rng cfg = (generate_full ?rng cfg).trace
