let check trace a b =
  let n = Trace.n_nodes trace in
  if a < 0 || b < 0 || a >= n || b >= n then invalid_arg "Intercontact: node out of range";
  if a = b then invalid_arg "Intercontact: need two distinct nodes"

(* Gaps between successive intervals given chronological (start, end)
   pairs. *)
let gaps_of_intervals intervals =
  let rec go acc = function
    | (_, prev_end) :: ((next_start, _) :: _ as rest) ->
      let gap = next_start -. prev_end in
      go (if gap > 0. then gap :: acc else acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  go [] intervals

let pair_gaps trace a b =
  check trace a b;
  let lo, hi = if a < b then (a, b) else (b, a) in
  Trace.fold_contacts trace ~init:[] ~f:(fun acc (c : Contact.t) ->
      if c.Contact.a = lo && c.Contact.b = hi then (c.Contact.t_start, c.Contact.t_end) :: acc
      else acc)
  |> List.rev |> gaps_of_intervals

let node_gaps trace node =
  if node < 0 || node >= Trace.n_nodes trace then invalid_arg "Intercontact: node out of range";
  Trace.fold_contacts trace ~init:[] ~f:(fun acc (c : Contact.t) ->
      if Contact.involves c node then (c.Contact.t_start, c.Contact.t_end) :: acc else acc)
  |> List.rev |> gaps_of_intervals

let aggregate_gaps trace =
  let n = Trace.n_nodes trace in
  (* Bucket contacts per pair in one pass, then extract gaps. *)
  let per_pair : (int, (float * float) list) Hashtbl.t = Hashtbl.create 256 in
  Trace.iter_contacts trace (fun (c : Contact.t) ->
      let key = (c.Contact.a * n) + c.Contact.b in
      let existing = Option.value ~default:[] (Hashtbl.find_opt per_pair key) in
      Hashtbl.replace per_pair key ((c.Contact.t_start, c.Contact.t_end) :: existing));
  let out = ref [] in
  (* Key-ordered extraction: the gap array's layout is a function of
     the trace, not of hash order. *)
  Psn_det.Det_tbl.iter ~cmp:Int.compare
    (fun _ intervals -> out := gaps_of_intervals (List.rev intervals) @ !out)
    per_pair;
  Array.of_list !out

let ccdf samples =
  if Array.length samples = 0 then invalid_arg "Intercontact.ccdf: empty sample";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let points = ref [] in
  (* P[X > x] just after each distinct value: fraction of samples
     strictly greater. *)
  for i = n - 1 downto 0 do
    let x = sorted.(i) in
    match !points with
    | (x', _) :: _ when Float.equal x' x -> ()
    | _ ->
      let greater = n - i - 1 in
      points := (x, float_of_int greater /. float_of_int n) :: !points
  done;
  !points

let mean_intercontact trace a b =
  match pair_gaps trace a b with
  | [] -> Float.infinity
  | gaps -> List.fold_left ( +. ) 0. gaps /. float_of_int (List.length gaps)

let tail_exponent ?x_min samples =
  match Array.length samples with
  | 0 -> None
  | _ ->
    let x_min =
      match x_min with
      | Some v -> v
      | None -> Psn_stats.Quantile.median samples
    in
    if not (x_min > 0.) then None
    else begin
      let tail = Array.to_list samples |> List.filter (fun x -> x >= x_min && x > 0.) in
      let k = List.length tail in
      if k < 10 then None
      else begin
        (* Hill estimator: alpha = k / sum(ln(x_i / x_min)). *)
        let log_sum = List.fold_left (fun acc x -> acc +. Float.log (x /. x_min)) 0. tail in
        if log_sum <= 0. then None else Some (float_of_int k /. log_sum)
      end
    end
