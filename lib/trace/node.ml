type id = int

type kind = Mobile | Stationary

let equal_kind a b =
  match (a, b) with Mobile, Mobile | Stationary, Stationary -> true | _, _ -> false

let pp_kind ppf = function
  | Mobile -> Format.pp_print_string ppf "mobile"
  | Stationary -> Format.pp_print_string ppf "stationary"

let kind_of_string = function
  | "mobile" -> Ok Mobile
  | "stationary" -> Ok Stationary
  | s -> Error (Printf.sprintf "unknown node kind %S (expected mobile|stationary)" s)

let pp ppf id = Format.fprintf ppf "n%d" id
