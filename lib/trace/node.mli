(** Node identities.

    Nodes are dense integer ids [0 .. n-1], which lets every downstream
    structure (snapshots, DP tables, simulator state) be an array. The
    experimental deployments mixed devices carried by participants with
    devices fixed around the venue, so each node also carries a kind. *)

type id = int
(** Dense node index, [0 <= id < n]. *)

type kind =
  | Mobile  (** Carried by a conference participant. *)
  | Stationary  (** Fixed around the venue (20 of 98 in the datasets). *)

val equal_kind : kind -> kind -> bool

val pp_kind : Format.formatter -> kind -> unit
(** ["mobile"] or ["stationary"]. *)

val kind_of_string : string -> (kind, string) result
(** Inverse of {!pp_kind}; [Error] describes the bad input. *)

val pp : Format.formatter -> id -> unit
(** ["n<id>"], e.g. ["n42"]. *)
