type t = { name : string; label : string; config : Generator.config; seed : int64 }

let base = Generator.default

let infocom06_am =
  {
    name = "infocom06-9-12";
    label = "Infocom 06 9AM-12PM";
    config = base;
    seed = 0x1F0C_0609L;
  }

let infocom06_pm =
  {
    name = "infocom06-3-6";
    label = "Infocom 06 3PM-6PM";
    config =
      {
        base with
        Generator.mean_contacts = 170.;
        profile = Generator.Dropoff { from_frac = 5. /. 6.; factor = 0.5 };
      };
    seed = 0x1F0C_1518L;
  }

let conext06_am =
  {
    name = "conext06-9-12";
    label = "Conext 06 9AM-12PM";
    config = { base with Generator.mean_contacts = 105. };
    seed = 0xC0E_0609L;
  }

let conext06_pm =
  {
    name = "conext06-3-6";
    label = "Conext 06 3PM-6PM";
    config =
      {
        base with
        Generator.mean_contacts = 95.;
        profile = Generator.Dropoff { from_frac = 5. /. 6.; factor = 0.5 };
      };
    seed = 0xC0E_1518L;
  }

let all = [ infocom06_am; infocom06_pm; conext06_am; conext06_pm ]

let find name =
  match List.find_opt (fun d -> String.equal d.name name) all with
  | Some d -> Ok d
  | None ->
    let names = List.map (fun d -> d.name) all |> String.concat ", " in
    Error (Printf.sprintf "unknown dataset %S (expected one of: %s)" name names)

let generate ?seed t =
  let seed = Option.value seed ~default:t.seed in
  Generator.generate ~rng:(Psn_prng.Rng.create ~seed ()) t.config
