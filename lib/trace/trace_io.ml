let to_string trace =
  let buf = Buffer.create (64 * Trace.n_contacts trace) in
  Buffer.add_string buf "# psn-trace v1\n";
  Buffer.add_string buf (Printf.sprintf "# nodes %d\n" (Trace.n_nodes trace));
  Buffer.add_string buf (Printf.sprintf "# horizon %.6g\n" (Trace.horizon trace));
  Array.iteri
    (fun i kind ->
      if Node.equal_kind kind Node.Stationary then
        Buffer.add_string buf (Printf.sprintf "# kind %d stationary\n" i))
    (Trace.kinds trace);
  Trace.iter_contacts trace (fun (c : Contact.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%.6g,%.6g\n" c.Contact.a c.Contact.b c.Contact.t_start
           c.Contact.t_end));
  Buffer.contents buf

type header = { mutable nodes : int option; mutable horizon : float option }

(* Duplicates are keyed on the endpoint-normalised quadruple so that
   "1,2,..." and "2,1,..." count as the same contact. *)
let contact_key a b s e = ((Int.min a b, Int.max a b), (s, e))

let parse_line ~lineno header contacts stationary seen line =
  let fail fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt in
  let line = String.trim line in
  if String.equal line "" then Ok ()
  else if String.length line > 0 && line.[0] = '#' then begin
    match String.split_on_char ' ' line |> List.filter (fun s -> not (String.equal s "")) with
    | [ "#"; "psn-trace"; "v1" ] -> Ok ()
    | [ "#"; "nodes"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        header.nodes <- Some n;
        Ok ()
      | _ -> fail "bad node count %S" n)
    | [ "#"; "horizon"; h ] -> (
      match float_of_string_opt h with
      | Some h when Float.is_finite h && h > 0. ->
        header.horizon <- Some h;
        Ok ()
      | _ -> fail "bad horizon %S (must be finite and positive)" h)
    | [ "#"; "kind"; id; "stationary" ] -> (
      match int_of_string_opt id with
      | Some id when id >= 0 ->
        stationary := (id, lineno) :: !stationary;
        Ok ()
      | _ -> fail "bad kind line")
    | _ -> Ok ()  (* unknown comments are tolerated *)
  end
  else begin
    match String.split_on_char ',' line with
    | [ a; b; s; e ] -> (
      match (int_of_string_opt a, int_of_string_opt b, float_of_string_opt s, float_of_string_opt e)
      with
      | Some a, Some b, Some s, Some e ->
        if not (Float.is_finite s && Float.is_finite e) then
          fail "non-finite timestamp in contact %d,%d" a b
        else if s >= e then fail "empty or inverted interval [%g, %g)" s e
        else begin
          let key = contact_key a b s e in
          match Hashtbl.find_opt seen key with
          | Some first -> fail "duplicate contact %s (first seen at line %d)" line first
          | None -> (
            Hashtbl.add seen key lineno;
            match Contact.make ~a ~b ~t_start:s ~t_end:e with
            | c ->
              contacts := (c, lineno) :: !contacts;
              Ok ()
            | exception Invalid_argument msg -> fail "invalid contact: %s" msg)
        end
      | _ -> fail "unparseable contact fields")
    | _ -> fail "expected a,b,t_start,t_end"
  end

let of_string text =
  let header = { nodes = None; horizon = None } in
  let contacts = ref [] and stationary = ref [] in
  let seen = Hashtbl.create 256 in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      match parse_line ~lineno header contacts stationary seen line with
      | Ok () -> go (lineno + 1) rest
      | Error _ as e -> e)
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () -> (
    match (header.nodes, header.horizon) with
    | None, _ -> Error "missing '# nodes' header"
    | _, None -> Error "missing '# horizon' header"
    | Some n, Some h -> (
      (* Range checks report the first offending line, in file order,
         as an [Error] — the same line-numbered one-line-to-stderr
         shape as every other parse failure; no exceptions involved. *)
      let check_ranges () =
        match
          List.find_map
            (fun (id, lineno) ->
              if id >= n then
                Some
                  (Printf.sprintf "line %d: stationary node %d outside population of %d" lineno
                     id n)
              else None)
            (List.rev !stationary)
        with
        | Some _ as err -> err
        | None ->
          List.find_map
            (fun ((c : Contact.t), lineno) ->
              (* [Contact.make] orders endpoints, so [b] is the larger. *)
              if c.Contact.b >= n then
                Some
                  (Printf.sprintf "line %d: node id %d exceeds population of %d (from '# nodes')"
                     lineno c.Contact.b n)
              else None)
            (List.rev !contacts)
      in
      match check_ranges () with
      | Some msg -> Error msg
      | None -> (
        let kinds = Array.make n Node.Mobile in
        List.iter (fun (id, _) -> kinds.(id) <- Node.Stationary) !stationary;
        match Trace.create ~n_nodes:n ~horizon:h ~kinds (List.rev_map fst !contacts) with
        | exception Invalid_argument msg -> Error msg
        | trace -> (
          match Trace.validate trace with Ok () -> Ok trace | Error msg -> Error msg))))

let save trace ~path =
  (* Write-to-temp then rename: a crash mid-write can leave a stray
     [.tmp] but never a truncated trace under the requested name. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string trace));
  Sys.rename tmp path

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let read () =
      let len = in_channel_length ic in
      really_input_string ic len
    in
    let text = Fun.protect ~finally:(fun () -> close_in ic) read in
    of_string text

let of_whitespace ?n_nodes text =
  let lines = String.split_on_char '\n' text in
  let seen = Hashtbl.create 256 in
  let parse_line (lineno, acc) line =
    let fail fmt =
      Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt
    in
    let line = String.trim line in
    if String.equal line "" || line.[0] = '#' then Ok (lineno + 1, acc)
    else begin
      match
        String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) line)
        |> List.filter (fun s -> not (String.equal s ""))
      with
      | a :: b :: s :: e :: _ -> (
        match
          (int_of_string_opt a, int_of_string_opt b, float_of_string_opt s, float_of_string_opt e)
        with
        | Some a, Some b, Some s, Some e ->
          if a < 0 || b < 0 then fail "negative node id in contact %d %d" a b
          else if a = b then fail "self-contact at node %d" a
          else if not (Float.is_finite s && Float.is_finite e) then
            fail "non-finite timestamp in contact %d %d" a b
          else if s >= e then fail "empty or inverted interval [%g, %g)" s e
          else begin
            let key = contact_key a b s e in
            match Hashtbl.find_opt seen key with
            | Some first -> fail "duplicate contact %S (first seen at line %d)" line first
            | None ->
              Hashtbl.add seen key lineno;
              Ok (lineno + 1, (a, b, s, e, lineno) :: acc)
          end
        | _ -> fail "unparseable contact %S" line)
      | _ -> fail "expected 'id1 id2 t_start t_end'"
    end
  in
  let rec fold state = function
    | [] -> Ok state
    | line :: rest -> (
      match parse_line state line with Ok state -> fold state rest | Error _ as err -> err)
  in
  match fold (1, []) lines with
  | Error msg -> Error msg
  | Ok (_, []) -> Error "no contacts found"
  | Ok (_, raw) -> (
    (* Shift 1-based ids down when id 0 never appears. *)
    let min_id =
      List.fold_left (fun acc (a, b, _, _, _) -> Int.min acc (Int.min a b)) max_int raw
    in
    let shift = if min_id >= 1 then min_id else 0 in
    let t0 = List.fold_left (fun acc (_, _, s, _, _) -> Float.min acc s) Float.infinity raw in
    let raw = List.map (fun (a, b, s, e, ln) -> (a - shift, b - shift, s -. t0, e -. t0, ln)) raw in
    let max_id =
      List.fold_left (fun acc (a, b, _, _, _) -> Int.max acc (Int.max a b)) 0 raw
    in
    let horizon = List.fold_left (fun acc (_, _, _, e, _) -> Float.max acc e) 0. raw in
    let range_error =
      match n_nodes with
      | Some n when max_id >= n ->
        List.find_map
          (fun (a, b, _, _, ln) ->
            if Int.max a b >= n then
              Some
                (Printf.sprintf
                   "line %d: node id %d exceeds the requested population of %d%s" ln
                   (Int.max a b + shift) n
                   (if shift > 0 then Printf.sprintf " (ids shifted down by %d)" shift else ""))
            else None)
          (List.rev raw)
      | _ -> None
    in
    match range_error with
    | Some msg -> Error msg
    | None -> (
      let n = match n_nodes with Some n -> n | None -> max_id + 1 in
      match
        List.map (fun (a, b, t_start, t_end, _) -> Contact.make ~a ~b ~t_start ~t_end) raw
      with
      | exception Invalid_argument msg -> Error msg
      | contacts -> (
        match Trace.create ~n_nodes:n ~horizon contacts with
        | exception Invalid_argument msg -> Error msg
        | trace -> Ok trace)))

let load_whitespace ?n_nodes path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let read () = really_input_string ic (in_channel_length ic) in
    let text = Fun.protect ~finally:(fun () -> close_in ic) read in
    of_whitespace ?n_nodes text
