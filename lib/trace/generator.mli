(** Synthetic pocket-switched-network trace generator.

    The paper's iMote traces (Infocom'06, CoNExT'06) are not publicly
    redistributable, so experiments run on synthetic traces engineered
    to reproduce the statistical structure the paper measures and then
    leans on:

    - per-node total contact counts approximately {e uniform} on
      (0, max) — the Fig. 7 observation that powers all of §5.2;
    - a {e location model}: the venue has a small number of locations
      (session rooms, hallway, demo area); mobile nodes move between
      them with exponential dwell times, stationary nodes are pinned to
      one; only co-located nodes can be in contact. This fragmentation
      is what gives the paper's long optimal path durations (Fig. 4a) —
      a uniformly mixing population would deliver everything within a
      couple of steps;
    - pairwise contacts as Poisson processes (while co-located) with
      rate proportional to the product of endpoint sociabilities, making
      each node's total contact rate proportional to its sociability
      draw, with an exact two-pass calibration of the population mean;
    - exponential-ish contact durations cut short by room changes,
      optional 120 s Bluetooth inquiry-scan quantisation, and an
      optional end-of-window intensity drop-off mirroring the
      5:30-6:00 pm dip in the paper's Fig. 1.

    Everything is driven by an explicit {!Psn_prng.Rng.t}, so a seed
    fully determines the trace. *)

type profile =
  | Flat  (** Constant aggregate intensity over the window. *)
  | Dropoff of { from_frac : float; factor : float }
      (** Intensity multiplied by [factor] from [from_frac * horizon]
          onwards; models the end-of-afternoon dip. Requires
          [0 < from_frac < 1] and [0 <= factor <= 1]. *)

type config = {
  n_mobile : int;  (** Participant-carried devices. *)
  n_stationary : int;  (** Venue-fixed devices. *)
  horizon : float;  (** Window length in seconds (paper: 10800). *)
  mean_contacts : float;
      (** Target mean per-node contact count over the window; per-node
          counts then spread approximately uniformly on (0, 2 * mean). *)
  sociability_floor : float;
      (** Lower bound of the mobile sociability draw as a fraction of
          the maximum (keeps every node reachable; the paper's 'out'
          nodes with rates "quite close to zero" correspond to a small
          floor). *)
  n_locations : int;  (** Venue rooms/areas; must be >= 1. *)
  dwell : Psn_prng.Dist.t;
      (** Time a mobile node stays in one location before moving. *)
  away_prob : float;
      (** Probability that a mobile node's next move leaves the venue
          entirely for one dwell period (no contacts while away) —
          models participants stepping out, as real traces show. *)
  duration : Psn_prng.Dist.t;  (** Contact-duration distribution. *)
  profile : profile;
  scan_interval : float option;
      (** When [Some q], contact boundaries are quantised up to the next
          multiple of [q], modelling periodic inquiry scans. *)
}

val default : config
(** 78 mobile + 20 stationary nodes, 3 h horizon, mean 180 contacts,
    8 locations with mean 1500 s dwell, Exp(1/120 s) durations truncated
    to \[10 s, 1800 s\], flat profile, no scan quantisation. Calibrated
    so that the Fig. 4 statistics match the paper's shape (≈ a quarter
    of optimal paths longer than 1000 s, 97% of explosion times within
    150 s). *)

val validate_config : config -> (unit, string) result
(** Check parameter sanity without generating. *)

val sociabilities : config -> Psn_prng.Rng.t -> float array
(** The per-node sociability draw the generator would use (exposed for
    tests and for the inhomogeneous model): mobile nodes uniform on
    [\[floor, 1\]], stationary nodes uniform on [\[0.6, 1\]]. Consumes
    the same stream prefix as {!generate}. *)

val generate : ?rng:Psn_prng.Rng.t -> config -> Trace.t
(** Generate one trace. Raises [Invalid_argument] if the configuration
    fails {!validate_config}. Default rng is seeded with 42. *)

type segment = { loc : int;  (** Location index; [-1] = away from the venue. *) s : float; e : float }

type generated = {
  trace : Trace.t;
  weights : float array;  (** The sociability draw behind each node's rate. *)
  timelines : segment list array;  (** Each node's whereabouts over the window. *)
}

val generate_full : ?rng:Psn_prng.Rng.t -> config -> generated
(** As {!generate} but also returns the hidden mobility state, for
    validation (every contact must happen while its endpoints share a
    location) and for visualisation. [generate] is [generate_full]
    restricted to the trace; both produce identical traces for the same
    rng state. *)
