(** Trace serialisation.

    A plain-text format close to what iMote post-processing pipelines
    emit, so externally collected traces can be dropped in:

    {v
    # psn-trace v1
    # nodes 98
    # horizon 10800
    # kind 3 stationary          (one line per non-mobile node)
    a,b,t_start,t_end            (one line per contact, seconds)
    v} *)

val to_string : Trace.t -> string
(** Serialise. *)

val of_string : string -> (Trace.t, string) result
(** Parse; [Error] carries a line-numbered message. Beyond shape, the
    parser rejects non-finite or inverted contact intervals, a
    non-finite horizon header, duplicate contact lines (endpoint order
    ignored; the message names the first occurrence), and node ids
    outside the '# nodes' population. The result is validated with
    {!Trace.validate}. *)

val save : Trace.t -> path:string -> unit
(** Write to a file. Raises [Sys_error] on I/O failure. *)

val load : path:string -> (Trace.t, string) result
(** Read from a file; I/O failures are folded into [Error]. *)

val of_whitespace : ?n_nodes:int -> string -> (Trace.t, string) result
(** Parse the whitespace-separated format used by most published
    contact-trace releases (CRAWDAD/Haggle post-processing):

    {v id1  id2  t_start  t_end v}

    one contact per line, [#]-comments and blank lines ignored. Node
    ids may start at 0 or 1 (1-based inputs are shifted down when no id
    0 appears); [n_nodes] defaults to the largest id seen + 1, the
    horizon to the largest contact end. Timestamps are re-based so the
    earliest contact starts at 0.

    Malformed lines — negative ids, self-contacts, non-finite
    timestamps, empty or inverted intervals, duplicates, ids beyond a
    requested [n_nodes] — are rejected with a line-numbered [Error]. *)

val load_whitespace : ?n_nodes:int -> string -> (Trace.t, string) result
(** [load_whitespace path]: {!of_whitespace} from a file. *)
