(** Dataset presets mirroring the paper's four measurement windows.

    Each preset pairs a generator configuration with a fixed seed, so
    "Infocom'06 9-12" always denotes the same synthetic trace. Per-node
    contact-count ranges are calibrated to the paper's Fig. 7 (Infocom
    spreads to ≈450 contacts per 3 h window, CoNExT to ≈250), and the
    afternoon windows carry the 5:30-6:00 pm intensity dip visible in
    Fig. 1 (b) and (d). *)

type t = {
  name : string;  (** e.g. ["infocom06-9-12"]. *)
  label : string;  (** Human title, e.g. ["Infocom 06 9AM-12PM"]. *)
  config : Generator.config;
  seed : int64;
}

val infocom06_am : t
val infocom06_pm : t
val conext06_am : t
val conext06_pm : t

val all : t list
(** The four windows, in the paper's order. *)

val find : string -> (t, string) result
(** Look a preset up by [name]; the error lists valid names. *)

val generate : ?seed:int64 -> t -> Trace.t
(** Materialise the trace ([seed] overrides the preset's seed, for
    multi-run averaging). *)
