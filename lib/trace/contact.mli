(** A single contact record.

    A contact is a maximal interval during which two devices could
    exchange data. As in the paper, contacts are symmetric: when A logs
    a contact with B we assume data can flow both ways, so records are
    normalised with [a < b]. *)

type t = private {
  a : Node.id;  (** Smaller endpoint. *)
  b : Node.id;  (** Larger endpoint; [a < b] always holds. *)
  t_start : float;  (** Contact start, seconds from trace origin. *)
  t_end : float;  (** Contact end; [t_start < t_end]. *)
}

val make : a:Node.id -> b:Node.id -> t_start:float -> t_end:float -> t
(** Normalising constructor: swaps endpoints if needed. Raises
    [Invalid_argument] if [a = b], either id is negative, times are not
    finite, or [t_end <= t_start]. *)

val duration : t -> float
(** [t_end -. t_start]. *)

val involves : t -> Node.id -> bool
(** Whether the node is one of the endpoints. *)

val peer : t -> Node.id -> Node.id
(** [peer c n] is the other endpoint. Raises [Invalid_argument] if [n]
    is not an endpoint. *)

val overlaps : t -> t0:float -> t1:float -> bool
(** Whether the contact interval intersects [\[t0, t1)]. *)

val active_at : t -> float -> bool
(** Whether [time] falls in [\[t_start, t_end)]. *)

val compare_by_start : t -> t -> int
(** Chronological order by start time, tie-broken by end time then
    endpoints, so sorting is deterministic. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** ["n3<->n17 [120.0, 310.5)"]. *)
