type t = {
  n_nodes : int;
  horizon : float;
  kinds : Node.kind array;
  contacts : Contact.t array;  (* sorted by Contact.compare_by_start *)
}

let create ~n_nodes ~horizon ?kinds contact_list =
  if n_nodes <= 0 then invalid_arg "Trace.create: need at least one node";
  if not (Float.is_finite horizon && horizon > 0.) then
    invalid_arg "Trace.create: horizon must be finite and positive";
  let kinds =
    match kinds with
    | None -> Array.make n_nodes Node.Mobile
    | Some ks ->
      if Array.length ks <> n_nodes then
        invalid_arg "Trace.create: kinds length must equal n_nodes";
      Array.copy ks
  in
  let clip (c : Contact.t) =
    if c.Contact.a >= n_nodes || c.Contact.b >= n_nodes then
      invalid_arg "Trace.create: contact references node outside population";
    if c.Contact.t_start < 0. || c.Contact.t_start >= horizon then
      invalid_arg "Trace.create: contact starts outside [0, horizon)";
    if c.Contact.t_end > horizon then
      Contact.make ~a:c.Contact.a ~b:c.Contact.b ~t_start:c.Contact.t_start ~t_end:horizon
    else c
  in
  let contacts = Array.of_list (List.map clip contact_list) in
  Array.sort Contact.compare_by_start contacts;
  { n_nodes; horizon; kinds; contacts }

let n_nodes t = t.n_nodes
let horizon t = t.horizon
let kinds t = Array.copy t.kinds

let kind t id =
  if id < 0 || id >= t.n_nodes then invalid_arg "Trace.kind: node out of range";
  t.kinds.(id)

let contacts t = Array.copy t.contacts
let n_contacts t = Array.length t.contacts
let iter_contacts t f = Array.iter f t.contacts
let fold_contacts t ~init ~f = Array.fold_left f init t.contacts

let contacts_in_window t ~t0 ~t1 =
  Array.to_list t.contacts |> List.filter (fun c -> Contact.overlaps c ~t0 ~t1)

let contact_counts t =
  let counts = Array.make t.n_nodes 0 in
  Array.iter
    (fun (c : Contact.t) ->
      counts.(c.Contact.a) <- counts.(c.Contact.a) + 1;
      counts.(c.Contact.b) <- counts.(c.Contact.b) + 1)
    t.contacts;
  counts

let contact_rate t id =
  if id < 0 || id >= t.n_nodes then invalid_arg "Trace.contact_rate: node out of range";
  let count = ref 0 in
  Array.iter (fun c -> if Contact.involves c id then incr count) t.contacts;
  float_of_int !count /. t.horizon

let contact_rates t =
  let counts = contact_counts t in
  Array.map (fun c -> float_of_int c /. t.horizon) counts

let median_rate t = Psn_stats.Quantile.median (contact_rates t)

let degree t id =
  if id < 0 || id >= t.n_nodes then invalid_arg "Trace.degree: node out of range";
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun c -> if Contact.involves c id then Hashtbl.replace seen (Contact.peer c id) ())
    t.contacts;
  Hashtbl.length seen

let contact_time_series t ~bin =
  let starts = Array.to_seq t.contacts |> Seq.map (fun (c : Contact.t) -> c.Contact.t_start) in
  Psn_stats.Timeseries.bin_events ~t0:0. ~t1:t.horizon ~bin starts

let restrict t ~t0 ~t1 =
  if not (t0 >= 0. && t1 <= t.horizon && t0 < t1) then
    invalid_arg "Trace.restrict: window must satisfy 0 <= t0 < t1 <= horizon";
  let clipped =
    Array.to_list t.contacts
    |> List.filter_map (fun (c : Contact.t) ->
           if not (Contact.overlaps c ~t0 ~t1) then None
           else
             let s = Float.max c.Contact.t_start t0 and e = Float.min c.Contact.t_end t1 in
             if s < e then
               Some (Contact.make ~a:c.Contact.a ~b:c.Contact.b ~t_start:(s -. t0) ~t_end:(e -. t0))
             else None)
  in
  create ~n_nodes:t.n_nodes ~horizon:(t1 -. t0) ~kinds:t.kinds clipped

let shift_contact offset (c : Contact.t) =
  Contact.make ~a:c.Contact.a ~b:c.Contact.b ~t_start:(c.Contact.t_start +. offset)
    ~t_end:(c.Contact.t_end +. offset)

let require_same_population a b ~what =
  if a.n_nodes <> b.n_nodes then
    invalid_arg (Printf.sprintf "Trace.%s: traces have different populations" what)

let concat a b =
  require_same_population a b ~what:"concat";
  let shifted = Array.to_list b.contacts |> List.map (shift_contact a.horizon) in
  create ~n_nodes:a.n_nodes ~horizon:(a.horizon +. b.horizon) ~kinds:a.kinds
    (Array.to_list a.contacts @ shifted)

let merge a b =
  require_same_population a b ~what:"merge";
  create ~n_nodes:a.n_nodes
    ~horizon:(Float.max a.horizon b.horizon)
    ~kinds:a.kinds
    (Array.to_list a.contacts @ Array.to_list b.contacts)

let validate t =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if Option.is_none !problem then problem := Some s) fmt in
  if Array.length t.kinds <> t.n_nodes then fail "kinds length mismatch";
  Array.iteri
    (fun i (c : Contact.t) ->
      if c.Contact.a < 0 || c.Contact.b >= t.n_nodes then fail "contact %d: node out of range" i;
      if c.Contact.a >= c.Contact.b then fail "contact %d: endpoints not normalised" i;
      if c.Contact.t_start < 0. || c.Contact.t_end > t.horizon then
        fail "contact %d: interval outside trace" i;
      if i > 0 && Contact.compare_by_start t.contacts.(i - 1) c > 0 then
        fail "contact %d: not sorted" i)
    t.contacts;
  match !problem with None -> Ok () | Some msg -> Error msg

let pp_stats ppf t =
  let counts = Array.map float_of_int (contact_counts t) in
  let q s = Psn_stats.Quantile.quantile counts s in
  let stationary =
    Array.fold_left
      (fun acc k -> if Node.equal_kind k Node.Stationary then acc + 1 else acc)
      0 t.kinds
  in
  Format.fprintf ppf
    "trace: %d nodes (%d stationary), horizon %.0f s, %d contacts;@ per-node contacts: min %.0f, q1 %.0f, median %.0f, q3 %.0f, max %.0f"
    t.n_nodes stationary t.horizon (n_contacts t) (q 0.) (q 0.25) (q 0.5) (q 0.75) (q 1.)
