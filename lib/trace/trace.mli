(** A contact trace: the fundamental dataset of the study.

    An immutable collection of {!Contact.t} records over a fixed node
    population and time horizon, sorted chronologically, together with
    the per-node metadata (mobile/stationary) and the query operations
    every analysis needs: per-node contact counts and rates (the
    quantity that drives all of §5.2), window restriction, and the
    Fig. 1 time series. *)

type t

val create : n_nodes:int -> horizon:float -> ?kinds:Node.kind array -> Contact.t list -> t
(** Build a trace. Contacts are sorted internally; they must reference
    nodes in [\[0, n_nodes)] and lie within [\[0, horizon)] (ends may be
    clipped to the horizon). [kinds] defaults to all-[Mobile] and must
    have length [n_nodes] when given. Raises [Invalid_argument] on any
    violation. *)

val n_nodes : t -> int
val horizon : t -> float

val kinds : t -> Node.kind array
(** Fresh copy of per-node kinds. *)

val kind : t -> Node.id -> Node.kind

val contacts : t -> Contact.t array
(** Fresh copy of all contacts, sorted by {!Contact.compare_by_start}. *)

val n_contacts : t -> int

val iter_contacts : t -> (Contact.t -> unit) -> unit
(** Chronological iteration without copying. *)

val fold_contacts : t -> init:'acc -> f:('acc -> Contact.t -> 'acc) -> 'acc

val contacts_in_window : t -> t0:float -> t1:float -> Contact.t list
(** Contacts whose interval intersects [\[t0, t1)], chronological. *)

val contact_counts : t -> int array
(** Per-node number of contacts over the whole trace — the x-axis of
    the paper's Fig. 7. Each contact counts once for each endpoint. *)

val contact_rate : t -> Node.id -> float
(** Contacts per second for one node: count / horizon. This is the
    λ_i of §5.2. *)

val contact_rates : t -> float array

val median_rate : t -> float
(** Median of {!contact_rates} — the paper's in/out split point. *)

val degree : t -> Node.id -> int
(** Number of distinct peers the node ever contacts. *)

val contact_time_series : t -> bin:float -> Psn_stats.Timeseries.t
(** Contact start events binned over the horizon (Fig. 1 uses 60 s
    bins). *)

val restrict : t -> t0:float -> t1:float -> t
(** Sub-trace of contacts intersecting [\[t0, t1)], clipped to the
    window and re-based so the new trace starts at time 0. Node
    population is preserved. *)

val concat : t -> t -> t
(** [concat morning afternoon] appends the second trace after the first
    in time (its timestamps shifted by the first's horizon) — e.g. to
    build a full conference day from session windows. Both traces must
    have the same population; raises [Invalid_argument] otherwise.
    Kinds are taken from the first trace. *)

val merge : t -> t -> t
(** [merge a b] overlays two traces on the same population and time
    axis (e.g. observed contacts from two sensor modalities). The
    horizon is the larger of the two. Raises [Invalid_argument] when
    populations differ. *)

val validate : t -> (unit, string) result
(** Re-checks every invariant (sortedness, bounds, id ranges); used by
    I/O and property tests. *)

val pp_stats : Format.formatter -> t -> unit
(** One-paragraph summary: population, horizon, contact count, per-node
    contact-count quartiles. *)
