type t = { a : Node.id; b : Node.id; t_start : float; t_end : float }

let make ~a ~b ~t_start ~t_end =
  if a = b then invalid_arg "Contact.make: self-contact";
  if a < 0 || b < 0 then invalid_arg "Contact.make: negative node id";
  if not (Float.is_finite t_start && Float.is_finite t_end) then
    invalid_arg "Contact.make: non-finite time";
  if not (t_start < t_end) then invalid_arg "Contact.make: empty or inverted interval";
  let a, b = if a < b then (a, b) else (b, a) in
  { a; b; t_start; t_end }

let duration c = c.t_end -. c.t_start
let involves c n = c.a = n || c.b = n

let peer c n =
  if n = c.a then c.b
  else if n = c.b then c.a
  else invalid_arg "Contact.peer: node is not an endpoint"

let overlaps c ~t0 ~t1 = c.t_start < t1 && c.t_end > t0
let active_at c time = time >= c.t_start && time < c.t_end

let compare_by_start x y =
  let c = Float.compare x.t_start y.t_start in
  if c <> 0 then c
  else
    let c = Float.compare x.t_end y.t_end in
    if c <> 0 then c
    else
      let c = Int.compare x.a y.a in
      if c <> 0 then c else Int.compare x.b y.b

let equal x y = compare_by_start x y = 0 && x.a = y.a && x.b = y.b

let pp ppf c = Format.fprintf ppf "%a<->%a [%.1f, %.1f)" Node.pp c.a Node.pp c.b c.t_start c.t_end
