(* psn: command-line interface to the PSN path-diversity library.

   Subcommands: generate, info, paths, explosion, simulate, resilience,
   serve, experiment, store, profile, metrics, model. Run `psn --help`
   or `psn <cmd> --help` for details. *)

open Cmdliner

(* Exit codes (documented in the README): 0 success, 1 runtime
   failure, 2 usage error (bad flag or flag value, also cmdliner's
   own parse errors), 3 store corruption found by `store verify`,
   128+n terminated by signal n (130 SIGINT, 143 SIGTERM), 170 an
   injected --failpoints crash. *)
let exit_runtime = 1
let exit_usage_code = 2
let exit_corrupt = 3

let exit_err msg =
  Printf.eprintf "psn: %s\n" msg;
  exit exit_runtime

(* Bad flag values are usage errors, same class as cmdliner's parse
   errors — distinct from runtime failures so scripts can tell a typo
   from a broken run. *)
let exit_usage msg =
  Printf.eprintf "psn: %s\n" msg;
  exit exit_usage_code

(* Library validation errors (Invalid_argument) and I/O failures
   (Sys_error) triggered by user-supplied values must reach the user as
   one stderr line and a non-zero exit, not a backtrace. *)
let or_die f =
  match f () with
  | v -> v
  | exception Invalid_argument msg -> exit_err msg
  | exception Sys_error msg -> exit_err msg
  | exception (Core.Failpoint.Injected _ as ex) -> exit_err (Core.Failpoint.describe ex)

(* --- shared arguments --- *)

let dataset_arg =
  let doc =
    "Dataset preset to use. One of: "
    ^ String.concat ", " (List.map (fun d -> d.Core.Dataset.name) Core.Dataset.all)
    ^ "."
  in
  Arg.(value & opt string "infocom06-9-12" & info [ "d"; "dataset" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "Override the preset's random seed." in
  Arg.(value & opt (some int64) None & info [ "seed" ] ~docv:"SEED" ~doc)

let trace_arg =
  let doc = "Read the contact trace from $(docv) instead of generating a preset." in
  Arg.(value & opt (some file) None & info [ "t"; "trace" ] ~docv:"FILE" ~doc)

let resolve_trace dataset_name seed trace_path =
  match trace_path with
  | Some path -> (
    (* native format first, then the CRAWDAD-style whitespace format *)
    match Core.Trace_io.load ~path with
    | Ok trace -> (Printf.sprintf "file:%s" path, trace)
    | Error native_err -> (
      match Core.Trace_io.load_whitespace path with
      | Ok trace -> (Printf.sprintf "file:%s" path, trace)
      | Error ws_err ->
        exit_err
          (Printf.sprintf "cannot load %s:\n  as psn-trace: %s\n  as whitespace trace: %s" path
             native_err ws_err)))
  | None -> (
    match Core.Dataset.find dataset_name with
    | Error msg -> exit_err msg
    | Ok d -> (d.Core.Dataset.label, Core.Dataset.generate ?seed d))

let k_arg =
  let doc = "Enumeration parameter k (per-node retention and stop threshold)." in
  Arg.(value & opt int 2000 & info [ "k" ] ~docv:"K" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for multi-seed simulation and multi-message enumeration sweeps. \
     Defaults to the number of cores; results are identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs = function
  | None -> Core.Parallel.default_jobs ()
  | Some j when j >= 1 -> j
  | Some _ -> exit_usage "--jobs must be at least 1"

let chunk_arg =
  let doc =
    "Tasks claimed per scheduling grab in parallel sweeps. Defaults to a heuristic \
     (~4 chunks per worker); results are identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"N" ~doc)

let resolve_chunk = function
  | None -> None
  | Some c when c >= 1 -> Some c
  | Some _ -> exit_usage "--chunk must be at least 1"

let store_arg =
  let doc =
    "Memoize results in the content-addressed store at $(docv) (created if missing). \
     Entries already present are replayed bit-identically instead of recomputed; see \
     'psn store --help' for maintenance."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let resolve_store ?telemetry =
  Option.map (fun dir -> or_die (fun () -> Core.Store.open_ ?telemetry ~dir ()))

(* Run [f] with the opened store (if any) and report what the store
   contributed to this invocation. *)
let with_store_report store f =
  match store with
  | None -> f None
  | Some st ->
    let before = Core.Store.stats st in
    let r = f (Some st) in
    let after = Core.Store.stats st in
    Format.printf "store %s: %Ld hit(s), %Ld miss(es) this run; %d entries (%d bytes)@."
      (Core.Store.dir st)
      (Int64.sub after.Core.Store.hits before.Core.Store.hits)
      (Int64.sub after.Core.Store.misses before.Core.Store.misses)
      after.Core.Store.entries after.Core.Store.bytes;
    r

(* --- robustness: failpoints, retries, checkpoint/resume --- *)

let failpoints_arg =
  let doc =
    "Deterministic fault injection: comma-separated $(i,site=action) rules where action is \
     one of off, error, flaky or crash, optionally qualified with @N (Nth hit), *N (while \
     the retry attempt is below N) or %P (probability per hit, hashed from the seed). An \
     injected crash exits with code 170 and no cleanup; see DESIGN.md for the site list."
  in
  Arg.(value & opt (some string) None & info [ "failpoints" ] ~docv:"SPEC" ~doc)

let failpoint_seed_arg =
  let doc = "Seed of probabilistic ($(i,%P)) failpoint verdicts." in
  Arg.(value & opt int64 0L & info [ "failpoint-seed" ] ~docv:"SEED" ~doc)

let install_failpoints spec fp_seed =
  match spec with
  | None -> ()
  | Some s -> (
    match Core.Failpoint.parse ~seed:fp_seed s with
    | Ok plan -> Core.Failpoint.install plan
    | Error msg -> exit_usage msg)

let retries_arg =
  let doc =
    "Retry a task that failed with a transient error up to $(docv) more times \
     (deterministic backoff). Permanent failures are reported, never retried."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let resolve_retries r = if r >= 0 then r else exit_usage "--retries must be non-negative"

let checkpoint_arg =
  let doc =
    "Persist completed results to the --store every $(docv) tasks, so a killed sweep \
     loses at most one round of work. 0 disables checkpointing; the default is 32 \
     whenever --store is given."
  in
  Arg.(value & opt (some int) None & info [ "checkpoint" ] ~docv:"N" ~doc)

let resolve_checkpoint ~store = function
  | Some c when c >= 0 -> c
  | Some _ -> exit_usage "--checkpoint must be non-negative"
  | None -> if Option.is_some store then 32 else 0

let resume_flag =
  let doc =
    "Resume an interrupted sweep: cells already checkpointed in the --store replay \
     bit-identically, only the missing ones are recomputed. Requires --store; the \
     combined output equals an uninterrupted run's."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let check_resume ~store resume =
  if resume && Option.is_none store then
    exit_usage "--resume requires --store DIR (checkpoints live in the store)"

(* Sweep subcommands: catch the cooperative-interrupt exception raised
   at checkpoint boundaries, flush telemetry (so --trace/--profile
   still produce output) and exit with the conventional 128+signal. *)
let run_sweep ~finish f =
  Core.Interrupt.install ();
  match f () with
  | () -> ()
  | exception Core.Interrupt.Interrupted n ->
    Printf.eprintf "psn: interrupted by signal %d; completed work is checkpointed\n%!" n;
    finish ();
    exit (Core.Interrupt.exit_code n)

(* --- telemetry --- *)

(* Atomic text write (temp + rename): a scraper or validator reading
   the path never observes a half-written exposition. *)
let write_text_atomic ~path text =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc text);
  Sys.rename tmp path

let metrics_arg =
  let doc =
    "After the run, write an OpenMetrics text exposition of its telemetry (counters, \
     value histograms, span-duration histograms) to $(docv). Value metrics are \
     bit-identical for any --jobs and --chunk; wall-time families carry a \
     span-duration/elapsed help line. Check the format with 'psn metrics check'."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_out_arg names =
  let doc =
    "Write a Chrome trace-event JSON profile of this invocation to $(docv). Open it in \
     Perfetto (ui.perfetto.dev) or chrome://tracing; parallel sections render as one \
     track per worker domain."
  in
  Arg.(value & opt (some string) None & info names ~docv:"FILE" ~doc)

let profile_flag =
  let doc =
    "After the results, print a profile report: span tree with per-phase total/self \
     times, counters, gauge digests and the store hit rate."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

(* Recording is wired up only when asked for: with neither --trace nor
   --profile the sink stays null, so the instrumented hot paths cost a
   pattern match. [finish] must run after all of the command's work and
   normal output. *)
type telemetry_ctx = {
  sink : Core.Telemetry.sink;
  finish : store:Core.Store.t option -> unit;
}

let telemetry_ctx ~command ~trace_out ~profile ~metrics =
  if Option.is_none trace_out && not profile && Option.is_none metrics then
    { sink = Core.Telemetry.Sink.null; finish = (fun ~store:_ -> ()) }
  else begin
    let c = Core.Telemetry.create () in
    let sink = Core.Telemetry.sink c in
    (* One root span over everything the command does, so the profile
       report's coverage line reflects the whole invocation. *)
    Core.Telemetry.begin_span sink
      ~args:[ ("command", Core.Telemetry.Str command) ]
      "psn.command";
    let finish ~store =
      Core.Telemetry.end_span sink;
      let summary = Core.Telemetry.close c in
      (match trace_out with
      | None -> ()
      | Some path ->
        or_die (fun () -> Core.Chrome.save summary ~path);
        Format.printf "wrote Chrome trace to %s@." path);
      (match metrics with
      | None -> ()
      | Some path ->
        or_die (fun () ->
            write_text_atomic ~path
              (Core.Openmetrics.render (Core.Openmetrics.of_summary summary)));
        Format.printf "wrote metrics to %s@." path);
      if profile then begin
        print_string (Core.Profile.render ~title:(Printf.sprintf "psn %s" command) summary);
        match store with
        | None -> ()
        | Some st -> (
          let s = Core.Store.stats st in
          match s.Core.Store.hit_rate with
          | Some rate ->
            Format.printf "store hit rate: %.1f%% (%Ld of %Ld lookups)@." (100. *. rate)
              s.Core.Store.hits
              (Int64.add s.Core.Store.hits s.Core.Store.misses)
          | None -> Format.printf "store hit rate: n/a (no lookups yet)@.")
      end
    in
    { sink; finish }
  end

(* --- generate --- *)

let generate_cmd =
  let output =
    let doc = "Output path for the trace file." in
    Arg.(value & opt string "trace.psn" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run dataset seed output =
    match Core.Dataset.find dataset with
    | Error msg -> exit_err msg
    | Ok d ->
      let trace = Core.Dataset.generate ?seed d in
      or_die (fun () -> Core.Trace_io.save trace ~path:output);
      Format.printf "wrote %s: %a@." output Core.Trace.pp_stats trace
  in
  let term = Term.(const run $ dataset_arg $ seed_arg $ output) in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic iMote-style contact trace and save it.")
    term

(* --- info --- *)

let info_cmd =
  let run dataset seed trace_path =
    let label, trace = resolve_trace dataset seed trace_path in
    Format.printf "%s@.%a@." label Core.Trace.pp_stats trace;
    let classify = Core.Classify.of_trace trace in
    Format.printf "median contact rate: %.5f /s (%d 'in' nodes)@."
      (Core.Classify.median_rate classify)
      (Core.Classify.n_in classify);
    let ts = Core.Trace.contact_time_series trace ~bin:60. in
    Format.printf "aggregate: %.1f contacts/min, stability cv=%.3f@."
      (Core.Timeseries.mean_rate ts *. 60.)
      (Core.Timeseries.stability ts)
  in
  let term = Term.(const run $ dataset_arg $ seed_arg $ trace_arg) in
  Cmd.v (Cmd.info "info" ~doc:"Print summary statistics of a trace.") term

(* --- paths --- *)

let paths_cmd =
  let src =
    Arg.(required & opt (some int) None & info [ "src" ] ~docv:"NODE" ~doc:"Source node.")
  in
  let dst =
    Arg.(required & opt (some int) None & info [ "dst" ] ~docv:"NODE" ~doc:"Destination node.")
  in
  let time =
    Arg.(value & opt float 0. & info [ "time" ] ~docv:"SECONDS" ~doc:"Message creation time.")
  in
  let limit =
    Arg.(value & opt int 10 & info [ "limit" ] ~docv:"N" ~doc:"Paths to print in full.")
  in
  let run dataset seed trace_path k src dst time limit =
    let label, trace = resolve_trace dataset seed trace_path in
    let snap = Core.Snapshot.of_trace trace in
    let config =
      { Core.Enumerate.k; max_hops = None; stop_at_total = Some k; exhaustive = false }
    in
    let result =
      try Core.Enumerate.run ~config snap ~src ~dst ~t_create:time
      with Invalid_argument msg -> exit_err msg
    in
    let summary = Core.Explosion.analyze ~n_explosion:k result in
    Format.printf "%s: message n%d -> n%d created at %.0f s@." label src dst time;
    (match summary.Core.Explosion.optimal_duration with
    | None -> Format.printf "no valid path reaches the destination within the trace@."
    | Some d ->
      Format.printf "%d path(s) enumerated; optimal duration %.0f s@."
        summary.Core.Explosion.n_arrivals d;
      (match summary.Core.Explosion.te with
      | Some te -> Format.printf "time to explosion (n*=%d): %.0f s@." k te
      | None -> ());
      Array.iteri
        (fun i (a : Core.Enumerate.arrival) ->
          if i < limit then
            Format.printf "  #%d at %.0f s (%d hops): %a@." (i + 1) a.Core.Enumerate.time
              (Core.Path.transfers a.Core.Enumerate.path)
              Core.Path.pp a.Core.Enumerate.path)
        result.Core.Enumerate.arrivals)
  in
  let term =
    Term.(const run $ dataset_arg $ seed_arg $ trace_arg $ k_arg $ src $ dst $ time $ limit)
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Enumerate valid forwarding paths for one message (Fig. 3 algorithm).")
    term

(* --- explosion --- *)

let explosion_cmd =
  let messages =
    Arg.(value & opt int 60 & info [ "messages" ] ~docv:"N" ~doc:"Messages to sample.")
  in
  let run dataset seed messages k jobs chunk store trace_out profile metrics failpoints fp_seed
      retries checkpoint resume =
    let retries = resolve_retries retries in
    check_resume ~store resume;
    let checkpoint = resolve_checkpoint ~store checkpoint in
    match Core.Dataset.find dataset with
    | Error msg -> exit_usage msg
    | Ok d ->
      let scale =
        {
          Core.Experiments.default_scale with
          Core.Experiments.n_messages = messages;
          k;
          n_explosion = k;
          rng_seed = Option.value seed ~default:17L;
        }
      in
      install_failpoints failpoints fp_seed;
      let ctx = telemetry_ctx ~command:"explosion" ~trace_out ~profile ~metrics in
      let store = resolve_store ~telemetry:ctx.sink store in
      run_sweep
        ~finish:(fun () -> ctx.finish ~store)
        (fun () ->
          let study =
            with_store_report store (fun store ->
                Core.Experiments.enumeration_study ~jobs:(resolve_jobs jobs)
                  ?chunk:(resolve_chunk chunk) ?store ~retries ~checkpoint ~scale
                  ~telemetry:ctx.sink d)
          in
          print_endline
            (Core.Report.render_cdfs ~title:"CDF of optimal path duration (s)"
               (Core.Experiments.fig4a [ study ]));
          print_endline
            (Core.Report.render_cdfs ~title:"CDF of time to explosion (s)"
               (Core.Experiments.fig4b [ study ]));
          print_endline
            (Core.Report.render_scatter_by_pair ~title:"T1 vs TE by pair type"
               (Core.Experiments.fig8 study));
          ctx.finish ~store)
  in
  let term =
    Term.(
      const run $ dataset_arg $ seed_arg $ messages $ k_arg $ jobs_arg $ chunk_arg $ store_arg
      $ trace_out_arg [ "trace" ] $ profile_flag $ metrics_arg $ failpoints_arg
      $ failpoint_seed_arg $ retries_arg $ checkpoint_arg $ resume_flag)
  in
  Cmd.v
    (Cmd.info "explosion" ~doc:"Measure path-explosion statistics over random messages.")
    term

(* --- simulate --- *)

let simulate_cmd =
  let algorithms =
    let doc =
      "Comma-separated algorithm names. Available: "
      ^ String.concat ", " (List.map (fun e -> e.Core.Registry.name) Core.Registry.all)
      ^ ". Default: the paper's six."
    in
    Arg.(value & opt (some string) None & info [ "a"; "algorithms" ] ~docv:"NAMES" ~doc)
  in
  let seeds = Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N" ~doc:"Runs to average.") in
  let run dataset seed trace_path algorithms seeds jobs chunk store trace_out profile metrics
      failpoints fp_seed retries checkpoint resume =
    let jobs = resolve_jobs jobs in
    let chunk = resolve_chunk chunk in
    if seeds < 1 then exit_usage "--seeds must be at least 1";
    let retries = resolve_retries retries in
    check_resume ~store resume;
    let checkpoint = resolve_checkpoint ~store checkpoint in
    let entries =
      match algorithms with
      | None -> Core.Registry.paper_six
      | Some spec ->
        String.split_on_char ',' spec
        |> List.map (fun name ->
               match Core.Registry.find (String.trim name) with
               | Ok e -> e
               | Error msg -> exit_usage msg)
    in
    let label, trace = resolve_trace dataset seed trace_path in
    install_failpoints failpoints fp_seed;
    let ctx = telemetry_ctx ~command:"simulate" ~trace_out ~profile ~metrics in
    let workload = Core.Workload.paper_spec ~n_nodes:(Core.Trace.n_nodes trace) in
    let spec = { Core.Runner.workload; seeds = Core.Runner.default_seeds seeds } in
    (* One batch over the whole algorithm × seed grid. *)
    let store = resolve_store ~telemetry:ctx.sink store in
    run_sweep
      ~finish:(fun () -> ctx.finish ~store)
      (fun () ->
        let cells =
          with_store_report store (fun store ->
              let stores =
                Option.map
                  (fun st ->
                    let trace_hash = Core.Store_key.trace_hash trace in
                    List.map
                      (fun (e : Core.Registry.entry) ->
                        Core.Store_memo.runner_cache ~store:st ~trace_hash ~workload
                          ~algo:e.Core.Registry.name ())
                      entries)
                  store
              in
              or_die (fun () ->
                  Core.Runner.outcomes_many_result ~jobs ?chunk ?stores ~retries
                    ~checkpoint ~telemetry:ctx.sink ~trace ~spec
                    ~factories:
                      (List.map
                         (fun (e : Core.Registry.entry) -> e.Core.Registry.factory)
                         entries)
                    ()))
        in
        (* A failed (algorithm, seed) cell costs one FAILED line, never
           the table; an algorithm whose every seed failed has nothing
           to pool and is honestly absent from it. *)
        let rows =
          List.concat
            (List.map2
               (fun (e : Core.Registry.entry) cell_list ->
                 match List.filter_map Result.to_option cell_list with
                 | [] -> []
                 | outs -> [ (e.Core.Registry.label, Core.Metrics.pool outs) ])
               entries cells)
        in
        let failed =
          List.concat
            (List.map2
               (fun (e : Core.Registry.entry) cell_list ->
                 List.concat
                   (List.map2
                      (fun seed cell ->
                        match cell with
                        | Ok (_ : Core.Engine.outcome) -> []
                        | Error ex ->
                          [ (e.Core.Registry.label, seed, Core.Failpoint.describe ex) ])
                      spec.Core.Runner.seeds cell_list))
               entries cells)
        in
        print_endline
          (Core.Report.render_metrics
             ~title:(Printf.sprintf "Forwarding performance (%s, %d seeds)" label seeds)
             rows
          ^ Core.Report.render_failed_cells ~title:"Failed simulation cells" failed);
        ctx.finish ~store)
  in
  let term =
    Term.(
      const run $ dataset_arg $ seed_arg $ trace_arg $ algorithms $ seeds $ jobs_arg $ chunk_arg
      $ store_arg $ trace_out_arg [ "trace-out" ] $ profile_flag $ metrics_arg $ failpoints_arg
      $ failpoint_seed_arg $ retries_arg $ checkpoint_arg $ resume_flag)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run forwarding algorithms over a trace and report S and D.")
    term

(* --- resilience --- *)

let resilience_cmd =
  let loss =
    Arg.(
      value & opt float 0.2
      & info [ "loss" ] ~docv:"P"
          ~doc:"Per-transfer loss probability at intensity 1 (in [0, 1)).")
  in
  let crash_rate =
    Arg.(
      value & opt float 2.
      & info [ "crash-rate" ] ~docv:"PER_HOUR"
          ~doc:"Node crashes per hour at intensity 1.")
  in
  let down_time =
    Arg.(
      value & opt float 300.
      & info [ "down-time" ] ~docv:"SECONDS" ~doc:"Mean downtime per crash, seconds.")
  in
  let jitter =
    Arg.(
      value & opt float 0.3
      & info [ "jitter" ] ~docv:"FRAC"
          ~doc:"Maximum fraction of each contact truncated at intensity 1 (in [0, 1]).")
  in
  let intensities =
    Arg.(
      value & opt string "0,0.5,1,2"
      & info [ "intensities" ] ~docv:"X,Y,..."
          ~doc:"Comma-separated intensity multipliers applied to the fault spec.")
  in
  let fault_seed =
    Arg.(
      value & opt int64 99L
      & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed of every fault decision.")
  in
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N" ~doc:"Workload runs to average per level.")
  in
  let probes =
    Arg.(
      value & opt int 40
      & info [ "probes" ] ~docv:"N"
          ~doc:"Messages whose path survival is enumerated per level.")
  in
  let run dataset seed loss crash_rate down_time jitter intensities fault_seed seeds probes jobs
      chunk store trace_out profile metrics failpoints fp_seed retries checkpoint resume =
    let jobs = resolve_jobs jobs in
    let chunk = resolve_chunk chunk in
    if seeds < 1 then exit_usage "--seeds must be at least 1";
    if probes < 1 then exit_usage "--probes must be at least 1";
    let retries = resolve_retries retries in
    check_resume ~store resume;
    let checkpoint = resolve_checkpoint ~store checkpoint in
    let base =
      {
        Core.Faults.loss;
        crash_rate = crash_rate /. 3600.;
        down_time;
        jitter;
        seed = fault_seed;
      }
    in
    (match Core.Faults.validate base with
    | Error msg -> exit_usage msg
    | Ok () -> ());
    let intensities =
      String.split_on_char ',' intensities
      |> List.map (fun s ->
             match float_of_string_opt (String.trim s) with
             | Some x when Float.is_finite x && x >= 0. -> x
             | Some _ | None -> exit_usage (Printf.sprintf "bad intensity %S" (String.trim s)))
    in
    if List.is_empty intensities then exit_usage "--intensities must name at least one level";
    match Core.Dataset.find dataset with
    | Error msg -> exit_usage msg
    | Ok d ->
      let scale =
        {
          Core.Experiments.default_scale with
          Core.Experiments.seeds;
          rng_seed = Option.value seed ~default:17L;
        }
      in
      install_failpoints failpoints fp_seed;
      let ctx = telemetry_ctx ~command:"resilience" ~trace_out ~profile ~metrics in
      let store = resolve_store ~telemetry:ctx.sink store in
      run_sweep
        ~finish:(fun () -> ctx.finish ~store)
        (fun () ->
          let study =
            with_store_report store (fun store ->
                or_die (fun () ->
                    Core.Experiments.resilience_study ~jobs ?chunk ?store ~retries ~checkpoint
                      ~scale ~base ~intensities ~path_messages:probes ~telemetry:ctx.sink d))
          in
          print_endline
            (Core.Report.render_resilience
               ~title:
                 (Printf.sprintf
                    "Resilience: the paper's six algorithms under injected faults (%s)"
                    d.Core.Dataset.label)
               study);
          ctx.finish ~store)
  in
  let term =
    Term.(
      const run $ dataset_arg $ seed_arg $ loss $ crash_rate $ down_time $ jitter $ intensities
      $ fault_seed $ seeds $ probes $ jobs_arg $ chunk_arg $ store_arg
      $ trace_out_arg [ "trace" ] $ profile_flag $ metrics_arg $ failpoints_arg
      $ failpoint_seed_arg $ retries_arg $ checkpoint_arg $ resume_flag)
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Stress-test the path-explosion robustness claim: sweep deterministic fault intensity \
          (transfer loss, node crashes, contact truncation) over all six paper algorithms and \
          report delivery, overhead and surviving path counts.")
    term

(* --- serve --- *)

let serve_cmd =
  let script =
    let doc =
      "Read protocol lines from $(docv) instead of standard input ('-'). One request per \
       line: contact events in the trace format (a,b,t_start,t_end), 'advance T', \
       'inject SRC DST [T]', 'paths SRC DST [T]', 'delivery SRC DST [T]', 'route', \
       'stats', 'metrics', 'snapshot', 'quit'; blank lines and '#' comments are skipped."
    in
    Arg.(value & opt string "-" & info [ "script" ] ~docv:"FILE" ~doc)
  in
  let span =
    Arg.(
      value & opt float 3600.
      & info [ "window" ] ~docv:"SECONDS" ~doc:"Sliding-window length in stream seconds.")
  in
  let budget =
    Arg.(
      value & opt int 200_000
      & info [ "budget" ] ~docv:"N" ~doc:"Hard cap on live contacts held in the window.")
  in
  let policy =
    Arg.(
      value
      & opt (enum [ ("drop", Core.Serve_window.Drop); ("slide", Core.Serve_window.Slide) ])
          Core.Serve_window.Slide
      & info [ "policy" ] ~docv:"drop|slide"
          ~doc:
            "What an over-budget ingest does: 'drop' rejects the incoming contact, 'slide' \
             evicts the earliest-ending live contacts to make room.")
  in
  let nodes =
    Arg.(
      value & opt int 0
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Fixed population size (contacts naming nodes beyond it are errors). 0 grows \
             the population with the stream.")
  in
  let delta =
    Arg.(
      value & opt float 10.
      & info [ "delta" ] ~docv:"SECONDS" ~doc:"Rasterisation step for 'paths' queries.")
  in
  let k =
    Arg.(
      value & opt int 64
      & info [ "k" ] ~docv:"K" ~doc:"Paths retained per node in 'paths' enumeration.")
  in
  let strategies =
    let doc =
      "Comma-separated forwarding strategies the router balances across. Available \
       (online only): "
      ^ String.concat ", " (List.map (fun e -> e.Core.Registry.name) Core.Registry.online)
      ^ ". Default: all of them."
    in
    Arg.(value & opt (some string) None & info [ "a"; "strategies" ] ~docv:"NAMES" ~doc)
  in
  let alpha =
    Arg.(
      value & opt float Core.Multipath.default_config.Core.Multipath.alpha
      & info [ "alpha" ] ~docv:"A" ~doc:"EWMA smoothing factor of the router, in (0, 1].")
  in
  let explore =
    Arg.(
      value & opt int Core.Multipath.default_config.Core.Multipath.explore
      & info [ "explore" ] ~docv:"N"
          ~doc:"Observations below which a strategy scores as optimistic (forced sampling).")
  in
  let loss =
    Arg.(
      value & opt float 0.
      & info [ "loss" ] ~docv:"P" ~doc:"Per-transfer loss probability (in [0, 1)).")
  in
  let crash_rate =
    Arg.(
      value & opt float 0.
      & info [ "crash-rate" ] ~docv:"PER_HOUR" ~doc:"Node crashes per hour.")
  in
  let down_time =
    Arg.(
      value & opt float 300.
      & info [ "down-time" ] ~docv:"SECONDS" ~doc:"Mean downtime per crash, seconds.")
  in
  let jitter =
    Arg.(
      value & opt float 0.
      & info [ "jitter" ] ~docv:"FRAC"
          ~doc:"Maximum fraction of each contact truncated (in [0, 1]).")
  in
  let fault_seed =
    Arg.(
      value & opt int64 99L
      & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Seed of every fault decision.")
  in
  let session =
    Arg.(
      value & opt string "default"
      & info [ "session" ] ~docv:"NAME"
          ~doc:"Snapshot slot name inside the --store (one live snapshot per name).")
  in
  let snapshot_every =
    Arg.(
      value & opt int 0
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Also write a snapshot after every $(docv) ingested contacts (0: only at \
             end-of-stream). Requires --store.")
  in
  let serve_resume =
    let doc =
      "Resume the --session snapshot from the --store and continue the stream where it \
       left off; replies continue byte-identically to an uninterrupted run."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let serve_jobs =
    let doc =
      "Worker domains for per-strategy query fan-out. Defaults to 1 (reusing one \
       scratch); replies are identical for any value."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let metrics_out =
    let doc =
      "Maintain an OpenMetrics text exposition of the server's value metrics at $(docv) \
       (written atomically via temp+rename, so a scraper never sees a torn file). \
       Refreshed at end-of-stream, and during the stream with --metrics-every. The \
       same exposition is available in-band through the 'metrics' protocol verb."
    in
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_every =
    let doc =
      "Also rewrite --metrics-out after every $(docv) protocol lines (0: only at \
       end-of-stream). Requires --metrics-out."
    in
    Arg.(value & opt int 0 & info [ "metrics-every" ] ~docv:"N" ~doc)
  in
  let flight_out =
    let doc =
      "Arm the flight recorder: keep a bounded ring of recent structured events \
       (protocol lines, window evictions, drops, failpoint trips, store activity) and \
       dump them to $(docv) as a post-mortem JSON on an injected crash, a terminating \
       signal or an uncaught error. Validate with 'psn metrics check --flight'."
    in
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)
  in
  let run script span budget policy nodes delta k strategies alpha explore loss crash_rate
      down_time jitter fault_seed store session snapshot_every resume jobs chunk trace_out
      profile metrics_out metrics_every flight_out failpoints fp_seed =
    if jobs < 1 then exit_usage "--jobs must be at least 1";
    let chunk = resolve_chunk chunk in
    if metrics_every < 0 then exit_usage "--metrics-every must be non-negative";
    if metrics_every > 0 && Option.is_none metrics_out then
      exit_usage "--metrics-every requires --metrics-out FILE";
    if snapshot_every < 0 then exit_usage "--snapshot-every must be non-negative";
    if snapshot_every > 0 && Option.is_none store then
      exit_usage "--snapshot-every requires --store DIR (snapshots live in the store)";
    if resume && Option.is_none store then
      exit_usage "--resume requires --store DIR (snapshots live in the store)";
    let faults =
      if Float.equal loss 0. && Float.equal crash_rate 0. && Float.equal jitter 0. then None
      else begin
        let spec =
          {
            Core.Faults.loss;
            crash_rate = crash_rate /. 3600.;
            down_time;
            jitter;
            seed = fault_seed;
          }
        in
        match Core.Faults.validate spec with
        | Error msg -> exit_usage msg
        | Ok () -> Some spec
      end
    in
    let config =
      {
        Core.Serve.window = { Core.Serve_window.span; budget; policy; nodes };
        delta;
        k;
        strategies =
          (match strategies with
          | None -> []
          | Some spec -> String.split_on_char ',' spec |> List.map String.trim);
        router = { Core.Multipath.alpha; explore };
        faults;
      }
    in
    install_failpoints failpoints fp_seed;
    (* Arm before the failpoints can trip: an injected crash dumps the
       recorder from inside the failpoint site itself. *)
    Option.iter (fun path -> Core.Flight.arm path) flight_out;
    let ctx = telemetry_ctx ~command:"serve" ~trace_out ~profile ~metrics:None in
    let store = resolve_store ~telemetry:ctx.sink store in
    let server =
      let fresh () =
        match
          Core.Serve.create ~telemetry:ctx.sink ?store ~session ~jobs ?chunk config
        with
        | Ok s -> s
        | Error msg -> exit_usage msg
      in
      if resume then begin
        let st = Option.get store in
        match Core.Store.find_blob st (Core.Store_key.named ~family:"serve-snapshot" session) with
        | None ->
          exit_err
            (Printf.sprintf "no snapshot for session %S in %s" session (Core.Store.dir st))
        | Some text -> (
          match
            Core.Serve.restore ~telemetry:ctx.sink ?store ~session ~jobs ?chunk text
          with
          | Ok s -> s
          | Error msg -> exit_err msg)
      end
      else fresh ()
    in
    let input = if String.equal script "-" then stdin else or_die (fun () -> open_in script) in
    let close_input () = if not (String.equal script "-") then close_in_noerr input in
    (* End-of-session snapshot — also the signal-drain path: every exit
       except an injected crash persists the session when a store is
       configured, so `--resume` continues byte-identically. *)
    let write_metrics () =
      match metrics_out with
      | None -> ()
      | Some path -> write_text_atomic ~path (Core.Serve.metrics_text server)
    in
    let drain () =
      (if Option.is_some store then
         match Core.Serve.write_snapshot server with
         | Ok _ -> ()
         | Error msg -> Printf.eprintf "psn: snapshot failed: %s\n%!" msg);
      write_metrics ()
    in
    let print_reply lines = List.iter print_endline lines in
    Core.Interrupt.install ();
    let last_snap = ref 0 in
    let lines_seen = ref 0 in
    let rec loop () =
      Core.Interrupt.check ();
      match input_line input with
      | exception End_of_file -> drain ()
      | line -> (
        match Core.Serve.handle server line with
        | `Stop lines ->
          print_reply lines;
          drain ()
        | `Reply lines ->
          print_reply lines;
          incr lines_seen;
          if metrics_every > 0 && !lines_seen mod metrics_every = 0 then write_metrics ();
          (if snapshot_every > 0 then begin
             let s = Core.Serve.summary server in
             let ingested = s.Core.Serve.s_ingested in
             if ingested > !last_snap && ingested mod snapshot_every = 0 then begin
               last_snap := ingested;
               match Core.Serve.write_snapshot server with
               | Ok _ -> ()
               | Error msg -> exit_err msg
             end
           end);
          loop ())
    in
    (match loop () with
    | () -> ()
    | exception Core.Interrupt.Interrupted n ->
      Printf.eprintf "psn: interrupted by signal %d; session snapshotted\n%!" n;
      Core.Flight.dump ~reason:(Printf.sprintf "terminated by signal %d" n) ();
      drain ();
      close_input ();
      ctx.finish ~store;
      exit (Core.Interrupt.exit_code n)
    | exception Invalid_argument msg | exception Sys_error msg ->
      Core.Flight.dump ~reason:(Printf.sprintf "uncaught error: %s" msg) ();
      close_input ();
      exit_err msg
    | exception (Core.Failpoint.Injected _ as ex) ->
      Core.Flight.dump ~reason:(Core.Failpoint.describe ex) ();
      close_input ();
      exit_err (Core.Failpoint.describe ex));
    close_input ();
    ctx.finish ~store
  in
  let term =
    Term.(
      const run $ script $ span $ budget $ policy $ nodes $ delta $ k $ strategies $ alpha
      $ explore $ loss $ crash_rate $ down_time $ jitter $ fault_seed $ store_arg $ session
      $ snapshot_every $ serve_resume $ serve_jobs $ chunk_arg $ trace_out_arg [ "trace" ]
      $ profile_flag $ metrics_out $ metrics_every $ flight_out $ failpoints_arg
      $ failpoint_seed_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve forwarding queries over a live contact stream: a sliding bounded window of \
          recent contacts, an adaptive multipath router balancing online strategies by \
          EWMA loss and delay, and snapshot/resume through the result store. Reads the \
          line protocol from --script or standard input; replies are byte-identical for \
          any --jobs. The 'metrics' verb (and --metrics-out) exposes live OpenMetrics \
          counters and histograms; --flight arms a crash flight recorder.")
    term

(* --- experiment --- *)

let experiment_cmd =
  let figure =
    let doc =
      "Experiment id: fig1, fig2, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, \
       fig13, fig14, fig15."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let messages =
    Arg.(
      value
      & opt int Core.Experiments.default_scale.Core.Experiments.n_messages
      & info [ "messages" ] ~docv:"N" ~doc:"Messages for enumeration experiments.")
  in
  let dump =
    Arg.(
      value & opt (some string) None
      & info [ "dump" ] ~docv:"DIR"
          ~doc:"Also write the figure's data series as gnuplot-ready .dat files into $(docv).")
  in
  let run figure dataset seed messages dump_dir jobs chunk store failpoints fp_seed retries
      checkpoint resume =
    let jobs = resolve_jobs jobs in
    let chunk = resolve_chunk chunk in
    let retries = resolve_retries retries in
    check_resume ~store resume;
    let checkpoint = resolve_checkpoint ~store checkpoint in
    match Core.Dataset.find dataset with
    | Error msg -> exit_usage msg
    | Ok d ->
      let module E = Core.Experiments in
      let module R = Core.Report in
      let dump_cdfs name cdfs =
        match dump_dir with
        | None -> ()
        | Some dir ->
          let files = Core.Export.write_cdfs ~dir ~name cdfs in
          ignore (Core.Export.write_gnuplot_script ~dir [ (name, `Lines, files) ]);
          Format.printf "(wrote %d data files under %s)@." (List.length files) dir
      in
      let dump_scatter name points =
        match dump_dir with
        | None -> ()
        | Some dir ->
          let file = Core.Export.write_scatter ~dir ~name points in
          ignore (Core.Export.write_gnuplot_script ~dir [ (name, `Points, [ file ]) ]);
          Format.printf "(wrote %s)@." file
      in
      let scale =
        {
          E.default_scale with
          E.n_messages = messages;
          rng_seed = Option.value seed ~default:17L;
        }
      in
      install_failpoints failpoints fp_seed;
      run_sweep ~finish:(fun () -> ()) (fun () ->
      let text =
        with_store_report (resolve_store store) (fun store ->
        let study =
          lazy (E.enumeration_study ~jobs ?chunk ?store ~retries ~checkpoint ~scale d)
        in
        let sim = lazy (E.sim_study ~jobs ?chunk ?store ~retries ~checkpoint ~scale d) in
        match figure with
        | "fig1" -> R.render_timeseries ~title:"Fig 1: contacts over time" (E.fig1 [ d ])
        | "fig2" -> "== Fig 2: example space-time graph ==\n" ^ E.fig2 ()
        | "fig4" ->
          let a = E.fig4a [ Lazy.force study ] and b = E.fig4b [ Lazy.force study ] in
          dump_cdfs "fig4a" a;
          dump_cdfs "fig4b" b;
          R.render_cdfs ~title:"Fig 4a: optimal path duration" a
          ^ "\n"
          ^ R.render_cdfs ~title:"Fig 4b: time to explosion" b
        | "fig5" ->
          let points = E.fig5 (Lazy.force study) in
          dump_scatter "fig5" points;
          R.render_scatter ~title:"Fig 5: T1 vs TE" points
        | "fig6" -> R.render_histogram ~title:"Fig 6: arrivals after T1" (E.fig6 (Lazy.force study))
        | "fig7" ->
          let cdfs = E.fig7 [ d ] in
          dump_cdfs "fig7" cdfs;
          R.render_cdfs ~title:"Fig 7: per-node contact counts" cdfs
        | "fig8" ->
          R.render_scatter_by_pair ~title:"Fig 8: T1 vs TE by pair type" (E.fig8 (Lazy.force study))
        | "fig9" ->
          let sim = Lazy.force sim in
          R.render_metrics ~title:"Fig 9: delay vs success" (E.fig9 sim)
          ^ R.render_failed_cells ~title:"Failed simulation cells"
              sim.E.sim_failed
        | "fig10" ->
          let cdfs = E.fig10 (Lazy.force sim) in
          dump_cdfs "fig10" cdfs;
          R.render_cdfs ~title:"Fig 10: delay distributions" cdfs
        | "fig11" ->
          R.render_cumulative ~title:"Fig 11: cumulative deliveries" (E.fig11 (Lazy.force study))
        | "fig12" ->
          R.render_fig12 ~title:"Fig 12: algorithm paths within bursts"
            (E.fig12 (Lazy.force study) ~n_examples:2)
        | "fig13" ->
          let sim = Lazy.force sim in
          R.render_metrics_by_pair ~title:"Fig 13: performance by pair type" (E.fig13 sim)
          ^ R.render_failed_cells ~title:"Failed simulation cells" sim.E.sim_failed
        | "fig14" -> R.render_hop_rates ~title:"Fig 14: hop rates" (E.fig14 (Lazy.force study))
        | "fig15" -> R.render_hop_ratios ~title:"Fig 15: hop rate ratios" (E.fig15 (Lazy.force study))
        | other -> exit_usage (Printf.sprintf "unknown experiment %S" other))
      in
      print_endline text)
  in
  let term =
    Term.(
      const run $ figure $ dataset_arg $ seed_arg $ messages $ dump $ jobs_arg $ chunk_arg
      $ store_arg $ failpoints_arg $ failpoint_seed_arg $ retries_arg $ checkpoint_arg
      $ resume_flag)
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Reproduce one figure of the paper on one dataset.") term

(* --- intercontact --- *)

let intercontact_cmd =
  let run dataset seed trace_path =
    let label, trace = resolve_trace dataset seed trace_path in
    let gaps = Core.Intercontact.aggregate_gaps trace in
    if Array.length gaps = 0 then exit_err "no repeated pair meetings in this trace";
    Format.printf "%s: %d inter-contact gaps@." label (Array.length gaps);
    List.iter
      (fun p ->
        Format.printf "  p%-3d %10.0f s@." (int_of_float (p *. 100.))
          (Core.Quantile.quantile gaps p))
      [ 0.5; 0.9; 0.99 ];
    (match Core.Intercontact.tail_exponent gaps with
    | Some alpha -> Format.printf "  Hill tail exponent: %.2f@." alpha
    | None -> Format.printf "  Hill tail exponent: (insufficient tail)@.");
    Format.printf "CCDF sample points (x, P[X>x]):@.";
    let points = Core.Intercontact.ccdf gaps in
    let step = Int.max 1 (List.length points / 10) in
    List.iteri
      (fun i (x, p) -> if i mod step = 0 then Format.printf "  %10.0f  %8.5f@." x p)
      points
  in
  let term = Term.(const run $ dataset_arg $ seed_arg $ trace_arg) in
  Cmd.v
    (Cmd.info "intercontact" ~doc:"Analyse inter-contact time distributions of a trace.")
    term

(* --- communities --- *)

let communities_cmd =
  let min_weight =
    Arg.(
      value & opt float 60.
      & info [ "min-weight" ] ~docv:"SECONDS"
          ~doc:"Ignore pairs with less than this much cumulative contact.")
  in
  let from_arg =
    Arg.(
      value & opt (some float) None
      & info [ "from" ] ~docv:"SECONDS"
          ~doc:
            "Restrict to contacts after this time. Communities in venue traces are \
             time-local (people rotate rooms), so a session-sized window shows much \
             stronger structure than the whole day.")
  in
  let until_arg =
    Arg.(
      value & opt (some float) None
      & info [ "until" ] ~docv:"SECONDS" ~doc:"Restrict to contacts before this time.")
  in
  let run dataset seed trace_path min_weight from_time until_time =
    let label, trace = resolve_trace dataset seed trace_path in
    let trace =
      match (from_time, until_time) with
      | None, None -> trace
      | t0, t1 ->
        let t0 = Option.value t0 ~default:0. in
        let t1 = Option.value t1 ~default:(Core.Trace.horizon trace) in
        (try Core.Trace.restrict trace ~t0 ~t1
         with Invalid_argument msg -> exit_err msg)
    in
    let c = Core.Community.detect ~min_weight trace in
    Format.printf "%s: %d communities (modularity %.3f)@." label (Core.Community.n_communities c)
      (Core.Community.modularity c trace);
    Array.iteri
      (fun lbl size ->
        if size >= 2 then begin
          let members = Core.Community.members c lbl in
          let shown = List.filteri (fun i _ -> i < 12) members in
          Format.printf "  #%d (%d nodes): %s%s@." lbl size
            (String.concat " " (List.map (Printf.sprintf "n%d") shown))
            (if size > 12 then " ..." else "")
        end)
      (Core.Community.sizes c)
  in
  let term =
    Term.(const run $ dataset_arg $ seed_arg $ trace_arg $ min_weight $ from_arg $ until_arg)
  in
  Cmd.v
    (Cmd.info "communities" ~doc:"Detect contact communities (label propagation).")
    term

(* --- store --- *)

let store_cmd =
  let action =
    Arg.(
      required
      & pos 0 (some (enum [ ("stats", `Stats); ("gc", `Gc); ("verify", `Verify) ])) None
      & info [] ~docv:"ACTION"
          ~doc:
            "One of: stats (entry count, size, lifetime hit/miss counters), gc (evict \
             least-recently-used entries down to --max-bytes), verify (decode and \
             CRC-check every frame on disk).")
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR" ~doc:"Store directory to operate on.")
  in
  let max_bytes =
    Arg.(
      value & opt int 0
      & info [ "max-bytes" ] ~docv:"BYTES"
          ~doc:
            "For gc: keep at most this many bytes of entry data (default 0, which \
             empties the store).")
  in
  let run action dir max_bytes failpoints fp_seed =
    if max_bytes < 0 then exit_usage "--max-bytes must be non-negative";
    install_failpoints failpoints fp_seed;
    let st = or_die (fun () -> Core.Store.open_ ~dir ()) in
    match action with
    | `Stats ->
      let s = Core.Store.stats st in
      Format.printf "store %s: %d entries, %d bytes@." dir s.Core.Store.entries
        s.Core.Store.bytes;
      Format.printf "lifetime: %Ld hit(s), %Ld miss(es)@." s.Core.Store.hits
        s.Core.Store.misses;
      (match s.Core.Store.hit_rate with
      | Some rate -> Format.printf "hit rate: %.1f%%@." (100. *. rate)
      | None -> Format.printf "hit rate: n/a (no lookups yet)@.");
      Format.printf "recovery at open: %d orphaned tmp file(s) swept, %d journal intent(s) replayed@."
        s.Core.Store.tmp_swept s.Core.Store.journal_replays
    | `Gc ->
      let r = Core.Store.gc st ~max_bytes in
      Format.printf "evicted %d entries (%d bytes); kept %d (%d bytes)@."
        r.Core.Store.evicted r.Core.Store.freed_bytes r.Core.Store.kept
        r.Core.Store.kept_bytes
    | `Verify ->
      let r = Core.Store.verify st in
      List.iter
        (fun (e : Core.Store.fsck_error) ->
          Format.printf "%s: offset %d: %s@." e.Core.Store.fsck_path e.Core.Store.fsck_offset
            e.Core.Store.fsck_reason)
        r.Core.Store.fsck_errors;
      Format.printf "verify: %d frame(s) checked, %d ok, %d error(s)@." r.Core.Store.checked
        r.Core.Store.ok
        (List.length r.Core.Store.fsck_errors);
      if not (List.is_empty r.Core.Store.fsck_errors) then exit exit_corrupt
  in
  let term = Term.(const run $ action $ dir $ max_bytes $ failpoints_arg $ failpoint_seed_arg) in
  Cmd.v
    (Cmd.info "store"
       ~doc:
         "Maintain a content-addressed result store (see --store on simulate, explosion, \
          resilience and experiment): report stats, evict old entries, or fsck every \
          stored frame.")
    term

(* --- profile --- *)

let profile_cmd =
  let messages =
    Arg.(
      value & opt int 40
      & info [ "messages" ] ~docv:"N" ~doc:"Messages for the enumeration sweep.")
  in
  let seeds =
    Arg.(value & opt int 2 & info [ "seeds" ] ~docv:"N" ~doc:"Simulation runs per algorithm.")
  in
  let run dataset seed messages seeds jobs chunk store trace_out metrics failpoints fp_seed
      retries checkpoint resume =
    let jobs = resolve_jobs jobs in
    let chunk = resolve_chunk chunk in
    if seeds < 1 then exit_usage "--seeds must be at least 1";
    if messages < 1 then exit_usage "--messages must be at least 1";
    let retries = resolve_retries retries in
    check_resume ~store resume;
    let checkpoint = resolve_checkpoint ~store checkpoint in
    match Core.Dataset.find dataset with
    | Error msg -> exit_usage msg
    | Ok d ->
      let scale =
        {
          Core.Experiments.default_scale with
          Core.Experiments.n_messages = messages;
          seeds;
          rng_seed = Option.value seed ~default:17L;
        }
      in
      install_failpoints failpoints fp_seed;
      let ctx = telemetry_ctx ~command:"profile" ~trace_out ~profile:true ~metrics in
      let store = resolve_store ~telemetry:ctx.sink store in
      run_sweep
        ~finish:(fun () -> ctx.finish ~store)
        (fun () ->
          let study, sim =
            with_store_report store (fun store ->
                or_die (fun () ->
                    let study =
                      Core.Experiments.enumeration_study ~jobs ?chunk ?store ~retries
                        ~checkpoint ~scale ~telemetry:ctx.sink d
                    in
                    let sim =
                      Core.Experiments.sim_study ~jobs ?chunk ?store ~retries ~checkpoint
                        ~scale ~telemetry:ctx.sink d
                    in
                    (study, sim)))
          in
          Format.printf "profiled %s: %d enumeration(s), %d algorithm(s) x %d seed(s)@."
            d.Core.Dataset.label
            (List.length study.Core.Experiments.messages)
            (List.length sim.Core.Experiments.runs)
            seeds;
          ctx.finish ~store)
  in
  let term =
    Term.(
      const run $ dataset_arg $ seed_arg $ messages $ seeds $ jobs_arg $ chunk_arg $ store_arg
      $ trace_out_arg [ "trace" ] $ metrics_arg $ failpoints_arg $ failpoint_seed_arg
      $ retries_arg $ checkpoint_arg $ resume_flag)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a representative workload (a path-enumeration sweep plus the paper's six \
          forwarding algorithms) under full instrumentation and report where the time \
          went; --trace additionally dumps a Chrome trace.")
    term

(* --- metrics --- *)

let metrics_cmd =
  let action =
    Arg.(
      required
      & pos 0 (some (enum [ ("check", `Check) ])) None
      & info [] ~docv:"ACTION" ~doc:"Only 'check': validate a file and exit 0/1.")
  in
  let file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE" ~doc:"File to validate.")
  in
  let flight_flag =
    let doc =
      "Validate $(i,FILE) as a flight-recorder post-mortem dump (JSON) instead of an \
       OpenMetrics exposition."
    in
    Arg.(value & flag & info [ "flight" ] ~doc)
  in
  let run action file flight =
    match action with
    | `Check ->
      let text = or_die (fun () -> In_channel.with_open_bin file In_channel.input_all) in
      if flight then begin
        match Core.Flight.validate text with
        | Ok events -> Format.printf "%s: valid flight dump, %d event(s)@." file events
        | Error msg -> exit_err (Printf.sprintf "%s: invalid flight dump: %s" file msg)
      end
      else begin
        match Core.Openmetrics.validate text with
        | Ok () -> Format.printf "%s: valid OpenMetrics exposition@." file
        | Error msg -> exit_err (Printf.sprintf "%s: invalid exposition: %s" file msg)
      end
  in
  let term = Term.(const run $ action $ file $ flight_flag) in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Validate observability artifacts: the OpenMetrics expositions written by \
          --metrics / --metrics-out / the serve 'metrics' verb, and (with --flight) the \
          flight-recorder post-mortem dumps.")
    term

(* --- model --- *)

let model_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some (enum [ ("mean", `Mean); ("variance", `Variance); ("quadrants", `Quadrants) ])) None
      & info [] ~docv:"TABLE" ~doc:"One of: mean, variance, quadrants.")
  in
  let n = Arg.(value & opt int 200 & info [ "n" ] ~docv:"N" ~doc:"Population size.") in
  let lambda =
    Arg.(value & opt float 0.5 & info [ "lambda" ] ~docv:"RATE" ~doc:"Contact intensity.")
  in
  let runs = Arg.(value & opt int 60 & info [ "runs" ] ~docv:"N" ~doc:"Monte-Carlo runs.") in
  let run which n lambda runs =
    let module E = Core.Experiments in
    let module R = Core.Report in
    let times = [ 0.; 2.; 4.; 6.; 8. ] in
    let text =
      match which with
      | `Mean ->
        R.render_model_rows ~title:"E[S(t)]: closed form vs ODE vs Monte-Carlo"
          (E.model_mean_table ~n ~lambda ~times ~runs ())
      | `Variance ->
        R.render_model_rows ~title:"E[S(t)^2]: closed form vs ODE vs Monte-Carlo"
          (E.model_second_moment_table ~n ~lambda ~times ~runs ())
      | `Quadrants -> R.render_quadrants ~title:"Two-class quadrants" (E.model_quadrant_table ())
    in
    print_endline text
  in
  let term = Term.(const run $ which $ n $ lambda $ runs) in
  Cmd.v (Cmd.info "model" ~doc:"Evaluate the analytic models of Section 5.") term

let main_cmd =
  let doc = "Path diversity in pocket switched networks: reproduction toolkit." in
  let info = Cmd.info "psn" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      generate_cmd;
      info_cmd;
      paths_cmd;
      explosion_cmd;
      simulate_cmd;
      resilience_cmd;
      serve_cmd;
      experiment_cmd;
      intercontact_cmd;
      communities_cmd;
      store_cmd;
      profile_cmd;
      metrics_cmd;
      model_cmd;
    ]

(* cmdliner's own parse failures (unknown flag, bad positional) exit
   with [term_err] too, so every usage error — ours or cmdliner's — is
   code 2. *)
let () = exit (Cmd.eval ~term_err:exit_usage_code main_cmd)
