(* Model playground: the analytic machinery of Section 5, end to end —
   the ODE, its closed forms, the Monte-Carlo check, the epidemic
   S-curve, and the two-class quadrant predictions.

   Run with: dune exec examples/model_playground.exe *)

module H = Core.Homogeneous
module MC = Core.Montecarlo
module I = Core.Inhomogeneous

let () =
  let p = { H.n = 150; lambda = 0.4 } in
  Format.printf "Homogeneous model: N = %d nodes, lambda = %.2f contacts/s per node@.@."
    p.H.n p.H.lambda;

  (* Mean path count per node: eq. (4) says e^{lambda t} growth. *)
  Format.printf "%6s %14s %14s %14s %12s@." "t" "E[S] closed" "E[S] ODE" "E[S] MC"
    "frac reached";
  let rng = Core.Rng.create ~seed:33L () in
  let times = [ 0.; 3.; 6.; 9.; 12. ] in
  let mc = MC.average_runs p ~rng ~runs:40 ~sample_times:times in
  List.iter2
    (fun t sample ->
      let density = H.density_at p ~k_max:500 ~t () in
      Format.printf "%6.1f %14.5f %14.5f %14.5f %12.4f@." t (H.mean_paths p ~t)
        (H.mean_of_density density) sample.MC.mean (H.frac_reached p ~t))
    times mc;

  (* The first-path time scale and the generating-function blow-up. *)
  Format.printf "@.first-path time H = ln N / lambda = %.2f s@." (H.first_path_time p);
  List.iter
    (fun x ->
      match H.blowup_time p ~x with
      | Some tc -> Format.printf "phi_x loses its light tail at T_C(%.1f) = %.2f s@." x tc
      | None -> Format.printf "phi_x stays finite for x = %.1f@." x)
    [ 0.5; 1.5; 3.0 ];

  (* Variance: note the paper's printed formula has a typo (see
     Core.Homogeneous.variance); the self-consistent form satisfies
     V = E[S^2] - E[S]^2 exactly. *)
  let t = 9. in
  Format.printf "@.at t = %.0f: V[S] = %.5f, E[S^2] - E[S]^2 = %.5f (equal by construction)@." t
    (H.variance p ~t)
    (H.second_moment p ~t -. (H.mean_paths p ~t ** 2.));

  (* The two-class story of section 5.2. *)
  Format.printf "@.Two-class model (half 'in' at 0.03/s, half 'out' at 0.005/s):@.";
  let classes = { I.n = 98; frac_high = 0.5; rate_high = 0.03; rate_low = 0.005 } in
  let stats =
    I.simulate classes
      ~rng:(Core.Rng.create ~seed:34L ())
      ~messages_per_quadrant:40 ~n_explosion:2000 ~t_end:10800.
  in
  List.iter
    (fun (s : I.quadrant_stats) ->
      let p = I.predict s.I.quadrant in
      let name = Format.asprintf "%a" I.pp_quadrant s.I.quadrant in
      Format.printf "  %-8s T1 = %4.0f +- %3.0f s, TE = %4.0f +- %3.0f s   (predicted T1 %s, TE %s)@."
        name s.I.mean_t1 s.I.sd_t1 s.I.mean_te s.I.sd_te
        (if p.I.t1_small then "small" else "large")
        (if p.I.te_small then "small" else "variable"))
    stats
