(* Quickstart: generate a synthetic conference trace, enumerate the
   valid forwarding paths of one message, and look at the path
   explosion.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A trace: 98 Bluetooth devices over three conference hours.
     Presets mirror the paper's measurement windows; everything is
     seeded, so this program always prints the same numbers. *)
  let trace = Core.Dataset.(generate infocom06_am) in
  Format.printf "%a@.@." Core.Trace.pp_stats trace;

  (* 2. The space-time graph at the paper's 10 s discretisation. *)
  let snapshot = Core.Snapshot.of_trace trace in

  (* 3. Pick a message: source node 5 to node 60, created at t = 900 s,
     and enumerate its valid forwarding paths (Fig. 3 algorithm). *)
  let result =
    Core.Enumerate.run
      ~config:
        { Core.Enumerate.k = 2000; max_hops = None; stop_at_total = Some 2000; exhaustive = false }
      snapshot ~src:5 ~dst:60 ~t_create:900.
  in
  let summary = Core.Explosion.analyze result in
  (match (summary.Core.Explosion.optimal_duration, summary.Core.Explosion.te) with
  | Some duration, Some te ->
    Format.printf "optimal path duration: %.0f s@." duration;
    Format.printf "paths enumerated:      %d@." summary.Core.Explosion.n_arrivals;
    Format.printf "time to explosion:     %.0f s (2000th path)@.@." te
  | Some duration, None ->
    Format.printf "optimal path duration: %.0f s (%d paths, no full explosion)@.@." duration
      summary.Core.Explosion.n_arrivals
  | None, _ -> Format.printf "message cannot be delivered within the trace@.@.");

  (* 4. The three shortest paths, as node@step sequences. *)
  Array.iteri
    (fun i (a : Core.Enumerate.arrival) ->
      if i < 3 then
        Format.printf "path %d (%d hand-offs, arrives %.0f s): %a@." (i + 1)
          (Core.Path.transfers a.Core.Enumerate.path)
          a.Core.Enumerate.time Core.Path.pp a.Core.Enumerate.path)
    result.Core.Enumerate.arrivals;

  (* 5. And the headline comparison: epidemic forwarding vs a simple
     history-based algorithm on a real workload. *)
  let spec =
    {
      Core.Runner.workload = Core.Workload.paper_spec ~n_nodes:(Core.Trace.n_nodes trace);
      seeds = Core.Runner.default_seeds 1;
    }
  in
  Format.printf "@.";
  List.iter
    (fun (label, factory) ->
      let m = Core.Runner.run_algorithm ~trace ~spec ~factory () in
      Format.printf "%-10s success %.3f, mean delay %.0f s@." label m.Core.Metrics.success_rate
        m.Core.Metrics.mean_delay)
    [ ("Epidemic", Core.Epidemic.factory); ("FRESH", Core.Fresh.factory) ]
