(* Algorithm comparison: the paper's Section 6 experiment — six
   forwarding strategies with very different designs, one trace-driven
   workload — plus the per-pair-type breakdown that explains why their
   performance is so similar.

   Run with: dune exec examples/algorithm_comparison.exe *)

module E = Core.Experiments
module R = Core.Report

let () =
  let scale = { E.default_scale with E.seeds = 3 } in
  let dataset = Core.Dataset.conext06_am in
  Format.printf "Simulating %d algorithms x %d seeded runs on %s...@.@."
    (List.length Core.Registry.paper_six)
    scale.E.seeds dataset.Core.Dataset.label;
  let sim = E.sim_study ~scale dataset in

  (* Fig. 9: the headline similarity. *)
  print_endline (R.render_metrics ~title:"Average delay and success rate" (E.fig9 sim));
  print_newline ();

  (* Fig. 13: the similarity is really a property of the pair type. *)
  print_endline
    (R.render_metrics_by_pair ~title:"Broken down by source/destination class" (E.fig13 sim));
  print_newline ();

  (* The same workload under the extension algorithms, for cost
     context: epidemic pays ~3-10x the copies of the history-based
     schemes for its delay advantage. *)
  let extension_sim = E.sim_study ~scale ~entries:Core.Registry.extensions dataset in
  print_endline
    (R.render_metrics ~title:"Extensions (not part of the paper's six)" (E.fig9 extension_sim))
