(* Path-explosion study: reproduce the heart of the paper on one
   dataset — enumerate all valid paths for a set of random messages,
   then look at optimal durations, times to explosion, their (lack of)
   correlation, and how both depend on the in/out class of the
   endpoints.

   Run with: dune exec examples/path_explosion_study.exe
   (takes a minute or two: each message is a full path enumeration) *)

module E = Core.Experiments
module R = Core.Report

let () =
  let scale =
    { E.default_scale with E.n_messages = 60; hop_paths_per_message = 100 }
  in
  Format.printf "Enumerating paths for %d random messages on %s...@.@." scale.E.n_messages
    Core.Dataset.infocom06_am.Core.Dataset.label;
  let study = E.enumeration_study ~scale Core.Dataset.infocom06_am in

  (* Fig. 4: long first paths, short explosions. *)
  print_endline (R.render_cdfs ~title:"Optimal path duration (s)" (E.fig4a [ study ]));
  print_newline ();
  print_endline (R.render_cdfs ~title:"Time to explosion (s)" (E.fig4b [ study ]));
  print_newline ();

  (* Fig. 5: no clear relation between the two. *)
  print_endline (R.render_scatter ~title:"T1 duration vs TE" (E.fig5 study));
  print_newline ();

  (* Fig. 8: the in/out quadrants. *)
  print_endline (R.render_scatter_by_pair ~title:"By source/destination class" (E.fig8 study));
  print_newline ();

  (* The growth itself: exponential-rate fits of the cumulative arrival
     staircases, pooled across messages. *)
  let rates =
    List.filter_map
      (fun (m : E.message_result) ->
        if Array.length m.E.arrival_times < 50 then None
        else begin
          let t1 = m.E.arrival_times.(0) in
          let staircase =
            Array.to_list m.E.arrival_times |> List.mapi (fun i t -> (t -. t1, float_of_int (i + 1)))
          in
          match Core.Regression.exponential_rate staircase with
          | fit when Float.is_finite fit.Core.Regression.slope && fit.Core.Regression.slope > 0. ->
            Some fit.Core.Regression.slope
          | _ -> None
          | exception Invalid_argument _ -> None
        end)
      study.E.messages
  in
  (match rates with
  | [] -> print_endline "no message produced enough arrivals for a growth fit"
  | _ ->
    let arr = Array.of_list rates in
    Format.printf
      "Exponential growth-rate fits over %d messages: median %.3f /s (q1 %.3f, q3 %.3f)@."
      (Array.length arr)
      (Core.Quantile.median arr)
      (Core.Quantile.quantile arr 0.25)
      (Core.Quantile.quantile arr 0.75);
    Format.printf
      "For comparison, the population median contact rate is %.4f /s — explosion@.runs at contact-rate speed, as the Section 5 model predicts.@."
      (Core.Classify.median_rate study.E.classify))
