(* Conference day: build a custom venue scenario with the generator's
   full configuration surface — a small workshop (40 participants, one
   big room plus three breakouts, long dwell times, a lunch dip) — then
   ask the question the paper leaves open: how much does restraining
   replication cost once path explosion is on your side?

   Run with: dune exec examples/conference_day.exe *)

let workshop : Core.Generator.config =
  {
    Core.Generator.n_mobile = 36;
    n_stationary = 4;  (* registration desk, coffee corner, two demos *)
    horizon = 6. *. 3600.;  (* a full workshop day *)
    mean_contacts = 260.;
    sociability_floor = 0.02;
    n_locations = 4;
    dwell =
      Core.Dist.Truncated
        { dist = Core.Dist.Exponential { rate = 1. /. 2400. }; lo = 300.; hi = 7200. };
    away_prob = 0.15;
    duration =
      Core.Dist.Truncated
        { dist = Core.Dist.Exponential { rate = 1. /. 180. }; lo = 15.; hi = 2400. };
    (* the lunch dip: last third of the morning data at half intensity *)
    profile = Core.Generator.Dropoff { from_frac = 0.66; factor = 0.5 };
    scan_interval = Some 120.;  (* Bluetooth inquiry every two minutes *)
  }

let () =
  let trace = Core.Generator.generate ~rng:(Core.Rng.create ~seed:2026L ()) workshop in
  Format.printf "A synthetic workshop day:@.%a@.@." Core.Trace.pp_stats trace;

  (* Messages for the first two thirds of the day. *)
  let spec =
    {
      Core.Runner.workload =
        {
          Core.Workload.rate = 1. /. 20.;
          t_start = 0.;
          t_end = Core.Trace.horizon trace *. 2. /. 3.;
          n_nodes = Core.Trace.n_nodes trace;
        };
      seeds = Core.Runner.default_seeds 3;
    }
  in
  (* Epidemic against the replication-limited alternatives: how much
     delivery do you give up for how much transmission cost? *)
  let contenders =
    [
      ("Epidemic (flood everything)", Core.Epidemic.factory);
      ("Spray&Wait L=16", Core.Spray_wait.factory ~l:16 ());
      ("Spray&Wait L=4", Core.Spray_wait.factory ~l:4 ());
      ("Random p=0.25", Core.Randomized.factory ~p:0.25 ());
      ("PRoPHET", Core.Prophet.factory ());
      ("Direct delivery", Core.Direct.factory);
    ]
  in
  Format.printf "%-28s %9s %12s %10s@." "algorithm" "success" "mean delay" "copies";
  List.iter
    (fun (label, factory) ->
      let m = Core.Runner.run_algorithm ~trace ~spec ~factory () in
      Format.printf "%-28s %9.3f %10.0f s %10d@." label m.Core.Metrics.success_rate
        m.Core.Metrics.mean_delay m.Core.Metrics.copies)
    contenders;

  (* The paper's intuition check: even with a tiny copy budget, spray
     and wait rides the same path explosion that epidemic does — the
     delivery gap is small, the cost gap is enormous. *)
  Format.printf
    "@.Replication buys delay, not much success: once the message reaches a few@.high-rate nodes, path explosion does the rest (Section 6.2 of the paper).@."
