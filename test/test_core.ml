(* Tests for the core umbrella library: node classification, hop-rate
   analyses, the experiment drivers and the report renderers. *)

module Classify = Core.Classify
module Hops = Core.Hops
module E = Core.Experiments
module R = Core.Report
module Path = Core.Path
module Trace = Core.Trace
module Contact = Core.Contact

let feps = Alcotest.float 1e-9

let contains s sub =
  let slen = String.length s and sublen = String.length sub in
  let rec scan i = i + sublen <= slen && (String.sub s i sublen = sub || scan (i + 1)) in
  scan 0

(* A trace where node rates are strictly ordered: node i has i contacts. *)
let graded_trace () =
  let contacts =
    List.concat_map
      (fun i ->
        List.init i (fun j ->
            let s = (float_of_int ((i * 13) + j) *. 7.) +. 1. in
            Contact.make ~a:i ~b:((i + 1 + j) mod 6) ~t_start:s ~t_end:(s +. 2.)))
      [ 1; 2; 3; 4; 5 ]
  in
  Trace.create ~n_nodes:6 ~horizon:600. contacts

(* --- Det_tbl --- *)

let test_det_tbl_sorted_views () =
  let tbl = Hashtbl.create 7 in
  List.iter (fun k -> Hashtbl.add tbl k (k * 10)) [ 5; 1; 9; 3; 7; 0; 8 ];
  Alcotest.(check (list (pair int int)))
    "bindings sorted by key"
    [ (0, 0); (1, 10); (3, 30); (5, 50); (7, 70); (8, 80); (9, 90) ]
    (Core.Det_tbl.bindings ~cmp:Int.compare tbl);
  Alcotest.(check (list int)) "keys" [ 0; 1; 3; 5; 7; 8; 9 ]
    (Core.Det_tbl.keys ~cmp:Int.compare tbl);
  let seen = ref [] in
  Core.Det_tbl.iter ~cmp:Int.compare (fun k _ -> seen := k :: !seen) tbl;
  Alcotest.(check (list int)) "iter ascending" [ 0; 1; 3; 5; 7; 8; 9 ] (List.rev !seen);
  Alcotest.(check (list int)) "fold ascending" [ 9; 8; 7; 5; 3; 1; 0 ]
    (Core.Det_tbl.fold (fun k _ acc -> k :: acc) ~cmp:Int.compare tbl [])

let test_det_tbl_duplicate_keys () =
  (* Hashtbl.add shadows: the sort is stable, so a duplicated key keeps
     its bindings most-recent-first, matching Hashtbl.find_all. *)
  let tbl = Hashtbl.create 7 in
  Hashtbl.add tbl 2 "old";
  Hashtbl.add tbl 1 "only";
  Hashtbl.add tbl 2 "new";
  Alcotest.(check (list (pair int string)))
    "duplicates most-recent-first"
    [ (1, "only"); (2, "new"); (2, "old") ]
    (Core.Det_tbl.bindings ~cmp:Int.compare tbl)

(* --- Classify --- *)

let test_classify_median_split () =
  let t = graded_trace () in
  let c = Classify.of_trace t in
  (* counts grow with the index, so high indices are 'in' *)
  Alcotest.(check bool) "node 5 is in" true (Classify.node_class c 5 = Classify.In);
  Alcotest.(check bool) "node 0 is out" true (Classify.node_class c 0 = Classify.Out);
  let n_in = Classify.n_in c in
  Alcotest.(check bool)
    (Printf.sprintf "n_in %d about half" n_in)
    true
    (n_in >= 2 && n_in <= 3)

let test_classify_pair_types () =
  let t = graded_trace () in
  let c = Classify.of_trace t in
  Alcotest.(check bool) "in-in" true
    (Classify.equal_pair_type (Classify.pair_type c ~src:5 ~dst:4) Classify.In_in);
  Alcotest.(check bool) "out-in" true
    (Classify.equal_pair_type (Classify.pair_type c ~src:0 ~dst:5) Classify.Out_in);
  Alcotest.(check bool) "in-out" true
    (Classify.equal_pair_type (Classify.pair_type c ~src:5 ~dst:0) Classify.In_out);
  Alcotest.(check bool) "out-out" true
    (Classify.equal_pair_type (Classify.pair_type c ~src:0 ~dst:1) Classify.Out_out)

let test_classify_names () =
  Alcotest.(check (list string)) "paper order"
    [ "in-in"; "in-out"; "out-in"; "out-out" ]
    (List.map Classify.pair_type_name Classify.all_pair_types)

let test_classify_uniform_rates () =
  (* With identical rates nobody is strictly above the median: the
     whole population classifies as 'out' (documented tie behaviour). *)
  let t =
    Trace.create ~n_nodes:4 ~horizon:100.
      [
        Contact.make ~a:0 ~b:1 ~t_start:1. ~t_end:2.;
        Contact.make ~a:2 ~b:3 ~t_start:1. ~t_end:2.;
      ]
  in
  let c = Classify.of_trace t in
  Alcotest.(check int) "no 'in' nodes on ties" 0 (Classify.n_in c)

(* --- Hops --- *)

let hop node step = { Path.node; step }

let test_hops_mean_rates () =
  let t = graded_trace () in
  let c = Classify.of_trace t in
  let paths =
    [
      Path.of_hops [ hop 0 1; hop 3 2; hop 5 3 ];
      Path.of_hops [ hop 1 1; hop 4 2; hop 5 3 ];
    ]
  in
  let rows = Hops.mean_rates_by_hop c paths in
  Alcotest.(check int) "three hop positions" 3 (List.length rows);
  let hop0 = List.nth rows 0 and hop1 = List.nth rows 1 in
  let mean (_, s, _) = Core.Summary.mean s in
  Alcotest.(check bool) "rates climb at first hop" true (mean hop1 > mean hop0);
  let _, s0, (lo, hi) = hop0 in
  Alcotest.(check int) "two observations per hop" 2 (Core.Summary.count s0);
  Alcotest.(check bool) "CI brackets mean" true (lo <= mean hop0 && mean hop0 <= hi)

let test_hops_ratios () =
  let t = graded_trace () in
  let c = Classify.of_trace t in
  let paths = [ Path.of_hops [ hop 1 1; hop 2 2; hop 4 3 ] ] in
  let rows = Hops.rate_ratios_by_hop c paths in
  (* one intermediate transition (1->2) plus the final Dst/Lst (2->4) *)
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let label0, box0 = List.nth rows 0 in
  Alcotest.(check string) "first label" "1/0" label0;
  Alcotest.check feps "ratio value"
    (Classify.rate c 2 /. Classify.rate c 1)
    box0.Core.Boxplot.median;
  let label1, box1 = List.nth rows 1 in
  Alcotest.(check string) "final label" "Dst/Lst" label1;
  Alcotest.check feps "dst ratio"
    (Classify.rate c 4 /. Classify.rate c 2)
    box1.Core.Boxplot.median

let test_hops_skips_zero_rate_sources () =
  let t = graded_trace () in
  let c = Classify.of_trace t in
  (* node 0 has rate > 0 in graded_trace (1 contact), so fabricate a
     trace where a node never appears: node 0 of a 2-contact trace *)
  ignore c;
  let t2 =
    Trace.create ~n_nodes:3 ~horizon:100. [ Contact.make ~a:1 ~b:2 ~t_start:1. ~t_end:2. ]
  in
  let c2 = Classify.of_trace t2 in
  let rows = Hops.rate_ratios_by_hop c2 [ Path.of_hops [ hop 0 1; hop 1 2 ] ] in
  Alcotest.(check int) "zero-rate denominator skipped" 0 (List.length rows);
  ignore t

(* --- Experiments (tiny scale, one dataset) --- *)

let tiny_scale =
  { E.default_scale with E.n_messages = 8; k = 200; n_explosion = 200; seeds = 1; hop_paths_per_message = 20 }

let study = lazy (E.enumeration_study ~scale:tiny_scale Core.Dataset.conext06_am)

let test_study_shape () =
  let s = Lazy.force study in
  Alcotest.(check int) "messages" 8 (List.length s.E.messages);
  List.iter
    (fun m ->
      Alcotest.(check bool) "src != dst" true (m.E.src <> m.E.dst);
      let sorted = Array.copy m.E.arrival_times in
      Array.sort Float.compare sorted;
      Alcotest.(check (array (float 1e-9))) "arrivals sorted" sorted m.E.arrival_times;
      if m.E.summary.Core.Explosion.delivered then
        Alcotest.(check bool) "paths sampled when delivered" true (m.E.sample_paths <> []))
    s.E.messages

let test_fig4_cdfs () =
  let s = Lazy.force study in
  (match E.fig4a [ s ] with
  | [ (_, cdf) ] -> Alcotest.(check bool) "nonempty" true (Core.Cdf.size cdf > 0)
  | _ -> Alcotest.fail "expected one cdf");
  (* fig4b may be empty if nothing exploded at this tiny scale; both
     outcomes are acceptable shapes *)
  match E.fig4b [ s ] with
  | [] -> ()
  | [ (_, cdf) ] -> Alcotest.(check bool) "nonempty" true (Core.Cdf.size cdf > 0)
  | _ -> Alcotest.fail "too many cdfs"

let test_fig5_fig8_consistent () =
  let s = Lazy.force study in
  let n5 = List.length (E.fig5 s) in
  let n8 = List.fold_left (fun acc (_, pts) -> acc + List.length pts) 0 (E.fig8 s) in
  Alcotest.(check int) "fig8 partitions fig5" n5 n8

let test_fig11_monotone () =
  let s = Lazy.force study in
  let stair = E.fig11 s in
  Array.iteri
    (fun i (_, c) -> if i > 0 then Alcotest.(check bool) "monotone" true (c >= snd stair.(i - 1)))
    stair

let test_fig14_15_run () =
  let s = Lazy.force study in
  let rows = E.fig14 s in
  Alcotest.(check bool) "hop rows exist" true (List.length rows >= 1);
  ignore (E.fig15 s)

let test_fig1_fig7 () =
  (match E.fig1 [ Core.Dataset.conext06_am ] with
  | [ (_, ts) ] ->
    Alcotest.(check int) "180 one-minute bins" 180 (Array.length (Core.Timeseries.counts ts))
  | _ -> Alcotest.fail "expected one series");
  match E.fig7 [ Core.Dataset.conext06_am ] with
  | [ (_, cdf) ] -> Alcotest.(check int) "98 nodes" 98 (Core.Cdf.size cdf)
  | _ -> Alcotest.fail "expected one cdf"

let test_fig2_example () =
  let text = E.fig2 () in
  Alcotest.(check bool) "step 1 edge" true (contains text "t=1: 0-1");
  Alcotest.(check bool) "step 2 triangle" true (contains text "1-2")

let sim = lazy (E.sim_study ~scale:tiny_scale Core.Dataset.conext06_am)

let test_fig9_ordering () =
  let rows = E.fig9 (Lazy.force sim) in
  Alcotest.(check int) "six algorithms" 6 (List.length rows);
  let epidemic = List.assoc "Epidemic" rows in
  List.iter
    (fun (_, m) ->
      Alcotest.(check bool) "success <= epidemic" true
        (m.Core.Metrics.success_rate <= epidemic.Core.Metrics.success_rate +. 1e-9))
    rows

let test_fig10_has_epidemic () =
  let cdfs = E.fig10 (Lazy.force sim) in
  Alcotest.(check bool) "epidemic present" true (List.mem_assoc "Epidemic" cdfs)

let test_fig13_groups () =
  let groups = E.fig13 (Lazy.force sim) in
  Alcotest.(check int) "four pair types" 4 (List.length groups);
  List.iter
    (fun (_, rows) -> Alcotest.(check int) "six algorithms each" 6 (List.length rows))
    groups

let test_fig12_examples () =
  let s = Lazy.force study in
  let examples = E.fig12 s ~n_examples:1 in
  List.iter
    (fun ex ->
      Alcotest.(check int) "six algorithm offsets" 6 (List.length ex.E.algorithm_offsets);
      match ex.E.arrival_offsets with
      | first :: _ -> Alcotest.check feps "first offset zero" 0. first
      | [] -> Alcotest.fail "no arrivals in example")
    examples

let test_model_tables () =
  let rows = E.model_mean_table ~n:100 ~lambda:0.5 ~times:[ 0.; 2. ] ~runs:10 () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let r0 = List.hd rows in
  Alcotest.check feps "closed at 0" 0.01 r0.E.m_closed;
  Alcotest.(check (float 1e-6)) "ode at 0" 0.01 r0.E.m_ode;
  let blow = E.model_blowup_table ~n:100 ~lambda:0.5 ~xs:[ 0.5; 2. ] in
  (match blow with
  | [ (_, None); (_, Some tc) ] -> Alcotest.(check bool) "tc positive" true (tc > 0.)
  | _ -> Alcotest.fail "unexpected blowup table");
  let quads = E.model_quadrant_table ~messages:2 ~n_explosion:50 ~t_end:2000. () in
  Alcotest.(check int) "four quadrants" 4 (List.length quads)

(* --- Report rendering --- *)

let test_report_metrics_render () =
  let rows = E.fig9 (Lazy.force sim) in
  let text = R.render_metrics ~title:"Fig 9 test" rows in
  Alcotest.(check bool) "has title" true (contains text "== Fig 9 test ==");
  Alcotest.(check bool) "has epidemic row" true (contains text "Epidemic");
  Alcotest.(check bool) "has header" true (contains text "success")

let test_report_cdfs_render () =
  let s = Lazy.force study in
  let text = R.render_cdfs ~title:"cdf test" (E.fig4a [ s ]) in
  Alcotest.(check bool) "probability column" true (contains text "P[X<=x]")

let test_report_empty_inputs () =
  Alcotest.(check bool) "empty cdfs" true
    (contains (R.render_cdfs ~title:"t" []) "(no data)");
  Alcotest.(check bool) "empty scatter" true
    (contains (R.render_scatter ~title:"t" []) "(no data)");
  Alcotest.(check bool) "empty staircase" true
    (contains (R.render_cumulative ~title:"t" [||]) "(no deliveries)");
  Alcotest.(check bool) "empty fig12" true
    (contains (R.render_fig12 ~title:"t" []) "(no suitable example messages)")

let test_report_quadrants_render () =
  let quads = E.model_quadrant_table ~messages:2 ~n_explosion:50 ~t_end:2000. () in
  let text = R.render_quadrants ~title:"quads" quads in
  List.iter
    (fun name -> Alcotest.(check bool) name true (contains text name))
    [ "in-in"; "in-out"; "out-in"; "out-out"; "predicted" ]

let test_export_roundtrip () =
  let dir = Filename.temp_file "psnexp" "" in
  Sys.remove dir;
  let cdf = Core.Cdf.of_samples [| 1.; 2.; 2.; 5. |] in
  let files = Core.Export.write_cdfs ~dir ~name:"fig4a" [ ("Infocom am", cdf) ] in
  (match files with
  | [ path ] ->
    let ic = open_in path in
    let header = input_line ic in
    let first = input_line ic in
    close_in ic;
    Alcotest.(check string) "label comment" "# Infocom am" header;
    Alcotest.(check string) "first staircase point" "1 0.25" first
  | _ -> Alcotest.fail "expected one file");
  let scatter = Core.Export.write_scatter ~dir ~name:"fig5" [ (1., 2.); (3.5, 0.) ] in
  Alcotest.(check bool) "scatter written" true (Sys.file_exists scatter);
  let script =
    Core.Export.write_gnuplot_script ~dir
      [ ("fig4a", `Lines, files); ("fig5", `Points, [ scatter ]) ]
  in
  let ic = open_in script in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Alcotest.(check bool) "script plots fig5" true
    (contains text "fig5.dat");
  (* clean up *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let () =
  Alcotest.run "core"
    [
      ( "det_tbl",
        [
          Alcotest.test_case "sorted views" `Quick test_det_tbl_sorted_views;
          Alcotest.test_case "duplicate keys" `Quick test_det_tbl_duplicate_keys;
        ] );
      ( "classify",
        [
          Alcotest.test_case "median split" `Quick test_classify_median_split;
          Alcotest.test_case "pair types" `Quick test_classify_pair_types;
          Alcotest.test_case "names" `Quick test_classify_names;
          Alcotest.test_case "uniform rates tie" `Quick test_classify_uniform_rates;
        ] );
      ( "hops",
        [
          Alcotest.test_case "mean rates" `Quick test_hops_mean_rates;
          Alcotest.test_case "ratios" `Quick test_hops_ratios;
          Alcotest.test_case "zero-rate skip" `Quick test_hops_skips_zero_rate_sources;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "study shape" `Slow test_study_shape;
          Alcotest.test_case "fig4" `Slow test_fig4_cdfs;
          Alcotest.test_case "fig5/fig8 consistency" `Slow test_fig5_fig8_consistent;
          Alcotest.test_case "fig11 monotone" `Slow test_fig11_monotone;
          Alcotest.test_case "fig14/15" `Slow test_fig14_15_run;
          Alcotest.test_case "fig1/fig7" `Slow test_fig1_fig7;
          Alcotest.test_case "fig2" `Quick test_fig2_example;
          Alcotest.test_case "fig9 epidemic bound" `Slow test_fig9_ordering;
          Alcotest.test_case "fig10" `Slow test_fig10_has_epidemic;
          Alcotest.test_case "fig13 groups" `Slow test_fig13_groups;
          Alcotest.test_case "fig12 examples" `Slow test_fig12_examples;
          Alcotest.test_case "model tables" `Slow test_model_tables;
        ] );
      ("export", [ Alcotest.test_case "round-trip" `Quick test_export_roundtrip ]);
      ( "report",
        [
          Alcotest.test_case "metrics" `Slow test_report_metrics_render;
          Alcotest.test_case "cdfs" `Slow test_report_cdfs_render;
          Alcotest.test_case "empty inputs" `Quick test_report_empty_inputs;
          Alcotest.test_case "quadrants" `Slow test_report_quadrants_render;
        ] );
    ]
