(* Tests for the observability foundation: the deterministic
   log-bucketed histogram (merge algebra, quantile error bound, codec
   round-trip), the OpenMetrics registry/renderer/validator, and the
   flight-recorder ring + dump format. The jobs×chunk bit-identity of
   the serve metrics surface is pinned in test_serve.ml; here we pin
   the algebra that makes it possible. *)

module Hist = Core.Hist
module Openmetrics = Core.Openmetrics
module Flight = Core.Flight

let of_list xs =
  let h = Hist.create () in
  List.iter (Hist.add h) xs;
  h

(* --- histogram: concrete semantics --- *)

let test_empty () =
  let h = Hist.create () in
  Alcotest.(check bool) "empty" true (Hist.is_empty h);
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check (float 0.)) "quantile of empty" 0. (Hist.quantile h 0.5);
  Alcotest.(check (float 0.)) "sum of empty" 0. (Hist.sum h)

let test_special_values () =
  let h = of_list [ 0.; -3.; Float.nan; Float.infinity; Float.neg_infinity; 1.0 ] in
  (* zero and negative land in the zero bucket; non-finite are skipped *)
  Alcotest.(check int) "finite samples counted" 3 (Hist.count h);
  Alcotest.(check int) "non-finite skipped" 3 (Hist.skipped h);
  Alcotest.(check (float 0.)) "min is the negative sample" (-3.) (Hist.min_value h);
  Alcotest.(check (float 0.)) "max" 1. (Hist.max_value h)

let test_quantile_error_bound () =
  (* Every reported quantile sits within one bucket (~12.5% relative)
     of an exact sample, and never above the exact maximum. *)
  let xs = List.init 1000 (fun i -> 0.001 *. float_of_int (i + 1)) in
  let h = of_list xs in
  List.iter
    (fun q ->
      let exact = List.nth xs (Int.max 0 (int_of_float (Float.ceil (q *. 1000.)) - 1)) in
      let got = Hist.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%g within bucket (got %g, exact %g)" q got exact)
        true
        (got >= exact *. 0.999 && got <= exact *. 1.126))
    [ 0.5; 0.9; 0.99; 0.999 ];
  Alcotest.(check (float 0.)) "q=1 clamps to max" 1. (Hist.quantile h 1.)

let test_digest () =
  let h = of_list [ 1.; 2.; 3.; 4. ] in
  let d = Hist.digest h in
  Alcotest.(check int) "count" 4 d.Hist.d_count;
  Alcotest.(check (float 1e-9)) "sum" 10. d.Hist.d_sum;
  Alcotest.(check (float 0.)) "min" 1. d.Hist.d_min;
  Alcotest.(check (float 0.)) "max" 4. d.Hist.d_max;
  Alcotest.(check bool) "p50 <= p99" true (d.Hist.d_p50 <= d.Hist.d_p99)

let test_cumulative_shape () =
  let h = of_list [ 0.5; 0.5; 7. ] in
  match List.rev (Hist.cumulative h) with
  | (le, total) :: _ ->
    Alcotest.(check bool) "last le is +inf" true (Float.is_integer le = false || le > 1e300);
    Alcotest.(check bool) "+inf bound" true (not (Float.is_finite le));
    Alcotest.(check int) "last cumulative = count" (Hist.count h) total;
    let cums = List.map snd (Hist.cumulative h) in
    Alcotest.(check bool) "monotone" true
      (List.for_all2 ( <= ) cums (List.tl cums @ [ max_int ]))
  | [] -> Alcotest.fail "cumulative of non-empty hist is empty"

(* --- histogram: properties --- *)

let float_sample_gen =
  let open QCheck2 in
  Gen.oneof
    [
      Gen.float_range 1e-9 1e9;
      Gen.oneofl [ 0.; -1.; 1e-40; 1e40; 0.125; 3.; 1024. ];
    ]

let hist_props =
  let open QCheck2 in
  let lists3 = Gen.triple (Gen.list float_sample_gen) (Gen.list float_sample_gen) (Gen.list float_sample_gen) in
  [
    Test.make ~count:300 ~name:"merge is commutative" (Gen.pair (Gen.list float_sample_gen) (Gen.list float_sample_gen))
      (fun (xs, ys) ->
        Hist.equal
          (Hist.merge (of_list xs) (of_list ys))
          (Hist.merge (of_list ys) (of_list xs)));
    Test.make ~count:300 ~name:"merge is associative" lists3 (fun (xs, ys, zs) ->
        Hist.equal
          (Hist.merge (Hist.merge (of_list xs) (of_list ys)) (of_list zs))
          (Hist.merge (of_list xs) (Hist.merge (of_list ys) (of_list zs))));
    (* The schedule-independence property: however samples are
       partitioned across forked recorders, and in whatever order the
       parts are folded back, the merged state is bit-identical. *)
    Test.make ~count:300 ~name:"fork/join partition and order independent"
      (Gen.pair (Gen.list float_sample_gen) (Gen.int_range 1 5))
      (fun (xs, parts) ->
        let shards = Array.init parts (fun _ -> Hist.create ()) in
        List.iteri (fun i x -> Hist.add shards.(i mod parts) x) xs;
        let forward = Array.fold_left Hist.merge (Hist.create ()) shards in
        let backward =
          Array.fold_left Hist.merge (Hist.create ())
            (Array.of_list (List.rev (Array.to_list shards)))
        in
        Hist.equal forward (of_list xs) && Hist.equal forward backward);
    Test.make ~count:300 ~name:"encode/decode round-trips bit-exactly"
      (Gen.list float_sample_gen) (fun xs ->
        let h = of_list xs in
        match Hist.decode (Hist.encode h) with
        | Some h' -> Hist.equal h h'
        | None -> false);
    Test.make ~count:200 ~name:"quantiles are monotone in q" (Gen.list float_sample_gen)
      (fun xs ->
        let h = of_list xs in
        let qs = [ 0.1; 0.5; 0.9; 0.99; 1. ] in
        let vs = List.map (Hist.quantile h) qs in
        List.for_all2 ( <= ) vs (List.tl vs @ [ Float.max_float ]));
    Test.make ~count:200 ~name:"copy is independent" (Gen.list float_sample_gen) (fun xs ->
        let h = of_list xs in
        let g = Hist.copy h in
        Hist.add g 42.;
        Hist.equal h (of_list xs) && not (Hist.equal g h && Hist.count g <> Hist.count h));
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- OpenMetrics --- *)

let sample_registry () =
  let m = Openmetrics.create () in
  Openmetrics.counter m ~help:"Contacts ingested" "psn_serve_ingested" 12;
  Openmetrics.gauge m "psn_serve.now_seconds" 99.5;
  Openmetrics.counter m ~labels:[ ("algo", "direct") ] "psn_router_observations" 3;
  Openmetrics.counter m ~labels:[ ("algo", "epidemic") ] "psn_router_observations" 4;
  Openmetrics.histogram m ~help:"Delay" "psn_delay_seconds" (of_list [ 0.5; 2.; 2.1 ]);
  Openmetrics.gauge m ~time_based:true "psn_elapsed_seconds" 1.25;
  m

let test_openmetrics_golden () =
  let got = Openmetrics.render (sample_registry ()) in
  let want =
    "# TYPE psn_delay_seconds histogram\n\
     # HELP psn_delay_seconds Delay\n\
     psn_delay_seconds_bucket{le=\"0.5625\"} 1\n\
     psn_delay_seconds_bucket{le=\"2.25\"} 3\n\
     psn_delay_seconds_bucket{le=\"+Inf\"} 3\n\
     psn_delay_seconds_sum 4.5999999999999996\n\
     psn_delay_seconds_count 3\n\
     # TYPE psn_elapsed_seconds gauge\n\
     psn_elapsed_seconds 1.25\n\
     # TYPE psn_router_observations counter\n\
     psn_router_observations_total{algo=\"direct\"} 3\n\
     psn_router_observations_total{algo=\"epidemic\"} 4\n\
     # TYPE psn_serve_ingested counter\n\
     # HELP psn_serve_ingested Contacts ingested\n\
     psn_serve_ingested_total 12\n\
     # TYPE psn_serve_now_seconds gauge\n\
     psn_serve_now_seconds 99.5\n\
     # EOF\n"
  in
  Alcotest.(check string) "exposition bytes" want got

let test_openmetrics_values_only () =
  let text = Openmetrics.render ~values_only:true (sample_registry ()) in
  Alcotest.(check bool) "time-based family omitted" false
    (List.exists
       (fun l -> String.length l >= 19 && String.equal (String.sub l 0 19) "psn_elapsed_seconds")
       (String.split_on_char '\n' text));
  Alcotest.(check bool) "value families kept" true
    (String.length text > 0
    && List.exists
         (fun l -> String.equal l "psn_serve_ingested_total 12")
         (String.split_on_char '\n' text))

let test_openmetrics_validate () =
  (match Openmetrics.validate (Openmetrics.render (sample_registry ())) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "render does not validate: %s" msg);
  (match Openmetrics.validate (Openmetrics.render ~values_only:true (sample_registry ())) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "values-only render does not validate: %s" msg);
  let invalid text = match Openmetrics.validate text with Error _ -> true | Ok () -> false in
  Alcotest.(check bool) "missing EOF" true (invalid "# TYPE a counter\na_total 1\n");
  Alcotest.(check bool) "content after EOF" true (invalid "# EOF\nx 1\n");
  Alcotest.(check bool) "sample without TYPE" true (invalid "orphan 1\n# EOF\n");
  Alcotest.(check bool) "bad value" true (invalid "# TYPE a gauge\na wat\n# EOF\n");
  Alcotest.(check bool) "bad counter suffix" true (invalid "# TYPE a counter\na 1\n# EOF\n");
  Alcotest.(check bool) "duplicate TYPE" true
    (invalid "# TYPE a gauge\n# TYPE a gauge\na 1\n# EOF\n")

let test_openmetrics_equal_values () =
  let a = sample_registry () in
  let b = sample_registry () in
  Alcotest.(check bool) "identical registries equal" true (Openmetrics.equal_values a b);
  Openmetrics.counter b "psn_extra" 1;
  Alcotest.(check bool) "diverged registries differ" false (Openmetrics.equal_values a b);
  (* time-based families never participate in value equality *)
  let c = sample_registry () in
  let d = sample_registry () in
  Openmetrics.gauge d ~time_based:true "psn_wall_seconds" 123.456;
  Alcotest.(check bool) "time-based divergence invisible" true (Openmetrics.equal_values c d)

(* --- flight recorder --- *)

let with_armed f =
  let path = Filename.temp_file "psn_flight" ".json" in
  Flight.arm ~cap:4 path;
  Fun.protect
    ~finally:(fun () ->
      Flight.disarm ();
      Sys.remove path)
    (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_flight_disarmed_noop () =
  Flight.disarm ();
  Alcotest.(check bool) "disarmed" false (Flight.armed ());
  Flight.note "x" [ ("a", "b") ];
  Flight.dump ~reason:"nothing" ()

let test_flight_dump_and_validate () =
  with_armed (fun path ->
      Flight.note "serve.line" [ ("raw", "inject 0 3") ];
      Flight.note "serve.evict" [ ("count", "2") ];
      Flight.dump ~reason:"test crash" ();
      match Flight.validate (read_file path) with
      | Ok n -> Alcotest.(check int) "both events present" 2 n
      | Error msg -> Alcotest.failf "dump does not validate: %s" msg)

let test_flight_ring_drops_oldest () =
  with_armed (fun path ->
      for i = 1 to 10 do
        Flight.note "tick" [ ("i", string_of_int i) ]
      done;
      Flight.dump ~reason:"overflow" ();
      let text = read_file path in
      match Flight.validate text with
      | Error msg -> Alcotest.failf "dump does not validate: %s" msg
      | Ok n ->
        Alcotest.(check int) "ring capped at 4" 4 n;
        (* the survivors are the newest events, oldest dropped *)
        let has needle =
          let nl = String.length needle and tl = String.length text in
          let rec go i = i + nl <= tl && (String.equal (String.sub text i nl) needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "newest kept" true (has "\"i\":\"10\"");
        Alcotest.(check bool) "oldest dropped" false (has "\"i\":\"1\"\""))

let test_flight_escapes_json () =
  with_armed (fun path ->
      Flight.note "serve.line" [ ("raw", "quote \" backslash \\ newline \n end") ];
      Flight.dump ~reason:"escaping \"test\"" ();
      match Flight.validate (read_file path) with
      | Ok n -> Alcotest.(check int) "event survives escaping" 1 n
      | Error msg -> Alcotest.failf "escaped dump does not validate: %s" msg)

let test_flight_validate_rejects () =
  let invalid text = match Flight.validate text with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true (invalid "");
  Alcotest.(check bool) "not json" true (invalid "hello");
  Alcotest.(check bool) "truncated" true (invalid "{\"version\":1,\"reason\":\"x\",\"events\":[");
  Alcotest.(check bool) "missing keys" true (invalid "{\"a\":1}")

let () =
  Alcotest.run "hist"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "zero/negative/non-finite" `Quick test_special_values;
          Alcotest.test_case "quantile error bound" `Quick test_quantile_error_bound;
          Alcotest.test_case "digest" `Quick test_digest;
          Alcotest.test_case "cumulative shape" `Quick test_cumulative_shape;
        ] );
      ("properties", hist_props);
      ( "openmetrics",
        [
          Alcotest.test_case "golden exposition" `Quick test_openmetrics_golden;
          Alcotest.test_case "values-only rendering" `Quick test_openmetrics_values_only;
          Alcotest.test_case "validator" `Quick test_openmetrics_validate;
          Alcotest.test_case "value equality" `Quick test_openmetrics_equal_values;
        ] );
      ( "flight",
        [
          Alcotest.test_case "disarmed is a no-op" `Quick test_flight_disarmed_noop;
          Alcotest.test_case "dump validates" `Quick test_flight_dump_and_validate;
          Alcotest.test_case "ring drops oldest" `Quick test_flight_ring_drops_oldest;
          Alcotest.test_case "json escaping" `Quick test_flight_escapes_json;
          Alcotest.test_case "validator rejects garbage" `Quick test_flight_validate_rejects;
        ] );
    ]
