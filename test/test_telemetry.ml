(* Telemetry semantics: span forest reconstruction (nesting,
   zero-duration spans, unbalanced ends), deterministic counter merge
   across forked per-domain buffers, fork/join track assignment, and
   the determinism contract — an instrumented run is bit-identical to
   an uninstrumented one. *)

module T = Core.Telemetry

(* One second per clock reading, starting at 0: every timestamp in a
   test is a small known integer. *)
let ticking () =
  let t = ref (-1.) in
  fun () ->
    t := !t +. 1.;
    !t

(* --- span forests --- *)

let test_nesting () =
  let c = T.create ~clock:(ticking ()) () in
  let s = T.sink c in
  T.with_span s "outer" (fun () ->
      T.with_span s "first" (fun () -> ());
      T.with_span s "second" (fun () -> ()));
  let sum = T.close c in
  match sum.T.roots with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.T.s_name;
    Alcotest.(check int) "root track" 0 outer.T.s_track;
    Alcotest.(check (list string)) "children in start order" [ "first"; "second" ]
      (List.map (fun (s : T.span) -> s.T.s_name) outer.T.s_children);
    (* clock: epoch 0, begin outer 1, begin first 2, end first 3,
       begin second 4, end second 5, end outer 6. *)
    Alcotest.(check (float 1e-9)) "outer duration" 5. outer.T.s_duration;
    List.iter
      (fun (child : T.span) ->
        Alcotest.(check (float 1e-9)) "child duration" 1. child.T.s_duration)
      outer.T.s_children
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_zero_duration () =
  let c = T.create ~clock:(fun () -> 4.2) () in
  let s = T.sink c in
  T.with_span s "instant" (fun () -> ());
  let sum = T.close c in
  Alcotest.(check (float 0.)) "elapsed" 0. sum.T.elapsed;
  match sum.T.roots with
  | [ span ] ->
    Alcotest.(check (float 0.)) "start" 0. span.T.s_start;
    Alcotest.(check (float 0.)) "duration" 0. span.T.s_duration
  | _ -> Alcotest.fail "expected one root"

let test_unbalanced () =
  let c = T.create ~clock:(ticking ()) () in
  let s = T.sink c in
  T.end_span s;
  (* nothing open: must be dropped, not crash *)
  T.begin_span s "left-open";
  let sum = T.close c in
  Alcotest.(check int) "dropped ends" 1 sum.T.dropped_ends;
  match sum.T.roots with
  | [ span ] ->
    Alcotest.(check string) "still reported" "left-open" span.T.s_name;
    (* begin at 2 (after the dropped end read 1), closed at elapsed 3. *)
    Alcotest.(check (float 1e-9)) "closed at elapsed" 1. span.T.s_duration
  | _ -> Alcotest.fail "expected the unclosed span as a root"

(* --- counters across forked buffers --- *)

let test_counter_merge () =
  let c = T.create ~clock:(ticking ()) () in
  let s = T.sink c in
  let kids = T.fork s 3 in
  (* Interleave recordings across buffers in an order no schedule would
     produce twice; the merge must not care. *)
  T.count kids.(2) "store.hits" 5;
  T.count kids.(0) "runner.tasks" 1;
  T.count kids.(1) "runner.tasks" 2;
  T.count kids.(0) "store.hits" 7;
  T.count s "runner.tasks" 10;
  T.join s kids;
  let sum = T.close c in
  Alcotest.(check (list (pair string int)))
    "summed and name-sorted"
    [ ("runner.tasks", 13); ("store.hits", 12) ]
    sum.T.counters

let test_fork_tracks () =
  let c = T.create ~clock:(ticking ()) () in
  let s = T.sink c in
  let kids = T.fork s 2 in
  T.with_span kids.(1) "on-two" (fun () -> ());
  T.with_span kids.(0) "on-one" (fun () -> ());
  T.with_span s "on-main" (fun () -> ());
  T.join s kids;
  let sum = T.close c in
  let tracks =
    List.map (fun (sp : T.span) -> (sp.T.s_name, sp.T.s_track)) sum.T.roots
  in
  (* Roots are grouped by ascending track: main 0, then child 0 on
     track 1, child 1 on track 2 — regardless of recording order. *)
  Alcotest.(check (list (pair string int)))
    "deterministic track ids"
    [ ("on-main", 0); ("on-one", 1); ("on-two", 2) ]
    tracks

let test_null_fork () =
  let kids = T.fork T.Sink.null 4 in
  Alcotest.(check int) "null forks to width" 4 (Array.length kids);
  Array.iter (fun k -> Alcotest.(check bool) "child is null" true (T.Sink.is_null k)) kids;
  (* all recording calls must be no-ops *)
  T.count kids.(0) "x" 1;
  T.gauge kids.(1) "y" 2.;
  T.with_span kids.(2) "z" (fun () -> ());
  T.join T.Sink.null kids

(* --- determinism contract --- *)

let sample_trace () =
  Core.Trace.create ~n_nodes:5 ~horizon:2000.
    [
      Core.Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:300.;
      Core.Contact.make ~a:1 ~b:2 ~t_start:120. ~t_end:500.;
      Core.Contact.make ~a:2 ~b:3 ~t_start:400. ~t_end:900.;
      Core.Contact.make ~a:3 ~b:4 ~t_start:800. ~t_end:1500.;
      Core.Contact.make ~a:0 ~b:4 ~t_start:1200. ~t_end:1900.;
    ]

let test_results_unaffected () =
  let trace = sample_trace () in
  let workload =
    {
      Core.Workload.rate = 0.02;
      t_start = 0.;
      t_end = 1000.;
      n_nodes = Core.Trace.n_nodes trace;
    }
  in
  let spec = { Core.Runner.workload; seeds = Core.Runner.default_seeds 3 } in
  let run ?telemetry ~jobs () =
    List.map
      (fun (e : Core.Registry.entry) ->
        Core.Runner.run_algorithm ~jobs ?telemetry ~trace ~spec
          ~factory:e.Core.Registry.factory ())
      Core.Registry.paper_six
  in
  let plain = run ~jobs:1 () in
  let c = T.create () in
  let traced = run ~telemetry:(T.sink c) ~jobs:4 () in
  let sum = T.close c in
  List.iter2
    (fun m1 m2 ->
      Alcotest.(check bool) "bit-identical with active sink" true (Core.Metrics.equal m1 m2))
    plain traced;
  (* and the instrumentation did record the work *)
  Alcotest.(check bool) "tasks counted" true
    (List.mem_assoc "runner.tasks" sum.T.counters)

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "zero duration" `Quick test_zero_duration;
          Alcotest.test_case "unbalanced close" `Quick test_unbalanced;
        ] );
      ( "fan-out",
        [
          Alcotest.test_case "counter merge" `Quick test_counter_merge;
          Alcotest.test_case "fork track ids" `Quick test_fork_tracks;
          Alcotest.test_case "null fork" `Quick test_null_fork;
        ] );
      ( "contract",
        [ Alcotest.test_case "results unaffected" `Quick test_results_unaffected ] );
    ]
