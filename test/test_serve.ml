(* Tests for the online serving subsystem: sliding-window semantics
   (eviction, budget backpressure, batch equivalence against
   Trace.restrict), the line protocol, the adaptive multipath router,
   and whole-server properties — jobs/chunk transcript invariance,
   snapshot round-trips, and the eviction-then-reinsert regression on
   the reused engine scratch. *)

module Window = Core.Serve_window
module Serve = Core.Serve
module Protocol = Core.Serve_protocol
module Multipath = Core.Multipath
module Contact = Core.Contact
module Trace = Core.Trace
module Codec = Core.Store_codec

let c ~a ~b ~s ~e = Contact.make ~a ~b ~t_start:s ~t_end:e

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let window ?(span = 100.) ?(budget = 1000) ?(policy = Window.Slide) ?(nodes = 0) () =
  ok_or_fail "Window.create" (Window.create { Window.span; budget; policy; nodes })

let ingest_ok w contact =
  match ok_or_fail "ingest" (Window.ingest w contact) with
  | Window.Accepted -> ()
  | Window.Rejected_over_budget -> Alcotest.fail "unexpected budget rejection"

(* --- window semantics --- *)

let test_window_validation () =
  let bad cfg = match Window.create cfg with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "zero span" true
    (bad { Window.span = 0.; budget = 1; policy = Window.Drop; nodes = 0 });
  Alcotest.(check bool) "nan span" true
    (bad { Window.span = Float.nan; budget = 1; policy = Window.Drop; nodes = 0 });
  Alcotest.(check bool) "zero budget" true
    (bad { Window.span = 1.; budget = 0; policy = Window.Drop; nodes = 0 });
  Alcotest.(check bool) "negative population" true
    (bad { Window.span = 1.; budget = 1; policy = Window.Drop; nodes = -1 })

let test_window_ordering () =
  let w = window () in
  ingest_ok w (c ~a:0 ~b:1 ~s:50. ~e:60.);
  (match Window.ingest w (c ~a:0 ~b:1 ~s:49. ~e:60.) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-order ingest accepted");
  (* Equal start is fine — ties happen in real traces. *)
  ingest_ok w (c ~a:1 ~b:2 ~s:50. ~e:70.);
  (match Window.advance w 10. with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "backwards advance accepted");
  Alcotest.(check int) "both live" 2 (Window.size w)

let test_window_fixed_population () =
  let w = window ~nodes:3 () in
  ingest_ok w (c ~a:0 ~b:2 ~s:0. ~e:10.);
  (match Window.ingest w (c ~a:1 ~b:3 ~s:5. ~e:10.) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range endpoint accepted");
  Alcotest.(check int) "population pinned" 3 (Window.n_nodes w)

let test_window_eviction () =
  let w = window ~span:100. () in
  ingest_ok w (c ~a:0 ~b:1 ~s:0. ~e:50.);
  ingest_ok w (c ~a:1 ~b:2 ~s:60. ~e:80.);
  ingest_ok w (c ~a:2 ~b:3 ~s:90. ~e:160.);
  Alcotest.(check int) "all live at 90" 3 (Window.size w);
  let evicted = ok_or_fail "advance" (Window.advance w 155.) in
  (* t0 = 55: the [0,50] contact expired, [60,80] still intersects. *)
  Alcotest.(check int) "one eviction at 155" 1 evicted;
  Alcotest.(check int) "two live" 2 (Window.size w);
  let evicted = ok_or_fail "advance" (Window.advance w 200.) in
  Alcotest.(check int) "second eviction at 200" 1 evicted;
  Alcotest.(check int) "one live" 1 (Window.size w);
  Alcotest.(check int) "peak remembers the high water" 3 (Window.peak w);
  let counters = Window.counters w in
  Alcotest.(check int) "evicted counter" 2 counters.Window.evicted;
  Alcotest.(check int) "ingested counter" 3 counters.Window.ingested

let test_window_dead_on_arrival () =
  let w = window ~span:10. () in
  ingest_ok w (c ~a:0 ~b:1 ~s:0. ~e:5.);
  ignore (ok_or_fail "advance" (Window.advance w 1000.));
  (* Arrives already behind the window: counted, never goes live. *)
  ingest_ok w (c ~a:2 ~b:3 ~s:500. ~e:600.);
  Alcotest.(check int) "nothing live" 0 (Window.size w);
  let counters = Window.counters w in
  Alcotest.(check int) "both ingested" 2 counters.Window.ingested;
  Alcotest.(check int) "both evicted" 2 counters.Window.evicted;
  (* ... but the population ratchet and clock did observe it. *)
  Alcotest.(check int) "population ratchet" 4 (Window.n_nodes w)

let test_window_drop_policy () =
  let w = window ~span:1000. ~budget:2 ~policy:Window.Drop () in
  ingest_ok w (c ~a:0 ~b:1 ~s:0. ~e:10.);
  ingest_ok w (c ~a:1 ~b:2 ~s:1. ~e:11.);
  (match ok_or_fail "ingest" (Window.ingest w (c ~a:2 ~b:3 ~s:2. ~e:12.)) with
  | Window.Rejected_over_budget -> ()
  | Window.Accepted -> Alcotest.fail "over-budget ingest accepted under Drop");
  Alcotest.(check int) "size capped" 2 (Window.size w);
  Alcotest.(check int) "drop counted" 1 (Window.counters w).Window.dropped;
  (* Drop keeps the old contents: the rejected newcomer is absent. *)
  let live = Window.contacts w in
  Alcotest.(check bool) "newcomer absent" false
    (List.exists (fun (ct : Contact.t) -> ct.Contact.a = 2 && ct.Contact.b = 3) live)

let test_window_slide_policy () =
  let w = window ~span:1000. ~budget:2 ~policy:Window.Slide () in
  ingest_ok w (c ~a:0 ~b:1 ~s:0. ~e:10.);
  ingest_ok w (c ~a:1 ~b:2 ~s:1. ~e:500.);
  ingest_ok w (c ~a:2 ~b:3 ~s:2. ~e:12.);
  Alcotest.(check int) "size capped" 2 (Window.size w);
  Alcotest.(check int) "budget eviction counted" 1 (Window.counters w).Window.budget_evicted;
  (* Slide evicts the earliest-ending live contact — [0,10]. *)
  let live = Window.contacts w in
  Alcotest.(check bool) "earliest-ending evicted" false
    (List.exists (fun (ct : Contact.t) -> ct.Contact.a = 0 && ct.Contact.b = 1) live);
  Alcotest.(check bool) "newcomer live" true
    (List.exists (fun (ct : Contact.t) -> ct.Contact.a = 2 && ct.Contact.b = 3) live)

(* The load-bearing window guarantee, concrete case: the window trace
   is byte-identical (encoded) to Trace.restrict of the full stream. *)
let test_window_batch_equivalence_concrete () =
  let stream =
    [
      c ~a:0 ~b:1 ~s:0. ~e:60.;
      c ~a:1 ~b:2 ~s:30. ~e:90.;
      c ~a:2 ~b:3 ~s:80. ~e:150.;
      c ~a:0 ~b:3 ~s:120. ~e:130.;
    ]
  in
  let w = window ~span:100. () in
  List.iter (ingest_ok w) stream;
  ignore (ok_or_fail "advance" (Window.advance w 140.));
  let got = ok_or_fail "window trace" (Window.trace w) in
  let full = Trace.create ~n_nodes:(Window.n_nodes w) ~horizon:200. stream in
  let want = Trace.restrict full ~t0:(Window.start w) ~t1:(Window.now w) in
  Alcotest.(check string) "encoded traces equal" (Codec.encode_trace want)
    (Codec.encode_trace got)

(* --- protocol --- *)

let parse_ok line =
  match Protocol.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S: %s" line msg

let test_protocol_parse () =
  (match parse_ok "3,5,10.5,20" with
  | Protocol.Contact ct ->
    Alcotest.(check int) "endpoint a" 3 ct.Contact.a;
    Alcotest.(check int) "endpoint b" 5 ct.Contact.b
  | _ -> Alcotest.fail "contact line not parsed as contact");
  (match parse_ok "advance 42" with
  | Protocol.Advance t -> Alcotest.(check (float 0.)) "advance time" 42. t
  | _ -> Alcotest.fail "advance not parsed");
  (match parse_ok "inject 1 2" with
  | Protocol.Query (Protocol.Inject { src = 1; dst = 2; t = None }) -> ()
  | _ -> Alcotest.fail "inject not parsed");
  (match parse_ok "paths 1 2 30" with
  | Protocol.Query (Protocol.Paths { src = 1; dst = 2; t = Some 30. }) -> ()
  | _ -> Alcotest.fail "paths not parsed");
  (match parse_ok "  # comment " with
  | Protocol.Blank -> ()
  | _ -> Alcotest.fail "comment not blank");
  (match parse_ok "" with
  | Protocol.Blank -> ()
  | _ -> Alcotest.fail "empty not blank");
  (match parse_ok "quit" with
  | Protocol.Query Protocol.Quit -> ()
  | _ -> Alcotest.fail "quit not parsed")

let test_protocol_errors () =
  let bad line = match Protocol.parse line with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "unknown verb" true (bad "frobnicate 1 2");
  Alcotest.(check bool) "self contact" true (bad "1,1,0,10");
  Alcotest.(check bool) "inverted interval" true (bad "1,2,10,5");
  Alcotest.(check bool) "negative endpoint" true (bad "inject -1 2");
  Alcotest.(check bool) "non-numeric time" true (bad "advance soon");
  Alcotest.(check bool) "wrong contact arity" true (bad "1,2,3")

(* --- multipath router --- *)

let router ?(alpha = 0.3) ?(explore = 1) names =
  ok_or_fail "Multipath.create" (Multipath.create { Multipath.alpha; explore } ~names)

let test_multipath_validation () =
  let bad cfg names = match Multipath.create cfg ~names with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "alpha zero" true
    (bad { Multipath.alpha = 0.; explore = 1 } [ "a" ]);
  Alcotest.(check bool) "alpha above one" true
    (bad { Multipath.alpha = 1.5; explore = 1 } [ "a" ]);
  Alcotest.(check bool) "no strategies" true
    (bad { Multipath.alpha = 0.5; explore = 1 } []);
  Alcotest.(check bool) "duplicate names" true
    (bad { Multipath.alpha = 0.5; explore = 1 } [ "a"; "a" ])

let test_multipath_explore_then_exploit () =
  let r = router [ "fast"; "slow" ] in
  (* Below the explore threshold both score optimistically; ties break
     on registration order. *)
  Alcotest.(check string) "optimistic tie" "fast" (Multipath.pick r);
  Multipath.observe r "fast" ~delivered:true ~delay:(Some 10.) ~loss:0.;
  Multipath.observe r "slow" ~delivered:true ~delay:(Some 1.) ~loss:0.;
  (* Both observed once: the lower-delay strategy scores higher
     (1 / 2 vs 1 / 11). *)
  Alcotest.(check string) "exploits lower delay" "slow" (Multipath.pick r);
  (* Five failures drag slow's EWMA success to 0.7^5 ~ 0.168, scoring
     0.084 — under fast's 0.091: the router rebalances. *)
  for _ = 1 to 5 do
    Multipath.observe r "slow" ~delivered:false ~delay:None ~loss:0.
  done;
  Alcotest.(check string) "rebalances on failures" "fast" (Multipath.pick r)

let test_multipath_unknown_name () =
  let r = router [ "only" ] in
  match Multipath.observe r "missing" ~delivered:true ~delay:None ~loss:0. with
  | () -> Alcotest.fail "observe on unknown strategy did not raise"
  | exception Invalid_argument _ -> ()

let test_multipath_dump_load_roundtrip () =
  let cfg = { Multipath.alpha = 0.4; explore = 2 } in
  let r = ok_or_fail "create" (Multipath.create cfg ~names:[ "a"; "b" ]) in
  Multipath.observe r "a" ~delivered:true ~delay:(Some 12.5) ~loss:0.25;
  Multipath.observe r "b" ~delivered:false ~delay:None ~loss:1.;
  Multipath.observe r "a" ~delivered:true ~delay:(Some 3.) ~loss:0.;
  let copy = ok_or_fail "load" (Multipath.load cfg (Multipath.dump r)) in
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " observations") (Multipath.observations r name)
        (Multipath.observations copy name);
      Alcotest.(check (float 0.))
        (name ^ " score") (Multipath.score r name) (Multipath.score copy name))
    (Multipath.names r);
  Alcotest.(check string) "same pick" (Multipath.pick r) (Multipath.pick copy)

let test_multipath_diversity () =
  let path nodes = Core.Path.of_hops (List.mapi (fun i n -> { Core.Path.node = n; step = i }) nodes) in
  (* Two identical paths: zero diversity on both axes. *)
  (match Multipath.diversity [ path [ 0; 1; 2 ]; path [ 0; 1; 2 ] ] with
  | Some (nd, ed) ->
    Alcotest.(check (float 1e-9)) "identical node diversity" 0. nd;
    Alcotest.(check (float 1e-9)) "identical edge diversity" 0. ed
  | None -> Alcotest.fail "diversity of two paths missing");
  (* Node-disjoint paths: full diversity. *)
  (match Multipath.diversity [ path [ 0; 1 ]; path [ 2; 3 ] ] with
  | Some (nd, ed) ->
    Alcotest.(check (float 1e-9)) "disjoint node diversity" 1. nd;
    Alcotest.(check (float 1e-9)) "disjoint edge diversity" 1. ed
  | None -> Alcotest.fail "diversity of disjoint paths missing");
  (* Same node set, different hop order: shared nodes, disjoint edges. *)
  (match Multipath.diversity [ path [ 0; 1; 2; 3 ]; path [ 0; 2; 1; 3 ] ] with
  | Some (nd, ed) ->
    Alcotest.(check (float 1e-9)) "shared nodes" 0. nd;
    Alcotest.(check bool) "edges differ" true (ed > 0.)
  | None -> Alcotest.fail "diversity missing");
  Alcotest.(check bool) "singleton has no diversity" true
    (Option.is_none (Multipath.diversity [ path [ 0; 1 ] ]))

(* --- server --- *)

let default_server ?(jobs = 1) ?chunk ?(span = 1000.) ?(strategies = []) ?faults () =
  ok_or_fail "Serve.create"
    (Serve.create ~jobs ?chunk
       {
         Serve.default_config with
         Serve.window = { Serve.default_config.Serve.window with Window.span };
         strategies;
         faults;
       })

(* A session exercising every query against a stream that slides far
   enough to evict contacts and expire a live message. *)
let session_script =
  [
    "0,1,0,60";
    "1,2,30,90";
    "2,3,80,150";
    "advance 100";
    "inject 0 3";
    "inject 3 0 90";
    "paths 0 3 10";
    "delivery 0 3 10";
    "0,3,120,130";
    "advance 200";
    "route";
    "1,3,1050,1100";
    "advance 1300";
    "stats";
  ]

let run_script server lines =
  List.concat_map
    (fun line ->
      match Serve.handle server line with `Reply r -> r | `Stop r -> r)
    lines

let test_server_oracle_rejected () =
  match
    Serve.create { Serve.default_config with Serve.strategies = [ "greedy-total" ] }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oracle strategy accepted for serving"

let test_server_unknown_strategy () =
  match Serve.create { Serve.default_config with Serve.strategies = [ "warp-drive" ] } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown strategy accepted"

let test_server_errors_are_replies () =
  let s = default_server () in
  let is_err line =
    match Serve.handle s line with
    | `Reply [ r ] -> String.length r >= 3 && String.equal (String.sub r 0 3) "err"
    | _ -> false
  in
  Alcotest.(check bool) "query before any stream time" true (is_err "paths 0 1 5");
  ignore (run_script s [ "0,1,0,50"; "advance 60" ]);
  Alcotest.(check bool) "unknown node" true (is_err "paths 0 9");
  Alcotest.(check bool) "src = dst" true (is_err "delivery 1 1");
  Alcotest.(check bool) "time after now" true (is_err "paths 0 1 60");
  Alcotest.(check bool) "parse failure" true (is_err "gibberish");
  Alcotest.(check bool) "snapshot without store" true (is_err "snapshot")

let test_server_expiry_observed () =
  let s = default_server ~span:100. () in
  let replies =
    run_script s [ "0,1,0,60"; "advance 50"; "inject 0 1"; "5,6,500,510"; "advance 600" ]
  in
  (* The injected message's creation instant (50) slid behind the
     window (t0 = 500): it must expire, never deliver. *)
  Alcotest.(check bool) "expiry reported" true
    (List.exists (fun r -> String.length r >= 7 && String.equal (String.sub r 0 7) "expired") replies);
  let summary = Serve.summary s in
  Alcotest.(check int) "expired counter" 1 summary.Serve.s_expired;
  Alcotest.(check int) "nothing live" 0 summary.Serve.s_live

(* Eviction-then-reinsert (the scratch-reuse regression): a node's
   contacts vanish from the window entirely, the population ratchet
   keeps its id alive, and later contacts reinsert it. Queries spanning
   those reconfigurations share one scratch (jobs = 1) and must match a
   fresh server replaying only the final state. *)
let test_server_evict_then_reinsert () =
  let s = default_server ~span:100. () in
  let prefix =
    [
      "0,1,0,40";
      "1,2,20,60";
      "advance 90";
      "delivery 0 2";
      (* slide node 0 and 1's contacts out entirely *)
      "3,4,200,260";
      "advance 290";
      "delivery 3 4";
      (* reinsert node 0 with a fresh contact *)
      "0,4,300,360";
      "advance 380";
    ]
  in
  let tail = [ "delivery 0 4"; "paths 0 4 310" ] in
  ignore (run_script s prefix);
  let got = run_script s tail in
  (* A fresh server fed the same stream answers identically: the
     reused scratch leaks nothing across window reconfigurations. *)
  let fresh = default_server ~span:100. () in
  ignore (run_script fresh prefix);
  let want = run_script fresh tail in
  Alcotest.(check (list string)) "reused scratch = fresh server" want got;
  Alcotest.(check int) "population ratchet survived eviction" 5
    (Serve.summary s).Serve.s_nodes

(* The metrics surface: the 'metrics' verb answers a valid OpenMetrics
   exposition whose value metrics are byte-identical for any jobs ×
   chunk schedule — the issue's acceptance criterion at library level
   (the CLI-level transcript goldens pin the same bytes end to end). *)
let test_server_metrics_grid () =
  let strategies = [ "direct"; "epidemic" ] in
  let text_for ~jobs ?chunk () =
    let s = default_server ~jobs ?chunk ~strategies () in
    ignore (run_script s session_script);
    Serve.metrics_text s
  in
  let baseline = text_for ~jobs:1 () in
  (match Core.Openmetrics.validate baseline with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "metrics_text does not validate: %s" msg);
  List.iter
    (fun (jobs, chunk) ->
      Alcotest.(check string)
        (Printf.sprintf "metrics identical at jobs=%d chunk=%d" jobs chunk)
        baseline
        (text_for ~jobs ~chunk ()))
    [ (1, 2); (2, 1); (2, 64); (3, 2) ];
  (* the exposition carries the delivery-delay histogram and the
     per-strategy router families *)
  let has needle =
    List.exists
      (fun l ->
        String.length l >= String.length needle
        && String.equal (String.sub l 0 (String.length needle)) needle)
      (String.split_on_char '\n' baseline)
  in
  Alcotest.(check bool) "delay histogram present" true
    (has "# TYPE psn_serve_delivery_delay_seconds histogram");
  Alcotest.(check bool) "batch histogram present" true
    (has "# TYPE psn_serve_ingest_batch_contacts histogram");
  Alcotest.(check bool) "router observations present" true
    (has "psn_serve_router_observations_total{algo=\"direct\"}")

let test_server_metrics_verb () =
  let s = default_server ~strategies:[ "direct" ] () in
  ignore (run_script s session_script);
  match Serve.handle s "metrics" with
  | `Stop _ -> Alcotest.fail "metrics must not stop the session"
  | `Reply lines ->
    Alcotest.(check bool) "non-empty reply" true (List.length lines > 0);
    (match Core.Openmetrics.validate (String.concat "\n" lines ^ "\n") with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "metrics reply does not validate: %s" msg);
    Alcotest.(check string) "reply equals metrics_text"
      (Serve.metrics_text s)
      (String.concat "\n" lines ^ "\n")

let test_server_stats_strategy_table () =
  let s = default_server ~strategies:[ "direct"; "epidemic" ] () in
  let replies = run_script s session_script in
  let strat_lines =
    List.filter
      (fun r -> String.length r >= 6 && String.equal (String.sub r 0 6) "strat ")
      replies
  in
  Alcotest.(check int) "one line per strategy" 2 (List.length strat_lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " carries the EWMA fields") true
        (List.for_all
           (fun field ->
             let fl = String.length field and ll = String.length l in
             let rec go i = i + fl <= ll && (String.equal (String.sub l i fl) field || go (i + 1)) in
             go 0)
           [ "algo="; "obs="; "success="; "loss="; "score=" ]))
    strat_lines

let test_server_snapshot_roundtrip () =
  let half_a = [ "0,1,0,60"; "1,2,30,90"; "advance 80"; "inject 0 2" ] in
  let half_b = [ "2,3,85,150"; "advance 160"; "delivery 1 3 100"; "route"; "stats" ] in
  let original = default_server ~span:1000. () in
  ignore (run_script original half_a);
  let text = Serve.snapshot_text original in
  let restored = ok_or_fail "restore" (Serve.restore text) in
  (* The restored server re-snapshots to the same bytes... *)
  Alcotest.(check string) "snapshot text stable" text (Serve.snapshot_text restored);
  (* ...and continues byte-identically. *)
  let want = run_script original half_b in
  let got = run_script restored half_b in
  Alcotest.(check (list string)) "continuation identical" want got

let test_server_restore_rejects_garbage () =
  let reject text =
    match Serve.restore text with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (reject "");
  Alcotest.(check bool) "bad header" true (reject "psn-serve-snapshot 99\nend\n");
  let s = default_server () in
  ignore (run_script s [ "0,1,0,60"; "advance 50" ]);
  let text = Serve.snapshot_text s in
  let truncated = String.sub text 0 (String.length text / 2) in
  Alcotest.(check bool) "truncated" true (reject truncated)

(* --- properties --- *)

let qcheck_tests =
  let open QCheck2 in
  (* Random monotone contact streams: bounded node ids, nondecreasing
     starts, positive durations — the shape Trace_io files have. *)
  let stream_gen =
    let contact =
      Gen.map3
        (fun a d (s_step, dur) -> (a, d, s_step, dur))
        (Gen.int_range 0 5) (Gen.int_range 1 5)
        (Gen.pair (Gen.int_range 0 30) (Gen.int_range 1 120))
    in
    Gen.map
      (fun raw ->
        let t = ref 0. in
        List.filter_map
          (fun (a, d, s_step, dur) ->
            t := !t +. float_of_int s_step;
            let b = (a + d) mod 7 in
            if a = b then None
            else
              let a, b = (Int.min a b, Int.max a b) in
              Some (c ~a ~b ~s:!t ~e:(!t +. float_of_int dur)))
          raw)
      (Gen.list_size (Gen.int_range 1 40) contact)
  in
  [
    (* The tentpole property: ingesting chunk by chunk (any chunk
       size), the window trace equals the batch restriction of the
       full stream to [start, now) — byte-for-byte once encoded. *)
    Test.make ~count:200 ~name:"chunked window = Trace.restrict of the batch trace"
      ~print:(fun (stream, span, chunk_size) ->
        Printf.sprintf "span=%g chunk=%d contacts=%d" span chunk_size (List.length stream))
      (Gen.triple stream_gen (Gen.oneofl [ 25.; 60.; 150.; 10_000. ]) (Gen.int_range 1 7))
      (fun (stream, span, chunk_size) ->
        let w =
          match Window.create { Window.span; budget = 10_000; policy = Window.Slide; nodes = 0 }
          with
          | Ok w -> w
          | Error msg -> Test.fail_report msg
        in
        (* feed in chunks, advancing between chunks like a server would *)
        List.iteri
          (fun i contact ->
            (match Window.ingest w contact with
            | Ok _ -> ()
            | Error msg -> Test.fail_report msg);
            if (i + 1) mod chunk_size = 0 then
              match Window.advance w (Window.now w) with
              | Ok _ -> ()
              | Error msg -> Test.fail_report msg)
          stream;
        match Window.trace w with
        | Error _ -> Window.now w = 0. || Window.n_nodes w = 0
        | Ok got ->
          let horizon =
            List.fold_left
              (fun acc (ct : Contact.t) -> Float.max acc ct.Contact.t_end)
              (Window.now w) stream
            +. 1.
          in
          let full = Trace.create ~n_nodes:(Window.n_nodes w) ~horizon stream in
          let want = Trace.restrict full ~t0:(Window.start w) ~t1:(Window.now w) in
          String.equal (Codec.encode_trace want) (Codec.encode_trace got));
    (* Budget enforcement: under either policy the live count never
       exceeds the budget, and every ingest is accounted exactly once
       across ingested/dropped. *)
    Test.make ~count:200 ~name:"budget is a hard cap under both policies"
      ~print:(fun (stream, budget, slide) ->
        Printf.sprintf "budget=%d policy=%s contacts=%d" budget
          (if slide then "slide" else "drop")
          (List.length stream))
      (Gen.triple stream_gen (Gen.int_range 1 5) Gen.bool)
      (fun (stream, budget, slide) ->
        let policy = if slide then Window.Slide else Window.Drop in
        let w =
          match Window.create { Window.span = 500.; budget; policy; nodes = 0 } with
          | Ok w -> w
          | Error msg -> Test.fail_report msg
        in
        let within_cap = ref true in
        List.iter
          (fun contact ->
            (match Window.ingest w contact with
            | Ok _ -> ()
            | Error msg -> Test.fail_report msg);
            if Window.size w > budget then within_cap := false)
          stream;
        let counters = Window.counters w in
        !within_cap
        && Window.peak w <= budget
        && counters.Window.ingested + counters.Window.dropped = List.length stream
        && (slide || counters.Window.budget_evicted = 0)
        && (not slide || counters.Window.dropped = 0));
    (* Server-level jobs/chunk invariance: the full query transcript is
       identical whatever the fan-out schedule. *)
    Test.make ~count:25 ~name:"serve transcript identical for any jobs x chunk"
      ~print:(fun (jobs, chunk) -> Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
      (Gen.pair (Gen.oneofl [ 2; 3 ]) (Gen.oneofl [ 1; 2; 64 ]))
      (fun (jobs, chunk) ->
        let baseline = run_script (default_server ~jobs:1 ()) session_script in
        let chunked = run_script (default_server ~jobs ~chunk ()) session_script in
        List.equal String.equal baseline chunked);
    (* Snapshot/restore at a random cut point: the resumed transcript's
       tail equals the uninterrupted run's. *)
    Test.make ~count:40 ~name:"snapshot cut anywhere resumes byte-identically"
      ~print:(fun cut -> Printf.sprintf "cut=%d" cut)
      (Gen.int_range 0 (List.length session_script))
      (fun cut ->
        let original = default_server () in
        let before = List.filteri (fun i _ -> i < cut) session_script in
        let after = List.filteri (fun i _ -> i >= cut) session_script in
        ignore (run_script original before);
        let restored =
          match Serve.restore (Serve.snapshot_text original) with
          | Ok s -> s
          | Error msg -> Test.fail_report msg
        in
        List.equal String.equal (run_script original after) (run_script restored after));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "serve"
    [
      ( "window",
        [
          Alcotest.test_case "config validation" `Quick test_window_validation;
          Alcotest.test_case "monotone ingest, forward advance" `Quick test_window_ordering;
          Alcotest.test_case "fixed population" `Quick test_window_fixed_population;
          Alcotest.test_case "eviction" `Quick test_window_eviction;
          Alcotest.test_case "dead on arrival" `Quick test_window_dead_on_arrival;
          Alcotest.test_case "drop policy" `Quick test_window_drop_policy;
          Alcotest.test_case "slide policy" `Quick test_window_slide_policy;
          Alcotest.test_case "batch equivalence (concrete)" `Quick
            test_window_batch_equivalence_concrete;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
        ] );
      ( "multipath",
        [
          Alcotest.test_case "config validation" `Quick test_multipath_validation;
          Alcotest.test_case "explore then exploit" `Quick test_multipath_explore_then_exploit;
          Alcotest.test_case "unknown name raises" `Quick test_multipath_unknown_name;
          Alcotest.test_case "dump/load round-trip" `Quick test_multipath_dump_load_roundtrip;
          Alcotest.test_case "diversity" `Quick test_multipath_diversity;
        ] );
      ( "server",
        [
          Alcotest.test_case "oracle strategies rejected" `Quick test_server_oracle_rejected;
          Alcotest.test_case "unknown strategy rejected" `Quick test_server_unknown_strategy;
          Alcotest.test_case "errors come back as replies" `Quick test_server_errors_are_replies;
          Alcotest.test_case "expiry observed" `Quick test_server_expiry_observed;
          Alcotest.test_case "evict then reinsert" `Quick test_server_evict_then_reinsert;
          Alcotest.test_case "metrics bit-identical across jobs x chunk" `Quick
            test_server_metrics_grid;
          Alcotest.test_case "metrics verb" `Quick test_server_metrics_verb;
          Alcotest.test_case "stats strategy table" `Quick test_server_stats_strategy_table;
          Alcotest.test_case "snapshot round-trip" `Quick test_server_snapshot_roundtrip;
          Alcotest.test_case "restore rejects garbage" `Quick test_server_restore_rejects_garbage;
        ] );
      ("properties", qcheck_tests);
    ]
