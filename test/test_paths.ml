(* Tests for the psn_paths library: path validity predicates, the
   Fig. 3 enumeration algorithm (against hand-worked scenarios and the
   flooding oracle), and the explosion metrics. *)

module Contact = Core.Contact
module Trace = Core.Trace
module Snapshot = Core.Snapshot
module Path = Core.Path
module Enumerate = Core.Enumerate
module Explosion = Core.Explosion
module Reachability = Core.Reachability
module Rng = Core.Rng

let feps = Alcotest.float 1e-9

let hop node step = { Path.node; step }

(* A fixed scenario used across the predicate tests:
   step 1: 0-1        step 2: 1-2, 0-3      step 3: 2-3, 1-3 *)
let scenario_snapshot () =
  let t =
    Trace.create ~n_nodes:4 ~horizon:40.
      [
        Contact.make ~a:0 ~b:1 ~t_start:1. ~t_end:9.;
        Contact.make ~a:1 ~b:2 ~t_start:11. ~t_end:19.;
        Contact.make ~a:0 ~b:3 ~t_start:12. ~t_end:18.;
        Contact.make ~a:2 ~b:3 ~t_start:21. ~t_end:29.;
        Contact.make ~a:1 ~b:3 ~t_start:22. ~t_end:28.;
      ]
  in
  Snapshot.of_trace t

(* --- Path basics --- *)

let test_path_of_hops_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Path.of_hops: empty path") (fun () ->
      ignore (Path.of_hops []));
  Alcotest.check_raises "time travel"
    (Invalid_argument "Path.of_hops: steps must be non-decreasing") (fun () ->
      ignore (Path.of_hops [ hop 0 5; hop 1 3 ]))

let test_path_accessors () =
  let p = Path.of_hops [ hop 0 1; hop 1 2; hop 2 2; hop 3 4 ] in
  Alcotest.(check int) "length" 4 (Path.length p);
  Alcotest.(check int) "transfers" 3 (Path.transfers p);
  Alcotest.(check int) "source" 0 (Path.source p);
  Alcotest.(check int) "last node" 3 (Path.last_node p);
  Alcotest.(check int) "first step" 1 (Path.first_step p);
  Alcotest.(check int) "last step" 4 (Path.last_step p);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3 ] (Path.nodes p)

let test_path_duration () =
  let grid = Core.Timegrid.create ~horizon:100. () in
  let p = Path.of_hops [ hop 0 1; hop 1 5 ] in
  Alcotest.check feps "duration" 47. (Path.duration grid p ~t_create:3.)

let test_loop_free () =
  Alcotest.(check bool) "loop free" true (Path.is_loop_free (Path.of_hops [ hop 0 1; hop 1 2 ]));
  Alcotest.(check bool) "loop" false
    (Path.is_loop_free (Path.of_hops [ hop 0 1; hop 1 2; hop 0 3 ]))

let test_minimal_progress () =
  let p = Path.of_hops [ hop 0 1; hop 2 2; hop 3 3 ] in
  Alcotest.(check bool) "dst at end ok" true (Path.respects_minimal_progress p ~dst:3);
  Alcotest.(check bool) "dst in middle bad" false (Path.respects_minimal_progress p ~dst:2);
  Alcotest.(check bool) "dst absent ok" true (Path.respects_minimal_progress p ~dst:9)

let test_first_preference () =
  let snap = scenario_snapshot () in
  (* Node 0 meets node 3 in step 2. A path holding the message at node 0
     through step 2 but delivering to 3 only at step 3 is dominated. *)
  let bad = Path.of_hops [ hop 0 1; hop 1 2; hop 3 3 ] in
  Alcotest.(check bool) "path via node 1 at step 2 delivering step 3, src 0 met dst step 2" false
    (Path.respects_first_preference snap bad ~dst:3);
  (* Delivering exactly at the step where the contact happens is fine. *)
  let ok = Path.of_hops [ hop 0 1; hop 3 2 ] in
  Alcotest.(check bool) "same-step delivery allowed" true
    (Path.respects_first_preference snap ok ~dst:3)

let test_feasibility () =
  let snap = scenario_snapshot () in
  Alcotest.(check bool) "real path feasible" true
    (Path.is_feasible snap (Path.of_hops [ hop 0 1; hop 1 1; hop 2 2 ]));
  Alcotest.(check bool) "teleport infeasible" false
    (Path.is_feasible snap (Path.of_hops [ hop 0 1; hop 2 1 ]))

let test_path_equal_compare () =
  let p = Path.of_hops [ hop 0 1; hop 1 2 ] in
  let q = Path.of_hops [ hop 0 1; hop 1 2 ] in
  let r = Path.of_hops [ hop 0 1; hop 2 2 ] in
  Alcotest.(check bool) "equal" true (Path.equal p q);
  Alcotest.(check bool) "not equal" false (Path.equal p r);
  Alcotest.(check int) "compare equal" 0 (Path.compare p q)

(* --- Enumeration: hand-worked scenarios --- *)

let run ?(k = 100) ?stop snap ~src ~dst ~t_create =
  Enumerate.run
    ~config:{ Enumerate.k; max_hops = None; stop_at_total = stop; exhaustive = false }
    snap ~src ~dst ~t_create

let test_enumerate_two_hop () =
  (* 0-1 in step 2 only, 1-2 in step 4 only: exactly one valid path. *)
  let t =
    Trace.create ~n_nodes:3 ~horizon:60.
      [
        Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19.;
        Contact.make ~a:1 ~b:2 ~t_start:31. ~t_end:39.;
      ]
  in
  let snap = Snapshot.of_trace t in
  let result = run snap ~src:0 ~dst:2 ~t_create:0. in
  Alcotest.(check int) "one path" 1 (Array.length result.Enumerate.arrivals);
  let a = result.Enumerate.arrivals.(0) in
  Alcotest.check feps "arrival time" 40. a.Enumerate.time;
  Alcotest.(check (list int)) "route" [ 0; 1; 2 ] (Path.nodes a.Enumerate.path)

let test_enumerate_parallel_relays () =
  (* Two disjoint relays move the message from 0 to 3: 0-1 and 0-2 in
     step 2, then 1-3 and 2-3 in step 4 -> exactly two valid paths. *)
  let t =
    Trace.create ~n_nodes:4 ~horizon:60.
      [
        Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19.;
        Contact.make ~a:0 ~b:2 ~t_start:12. ~t_end:18.;
        Contact.make ~a:1 ~b:3 ~t_start:31. ~t_end:39.;
        Contact.make ~a:2 ~b:3 ~t_start:32. ~t_end:38.;
      ]
  in
  let snap = Snapshot.of_trace t in
  let result = run snap ~src:0 ~dst:3 ~t_create:0. in
  Alcotest.(check int) "two paths" 2 (Array.length result.Enumerate.arrivals);
  Array.iter
    (fun (a : Enumerate.arrival) -> Alcotest.check feps "same arrival step" 40. a.Enumerate.time)
    result.Enumerate.arrivals

let test_enumerate_first_preference_pruning () =
  (* 0-1 step 2; 1 meets dst 2 at step 3 AND relays to 3 at step 3; 3
     meets dst at step 5. The path 0-1-3-2 would deliver at step 5 but
     node 1 already met the destination at step 3 -> only two valid
     paths: 0-1-2 (step 3) and nothing via 3. *)
  let t =
    Trace.create ~n_nodes:4 ~horizon:80.
      [
        Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19.;
        Contact.make ~a:1 ~b:2 ~t_start:21. ~t_end:29.;
        Contact.make ~a:1 ~b:3 ~t_start:22. ~t_end:28.;
        Contact.make ~a:2 ~b:3 ~t_start:41. ~t_end:49.;
      ]
  in
  let snap = Snapshot.of_trace t in
  let result = run snap ~src:0 ~dst:2 ~t_create:0. in
  let routes =
    Array.to_list result.Enumerate.arrivals
    |> List.map (fun (a : Enumerate.arrival) -> Path.nodes a.Enumerate.path)
  in
  Alcotest.(check bool) "direct relay delivered" true (List.mem [ 0; 1; 2 ] routes);
  Alcotest.(check bool) "dominated path pruned" false (List.mem [ 0; 1; 3; 2 ] routes)

let test_enumerate_same_step_chain_delivery () =
  (* 0-1 and 1-2 in the same step: the chain 0->1->2 delivers in one
     step even though node 1 first received the message that step. *)
  let t =
    Trace.create ~n_nodes:3 ~horizon:60.
      [
        Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19.;
        Contact.make ~a:1 ~b:2 ~t_start:12. ~t_end:18.;
      ]
  in
  let snap = Snapshot.of_trace t in
  let result = run snap ~src:0 ~dst:2 ~t_create:0. in
  Alcotest.(check int) "one path" 1 (Array.length result.Enumerate.arrivals);
  Alcotest.check feps "delivered in step 2" 20. result.Enumerate.arrivals.(0).Enumerate.time

let test_enumerate_k_stop () =
  (* A clique of relays creates many paths in the same step; with a tiny
     k the enumeration stops at that step and reports stopped_early. *)
  let contacts =
    List.concat_map
      (fun r ->
        [
          Contact.make ~a:0 ~b:r ~t_start:11. ~t_end:19.;
          Contact.make ~a:r ~b:6 ~t_start:31. ~t_end:39.;
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  let t = Trace.create ~n_nodes:7 ~horizon:60. contacts in
  let snap = Snapshot.of_trace t in
  let result = run ~k:3 snap ~src:0 ~dst:6 ~t_create:0. in
  Alcotest.(check bool) "stopped early" true result.Enumerate.stopped_early;
  Alcotest.(check int) "k arrivals recorded" 3 (Array.length result.Enumerate.arrivals)

let test_enumerate_stop_at_total () =
  let contacts =
    List.concat_map
      (fun r ->
        [
          Contact.make ~a:0 ~b:r ~t_start:11. ~t_end:19.;
          Contact.make ~a:r ~b:6 ~t_start:31. ~t_end:39.;
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  let t = Trace.create ~n_nodes:7 ~horizon:60. contacts in
  let snap = Snapshot.of_trace t in
  let result = run ~k:100 ~stop:2 snap ~src:0 ~dst:6 ~t_create:0. in
  Alcotest.(check bool) "stopped early" true result.Enumerate.stopped_early;
  Alcotest.(check int) "two arrivals" 2 (Array.length result.Enumerate.arrivals)

let test_enumerate_no_delivery () =
  let t =
    Trace.create ~n_nodes:3 ~horizon:60. [ Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19. ]
  in
  let snap = Snapshot.of_trace t in
  let result = run snap ~src:0 ~dst:2 ~t_create:0. in
  Alcotest.(check int) "no arrivals" 0 (Array.length result.Enumerate.arrivals);
  Alcotest.(check bool) "not early" false result.Enumerate.stopped_early;
  Alcotest.(check (option unit)) "first_arrival none" None
    (Option.map ignore (Enumerate.first_arrival result))

let test_enumerate_errors () =
  let t =
    Trace.create ~n_nodes:3 ~horizon:60. [ Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19. ]
  in
  let snap = Snapshot.of_trace t in
  Alcotest.check_raises "src=dst" (Invalid_argument "Enumerate.run: src = dst") (fun () ->
      ignore (run snap ~src:1 ~dst:1 ~t_create:0.))

(* --- Enumeration properties on random traces --- *)

let random_trace rng =
  let n_nodes = 6 + Rng.int rng 8 in
  let n_contacts = 30 + Rng.int rng 60 in
  let contacts =
    List.init n_contacts (fun _ ->
        let a = Rng.int rng n_nodes in
        let b = (a + 1 + Rng.int rng (n_nodes - 1)) mod n_nodes in
        let s = Rng.float rng 500. in
        Contact.make ~a ~b ~t_start:s ~t_end:(s +. 5. +. Rng.float rng 60.))
  in
  Trace.create ~n_nodes ~horizon:600. contacts

let test_property_arrivals_valid_and_feasible () =
  let rng = Rng.create ~seed:101L () in
  for _ = 1 to 25 do
    let trace = random_trace rng in
    let snap = Snapshot.of_trace trace in
    let n = Trace.n_nodes trace in
    let src = Rng.int rng n in
    let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
    let result = run ~k:50 ~stop:300 snap ~src ~dst ~t_create:(Rng.float rng 200.) in
    Array.iter
      (fun (a : Enumerate.arrival) ->
        let p = a.Enumerate.path in
        if not (Path.is_valid snap p ~dst) then
          Alcotest.failf "invalid path %a" (fun ppf -> Path.pp ppf) p;
        if not (Path.is_feasible snap p) then
          Alcotest.failf "infeasible path %a" (fun ppf -> Path.pp ppf) p;
        if Path.source p <> src then Alcotest.fail "wrong source";
        if Path.last_node p <> dst then Alcotest.fail "wrong destination")
      result.Enumerate.arrivals
  done

let test_property_first_arrival_matches_flood () =
  let rng = Rng.create ~seed:202L () in
  for _ = 1 to 40 do
    let trace = random_trace rng in
    let snap = Snapshot.of_trace trace in
    let n = Trace.n_nodes trace in
    let src = Rng.int rng n in
    let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
    let t_create = Rng.float rng 200. in
    let flood = Reachability.flood snap ~src ~t_create in
    let result = run ~k:50 ~stop:50 snap ~src ~dst ~t_create in
    match (Reachability.arrival_time flood dst, Enumerate.first_arrival result) with
    | None, None -> ()
    | Some tf, Some a ->
      if not (Float.equal tf a.Enumerate.time) then
        Alcotest.failf "flood %f vs enumerate %f" tf a.Enumerate.time
    | Some tf, None -> Alcotest.failf "flood delivers at %f, enumeration found nothing" tf
    | None, Some a -> Alcotest.failf "enumeration delivers at %f, flood found nothing" a.Enumerate.time
  done

let test_property_arrivals_chronological () =
  let rng = Rng.create ~seed:303L () in
  for _ = 1 to 20 do
    let trace = random_trace rng in
    let snap = Snapshot.of_trace trace in
    let n = Trace.n_nodes trace in
    let src = Rng.int rng n in
    let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
    let result = run ~k:50 ~stop:300 snap ~src ~dst ~t_create:0. in
    let times = Enumerate.arrival_times result in
    for i = 1 to Array.length times - 1 do
      if times.(i) < times.(i - 1) then Alcotest.fail "arrivals not chronological"
    done
  done

(* The non-exhaustive mode must agree with the exhaustive algorithm on
   the first arrival exactly and may only undercount later arrivals. *)
let test_property_fast_mode_vs_exhaustive () =
  let rng = Rng.create ~seed:505L () in
  for _ = 1 to 20 do
    let trace = random_trace rng in
    let snap = Snapshot.of_trace trace in
    let n = Trace.n_nodes trace in
    let src = Rng.int rng n in
    let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
    let t_create = Rng.float rng 200. in
    let go exhaustive =
      Enumerate.run
        ~config:{ Enumerate.k = 40; max_hops = None; stop_at_total = Some 300; exhaustive }
        snap ~src ~dst ~t_create
    in
    let fast = go false and exact = go true in
    (match (Enumerate.first_arrival fast, Enumerate.first_arrival exact) with
    | None, None -> ()
    | Some a, Some b ->
      if not (Float.equal a.Enumerate.time b.Enumerate.time) then
        Alcotest.failf "first arrival differs: fast %.0f vs exact %.0f" a.Enumerate.time
          b.Enumerate.time
    | Some _, None -> Alcotest.fail "fast mode delivered where exact did not"
    | None, Some _ -> Alcotest.fail "fast mode missed the first arrival");
    if
      (not exact.Enumerate.stopped_early)
      && (not fast.Enumerate.stopped_early)
      && Array.length fast.Enumerate.arrivals > Array.length exact.Enumerate.arrivals
    then
      Alcotest.failf "fast mode overcounts: %d vs %d"
        (Array.length fast.Enumerate.arrivals)
        (Array.length exact.Enumerate.arrivals)
  done

let test_property_paths_distinct () =
  let rng = Rng.create ~seed:404L () in
  for _ = 1 to 15 do
    let trace = random_trace rng in
    let snap = Snapshot.of_trace trace in
    let n = Trace.n_nodes trace in
    let src = Rng.int rng n in
    let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
    let result = run ~k:30 ~stop:200 snap ~src ~dst ~t_create:0. in
    let paths = Array.to_list result.Enumerate.arrivals |> List.map (fun a -> a.Enumerate.path) in
    let sorted = List.sort_uniq Path.compare paths in
    Alcotest.(check int) "all paths distinct" (List.length paths) (List.length sorted)
  done

(* --- Explosion --- *)

let explosion_fixture () =
  (* Clique scenario producing a burst of arrivals. *)
  let contacts =
    List.concat_map
      (fun r ->
        [
          Contact.make ~a:0 ~b:r ~t_start:11. ~t_end:19.;
          Contact.make ~a:r ~b:6 ~t_start:31. ~t_end:39.;
        ])
      [ 1; 2; 3; 4; 5 ]
    @ [ Contact.make ~a:0 ~b:6 ~t_start:51. ~t_end:59. ]
  in
  let t = Trace.create ~n_nodes:7 ~horizon:80. contacts in
  run ~k:100 (Snapshot.of_trace t) ~src:0 ~dst:6 ~t_create:0.

let test_explosion_analyze () =
  let result = explosion_fixture () in
  let s = Explosion.analyze ~n_explosion:3 result in
  Alcotest.(check bool) "delivered" true s.Explosion.delivered;
  Alcotest.check feps "t1" 40. (Option.get s.Explosion.t1);
  Alcotest.check feps "optimal duration" 40. (Option.get s.Explosion.optimal_duration);
  Alcotest.check feps "tn" 40. (Option.get s.Explosion.tn);
  Alcotest.check feps "te zero (burst)" 0. (Option.get s.Explosion.te)

let test_explosion_not_reached () =
  let result = explosion_fixture () in
  let s = Explosion.analyze ~n_explosion:10_000 result in
  Alcotest.(check bool) "delivered" true s.Explosion.delivered;
  Alcotest.(check (option unit)) "no tn" None (Option.map ignore s.Explosion.tn);
  Alcotest.(check (option unit)) "no te" None (Option.map ignore s.Explosion.te)

let test_explosion_empty () =
  let t =
    Trace.create ~n_nodes:3 ~horizon:60. [ Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19. ]
  in
  let result = run (Snapshot.of_trace t) ~src:0 ~dst:2 ~t_create:0. in
  let s = Explosion.analyze result in
  Alcotest.(check bool) "not delivered" false s.Explosion.delivered;
  Alcotest.(check int) "no arrivals" 0 s.Explosion.n_arrivals

let test_explosion_cumulative_monotone () =
  let result = explosion_fixture () in
  let staircase = Explosion.cumulative result in
  let rec check = function
    | (t1, c1) :: ((t2, c2) :: _ as rest) ->
      Alcotest.(check bool) "time increasing" true (t1 < t2);
      Alcotest.(check bool) "count increasing" true (c1 < c2);
      check rest
    | _ -> ()
  in
  check staircase;
  match List.rev staircase with
  | (_, last) :: _ ->
    Alcotest.(check int) "total matches" (Array.length result.Enumerate.arrivals) last
  | [] -> Alcotest.fail "empty staircase"

let test_explosion_relative_offsets () =
  let result = explosion_fixture () in
  match Explosion.arrivals_relative_to_t1 result with
  | [] -> Alcotest.fail "no offsets"
  | first :: _ as offsets ->
    Alcotest.check feps "first offset zero" 0. first;
    List.iter (fun o -> if o < 0. then Alcotest.fail "negative offset") offsets

let test_explosion_growth_rate () =
  (* Synthetic exponential arrivals: count doubles every second. *)
  let result = explosion_fixture () in
  match Explosion.growth_rate result with
  | None -> ()  (* burst arrivals may collapse to one distinct time *)
  | Some fit -> Alcotest.(check bool) "rate finite" true (Float.is_finite fit.Core.Regression.slope)

let () =
  Alcotest.run "psn_paths"
    [
      ( "path",
        [
          Alcotest.test_case "of_hops validation" `Quick test_path_of_hops_validation;
          Alcotest.test_case "accessors" `Quick test_path_accessors;
          Alcotest.test_case "duration" `Quick test_path_duration;
          Alcotest.test_case "loop freedom" `Quick test_loop_free;
          Alcotest.test_case "minimal progress" `Quick test_minimal_progress;
          Alcotest.test_case "first preference" `Quick test_first_preference;
          Alcotest.test_case "feasibility" `Quick test_feasibility;
          Alcotest.test_case "equality and order" `Quick test_path_equal_compare;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "two-hop relay" `Quick test_enumerate_two_hop;
          Alcotest.test_case "parallel relays" `Quick test_enumerate_parallel_relays;
          Alcotest.test_case "first-preference pruning" `Quick test_enumerate_first_preference_pruning;
          Alcotest.test_case "same-step chain delivery" `Quick test_enumerate_same_step_chain_delivery;
          Alcotest.test_case "k-in-one-step stop" `Quick test_enumerate_k_stop;
          Alcotest.test_case "total-arrivals stop" `Quick test_enumerate_stop_at_total;
          Alcotest.test_case "no delivery" `Quick test_enumerate_no_delivery;
          Alcotest.test_case "errors" `Quick test_enumerate_errors;
        ] );
      ( "enumerate-properties",
        [
          Alcotest.test_case "arrivals valid and feasible" `Slow
            test_property_arrivals_valid_and_feasible;
          Alcotest.test_case "first arrival = flooding oracle" `Slow
            test_property_first_arrival_matches_flood;
          Alcotest.test_case "arrivals chronological" `Slow test_property_arrivals_chronological;
          Alcotest.test_case "paths distinct" `Slow test_property_paths_distinct;
          Alcotest.test_case "fast mode vs exhaustive" `Slow test_property_fast_mode_vs_exhaustive;
        ] );
      ( "explosion",
        [
          Alcotest.test_case "analyze" `Quick test_explosion_analyze;
          Alcotest.test_case "threshold not reached" `Quick test_explosion_not_reached;
          Alcotest.test_case "undelivered message" `Quick test_explosion_empty;
          Alcotest.test_case "cumulative staircase" `Quick test_explosion_cumulative_monotone;
          Alcotest.test_case "relative offsets" `Quick test_explosion_relative_offsets;
          Alcotest.test_case "growth rate fit" `Quick test_explosion_growth_rate;
        ] );
    ]
