(* Tests for the psn_spacetime library: the time grid, per-step contact
   snapshots, the formal space-time graph, and epidemic flooding. *)

module Contact = Core.Contact
module Trace = Core.Trace
module Timegrid = Core.Timegrid
module Snapshot = Core.Snapshot
module Stgraph = Core.Stgraph
module Reachability = Core.Reachability

let feps = Alcotest.float 1e-9

(* --- Timegrid --- *)

let test_grid_basics () =
  let g = Timegrid.create ~horizon:100. () in
  Alcotest.check feps "delta default" 10. (Timegrid.delta g);
  Alcotest.(check int) "steps" 10 (Timegrid.n_steps g);
  Alcotest.(check int) "step of 0" 1 (Timegrid.step_of_time g 0.);
  Alcotest.(check int) "step of 9.99" 1 (Timegrid.step_of_time g 9.99);
  Alcotest.(check int) "step of 10" 2 (Timegrid.step_of_time g 10.);
  Alcotest.(check int) "step of 99.9" 10 (Timegrid.step_of_time g 99.9);
  Alcotest.check feps "time of step" 30. (Timegrid.time_of_step g 3)

let test_grid_intervals () =
  let g = Timegrid.create ~delta:5. ~horizon:20. () in
  let lo, hi = Timegrid.interval_of_step g 2 in
  Alcotest.check feps "lo" 5. lo;
  Alcotest.check feps "hi" 10. hi

let test_grid_overlap () =
  let g = Timegrid.create ~horizon:100. () in
  let first, last = Timegrid.steps_overlapping g ~t_start:12. ~t_end:31. in
  (* [12, 31) intersects steps 2 (10-20), 3 (20-30), 4 (30-40) *)
  Alcotest.(check int) "first" 2 first;
  Alcotest.(check int) "last" 4 last;
  let first, last = Timegrid.steps_overlapping g ~t_start:10. ~t_end:20. in
  Alcotest.(check int) "exact bin first" 2 first;
  Alcotest.(check int) "exact bin last" 2 last

let test_grid_errors () =
  let g = Timegrid.create ~horizon:100. () in
  Alcotest.check_raises "time past horizon"
    (Invalid_argument "Timegrid.step_of_time: outside horizon") (fun () ->
      ignore (Timegrid.step_of_time g 100.));
  Alcotest.check_raises "step 0" (Invalid_argument "Timegrid: step out of range") (fun () ->
      ignore (Timegrid.time_of_step g 0))

(* --- Snapshot --- *)

(* Nodes 0-1 touch in step 1; 0-1, 1-2, 2-3 in step 2; nothing later. *)
let sample_trace () =
  Trace.create ~n_nodes:5 ~horizon:50.
    [
      Contact.make ~a:0 ~b:1 ~t_start:2. ~t_end:8.;
      Contact.make ~a:0 ~b:1 ~t_start:12. ~t_end:18.;
      Contact.make ~a:1 ~b:2 ~t_start:13. ~t_end:19.;
      Contact.make ~a:2 ~b:3 ~t_start:11. ~t_end:14.;
    ]

let test_snapshot_neighbours () =
  let snap = Snapshot.of_trace (sample_trace ()) in
  Alcotest.(check (list int)) "step1 n0" [ 1 ] (Snapshot.neighbours snap ~step:1 0);
  Alcotest.(check (list int)) "step2 n1" [ 0; 2 ] (Snapshot.neighbours snap ~step:2 1);
  Alcotest.(check (list int)) "step3 empty" [] (Snapshot.neighbours snap ~step:3 1);
  Alcotest.(check bool) "in_contact" true (Snapshot.in_contact snap ~step:2 2 3);
  Alcotest.(check bool) "not in contact" false (Snapshot.in_contact snap ~step:1 2 3)

let test_snapshot_edges_dedup () =
  (* Two contacts of the same pair within one step produce one edge. *)
  let t =
    Trace.create ~n_nodes:2 ~horizon:20.
      [
        Contact.make ~a:0 ~b:1 ~t_start:1. ~t_end:3.;
        Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:7.;
      ]
  in
  let snap = Snapshot.of_trace t in
  Alcotest.(check (list (pair int int))) "single edge" [ (0, 1) ] (Snapshot.edges snap ~step:1)

let test_snapshot_active_steps () =
  let snap = Snapshot.of_trace (sample_trace ()) in
  Alcotest.(check (list int)) "active" [ 1; 2 ] (Snapshot.active_steps snap)

let test_snapshot_components () =
  let snap = Snapshot.of_trace (sample_trace ()) in
  let comps = Snapshot.components snap ~step:2 in
  Alcotest.(check int) "one component" 1 (List.length comps);
  Alcotest.(check (list int)) "chain closure" [ 0; 1; 2; 3 ] (List.hd comps);
  Alcotest.(check (list int)) "component_of node 3" [ 0; 1; 2; 3 ]
    (Snapshot.component_of snap ~step:2 3);
  Alcotest.(check (list int)) "isolated node" [ 4 ] (Snapshot.component_of snap ~step:2 4)

let test_snapshot_contact_spanning_steps () =
  let t =
    Trace.create ~n_nodes:2 ~horizon:50. [ Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:25. ]
  in
  let snap = Snapshot.of_trace t in
  Alcotest.(check (list int)) "spans steps 1-3" [ 1; 2; 3 ] (Snapshot.active_steps snap)

(* --- Stgraph --- *)

let test_graph_successors () =
  let graph = Stgraph.of_trace (sample_trace ()) in
  let succ = Stgraph.successors graph { Stgraph.node = 1; step = 2 } in
  let contacts = List.filter (fun e -> Stgraph.weight e = 0) succ in
  let waits = List.filter (fun e -> Stgraph.weight e = 1) succ in
  Alcotest.(check int) "two contact edges" 2 (List.length contacts);
  Alcotest.(check int) "one wait edge" 1 (List.length waits)

let test_graph_no_wait_at_last_step () =
  let graph = Stgraph.of_trace (sample_trace ()) in
  let succ = Stgraph.successors graph { Stgraph.node = 0; step = 5 } in
  Alcotest.(check int) "no edges at last step" 0 (List.length succ)

let test_graph_counts () =
  let graph = Stgraph.of_trace (sample_trace ()) in
  Alcotest.(check int) "vertices" 25 (Stgraph.n_vertices graph);
  (* contact edges: step1 has 1 pair, step2 has 3 pairs -> 8 directed;
     wait edges: 5 nodes x 4 transitions. *)
  Alcotest.(check int) "edges" 28 (Stgraph.edge_count graph)

let test_graph_render () =
  let graph = Stgraph.of_trace (sample_trace ()) in
  let text = Format.asprintf "%a" Stgraph.pp graph in
  let contains sub =
    let slen = String.length text and sublen = String.length sub in
    let rec scan i = i + sublen <= slen && (String.sub text i sublen = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions t=1" true (contains "t=1");
  Alcotest.(check bool) "edge 2-3 shown" true (contains "2-3")

(* --- Reachability --- *)

let test_flood_direct () =
  (* Message created at t=0 (step 1); contact 0-1 lives through step 2,
     so delivery happens at step 2 = 20 s. *)
  let t =
    Trace.create ~n_nodes:3 ~horizon:50. [ Contact.make ~a:0 ~b:1 ~t_start:2. ~t_end:18. ]
  in
  let snap = Snapshot.of_trace t in
  let fl = Reachability.flood snap ~src:0 ~t_create:0. in
  Alcotest.(check (option int)) "arrival step" (Some 2) (Reachability.arrival_step fl 1);
  Alcotest.check feps "delay" 20. (Option.get (Reachability.delivery_delay fl ~dst:1));
  Alcotest.(check (option int)) "unreached" None (Reachability.arrival_step fl 2);
  Alcotest.(check int) "reached" 2 (Reachability.reached fl)

let test_flood_multihop_chain () =
  (* 0-1 at step 2, 1-2 at step 4: two-hop relay over time. *)
  let t =
    Trace.create ~n_nodes:3 ~horizon:60.
      [
        Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19.;
        Contact.make ~a:1 ~b:2 ~t_start:31. ~t_end:39.;
      ]
  in
  let snap = Snapshot.of_trace t in
  let fl = Reachability.flood snap ~src:0 ~t_create:0. in
  Alcotest.(check (option int)) "relay arrival" (Some 4) (Reachability.arrival_step fl 2)

let test_flood_same_step_chain () =
  (* 0-1 and 1-2 overlap in the same step: zero-weight chain. *)
  let t =
    Trace.create ~n_nodes:3 ~horizon:60.
      [
        Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19.;
        Contact.make ~a:1 ~b:2 ~t_start:12. ~t_end:18.;
      ]
  in
  let snap = Snapshot.of_trace t in
  let fl = Reachability.flood snap ~src:0 ~t_create:0. in
  Alcotest.(check (option int)) "chain in one step" (Some 2) (Reachability.arrival_step fl 2)

let test_flood_ignores_past_contacts () =
  (* The only contact ends before the message exists: no delivery. *)
  let t =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:15. ]
  in
  let snap = Snapshot.of_trace t in
  let fl = Reachability.flood snap ~src:0 ~t_create:40. in
  Alcotest.(check (option int)) "no arrival" None (Reachability.arrival_step fl 1)

let test_flood_source_arrival () =
  let t =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:15. ]
  in
  let snap = Snapshot.of_trace t in
  let fl = Reachability.flood snap ~src:0 ~t_create:42. in
  Alcotest.(check (option int)) "source holds from creation step" (Some 5)
    (Reachability.arrival_step fl 0)

let test_reachability_ratio () =
  (* Contacts are bidirectional: from t=0, 0 reaches {1,2}, 1 reaches
     {0,2}, 2 reaches {1} (the 0-1 contact is already past when 2's
     copy arrives at 1) -> 5 of 6 ordered pairs. *)
  let t =
    Trace.create ~n_nodes:3 ~horizon:60.
      [
        Contact.make ~a:0 ~b:1 ~t_start:11. ~t_end:19.;
        Contact.make ~a:1 ~b:2 ~t_start:31. ~t_end:39.;
      ]
  in
  let snap = Snapshot.of_trace t in
  Alcotest.check feps "ratio" (5. /. 6.) (Reachability.reachability_ratio snap ~t_create:0.);
  (* after both contacts have passed, nothing is reachable *)
  Alcotest.check feps "late ratio" 0. (Reachability.reachability_ratio snap ~t_create:45.)

(* --- qcheck properties --- *)

let qcheck_tests =
  let open QCheck2 in
  let gen_trace =
    Gen.(
      let* n_nodes = int_range 2 10 in
      let* n_contacts = int_range 1 30 in
      let* raw =
        list_repeat n_contacts
          (triple (int_range 0 (n_nodes - 1)) (int_range 0 (n_nodes - 1))
             (pair (float_range 0. 90.) (float_range 0.5 30.)))
      in
      let contacts =
        List.filter_map
          (fun (a, b, (s, d)) ->
            if a = b then None else Some (Contact.make ~a ~b ~t_start:s ~t_end:(s +. d)))
          raw
      in
      return (Trace.create ~n_nodes ~horizon:120. contacts))
  in
  [
    Test.make ~name:"components partition non-isolated nodes" ~count:100 gen_trace (fun t ->
        let snap = Snapshot.of_trace t in
        List.for_all
          (fun step ->
            let comps = Snapshot.components snap ~step in
            let all = List.concat comps in
            List.length all = List.length (List.sort_uniq Int.compare all)
            && List.for_all (fun comp -> List.length comp >= 2) comps)
          (Snapshot.active_steps snap));
    Test.make ~name:"snapshot adjacency is symmetric" ~count:100 gen_trace (fun t ->
        let snap = Snapshot.of_trace t in
        List.for_all
          (fun step ->
            List.for_all
              (fun (a, b) ->
                Snapshot.in_contact snap ~step a b && Snapshot.in_contact snap ~step b a)
              (Snapshot.edges snap ~step))
          (Snapshot.active_steps snap));
    Test.make ~name:"flood reaches a superset over later creation times" ~count:60 gen_trace
      (fun t ->
        let snap = Snapshot.of_trace t in
        (* A later start sees only a subset of the contact events, and
           the early flood already holds the message wherever the late
           one begins, so late can never reach more nodes. *)
        let early = Reachability.flood snap ~src:0 ~t_create:0. in
        let late = Reachability.flood snap ~src:0 ~t_create:60. in
        Reachability.reached late <= Reachability.reached early);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "psn_spacetime"
    [
      ( "timegrid",
        [
          Alcotest.test_case "basics" `Quick test_grid_basics;
          Alcotest.test_case "intervals" `Quick test_grid_intervals;
          Alcotest.test_case "overlap ranges" `Quick test_grid_overlap;
          Alcotest.test_case "errors" `Quick test_grid_errors;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "neighbours" `Quick test_snapshot_neighbours;
          Alcotest.test_case "edge dedup" `Quick test_snapshot_edges_dedup;
          Alcotest.test_case "active steps" `Quick test_snapshot_active_steps;
          Alcotest.test_case "components" `Quick test_snapshot_components;
          Alcotest.test_case "contact spans steps" `Quick test_snapshot_contact_spanning_steps;
        ] );
      ( "graph",
        [
          Alcotest.test_case "successors" `Quick test_graph_successors;
          Alcotest.test_case "no wait at last step" `Quick test_graph_no_wait_at_last_step;
          Alcotest.test_case "vertex and edge counts" `Quick test_graph_counts;
          Alcotest.test_case "rendering" `Quick test_graph_render;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "direct contact" `Quick test_flood_direct;
          Alcotest.test_case "multi-hop over time" `Quick test_flood_multihop_chain;
          Alcotest.test_case "same-step chain" `Quick test_flood_same_step_chain;
          Alcotest.test_case "ignores past contacts" `Quick test_flood_ignores_past_contacts;
          Alcotest.test_case "source arrival" `Quick test_flood_source_arrival;
          Alcotest.test_case "reachability ratio" `Quick test_reachability_ratio;
        ] );
      ("properties", qcheck_tests);
    ]
