(* Tests for the psn_trace library: contact records, trace queries,
   serialisation round-trips, the synthetic generator's statistical
   calibration, and the dataset presets. *)

module Contact = Core.Contact
module Trace = Core.Trace
module Trace_io = Core.Trace_io
module Generator = Core.Generator
module Dataset = Core.Dataset
module Node = Core.Node
module Rng = Core.Rng

let feps = Alcotest.float 1e-9

let small_trace () =
  Trace.create ~n_nodes:4 ~horizon:100.
    [
      Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20.;
      Contact.make ~a:1 ~b:2 ~t_start:30. ~t_end:45.;
      Contact.make ~a:0 ~b:1 ~t_start:50. ~t_end:60.;
      Contact.make ~a:2 ~b:3 ~t_start:70. ~t_end:95.;
    ]

(* --- Contact --- *)

let test_contact_normalises () =
  let c = Contact.make ~a:5 ~b:2 ~t_start:0. ~t_end:1. in
  Alcotest.(check int) "a" 2 c.Contact.a;
  Alcotest.(check int) "b" 5 c.Contact.b

let test_contact_errors () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Contact.make: self-contact" (fun () ->
      ignore (Contact.make ~a:1 ~b:1 ~t_start:0. ~t_end:1.));
  expect "Contact.make: empty or inverted interval" (fun () ->
      ignore (Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:5.));
  expect "Contact.make: negative node id" (fun () ->
      ignore (Contact.make ~a:(-1) ~b:1 ~t_start:0. ~t_end:1.))

let test_contact_queries () =
  let c = Contact.make ~a:0 ~b:3 ~t_start:10. ~t_end:25. in
  Alcotest.check feps "duration" 15. (Contact.duration c);
  Alcotest.(check bool) "involves 3" true (Contact.involves c 3);
  Alcotest.(check bool) "involves 1" false (Contact.involves c 1);
  Alcotest.(check int) "peer" 0 (Contact.peer c 3);
  Alcotest.(check bool) "overlaps" true (Contact.overlaps c ~t0:0. ~t1:11.);
  Alcotest.(check bool) "no overlap" false (Contact.overlaps c ~t0:25. ~t1:30.);
  Alcotest.(check bool) "active" true (Contact.active_at c 10.);
  Alcotest.(check bool) "inactive at end" false (Contact.active_at c 25.)

(* --- Trace --- *)

let test_trace_counts_and_rates () =
  let t = small_trace () in
  Alcotest.(check int) "n contacts" 4 (Trace.n_contacts t);
  Alcotest.(check (array int)) "per-node counts" [| 2; 3; 2; 1 |] (Trace.contact_counts t);
  Alcotest.check feps "rate node 1" 0.03 (Trace.contact_rate t 1);
  Alcotest.(check int) "degree node 1" 2 (Trace.degree t 1);
  Alcotest.(check int) "degree node 3" 1 (Trace.degree t 3)

let test_trace_sorted_and_valid () =
  let t = small_trace () in
  (match Trace.validate t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "validate: %s" msg);
  let contacts = Trace.contacts t in
  for i = 1 to Array.length contacts - 1 do
    if Contact.compare_by_start contacts.(i - 1) contacts.(i) > 0 then
      Alcotest.fail "contacts not sorted"
  done

let test_trace_restrict () =
  let t = small_trace () in
  let sub = Trace.restrict t ~t0:25. ~t1:75. in
  Alcotest.check feps "horizon" 50. (Trace.horizon sub);
  Alcotest.(check int) "clipped contact count" 3 (Trace.n_contacts sub);
  (* the 50-60 contact becomes 25-35 in the re-based window *)
  let c = (Trace.contacts sub).(1) in
  Alcotest.check feps "re-based start" 25. c.Contact.t_start

let test_trace_clips_horizon () =
  let t =
    Trace.create ~n_nodes:2 ~horizon:10. [ Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:50. ]
  in
  let c = (Trace.contacts t).(0) in
  Alcotest.check feps "clipped end" 10. c.Contact.t_end

let test_trace_create_errors () =
  Alcotest.check_raises "node out of range"
    (Invalid_argument "Trace.create: contact references node outside population") (fun () ->
      ignore
        (Trace.create ~n_nodes:2 ~horizon:10. [ Contact.make ~a:0 ~b:5 ~t_start:0. ~t_end:1. ]))

let test_trace_time_series () =
  let t = small_trace () in
  let ts = Trace.contact_time_series t ~bin:25. in
  Alcotest.(check (array int)) "starts per bin" [| 1; 1; 2; 0 |] (Core.Timeseries.counts ts)

let test_median_rate () =
  let t = small_trace () in
  (* counts 2,3,2,1 over 100 s -> rates 0.02,0.03,0.02,0.01; median 0.02 *)
  Alcotest.check feps "median rate" 0.02 (Trace.median_rate t)

let test_trace_concat () =
  let t = small_trace () in
  let day = Trace.concat t t in
  Alcotest.check feps "horizon doubled" 200. (Trace.horizon day);
  Alcotest.(check int) "contacts doubled" 8 (Trace.n_contacts day);
  (* the second copy's first contact is shifted by the first horizon *)
  let c = (Trace.contacts day).(4) in
  Alcotest.check feps "shifted start" 110. c.Contact.t_start;
  (match Trace.validate day with Ok () -> () | Error m -> Alcotest.failf "invalid: %s" m);
  Alcotest.check_raises "population mismatch"
    (Invalid_argument "Trace.concat: traces have different populations") (fun () ->
      ignore (Trace.concat t (Trace.create ~n_nodes:2 ~horizon:10. [])))

let test_trace_merge () =
  let a =
    Trace.create ~n_nodes:3 ~horizon:50. [ Contact.make ~a:0 ~b:1 ~t_start:5. ~t_end:10. ]
  in
  let b =
    Trace.create ~n_nodes:3 ~horizon:80. [ Contact.make ~a:1 ~b:2 ~t_start:60. ~t_end:70. ]
  in
  let m = Trace.merge a b in
  Alcotest.check feps "max horizon" 80. (Trace.horizon m);
  Alcotest.(check int) "contacts pooled" 2 (Trace.n_contacts m);
  match Trace.validate m with Ok () -> () | Error msg -> Alcotest.failf "invalid: %s" msg

(* --- Trace_io --- *)

let test_io_roundtrip () =
  let kinds = [| Node.Mobile; Node.Stationary; Node.Mobile; Node.Stationary |] in
  let t =
    Trace.create ~n_nodes:4 ~horizon:100. ~kinds
      [
        Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20.;
        Contact.make ~a:2 ~b:3 ~t_start:30.5 ~t_end:45.25;
      ]
  in
  match Trace_io.of_string (Trace_io.to_string t) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok t' ->
    Alcotest.(check int) "nodes" 4 (Trace.n_nodes t');
    Alcotest.check feps "horizon" 100. (Trace.horizon t');
    Alcotest.(check int) "contacts" 2 (Trace.n_contacts t');
    Alcotest.(check bool) "kind 1 stationary" true
      (Node.equal_kind (Trace.kind t' 1) Node.Stationary);
    Alcotest.(check bool) "kind 0 mobile" true (Node.equal_kind (Trace.kind t' 0) Node.Mobile);
    let c = (Trace.contacts t').(1) in
    Alcotest.check feps "contact end survives" 45.25 c.Contact.t_end

let test_io_missing_header () =
  match Trace_io.of_string "0,1,1,2\n" with
  | Ok _ -> Alcotest.fail "accepted header-less input"
  | Error msg -> Alcotest.(check bool) "mentions nodes" true (String.length msg > 0)

let test_io_bad_line () =
  let text = "# psn-trace v1\n# nodes 2\n# horizon 10\nnot,a,contact\n" in
  match Trace_io.of_string text with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ()

let test_io_file_roundtrip () =
  let t = small_trace () in
  let path = Filename.temp_file "psn" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save t ~path;
      match Trace_io.load ~path with
      | Ok t' -> Alcotest.(check int) "contacts" (Trace.n_contacts t) (Trace.n_contacts t')
      | Error msg -> Alcotest.failf "load: %s" msg)

let test_io_whitespace_format () =
  let text = "# crawdad-ish\n1 2 10.0 20.0\n2 3 30 45\n\n1 3 50.5 60.25\n" in
  match Trace_io.of_whitespace text with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok t ->
    (* 1-based ids shift down; times re-based to the earliest start *)
    Alcotest.(check int) "nodes" 3 (Trace.n_nodes t);
    Alcotest.(check int) "contacts" 3 (Trace.n_contacts t);
    Alcotest.check feps "horizon" 50.25 (Trace.horizon t);
    let c = (Trace.contacts t).(0) in
    Alcotest.(check int) "first a" 0 c.Contact.a;
    Alcotest.check feps "re-based start" 0. c.Contact.t_start;
    (match Trace.validate t with Ok () -> () | Error m -> Alcotest.failf "invalid: %s" m)

let test_io_whitespace_errors () =
  (match Trace_io.of_whitespace "1 2 nonsense 20\n" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error msg -> Alcotest.(check bool) "line number" true (String.length msg > 0));
  match Trace_io.of_whitespace "# only comments\n" with
  | Ok _ -> Alcotest.fail "accepted empty"
  | Error _ -> ()

let check_rejects name parse ~contains text =
  match parse text with
  | Ok _ -> Alcotest.failf "%s: accepted %S" name text
  | Error msg ->
    let present =
      let n = String.length contains in
      let rec scan i =
        i + n <= String.length msg && (String.sub msg i n = contains || scan (i + 1))
      in
      scan 0
    in
    if not present then Alcotest.failf "%s: error %S does not mention %S" name msg contains

let test_io_hardening () =
  let header = "# psn-trace v1\n# nodes 3\n# horizon 100\n" in
  let reject = check_rejects "of_string" Trace_io.of_string in
  reject ~contains:"bad horizon" "# psn-trace v1\n# nodes 3\n# horizon inf\n0,1,1,2\n";
  reject ~contains:"bad horizon" "# psn-trace v1\n# nodes 3\n# horizon nan\n0,1,1,2\n";
  reject ~contains:"line 4" (header ^ "0,1,nan,2\n");
  reject ~contains:"non-finite" (header ^ "0,1,1,inf\n");
  reject ~contains:"inverted" (header ^ "0,1,5,2\n");
  reject ~contains:"line 5" (header ^ "0,1,1,2\n0,1,1,2\n");
  reject ~contains:"first seen at line 4" (header ^ "0,1,1,2\n1,0,1,2\n");
  reject ~contains:"line 4: node id 7" (header ^ "0,7,1,2\n");
  reject ~contains:"stationary node 9" (header ^ "# kind 9 stationary\n0,1,1,2\n");
  (* distinct intervals of the same pair are not duplicates *)
  match Trace_io.of_string (header ^ "0,1,1,2\n0,1,3,4\n") with
  | Ok t -> Alcotest.(check int) "same-pair reuse ok" 2 (Trace.n_contacts t)
  | Error msg -> Alcotest.failf "rejected legitimate reuse: %s" msg

let test_io_whitespace_hardening () =
  let reject = check_rejects "of_whitespace" (Trace_io.of_whitespace ?n_nodes:None) in
  reject ~contains:"negative node id" "-1 2 10 20\n";
  reject ~contains:"self-contact" "2 2 10 20\n";
  reject ~contains:"non-finite" "1 2 nan 20\n";
  reject ~contains:"line 2" "1 2 10 20\n1 2 30 inf\n";
  reject ~contains:"inverted" "1 2 20 10\n";
  reject ~contains:"first seen at line 1" "1 2 10 20\n2 1 10 20\n";
  (match Trace_io.of_whitespace ~n_nodes:2 "1 2 10 20\n1 3 30 40\n" with
  | Ok _ -> Alcotest.fail "accepted id beyond requested population"
  | Error msg ->
    Alcotest.(check bool) (Printf.sprintf "names the line: %s" msg) true
      (String.length msg >= 6 && String.sub msg 0 6 = "line 2"));
  match Trace_io.of_whitespace "1 2 10 20\n2 3 15 25\n" with
  | Ok t -> Alcotest.(check int) "clean input still parses" 2 (Trace.n_contacts t)
  | Error msg -> Alcotest.failf "rejected clean input: %s" msg

(* --- Generator --- *)

let quick_config =
  {
    Generator.default with
    Generator.n_mobile = 30;
    n_stationary = 6;
    horizon = 3600.;
    mean_contacts = 50.;
  }

let test_generator_deterministic () =
  let t1 = Generator.generate ~rng:(Rng.create ~seed:42L ()) quick_config in
  let t2 = Generator.generate ~rng:(Rng.create ~seed:42L ()) quick_config in
  Alcotest.(check string) "identical serialisation" (Trace_io.to_string t1) (Trace_io.to_string t2)

let test_generator_seed_changes_trace () =
  let t1 = Generator.generate ~rng:(Rng.create ~seed:42L ()) quick_config in
  let t2 = Generator.generate ~rng:(Rng.create ~seed:43L ()) quick_config in
  Alcotest.(check bool) "different traces" false
    (String.equal (Trace_io.to_string t1) (Trace_io.to_string t2))

let test_generator_valid () =
  let t = Generator.generate ~rng:(Rng.create ~seed:1L ()) quick_config in
  match Trace.validate t with Ok () -> () | Error msg -> Alcotest.failf "invalid: %s" msg

let test_generator_calibration () =
  (* Mean per-node contact count should land near the target. *)
  let sum = ref 0. and runs = 3 in
  for seed = 1 to runs do
    let t = Generator.generate ~rng:(Rng.create ~seed:(Int64.of_int seed) ()) quick_config in
    let counts = Trace.contact_counts t in
    sum := !sum +. (float_of_int (Array.fold_left ( + ) 0 counts) /. float_of_int (Array.length counts))
  done;
  let mean = !sum /. float_of_int runs in
  Alcotest.(check bool)
    (Printf.sprintf "mean contacts %.1f within 20%% of target 50" mean)
    true
    (Float.abs (mean -. 50.) < 10.)

let test_generator_kinds () =
  let t = Generator.generate ~rng:(Rng.create ~seed:1L ()) quick_config in
  let kinds = Trace.kinds t in
  let stationary = Array.to_list kinds |> List.filter (Node.equal_kind Node.Stationary) in
  Alcotest.(check int) "20%% stationary" 6 (List.length stationary)

let test_generator_dropoff () =
  let cfg =
    { quick_config with Generator.profile = Generator.Dropoff { from_frac = 0.5; factor = 0.1 } }
  in
  let t = Generator.generate ~rng:(Rng.create ~seed:5L ()) quick_config in
  let td = Generator.generate ~rng:(Rng.create ~seed:5L ()) cfg in
  let late trace =
    Trace.contacts_in_window trace ~t0:(Trace.horizon trace /. 2.) ~t1:(Trace.horizon trace)
    |> List.length
  in
  (* Calibration rebalances totals, so compare the late-window share. *)
  let share trace = float_of_int (late trace) /. float_of_int (Trace.n_contacts trace) in
  Alcotest.(check bool)
    (Printf.sprintf "dropoff share %.2f < flat share %.2f" (share td) (share t))
    true
    (share td < share t)

let test_generator_scan_quantisation () =
  let cfg = { quick_config with Generator.scan_interval = Some 120. } in
  let t = Generator.generate ~rng:(Rng.create ~seed:2L ()) cfg in
  Trace.iter_contacts t (fun c ->
      let q = Float.rem c.Contact.t_start 120. in
      if Float.abs q > 1e-6 then Alcotest.failf "start %f not on scan grid" c.Contact.t_start)

let test_generator_validate_config () =
  let bad = { quick_config with Generator.mean_contacts = -1. } in
  (match Generator.validate_config bad with
  | Ok () -> Alcotest.fail "accepted negative mean_contacts"
  | Error _ -> ());
  match Generator.validate_config quick_config with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "rejected good config: %s" msg

let test_sociabilities_range () =
  let rng = Rng.create ~seed:9L () in
  let ws = Generator.sociabilities quick_config rng in
  Alcotest.(check int) "length" 36 (Array.length ws);
  Array.iteri
    (fun i w ->
      if w < 0. || w > 1. then Alcotest.failf "weight %d out of range: %f" i w;
      if i >= 30 && w < 0.6 then Alcotest.failf "stationary node %d below 0.6: %f" i w)
    ws

let test_generate_full_consistency () =
  (* Every generated contact must happen while both endpoints share a
     venue location — the generator's core physical invariant. *)
  let g = Generator.generate_full ~rng:(Rng.create ~seed:3L ()) quick_config in
  let located_at timeline time =
    let rec find = function
      | { Generator.loc; s; e } :: rest ->
        if time >= s && time < e then Some loc else find rest
      | [] -> None
    in
    find timeline
  in
  Trace.iter_contacts g.Generator.trace (fun (c : Contact.t) ->
      let check_instant time =
        match
          ( located_at g.Generator.timelines.(c.Contact.a) time,
            located_at g.Generator.timelines.(c.Contact.b) time )
        with
        | Some la, Some lb when la = lb && la >= 0 -> ()
        | _, _ ->
          Alcotest.failf "contact %a active at %.1f without co-location" Contact.pp c time
      in
      (* contact start always lies in the co-location interval; probe the
         start and just before the end *)
      check_instant c.Contact.t_start;
      check_instant (Float.max c.Contact.t_start (c.Contact.t_end -. 0.01)));
  Alcotest.(check int) "weights per node" 36 (Array.length g.Generator.weights);
  Alcotest.(check bool) "generate matches generate_full" true
    (String.equal
       (Trace_io.to_string g.Generator.trace)
       (Trace_io.to_string (Generator.generate ~rng:(Rng.create ~seed:3L ()) quick_config)))

(* --- Intercontact --- *)

let gap_trace () =
  Trace.create ~n_nodes:3 ~horizon:200.
    [
      Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20.;
      Contact.make ~a:0 ~b:1 ~t_start:50. ~t_end:60.;
      Contact.make ~a:0 ~b:1 ~t_start:100. ~t_end:110.;
      Contact.make ~a:0 ~b:2 ~t_start:30. ~t_end:40.;
    ]

let test_intercontact_pair_gaps () =
  let t = gap_trace () in
  Alcotest.(check (list (float 1e-9))) "gaps" [ 30.; 40. ] (Core.Intercontact.pair_gaps t 0 1);
  Alcotest.(check (list (float 1e-9))) "single meeting" [] (Core.Intercontact.pair_gaps t 0 2);
  Alcotest.check feps "mean" 35. (Core.Intercontact.mean_intercontact t 0 1);
  Alcotest.(check bool) "never-met mean infinite" true
    (Core.Intercontact.mean_intercontact t 1 2 = Float.infinity)

let test_intercontact_node_gaps () =
  let t = gap_trace () in
  (* node 0's contacts end at 20, 40, 60, 110 and start at 10, 30, 50, 100 *)
  Alcotest.(check (list (float 1e-9))) "node gaps" [ 10.; 10.; 40. ]
    (Core.Intercontact.node_gaps t 0)

let test_intercontact_aggregate_and_ccdf () =
  let t = gap_trace () in
  let gaps = Core.Intercontact.aggregate_gaps t in
  Alcotest.(check int) "two aggregate gaps" 2 (Array.length gaps);
  let ccdf = Core.Intercontact.ccdf gaps in
  (* values 30 and 40: P[X>30] = 0.5, P[X>40] = 0 *)
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "ccdf" [ (30., 0.5); (40., 0.) ] ccdf

let test_intercontact_tail_exponent () =
  (* Pareto(alpha = 2) samples: the Hill estimator should land near 2. *)
  let rng = Rng.create ~seed:44L () in
  let samples = Array.init 20_000 (fun _ -> Rng.pareto rng ~alpha:2. ~x_min:1.) in
  match Core.Intercontact.tail_exponent ~x_min:1. samples with
  | None -> Alcotest.fail "no estimate"
  | Some alpha -> Alcotest.(check (float 0.1)) "hill estimate" 2. alpha

let test_intercontact_tail_too_small () =
  Alcotest.(check (option (float 1.))) "tiny sample" None
    (Core.Intercontact.tail_exponent ~x_min:1. [| 2.; 3. |])

(* --- Dataset --- *)

let test_dataset_find () =
  (match Dataset.find "infocom06-9-12" with
  | Ok d -> Alcotest.(check string) "label" "Infocom 06 9AM-12PM" d.Dataset.label
  | Error msg -> Alcotest.failf "find: %s" msg);
  match Dataset.find "nope" with
  | Ok _ -> Alcotest.fail "found nonexistent dataset"
  | Error msg -> Alcotest.(check bool) "error lists names" true (String.length msg > 20)

let test_dataset_all_generate () =
  List.iter
    (fun d ->
      let t = Dataset.generate d in
      Alcotest.(check int) (d.Dataset.name ^ " population") 98 (Trace.n_nodes t);
      Alcotest.check feps (d.Dataset.name ^ " horizon") 10800. (Trace.horizon t);
      match Trace.validate t with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s invalid: %s" d.Dataset.name msg)
    Dataset.all

let test_dataset_contact_rate_ranges () =
  (* Infocom should be denser than CoNExT, as in the paper's Fig. 7. *)
  let mean_count d =
    let t = Dataset.generate d in
    let counts = Trace.contact_counts t in
    float_of_int (Array.fold_left ( + ) 0 counts) /. float_of_int (Array.length counts)
  in
  Alcotest.(check bool) "infocom denser than conext" true
    (mean_count Dataset.infocom06_am > 1.5 *. mean_count Dataset.conext06_am)

(* --- qcheck properties --- *)

let qcheck_intercontact =
  let open QCheck2 in
  let gen_intervals =
    Gen.(
      list_size (int_range 2 30)
        (pair (float_range 0. 400.) (float_range 0.5 10.)))
  in
  [
    Test.make ~name:"pair gaps are positive and one fewer than meetings (disjoint case)" ~count:200
      gen_intervals
      (fun raw ->
        (* build strictly disjoint intervals by accumulating *)
        let _, intervals =
          List.fold_left
            (fun (cursor, acc) (gap, dur) ->
              let s = cursor +. 1. +. Float.abs gap in
              let e = s +. dur in
              (e, (s, e) :: acc))
            (0., []) raw
        in
        let intervals = List.rev intervals in
        let horizon = (match intervals with [] -> 10. | _ -> snd (List.hd (List.rev intervals)) +. 1.) in
        let contacts = List.map (fun (s, e) -> Contact.make ~a:0 ~b:1 ~t_start:s ~t_end:e) intervals in
        let t = Trace.create ~n_nodes:2 ~horizon contacts in
        let gaps = Core.Intercontact.pair_gaps t 0 1 in
        List.length gaps = List.length intervals - 1 && List.for_all (fun g -> g > 0.) gaps);
    Test.make ~name:"ccdf is non-increasing in x" ~count:200
      Gen.(list_size (int_range 1 100) (float_range 0.1 1e4))
      (fun xs ->
        let points = Core.Intercontact.ccdf (Array.of_list xs) in
        let rec dec = function
          | (x1, p1) :: ((x2, p2) :: _ as rest) -> x1 < x2 && p1 >= p2 && dec rest
          | _ -> true
        in
        dec points);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let qcheck_tests =
  let open QCheck2 in
  let gen_trace =
    Gen.(
      let* n_nodes = int_range 2 12 in
      let* n_contacts = int_range 0 40 in
      let* raw =
        list_repeat n_contacts
          (triple (int_range 0 (n_nodes - 1)) (int_range 0 (n_nodes - 1))
             (pair (float_range 0. 90.) (float_range 0.5 20.)))
      in
      let contacts =
        List.filter_map
          (fun (a, b, (s, d)) ->
            if a = b then None else Some (Contact.make ~a ~b ~t_start:s ~t_end:(s +. d)))
          raw
      in
      (* Contacts whose serialised forms collide would (correctly) trip
         the parser's duplicate-line rejection; drop them here so the
         round-trip properties quantify over serialisable traces. *)
      let seen = Hashtbl.create 64 in
      let contacts =
        List.filter
          (fun (c : Contact.t) ->
            let key =
              Printf.sprintf "%d,%d,%.6g,%.6g" c.Contact.a c.Contact.b c.Contact.t_start
                c.Contact.t_end
            in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          contacts
      in
      return (Trace.create ~n_nodes ~horizon:120. contacts))
  in
  let corrupt_contact_line mode text n_nodes =
    (* Locate the first contact line and damage it; returns None when
       the trace has no contacts. *)
    let lines = String.split_on_char '\n' text in
    let is_contact l =
      let l = String.trim l in
      l <> "" && l.[0] <> '#'
    in
    match List.find_index is_contact lines with
    | None -> None
    | Some i ->
      let line = List.nth lines i in
      let fields = String.split_on_char ',' line in
      let damaged =
        match (mode, fields) with
        | 0, [ a; b; s; e ] -> [ String.concat "," [ a; b; e; s ] ] (* inverted interval *)
        | 1, [ a; b; _; e ] -> [ String.concat "," [ a; b; "nan"; e ] ]
        | 2, _ -> [ line; line ] (* duplicate line *)
        | _, [ _; b; s; e ] ->
          [ String.concat "," [ string_of_int (n_nodes + 5); b; s; e ] ] (* id out of range *)
        | _ -> [ line ]
      in
      let lines =
        List.concat (List.mapi (fun j l -> if j = i then damaged else [ l ]) lines)
      in
      Some (String.concat "\n" lines)
  in
  [
    Test.make ~name:"trace io round-trips" ~count:100 gen_trace (fun t ->
        match Trace_io.of_string (Trace_io.to_string t) with
        | Error _ -> false
        | Ok t' ->
          Trace.n_nodes t = Trace.n_nodes t'
          && Trace.n_contacts t = Trace.n_contacts t'
          && Trace.horizon t = Trace.horizon t');
    Test.make ~name:"trace io serialise-parse fixed point" ~count:100 gen_trace (fun t ->
        match Trace_io.of_string (Trace_io.to_string t) with
        | Error _ -> false
        | Ok t' -> String.equal (Trace_io.to_string t') (Trace_io.to_string t));
    Test.make ~name:"corrupted contact lines rejected" ~count:100
      Gen.(pair gen_trace (int_range 0 3))
      (fun (t, mode) ->
        match corrupt_contact_line mode (Trace_io.to_string t) (Trace.n_nodes t) with
        | None -> true (* no contacts to corrupt *)
        | Some text -> (
          match Trace_io.of_string text with Error _ -> true | Ok _ -> false));
    Test.make ~name:"generated traces validate" ~count:100 gen_trace (fun t ->
        match Trace.validate t with Ok () -> true | Error _ -> false);
    Test.make ~name:"restrict preserves validity" ~count:100 gen_trace (fun t ->
        let sub = Trace.restrict t ~t0:20. ~t1:80. in
        (match Trace.validate sub with Ok () -> true | Error _ -> false)
        && Trace.horizon sub = 60.);
    Test.make ~name:"contact counts sum to twice n_contacts" ~count:100 gen_trace (fun t ->
        Array.fold_left ( + ) 0 (Trace.contact_counts t) = 2 * Trace.n_contacts t);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "psn_trace"
    [
      ( "contact",
        [
          Alcotest.test_case "normalises endpoints" `Quick test_contact_normalises;
          Alcotest.test_case "errors" `Quick test_contact_errors;
          Alcotest.test_case "queries" `Quick test_contact_queries;
        ] );
      ( "trace",
        [
          Alcotest.test_case "counts and rates" `Quick test_trace_counts_and_rates;
          Alcotest.test_case "sorted and valid" `Quick test_trace_sorted_and_valid;
          Alcotest.test_case "restrict" `Quick test_trace_restrict;
          Alcotest.test_case "clips to horizon" `Quick test_trace_clips_horizon;
          Alcotest.test_case "create errors" `Quick test_trace_create_errors;
          Alcotest.test_case "time series" `Quick test_trace_time_series;
          Alcotest.test_case "median rate" `Quick test_median_rate;
          Alcotest.test_case "concat" `Quick test_trace_concat;
          Alcotest.test_case "merge" `Quick test_trace_merge;
        ] );
      ( "io",
        [
          Alcotest.test_case "round-trip" `Quick test_io_roundtrip;
          Alcotest.test_case "missing header" `Quick test_io_missing_header;
          Alcotest.test_case "bad line" `Quick test_io_bad_line;
          Alcotest.test_case "file round-trip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "whitespace format" `Quick test_io_whitespace_format;
          Alcotest.test_case "whitespace errors" `Quick test_io_whitespace_errors;
          Alcotest.test_case "hardening" `Quick test_io_hardening;
          Alcotest.test_case "whitespace hardening" `Quick test_io_whitespace_hardening;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed changes trace" `Quick test_generator_seed_changes_trace;
          Alcotest.test_case "validates" `Quick test_generator_valid;
          Alcotest.test_case "calibration" `Slow test_generator_calibration;
          Alcotest.test_case "kinds" `Quick test_generator_kinds;
          Alcotest.test_case "dropoff thins late window" `Quick test_generator_dropoff;
          Alcotest.test_case "scan quantisation" `Quick test_generator_scan_quantisation;
          Alcotest.test_case "config validation" `Quick test_generator_validate_config;
          Alcotest.test_case "sociability ranges" `Quick test_sociabilities_range;
          Alcotest.test_case "contacts imply co-location" `Quick test_generate_full_consistency;
        ] );
      ( "intercontact",
        [
          Alcotest.test_case "pair gaps" `Quick test_intercontact_pair_gaps;
          Alcotest.test_case "node gaps" `Quick test_intercontact_node_gaps;
          Alcotest.test_case "aggregate and ccdf" `Quick test_intercontact_aggregate_and_ccdf;
          Alcotest.test_case "hill tail exponent" `Quick test_intercontact_tail_exponent;
          Alcotest.test_case "tail too small" `Quick test_intercontact_tail_too_small;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "find" `Quick test_dataset_find;
          Alcotest.test_case "all generate" `Slow test_dataset_all_generate;
          Alcotest.test_case "venue densities" `Slow test_dataset_contact_rate_ranges;
        ] );
      ("properties", qcheck_tests);
      ("intercontact-properties", qcheck_intercontact);
    ]
