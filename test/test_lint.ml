(* Tests for psn_lint's configuration layer: the directory-boundary-
   aware prefix matching (qcheck properties — "bin" must never cover
   "bin_utils/...") and the three-table lint.toml parser ([allow] /
   [boundary] / [ownership]) with its validation rules. *)

module Config = Psn_lint.Config

(* --- prefix matching: properties --- *)

(* Path segments that exercise the dangerous shapes: shared prefixes
   ("bin" vs "bin_utils"), dots, single letters. *)
let gen_segment =
  QCheck2.Gen.oneofl
    [ "lib"; "bin"; "bin_utils"; "sim"; "sim2"; "a"; "ab"; "clock.ml"; "engine.ml"; "x.mli" ]

let gen_segments = QCheck2.Gen.(list_size (int_range 1 4) gen_segment)

let join = String.concat "/"

let qcheck_prefix =
  let open QCheck2 in
  [
    Test.make ~name:"prefix covers its own subtree" ~count:500
      Gen.(pair gen_segments gen_segments)
      (fun (prefix, rest) ->
        Config.prefix_matches ~prefix:(join prefix) (join (prefix @ rest)));
    Test.make ~name:"prefix covers itself exactly" ~count:200 gen_segments (fun segs ->
        Config.prefix_matches ~prefix:(join segs) (join segs));
    Test.make ~name:"character prefixes never leak across a directory boundary" ~count:500
      Gen.(triple gen_segments (oneofl [ "_utils"; "x"; "2"; "_" ]) gen_segments)
      (fun (prefix, glue, rest) ->
        (* "bin" vs "bin_utils/...": the sibling shares the spelling
           but not the directory. *)
        let sibling =
          match List.rev prefix with
          | last :: parents -> List.rev ((last ^ glue) :: parents)
          | [] -> assert false
        in
        not (Config.prefix_matches ~prefix:(join prefix) (join (sibling @ rest))));
    Test.make ~name:"trailing slash is equivalent" ~count:500
      Gen.(pair gen_segments gen_segments)
      (fun (prefix, path) ->
        Bool.equal
          (Config.prefix_matches ~prefix:(join prefix) (join path))
          (Config.prefix_matches ~prefix:(join prefix ^ "/") (join path)));
    Test.make ~name:"leading ./ is normalised on both sides" ~count:500
      Gen.(pair gen_segments gen_segments)
      (fun (prefix, path) ->
        Bool.equal
          (Config.prefix_matches ~prefix:(join prefix) (join path))
          (Config.prefix_matches ~prefix:("./" ^ join prefix) ("./" ^ join path)));
    Test.make ~name:"empty prefix matches nothing" ~count:200 gen_segments (fun path ->
        not (Config.prefix_matches ~prefix:"" (join path))
        && not (Config.prefix_matches ~prefix:"./" (join path)));
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- prefix matching: pinned cases --- *)

let test_prefix_cases () =
  let check name expect prefix path =
    Alcotest.(check bool) name expect (Config.prefix_matches ~prefix path)
  in
  check "dir covers file below" true "bin" "bin/psn_cli.ml";
  check "dir with slash covers file below" true "bin/" "bin/psn_cli.ml";
  check "no sibling leak" false "bin" "bin_utils/helper.ml";
  check "no sibling leak with slash" false "bin/" "bin_utils/helper.ml";
  check "exact file" true "lib/telemetry/clock.ml" "lib/telemetry/clock.ml";
  check "file is not a prefix of its siblings" false "lib/telemetry/clock.ml"
    "lib/telemetry/clock_skew.ml";
  check "nested subtree" true "lib/det" "lib/det/det_tbl.ml";
  check "parent does not match child prefix string" false "lib/dets" "lib/det/det_tbl.ml"

(* --- lint.toml parsing --- *)

let ok_config text =
  match Config.of_string text with
  | Ok c -> c
  | Error msg -> Alcotest.failf "expected parse success, got: %s" msg

let err_config text =
  match Config.of_string text with
  | Ok _ -> Alcotest.fail "expected parse failure"
  | Error msg -> msg

let test_parse_three_tables () =
  let c =
    ok_config
      {|# comment
[allow]
"bin/" = ["stdout-print", "missing-mli"]

[boundary]
"lib/telemetry/clock.ml" = ["wall-clock"]
"lib/det/" = ["hash-order-iteration"]

[ownership]
"lib/store/codec.ml" = ["crc_table"]
"lib/scratch/" = ["*"]
|}
  in
  Alcotest.(check bool) "allow hit" true (Config.allowed c ~path:"bin/psn_cli.ml" ~rule:"stdout-print");
  Alcotest.(check bool) "allow miss on rule" false (Config.allowed c ~path:"bin/psn_cli.ml" ~rule:"wall-clock");
  Alcotest.(check bool) "allow miss on path" false (Config.allowed c ~path:"lib/x.ml" ~rule:"stdout-print");
  Alcotest.(check bool) "boundary exact file" true
    (Config.boundary c ~path:"lib/telemetry/clock.ml" ~kind:"wall-clock");
  Alcotest.(check bool) "boundary subtree" true
    (Config.boundary c ~path:"lib/det/det_tbl.ml" ~kind:"hash-order-iteration");
  Alcotest.(check bool) "boundary wrong kind" false
    (Config.boundary c ~path:"lib/det/det_tbl.ml" ~kind:"wall-clock");
  Alcotest.(check bool) "owned named binding" true
    (Config.owned c ~path:"lib/store/codec.ml" ~name:"crc_table");
  Alcotest.(check bool) "owned other binding" false
    (Config.owned c ~path:"lib/store/codec.ml" ~name:"other_table");
  Alcotest.(check bool) "owned wildcard" true
    (Config.owned c ~path:"lib/scratch/pool.ml" ~name:"anything")

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  go 0

let test_parse_rejects_typos () =
  let msg = err_config "[allow]\n\"lib/\" = [\"no-such-rule\"]\n" in
  Alcotest.(check bool) "unknown rule named" true (contains ~sub:"no-such-rule" msg);
  let msg = err_config "[boundary]\n\"lib/\" = [\"stdout-print\"]\n" in
  Alcotest.(check bool) "boundary entries must be taint kinds" true
    (contains ~sub:"taint kind" msg);
  let msg = err_config "\"lib/\" = [\"failwith\"]\n" in
  Alcotest.(check bool) "entry outside any section" true (contains ~sub:"outside" msg);
  let msg = err_config "[allowances]\n" in
  Alcotest.(check bool) "unknown section" true (contains ~sub:"unknown section" msg)

let test_ownership_free_form () =
  (* Ownership lists binding names, not rule names: arbitrary names
     must parse (a typo only narrows the sanction). *)
  let c = ok_config "[ownership]\n\"lib/\" = [\"whatever_binding\"]\n" in
  Alcotest.(check bool) "parses and matches" true
    (Config.owned c ~path:"lib/a.ml" ~name:"whatever_binding")

let () =
  Alcotest.run "lint"
    [
      ("prefix-properties", qcheck_prefix);
      ( "prefix-cases",
        [ Alcotest.test_case "pinned shapes" `Quick test_prefix_cases ] );
      ( "config",
        [
          Alcotest.test_case "three tables" `Quick test_parse_three_tables;
          Alcotest.test_case "typos rejected" `Quick test_parse_rejects_typos;
          Alcotest.test_case "ownership free-form" `Quick test_ownership_free_form;
        ] );
    ]
