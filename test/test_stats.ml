(* Tests for the psn_stats library. *)

module Summary = Core.Summary
module Quantile = Core.Quantile
module Cdf = Core.Cdf
module Histogram = Core.Histogram
module Boxplot = Core.Boxplot
module Confint = Core.Confint
module Timeseries = Core.Timeseries
module Regression = Core.Regression
module Table = Core.Table

let feps = Alcotest.float 1e-9
let fsmall = Alcotest.float 1e-6

(* --- Summary --- *)

let test_summary_basics () =
  let s = Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.check feps "mean" 5. (Summary.mean s);
  Alcotest.(check int) "count" 8 (Summary.count s);
  Alcotest.check fsmall "variance" (32. /. 7.) (Summary.variance s);
  Alcotest.check feps "min" 2. (Summary.min s);
  Alcotest.check feps "max" 9. (Summary.max s);
  Alcotest.check feps "total" 40. (Summary.total s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Summary.variance s))

let test_summary_single () =
  let s = Summary.of_array [| 3.5 |] in
  Alcotest.check feps "mean" 3.5 (Summary.mean s);
  Alcotest.(check bool) "variance nan with one sample" true (Float.is_nan (Summary.variance s))

let test_summary_rejects_nan () =
  let s = Summary.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Summary.add: non-finite observation") (fun () ->
      Summary.add s Float.nan)

let test_summary_merge () =
  let a = Summary.of_array [| 1.; 2.; 3. |] in
  let b = Summary.of_array [| 10.; 20. |] in
  let merged = Summary.merge a b in
  let direct = Summary.of_array [| 1.; 2.; 3.; 10.; 20. |] in
  Alcotest.check fsmall "mean" (Summary.mean direct) (Summary.mean merged);
  Alcotest.check fsmall "variance" (Summary.variance direct) (Summary.variance merged);
  Alcotest.(check int) "count" 5 (Summary.count merged);
  Alcotest.check feps "min" 1. (Summary.min merged);
  Alcotest.check feps "max" 20. (Summary.max merged)

let test_summary_merge_empty () =
  let a = Summary.create () in
  let b = Summary.of_array [| 5.; 7. |] in
  Alcotest.check feps "empty-left mean" 6. (Summary.mean (Summary.merge a b));
  Alcotest.check feps "empty-right mean" 6. (Summary.mean (Summary.merge b a))

(* --- Quantile --- *)

let test_quantile_known () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.check feps "median" 3. (Quantile.median xs);
  Alcotest.check feps "q0" 1. (Quantile.quantile xs 0.);
  Alcotest.check feps "q1" 5. (Quantile.quantile xs 1.);
  Alcotest.check feps "q.25" 2. (Quantile.quantile xs 0.25);
  Alcotest.check feps "interpolated" 1.5 (Quantile.quantile xs 0.125)

let test_quantile_unsorted_input () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  Alcotest.check feps "median of unsorted" 3. (Quantile.median xs)

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.quantile: empty sample") (fun () ->
      ignore (Quantile.quantile [||] 0.5));
  Alcotest.check_raises "q out of range" (Invalid_argument "Quantile: q must be in [0, 1]")
    (fun () -> ignore (Quantile.quantile [| 1. |] 1.5))

let test_percentile () =
  let xs = Array.init 101 float_of_int in
  Alcotest.check feps "p25" 25. (Quantile.percentile xs 25);
  Alcotest.check feps "p99" 99. (Quantile.percentile xs 99)

(* --- Cdf --- *)

let test_cdf_eval () =
  let cdf = Cdf.of_samples [| 1.; 2.; 2.; 3. |] in
  Alcotest.check feps "below support" 0. (Cdf.eval cdf 0.5);
  Alcotest.check feps "at 1" 0.25 (Cdf.eval cdf 1.);
  Alcotest.check feps "at 2" 0.75 (Cdf.eval cdf 2.);
  Alcotest.check feps "at 3" 1. (Cdf.eval cdf 3.);
  Alcotest.check feps "above" 1. (Cdf.eval cdf 100.)

let test_cdf_points () =
  let cdf = Cdf.of_samples [| 1.; 2.; 2.; 3. |] in
  let points = Cdf.points cdf in
  Alcotest.(check int) "distinct xs" 3 (List.length points);
  let _, p2 = List.nth points 1 in
  Alcotest.check feps "P at 2" 0.75 p2

let test_cdf_inverse () =
  let cdf = Cdf.of_samples (Array.init 100 float_of_int) in
  Alcotest.check fsmall "median" 49.5 (Cdf.inverse cdf 0.5)

let test_cdf_support () =
  let cdf = Cdf.of_samples [| 5.; -2.; 9. |] in
  let lo, hi = Cdf.support cdf in
  Alcotest.check feps "lo" (-2.) lo;
  Alcotest.check feps "hi" 9. hi

let test_cdf_ks () =
  let a = Cdf.of_samples (Array.init 100 float_of_int) in
  let b = Cdf.of_samples (Array.init 100 (fun i -> float_of_int i +. 0.5)) in
  let d = Cdf.ks_distance a b in
  Alcotest.(check bool) "small shift small ks" true (d <= 0.02);
  let far = Cdf.of_samples (Array.init 100 (fun i -> float_of_int i +. 1000.)) in
  Alcotest.check feps "disjoint supports" 1. (Cdf.ks_distance a far)

let test_cdf_tabulate () =
  let cdf = Cdf.of_samples (Array.init 10 float_of_int) in
  let tab = Cdf.tabulate cdf ~n:5 () in
  Alcotest.(check int) "5 points" 5 (List.length tab);
  let last_x, last_p = List.nth tab 4 in
  Alcotest.check feps "last x" 9. last_x;
  Alcotest.check feps "last p" 1. last_p

(* --- Histogram --- *)

let test_histogram_counts () =
  let h =
    Histogram.create ~lo:0. ~hi:10. ~bins:5 (List.to_seq [ 0.5; 1.; 2.5; 9.9; -1.; 10.; 11. ])
  in
  Alcotest.(check (array int)) "counts" [| 2; 1; 0; 0; 1 |] (Histogram.counts h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "total" 7 (Histogram.total h)

let test_histogram_edges_centers () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 Seq.empty in
  Alcotest.(check int) "edges" 6 (Array.length (Histogram.bin_edges h));
  Alcotest.check feps "center 0" 1. (Histogram.bin_center h 0);
  Alcotest.check feps "center 4" 9. (Histogram.bin_center h 4)

let test_histogram_densities () =
  let h = Histogram.create ~lo:0. ~hi:2. ~bins:2 (List.to_seq [ 0.5; 1.5; 1.7 ]) in
  let d = Histogram.densities h in
  (* total in-range 3, width 1: densities must integrate to 1 *)
  Alcotest.check fsmall "integral" 1. (Array.fold_left ( +. ) 0. d)

let test_histogram_cumulative () =
  let h = Histogram.create ~lo:0. ~hi:3. ~bins:3 (List.to_seq [ 0.1; 1.1; 1.2; 2.9 ]) in
  Alcotest.(check (array int)) "cumulative" [| 1; 3; 4 |] (Histogram.cumulative h)

(* --- Boxplot --- *)

let test_boxplot_known () =
  let b = Boxplot.of_samples [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |] in
  Alcotest.check feps "median" 5. b.Boxplot.median;
  Alcotest.check feps "q1" 3. b.Boxplot.q1;
  Alcotest.check feps "q3" 7. b.Boxplot.q3;
  Alcotest.check feps "whisker lo" 1. b.Boxplot.whisker_lo;
  Alcotest.check feps "whisker hi" 9. b.Boxplot.whisker_hi;
  Alcotest.(check int) "no outliers" 0 (Array.length b.Boxplot.outliers)

let test_boxplot_outlier () =
  let b = Boxplot.of_samples [| 1.; 2.; 3.; 4.; 5.; 100. |] in
  Alcotest.(check int) "one outlier" 1 (Array.length b.Boxplot.outliers);
  Alcotest.check feps "outlier value" 100. b.Boxplot.outliers.(0);
  Alcotest.(check bool) "whisker below fence" true (b.Boxplot.whisker_hi <= 5.)

(* --- Confint --- *)

let test_confint_formula () =
  let xs = Array.init 100 (fun i -> float_of_int (i mod 10)) in
  let s = Summary.of_array xs in
  let lo, hi = Confint.of_summary s Confint.C95 in
  let expected_half = 1.96 *. Summary.stddev s /. 10. in
  Alcotest.check fsmall "halfwidth" expected_half (Confint.halfwidth s Confint.C95);
  Alcotest.check fsmall "centred" (Summary.mean s) ((lo +. hi) /. 2.);
  Alcotest.(check bool) "c99 wider" true
    (Confint.halfwidth s Confint.C99 > Confint.halfwidth s Confint.C90)

(* --- Timeseries --- *)

let test_timeseries_binning () =
  let ts = Timeseries.bin_events ~t0:0. ~t1:10. ~bin:2.5 (List.to_seq [ 0.; 1.; 2.6; 9.9; 10.0 ]) in
  Alcotest.(check (array int)) "counts" [| 2; 1; 0; 1 |] (Timeseries.counts ts);
  Alcotest.(check int) "bins" 4 (Array.length (Timeseries.times ts))

let test_timeseries_cumulative () =
  let ts = Timeseries.bin_events ~t0:0. ~t1:4. ~bin:1. (List.to_seq [ 0.5; 1.5; 1.7; 3.9 ]) in
  let cum = Timeseries.cumulative ts in
  let _, last = cum.(Array.length cum - 1) in
  Alcotest.(check int) "total" 4 last;
  let _, second = cum.(1) in
  Alcotest.(check int) "running" 3 second

let test_timeseries_rate_stability () =
  let ts = Timeseries.bin_events ~t0:0. ~t1:100. ~bin:10. (Seq.init 100 (fun i -> float_of_int i)) in
  Alcotest.check fsmall "rate 1/s" 1. (Timeseries.mean_rate ts);
  Alcotest.check fsmall "perfectly stable" 0. (Timeseries.stability ts)

(* --- Regression --- *)

let test_regression_exact_line () =
  let points = List.init 10 (fun i -> (float_of_int i, (3. *. float_of_int i) +. 2.)) in
  let fit = Regression.linear points in
  Alcotest.check fsmall "slope" 3. fit.Regression.slope;
  Alcotest.check fsmall "intercept" 2. fit.Regression.intercept;
  Alcotest.check fsmall "r2" 1. fit.Regression.r2

let test_regression_exponential () =
  let points = List.init 10 (fun i -> (float_of_int i, 5. *. Float.exp (0.7 *. float_of_int i))) in
  let fit = Regression.exponential_rate points in
  Alcotest.check fsmall "rate" 0.7 fit.Regression.slope;
  Alcotest.check fsmall "prefactor" 5. (Float.exp fit.Regression.intercept)

let test_regression_errors () =
  Alcotest.check_raises "one point" (Invalid_argument "Regression.linear: need at least two points")
    (fun () -> ignore (Regression.linear [ (1., 1.) ]));
  Alcotest.check_raises "no x variance" (Invalid_argument "Regression.linear: zero variance in x")
    (fun () -> ignore (Regression.linear [ (1., 1.); (1., 2.) ]))

(* --- Table --- *)

let test_table_renders_cells () =
  let out = Table.render ~header:[ "name"; "value" ] [ [ "alpha"; "1" ]; [ "bb"; "23" ] ] in
  let contains s sub =
    let slen = String.length s and sublen = String.length sub in
    let rec scan i = i + sublen <= slen && (String.sub s i sublen = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "alpha" true (contains out "alpha");
  Alcotest.(check bool) "23" true (contains out "23");
  Alcotest.(check bool) "rule" true (contains out "----")

let test_table_right_align () =
  let out = Table.render ~align:[ Table.Right ] ~header:[ "n" ] [ [ "1" ]; [ "100" ] ] in
  let lines = String.split_on_char '\n' out in
  (* the "1" row must be right-padded to width 3: "  1" *)
  Alcotest.(check string) "right aligned" "  1" (List.nth lines 2)

let test_table_ragged_rows () =
  let out = Table.render ~header:[ "a"; "b" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

(* --- qcheck properties --- *)

let qcheck_tests =
  let open QCheck2 in
  let float_list = Gen.(list_size (int_range 1 200) (float_range (-1e6) 1e6)) in
  [
    Test.make ~name:"cdf eval is monotone" ~count:200 float_list (fun xs ->
        let cdf = Cdf.of_samples (Array.of_list xs) in
        let lo, hi = Cdf.support cdf in
        let probe = List.init 20 (fun i -> lo +. ((hi -. lo) *. float_of_int i /. 19.)) in
        let values = List.map (Cdf.eval cdf) probe in
        let rec monotone = function
          | a :: (b :: _ as rest) -> a <= b && monotone rest
          | _ -> true
        in
        monotone values);
    Test.make ~name:"quantiles lie within sample bounds" ~count:200 float_list (fun xs ->
        let arr = Array.of_list xs in
        let q = Quantile.quantile arr 0.37 in
        let lo = List.fold_left Float.min Float.infinity xs in
        let hi = List.fold_left Float.max Float.neg_infinity xs in
        q >= lo && q <= hi);
    Test.make ~name:"summary merge equals pooled summary" ~count:200
      Gen.(pair float_list float_list)
      (fun (xs, ys) ->
        let merged = Summary.merge (Summary.of_array (Array.of_list xs)) (Summary.of_array (Array.of_list ys)) in
        let pooled = Summary.of_array (Array.of_list (xs @ ys)) in
        let close a b =
          if Float.is_nan a && Float.is_nan b then true
          else Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs b)
        in
        close (Summary.mean merged) (Summary.mean pooled)
        && close (Summary.variance merged) (Summary.variance pooled));
    Test.make ~name:"histogram total counts every event" ~count:200
      Gen.(list_size (int_range 0 300) (float_range (-10.) 20.))
      (fun xs ->
        let h = Histogram.create ~lo:0. ~hi:10. ~bins:7 (List.to_seq xs) in
        Histogram.total h = List.length xs);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "psn_stats"
    [
      ( "summary",
        [
          Alcotest.test_case "basics" `Quick test_summary_basics;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "single" `Quick test_summary_single;
          Alcotest.test_case "rejects nan" `Quick test_summary_rejects_nan;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "merge with empty" `Quick test_summary_merge_empty;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "known values" `Quick test_quantile_known;
          Alcotest.test_case "unsorted input" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "errors" `Quick test_quantile_errors;
          Alcotest.test_case "percentile" `Quick test_percentile;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "eval" `Quick test_cdf_eval;
          Alcotest.test_case "points" `Quick test_cdf_points;
          Alcotest.test_case "inverse" `Quick test_cdf_inverse;
          Alcotest.test_case "support" `Quick test_cdf_support;
          Alcotest.test_case "ks distance" `Quick test_cdf_ks;
          Alcotest.test_case "tabulate" `Quick test_cdf_tabulate;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts/under/overflow" `Quick test_histogram_counts;
          Alcotest.test_case "edges and centers" `Quick test_histogram_edges_centers;
          Alcotest.test_case "densities integrate to 1" `Quick test_histogram_densities;
          Alcotest.test_case "cumulative" `Quick test_histogram_cumulative;
        ] );
      ( "boxplot",
        [
          Alcotest.test_case "known five numbers" `Quick test_boxplot_known;
          Alcotest.test_case "outlier detection" `Quick test_boxplot_outlier;
        ] );
      ("confint", [ Alcotest.test_case "normal approx formula" `Quick test_confint_formula ]);
      ( "timeseries",
        [
          Alcotest.test_case "binning" `Quick test_timeseries_binning;
          Alcotest.test_case "cumulative" `Quick test_timeseries_cumulative;
          Alcotest.test_case "rate and stability" `Quick test_timeseries_rate_stability;
        ] );
      ( "regression",
        [
          Alcotest.test_case "exact line" `Quick test_regression_exact_line;
          Alcotest.test_case "exponential fit" `Quick test_regression_exponential;
          Alcotest.test_case "errors" `Quick test_regression_errors;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders cells" `Quick test_table_renders_cells;
          Alcotest.test_case "right align" `Quick test_table_right_align;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
        ] );
      ("properties", qcheck_tests);
    ]
