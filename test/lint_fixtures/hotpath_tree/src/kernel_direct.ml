(* A direct allocation inside the hot function itself. *)
let[@psn.hot] pair x = (x, x)
