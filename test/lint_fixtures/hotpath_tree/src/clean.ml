(* Allocation-free kernel: stays silent. *)
let[@psn.hot] lo x = x land 0xff
