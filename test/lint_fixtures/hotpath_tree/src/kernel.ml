(* No allocation syntax in this file: the finding arrives through
   the call into Helper.step. *)
let[@psn.hot] drain x = Helper.step x
