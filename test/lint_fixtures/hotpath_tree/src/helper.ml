(* The allocation lives here, one module away from the hot kernel. *)
let step x = (x, [ x ])
