(* Cold edge (called once at startup): sanctioned with a
   justification, as the rule's contract requires. *)
let[@psn.hot] warm x = (Helper.step x) [@lint.allow "hot-path-alloc"]
