[@@@lint.allow "missing-mli"]

(* Seeding from the environment: every run would differ. *)
let seed_from_environment () = Random.self_init ()
