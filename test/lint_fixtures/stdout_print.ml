[@@@lint.allow "missing-mli"]

(* Library code reports through values or a caller's formatter. *)
let shout s = print_endline s
let banner () = Printf.printf "== %s ==\n" "results"
let flushy fmt = Format.fprintf Format.std_formatter fmt
