[@@@lint.allow "missing-mli"]

let coerce x = Obj.magic x
