[@@@lint.allow "missing-mli"]

(* Failure carries no structure a caller could match on. *)
let explode () = failwith "boom"
