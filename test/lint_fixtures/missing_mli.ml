(* No sibling .mli and no suppression: the rule fires. *)
let identity x = x
