[@@@lint.allow "missing-mli"]

(* Physical identity of boxed values is allocation trivia. *)
let same a b = a == b
let differ a b = a != b
