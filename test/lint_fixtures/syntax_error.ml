(* This file deliberately does not parse. *)
let = in
