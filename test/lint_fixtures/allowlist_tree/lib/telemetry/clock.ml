(* Fixture mirror of the real lib/telemetry/clock.ml: lint.toml
   allowlists wall-clock for exactly this path, so this read passes. *)
let now_s () = Unix.gettimeofday ()
