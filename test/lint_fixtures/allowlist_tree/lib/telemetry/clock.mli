val now_s : unit -> float
