val t_start : unit -> float
