(* A wall-clock read anywhere else under lib/ must still fail, even
   though the telemetry clock module is allowlisted. *)
let t_start () = Unix.gettimeofday ()
