[@@@lint.allow "missing-mli"]

(* Hash order is an implementation detail, not a contract. *)
let sum tbl =
  let acc = ref 0 in
  Hashtbl.iter (fun _ v -> acc := !acc + v) tbl;
  !acc

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
