[@@@lint.allow "missing-mli"]
[@@@lint.allow "no-such-rule"]

(* A typo in a suppression must never silently widen it. *)
let ok = (1 + 2) [@lint.allow 42]
