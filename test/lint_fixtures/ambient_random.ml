[@@@lint.allow "missing-mli"]

(* The ambient generator is shared global state. *)
let pick n = Random.int n
