[@@@lint.allow "missing-mli"]

(* Results must not depend on when the process ran. *)
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
