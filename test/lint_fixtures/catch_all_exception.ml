[@@@lint.allow "missing-mli"]

(* A catch-all swallows Out_of_memory and assertion failures alike. *)
let safe f = try Some (f ()) with _ -> None

let logged f =
  match f () with v -> Some v | exception _ -> None
