[@@@lint.allow "missing-mli"]

(* Polymorphic comparison walks runtime representations. *)
let worst a b = max a b
let ordered a b = compare a b
let no_contacts xs = xs = []
let unset o = o = None
let close_enough x = x = 0.5
let same_name a b = a = "alice"
