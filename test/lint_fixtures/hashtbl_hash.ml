[@@@lint.allow "missing-mli"]

(* Representation hashing is reserved for the Faults keyed hash. *)
let digest x = Hashtbl.hash x
