(* Two levels out: no clock mention anywhere in this file, yet the
   taint arrives through Mid.stamp. *)
let report () = Mid.stamp ()
