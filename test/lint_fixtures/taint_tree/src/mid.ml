(* One level of indirection over the unsanctioned clock. *)
let stamp () = Clock_src.now ()
