(* The raw clock read. The syntactic wall-clock finding is suppressed
   in-file, but this file is deliberately NOT a [boundary] in the
   tree's lint.toml — so the taint still flows to every caller. *)
[@@@lint.allow "wall-clock"]

let now () = Unix.gettimeofday ()
