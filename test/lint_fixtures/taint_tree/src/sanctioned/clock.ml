(* The sanctioned read: declared both [allow]ed and a [boundary] for
   wall-clock in the tree's lint.toml, so callers stay clean. *)
let now () = Unix.gettimeofday ()
