(* Calls the sanctioned clock: the boundary absorbs the taint, so
   this file is clean. *)
let elapsed t0 = Clock.now () -. t0
