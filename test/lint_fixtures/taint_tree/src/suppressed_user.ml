(* Call-site waiver: this one consumer knowingly takes the tainted
   stamp (it feeds a log line, never a result); the taint itself
   still propagates to anything calling us. *)
let log_stamp () = (Mid.stamp ()) [@lint.allow "effect-taint"]
