(* Clean fan-out: the task only touches an atomic. *)
let go xs = Parallel.map Owned.touch xs
