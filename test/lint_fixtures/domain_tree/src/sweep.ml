(* The fan-out site: no mutable state and no Hashtbl mention in this
   file, yet Work.task reaches State.hits two modules away. *)
let go xs = Parallel.map Work.task xs
