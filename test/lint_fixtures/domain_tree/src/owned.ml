(* Atomics are the sanctioned cross-domain cell: never registered as
   shared mutable state. *)
let counter = Atomic.make 0

let touch () = Atomic.incr counter
