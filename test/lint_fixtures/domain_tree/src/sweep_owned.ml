(* Clean fan-out: the buffer the task reaches has declared
   per-domain ownership in lint.toml. *)
let go xs = Parallel.map Journal.log xs
