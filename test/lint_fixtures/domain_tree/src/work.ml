(* The task itself touches nothing suspicious syntactically. *)
let task k = State.bump k
