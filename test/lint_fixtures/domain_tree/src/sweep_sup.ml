(* Known single-domain call site (the jobs=1 CLI path): waived with
   a justification, as the rule's contract requires. *)
let go xs = (Parallel.map Work.task xs) [@lint.allow "domain-race"]
