(* Declared in the tree's [ownership] table: each domain appends to
   its own region by contract (the fixture only needs the claim). *)
let buf = Buffer.create 64

let log s = Buffer.add_string buf s
