(* Shared top-level table: the race the domain-safety pass exists to
   catch when it leaks into a parallel task. *)
let hits : (int, int) Hashtbl.t = Hashtbl.create 16

let bump k =
  let n = match Hashtbl.find_opt hits k with Some n -> n | None -> 0 in
  Hashtbl.replace hits k (n + 1)
