(* Exercises both suppression forms; expected output is empty.
   The floating form covers the whole file, the attached form only
   its expression. *)

[@@@lint.allow "missing-mli"]
[@@@lint.allow "failwith"]

let explode () = failwith "boom"

let digest x = (Hashtbl.hash x [@lint.allow "hashtbl-hash"])

let shout s = (print_endline s [@lint.allow "stdout-print"])
