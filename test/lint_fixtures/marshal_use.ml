[@@@lint.allow "missing-mli"]

(* Marshalled bytes are compiler- and sharing-dependent, so they can
   never serve as canonical content for hashing or persistence. *)
let persist oc value = Marshal.to_channel oc value []

let restore ic : int list = Marshal.from_channel ic

(* The Stdlib aliases are the same serializer wearing a thinner name. *)
let persist_alias oc value = output_value oc value

let restore_alias ic : int list = input_value ic
