(* Tests for the psn_prng library: determinism, ranges, and the first
   and second moments of every variate generator. *)

module Rng = Core.Rng
module Dist = Core.Dist

let check_float = Alcotest.(check (float 1e-9))

let mean_of f n rng =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f rng
  done;
  !acc /. float_of_int n

(* --- splitmix64 / xoshiro --- *)

let test_splitmix_deterministic () =
  let a = Core.Splitmix64.create 99L and b = Core.Splitmix64.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Core.Splitmix64.next a) (Core.Splitmix64.next b)
  done

let test_splitmix_distinct_seeds () =
  let a = Core.Splitmix64.create 1L and b = Core.Splitmix64.create 2L in
  Alcotest.(check bool) "different first output" false
    (Int64.equal (Core.Splitmix64.next a) (Core.Splitmix64.next b))

let test_xoshiro_rejects_zero_state () =
  Alcotest.check_raises "all-zero state" (Invalid_argument "Xoshiro.of_state: all-zero state")
    (fun () -> ignore (Core.Xoshiro.of_state (0L, 0L, 0L, 0L)))

let test_xoshiro_copy_independent () =
  let a = Core.Xoshiro.of_seed 5L in
  let b = Core.Xoshiro.copy a in
  let va = Core.Xoshiro.next a in
  (* advancing [a] must not have advanced [b] *)
  Alcotest.(check int64) "copy starts at same point" va (Core.Xoshiro.next b)

let test_xoshiro_split_diverges () =
  let a = Core.Xoshiro.of_seed 5L in
  let child = Core.Xoshiro.split a in
  (* child continues the original sequence; parent has jumped far away *)
  Alcotest.(check bool) "streams differ" false
    (Int64.equal (Core.Xoshiro.next a) (Core.Xoshiro.next child))

let test_xoshiro_jump_changes_state () =
  let a = Core.Xoshiro.of_seed 5L in
  let b = Core.Xoshiro.of_seed 5L in
  Core.Xoshiro.jump b;
  Alcotest.(check bool) "jumped stream differs" false
    (Int64.equal (Core.Xoshiro.next a) (Core.Xoshiro.next b))

(* --- Rng variates --- *)

let test_unit_float_range () =
  let rng = Rng.create ~seed:1L () in
  for _ = 1 to 10_000 do
    let v = Rng.unit_float rng in
    if not (v >= 0. && v < 1.) then Alcotest.failf "unit_float out of range: %f" v
  done

let test_unit_float_mean () =
  let rng = Rng.create ~seed:2L () in
  let m = mean_of Rng.unit_float 50_000 rng in
  Alcotest.(check (float 0.01)) "mean 0.5" 0.5 m

let test_int_bounds () =
  let rng = Rng.create ~seed:3L () in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v
  done

let test_int_uniformity () =
  let rng = Rng.create ~seed:4L () in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Rng.int rng 5 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      if Float.abs (frac -. 0.2) > 0.01 then Alcotest.failf "bucket fraction %f too far from 0.2" frac)
    counts

let test_int_invalid () =
  let rng = Rng.create () in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_in_range () =
  let rng = Rng.create ~seed:5L () in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-3) ~hi:4 in
    if v < -3 || v > 4 then Alcotest.failf "int_in_range out of range: %d" v
  done

let test_exponential_mean () =
  let rng = Rng.create ~seed:6L () in
  let m = mean_of (fun r -> Rng.exponential r ~rate:0.5) 50_000 rng in
  Alcotest.(check (float 0.05)) "mean 1/rate" 2.0 m

let test_exponential_positive () =
  let rng = Rng.create ~seed:7L () in
  for _ = 1 to 1000 do
    if Rng.exponential rng ~rate:3. < 0. then Alcotest.fail "negative exponential"
  done

let test_poisson_mean_small () =
  let rng = Rng.create ~seed:8L () in
  let m = mean_of (fun r -> float_of_int (Rng.poisson r ~mean:3.5)) 30_000 rng in
  Alcotest.(check (float 0.08)) "mean 3.5" 3.5 m

let test_poisson_mean_large () =
  let rng = Rng.create ~seed:9L () in
  let m = mean_of (fun r -> float_of_int (Rng.poisson r ~mean:120.)) 20_000 rng in
  Alcotest.(check (float 1.0)) "mean 120 (normal approx)" 120. m

let test_poisson_zero () =
  let rng = Rng.create () in
  Alcotest.(check int) "mean 0" 0 (Rng.poisson rng ~mean:0.)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:10L () in
  let n = 50_000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let v = Rng.gaussian rng ~mu:2. ~sigma:3. in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check (float 0.1)) "mean" 2. mean;
  Alcotest.(check (float 0.3)) "variance" 9. var

let test_pareto_min () =
  let rng = Rng.create ~seed:11L () in
  for _ = 1 to 1000 do
    if Rng.pareto rng ~alpha:2. ~x_min:1.5 < 1.5 then Alcotest.fail "pareto below x_min"
  done

let test_bernoulli_degenerate () =
  let rng = Rng.create ~seed:12L () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 false" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1 true" true (Rng.bernoulli rng 1.)
  done

let test_choice_weighted () =
  let rng = Rng.create ~seed:13L () in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let i = Rng.choice_weighted rng ~weights:[| 1.; 2.; 7. |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check (float 0.02)) "weight 0.1" 0.1 (float_of_int counts.(0) /. float_of_int n);
  Alcotest.(check (float 0.02)) "weight 0.7" 0.7 (float_of_int counts.(2) /. float_of_int n)

let test_choice_weighted_zero_total () =
  let rng = Rng.create () in
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Rng.choice_weighted: weights must sum to > 0") (fun () ->
      ignore (Rng.choice_weighted rng ~weights:[| 0.; 0. |]))

let test_shuffle_is_permutation () =
  let rng = Rng.create ~seed:14L () in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:15L () in
  let sample = Rng.sample_without_replacement rng ~k:10 ~n:30 in
  Alcotest.(check int) "size" 10 (Array.length sample);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      if v < 0 || v >= 30 then Alcotest.failf "out of range %d" v;
      if Hashtbl.mem seen v then Alcotest.failf "duplicate %d" v;
      Hashtbl.add seen v ())
    sample

let test_split_streams_differ () =
  let a = Rng.create ~seed:16L () in
  let b = Rng.split a in
  let xs = List.init 16 (fun _ -> Rng.bits64 a) in
  let ys = List.init 16 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

(* --- Dist --- *)

let test_dist_sample_means () =
  let rng = Rng.create ~seed:17L () in
  let check_mean dist expected tolerance =
    let m = mean_of (fun r -> Dist.sample r dist) 40_000 rng in
    Alcotest.(check (float tolerance))
      (Format.asprintf "%a" Dist.pp dist)
      expected m
  in
  check_mean (Dist.Constant 4.2) 4.2 1e-9;
  check_mean (Dist.Uniform { lo = 2.; hi = 6. }) 4.0 0.05;
  check_mean (Dist.Exponential { rate = 0.25 }) 4.0 0.1;
  check_mean (Dist.Gaussian { mu = -1.; sigma = 2. }) (-1.) 0.05

let test_dist_truncated_bounds () =
  let rng = Rng.create ~seed:18L () in
  let dist = Dist.Truncated { dist = Dist.Exponential { rate = 0.01 }; lo = 5.; hi = 50. } in
  for _ = 1 to 2000 do
    let v = Dist.sample rng dist in
    if v < 5. || v > 50. then Alcotest.failf "truncated sample out of bounds: %f" v
  done

let test_dist_mean_analytic () =
  check_float "constant" 3. (Dist.mean (Dist.Constant 3.));
  check_float "uniform" 1.5 (Dist.mean (Dist.Uniform { lo = 1.; hi = 2. }));
  check_float "exponential" 4. (Dist.mean (Dist.Exponential { rate = 0.25 }));
  check_float "pareto" 3. (Dist.mean (Dist.Pareto { alpha = 3.; x_min = 2. }));
  Alcotest.(check bool)
    "pareto alpha<=1 infinite" true
    (Float.is_integer (Dist.mean (Dist.Pareto { alpha = 1.; x_min = 2. }))
    = Float.is_integer Float.infinity
    && Dist.mean (Dist.Pareto { alpha = 1.; x_min = 2. }) = Float.infinity)

(* --- qcheck properties --- *)

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"Rng.int always within bound" ~count:500
      Gen.(pair (int_range 1 10_000) (int_range 0 1_000_000))
      (fun (bound, seed) ->
        let rng = Rng.create ~seed:(Int64.of_int seed) () in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Test.make ~name:"Rng.float always within bound" ~count:500
      Gen.(pair (float_range 0.001 1e6) (int_range 0 1_000_000))
      (fun (bound, seed) ->
        let rng = Rng.create ~seed:(Int64.of_int seed) () in
        let v = Rng.float rng bound in
        v >= 0. && v < bound);
    Test.make ~name:"sample_without_replacement distinct and in range" ~count:200
      Gen.(pair (int_range 0 50) (int_range 0 1_000_000))
      (fun (k, seed) ->
        let n = 50 in
        let rng = Rng.create ~seed:(Int64.of_int seed) () in
        let sample = Rng.sample_without_replacement rng ~k ~n in
        let distinct = List.sort_uniq Int.compare (Array.to_list sample) in
        List.length distinct = k && List.for_all (fun v -> v >= 0 && v < n) distinct);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "psn_prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "distinct seeds" `Quick test_splitmix_distinct_seeds;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "rejects zero state" `Quick test_xoshiro_rejects_zero_state;
          Alcotest.test_case "copy independent" `Quick test_xoshiro_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_xoshiro_split_diverges;
          Alcotest.test_case "jump changes state" `Quick test_xoshiro_jump_changes_state;
        ] );
      ( "rng",
        [
          Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
          Alcotest.test_case "unit_float mean" `Quick test_unit_float_mean;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "poisson mean (small)" `Quick test_poisson_mean_small;
          Alcotest.test_case "poisson mean (large)" `Quick test_poisson_mean_large;
          Alcotest.test_case "poisson mean zero" `Quick test_poisson_zero;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "pareto min" `Quick test_pareto_min;
          Alcotest.test_case "bernoulli degenerate" `Quick test_bernoulli_degenerate;
          Alcotest.test_case "choice_weighted frequencies" `Quick test_choice_weighted;
          Alcotest.test_case "choice_weighted zero total" `Quick test_choice_weighted_zero_total;
          Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "split streams differ" `Quick test_split_streams_differ;
        ] );
      ( "dist",
        [
          Alcotest.test_case "sample means" `Quick test_dist_sample_means;
          Alcotest.test_case "truncated bounds" `Quick test_dist_truncated_bounds;
          Alcotest.test_case "analytic means" `Quick test_dist_mean_analytic;
        ] );
      ("properties", qcheck_tests);
    ]
