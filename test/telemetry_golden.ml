(* Deterministic telemetry scenario for the Chrome-trace and profile
   goldens. The fake clock ticks one second per reading, so every
   timestamp, duration and derived report line is byte-stable; the
   goldens therefore pin the exporters' exact field order and
   formatting. *)

module T = Core.Telemetry

let summary () =
  let t = ref (-1.) in
  let clock () =
    t := !t +. 1.;
    !t
  in
  let c = T.create ~clock () in
  let s = T.sink c in
  T.with_span s ~args:[ ("command", T.Str "golden") ] "psn.command" (fun () ->
      T.with_span s
        ~args:[ ("algorithm", T.Str "epidemic"); ("seed", T.Int 1000) ]
        "engine.run"
        (fun () ->
          T.count s "engine.events" 42;
          T.hist s "runner.delivery_delay_s" 12.5;
          T.hist s "runner.delivery_delay_s" 340.);
      let kids = T.fork s 2 in
      T.gauge kids.(0) "parallel.queue" 3.;
      (* Histograms recorded on forked sinks merge by bucket sum at
         join — the goldens pin the merged digest's rendering. *)
      T.hist kids.(0) "runner.delivery_delay_s" 48.;
      T.hist kids.(1) "runner.delivery_delay_s" 0.75;
      (* Mirrors Runner.run_seed: the factory span nests inside the
         task span, so construction time lands in the task's totals. *)
      T.with_span kids.(0) "runner.task" (fun () ->
          T.count kids.(0) "runner.tasks" 1;
          T.with_span kids.(0) "runner.factory" (fun () -> ()));
      T.with_span kids.(1) "runner.task" (fun () ->
          T.count kids.(1) "runner.tasks" 1;
          T.with_span kids.(1) "runner.factory" (fun () -> ()));
      T.join s kids;
      T.count s "engine.events" 8);
  T.close c

let () =
  match Sys.argv with
  | [| _; "chrome" |] -> print_string (Core.Chrome.to_json (summary ()))
  | [| _; "profile" |] -> print_string (Core.Profile.render ~title:"golden" (summary ()))
  | _ ->
    prerr_endline "usage: telemetry_golden (chrome|profile)";
    exit 2
