(* Tests for the psn_forwarding library: contact history, each
   algorithm's decision rule, MEED delay estimation, and the registry. *)

module Contact = Core.Contact
module Trace = Core.Trace
module Message = Core.Message
module Algorithm = Core.Algorithm
module Engine = Core.Engine
module History = Core.Contact_history
module Meed = Core.Meed
module Registry = Core.Registry

let feps = Alcotest.float 1e-9

let ctx algo trace ~time ~holder ~peer ~src ~dst =
  ignore trace;
  algo.Algorithm.should_forward
    { Algorithm.time; holder; peer; message = Message.make ~id:0 ~src ~dst ~t_create:0. }

(* --- Contact_history --- *)

let test_history_counts () =
  let h = History.create ~n:4 in
  History.observe h ~time:10. ~a:0 ~b:1;
  History.observe h ~time:20. ~a:1 ~b:2;
  History.observe h ~time:30. ~a:0 ~b:1;
  Alcotest.(check int) "pair count" 2 (History.pair_count h 0 1);
  Alcotest.(check int) "symmetric" 2 (History.pair_count h 1 0);
  Alcotest.(check int) "other pair" 1 (History.pair_count h 1 2);
  Alcotest.(check int) "total 1" 3 (History.total_count h 1);
  Alcotest.(check int) "total 3" 0 (History.total_count h 3);
  Alcotest.(check (option (float 1e-9))) "last encounter" (Some 30.) (History.last_encounter h 0 1);
  Alcotest.(check (option (float 1e-9))) "never met" None (History.last_encounter h 0 3)

let test_history_validation () =
  let h = History.create ~n:2 in
  Alcotest.check_raises "self" (Invalid_argument "Contact_history: self-contact") (fun () ->
      History.observe h ~time:0. ~a:1 ~b:1)

(* --- A tiny trace shared by algorithm tests --- *)

let tiny_trace () =
  Trace.create ~n_nodes:4 ~horizon:100.
    [
      Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:15.;
      Contact.make ~a:1 ~b:3 ~t_start:20. ~t_end:25.;
      Contact.make ~a:1 ~b:3 ~t_start:40. ~t_end:45.;
      Contact.make ~a:2 ~b:3 ~t_start:30. ~t_end:35.;
    ]

(* --- Epidemic / Direct --- *)

let test_epidemic_always_forwards () =
  let trace = tiny_trace () in
  let algo = Core.Epidemic.factory trace in
  Alcotest.(check bool) "forwards" true (ctx algo trace ~time:0. ~holder:0 ~peer:1 ~src:0 ~dst:3)

let test_direct_never_forwards () =
  let trace = tiny_trace () in
  let algo = Core.Direct.factory trace in
  Alcotest.(check bool) "refuses" false (ctx algo trace ~time:0. ~holder:0 ~peer:1 ~src:0 ~dst:3)

(* --- FRESH --- *)

let test_fresh_decision () =
  let trace = tiny_trace () in
  let algo = Core.Fresh.factory trace in
  (* teach it: node 1 met dst 3 at t=20; node 0 never did *)
  algo.Algorithm.observe_contact ~time:20. ~a:1 ~b:3;
  Alcotest.(check bool) "peer fresher" true (ctx algo trace ~time:21. ~holder:0 ~peer:1 ~src:0 ~dst:3);
  Alcotest.(check bool) "holder fresher" false
    (ctx algo trace ~time:21. ~holder:1 ~peer:0 ~src:0 ~dst:3);
  (* now node 0 meets 3 later: roles flip *)
  algo.Algorithm.observe_contact ~time:50. ~a:0 ~b:3;
  Alcotest.(check bool) "flip" true (ctx algo trace ~time:51. ~holder:1 ~peer:0 ~src:1 ~dst:3)

let test_fresh_neither_met () =
  let trace = tiny_trace () in
  let algo = Core.Fresh.factory trace in
  Alcotest.(check bool) "no info, no forward" false
    (ctx algo trace ~time:5. ~holder:0 ~peer:1 ~src:0 ~dst:3)

(* --- Greedy --- *)

let test_greedy_counts_destination_meetings () =
  let trace = tiny_trace () in
  let algo = Core.Greedy.factory trace in
  algo.Algorithm.observe_contact ~time:20. ~a:1 ~b:3;
  algo.Algorithm.observe_contact ~time:40. ~a:1 ~b:3;
  algo.Algorithm.observe_contact ~time:30. ~a:2 ~b:3;
  Alcotest.(check bool) "1 beats 2 (2 vs 1 meetings)" true
    (ctx algo trace ~time:60. ~holder:2 ~peer:1 ~src:2 ~dst:3);
  Alcotest.(check bool) "2 does not beat 1" false
    (ctx algo trace ~time:60. ~holder:1 ~peer:2 ~src:1 ~dst:3)

(* --- Greedy Online / Total --- *)

let test_greedy_online_uses_observed_totals () =
  let trace = tiny_trace () in
  let algo = Core.Greedy_online.factory trace in
  algo.Algorithm.observe_contact ~time:10. ~a:0 ~b:1;
  algo.Algorithm.observe_contact ~time:20. ~a:1 ~b:3;
  (* totals so far: n1 = 2, n0 = 1, n2 = 0 *)
  Alcotest.(check bool) "climb to busier node" true
    (ctx algo trace ~time:25. ~holder:2 ~peer:1 ~src:2 ~dst:0);
  Alcotest.(check bool) "not downhill" false
    (ctx algo trace ~time:25. ~holder:1 ~peer:2 ~src:1 ~dst:0)

let test_greedy_total_uses_full_trace () =
  let trace = tiny_trace () in
  (* whole-trace totals: n0=1, n1=3, n2=1, n3=3 *)
  let algo = Core.Greedy_total.factory trace in
  Alcotest.(check bool) "0 -> 1 uphill even before any contact" true
    (ctx algo trace ~time:0. ~holder:0 ~peer:1 ~src:0 ~dst:2);
  Alcotest.(check bool) "1 -> 0 downhill" false
    (ctx algo trace ~time:0. ~holder:1 ~peer:0 ~src:1 ~dst:2)

(* --- MEED / Dynamic Programming --- *)

let test_meed_pair_delay_formula () =
  (* One pair meeting at t = 40 in a window of 100:
     gaps 40 and 60 -> (40^2 + 60^2) / 200 = 26. *)
  let trace =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:40. ~t_end:50. ]
  in
  Alcotest.check feps "expected delay" 26. (Meed.pair_delay trace 0 1);
  Alcotest.check feps "diagonal" 0. (Meed.pair_delay trace 0 0)

let test_meed_more_meetings_lower_delay () =
  let trace1 =
    Trace.create ~n_nodes:2 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:50. ~t_end:51. ]
  in
  let trace4 =
    Trace.create ~n_nodes:2 ~horizon:100.
      (List.map
         (fun s -> Contact.make ~a:0 ~b:1 ~t_start:s ~t_end:(s +. 1.))
         [ 20.; 40.; 60.; 80. ])
  in
  Alcotest.(check bool) "frequent meetings mean lower expected delay" true
    (Meed.pair_delay trace4 0 1 < Meed.pair_delay trace1 0 1)

let test_meed_never_meet () =
  let trace =
    Trace.create ~n_nodes:3 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:40. ~t_end:50. ]
  in
  Alcotest.(check bool) "infinite" true (Meed.pair_delay trace 0 2 = Float.infinity);
  Alcotest.check feps "matrix agrees" (Meed.pair_delay trace 0 2) (Meed.delay_matrix trace).(0).(2)

let test_meed_routing_relays () =
  (* 0 never meets 2 directly, but meets 1 often and 1 meets 2 often:
     the routed cost must be finite and the matrix symmetric here. *)
  let contacts =
    List.concat_map
      (fun s ->
        [
          Contact.make ~a:0 ~b:1 ~t_start:s ~t_end:(s +. 1.);
          Contact.make ~a:1 ~b:2 ~t_start:(s +. 5.) ~t_end:(s +. 6.);
        ])
      [ 10.; 30.; 50.; 70.; 90. ]
  in
  let trace = Trace.create ~n_nodes:3 ~horizon:110. contacts in
  let costs = Meed.routing_costs trace in
  Alcotest.(check bool) "relayed cost finite" true (Float.is_finite costs.(0).(2));
  Alcotest.(check bool) "relay no worse than direct" true
    (costs.(0).(2) <= Meed.pair_delay trace 0 2)

let test_dynprog_decision () =
  let contacts =
    List.concat_map
      (fun s ->
        [
          Contact.make ~a:0 ~b:1 ~t_start:s ~t_end:(s +. 1.);
          Contact.make ~a:1 ~b:2 ~t_start:(s +. 5.) ~t_end:(s +. 6.);
        ])
      [ 10.; 30.; 50.; 70.; 90. ]
  in
  let trace = Trace.create ~n_nodes:3 ~horizon:110. contacts in
  let algo = Core.Dynprog.factory trace in
  Alcotest.(check bool) "0 forwards to 1 toward 2" true
    (ctx algo trace ~time:0. ~holder:0 ~peer:1 ~src:0 ~dst:2);
  Alcotest.(check bool) "1 keeps rather than return to 0" false
    (ctx algo trace ~time:0. ~holder:1 ~peer:0 ~src:0 ~dst:2)

(* --- Randomized --- *)

let test_randomized_extremes () =
  let trace = tiny_trace () in
  let always = Core.Randomized.factory ~p:1. () trace in
  let never = Core.Randomized.factory ~p:0. () trace in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1" true (ctx always trace ~time:0. ~holder:0 ~peer:1 ~src:0 ~dst:3);
    Alcotest.(check bool) "p=0" false (ctx never trace ~time:0. ~holder:0 ~peer:1 ~src:0 ~dst:3)
  done

(* --- Spray and Wait --- *)

let test_spray_wait_budget () =
  (* Star: source meets 5 relays; with L=4 only 2 hand-offs can happen
     (4 -> give 2 -> give 1 -> budget 1 = wait). *)
  let contacts =
    List.mapi
      (fun i r ->
        let s = 10. +. (20. *. float_of_int i) in
        Contact.make ~a:0 ~b:r ~t_start:s ~t_end:(s +. 5.))
      [ 1; 2; 3; 4; 5 ]
  in
  let trace = Trace.create ~n_nodes:7 ~horizon:200. contacts in
  let algo = Core.Spray_wait.factory ~l:4 () trace in
  let outcome =
    Engine.run ~trace ~messages:[ Message.make ~id:0 ~src:0 ~dst:6 ~t_create:0. ] algo
  in
  Alcotest.(check int) "copies bounded by L-2 splits" 2 outcome.Engine.copies

let test_spray_wait_single_copy_waits () =
  let trace = tiny_trace () in
  let algo = Core.Spray_wait.factory ~l:1 () trace in
  let m = Message.make ~id:0 ~src:0 ~dst:3 ~t_create:0. in
  algo.Algorithm.on_create m;
  Alcotest.(check bool) "L=1 never sprays" false
    (algo.Algorithm.should_forward { Algorithm.time = 12.; holder = 0; peer = 1; message = m })

(* --- Two-Hop --- *)

let test_two_hop_source_only () =
  let trace = tiny_trace () in
  let algo = Core.Two_hop.factory trace in
  Alcotest.(check bool) "source sprays" true
    (algo.Algorithm.should_forward
       { Algorithm.time = 0.; holder = 0; peer = 1; message = Message.make ~id:0 ~src:0 ~dst:3 ~t_create:0. });
  Alcotest.(check bool) "relay holds" false
    (algo.Algorithm.should_forward
       { Algorithm.time = 0.; holder = 1; peer = 2; message = Message.make ~id:0 ~src:0 ~dst:3 ~t_create:0. })

let test_two_hop_paths_bounded () =
  (* Chain 0-1, 1-2, 2-3 over time: epidemic reaches 3, two-hop cannot
     (it would need three hops). *)
  let trace =
    Trace.create ~n_nodes:4 ~horizon:400.
      [
        Contact.make ~a:0 ~b:1 ~t_start:10. ~t_end:20.;
        Contact.make ~a:1 ~b:2 ~t_start:100. ~t_end:110.;
        Contact.make ~a:2 ~b:3 ~t_start:200. ~t_end:210.;
      ]
  in
  let m = Message.make ~id:0 ~src:0 ~dst:3 ~t_create:0. in
  let flood = Engine.run ~trace ~messages:[ m ] (Core.Epidemic.factory trace) in
  Alcotest.(check bool) "epidemic spans three hops" true
    (flood.Engine.records.(0).Engine.delivered <> None);
  let two = Engine.run ~trace ~messages:[ m ] (Core.Two_hop.factory trace) in
  Alcotest.(check (option (float 1e-9))) "two-hop cannot" None
    two.Engine.records.(0).Engine.delivered

(* --- Delegation --- *)

let test_delegation_raises_threshold () =
  let trace = tiny_trace () in
  let algo = Core.Delegation.factory () trace in
  let m = Message.make ~id:0 ~src:0 ~dst:3 ~t_create:0. in
  algo.Algorithm.on_create m;
  (* teach rates: node 1 has 2 contacts, node 2 has 1 *)
  algo.Algorithm.observe_contact ~time:10. ~a:1 ~b:2;
  algo.Algorithm.observe_contact ~time:20. ~a:1 ~b:3;
  let ctx1 = { Algorithm.time = 21.; holder = 0; peer = 1; message = m } in
  Alcotest.(check bool) "forwards to better node" true (algo.Algorithm.should_forward ctx1);
  algo.Algorithm.on_forward ctx1;
  (* after delegating to quality 3 (node 1 now has 3 contacts observed?
     at least its count at forward time), an equal-or-worse peer is
     refused by the raised threshold *)
  let ctx2 = { Algorithm.time = 22.; holder = 0; peer = 2; message = m } in
  Alcotest.(check bool) "threshold raised, worse peer refused" false
    (algo.Algorithm.should_forward ctx2)

let test_delegation_cheaper_than_epidemic () =
  let trace =
    Core.Generator.generate
      ~rng:(Core.Rng.create ~seed:8L ())
      {
        Core.Generator.default with
        Core.Generator.n_mobile = 25;
        n_stationary = 5;
        horizon = 2400.;
        mean_contacts = 40.;
      }
  in
  let messages =
    Core.Workload.fixed_count
      ~rng:(Core.Rng.create ~seed:9L ())
      { Core.Workload.rate = 0.1; t_start = 0.; t_end = 1600.; n_nodes = 30 }
      ~count:40
  in
  let copies factory = (Engine.run ~trace ~messages (factory trace)).Engine.copies in
  Alcotest.(check bool) "delegation uses fewer copies" true
    (copies (Core.Delegation.factory ()) < copies Core.Epidemic.factory)

(* --- Community / BubbleRap --- *)

(* Two clear communities: {0,1,2} heavily interconnected, {3,4,5}
   likewise, one thin bridge 2-3. *)
let community_trace () =
  let dense group base =
    List.concat_map
      (fun (a, b) ->
        List.map
          (fun k ->
            let s = base +. (30. *. k) in
            Contact.make ~a ~b ~t_start:s ~t_end:(s +. 20.))
          [ 0.; 1.; 2. ])
      group
  in
  let contacts =
    dense [ (0, 1); (1, 2); (0, 2) ] 10.
    (* the second community is active both before and after the bridge *)
    @ dense [ (3, 4); (4, 5); (3, 5) ] 15.
    @ dense [ (3, 4); (4, 5); (3, 5) ] 215.
    @ [ Contact.make ~a:2 ~b:3 ~t_start:200. ~t_end:202. ]
  in
  Trace.create ~n_nodes:6 ~horizon:320. contacts

let test_community_detection () =
  let trace = community_trace () in
  let c = Core.Community.detect trace in
  Alcotest.(check bool) "0,1,2 together" true
    (Core.Community.same_community c 0 1 && Core.Community.same_community c 1 2);
  Alcotest.(check bool) "3,4,5 together" true
    (Core.Community.same_community c 3 4 && Core.Community.same_community c 4 5);
  Alcotest.(check bool) "groups separated" false (Core.Community.same_community c 0 3);
  Alcotest.(check int) "two communities" 2 (Core.Community.n_communities c);
  Alcotest.(check (list int)) "members listed" [ 0; 1; 2 ]
    (Core.Community.members c (Core.Community.community_of c 0))

let test_community_min_weight_filters_bridge () =
  let trace = community_trace () in
  (* The bridge has 2 s of contact; a 60 s threshold must ignore it
     while keeping the groups (each pair has 60 s). *)
  let c = Core.Community.detect ~min_weight:60. trace in
  Alcotest.(check bool) "still two groups" false (Core.Community.same_community c 0 3)

let test_community_modularity_positive () =
  let trace = community_trace () in
  let c = Core.Community.detect trace in
  let q = Core.Community.modularity c trace in
  Alcotest.(check bool) (Printf.sprintf "modularity %.3f > 0.3" q) true (q > 0.3)

let test_community_singletons () =
  let trace =
    Trace.create ~n_nodes:4 ~horizon:100. [ Contact.make ~a:0 ~b:1 ~t_start:1. ~t_end:50. ]
  in
  let c = Core.Community.detect trace in
  (* 0 and 1 merge; 2 and 3 are isolated singletons *)
  Alcotest.(check int) "three communities" 3 (Core.Community.n_communities c);
  Alcotest.(check bool) "isolates apart" false (Core.Community.same_community c 2 3)

let test_bubble_rap_phases () =
  let trace = community_trace () in
  let algo = Core.Bubble_rap.factory ~min_weight:60. () trace in
  let m = Message.make ~id:0 ~src:0 ~dst:5 ~t_create:0. in
  (* Global phase: node 2 carries the bridge contact, so it outranks 0
     globally; holder 0 forwards to it. *)
  Alcotest.(check bool) "global climb" true
    (algo.Algorithm.should_forward { Algorithm.time = 0.; holder = 0; peer = 2; message = m });
  (* Entering the destination community is always accepted. *)
  Alcotest.(check bool) "enter destination community" true
    (algo.Algorithm.should_forward { Algorithm.time = 0.; holder = 2; peer = 3; message = m });
  (* Once inside, never leave: a member refuses to hand back outside. *)
  Alcotest.(check bool) "never leave community" false
    (algo.Algorithm.should_forward { Algorithm.time = 0.; holder = 3; peer = 2; message = m })

let test_bubble_rap_end_to_end () =
  let trace = community_trace () in
  let outcome =
    Engine.run ~trace
      ~messages:[ Message.make ~id:0 ~src:0 ~dst:5 ~t_create:0. ]
      (Core.Bubble_rap.factory ~min_weight:60. () trace)
  in
  Alcotest.(check bool) "delivered across communities" true
    (outcome.Engine.records.(0).Engine.delivered <> None)

(* --- PRoPHET --- *)

let test_prophet_encounter_raises_predictability () =
  let trace = tiny_trace () in
  let algo = Core.Prophet.factory () trace in
  (* 1 meets 3; then 1's predictability for 3 beats 0's *)
  algo.Algorithm.observe_contact ~time:10. ~a:1 ~b:3;
  Alcotest.(check bool) "forward to the acquainted node" true
    (ctx algo trace ~time:11. ~holder:0 ~peer:1 ~src:0 ~dst:3)

let test_prophet_aging () =
  let trace = tiny_trace () in
  let algo = Core.Prophet.factory () trace in
  algo.Algorithm.observe_contact ~time:10. ~a:1 ~b:3;
  (* node 2 meets 3 much later; by then node 1's P has aged away *)
  algo.Algorithm.observe_contact ~time:5000. ~a:2 ~b:3;
  Alcotest.(check bool) "recent meeting beats aged one" true
    (ctx algo trace ~time:5001. ~holder:1 ~peer:2 ~src:1 ~dst:3)

let test_prophet_transitivity () =
  let trace = tiny_trace () in
  let algo = Core.Prophet.factory () trace in
  algo.Algorithm.observe_contact ~time:10. ~a:1 ~b:3;
  algo.Algorithm.observe_contact ~time:12. ~a:2 ~b:1;
  (* 2 learned about 3 through 1; node 0 knows nothing *)
  Alcotest.(check bool) "transitive knowledge" true
    (ctx algo trace ~time:13. ~holder:0 ~peer:2 ~src:0 ~dst:3)

let test_prophet_validation () =
  Alcotest.check_raises "gamma zero" (Invalid_argument "Prophet: gamma must be in (0, 1]")
    (fun () ->
      let (_ : Algorithm.factory) =
        Core.Prophet.factory ~params:{ Core.Prophet.default_params with gamma = 0. } ()
      in
      ())

(* --- Registry --- *)

let test_registry_contents () =
  Alcotest.(check int) "six paper algorithms" 6 (List.length Registry.paper_six);
  Alcotest.(check bool) "all flagged in_paper" true
    (List.for_all (fun e -> e.Registry.in_paper) Registry.paper_six);
  Alcotest.(check bool) "extensions not in paper" true
    (List.for_all (fun e -> not e.Registry.in_paper) Registry.extensions);
  Alcotest.(check int) "fourteen total" 14 (List.length Registry.all)

let test_registry_find () =
  (match Registry.find "greedy-total" with
  | Ok e -> Alcotest.(check string) "label" "Greedy Total" e.Registry.label
  | Error msg -> Alcotest.failf "find: %s" msg);
  match Registry.find "bogus" with
  | Ok _ -> Alcotest.fail "found bogus"
  | Error msg -> Alcotest.(check bool) "lists names" true (String.length msg > 30)

(* Every algorithm must run end-to-end without error and deliver no more
   than epidemic. *)
let test_all_algorithms_bounded_by_epidemic () =
  let trace =
    Core.Generator.generate
      ~rng:(Core.Rng.create ~seed:5L ())
      {
        Core.Generator.default with
        Core.Generator.n_mobile = 25;
        n_stationary = 5;
        horizon = 2400.;
        mean_contacts = 40.;
      }
  in
  let messages =
    Core.Workload.fixed_count
      ~rng:(Core.Rng.create ~seed:6L ())
      { Core.Workload.rate = 0.1; t_start = 0.; t_end = 1600.; n_nodes = 30 }
      ~count:60
  in
  let delivered factory =
    let outcome = Engine.run ~trace ~messages (factory trace) in
    (Core.Metrics.of_outcome outcome).Core.Metrics.delivered
  in
  let epidemic_delivered = delivered Core.Epidemic.factory in
  List.iter
    (fun (e : Registry.entry) ->
      let d = delivered e.Registry.factory in
      if d > epidemic_delivered then
        Alcotest.failf "%s delivered %d > epidemic %d" e.Registry.label d epidemic_delivered)
    Registry.all

let () =
  Alcotest.run "psn_forwarding"
    [
      ( "history",
        [
          Alcotest.test_case "counts" `Quick test_history_counts;
          Alcotest.test_case "validation" `Quick test_history_validation;
        ] );
      ( "simple",
        [
          Alcotest.test_case "epidemic forwards" `Quick test_epidemic_always_forwards;
          Alcotest.test_case "direct refuses" `Quick test_direct_never_forwards;
          Alcotest.test_case "randomized extremes" `Quick test_randomized_extremes;
        ] );
      ( "fresh",
        [
          Alcotest.test_case "recency decision" `Quick test_fresh_decision;
          Alcotest.test_case "neither met" `Quick test_fresh_neither_met;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "destination meetings" `Quick test_greedy_counts_destination_meetings;
          Alcotest.test_case "online totals" `Quick test_greedy_online_uses_observed_totals;
          Alcotest.test_case "oracle totals" `Quick test_greedy_total_uses_full_trace;
        ] );
      ( "meed",
        [
          Alcotest.test_case "pair delay formula" `Quick test_meed_pair_delay_formula;
          Alcotest.test_case "frequency lowers delay" `Quick test_meed_more_meetings_lower_delay;
          Alcotest.test_case "never meet" `Quick test_meed_never_meet;
          Alcotest.test_case "routing relays" `Quick test_meed_routing_relays;
          Alcotest.test_case "dynprog decision" `Quick test_dynprog_decision;
        ] );
      ( "spray-wait",
        [
          Alcotest.test_case "token budget" `Quick test_spray_wait_budget;
          Alcotest.test_case "single copy waits" `Quick test_spray_wait_single_copy_waits;
        ] );
      ( "two-hop",
        [
          Alcotest.test_case "source only" `Quick test_two_hop_source_only;
          Alcotest.test_case "paths bounded" `Quick test_two_hop_paths_bounded;
        ] );
      ( "delegation",
        [
          Alcotest.test_case "raises threshold" `Quick test_delegation_raises_threshold;
          Alcotest.test_case "cheaper than epidemic" `Quick test_delegation_cheaper_than_epidemic;
        ] );
      ( "community",
        [
          Alcotest.test_case "detection" `Quick test_community_detection;
          Alcotest.test_case "min weight" `Quick test_community_min_weight_filters_bridge;
          Alcotest.test_case "modularity" `Quick test_community_modularity_positive;
          Alcotest.test_case "singletons" `Quick test_community_singletons;
          Alcotest.test_case "bubble-rap phases" `Quick test_bubble_rap_phases;
          Alcotest.test_case "bubble-rap end to end" `Quick test_bubble_rap_end_to_end;
        ] );
      ( "prophet",
        [
          Alcotest.test_case "encounter raises P" `Quick test_prophet_encounter_raises_predictability;
          Alcotest.test_case "aging" `Quick test_prophet_aging;
          Alcotest.test_case "transitivity" `Quick test_prophet_transitivity;
          Alcotest.test_case "validation" `Quick test_prophet_validation;
        ] );
      ( "registry",
        [
          Alcotest.test_case "contents" `Quick test_registry_contents;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "bounded by epidemic" `Slow test_all_algorithms_bounded_by_epidemic;
        ] );
    ]
