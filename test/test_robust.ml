(* Tests for the psn_robust library: failpoint plan parsing and
   verdict semantics, the install/trigger lifecycle, and cooperative
   interrupts. Crash actions and the CLI's exit codes are exercised by
   the crash-matrix executable, not here (a crash kills the test
   runner by design). *)

module Failpoint = Core.Failpoint
module Interrupt = Core.Interrupt

(* Every test leaves the process-global plan uninstalled, whatever
   happens mid-test, so tests stay independent. *)
let with_plan spec f =
  match Failpoint.parse spec with
  | Error msg -> Alcotest.failf "parse %S: %s" spec msg
  | Ok plan ->
    Failpoint.install plan;
    Fun.protect ~finally:Failpoint.uninstall f

let fires_on site ?key () =
  match Failpoint.trigger ?key site with
  | () -> false
  | exception Failpoint.Injected _ -> true

(* --- parsing --- *)

let test_parse_ok () =
  (match Failpoint.parse "a.site=error" with
  | Ok plan -> Alcotest.(check (list string)) "one site" [ "a.site" ] (Failpoint.sites plan)
  | Error msg -> Alcotest.fail msg);
  match Failpoint.parse " x=off , y=flaky@2, z=crash%0.5 " with
  | Ok plan ->
    Alcotest.(check (list string)) "clause order" [ "x"; "y"; "z" ] (Failpoint.sites plan)
  | Error msg -> Alcotest.fail msg

let test_parse_errors () =
  let rejected spec =
    match Failpoint.parse spec with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "empty spec" true (rejected "");
  Alcotest.(check bool) "commas only" true (rejected " , ,");
  Alcotest.(check bool) "no equals" true (rejected "just-a-site");
  Alcotest.(check bool) "empty site name" true (rejected "=error");
  Alcotest.(check bool) "unknown action" true (rejected "s=explode");
  Alcotest.(check bool) "bad hit index" true (rejected "s=error@0");
  Alcotest.(check bool) "non-integer hit" true (rejected "s=error@x");
  Alcotest.(check bool) "bad attempt count" true (rejected "s=flaky*0");
  Alcotest.(check bool) "probability above 1" true (rejected "s=error%1.5");
  Alcotest.(check bool) "probability not a number" true (rejected "s=error%p");
  Alcotest.(check bool) "duplicate site" true (rejected "s=error,s=flaky");
  match Failpoint.parse "s=explode" with
  | Error msg ->
    Alcotest.(check bool) "error names the clause" true
      (String.length msg > 0 && String.equal (String.sub msg 0 16) "failpoint clause")
  | Ok _ -> Alcotest.fail "accepted unknown action"

(* --- trigger semantics --- *)

let test_disabled_is_noop () =
  Failpoint.uninstall ();
  Alcotest.(check bool) "no plan installed" true (Option.is_none (Failpoint.installed ()));
  (* With no plan (and after uninstall) any site is silent. *)
  Failpoint.trigger "store.insert.pre_rename";
  with_plan "a=error" (fun () ->
      Alcotest.(check bool) "other sites silent" false (fires_on "b" ());
      Alcotest.(check bool) "off never fires" false
        (match Failpoint.parse "a=off" with
        | Ok p ->
          Failpoint.install p;
          fires_on "a" ()
        | Error msg -> Alcotest.fail msg));
  Failpoint.trigger "a" (* uninstalled again by with_plan *)

let test_error_vs_flaky () =
  with_plan "a=error,b=flaky" (fun () ->
      (match Failpoint.trigger "a" with
      | () -> Alcotest.fail "error site did not raise"
      | exception Failpoint.Injected { site; transient } ->
        Alcotest.(check string) "site name" "a" site;
        Alcotest.(check bool) "permanent" false transient);
      match Failpoint.trigger "b" with
      | () -> Alcotest.fail "flaky site did not raise"
      | exception (Failpoint.Injected { transient; _ } as e) ->
        Alcotest.(check bool) "transient" true transient;
        Alcotest.(check bool) "is_transient" true (Failpoint.is_transient e))

let test_on_hit_rule () =
  with_plan "a=error@3" (fun () ->
      let verdicts = List.init 5 (fun _ -> fires_on "a" ()) in
      Alcotest.(check (list bool)) "only the 3rd hit" [ false; false; true; false; false ]
        verdicts)

let test_first_attempts_rule () =
  with_plan "a=flaky*2" (fun () ->
      let at n = Failpoint.with_attempt n (fun () -> fires_on "a" ()) in
      Alcotest.(check bool) "attempt 0 fails" true (at 0);
      Alcotest.(check bool) "attempt 1 fails" true (at 1);
      Alcotest.(check bool) "attempt 2 succeeds" false (at 2);
      (* default attempt (no with_attempt wrapper) is 0 *)
      Alcotest.(check bool) "bare trigger fails" true (fires_on "a" ()))

let test_with_attempt_restores () =
  Alcotest.(check int) "nested attempts restore" 7
    (Failpoint.with_attempt 7 (fun () ->
         (try Failpoint.with_attempt 9 (fun () -> failwith "boom") with Failure _ -> ());
         with_plan "a=flaky*8" (fun () ->
             if not (fires_on "a" ()) then Alcotest.fail "outer attempt not restored");
         7))

let test_prob_rule () =
  with_plan "never=error%0,always=error%1" (fun () ->
      for _ = 1 to 20 do
        Alcotest.(check bool) "p=0 never fires" false (fires_on "never" ());
        Alcotest.(check bool) "p=1 always fires" true (fires_on "always" ())
      done);
  (* Verdicts are a pure function of (seed, site, key, attempt):
     re-triggering the same key repeats the verdict, and over many keys
     the firing rate tracks p. *)
  let verdict ~seed ~key =
    match Failpoint.parse ~seed "s=error%0.4" with
    | Error msg -> Alcotest.fail msg
    | Ok plan ->
      Failpoint.install plan;
      Fun.protect ~finally:Failpoint.uninstall (fun () -> fires_on "s" ~key ())
  in
  let keys = List.init 200 Int64.of_int in
  let first = List.map (fun key -> verdict ~seed:5L ~key) keys in
  let again = List.map (fun key -> verdict ~seed:5L ~key) keys in
  Alcotest.(check (list bool)) "same seed, same verdicts" first again;
  let fired = List.length (List.filter Fun.id first) in
  Alcotest.(check bool) (Printf.sprintf "rate %d/200 near 80" fired) true
    (fired > 50 && fired < 110);
  let other = List.map (fun key -> verdict ~seed:6L ~key) keys in
  Alcotest.(check bool) "different seed, different schedule" false
    (List.equal Bool.equal first other)

let test_describe () =
  Alcotest.(check string) "transient"
    "injected transient failure at s"
    (Failpoint.describe (Failpoint.Injected { site = "s"; transient = true }));
  Alcotest.(check string) "permanent"
    "injected permanent failure at s"
    (Failpoint.describe (Failpoint.Injected { site = "s"; transient = false }));
  Alcotest.(check string) "other exceptions fall back"
    (Printexc.to_string Stdlib.Not_found)
    (Failpoint.describe Stdlib.Not_found)

let test_is_transient_other () =
  Alcotest.(check bool) "arbitrary exn" false (Failpoint.is_transient Stdlib.Not_found)

(* --- interrupts --- *)

let test_interrupt_exit_codes () =
  Alcotest.(check int) "SIGINT" 130 (Interrupt.exit_code 2);
  Alcotest.(check int) "SIGTERM" 143 (Interrupt.exit_code 15)

let test_interrupt_check_noop () =
  (* Without install, check must be safe and silent. *)
  Interrupt.uninstall ();
  Interrupt.check ();
  Alcotest.(check bool) "nothing pending" true (Option.is_none (Interrupt.pending ()))

let test_interrupt_signal () =
  Interrupt.install ();
  Fun.protect ~finally:Interrupt.uninstall (fun () ->
      Interrupt.check ();
      (* first install, nothing pending *)
      Unix.kill (Unix.getpid ()) Sys.sigint;
      (* OCaml delivers signals at safe points; spin until the handler
         has run (bounded so a regression fails rather than hangs). *)
      let rec wait n =
        if n = 0 then Alcotest.fail "signal never delivered"
        else if Option.is_none (Interrupt.pending ()) then begin
          ignore (Sys.opaque_identity (ref n));
          wait (n - 1)
        end
      in
      wait 1_000_000;
      Alcotest.(check (option int)) "pending signal" (Some 2) (Interrupt.pending ());
      (match Interrupt.check () with
      | () -> Alcotest.fail "check did not raise"
      | exception Interrupt.Interrupted n -> Alcotest.(check int) "signal number" 2 n);
      (* uninstall clears the flag *)
      Interrupt.uninstall ();
      Interrupt.check ())

let () =
  Alcotest.run "psn_robust"
    [
      ( "parse",
        [
          Alcotest.test_case "well-formed specs" `Quick test_parse_ok;
          Alcotest.test_case "malformed specs" `Quick test_parse_errors;
        ] );
      ( "trigger",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "error vs flaky" `Quick test_error_vs_flaky;
          Alcotest.test_case "@N hit rule" `Quick test_on_hit_rule;
          Alcotest.test_case "*N attempt rule" `Quick test_first_attempts_rule;
          Alcotest.test_case "with_attempt restores" `Quick test_with_attempt_restores;
          Alcotest.test_case "%P probability rule" `Quick test_prob_rule;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "is_transient on other exns" `Quick test_is_transient_other;
        ] );
      ( "interrupt",
        [
          Alcotest.test_case "exit codes" `Quick test_interrupt_exit_codes;
          Alcotest.test_case "check without install" `Quick test_interrupt_check_noop;
          Alcotest.test_case "signal sets the flag" `Quick test_interrupt_signal;
        ] );
    ]
