(* Tests for the psn_model library: RK4 integration, the homogeneous
   population model's closed forms vs its ODE, Monte-Carlo agreement,
   and the two-class inhomogeneous model. *)

module Ode = Core.Ode
module H = Core.Homogeneous
module MC = Core.Montecarlo
module I = Core.Inhomogeneous
module Rng = Core.Rng

let feps = Alcotest.float 1e-9

(* --- Ode --- *)

let test_rk4_exponential () =
  (* dy/dt = y, y(0) = 1 -> y(1) = e *)
  let y = Ode.rk4 ~f:(fun ~t:_ ~y -> [| y.(0) |]) ~y0:[| 1. |] ~t0:0. ~t1:1. ~steps:100 in
  Alcotest.(check (float 1e-7)) "e" (Float.exp 1.) y.(0)

let test_rk4_linear_system () =
  (* dy0/dt = y1, dy1/dt = -y0: rotation; at t = pi/2, y = (0, -1)
     starting from (1, 0). *)
  let f ~t:_ ~y = [| y.(1); -.y.(0) |] in
  let y = Ode.rk4 ~f ~y0:[| 1.; 0. |] ~t0:0. ~t1:(Float.pi /. 2.) ~steps:200 in
  Alcotest.(check (float 1e-6)) "cos" 0. y.(0);
  Alcotest.(check (float 1e-6)) "sin" (-1.) y.(1)

let test_rk4_time_dependent () =
  (* dy/dt = 2t -> y(2) = 4 from y(0) = 0 *)
  let y = Ode.rk4 ~f:(fun ~t ~y:_ -> [| 2. *. t |]) ~y0:[| 0. |] ~t0:0. ~t1:2. ~steps:50 in
  Alcotest.(check (float 1e-9)) "t^2" 4. y.(0)

let test_rk4_trajectory () =
  let points = Ode.trajectory ~f:(fun ~t:_ ~y -> [| y.(0) |]) ~y0:[| 1. |] ~t0:0. ~t1:1. ~steps:10 in
  Alcotest.(check int) "points" 11 (List.length points);
  let t0, y0 = List.hd points in
  Alcotest.check feps "starts at t0" 0. t0;
  Alcotest.check feps "starts at y0" 1. y0.(0)

let test_rk4_errors () =
  Alcotest.check_raises "zero steps" (Invalid_argument "Ode: steps must be positive") (fun () ->
      ignore (Ode.rk4 ~f:(fun ~t:_ ~y -> y) ~y0:[| 1. |] ~t0:0. ~t1:1. ~steps:0));
  Alcotest.check_raises "bad dimension"
    (Invalid_argument "Ode: derivative returned a state of the wrong dimension") (fun () ->
      ignore (Ode.rk4 ~f:(fun ~t:_ ~y:_ -> [||]) ~y0:[| 1. |] ~t0:0. ~t1:1. ~steps:1))

(* --- Homogeneous closed forms --- *)

let params = { H.n = 200; lambda = 0.5 }

let test_initial_density () =
  let u = H.initial_density params ~k_max:10 in
  Alcotest.check feps "u0" (1. -. (1. /. 200.)) u.(0);
  Alcotest.check feps "u1" (1. /. 200.) u.(1);
  Alcotest.check feps "mass" 1. (H.mass u);
  Alcotest.check feps "mean" (1. /. 200.) (H.mean_of_density u)

let test_mean_growth_is_exponential () =
  (* eq. (4): E[S(t)] = E[S(0)] e^{lambda t} *)
  Alcotest.check feps "t=0" (1. /. 200.) (H.mean_paths params ~t:0.);
  let ratio = H.mean_paths params ~t:3. /. H.mean_paths params ~t:1. in
  Alcotest.(check (float 1e-9)) "doubling rule" (Float.exp (0.5 *. 2.)) ratio

let test_ode_matches_closed_mean () =
  List.iter
    (fun t ->
      let u = H.density_at params ~k_max:400 ~t () in
      let ode_mean = H.mean_of_density u in
      let closed = H.mean_paths params ~t in
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "mean at t=%.1f" t)
        closed ode_mean;
      Alcotest.(check (float 1e-6)) "mass conserved below truncation" 1. (H.mass u))
    [ 0.; 1.; 4.; 8. ]

let test_generating_function_properties () =
  (* phi_1 = 1 for all t (total mass); phi_0(t) = u_0(t) decreases. *)
  Alcotest.check feps "phi at x=1" 1. (H.generating_function params ~x:1. ~t:5.);
  let u0_early = H.generating_function params ~x:0. ~t:1. in
  let u0_late = H.generating_function params ~x:0. ~t:10. in
  Alcotest.(check bool) "u0 decreases" true (u0_late < u0_early);
  Alcotest.(check bool) "u0 in (0,1)" true (u0_late > 0. && u0_early < 1.)

let test_generating_function_vs_ode () =
  (* phi_x(t) from the closed form should match sum x^k u_k(t) from the
     ODE for x < 1. *)
  let t = 6. in
  let u = H.density_at params ~k_max:400 ~t () in
  let x = 0.7 in
  let direct = Array.to_list u |> List.mapi (fun k uk -> (x ** float_of_int k) *. uk) in
  let sum = List.fold_left ( +. ) 0. direct in
  Alcotest.(check (float 1e-6)) "phi vs ODE" (H.generating_function params ~x ~t) sum

let test_blowup () =
  (match H.blowup_time params ~x:0.9 with
  | None -> ()
  | Some _ -> Alcotest.fail "no blow-up expected for x <= 1");
  match H.blowup_time params ~x:2. with
  | None -> Alcotest.fail "blow-up expected for x > 1"
  | Some tc ->
    Alcotest.(check bool) "positive" true (tc > 0.);
    (* just before the blow-up the generating function is enormous;
       at/after it, infinite *)
    Alcotest.(check bool) "diverges at tc" true
      (Float.is_finite (H.generating_function params ~x:2. ~t:(tc *. 0.99)))

let test_blowup_formula () =
  (* T_C(x) = (1/lambda) ln (phi_0 / (phi_0 - 1)) with
     phi_0 = 1 - 1/N + x/N. *)
  let x = 3. in
  let phi0 = 1. -. (1. /. 200.) +. (x /. 200.) in
  let expected = 1. /. 0.5 *. Float.log (phi0 /. (phi0 -. 1.)) in
  Alcotest.(check (float 1e-9)) "closed formula" expected (Option.get (H.blowup_time params ~x))

let test_variance_consistency () =
  (* V[S] = E[S^2] - E[S]^2 must hold between the two closed forms. *)
  List.iter
    (fun t ->
      let v = H.variance params ~t in
      let m = H.mean_paths params ~t in
      let m2 = H.second_moment params ~t in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "t=%.1f" t) v (m2 -. (m *. m)))
    [ 0.; 2.; 5.; 9. ]

let test_frac_reached_closed_form () =
  (* 1 - phi_0(t): starts at 1/N, monotone, saturates to 1. *)
  Alcotest.(check (float 1e-9)) "at t=0" (1. /. 200.) (H.frac_reached params ~t:0.);
  let early = H.frac_reached params ~t:5. and late = H.frac_reached params ~t:30. in
  Alcotest.(check bool) "monotone" true (early < late);
  Alcotest.(check bool) "saturates" true (late > 0.99);
  (* cross-check against the ODE's u_0 *)
  let u = H.density_at params ~k_max:400 ~t:6. () in
  Alcotest.(check (float 1e-6)) "matches ODE u0" (1. -. u.(0)) (H.frac_reached params ~t:6.)

let test_first_path_time () =
  Alcotest.(check (float 1e-9)) "ln N / lambda" (Float.log 200. /. 0.5) (H.first_path_time params);
  (* At t = H the mean path count per node is exactly 1. *)
  Alcotest.(check (float 1e-9)) "mean 1 at H" 1.
    (H.mean_paths params ~t:(H.first_path_time params))

let test_homogeneous_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Homogeneous: n must be >= 2") (fun () ->
      H.check { H.n = 1; lambda = 1. });
  Alcotest.check_raises "bad lambda" (Invalid_argument "Homogeneous: lambda must be positive")
    (fun () -> H.check { H.n = 5; lambda = 0. })

(* --- Monte-Carlo --- *)

let test_mc_deterministic () =
  let run seed =
    MC.run params ~rng:(Rng.create ~seed ()) ~sample_times:[ 2.; 4. ]
    |> List.map (fun s -> s.MC.mean)
  in
  Alcotest.(check (list (float 1e-12))) "same seed same run" (run 7L) (run 7L)

let test_mc_matches_closed_mean () =
  let rng = Rng.create ~seed:21L () in
  let samples = MC.average_runs params ~rng ~runs:80 ~sample_times:[ 2.; 5. ] in
  List.iter
    (fun s ->
      let closed = H.mean_paths params ~t:s.MC.time in
      let rel = Float.abs (s.MC.mean -. closed) /. closed in
      Alcotest.(check bool)
        (Printf.sprintf "t=%.0f mean rel err %.2f < 0.25" s.MC.time rel)
        true (rel < 0.25))
    samples

let test_mc_frac_reached_grows () =
  let rng = Rng.create ~seed:22L () in
  let samples = MC.run params ~rng ~sample_times:[ 1.; 5.; 10. ] in
  let fracs = List.map (fun s -> s.MC.frac_reached) samples in
  let rec monotone = function a :: (b :: _ as r) -> a <= b && monotone r | _ -> true in
  Alcotest.(check bool) "monotone" true (monotone fracs);
  Alcotest.(check bool) "source counted" true (List.hd fracs >= 1. /. 200.)

let test_mc_deliveries_order () =
  let rng = Rng.create ~seed:23L () in
  let d = MC.deliveries { H.n = 50; lambda = 1. } ~rng ~n_explosion:100 ~t_end:100. in
  match (d.MC.t1, d.MC.tn) with
  | Some t1, Some tn -> Alcotest.(check bool) "t1 <= tn" true (t1 <= tn)
  | Some _, None -> ()
  | None, Some _ -> Alcotest.fail "tn without t1"
  | None, None -> Alcotest.fail "nothing delivered in a long window"

(* --- Inhomogeneous --- *)

let classes = { I.n = 80; frac_high = 0.5; rate_high = 0.5; rate_low = 0.05 }

let test_predictions_table () =
  let p = I.predict I.In_in in
  Alcotest.(check bool) "in-in both small" true (p.I.t1_small && p.I.te_small);
  let p = I.predict I.In_out in
  Alcotest.(check bool) "in-out te large" true (p.I.t1_small && not p.I.te_small);
  let p = I.predict I.Out_in in
  Alcotest.(check bool) "out-in t1 large" true ((not p.I.t1_small) && p.I.te_small);
  let p = I.predict I.Out_out in
  Alcotest.(check bool) "out-out both large" true ((not p.I.t1_small) && not p.I.te_small)

let test_first_path_scale () =
  let high = I.first_path_scale classes I.In_in in
  let low = I.first_path_scale classes I.Out_in in
  Alcotest.(check bool) "out source slower" true (low > high);
  Alcotest.(check (float 1e-9)) "escape term" (1. /. 0.05) (low -. high)

let test_inhomogeneous_validation () =
  Alcotest.check_raises "rates inverted"
    (Invalid_argument "Inhomogeneous: need 0 < rate_low <= rate_high") (fun () ->
      I.check { classes with I.rate_low = 1.0 })

let test_quadrant_simulation_t1_ordering () =
  let rng = Rng.create ~seed:31L () in
  let stats = I.simulate classes ~rng ~messages_per_quadrant:40 ~n_explosion:50 ~t_end:500. in
  let find q =
    List.find (fun s -> s.I.quadrant = q) stats
  in
  let t1 q = (find q).I.mean_t1 in
  Alcotest.(check bool)
    (Printf.sprintf "in-in %.1f < out-out %.1f" (t1 I.In_in) (t1 I.Out_out))
    true
    (t1 I.In_in < t1 I.Out_out);
  Alcotest.(check bool) "everything delivered" true
    (List.for_all (fun s -> s.I.deliveries = s.I.messages) stats)

let test_quadrant_te_variability () =
  (* The paper's Fig. 8 signature: TE is much more variable when the
     destination is a low-rate node. Use trace-like rates. *)
  let c = { I.n = 98; frac_high = 0.5; rate_high = 0.03; rate_low = 0.005 } in
  let rng = Rng.create ~seed:32L () in
  let stats = I.simulate c ~rng ~messages_per_quadrant:60 ~n_explosion:2000 ~t_end:10800. in
  let sd q = (List.find (fun s -> s.I.quadrant = q) stats).I.sd_te in
  Alcotest.(check bool)
    (Printf.sprintf "sd(in-out)=%.0f > sd(in-in)=%.0f" (sd I.In_out) (sd I.In_in))
    true
    (sd I.In_out > sd I.In_in)

let () =
  Alcotest.run "psn_model"
    [
      ( "ode",
        [
          Alcotest.test_case "exponential" `Quick test_rk4_exponential;
          Alcotest.test_case "rotation system" `Quick test_rk4_linear_system;
          Alcotest.test_case "time dependent" `Quick test_rk4_time_dependent;
          Alcotest.test_case "trajectory" `Quick test_rk4_trajectory;
          Alcotest.test_case "errors" `Quick test_rk4_errors;
        ] );
      ( "homogeneous",
        [
          Alcotest.test_case "initial density" `Quick test_initial_density;
          Alcotest.test_case "mean growth eq (4)" `Quick test_mean_growth_is_exponential;
          Alcotest.test_case "ODE matches closed mean" `Slow test_ode_matches_closed_mean;
          Alcotest.test_case "generating function" `Quick test_generating_function_properties;
          Alcotest.test_case "phi vs ODE densities" `Slow test_generating_function_vs_ode;
          Alcotest.test_case "blow-up existence" `Quick test_blowup;
          Alcotest.test_case "blow-up formula" `Quick test_blowup_formula;
          Alcotest.test_case "variance consistency" `Quick test_variance_consistency;
          Alcotest.test_case "frac reached closed form" `Slow test_frac_reached_closed_form;
          Alcotest.test_case "first path time H" `Quick test_first_path_time;
          Alcotest.test_case "validation" `Quick test_homogeneous_validation;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "deterministic by seed" `Quick test_mc_deterministic;
          Alcotest.test_case "matches closed mean" `Slow test_mc_matches_closed_mean;
          Alcotest.test_case "frac reached grows" `Quick test_mc_frac_reached_grows;
          Alcotest.test_case "delivery ordering" `Quick test_mc_deliveries_order;
        ] );
      ( "inhomogeneous",
        [
          Alcotest.test_case "prediction table" `Quick test_predictions_table;
          Alcotest.test_case "first path scale" `Quick test_first_path_scale;
          Alcotest.test_case "validation" `Quick test_inhomogeneous_validation;
          Alcotest.test_case "quadrant T1 ordering" `Slow test_quadrant_simulation_t1_ordering;
          Alcotest.test_case "quadrant TE variability" `Slow test_quadrant_te_variability;
        ] );
    ]
